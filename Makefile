# Run the engine's test binaries serially (-p 1): the scaled heartbeat
# and checkpoint timings starve under Go's default parallel package
# execution on small machines (see README "Testing").

GO ?= go

.PHONY: build check vet race bench

build:
	$(GO) build ./...

# check is the tier-1 gate: everything must build and pass.
check: build
	$(GO) test -p 1 ./...

vet:
	$(GO) vet ./...

# race is the CI lint+race gate: go vet across the repo, then the full
# test suite under the race detector. The detector's 5-20x slowdown
# needs generous test timeouts on constrained hosts.
race: vet
	$(GO) test -race -p 1 -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
