# Run the engine's test binaries serially (-p 1): the scaled heartbeat
# and checkpoint timings starve under Go's default parallel package
# execution on small machines (see README "Testing").

GO ?= go

.PHONY: build check vet race bench bench-smoke bench-json

build:
	$(GO) build ./...

# check is the tier-1 gate: everything must build and pass.
check: build
	$(GO) test -p 1 ./...

vet:
	$(GO) vet ./...

# race is the CI lint+race gate: go vet across the repo, then the full
# test suite under the race detector. The detector's 5-20x slowdown
# needs generous test timeouts on constrained hosts.
race: vet
	$(GO) test -race -p 1 -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# bench-smoke compiles and runs every benchmark exactly once so benches
# cannot bit-rot (CI runs this; it is not a measurement).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -p 1 ./...

# bench-json refreshes the hot-path trajectory baseline. The committed
# BENCH_hotpath.json lets future PRs diff throughput, allocs/elem, and
# the residual copy fractions of the zero-copy pipeline.
bench-json:
	$(GO) run ./cmd/clonos-hotpath -out BENCH_hotpath.json

# fault-sweep is the bounded deterministic chaos gate: one schedule per
# registered crash point (including the second-failure-during-recovery
# windows), a seeded fuzz batch, and the pinned regression schedules.
# Failing subtests log a one-line replayable schedule string.
fault-sweep:
	$(GO) test -count=1 ./internal/faultinject
	$(GO) test -run 'TestFaultSweep|TestFaultFuzz|TestCrashScheduleRegressions' -count=1 -p 1 -timeout 10m ./internal/job
