# Run the engine's test binaries serially (-p 1): the scaled heartbeat
# and checkpoint timings starve under Go's default parallel package
# execution on small machines (see README "Testing").

GO ?= go

.PHONY: build check vet lint lint-json race bench bench-smoke bench-json bench-matrix matrix-smoke fault-sweep fault-sweep-unaligned

build:
	$(GO) build ./...

# check is the tier-1 gate: everything must build and pass.
check: build
	$(GO) test -p 1 ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own go/analysis suite (clonos-vet; see DESIGN.md
# "Static invariants"): interprocedural buffer ownership, main-thread
# confinement, snapshot completeness, determinism taint, crash-point
# bookkeeping, no-sleep-poll test hygiene, and the gob-codec guard.
# Test files are analyzed too.
lint:
	$(GO) run ./cmd/clonos-vet ./...

# lint-json is the machine-readable variant CI uploads as an artifact on
# failure: the same findings as `make lint` written to findings.json as
# the JSON array documented in internal/lint/findings (human-readable
# lines still go to stderr; exit status is unchanged).
lint-json:
	$(GO) run ./cmd/clonos-vet -json ./... > findings.json

# Packages whose tests drive full jobs with scaled heartbeat and
# checkpoint timings. Under the race detector's 5-20x slowdown they
# starve when other test binaries compete for the machine, so only
# these run serially; everything else races in parallel. (This replaced
# a blanket `-p 1`, which serialized four dozen packages to protect
# five.)
RACE_SERIAL := . ./internal/job ./internal/nexmark ./internal/synthetic ./internal/harness ./examples/...
RACE_PARALLEL := $(shell $(GO) list ./... | grep -v -e '^clonos$$' -e '/internal/job$$' -e '/internal/nexmark$$' -e '/internal/synthetic$$' -e '/internal/harness$$' -e '/examples/')

# race is the CI lint+race gate: go vet across the repo, then the full
# test suite under the race detector. The detector's 5-20x slowdown
# needs generous test timeouts on constrained hosts.
race: vet
	$(GO) test -race -timeout 20m $(RACE_PARALLEL)
	$(GO) test -race -p 1 -timeout 20m $(RACE_SERIAL)

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# bench-smoke compiles and runs every benchmark exactly once so benches
# cannot bit-rot (CI runs this; it is not a measurement). CI pairs it
# with the hot-path allocation budgets and the alignment-stall budget
# (TestUnalignedStallBudget: overloaded unaligned checkpoints must never
# gate a channel).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -p 1 ./...

# bench-json refreshes the hot-path trajectory baseline. The committed
# BENCH_hotpath.json lets future PRs diff throughput, allocs/elem, and
# the residual copy fractions of the zero-copy pipeline.
bench-json:
	$(GO) run ./cmd/clonos-hotpath -out BENCH_hotpath.json

# bench-matrix refreshes the committed recovery-under-load baseline:
# the full load x state-size x failure-type grid with recovery time and
# output-latency p50/p99 per cell (see EXPERIMENTS.md "Recovery matrix").
bench-matrix:
	$(GO) run ./cmd/clonos-bench -experiment matrix -matrix-out BENCH_recovery_matrix.json

# matrix-smoke is the CI gate: the small 2x2x2x2 grid (loads x state
# sizes x {single, alignment} x {aligned, unaligned} checkpoint modes),
# schema-validated and regression-checked against the committed
# baseline. Up to 2 of the compared cells may flip settled->unsettled
# (shared runners are noisy); more than that fails, as does the grid's
# MEDIAN recovery or detection time moving past 3x + 1s — per-cell
# ratios flap at sub-second baselines, medians only move when every
# cell slows down.
matrix-smoke:
	$(GO) run ./cmd/clonos-bench -matrix-validate BENCH_recovery_matrix.json
	$(GO) run ./cmd/clonos-bench -experiment matrix -matrix-grid smoke \
		-matrix-out matrix_smoke.json \
		-matrix-baseline BENCH_recovery_matrix.json \
		-matrix-max-regress 3 -matrix-max-unsettled 2

# fault-sweep is the bounded deterministic chaos gate: one schedule per
# registered crash point (including the second-failure-during-recovery
# windows), a seeded fuzz batch, and the pinned regression schedules.
# Every schedule runs with the audit plane armed and asserts zero
# violations (false-positive pin); the TestAudit* divergence-injection
# runs prove the detectors actually fire on seeded corruption. Failing
# subtests log a one-line replayable schedule string and park their
# flight-recorder trace under $$TMPDIR/clonos-fault-artifacts.
fault-sweep:
	$(GO) test -count=1 ./internal/faultinject
	$(GO) test -run 'TestFaultSweep|TestFaultFuzz|TestCrashScheduleRegressions|TestAudit' -count=1 -p 1 -timeout 10m ./internal/job

# fault-sweep-unaligned is the same gate with every schedule forced
# through unaligned checkpointing (CLONOS_FAULT_UNALIGNED=1): the sweep,
# fuzz batch, and pinned regressions all run with in-flight capture
# armed and the audit plane asserting zero violations, so a
# capture/seal/preload bug cannot hide behind the aligned default.
# Schedules naming the aligned-only points (align/blocked,
# align/complete) are skipped — those points are structurally
# unreachable when no channel is ever gated.
fault-sweep-unaligned:
	CLONOS_FAULT_UNALIGNED=1 $(GO) test -run 'TestFaultSweep|TestFaultFuzz|TestCrashScheduleRegressions|TestAudit' -count=1 -p 1 -timeout 10m ./internal/job
