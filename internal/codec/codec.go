// Package codec provides binary wire encoding for stream elements.
//
// Values crossing a task boundary are serialized by a Codec into a byte
// payload; the element envelope (kind, key, timestamp) is encoded by this
// package. Each encoded element is length-prefixed so that a per-channel
// deserializer can reassemble elements that span network-buffer boundaries.
package codec

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"clonos/internal/types"
)

// Codec serializes and deserializes the payload values of data records.
// Implementations must be safe for concurrent use.
type Codec interface {
	// EncodeAppend appends the encoding of v to dst and returns the
	// extended slice.
	EncodeAppend(dst []byte, v any) ([]byte, error)
	// Decode decodes a value from exactly the bytes in b.
	Decode(b []byte) (any, error)
}

// ErrShortBuffer is returned by decoding routines when the input does not
// contain a complete encoding.
var ErrShortBuffer = errors.New("codec: short buffer")

// ErrTrailingBytes is returned when a decode consumed a complete value
// but input bytes remain — a framing bug upstream (Decode receives
// exactly one value's bytes), which must surface instead of being
// silently accepted.
var ErrTrailingBytes = errors.New("codec: trailing bytes after value")

// JSONCodec is a generic fallback codec. Decoded values come back as the
// usual encoding/json shapes (map[string]any, float64, ...), so typed
// pipelines should prefer a hand-written codec.
type JSONCodec struct{}

// EncodeAppend implements Codec.
func (JSONCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// Decode implements Codec.
func (JSONCodec) Decode(b []byte) (any, error) {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// Int64Codec encodes int64 values as zig-zag varints.
type Int64Codec struct{}

// EncodeAppend implements Codec.
func (Int64Codec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	n, ok := v.(int64)
	if !ok {
		return dst, fmt.Errorf("codec: Int64Codec got %T", v)
	}
	return binary.AppendVarint(dst, n), nil
}

// Decode implements Codec.
func (Int64Codec) Decode(b []byte) (any, error) {
	n, sz := binary.Varint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	if sz != len(b) {
		return nil, ErrTrailingBytes
	}
	return n, nil
}

// Float64Codec encodes float64 values as fixed 8-byte big-endian bits.
type Float64Codec struct{}

// EncodeAppend implements Codec.
func (Float64Codec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	f, ok := v.(float64)
	if !ok {
		return dst, fmt.Errorf("codec: Float64Codec got %T", v)
	}
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f)), nil
}

// Decode implements Codec.
func (Float64Codec) Decode(b []byte) (any, error) {
	if len(b) < 8 {
		return nil, ErrShortBuffer
	}
	if len(b) != 8 {
		return nil, ErrTrailingBytes
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// StringCodec encodes string values as raw bytes.
type StringCodec struct{}

// EncodeAppend implements Codec.
func (StringCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return dst, fmt.Errorf("codec: StringCodec got %T", v)
	}
	return append(dst, s...), nil
}

// Decode implements Codec.
func (StringCodec) Decode(b []byte) (any, error) {
	return string(b), nil
}

// BytesCodec passes []byte payloads through unchanged. Decode aliases the
// input, so callers must not retain the source buffer.
type BytesCodec struct{}

// EncodeAppend implements Codec.
func (BytesCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return dst, fmt.Errorf("codec: BytesCodec got %T", v)
	}
	return append(dst, b...), nil
}

// Decode implements Codec.
func (BytesCodec) Decode(b []byte) (any, error) {
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// EncodeElement appends the length-prefixed wire form of e to dst using c
// for the record payload.
//
// Wire format (after the uint32 big-endian length prefix covering the rest):
//
//	kind      uint8
//	record:    key uvarint | ts varint | payload...
//	watermark: ts varint
//	barrier:   checkpoint uvarint
//	eos:       (nothing)
//	latency:   ts varint
func EncodeElement(dst []byte, e types.Element, c Codec) ([]byte, error) {
	// Reserve the 4-byte length prefix and fill it in at the end.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, byte(e.Kind))
	var err error
	switch e.Kind {
	case types.KindRecord:
		dst = binary.AppendUvarint(dst, e.Key)
		dst = binary.AppendVarint(dst, e.Timestamp)
		dst, err = c.EncodeAppend(dst, e.Value)
		if err != nil {
			return dst[:start], err
		}
	case types.KindWatermark:
		dst = binary.AppendVarint(dst, e.Timestamp)
	case types.KindBarrier:
		dst = binary.AppendUvarint(dst, uint64(e.Checkpoint))
	case types.KindEndOfStream:
		// no body
	case types.KindLatencyMarker:
		dst = binary.AppendVarint(dst, e.Timestamp)
	default:
		return dst[:start], fmt.Errorf("codec: cannot encode element kind %v", e.Kind)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst, nil
}

// DecodeElement decodes one complete element body (without its length
// prefix) from b.
func DecodeElement(b []byte, c Codec) (types.Element, error) {
	if len(b) < 1 {
		return types.Element{}, ErrShortBuffer
	}
	kind := types.Kind(b[0])
	body := b[1:]
	switch kind {
	case types.KindRecord:
		key, n := binary.Uvarint(body)
		if n <= 0 {
			return types.Element{}, ErrShortBuffer
		}
		body = body[n:]
		ts, n := binary.Varint(body)
		if n <= 0 {
			return types.Element{}, ErrShortBuffer
		}
		body = body[n:]
		v, err := c.Decode(body)
		if err != nil {
			return types.Element{}, err
		}
		return types.Element{Kind: types.KindRecord, Key: key, Timestamp: ts, Value: v}, nil
	case types.KindWatermark:
		ts, n := binary.Varint(body)
		if n <= 0 {
			return types.Element{}, ErrShortBuffer
		}
		return types.Watermark(ts), nil
	case types.KindBarrier:
		id, n := binary.Uvarint(body)
		if n <= 0 {
			return types.Element{}, ErrShortBuffer
		}
		return types.Barrier(types.CheckpointID(id)), nil
	case types.KindEndOfStream:
		return types.EndOfStream(), nil
	case types.KindLatencyMarker:
		ts, n := binary.Varint(body)
		if n <= 0 {
			return types.Element{}, ErrShortBuffer
		}
		return types.LatencyMarker(ts), nil
	default:
		return types.Element{}, fmt.Errorf("codec: unknown element kind %d", b[0])
	}
}
