package codec

// The typed codec tier: a concrete-type → codec registry with a one-byte
// type tag per registered type, so values of mixed concrete types can be
// encoded reflection-free on edges (Auto), inside snapshots
// (EncodeAnyFramed), and recursively inside composite values ([]any,
// map[...]any). encoding/gob remains only as the final fallback for
// unregistered types, under its own tag.
//
// Tags are process-local: built-in shapes hold fixed tags, custom types
// are numbered in registration (init) order. Every artifact carrying
// tagged encodings (statestore snapshot frames, audit fingerprints) is a
// process-lifetime artifact in this engine, and the snapshot frames are
// additionally versioned so a foreign image is rejected, not misdecoded.

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// TypeTag identifies a concrete value type in the typed tier's
// tagged-union encoding.
type TypeTag uint8

// Built-in tags. TagNil marks a nil interface value (which gob cannot
// encode at all); TagGob frames a reflective encoding/gob fallback for
// types never registered with RegisterType.
const (
	TagNil TypeTag = iota
	TagGob
	TagInt64
	TagFloat64
	TagString
	TagBytes
	TagBool
	TagInt
	TagUint64
	TagAnySlice       // []any (list state)
	TagInt64Slice     // []int64
	TagMapInt64Any    // map[int64]any
	TagMapUint64Int64 // map[uint64]int64
	TagMapStringAny   // map[string]any

	// firstCustomTag is where RegisterType starts numbering.
	firstCustomTag TypeTag = 16
)

// regState is the immutable registry image. Registration copies and
// atomically replaces it, so the encode/decode hot path reads it without
// locking.
type regState struct {
	byType map[reflect.Type]regEntry
	byTag  [256]Codec
	next   TypeTag
}

type regEntry struct {
	tag TypeTag
	c   Codec
}

var (
	regMu    sync.Mutex // serializes RegisterType
	registry atomic.Pointer[regState]
)

func init() {
	st := &regState{byType: make(map[reflect.Type]regEntry), next: firstCustomTag}
	builtin := func(tag TypeTag, sample any, c Codec) {
		st.byType[reflect.TypeOf(sample)] = regEntry{tag: tag, c: c}
		st.byTag[tag] = c
	}
	builtin(TagInt64, int64(0), Int64Codec{})
	builtin(TagFloat64, float64(0), Float64Codec{})
	builtin(TagString, "", StringCodec{})
	builtin(TagBytes, []byte(nil), BytesCodec{})
	builtin(TagBool, false, BoolCodec{})
	builtin(TagInt, int(0), IntCodec{})
	builtin(TagUint64, uint64(0), Uint64Codec{})
	builtin(TagAnySlice, []any(nil), AnySliceCodec{})
	builtin(TagInt64Slice, []int64(nil), Int64SliceCodec{})
	builtin(TagMapInt64Any, map[int64]any(nil), MapInt64AnyCodec{})
	builtin(TagMapUint64Int64, map[uint64]int64(nil), MapUint64Int64Codec{})
	builtin(TagMapStringAny, map[string]any(nil), MapStringAnyCodec{})
	st.byTag[TagGob] = GobCodec{}
	registry.Store(st)
}

// RegisterType binds a hand-written codec to sample's concrete type and
// assigns it a tag in the typed tier. Values of that type then encode
// through c everywhere the tier runs: Auto edges, snapshot frames,
// fingerprints, and nested inside composite values. Call it from init();
// registering the same type twice with a different codec panics, while
// an identical re-registration is a no-op. Codecs whose type holds maps
// or other unordered containers must encode deterministically (sorted
// iteration) — snapshot fingerprints hash these bytes.
func RegisterType(sample any, c Codec) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("codec: RegisterType with nil sample")
	}
	regMu.Lock()
	defer regMu.Unlock()
	old := registry.Load()
	if e, ok := old.byType[t]; ok {
		if reflect.TypeOf(e.c) == reflect.TypeOf(c) {
			return
		}
		panic(fmt.Sprintf("codec: type %v already registered with %T", t, e.c))
	}
	if old.next == 0 { // wrapped past 255
		panic("codec: type tag space exhausted")
	}
	st := &regState{byType: make(map[reflect.Type]regEntry, len(old.byType)+1), next: old.next + 1}
	for k, v := range old.byType {
		st.byType[k] = v
	}
	st.byTag = old.byTag
	st.byType[t] = regEntry{tag: old.next, c: c}
	st.byTag[old.next] = c
	registry.Store(st)
}

// TypedFor returns the registered codec for v's concrete type (built-in
// or custom), and whether one exists. It never returns the gob fallback.
func TypedFor(v any) (Codec, bool) {
	if v == nil {
		return nil, false
	}
	e, ok := registry.Load().byType[reflect.TypeOf(v)]
	return e.c, ok
}

// resolve maps a value to its tag and codec, taking the gob fallback for
// unregistered types. The type switch keeps the common scalar shapes off
// the reflect path entirely.
func resolve(v any) (TypeTag, Codec) {
	switch v.(type) {
	case nil:
		return TagNil, nil
	case int64:
		return TagInt64, Int64Codec{}
	case float64:
		return TagFloat64, Float64Codec{}
	case string:
		return TagString, StringCodec{}
	case []byte:
		return TagBytes, BytesCodec{}
	case bool:
		return TagBool, BoolCodec{}
	case int:
		return TagInt, IntCodec{}
	case uint64:
		return TagUint64, Uint64Codec{}
	case []any:
		return TagAnySlice, AnySliceCodec{}
	}
	if e, ok := registry.Load().byType[reflect.TypeOf(v)]; ok {
		return e.tag, e.c
	}
	return TagGob, GobCodec{}
}

// codecForTag returns the codec decoding the given tag.
func codecForTag(tag TypeTag) (Codec, bool) {
	c := registry.Load().byTag[tag]
	return c, c != nil
}

// EncodeAny appends the tagged (but unframed) encoding of v: one tag
// byte followed by the payload, which must extend to the end of the
// buffer handed to DecodeAny. It is the edge-level form used by Auto.
func EncodeAny(dst []byte, v any) ([]byte, error) {
	tag, c := resolve(v)
	dst = append(dst, byte(tag))
	if tag == TagNil {
		return dst, nil
	}
	return c.EncodeAppend(dst, v)
}

// DecodeAny decodes a tagged encoding occupying exactly b.
func DecodeAny(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, ErrShortBuffer
	}
	tag := TypeTag(b[0])
	if tag == TagNil {
		if len(b) != 1 {
			return nil, ErrTrailingBytes
		}
		return nil, nil
	}
	c, ok := codecForTag(tag)
	if !ok {
		return nil, fmt.Errorf("codec: unknown type tag %d", tag)
	}
	return c.Decode(b[1:])
}

// EncodeAnyFramed appends `tag | uvarint(len(payload)) | payload` — the
// self-delimiting form composites and snapshot frames embed. The length
// slot is reserved optimistically at one byte (payloads under 128 bytes,
// the common case, never move); longer payloads are shifted right once
// when the final varint width is known, so no intermediate buffer exists
// on either path.
func EncodeAnyFramed(dst []byte, v any) ([]byte, error) {
	tag, c := resolve(v)
	dst = append(dst, byte(tag))
	if tag == TagNil {
		return append(dst, 0), nil
	}
	lenPos := len(dst)
	dst = append(dst, 0)
	out, err := c.EncodeAppend(dst, v)
	if err != nil {
		return dst[:lenPos-1], err
	}
	n := len(out) - lenPos - 1
	if n < 0x80 {
		out[lenPos] = byte(n)
		return out, nil
	}
	var lb [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(lb[:], uint64(n))
	out = append(out, lb[:w-1]...)
	copy(out[lenPos+w:], out[lenPos+1:lenPos+1+n])
	copy(out[lenPos:lenPos+w], lb[:w])
	return out, nil
}

// DecodeAnyFramed decodes one framed value from the front of b and
// reports how many bytes it consumed.
func DecodeAnyFramed(b []byte) (v any, consumed int, err error) {
	if len(b) < 2 {
		return nil, 0, ErrShortBuffer
	}
	tag := TypeTag(b[0])
	n, sz := binary.Uvarint(b[1:])
	if sz <= 0 || uint64(len(b)-1-sz) < n {
		return nil, 0, ErrShortBuffer
	}
	consumed = 1 + sz + int(n)
	if tag == TagNil {
		if n != 0 {
			return nil, 0, ErrTrailingBytes
		}
		return nil, consumed, nil
	}
	c, ok := codecForTag(tag)
	if !ok {
		return nil, 0, fmt.Errorf("codec: unknown type tag %d", tag)
	}
	v, err = c.Decode(b[1+sz : consumed])
	if err != nil {
		return nil, 0, err
	}
	return v, consumed, nil
}

// Auto is the default edge codec: it encodes each value through the
// typed tier (one tag byte + the registered codec's payload) and falls
// back to encoding/gob only for types never registered. Pipelines that
// know an edge's exact type can pin the bare codec with
// Stream.EdgeCodec and save the tag byte.
type Auto struct{}

// EncodeAppend implements Codec.
func (Auto) EncodeAppend(dst []byte, v any) ([]byte, error) { return EncodeAny(dst, v) }

// Decode implements Codec.
func (Auto) Decode(b []byte) (any, error) { return DecodeAny(b) }
