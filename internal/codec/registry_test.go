package codec

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// builtinSamples covers every built-in tag with representative values,
// including zero values and shapes that exercise varint width edges.
func builtinSamples() []any {
	return []any{
		int64(0), int64(-1), int64(1 << 40), int64(-1 << 40),
		float64(0), float64(3.14159), float64(-1e300),
		"", "hello", strings.Repeat("x", 300),
		[]byte{}, []byte{1, 2, 3}, bytes.Repeat([]byte{7}, 1000),
		true, false,
		int(0), int(-42), int(1 << 30),
		uint64(0), uint64(1<<64 - 1),
		[]any{}, []any{int64(1), "two", 3.0, nil, []byte{4}},
		[]int64{}, []int64{-1, 0, 1 << 50},
		map[int64]any{}, map[int64]any{-5: "neg", 0: int64(0), 9: []any{true}},
		map[uint64]int64{}, map[uint64]int64{1: -1, 1 << 60: 1 << 60},
		map[string]any{}, map[string]any{"a": int64(1), "b": nil, "c": "s"},
	}
}

func TestEncodeAnyRoundTripBuiltins(t *testing.T) {
	for _, v := range builtinSamples() {
		enc, err := EncodeAny(nil, v)
		if err != nil {
			t.Fatalf("EncodeAny(%#v): %v", v, err)
		}
		got, err := DecodeAny(enc)
		if err != nil {
			t.Fatalf("DecodeAny(%#v): %v", v, err)
		}
		assertSemanticEqual(t, v, got)
	}
}

func TestEncodeAnyFramedRoundTripBuiltins(t *testing.T) {
	for _, v := range append(builtinSamples(), nil) {
		enc, err := EncodeAnyFramed(nil, v)
		if err != nil {
			t.Fatalf("EncodeAnyFramed(%#v): %v", v, err)
		}
		got, used, err := DecodeAnyFramed(enc)
		if err != nil {
			t.Fatalf("DecodeAnyFramed(%#v): %v", v, err)
		}
		if used != len(enc) {
			t.Fatalf("DecodeAnyFramed(%#v) consumed %d of %d bytes", v, used, len(enc))
		}
		assertSemanticEqual(t, v, got)
	}
}

// assertSemanticEqual compares with the convention the tier guarantees:
// empty slices/maps may decode as empty (not nil-vs-empty-identical).
func assertSemanticEqual(t *testing.T, want, got any) {
	t.Helper()
	if want == nil {
		if got != nil {
			t.Fatalf("round trip of nil gave %#v", got)
		}
		return
	}
	wv := reflect.ValueOf(want)
	if (wv.Kind() == reflect.Slice || wv.Kind() == reflect.Map) && wv.Len() == 0 {
		gv := reflect.ValueOf(got)
		if gv.Kind() != wv.Kind() || gv.Len() != 0 || gv.Type() != wv.Type() {
			t.Fatalf("round trip of %#v gave %#v", want, got)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip of %#v gave %#v", want, got)
	}
}

// TestFramedLengthShift exercises the optimistic one-byte length
// reservation on both sides of the 128-byte boundary, where payloads must
// be shifted right for the wider varint.
func TestFramedLengthShift(t *testing.T) {
	for _, n := range []int{0, 1, 126, 127, 128, 129, 1 << 14, 1<<14 + 1} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i)
		}
		// Prefix garbage ensures the shift respects the dst offset.
		enc, err := EncodeAnyFramed([]byte{0xAA, 0xBB}, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, used, err := DecodeAnyFramed(enc[2:])
		if err != nil || used != len(enc)-2 {
			t.Fatalf("n=%d: decode used=%d err=%v", n, used, err)
		}
		if !bytes.Equal(got.([]byte), payload) {
			t.Fatalf("n=%d: payload corrupted by length shift", n)
		}
	}
}

func TestDecodeAnyRejectsTrailing(t *testing.T) {
	enc, err := EncodeAny(nil, int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAny(append(enc, 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte after int64 not rejected: %v", err)
	}
	if _, err := DecodeAny([]byte{byte(TagNil), 1}); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte after nil not rejected: %v", err)
	}
}

func TestDecodeAnyUnknownTag(t *testing.T) {
	if _, err := DecodeAny([]byte{200, 1, 2}); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
	if _, _, err := DecodeAnyFramed([]byte{200, 2, 1, 2}); err == nil {
		t.Fatal("unknown framed tag decoded without error")
	}
}

type regTestType struct{ A int64 }
type regTestCodec struct{}

func (regTestCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	return Int64Codec{}.EncodeAppend(dst, v.(regTestType).A)
}
func (regTestCodec) Decode(b []byte) (any, error) {
	v, err := Int64Codec{}.Decode(b)
	if err != nil {
		return nil, err
	}
	return regTestType{A: v.(int64)}, nil
}

type regTestCodec2 struct{ regTestCodec }

func TestRegisterType(t *testing.T) {
	RegisterType(regTestType{}, regTestCodec{})
	if _, ok := TypedFor(regTestType{}); !ok {
		t.Fatal("registered type not found")
	}
	// Identical re-registration is a no-op.
	RegisterType(regTestType{}, regTestCodec{})
	// Conflicting re-registration panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting re-registration did not panic")
			}
		}()
		RegisterType(regTestType{}, regTestCodec2{})
	}()
	enc, err := EncodeAny(nil, regTestType{A: 41})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAny(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != (regTestType{A: 41}) {
		t.Fatalf("custom type round trip gave %#v", got)
	}
}

type unregisteredType struct{ S string }

func TestGobFallbackRoundTrip(t *testing.T) {
	// Registered with gob (required for interface encoding) but NOT with
	// RegisterType, so the tier must take the TagGob fallback.
	gob.Register(unregisteredType{})
	v := unregisteredType{S: "via gob"}
	enc, err := EncodeAny(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	if TypeTag(enc[0]) != TagGob {
		t.Fatalf("unregistered type got tag %d, want TagGob", enc[0])
	}
	got, err := DecodeAny(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("gob fallback round trip gave %#v", got)
	}
}

// TestAutoMatchesEncodeAny pins Auto as a plain alias of the tier.
func TestAutoMatchesEncodeAny(t *testing.T) {
	for _, v := range []any{int64(5), "s", []byte{1}} {
		a, _ := Auto{}.EncodeAppend(nil, v)
		b, _ := EncodeAny(nil, v)
		if !bytes.Equal(a, b) {
			t.Fatalf("Auto encoding diverges from EncodeAny for %#v", v)
		}
	}
}

// TestEncodeAnyDeterministic pins byte determinism for map composites:
// fingerprints hash these bytes at snapshot and restore time.
func TestEncodeAnyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := map[string]any{}
	m2 := map[uint64]int64{}
	for i := 0; i < 200; i++ {
		m[strings.Repeat("k", rng.Intn(10)+1)+string(rune('a'+rng.Intn(26)))] = int64(i)
		m2[uint64(rng.Intn(1000))] = int64(i)
	}
	for _, v := range []any{m, m2} {
		first, err := EncodeAny(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := EncodeAny(nil, v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, again) {
				t.Fatalf("map encoding nondeterministic for %T", v)
			}
		}
	}
}
