package codec

// Hand-written codecs for the remaining scalar shapes and for the
// generic composites — []any list-state values and the map shapes the
// operators keep in state. Composites embed their elements through the
// tagged-union frame (EncodeAnyFramed), so any registered type nests,
// and unregistered element types degrade to the gob fallback per
// element rather than per container.
//
// Map codecs iterate keys in sorted order: their bytes feed the audit
// plane's state fingerprint, which must be identical at snapshot time
// and after restore regardless of map iteration order.

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// BoolCodec encodes bool values as one byte.
type BoolCodec struct{}

// EncodeAppend implements Codec.
func (BoolCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	b, ok := v.(bool)
	if !ok {
		return dst, fmt.Errorf("codec: BoolCodec got %T", v)
	}
	if b {
		return append(dst, 1), nil
	}
	return append(dst, 0), nil
}

// Decode implements Codec.
func (BoolCodec) Decode(b []byte) (any, error) {
	if len(b) != 1 {
		return nil, ErrTrailingBytes
	}
	switch b[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return nil, fmt.Errorf("codec: invalid bool byte %d", b[0])
	}
}

// IntCodec encodes int values as zig-zag varints.
type IntCodec struct{}

// EncodeAppend implements Codec.
func (IntCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	n, ok := v.(int)
	if !ok {
		return dst, fmt.Errorf("codec: IntCodec got %T", v)
	}
	return binary.AppendVarint(dst, int64(n)), nil
}

// Decode implements Codec.
func (IntCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Varint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	if sz != len(b) {
		return nil, ErrTrailingBytes
	}
	return int(n), nil
}

// Uint64Codec encodes uint64 values as uvarints.
type Uint64Codec struct{}

// EncodeAppend implements Codec.
func (Uint64Codec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	n, ok := v.(uint64)
	if !ok {
		return dst, fmt.Errorf("codec: Uint64Codec got %T", v)
	}
	return binary.AppendUvarint(dst, n), nil
}

// Decode implements Codec.
func (Uint64Codec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	if sz != len(b) {
		return nil, ErrTrailingBytes
	}
	return n, nil
}

// AnySliceCodec encodes []any — the list-state shape — as a count
// followed by framed elements.
type AnySliceCodec struct{}

// EncodeAppend implements Codec.
func (AnySliceCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	s, ok := v.([]any)
	if !ok {
		return dst, fmt.Errorf("codec: AnySliceCodec got %T", v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	var err error
	for _, e := range s {
		if dst, err = EncodeAnyFramed(dst, e); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Decode implements Codec.
func (AnySliceCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	b = b[sz:]
	out := make([]any, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeAnyFramed(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		out = append(out, v)
	}
	if len(b) != 0 {
		return nil, ErrTrailingBytes
	}
	return out, nil
}

// Int64SliceCodec encodes []int64 as a count followed by varints.
type Int64SliceCodec struct{}

// EncodeAppend implements Codec.
func (Int64SliceCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	s, ok := v.([]int64)
	if !ok {
		return dst, fmt.Errorf("codec: Int64SliceCodec got %T", v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, n := range s {
		dst = binary.AppendVarint(dst, n)
	}
	return dst, nil
}

// Decode implements Codec.
func (Int64SliceCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	b = b[sz:]
	out := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, w := binary.Varint(b)
		if w <= 0 {
			return nil, ErrShortBuffer
		}
		b = b[w:]
		out = append(out, v)
	}
	if len(b) != 0 {
		return nil, ErrTrailingBytes
	}
	return out, nil
}

// MapInt64AnyCodec encodes map[int64]any (window pane state) with
// sorted keys and framed values.
type MapInt64AnyCodec struct{}

// EncodeAppend implements Codec.
func (MapInt64AnyCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	m, ok := v.(map[int64]any)
	if !ok {
		return dst, fmt.Errorf("codec: MapInt64AnyCodec got %T", v)
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	var err error
	for _, k := range keys {
		dst = binary.AppendVarint(dst, k)
		if dst, err = EncodeAnyFramed(dst, m[k]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Decode implements Codec.
func (MapInt64AnyCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	b = b[sz:]
	out := make(map[int64]any, n)
	for i := uint64(0); i < n; i++ {
		k, w := binary.Varint(b)
		if w <= 0 {
			return nil, ErrShortBuffer
		}
		b = b[w:]
		v, used, err := DecodeAnyFramed(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		out[k] = v
	}
	if len(b) != 0 {
		return nil, ErrTrailingBytes
	}
	return out, nil
}

// MapUint64Int64Codec encodes map[uint64]int64 with sorted keys.
type MapUint64Int64Codec struct{}

// EncodeAppend implements Codec.
func (MapUint64Int64Codec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	m, ok := v.(map[uint64]int64)
	if !ok {
		return dst, fmt.Errorf("codec: MapUint64Int64Codec got %T", v)
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, k)
		dst = binary.AppendVarint(dst, m[k])
	}
	return dst, nil
}

// Decode implements Codec.
func (MapUint64Int64Codec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	b = b[sz:]
	out := make(map[uint64]int64, n)
	for i := uint64(0); i < n; i++ {
		k, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, ErrShortBuffer
		}
		b = b[w:]
		v, w2 := binary.Varint(b)
		if w2 <= 0 {
			return nil, ErrShortBuffer
		}
		b = b[w2:]
		out[k] = v
	}
	if len(b) != 0 {
		return nil, ErrTrailingBytes
	}
	return out, nil
}

// MapStringAnyCodec encodes map[string]any with sorted keys and framed
// values.
type MapStringAnyCodec struct{}

// EncodeAppend implements Codec.
func (MapStringAnyCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return dst, fmt.Errorf("codec: MapStringAnyCodec got %T", v)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	var err error
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		if dst, err = EncodeAnyFramed(dst, m[k]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Decode implements Codec.
func (MapStringAnyCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, ErrShortBuffer
	}
	b = b[sz:]
	out := make(map[string]any, n)
	for i := uint64(0); i < n; i++ {
		kl, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < kl {
			return nil, ErrShortBuffer
		}
		k := string(b[w : w+int(kl)])
		b = b[w+int(kl):]
		v, used, err := DecodeAnyFramed(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		out[k] = v
	}
	if len(b) != 0 {
		return nil, ErrTrailingBytes
	}
	return out, nil
}
