package codec

import (
	"bytes"
	"encoding/gob"
)

// GobCodec encodes arbitrary values with encoding/gob. Concrete types
// must be registered (see statestore.Register / gob.Register). It is the
// default edge codec for pipelines that do not provide a hand-written one;
// a fresh encoder per value trades efficiency for self-containment.
type GobCodec struct{}

type gobBox struct{ V any }

// EncodeAppend implements Codec.
func (GobCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobBox{V: v}); err != nil {
		return dst, err
	}
	return append(dst, buf.Bytes()...), nil
}

// Decode implements Codec.
func (GobCodec) Decode(b []byte) (any, error) {
	var box gobBox
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
		return nil, err
	}
	return box.V, nil
}
