package codec

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// GobCodec encodes arbitrary values with encoding/gob. Concrete types
// must be registered (see statestore.Register / gob.Register). It is the
// default edge codec for pipelines that do not provide a hand-written one;
// a fresh encoder per value trades efficiency for self-containment (each
// value's stream is self-describing, matching the fresh decoder per
// value on the receive side).
type GobCodec struct{}

type gobBox struct{ V any }

// appendSink adapts a byte slice as the encoder's io.Writer so gob output
// lands directly in the destination — no intermediate bytes.Buffer whose
// contents get copied out again. Sinks are pooled to keep the encode path
// free of per-value scaffolding allocations.
type appendSink struct{ b []byte }

func (w *appendSink) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var sinkPool = sync.Pool{New: func() any { return new(appendSink) }}

// EncodeAppend implements Codec.
func (GobCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	w := sinkPool.Get().(*appendSink)
	w.b = dst
	err := gob.NewEncoder(w).Encode(gobBox{V: v})
	out := w.b
	w.b = nil
	sinkPool.Put(w)
	if err != nil {
		// Partial output may sit past len(dst) in the shared array; the
		// caller truncates back to its own length, so it is never seen.
		return dst, err
	}
	return out, nil
}

// Decode implements Codec.
func (GobCodec) Decode(b []byte) (any, error) {
	var box gobBox
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&box); err != nil {
		return nil, err
	}
	return box.V, nil
}

// GobFallback returns the reflective fallback codec. It is the only
// sanctioned way to obtain one outside this package (benchmark
// comparisons, legacy decode paths): constructing codec.GobCodec{}
// directly on an edge is flagged by clonos-vet's gobcodec analyzer, so
// the ~150x reflection tax cannot be reintroduced silently.
func GobFallback() Codec { return GobCodec{} }
