package codec

import (
	"math"
	"testing"
	"testing/quick"

	"clonos/internal/types"
)

func roundTrip(t *testing.T, e types.Element, c Codec) types.Element {
	t.Helper()
	b, err := EncodeElement(nil, e, c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(b) < 4 {
		t.Fatalf("encoded %d bytes, want >= 4", len(b))
	}
	got, err := DecodeElement(b[4:], c)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRecordRoundTripInt64(t *testing.T) {
	e := types.Record(42, 1234, int64(-77))
	got := roundTrip(t, e, Int64Codec{})
	if got.Kind != types.KindRecord || got.Key != 42 || got.Timestamp != 1234 || got.Value.(int64) != -77 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRecordRoundTripString(t *testing.T) {
	e := types.Record(7, -5, "hello stream")
	got := roundTrip(t, e, StringCodec{})
	if got.Value.(string) != "hello stream" || got.Timestamp != -5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRecordRoundTripFloat64(t *testing.T) {
	e := types.Record(1, 2, 3.14159)
	got := roundTrip(t, e, Float64Codec{})
	if got.Value.(float64) != 3.14159 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestRecordRoundTripBytes(t *testing.T) {
	payload := []byte{0, 1, 2, 255}
	got := roundTrip(t, types.Record(0, 0, payload), BytesCodec{})
	b := got.Value.([]byte)
	if string(b) != string(payload) {
		t.Fatalf("round trip mismatch: %v", b)
	}
}

func TestRecordRoundTripJSON(t *testing.T) {
	got := roundTrip(t, types.Record(3, 9, map[string]any{"a": "b"}), JSONCodec{})
	m := got.Value.(map[string]any)
	if m["a"] != "b" {
		t.Fatalf("round trip mismatch: %v", m)
	}
}

func TestWatermarkRoundTrip(t *testing.T) {
	got := roundTrip(t, types.Watermark(99), Int64Codec{})
	if got.Kind != types.KindWatermark || got.Timestamp != 99 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	got := roundTrip(t, types.Barrier(17), Int64Codec{})
	if got.Kind != types.KindBarrier || got.Checkpoint != 17 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEndOfStreamRoundTrip(t *testing.T) {
	got := roundTrip(t, types.EndOfStream(), Int64Codec{})
	if got.Kind != types.KindEndOfStream {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	if _, err := (Int64Codec{}).EncodeAppend(nil, "nope"); err == nil {
		t.Fatal("Int64Codec accepted a string")
	}
	if _, err := (Float64Codec{}).EncodeAppend(nil, 3); err == nil {
		t.Fatal("Float64Codec accepted an int")
	}
	if _, err := (StringCodec{}).EncodeAppend(nil, 3); err == nil {
		t.Fatal("StringCodec accepted an int")
	}
	if _, err := (BytesCodec{}).EncodeAppend(nil, "s"); err == nil {
		t.Fatal("BytesCodec accepted a string")
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := DecodeElement(nil, Int64Codec{}); err == nil {
		t.Fatal("decoding empty input succeeded")
	}
	if _, err := DecodeElement([]byte{byte(types.KindWatermark)}, Int64Codec{}); err == nil {
		t.Fatal("decoding truncated watermark succeeded")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, err := DecodeElement([]byte{200, 1, 2}, Int64Codec{}); err == nil {
		t.Fatal("decoding unknown kind succeeded")
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	prefix := []byte{9, 9}
	b, err := EncodeElement(prefix, types.Record(1, 1, int64(1)), Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 9 || b[1] != 9 {
		t.Fatal("prefix clobbered")
	}
}

func TestQuickInt64RoundTrip(t *testing.T) {
	f := func(key uint64, ts, v int64) bool {
		got := roundTrip(t, types.Record(key, ts, v), Int64Codec{})
		return got.Key == key && got.Timestamp == ts && got.Value.(int64) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(key uint64, ts int64, s string) bool {
		got := roundTrip(t, types.Record(key, ts, s), StringCodec{})
		return got.Value.(string) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true // NaN != NaN; bits still round-trip
		}
		got := roundTrip(t, types.Record(0, 0, v), Float64Codec{})
		return got.Value.(float64) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
