// Package audit implements the online causal-consistency audit plane:
// an always-on runtime monitor that verifies the causal-recovery
// contract (exactly-once, byte-deterministic replay, monotone
// watermarks) while the job runs, instead of only under test oracles.
//
// The Auditor mirrors the faultinject.Injector arming pattern: a nil
// *Auditor is the disarmed state, every method is nil-receiver safe and
// free of allocations, and the job wires hooks unconditionally through a
// task-cached handle. Armed, the auditor observes three planes:
//
//   - channel streams: per-channel sequence/epoch continuity, dedup-floor
//     sanity, and a per-message + rolling per-epoch payload hash recorded
//     at delivery. When a recovering sender re-produces a seq (in-flight
//     log replay or dedup-suppressed guided re-execution) the bytes are
//     compared against what the predecessor delivered — the PR 1 "silent
//     byte-stream desync" bug class becomes a named violation.
//   - state attestation: CheckFingerprint compares a snapshot-time state
//     fingerprint against the restore-time recomputation (see
//     Fingerprint), catching divergent restores at recovery rather than
//     at the sink.
//   - watermark/latency sanity: watermark regression per input channel
//     and latency-marker reordering on source-fed channels.
//
// Violations are delivered to a single reporter callback (installed by
// the job runtime), which turns each one into a tracer event, a
// clonos_audit_violations_total counter increment, and a flight-recorder
// record; /healthz aggregates the counter into the job health verdict.
package audit

import (
	"fmt"
	"sync"
	"sync/atomic"

	"clonos/internal/types"
)

// Invariant names, used as the {invariant} label of
// clonos_audit_violations_total and as the violation event prefix.
const (
	// InvSeqGap: a channel delivered seq N+k (k>1) after N — the stream
	// skipped buffers the receiver never saw.
	InvSeqGap = "seq-gap"
	// InvEpochRegression: a freshly delivered buffer carries an epoch
	// lower than the channel's last — epochs only roll forward.
	InvEpochRegression = "epoch-regression"
	// InvReplayHashMismatch: a re-produced buffer (in-flight log replay
	// or dedup-suppressed re-execution) does not byte-match what the
	// predecessor delivered for the same seq.
	InvReplayHashMismatch = "replay-hash-mismatch"
	// InvDedupFloorRegression: a sender's dedup floor moved backward
	// within an incarnation, or claims deliveries past the audited tail.
	InvDedupFloorRegression = "dedup-floor-regression"
	// InvWatermarkRegression: an input channel announced a watermark
	// lower than its previous one.
	InvWatermarkRegression = "watermark-regression"
	// InvMarkerReorder: a source-fed channel delivered latency markers
	// out of stamp order.
	InvMarkerReorder = "latency-marker-reorder"
	// InvFingerprintMismatch: restored task state does not reproduce the
	// fingerprint recorded at snapshot time.
	InvFingerprintMismatch = "fingerprint-mismatch"
)

// Violation is one detected invariant breach.
type Violation struct {
	Invariant string
	Task      types.TaskID
	// Channel is the affected channel's string form ("" for task-scoped
	// violations such as fingerprint mismatches).
	Channel string
	Detail  string
}

func (v Violation) String() string {
	if v.Channel != "" {
		return fmt.Sprintf("%s %v %s: %s", v.Invariant, v.Task, v.Channel, v.Detail)
	}
	return fmt.Sprintf("%s %v: %s", v.Invariant, v.Task, v.Detail)
}

// FNV-1a, inlined so the per-message hash costs no allocation.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// streamEntry is the recorded truth for one delivered (channel, seq):
// the buffer's epoch, its payload hash, and the channel's rolling
// per-epoch hash after this buffer.
type streamEntry struct {
	epoch types.EpochID
	sum   uint64
	cum   uint64
}

// chanState is the auditor's per-channel view of the delivered stream.
type chanState struct {
	anchored bool
	lastSeq  uint64
	lastEp   types.EpochID
	// curEpoch/epochCum maintain the rolling hash of the epoch being
	// delivered; each delivered buffer's snapshot of it is kept in
	// entries so re-deliveries can resynchronize it.
	curEpoch types.EpochID
	epochCum uint64
	entries  map[uint64]streamEntry
	// markerFloor is the highest latency-marker stamp seen (source-fed
	// channels only). Re-delivery after a receiver recovery rewinds the
	// channel, so the floor is re-seeded while the stream rewinds.
	markerFloor  int64
	markerSeeded bool
	// reported throttles per-channel violation reporting; counters keep
	// counting past the cap but the reporter goes quiet so a diverged
	// stream cannot flood the tracer.
	reported int
}

// reportCap bounds reporter callbacks per channel (see chanState.reported).
const reportCap = 16

// Auditor is the armed audit plane. The zero value is not useful; use
// New. A nil *Auditor is the disarmed state: every method is safe and
// free to call on it.
type Auditor struct {
	mu       sync.Mutex
	reporter func(Violation)
	chans    map[types.ChannelID]*chanState
	total    atomic.Uint64
	byInv    map[string]uint64
}

// New returns an armed auditor. Install it via job.Config.Audit and give
// the runtime's reporter a chance to be wired before traffic flows.
func New() *Auditor {
	return &Auditor{
		chans: make(map[types.ChannelID]*chanState),
		byInv: make(map[string]uint64),
	}
}

// SetReporter installs the violation sink. The callback runs outside the
// auditor's lock, on whichever goroutine detected the violation.
func (a *Auditor) SetReporter(f func(Violation)) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.reporter = f
	a.mu.Unlock()
}

// Total reports the number of violations detected so far (never reset —
// Reset clears stream state, not the verdict).
func (a *Auditor) Total() uint64 {
	if a == nil {
		return 0
	}
	return a.total.Load()
}

// ByInvariant returns a copy of the per-invariant violation counts.
func (a *Auditor) ByInvariant() map[string]uint64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.byInv))
	for k, v := range a.byInv {
		out[k] = v
	}
	return out
}

// violate counts a violation and decides whether to report it; the
// reporter call happens outside the lock (callers pass the channel state
// whose throttle applies, or nil for task-scoped violations).
func (a *Auditor) violate(cs *chanState, v Violation) {
	a.total.Add(1)
	a.mu.Lock()
	a.byInv[v.Invariant]++
	report := a.reporter
	if cs != nil {
		cs.reported++
		if cs.reported > reportCap {
			report = nil
		}
	}
	a.mu.Unlock()
	if report != nil {
		report(v)
	}
}

// state returns (creating if needed) the channel's audit state. Callers
// hold a.mu.
func (a *Auditor) state(ch types.ChannelID) *chanState {
	cs, ok := a.chans[ch]
	if !ok {
		cs = &chanState{entries: make(map[uint64]streamEntry)}
		a.chans[ch] = cs
	}
	return cs
}

// OnDeliver observes one accepted message on the receiving endpoint. A
// fresh seq is checked for sequence/epoch continuity and recorded
// (payload hash + rolling epoch hash); a seq already recorded is a
// re-delivery after a receiver recovery and must byte-match the record.
func (a *Auditor) OnDeliver(task types.TaskID, ch types.ChannelID, seq uint64, epoch types.EpochID, data []byte) {
	if a == nil {
		return
	}
	var v *Violation
	a.mu.Lock()
	cs := a.state(ch)
	if cs.anchored && seq <= cs.lastSeq {
		// The stream rewound: a replacement receiver is being replayed
		// from the last checkpoint's epoch boundary. Marker stamps will
		// legitimately repeat, so the floor re-seeds.
		cs.markerSeeded = false
	}
	if e, ok := cs.entries[seq]; ok {
		// Re-delivery: the bytes must match what the predecessor saw.
		sum := fnvMix(fnvOffset, data)
		if sum != e.sum || epoch != e.epoch {
			v = &Violation{Invariant: InvReplayHashMismatch, Task: task, Channel: ch.String(),
				Detail: fmt.Sprintf("re-delivered seq %d epoch %d payload hash %016x, recorded epoch %d hash %016x",
					seq, epoch, sum, e.epoch, e.sum)}
		}
		// Resynchronize the rolling hash to the recorded position so the
		// first post-rewind fresh buffer continues the right chain.
		cs.curEpoch = e.epoch
		cs.epochCum = e.cum
	} else if !cs.anchored || seq > cs.lastSeq {
		if cs.anchored && seq != cs.lastSeq+1 {
			v = &Violation{Invariant: InvSeqGap, Task: task, Channel: ch.String(),
				Detail: fmt.Sprintf("seq jumped %d -> %d (epoch %d)", cs.lastSeq, seq, epoch)}
		} else if cs.anchored && epoch < cs.lastEp {
			v = &Violation{Invariant: InvEpochRegression, Task: task, Channel: ch.String(),
				Detail: fmt.Sprintf("epoch regressed %d -> %d at seq %d", cs.lastEp, epoch, seq)}
		}
		if epoch != cs.curEpoch {
			cs.curEpoch = epoch
			cs.epochCum = fnvOffset
		}
		sum := fnvMix(fnvOffset, data)
		cs.epochCum = fnvMix(cs.epochCum, data)
		cs.entries[seq] = streamEntry{epoch: epoch, sum: sum, cum: cs.epochCum}
	}
	// A fresh seq at or below lastSeq whose record was truncated cannot
	// be checked or safely re-recorded; it only moves the cursor.
	cs.anchored = true
	cs.lastSeq = seq
	cs.lastEp = epoch
	a.mu.Unlock()
	if v != nil {
		a.violate(cs, *v)
	}
}

// OnResend observes a sender re-producing an already-numbered buffer:
// source is "replay" for in-flight log retransmission and "dedup" for a
// dedup-suppressed buffer regenerated by guided re-execution. Either way
// the bytes must match what the receiver recorded for that seq; seqs the
// receiver never saw (or whose record was truncated) are uncheckable.
func (a *Auditor) OnResend(task types.TaskID, ch types.ChannelID, seq uint64, epoch types.EpochID, data []byte, source string) {
	if a == nil {
		return
	}
	var v *Violation
	a.mu.Lock()
	cs := a.chans[ch]
	if cs != nil {
		if e, ok := cs.entries[seq]; ok {
			sum := fnvMix(fnvOffset, data)
			if sum != e.sum || epoch != e.epoch {
				v = &Violation{Invariant: InvReplayHashMismatch, Task: task, Channel: ch.String(),
					Detail: fmt.Sprintf("%s of seq %d epoch %d payload hash %016x, receiver recorded epoch %d hash %016x",
						source, seq, epoch, sum, e.epoch, e.sum)}
			}
		}
	}
	a.mu.Unlock()
	if v != nil {
		a.violate(cs, *v)
	}
}

// OnDedupFloor observes a sender-side dedup floor update after the
// sender's own recovery: prev is the channel's floor before the update.
// The floor may not move backward within an incarnation, and may not
// exceed the audited delivery tail (the receiver cannot have received
// buffers the audit never saw delivered).
func (a *Auditor) OnDedupFloor(task types.TaskID, ch types.ChannelID, prev, upTo uint64) {
	if a == nil {
		return
	}
	var v *Violation
	a.mu.Lock()
	cs := a.chans[ch]
	switch {
	case upTo < prev:
		v = &Violation{Invariant: InvDedupFloorRegression, Task: task, Channel: ch.String(),
			Detail: fmt.Sprintf("dedup floor moved backward %d -> %d", prev, upTo)}
	case cs != nil && cs.anchored && upTo > cs.lastSeq:
		v = &Violation{Invariant: InvDedupFloorRegression, Task: task, Channel: ch.String(),
			Detail: fmt.Sprintf("dedup floor %d beyond audited delivery tail %d", upTo, cs.lastSeq)}
	}
	a.mu.Unlock()
	if v != nil {
		a.violate(cs, *v)
	}
}

// OnWatermark observes a per-channel watermark announcement: prev is the
// channel's current merged watermark, ts the announced one. Equal
// re-announcements are fine; a lower one is a regression.
func (a *Auditor) OnWatermark(task types.TaskID, ch types.ChannelID, prev, ts int64) {
	if a == nil {
		return
	}
	if ts >= prev {
		return
	}
	a.mu.Lock()
	cs := a.state(ch)
	a.mu.Unlock()
	a.violate(cs, Violation{Invariant: InvWatermarkRegression, Task: task, Channel: ch.String(),
		Detail: fmt.Sprintf("watermark regressed %d -> %d", prev, ts)})
}

// OnPreload observes a restored in-flight prefix being preloaded onto a
// channel ahead of live replay (unaligned-checkpoint restore). Preloaded
// buffers come from the receiver's own snapshot and bypass the endpoint
// accept path, so OnDeliver's rewind detection never sees them — but they
// rewind the channel to the epoch boundary all the same, and the marker
// stamps inside the preloaded window legitimately repeat. Re-seed the
// floor exactly as OnDeliver does for a re-delivered seq.
func (a *Auditor) OnPreload(task types.TaskID, ch types.ChannelID) {
	if a == nil {
		return
	}
	a.mu.Lock()
	cs := a.state(ch)
	cs.markerSeeded = false
	a.mu.Unlock()
}

// OnMarker observes a latency-marker stamp on a source-fed channel.
// Stamps from a single source subtask are monotone per channel; the
// floor re-seeds while the channel rewinds (see OnDeliver).
func (a *Auditor) OnMarker(task types.TaskID, ch types.ChannelID, stamp int64) {
	if a == nil {
		return
	}
	var v *Violation
	a.mu.Lock()
	cs := a.state(ch)
	if cs.markerSeeded && stamp < cs.markerFloor {
		v = &Violation{Invariant: InvMarkerReorder, Task: task, Channel: ch.String(),
			Detail: fmt.Sprintf("marker stamp regressed %d -> %d", cs.markerFloor, stamp)}
	}
	if !cs.markerSeeded || stamp > cs.markerFloor {
		cs.markerFloor = stamp
		cs.markerSeeded = true
	}
	a.mu.Unlock()
	if v != nil {
		a.violate(cs, *v)
	}
}

// CheckFingerprint compares a snapshot-time state fingerprint against
// the restore-time recomputation, reporting a violation and returning
// false on mismatch.
func (a *Auditor) CheckFingerprint(task types.TaskID, cp types.CheckpointID, want, got uint64) bool {
	if a == nil || want == got {
		return true
	}
	a.violate(nil, Violation{Invariant: InvFingerprintMismatch, Task: task,
		Detail: fmt.Sprintf("checkpoint %d: restored state fingerprint %016x, snapshot recorded %016x", cp, got, want)})
	return false
}

// Truncate drops recorded stream entries for epochs at or below cp,
// mirroring in-flight log truncation on checkpoint completion: replay
// always starts past the latest completed checkpoint, so older records
// can never be compared against again.
func (a *Auditor) Truncate(cp types.CheckpointID) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for _, cs := range a.chans {
		for seq, e := range cs.entries {
			if e.epoch <= cp {
				delete(cs.entries, seq)
			}
		}
	}
	a.mu.Unlock()
}

// Reset clears all recorded stream state. Called on a global rollback
// restart: re-execution after a global restore is not byte-guided, so
// the predecessor streams are no longer the reference. Violation totals
// survive — a detected violation stays detected.
func (a *Auditor) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.chans = make(map[types.ChannelID]*chanState)
	a.mu.Unlock()
}
