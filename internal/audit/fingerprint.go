package audit

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"

	"clonos/internal/statestore"
)

// Fingerprint computes a deterministic digest of a task's recoverable
// state: keyed state, encoded timer state, and the watermark-merge state
// (per-channel watermarks in input order plus the merged watermark).
//
// The keyed state is walked in sorted (name, key) order and each value
// is gob-encoded through a single encoder stream into the hash —
// statestore.Store.Snapshot's bytes cannot be hashed directly because
// gob's map encoding is order-nondeterministic. A correct restore
// reproduces the identical walk, so snapshot-time and restore-time
// fingerprints match bit-for-bit.
//
// The zero return value is reserved for "no fingerprint recorded"
// (TaskSnapshot.Fingerprint of audit-off snapshots); a digest that lands
// on 0 is nudged to 1.
func Fingerprint(store *statestore.Store, timers []byte, chanWms []int64, curWm int64) (uint64, error) {
	h := fnv.New64a()
	enc := gob.NewEncoder(h)
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for _, name := range store.Names() {
		io.WriteString(h, name)
		ks := store.Keyed(name)
		for _, key := range ks.SortedKeys() {
			writeU64(key)
			v := ks.Get(key)
			if v == nil {
				// gob cannot encode a nil interface; a distinct sentinel
				// keeps nil distinguishable from absent.
				writeU64(fnvOffset)
				continue
			}
			if err := enc.Encode(v); err != nil {
				return 0, fmt.Errorf("audit: fingerprint %s[%d]: %w", name, key, err)
			}
		}
	}
	h.Write(timers)
	for _, wm := range chanWms {
		writeU64(uint64(wm))
	}
	writeU64(uint64(curWm))
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	return fp, nil
}
