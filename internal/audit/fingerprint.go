package audit

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"clonos/internal/codec"
	"clonos/internal/statestore"
)

// Fingerprint computes a deterministic digest of a task's recoverable
// state: keyed state, encoded timer state, and the watermark-merge state
// (per-channel watermarks in input order plus the merged watermark).
//
// The keyed state is walked in sorted (name, key) order and each value
// is hashed as its typed-codec frame (codec.EncodeAnyFramed) into a
// reused scratch buffer — registered types pay the hand-written encoder
// instead of a reflection walk, and a nil value encodes as its own tag,
// so no sentinel is needed. Typed encoders emit map contents in sorted
// key order, so the bytes are deterministic; a correct restore
// reproduces the identical walk, and snapshot-time and restore-time
// fingerprints match bit-for-bit.
//
// The zero return value is reserved for "no fingerprint recorded"
// (TaskSnapshot.Fingerprint of audit-off snapshots); a digest that lands
// on 0 is nudged to 1.
func Fingerprint(store *statestore.Store, timers []byte, chanWms []int64, curWm int64) (uint64, error) {
	h := fnv.New64a()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	var buf []byte
	for _, name := range store.Names() {
		io.WriteString(h, name)
		ks := store.Keyed(name)
		for _, key := range ks.SortedKeys() {
			writeU64(key)
			var err error
			if buf, err = codec.EncodeAnyFramed(buf[:0], ks.Get(key)); err != nil {
				return 0, fmt.Errorf("audit: fingerprint %s[%d]: %w", name, key, err)
			}
			h.Write(buf)
		}
	}
	h.Write(timers)
	for _, wm := range chanWms {
		writeU64(uint64(wm))
	}
	writeU64(uint64(curWm))
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	return fp, nil
}
