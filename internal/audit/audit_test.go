package audit

import (
	"testing"

	"clonos/internal/statestore"
	"clonos/internal/types"
)

var (
	testTask = types.TaskID{Vertex: 2, Subtask: 0}
	testChan = types.ChannelID{Edge: 1, From: 0, To: 0}
)

func collect(a *Auditor) *[]Violation {
	var got []Violation
	a.SetReporter(func(v Violation) { got = append(got, v) })
	return &got
}

// TestNilAuditorZeroCost pins the disarmed cost: every hook on a nil
// auditor must be allocation-free (the job calls them unconditionally
// through a task-cached handle when armed; disarmed tasks skip the
// calls, but the hooks themselves must stay cheap for any caller that
// does not).
func TestNilAuditorZeroCost(t *testing.T) {
	var a *Auditor
	data := []byte("payload")
	allocs := testing.AllocsPerRun(1000, func() {
		a.OnDeliver(testTask, testChan, 1, 1, data)
		a.OnResend(testTask, testChan, 1, 1, data, "replay")
		a.OnDedupFloor(testTask, testChan, 0, 5)
		a.OnWatermark(testTask, testChan, 10, 20)
		a.OnMarker(testTask, testChan, 42)
		a.CheckFingerprint(testTask, 1, 7, 7)
		a.Truncate(1)
	})
	if allocs != 0 {
		t.Fatalf("nil-auditor hooks allocate %.1f per call round, want 0", allocs)
	}
}

// TestHealthyStreamNoViolations drives a well-formed stream — continuous
// seqs, rolling epochs, a rewind with byte-identical re-delivery, and
// matching resends — and expects silence.
func TestHealthyStreamNoViolations(t *testing.T) {
	a := New()
	got := collect(a)
	payload := func(seq uint64) []byte { return []byte{byte(seq), byte(seq >> 8), 0xab} }
	for seq := uint64(1); seq <= 10; seq++ {
		ep := types.EpochID(1 + seq/6)
		a.OnDeliver(testTask, testChan, seq, ep, payload(seq))
	}
	// Receiver recovery: re-delivery from seq 6 with identical bytes.
	for seq := uint64(6); seq <= 12; seq++ {
		ep := types.EpochID(1 + seq/6)
		a.OnDeliver(testTask, testChan, seq, ep, payload(seq))
	}
	// Sender-side resends of recorded seqs with identical bytes.
	a.OnResend(testTask, testChan, 7, 2, payload(7), "replay")
	a.OnResend(testTask, testChan, 9, 2, payload(9), "dedup")
	// Resend of a seq the receiver never recorded: uncheckable, not a
	// violation.
	a.OnResend(testTask, testChan, 99, 3, []byte("whatever"), "replay")
	a.OnDedupFloor(testTask, testChan, 0, 12)
	if len(*got) != 0 || a.Total() != 0 {
		t.Fatalf("healthy stream produced violations: %v", *got)
	}
}

func expectOne(t *testing.T, got []Violation, inv string) Violation {
	t.Helper()
	if len(got) != 1 {
		t.Fatalf("want exactly one %s violation, got %v", inv, got)
	}
	if got[0].Invariant != inv {
		t.Fatalf("want invariant %s, got %v", inv, got[0])
	}
	return got[0]
}

func TestSeqGapFires(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	a.OnDeliver(testTask, testChan, 2, 1, []byte("b"))
	a.OnDeliver(testTask, testChan, 5, 1, []byte("c"))
	expectOne(t, *got, InvSeqGap)
}

func TestEpochRegressionFires(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 3, []byte("a"))
	a.OnDeliver(testTask, testChan, 2, 2, []byte("b"))
	expectOne(t, *got, InvEpochRegression)
}

func TestReplayHashMismatchOnRedelivery(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("original"))
	a.OnDeliver(testTask, testChan, 1, 1, []byte("tampered"))
	expectOne(t, *got, InvReplayHashMismatch)
}

func TestReplayHashMismatchOnResend(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 3, 1, []byte("original"))
	a.OnResend(testTask, testChan, 3, 1, []byte("tampered"), "replay")
	v := expectOne(t, *got, InvReplayHashMismatch)
	if v.Channel != testChan.String() {
		t.Fatalf("violation channel = %q, want %q", v.Channel, testChan.String())
	}
	// Epoch mismatch on resend is the same invariant.
	*got = (*got)[:0]
	a.OnResend(testTask, testChan, 3, 2, []byte("original"), "dedup")
	expectOne(t, *got, InvReplayHashMismatch)
}

func TestDedupFloorViolations(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	a.OnDeliver(testTask, testChan, 2, 1, []byte("b"))
	a.OnDedupFloor(testTask, testChan, 5, 3) // backward within incarnation
	expectOne(t, *got, InvDedupFloorRegression)
	*got = (*got)[:0]
	a.OnDedupFloor(testTask, testChan, 0, 10) // beyond audited tail (2)
	expectOne(t, *got, InvDedupFloorRegression)
}

func TestWatermarkRegressionFires(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnWatermark(testTask, testChan, 100, 100) // equal: fine
	a.OnWatermark(testTask, testChan, 100, 150) // advance: fine
	if len(*got) != 0 {
		t.Fatalf("monotone watermarks flagged: %v", *got)
	}
	a.OnWatermark(testTask, testChan, 150, 40)
	expectOne(t, *got, InvWatermarkRegression)
}

func TestMarkerReorderFiresAndReseedsOnRewind(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	a.OnMarker(testTask, testChan, 100)
	a.OnMarker(testTask, testChan, 120)
	a.OnMarker(testTask, testChan, 90)
	expectOne(t, *got, InvMarkerReorder)
	*got = (*got)[:0]
	// A rewound stream (receiver recovery) re-seeds the floor: the old
	// stamps repeat legitimately.
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	a.OnMarker(testTask, testChan, 100)
	a.OnMarker(testTask, testChan, 120)
	if len(*got) != 0 {
		t.Fatalf("post-rewind marker replay flagged: %v", *got)
	}
}

func TestCheckFingerprint(t *testing.T) {
	a := New()
	got := collect(a)
	if !a.CheckFingerprint(testTask, 3, 42, 42) {
		t.Fatal("matching fingerprint rejected")
	}
	if a.CheckFingerprint(testTask, 3, 42, 43) {
		t.Fatal("mismatched fingerprint accepted")
	}
	v := expectOne(t, *got, InvFingerprintMismatch)
	if v.Channel != "" {
		t.Fatalf("fingerprint violation carries channel %q", v.Channel)
	}
}

// TestTruncateDropsOldEpochs: after truncation at cp, resends of the
// truncated epochs are uncheckable — and stay silent — while newer
// epochs keep their records.
func TestTruncateDropsOldEpochs(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("e1"))
	a.OnDeliver(testTask, testChan, 2, 2, []byte("e2"))
	a.Truncate(1)
	a.OnResend(testTask, testChan, 1, 1, []byte("tampered"), "replay") // truncated: silent
	if len(*got) != 0 {
		t.Fatalf("truncated record still compared: %v", *got)
	}
	a.OnResend(testTask, testChan, 2, 2, []byte("tampered"), "replay")
	expectOne(t, *got, InvReplayHashMismatch)
}

// TestResetClearsStreamsKeepsTotals: a global restart invalidates the
// recorded streams but not the verdict.
func TestResetClearsStreamsKeepsTotals(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	a.OnDeliver(testTask, testChan, 1, 1, []byte("b"))
	expectOne(t, *got, InvReplayHashMismatch)
	a.Reset()
	*got = (*got)[:0]
	// Divergent re-execution after the restart: fresh stream, no compare.
	a.OnDeliver(testTask, testChan, 1, 1, []byte("c"))
	if len(*got) != 0 {
		t.Fatalf("post-reset stream compared against stale record: %v", *got)
	}
	if a.Total() != 1 {
		t.Fatalf("Total() = %d after reset, want 1 (totals survive)", a.Total())
	}
	if n := a.ByInvariant()[InvReplayHashMismatch]; n != 1 {
		t.Fatalf("ByInvariant = %d, want 1", n)
	}
}

// TestReportThrottle: per-channel reporting caps out but counting does
// not.
func TestReportThrottle(t *testing.T) {
	a := New()
	got := collect(a)
	a.OnDeliver(testTask, testChan, 1, 1, []byte("a"))
	for i := 0; i < reportCap+10; i++ {
		a.OnDeliver(testTask, testChan, 1, 1, []byte("tampered"))
	}
	if len(*got) != reportCap {
		t.Fatalf("reporter called %d times, want cap %d", len(*got), reportCap)
	}
	if a.Total() != uint64(reportCap+10) {
		t.Fatalf("Total() = %d, want %d", a.Total(), reportCap+10)
	}
}

// TestFingerprintRoundTrip: a snapshot/restore round trip reproduces the
// fingerprint; any state difference changes it.
func TestFingerprintRoundTrip(t *testing.T) {
	st := statestore.NewStore()
	win := st.Keyed("windows")
	win.Put(7, int64(3))
	win.Put(2, uint64(9))
	acc := st.Keyed("acc")
	acc.AppendList(1, int64(10))
	acc.AppendList(1, int64(20))
	timers := []byte{1, 2, 3}
	wms := []int64{100, 200}

	fp1, err := Fingerprint(st, timers, wms, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == 0 {
		t.Fatal("fingerprint 0 is reserved for none")
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st2 := statestore.NewStore()
	if err := st2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(st2, timers, wms, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("restore round trip changed fingerprint: %016x != %016x", fp2, fp1)
	}

	win.Put(7, int64(4))
	fp3, err := Fingerprint(st, timers, wms, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("state mutation did not change the fingerprint")
	}
	fp4, err := Fingerprint(st2, timers, []int64{100, 201}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Fatal("watermark change did not change the fingerprint")
	}
}

// BenchmarkOnDeliverArmed measures the armed per-buffer delivery cost:
// one FNV pass over the payload plus map bookkeeping under the mutex.
// Quoted in DESIGN.md's audit-plane section.
func BenchmarkOnDeliverArmed(b *testing.B) {
	a := New()
	data := make([]byte, 2048) // typical batched buffer
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.OnDeliver(testTask, testChan, uint64(i+1), types.EpochID(1+i/4096), data)
		if i%4096 == 4095 {
			a.Truncate(types.EpochID(1 + i/4096 - 1))
		}
	}
}

// BenchmarkOnDeliverDisarmed measures the nil-receiver hook (the
// audit-off hot path when a caller does not gate on t.audit != nil).
func BenchmarkOnDeliverDisarmed(b *testing.B) {
	var a *Auditor
	data := make([]byte, 2048)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.OnDeliver(testTask, testChan, uint64(i+1), 1, data)
	}
}
