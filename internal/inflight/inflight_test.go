package inflight

import (
	"testing"
	"testing/quick"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/types"
)

var testChannel = types.ChannelID{Edge: 1, From: 0, To: 0}

func appendBuf(t *testing.T, l *Log, pool *buffer.Pool, seq uint64, epoch types.EpochID, payload []byte) {
	t.Helper()
	b := pool.Get()
	if b == nil {
		t.Fatal("pool closed")
	}
	b.Data = append(b.Data, payload...)
	b.Seq = seq
	b.Epoch = epoch
	if err := l.Append(b); err != nil {
		t.Fatal(err)
	}
}

func newTestLog(t *testing.T, cfg Config, poolSize int) (*Log, *buffer.Pool) {
	t.Helper()
	pool := buffer.NewPool(poolSize, 64)
	cfg.Dir = t.TempDir()
	l, err := NewLog(testChannel, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l, pool
}

func TestAppendAndReadInMemory(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicyInMemory}, 8)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("alpha"))
	appendBuf(t, l, pool, 2, 1, []byte("beta"))
	if l.Count() != 2 || l.MemBytes() != 9 {
		t.Fatalf("count=%d mem=%d", l.Count(), l.MemBytes())
	}
	e, data, ok, err := l.ReadEntry(2)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if string(data) != "beta" || e.Epoch != 1 {
		t.Fatalf("entry = %+v data=%q", e, data)
	}
	if _, _, ok, _ := l.ReadEntry(3); ok {
		t.Fatal("read of unknown seq succeeded")
	}
}

func TestTruncateReturnsBuffersToPool(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicyInMemory}, 4)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("a"))
	appendBuf(t, l, pool, 2, 1, []byte("b"))
	l.StartEpoch(2)
	appendBuf(t, l, pool, 3, 2, []byte("c"))
	if pool.Available() != 1 {
		t.Fatalf("available = %d, want 1", pool.Available())
	}
	l.Truncate(1)
	if l.Count() != 1 {
		t.Fatalf("count after truncate = %d", l.Count())
	}
	if pool.Available() != 3 {
		t.Fatalf("available after truncate = %d, want 3", pool.Available())
	}
	if _, _, ok, _ := l.ReadEntry(1); ok {
		t.Fatal("truncated entry still readable")
	}
	if seq, ok := l.FirstSeqOfEpoch(2); !ok || seq != 3 {
		t.Fatalf("FirstSeqOfEpoch(2) = %d,%v", seq, ok)
	}
}

func TestSpillBufferPolicy(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicySpillBuffer}, 2)
	l.StartEpoch(1)
	// With synchronous spilling, far more buffers than the pool holds
	// can be appended without blocking.
	for i := uint64(1); i <= 10; i++ {
		appendBuf(t, l, pool, i, 1, []byte{byte(i)})
	}
	if l.Count() != 10 || l.SpilledCount() != 10 || l.MemBytes() != 0 {
		t.Fatalf("count=%d spilled=%d mem=%d", l.Count(), l.SpilledCount(), l.MemBytes())
	}
	for i := uint64(1); i <= 10; i++ {
		_, data, ok, err := l.ReadEntry(i)
		if err != nil || !ok || data[0] != byte(i) {
			t.Fatalf("read %d: ok=%v err=%v data=%v", i, ok, err, data)
		}
	}
}

func TestSpillEpochPolicy(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicySpillEpoch}, 8)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("a"))
	appendBuf(t, l, pool, 2, 1, []byte("b"))
	if l.SpilledCount() != 0 {
		t.Fatal("current epoch spilled early")
	}
	l.StartEpoch(2)
	appendBuf(t, l, pool, 3, 2, []byte("c"))
	if !l.WaitSpilledCount(2, 2*time.Second) {
		t.Fatalf("epoch 1 not spilled; spilled=%d", l.SpilledCount())
	}
	// Epoch 2 (current) stays in memory.
	if _, data, ok, err := l.ReadEntry(1); err != nil || !ok || string(data) != "a" {
		t.Fatalf("read spilled: %v %v %q", ok, err, data)
	}
}

func TestSpillThresholdPolicy(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicySpillThreshold, Threshold: 0.5}, 4)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("a"))
	// Ratio now 3/4 >= 0.5: no spill.
	time.Sleep(20 * time.Millisecond)
	if l.SpilledCount() != 0 {
		t.Fatal("spilled above threshold")
	}
	appendBuf(t, l, pool, 2, 1, []byte("b"))
	appendBuf(t, l, pool, 3, 1, []byte("c")) // ratio 1/4 < 0.5
	if !l.WaitSpilledCount(3, 2*time.Second) {
		t.Fatalf("threshold spill did not run; spilled=%d", l.SpilledCount())
	}
	if pool.Available() != 4 {
		t.Fatalf("pool available = %d, want 4 after spilling", pool.Available())
	}
}

func TestTruncateRemovesSpillFiles(t *testing.T) {
	l, pool := newTestLog(t, Config{Policy: PolicySpillBuffer}, 2)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("a"))
	l.StartEpoch(2)
	appendBuf(t, l, pool, 2, 2, []byte("b"))
	l.Truncate(1)
	if _, _, ok, _ := l.ReadEntry(1); ok {
		t.Fatal("truncated spilled entry still readable")
	}
	if _, data, ok, err := l.ReadEntry(2); err != nil || !ok || string(data) != "b" {
		t.Fatalf("surviving entry unreadable: %v %v", ok, err)
	}
}

func TestReplayAcrossMemoryAndDisk(t *testing.T) {
	// Mixed residency: some entries spilled, some in memory; replay by
	// seq must be seamless.
	l, pool := newTestLog(t, Config{Policy: PolicySpillEpoch}, 8)
	l.StartEpoch(1)
	appendBuf(t, l, pool, 1, 1, []byte("e1a"))
	appendBuf(t, l, pool, 2, 1, []byte("e1b"))
	l.StartEpoch(2)
	appendBuf(t, l, pool, 3, 2, []byte("e2a"))
	if !l.WaitSpilledCount(2, 2*time.Second) {
		t.Fatal("spill did not complete")
	}
	want := []string{"e1a", "e1b", "e2a"}
	first, ok := l.FirstSeqOfEpoch(1)
	if !ok || first != 1 {
		t.Fatalf("FirstSeqOfEpoch(1) = %d,%v", first, ok)
	}
	last, _ := l.LastSeq()
	for seq := first; seq <= last; seq++ {
		_, data, ok, err := l.ReadEntry(seq)
		if err != nil || !ok || string(data) != want[seq-1] {
			t.Fatalf("seq %d: %q ok=%v err=%v", seq, data, ok, err)
		}
	}
}

func TestLastSeqEmpty(t *testing.T) {
	l, _ := newTestLog(t, Config{Policy: PolicyInMemory}, 2)
	if _, ok := l.LastSeq(); ok {
		t.Fatal("LastSeq on empty log reported ok")
	}
	if _, ok := l.FirstSeqOfEpoch(0); ok {
		t.Fatal("FirstSeqOfEpoch on empty log reported ok")
	}
}

func TestAppendAfterClose(t *testing.T) {
	pool := buffer.NewPool(2, 64)
	l, err := NewLog(testChannel, pool, Config{Policy: PolicyInMemory, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	b := pool.Get()
	b.Seq = 1
	if err := l.Append(b); err == nil {
		t.Fatal("append after close succeeded")
	}
	l.Close() // idempotent
}

func TestQuickSeqLookup(t *testing.T) {
	f := func(n uint8) bool {
		pool := buffer.NewPool(int(n)+1, 64)
		l, err := NewLog(testChannel, pool, Config{Policy: PolicyInMemory})
		if err != nil {
			return false
		}
		defer l.Close()
		l.StartEpoch(1)
		for i := uint64(1); i <= uint64(n); i++ {
			b := pool.Get()
			b.Seq = i
			b.Epoch = 1
			b.Data = append(b.Data, byte(i))
			if err := l.Append(b); err != nil {
				return false
			}
		}
		for i := uint64(1); i <= uint64(n); i++ {
			e, data, ok, err := l.ReadEntry(i)
			if err != nil || !ok || e.Seq != i || data[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
