// Package inflight implements the epoch-segmented in-flight record log
// (Clonos §6.1): every buffer dispatched on an output channel is retained
// until the checkpoint that covers it completes, so it can be replayed to
// a recovering downstream task.
//
// The log owns a buffer pool distinct from the output channels' pools. At
// dispatch the network layer hands the sent buffer to the log and the log
// donates an empty buffer of its own back to the channel pool (no copy).
// When the log's pool runs dry, dispatch blocks — natural backpressure —
// unless a spill policy is releasing buffers to disk:
//
//	PolicyInMemory:       keep every buffer in memory.
//	PolicySpillEpoch:     spill an epoch when the next one starts.
//	PolicySpillBuffer:    spill each buffer synchronously on append.
//	PolicySpillThreshold: spill everything unspilled whenever the pool's
//	                      free ratio drops below a threshold.
package inflight

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/obs"
	"clonos/internal/types"
)

// Metrics instruments an in-flight log. All fields are optional
// (nil-safe): Appended counts retained buffers, Spilled/SpilledBytes
// count buffers (and their payload bytes) written to disk, Truncated
// counts entries dropped by checkpoint-complete truncation. One instance
// is typically shared by every channel log of a task.
type Metrics struct {
	Appended     *obs.Counter
	Spilled      *obs.Counter
	SpilledBytes *obs.Counter
	Truncated    *obs.Counter
}

// Policy selects the spill strategy.
type Policy int

const (
	// PolicyInMemory keeps all buffers in memory.
	PolicyInMemory Policy = iota
	// PolicySpillEpoch spills each epoch as soon as the next one starts.
	PolicySpillEpoch
	// PolicySpillBuffer spills each buffer synchronously as it arrives.
	PolicySpillBuffer
	// PolicySpillThreshold spills all unspilled buffers whenever the
	// pool's available ratio drops below Config.Threshold.
	PolicySpillThreshold
)

func (p Policy) String() string {
	switch p {
	case PolicyInMemory:
		return "in-memory"
	case PolicySpillEpoch:
		return "spill-epoch"
	case PolicySpillBuffer:
		return "spill-buffer"
	case PolicySpillThreshold:
		return "spill-threshold"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config configures a log.
type Config struct {
	Policy Policy
	// Threshold is the free-buffer ratio below which PolicySpillThreshold
	// spills (the paper found ~0.25–0.5 sensible).
	Threshold float64
	// Dir is the spill directory; empty means a fresh temp directory.
	Dir string
}

// Entry describes one retained buffer.
type Entry struct {
	Seq     uint64
	Epoch   types.EpochID
	Size    int
	Delta   []byte
	buf     *buffer.Buffer // nil once spilled
	spilled bool
	fileOff int64
}

// Log is the in-flight record log of one output channel.
type Log struct {
	channel types.ChannelID
	pool    *buffer.Pool
	cfg     Config

	mu      sync.Mutex
	cond    *sync.Cond
	entries []*Entry
	// epochStart maps an epoch to its first index in entries (absolute,
	// i.e. offset by base).
	epochStart map[types.EpochID]int
	base       int // entries truncated so far
	curEpoch   types.EpochID
	memBytes   int

	dir      string
	ownDir   bool
	files    map[types.EpochID]*os.File
	fileOffs map[types.EpochID]int64

	spillReq chan struct{}
	stop     chan struct{}
	done     sync.WaitGroup
	closed   bool

	// spillChanged is closed and replaced each time an entry reaches
	// disk, so observers can wait for spill progress without polling.
	spillChanged chan struct{}

	metrics *Metrics
}

// NewLog creates a log for one channel backed by the task's log pool.
func NewLog(ch types.ChannelID, pool *buffer.Pool, cfg Config) (*Log, error) {
	dir := cfg.Dir
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "clonos-inflight-")
		if err != nil {
			return nil, fmt.Errorf("inflight: %w", err)
		}
		dir = d
		ownDir = true
	}
	l := &Log{
		channel:      ch,
		pool:         pool,
		cfg:          cfg,
		epochStart:   make(map[types.EpochID]int),
		dir:          dir,
		ownDir:       ownDir,
		files:        make(map[types.EpochID]*os.File),
		fileOffs:     make(map[types.EpochID]int64),
		spillReq:     make(chan struct{}, 1),
		stop:         make(chan struct{}),
		spillChanged: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if cfg.Policy == PolicySpillEpoch || cfg.Policy == PolicySpillThreshold {
		l.done.Add(1)
		go l.spiller()
	}
	return l, nil
}

// Channel returns the channel this log covers.
func (l *Log) Channel() types.ChannelID { return l.channel }

// Instrument attaches metrics (may be nil to detach). Call before the
// log is in use.
func (l *Log) Instrument(m *Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = m
}

// StartEpoch marks the beginning of epoch e in the log.
func (l *Log) StartEpoch(e types.EpochID) {
	l.mu.Lock()
	l.curEpoch = e
	if _, ok := l.epochStart[e]; !ok {
		l.epochStart[e] = l.base + len(l.entries)
	}
	l.mu.Unlock()
	if l.cfg.Policy == PolicySpillEpoch {
		l.kickSpiller()
	}
}

// Append takes ownership of a dispatched buffer. The §6.1 exchange — the
// caller pairs this with taking a replacement from the log pool and
// donating it to the channel pool — is done by the dispatch layer.
// Ownership of b transfers only on a nil return; on error (closed log)
// the caller must still release its reference.
//
//clonos:owns-transfer on-success
func (l *Log) Append(b *buffer.Buffer) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("inflight: log closed")
	}
	e := &Entry{Seq: b.Seq, Epoch: b.Epoch, Size: b.Len(), Delta: b.Delta, buf: b}
	if _, ok := l.epochStart[b.Epoch]; !ok {
		l.epochStart[b.Epoch] = l.base + len(l.entries)
	}
	l.entries = append(l.entries, e)
	l.memBytes += e.Size
	if l.metrics != nil {
		l.metrics.Appended.Inc()
	}
	l.mu.Unlock()

	switch l.cfg.Policy {
	case PolicySpillBuffer:
		// Synchronous spill: the paper notes the extra inline work and
		// missing I/O batching this entails.
		l.mu.Lock()
		err := l.spillEntryLocked(e)
		l.mu.Unlock()
		if err != nil {
			return err
		}
	case PolicySpillThreshold:
		if l.pool.AvailableRatio() < l.cfg.Threshold {
			l.kickSpiller()
		}
	}
	return nil
}

func (l *Log) kickSpiller() {
	select {
	case l.spillReq <- struct{}{}:
	default:
	}
}

// spiller is the asynchronous spill thread.
func (l *Log) spiller() {
	defer l.done.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.spillReq:
		}
		l.mu.Lock()
		for _, e := range append([]*Entry(nil), l.entries...) {
			if e.spilled {
				continue
			}
			if l.cfg.Policy == PolicySpillEpoch && e.Epoch >= l.curEpoch {
				continue // only completed epochs spill under spill-epoch
			}
			if err := l.spillEntryLocked(e); err != nil {
				break // disk trouble: stay in memory, backpressure applies
			}
		}
		l.mu.Unlock()
	}
}

// spillEntryLocked writes one entry to its epoch file and releases its
// buffer back to the log pool.
func (l *Log) spillEntryLocked(e *Entry) error {
	if e.spilled || e.buf == nil {
		return nil
	}
	f, err := l.epochFileLocked(e.Epoch)
	if err != nil {
		return err
	}
	off := l.fileOffs[e.Epoch]
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], e.Seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(e.Size))
	if _, err := f.WriteAt(hdr[:], off); err != nil {
		return err
	}
	if _, err := f.WriteAt(e.buf.Data, off+12); err != nil {
		return err
	}
	l.fileOffs[e.Epoch] = off + 12 + int64(e.Size)
	e.fileOff = off + 12
	e.spilled = true
	close(l.spillChanged)
	l.spillChanged = make(chan struct{})
	l.memBytes -= e.Size
	if l.metrics != nil {
		l.metrics.Spilled.Inc()
		l.metrics.SpilledBytes.Add(uint64(e.Size))
	}
	b := e.buf
	e.buf = nil
	// The log's reference is dropped only now that the bytes are on
	// disk; if the wire still aliases the buffer, the recycle into the
	// pool is deferred until the receiver releases it too.
	b.DonateTo(l.pool)
	return nil
}

func (l *Log) epochFileLocked(epoch types.EpochID) (*os.File, error) {
	if f, ok := l.files[epoch]; ok {
		return f, nil
	}
	name := filepath.Join(l.dir, fmt.Sprintf("ch_%d_%d_%d_epoch_%d.dat", l.channel.Edge, l.channel.From, l.channel.To, epoch))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l.files[epoch] = f
	l.fileOffs[epoch] = 0
	return f, nil
}

// Truncate drops all entries of epochs <= upTo, returning their buffers
// to the log pool and deleting their spill files.
func (l *Log) Truncate(upTo types.EpochID) {
	l.mu.Lock()
	cut := 0
	for cut < len(l.entries) && l.entries[cut].Epoch <= upTo {
		cut++
	}
	dropped := l.entries[:cut]
	l.entries = append(l.entries[:0:0], l.entries[cut:]...)
	l.base += cut
	if l.metrics != nil {
		l.metrics.Truncated.Add(uint64(cut))
	}
	for e := range l.epochStart {
		if e <= upTo {
			delete(l.epochStart, e)
		}
	}
	var files []*os.File
	for e, f := range l.files {
		if e <= upTo {
			files = append(files, f)
			delete(l.files, e)
			delete(l.fileOffs, e)
		}
	}
	var bufs []*buffer.Buffer
	for _, e := range dropped {
		if e.buf != nil {
			l.memBytes -= e.Size
			bufs = append(bufs, e.buf)
			e.buf = nil
		}
	}
	l.mu.Unlock()
	for _, b := range bufs {
		// Drop the log's reference; a wire message may still alias the
		// buffer, in which case the donate is deferred until the receiver
		// releases it too.
		b.DonateTo(l.pool)
	}
	for _, f := range files {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
}

// Count reports retained entries; MemBytes reports in-memory payload
// bytes; SpilledCount reports entries currently on disk.
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Base reports the truncation floor: how many entries checkpoint-complete
// truncation has dropped over the log's lifetime. A floor that stops
// advancing while Count grows is the live signature of a stuck
// checkpoint pinning the in-flight log.
func (l *Log) Base() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// MemBytes reports the bytes of buffered (unspilled) payload.
func (l *Log) MemBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.memBytes
}

// SpilledCount reports how many retained entries live on disk.
func (l *Log) SpilledCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.spilled {
			n++
		}
	}
	return n
}

// WaitSpilledCount blocks until at least n retained entries are on disk
// or the timeout elapses, waking on spill completions instead of
// polling. It reports whether the target was reached.
func (l *Log) WaitSpilledCount(n int, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		count := 0
		for _, e := range l.entries {
			if e.spilled {
				count++
			}
		}
		changed := l.spillChanged
		l.mu.Unlock()
		if count >= n {
			return true
		}
		select {
		case <-changed:
		case <-deadline.C:
			return false
		}
	}
}

// ReadEntry returns the metadata and payload of the retained entry with
// the given seq, reading from disk if it was spilled. It reports false
// when the seq is not retained.
func (l *Log) ReadEntry(seq uint64) (Entry, []byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.findLocked(seq)
	if e == nil {
		return Entry{}, nil, false, nil
	}
	data, err := l.payloadLocked(e)
	if err != nil {
		return Entry{}, nil, false, err
	}
	return *e, data, true, nil
}

func (l *Log) findLocked(seq uint64) *Entry {
	if len(l.entries) == 0 {
		return nil
	}
	first := l.entries[0].Seq
	if seq < first || seq > l.entries[len(l.entries)-1].Seq {
		return nil
	}
	return l.entries[seq-first]
}

func (l *Log) payloadLocked(e *Entry) ([]byte, error) {
	if !e.spilled {
		out := make([]byte, e.Size)
		copy(out, e.buf.Data)
		return out, nil
	}
	f, ok := l.files[e.Epoch]
	if !ok {
		return nil, fmt.Errorf("inflight: spill file for epoch %d missing", e.Epoch)
	}
	out := make([]byte, e.Size)
	if _, err := f.ReadAt(out, e.fileOff); err != nil {
		return nil, err
	}
	return out, nil
}

// FirstSeqOfEpoch returns the seq of the first retained entry with epoch
// >= e, or (0, false) when none is retained.
func (l *Log) FirstSeqOfEpoch(e types.EpochID) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ent := range l.entries {
		if ent.Epoch >= e {
			return ent.Seq, true
		}
	}
	return 0, false
}

// FirstEpoch returns the epoch of the oldest retained entry, or false
// when the log is empty.
func (l *Log) FirstEpoch() (types.EpochID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 0, false
	}
	return l.entries[0].Epoch, true
}

// LastSeq returns the newest retained seq, or (0, false) when empty.
func (l *Log) LastSeq() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 0, false
	}
	return l.entries[len(l.entries)-1].Seq, true
}

// Close stops the spiller, releases buffers to the pool, closes and
// removes spill files.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.done.Wait()
	l.mu.Lock()
	var bufs []*buffer.Buffer
	for _, e := range l.entries {
		if e.buf != nil {
			bufs = append(bufs, e.buf)
			e.buf = nil
		}
	}
	l.entries = nil
	files := l.files
	l.files = map[types.EpochID]*os.File{}
	ownDir, dir := l.ownDir, l.dir
	l.mu.Unlock()
	for _, b := range bufs {
		b.DonateTo(l.pool)
	}
	for _, f := range files {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	if ownDir {
		os.RemoveAll(dir)
	}
}
