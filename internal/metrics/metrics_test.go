package metrics

import (
	"testing"
	"time"

	"clonos/internal/kafkasim"
)

func TestPercentile(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7}
	if p := Percentile(vals, 0.5); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := Percentile(vals, 0); p != 1 {
		t.Fatalf("p0 = %d, want 1", p)
	}
	if p := Percentile(vals, 1); p != 9 {
		t.Fatalf("p100 = %d, want 9", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty p50 = %d, want 0", p)
	}
}

func TestPercentileF(t *testing.T) {
	if p := PercentileF([]float64{1, 2, 3}, 0.5); p != 2 {
		t.Fatalf("p50 = %v", p)
	}
	if p := PercentileF(nil, 0.5); p != 0 {
		t.Fatalf("empty = %v", p)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 1..100: nearest-rank selection must not truncate the index — the
	// p99 of 100 values is 99 (rank 98.01 → 98), and small slices round
	// toward the tail instead of always down.
	hundred := make([]int64, 100)
	for i := range hundred {
		hundred[i] = int64(i + 1)
	}
	five := []int64{10, 20, 30, 40, 50}
	cases := []struct {
		name string
		vals []int64
		p    float64
		want int64
	}{
		{"p50-of-100", hundred, 0.50, 51}, // rank 49.5 rounds half away from zero → 50
		{"p95-of-100", hundred, 0.95, 95}, // rank 94.05 → 94
		{"p99-of-100", hundred, 0.99, 99}, // rank 98.01 → 98
		{"p100-of-100", hundred, 1.0, 100},
		{"p50-of-5", five, 0.50, 30},
		{"p95-of-5", five, 0.95, 50}, // rank 3.8 rounds up (was 40 with truncation)
		{"p99-of-5", five, 0.99, 50}, // rank 3.96 rounds up (was 40 with truncation)
		{"p0", five, 0, 10},
		{"over-one-clamps", five, 1.5, 50},
		{"negative-clamps", five, -0.5, 10},
	}
	for _, c := range cases {
		if got := Percentile(c.vals, c.p); got != c.want {
			t.Errorf("%s: Percentile = %d, want %d", c.name, got, c.want)
		}
		fv := make([]float64, len(c.vals))
		for i, v := range c.vals {
			fv[i] = float64(v)
		}
		if got := PercentileF(fv, c.p); got != float64(c.want) {
			t.Errorf("%s: PercentileF = %v, want %v", c.name, got, float64(c.want))
		}
	}
}

func TestLatencySeriesSorted(t *testing.T) {
	recs := []kafkasim.SinkRecord{
		{ArrivalMs: 200, EmitMs: 150},
		{ArrivalMs: 100, EmitMs: 90},
	}
	pts := LatencySeries(recs)
	if len(pts) != 2 || pts[0].ArrivalMs != 100 || pts[0].LatencyMs != 10 || pts[1].LatencyMs != 50 {
		t.Fatalf("series = %+v", pts)
	}
}

func TestRecoveryTime(t *testing.T) {
	// Pre-failure latency ~10ms; failure at t=1000; latency spikes to
	// 500ms then returns to ~10ms at t=1400.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	for ts := int64(1000); ts < 1400; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 500})
	}
	for ts := int64(1400); ts < 2400; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 11})
	}
	d, ok := RecoveryTime(pts, 1000, 0.10, 300)
	if !ok {
		t.Fatal("recovery never detected")
	}
	if d != 400*time.Millisecond {
		t.Fatalf("recovery time = %v, want 400ms", d)
	}
}

func TestRecoveryTimeNeverSettles(t *testing.T) {
	pts := []LatencyPoint{
		{ArrivalMs: 0, LatencyMs: 10},
		{ArrivalMs: 100, LatencyMs: 10},
		{ArrivalMs: 300, LatencyMs: 900},
		{ArrivalMs: 400, LatencyMs: 900},
	}
	if _, ok := RecoveryTime(pts, 200, 0.10, 100); ok {
		t.Fatal("recovery reported despite unsettled latency")
	}
}

func TestRecoveryTimeTransientDip(t *testing.T) {
	// A single in-tolerance point followed by another spike must not
	// count as recovered.
	pts := []LatencyPoint{
		{ArrivalMs: 0, LatencyMs: 10},
		{ArrivalMs: 100, LatencyMs: 10},
		{ArrivalMs: 200, LatencyMs: 500},
		{ArrivalMs: 300, LatencyMs: 10},  // transient dip
		{ArrivalMs: 350, LatencyMs: 500}, // spike again
		{ArrivalMs: 600, LatencyMs: 10},
		{ArrivalMs: 700, LatencyMs: 10},
		{ArrivalMs: 800, LatencyMs: 10},
	}
	d, ok := RecoveryTime(pts, 150, 0.10, 150)
	if !ok {
		t.Fatal("recovery never detected")
	}
	if d != 450*time.Millisecond {
		t.Fatalf("recovery time = %v, want 450ms (dip at 300 must not count)", d)
	}
}

func TestRecoveryTimeDelayedDisruption(t *testing.T) {
	// Failure injected at t=1000 but the latency impact only shows after
	// the detection timeout (t=1600): the normal-looking window right
	// after the injection must NOT count as recovered.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1600; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	for ts := int64(1600); ts < 2000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 700})
	}
	for ts := int64(2000); ts < 3000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	d, ok := RecoveryTime(pts, 1000, 0.10, 300)
	if !ok {
		t.Fatal("recovery never detected")
	}
	if d != 1000*time.Millisecond {
		t.Fatalf("recovery time = %v, want 1s (settled only after the delayed disruption)", d)
	}
}

func TestRecoveryTimeOutlierBudget(t *testing.T) {
	// One stray outlier deep in a long settled suffix (1 of 200 points,
	// within the 1%% budget) must not push recovery to the series end.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1000; ts += 10 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	for ts := int64(1000); ts < 1200; ts += 10 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 600})
	}
	for ts := int64(1200); ts < 3200; ts += 10 {
		lat := int64(10)
		if ts == 2500 {
			lat = 80 // stray scheduler hiccup
		}
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: lat})
	}
	d, ok := RecoveryTime(pts, 1000, 0.10, 300)
	if !ok {
		t.Fatal("recovery never detected")
	}
	if d != 200*time.Millisecond {
		t.Fatalf("recovery time = %v, want 200ms (one outlier in 200 suffix points is inside the budget)", d)
	}
}

func TestRecoveryTimePreFailureTailEnvelope(t *testing.T) {
	// Steady-state latency alternates 10ms/25ms; the pre-failure p99
	// envelope must absorb the 25ms points after the failure too, or a
	// healthy system would never count as recovered.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1000; ts += 10 {
		lat := int64(10)
		if ts%100 == 0 {
			lat = 25
		}
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: lat})
	}
	for ts := int64(1000); ts < 1300; ts += 10 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 400})
	}
	for ts := int64(1300); ts < 2300; ts += 10 {
		lat := int64(10)
		if ts%100 == 0 {
			lat = 25
		}
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: lat})
	}
	d, ok := RecoveryTime(pts, 1000, 0.10, 300)
	if !ok {
		t.Fatal("recovery never detected despite settled tail")
	}
	if d != 300*time.Millisecond {
		t.Fatalf("recovery time = %v, want 300ms", d)
	}
}

func TestRecoveryTimeAllPointsPostFailure(t *testing.T) {
	// No pre-failure points: "normal" falls back to the whole series'
	// shape, so a steady series counts as recovered at its first
	// observed point — regardless of its absolute latency level.
	var pts []LatencyPoint
	for ts := int64(1000); ts < 2000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 3})
	}
	d, ok := RecoveryTime(pts, 500, 0.10, 300)
	if !ok {
		t.Fatal("recovery never detected with empty pre-failure window")
	}
	if d != 500*time.Millisecond {
		t.Fatalf("recovery time = %v, want 500ms (first observed point)", d)
	}
	for i := range pts {
		pts[i].LatencyMs = 50
	}
	d, ok = RecoveryTime(pts, 500, 0.10, 300)
	if !ok || d != 500*time.Millisecond {
		t.Fatalf("flat 50ms series: got (%v, %v), want recovery at first point", d, ok)
	}
}

func TestRecoveryTimeNeverSettlesSuffix(t *testing.T) {
	// Latency settles briefly but degrades again through the series end:
	// the suffix-stability rule must report not-recovered.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	for ts := int64(1000); ts < 1500; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10}) // looks fine...
	}
	for ts := int64(1500); ts < 3000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 800}) // ...then degrades for good
	}
	if _, ok := RecoveryTime(pts, 1000, 0.10, 300); ok {
		t.Fatal("recovery reported though the series never stays settled")
	}
}

func TestRecoveryTimeHoldLongerThanPostFailureSpan(t *testing.T) {
	// Latency returns to baseline immediately, but the post-failure span
	// (400ms) is shorter than the required hold window (500ms): there is
	// not enough settled evidence to declare recovery.
	var pts []LatencyPoint
	for ts := int64(0); ts < 1000; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	for ts := int64(1000); ts < 1400; ts += 50 {
		pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: 10})
	}
	if _, ok := RecoveryTime(pts, 1000, 0.10, 500); ok {
		t.Fatal("recovery reported though the hold window exceeds the post-failure span")
	}
}

func TestThroughputGap(t *testing.T) {
	base := time.Unix(0, 0)
	mk := func(sec int, rate float64) ThroughputSample {
		return ThroughputSample{At: base.Add(time.Duration(sec) * time.Second), PerSec: rate}
	}
	samples := []ThroughputSample{
		mk(0, 100), mk(1, 100), mk(2, 100),
		mk(3, 0), mk(4, 0), mk(5, 0), // gap after failure at t=3
		mk(6, 120), mk(7, 100),
	}
	gap := ThroughputGap(samples, base.Add(2500*time.Millisecond), 0.1)
	if gap != 3*time.Second {
		t.Fatalf("gap = %v, want 3s", gap)
	}
}

func TestSamplerCollectsRates(t *testing.T) {
	sink := kafkasim.NewSinkTopic(false)
	s := NewSampler(sink, 10*time.Millisecond)
	s.Start()
	for i := 0; i < 50; i++ {
		sink.Append(kafkasim.SinkRecord{Key: uint64(i)})
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	samples := s.Samples()
	if len(samples) < 3 {
		t.Fatalf("only %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Count != 50 {
		t.Fatalf("final count = %d, want 50", last.Count)
	}
	sawRate := false
	for _, smp := range samples {
		if smp.PerSec > 0 {
			sawRate = true
		}
	}
	if !sawRate {
		t.Fatal("no positive throughput observed")
	}
}

func TestMeanF(t *testing.T) {
	if m := MeanF([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("mean = %v", m)
	}
	if m := MeanF(nil); m != 0 {
		t.Fatalf("mean of empty = %v", m)
	}
}
