package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"clonos/internal/kafkasim"
)

// TestQuickPercentileIsElement: the percentile of a non-empty slice is
// always one of its elements, and it is monotonic in p.
func TestQuickPercentileIsElement(t *testing.T) {
	f := func(vals []int64, pRaw uint8) bool {
		if len(vals) == 0 {
			return Percentile(vals, 0.5) == 0
		}
		p := float64(pRaw) / 255.0
		got := Percentile(vals, p)
		found := false
		for _, v := range vals {
			if v == got {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		// Monotonicity against a handful of larger quantiles.
		for _, q := range []float64{p, (p + 1) / 2, 1} {
			if Percentile(vals, q) < got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecoveryTimeBounds: whenever RecoveryTime reports ok, the
// duration is non-negative and no longer than the observed span after
// the failure; and a series that never leaves a flat latency recovers
// in zero time.
func TestQuickRecoveryTimeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 50 + rng.Intn(200)
		base := int64(5 + rng.Intn(50))
		failAt := int64(100 + rng.Intn(1000))
		end := failAt + 1000 + int64(rng.Intn(2000))
		var pts []LatencyPoint
		for i := 0; i < n; i++ {
			at := rng.Int63n(end)
			lat := base
			if rng.Intn(4) == 0 {
				lat += rng.Int63n(base * 20) // random disturbance
			}
			pts = append(pts, LatencyPoint{ArrivalMs: at, LatencyMs: lat})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ArrivalMs < pts[j].ArrivalMs })
		d, ok := RecoveryTime(pts, failAt, 0.10, 200)
		if !ok {
			continue
		}
		if d < 0 {
			t.Fatalf("negative recovery %v", d)
		}
		if last := pts[len(pts)-1].ArrivalMs; d > time.Duration(last-failAt)*time.Millisecond {
			t.Fatalf("recovery %v exceeds post-failure span %dms", d, last-failAt)
		}
	}
}

// TestQuickRecoveryTimeFlatSeries: a perfectly flat series recovers at
// the first observed point after the failure (within one 25 ms sample
// interval), wherever the failure lands.
func TestQuickRecoveryTimeFlatSeries(t *testing.T) {
	f := func(latRaw uint16, failRaw uint16) bool {
		lat := int64(latRaw%1000) + 1
		failAt := int64(failRaw % 2000)
		var pts []LatencyPoint
		for ts := int64(0); ts < 4000; ts += 25 {
			pts = append(pts, LatencyPoint{ArrivalMs: ts, LatencyMs: lat})
		}
		d, ok := RecoveryTime(pts, failAt, 0.10, 200)
		return ok && d <= 25*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThroughputGapBounds: the reported gap never exceeds the
// post-failure span of the sample series and is never negative.
func TestQuickThroughputGapBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Unix(0, 0)
	for iter := 0; iter < 200; iter++ {
		n := 5 + rng.Intn(60)
		var samples []ThroughputSample
		for i := 0; i < n; i++ {
			samples = append(samples, ThroughputSample{
				At:     base.Add(time.Duration(i) * 300 * time.Millisecond),
				PerSec: float64(rng.Intn(200)),
			})
		}
		failAt := base.Add(time.Duration(rng.Intn(n)) * 300 * time.Millisecond)
		gap := ThroughputGap(samples, failAt, 0.1)
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		span := samples[n-1].At.Sub(failAt)
		if span < 0 {
			span = 0
		}
		if gap > span {
			t.Fatalf("gap %v exceeds post-failure span %v", gap, span)
		}
	}
}

// TestQuickLatencySeriesOrdered: LatencySeries output is sorted by
// arrival and preserves every input record.
func TestQuickLatencySeriesOrdered(t *testing.T) {
	f := func(arrivals []int64) bool {
		recs := make([]kafkasim.SinkRecord, 0, len(arrivals))
		for _, a := range arrivals {
			recs = append(recs, kafkasim.SinkRecord{ArrivalMs: a, EmitMs: a - 3})
		}
		series := LatencySeries(recs)
		if len(series) != len(arrivals) {
			return false
		}
		for i := 1; i < len(series); i++ {
			if series[i-1].ArrivalMs > series[i].ArrivalMs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
