// Package metrics implements the paper's measurement methodology (§7.1,
// §7.4): real-time throughput obtained by sampling the sink topic three
// times per second, per-record end-to-end latency, and the recovery-time
// metric — the time from a failure until observed latency returns to
// within 10% of its pre-failure value.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"clonos/internal/kafkasim"
)

// ThroughputSample is one poll of the sink topic.
type ThroughputSample struct {
	// At is the sample time.
	At time.Time
	// Count is the cumulative records delivered.
	Count int
	// PerSec is the rate since the previous sample.
	PerSec float64
}

// Sampler polls a sink topic at a fixed interval (default 3 Hz, matching
// the paper) and records the real-time throughput series.
type Sampler struct {
	sink     *kafkasim.SinkTopic
	interval time.Duration

	mu      sync.Mutex
	samples []ThroughputSample
	stop    chan struct{}
	done    sync.WaitGroup
}

// NewSampler builds a sampler; interval <= 0 selects 1/3 s.
func NewSampler(sink *kafkasim.SinkTopic, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second / 3
	}
	return &Sampler{sink: sink, interval: interval, stop: make(chan struct{})}
}

// Start begins sampling.
func (s *Sampler) Start() {
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		// The baseline is seeded from the ticker's first fire: measuring
		// the first interval from this goroutine's start — and counting
		// records delivered before sampling began — would skew the first
		// sample's rate.
		var prevCount int
		var prevAt time.Time
		seeded := false
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				count := s.sink.Len()
				if !seeded {
					seeded = true
					prevCount, prevAt = count, now
					continue
				}
				dt := now.Sub(prevAt).Seconds()
				rate := 0.0
				if dt > 0 {
					rate = float64(count-prevCount) / dt
				}
				s.mu.Lock()
				s.samples = append(s.samples, ThroughputSample{At: now, Count: count, PerSec: rate})
				s.mu.Unlock()
				prevCount, prevAt = count, now
			}
		}
	}()
}

// Stop halts sampling.
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.done.Wait()
}

// Samples returns the collected series.
func (s *Sampler) Samples() []ThroughputSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ThroughputSample(nil), s.samples...)
}

// LatencyPoint is one output record's end-to-end latency.
type LatencyPoint struct {
	// ArrivalMs is the wall-clock arrival at the sink.
	ArrivalMs int64
	// LatencyMs is arrival minus the record's ingestion wall time.
	LatencyMs int64
}

// LatencySeries extracts latency points from sink records, ordered by
// arrival.
func LatencySeries(records []kafkasim.SinkRecord) []LatencyPoint {
	out := make([]LatencyPoint, 0, len(records))
	for _, r := range records {
		out = append(out, LatencyPoint{ArrivalMs: r.ArrivalMs, LatencyMs: r.ArrivalMs - r.EmitMs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ArrivalMs < out[j].ArrivalMs })
	return out
}

// Percentile returns the p-quantile (0..1) of the values; 0 for empty.
// It uses nearest-rank selection: the index p*(n-1) is rounded to the
// closest integer rather than truncated, so e.g. the p99 of 5 values
// picks the maximum (rank 3.96 → 4), not the second-largest.
func Percentile(values []int64, p float64) int64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[percentileIndex(len(sorted), p)]
}

// PercentileF is Percentile over float64 values.
func PercentileF(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return sorted[percentileIndex(len(sorted), p)]
}

// percentileIndex maps a quantile to a nearest-rank index, clamped to the
// valid range (p outside [0,1] saturates).
func percentileIndex(n int, p float64) int {
	idx := int(math.Round(p * float64(n-1)))
	if idx < 0 {
		return 0
	}
	if idx > n-1 {
		return n - 1
	}
	return idx
}

// Latencies projects the latency values of a series.
func Latencies(points []LatencyPoint) []int64 {
	out := make([]int64, len(points))
	for i, p := range points {
		out[i] = p.LatencyMs
	}
	return out
}

// RecoveryTime computes the paper's recovery metric: the duration from
// failAtMs until observed latency has returned to within tolerance
// (e.g. 0.10) of the pre-failure median *and stays there for the rest of
// the run* (suffix stability). Requiring stability to the end of the
// series matters because a failure's impact is delayed by detection:
// latency right after the injection still looks normal, and a
// first-settled-window definition would wrongly report near-zero
// recovery before the disruption even hits. holdMs is a minimum settled
// span required at the series tail. It reports ok=false when latency
// never settles.
func RecoveryTime(points []LatencyPoint, failAtMs int64, tolerance float64, holdMs int64) (time.Duration, bool) {
	var pre []int64
	for _, p := range points {
		if p.ArrivalMs < failAtMs {
			pre = append(pre, p.LatencyMs)
		}
	}
	if len(pre) == 0 {
		// The failure precedes every observation, so there is no
		// pre-failure window to define "normal". Use the whole series'
		// shape instead: if it is steady the first point already counts
		// as recovered, and if the head is disturbed the tail's
		// percentiles still bound what steady state looks like.
		for _, p := range points {
			pre = append(pre, p.LatencyMs)
		}
	}
	baseline := Percentile(pre, 0.5)
	bound := baseline + int64(float64(baseline)*tolerance)
	if bound < baseline+5 {
		bound = baseline + 5 // floor for millisecond-scale baselines
	}
	// Individual points jitter up to the pre-failure tail even in steady
	// state; "recovered" means the tail is back to its pre-failure shape,
	// so points under the pre-failure p99 never count as disturbed.
	if p99 := Percentile(pre, 0.99); bound < p99 {
		bound = p99
	}
	n := len(points)
	firstPost := -1
	for i := 0; i < n; i++ {
		if points[i].ArrivalMs >= failAtMs {
			firstPost = i
			break
		}
	}
	if firstPost < 0 {
		return 0, false // nothing observed after the failure
	}
	// suffixBad[i] counts points above the bound in points[i:].
	suffixBad := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixBad[i] = suffixBad[i+1]
		if points[i].LatencyMs > bound {
			suffixBad[i]++
		}
	}
	// Recovered at the earliest post-failure point from which the rest of
	// the series keeps its p99 within the bound (at most 1% of the suffix
	// above it — a budget for the same stray outliers the pre-failure
	// series has), holding for at least holdMs.
	for i := firstPost; i < n; i++ {
		if points[i].LatencyMs > bound {
			continue
		}
		suffixLen := n - i
		if suffixBad[i] > suffixLen/100 {
			continue
		}
		if points[n-1].ArrivalMs-points[i].ArrivalMs < holdMs {
			break // remaining settled span too short to call it recovered
		}
		d := points[i].ArrivalMs - failAtMs
		if d < 0 {
			d = 0
		}
		return time.Duration(d) * time.Millisecond, true
	}
	return 0, false
}

// ThroughputGap reports how long the sink saw (near-)zero throughput
// after failAt: the span of consecutive samples below frac of the
// pre-failure mean rate.
func ThroughputGap(samples []ThroughputSample, failAt time.Time, frac float64) time.Duration {
	var pre []float64
	for _, s := range samples {
		if s.At.Before(failAt) {
			pre = append(pre, s.PerSec)
		}
	}
	if len(pre) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range pre {
		mean += v
	}
	mean /= float64(len(pre))
	floor := mean * frac
	var gap time.Duration
	var gapStart time.Time
	inGap := false
	for _, s := range samples {
		if s.At.Before(failAt) {
			continue
		}
		if s.PerSec < floor {
			if !inGap {
				inGap = true
				gapStart = s.At
			}
		} else if inGap {
			if d := s.At.Sub(gapStart); d > gap {
				gap = d
			}
			inGap = false
		}
	}
	if inGap && len(samples) > 0 {
		if d := samples[len(samples)-1].At.Sub(gapStart); d > gap {
			gap = d
		}
	}
	return gap
}

// MeanF returns the arithmetic mean of values (0 for empty).
func MeanF(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
