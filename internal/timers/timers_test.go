package timers

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventTimersFireOnWatermark(t *testing.T) {
	s := NewService(nil, nil)
	s.RegisterEvent(Timer{HandlerID: 1, Key: 1, When: 100})
	s.RegisterEvent(Timer{HandlerID: 1, Key: 2, When: 200})
	s.RegisterEvent(Timer{HandlerID: 2, Key: 1, When: 100})

	fired := s.AdvanceWatermark(150)
	if len(fired) != 2 {
		t.Fatalf("fired %d timers, want 2", len(fired))
	}
	// Deterministic order: (when, handler, key).
	if fired[0] != (Timer{HandlerID: 1, Key: 1, When: 100}) || fired[1] != (Timer{HandlerID: 2, Key: 1, When: 100}) {
		t.Fatalf("order = %v", fired)
	}
	if s.PendingEvent() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingEvent())
	}
	if again := s.AdvanceWatermark(150); len(again) != 0 {
		t.Fatal("timers fired twice")
	}
}

func TestRegisterEventIdempotent(t *testing.T) {
	s := NewService(nil, nil)
	tm := Timer{HandlerID: 1, Key: 1, When: 10}
	s.RegisterEvent(tm)
	s.RegisterEvent(tm)
	if got := s.AdvanceWatermark(10); len(got) != 1 {
		t.Fatalf("fired %d, want 1", len(got))
	}
}

func TestCancelEvent(t *testing.T) {
	s := NewService(nil, nil)
	tm := Timer{HandlerID: 1, Key: 1, When: 10}
	s.RegisterEvent(tm)
	if !s.CancelEvent(tm) {
		t.Fatal("cancel of armed timer failed")
	}
	if s.CancelEvent(tm) {
		t.Fatal("cancel of missing timer succeeded")
	}
	if got := s.AdvanceWatermark(100); len(got) != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestProcTimersFireWhenLive(t *testing.T) {
	var now atomic.Int64
	now.Store(1000)
	var mu sync.Mutex
	var fired []Timer
	s := NewService(func() int64 { return now.Load() }, func(tm Timer) {
		mu.Lock()
		fired = append(fired, tm)
		mu.Unlock()
	})
	s.Start()
	defer s.Stop()
	s.SetLive(true)
	s.RegisterProc(Timer{HandlerID: 1, Key: 1, When: 1500})
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	n := len(fired)
	mu.Unlock()
	if n != 0 {
		t.Fatal("timer fired before deadline")
	}
	now.Store(1500)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n = len(fired)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timer never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.PendingProc() != 0 {
		t.Fatal("fired timer still pending")
	}
}

func TestProcTimersSuppressedWhenNotLive(t *testing.T) {
	var now atomic.Int64
	now.Store(2000)
	var count atomic.Int32
	firedCh := make(chan struct{}, 4)
	s := NewService(func() int64 { return now.Load() }, func(Timer) {
		count.Add(1)
		select {
		case firedCh <- struct{}{}:
		default:
		}
	})
	s.Start()
	defer s.Stop()
	// Not live: overdue timers must not fire.
	s.RegisterProc(Timer{HandlerID: 1, Key: 1, When: 1000})
	time.Sleep(80 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("timer fired while not live")
	}
	s.SetLive(true)
	select {
	case <-firedCh:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired after SetLive")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("timer fired %d times, want 1", got)
	}
}

func TestTakeProcConsumesPending(t *testing.T) {
	s := NewService(func() int64 { return 0 }, nil)
	tm := Timer{HandlerID: 3, Key: 9, When: 50}
	s.RegisterProc(tm)
	if !s.TakeProc(tm) {
		t.Fatal("TakeProc failed for armed timer")
	}
	if s.TakeProc(tm) {
		t.Fatal("TakeProc succeeded twice")
	}
	if s.PendingProc() != 0 {
		t.Fatal("timer still pending after TakeProc")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewService(func() int64 { return 0 }, nil)
	s.RegisterProc(Timer{HandlerID: 1, Key: 1, When: 10})
	s.RegisterProc(Timer{HandlerID: 1, Key: 2, When: 20})
	s.RegisterEvent(Timer{HandlerID: 2, Key: 3, When: 30})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewService(func() int64 { return 0 }, nil)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.PendingProc() != 2 || s2.PendingEvent() != 1 {
		t.Fatalf("restored proc=%d event=%d", s2.PendingProc(), s2.PendingEvent())
	}
	if !s2.TakeProc(Timer{HandlerID: 1, Key: 2, When: 20}) {
		t.Fatal("restored proc timer missing")
	}
	if got := s2.AdvanceWatermark(30); len(got) != 1 || got[0].Key != 3 {
		t.Fatalf("restored event timers = %v", got)
	}
}

func TestRestoreEmpty(t *testing.T) {
	s := NewService(nil, nil)
	s.RegisterProc(Timer{HandlerID: 1, Key: 1, When: 10})
	if err := s.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if s.PendingProc() != 0 {
		t.Fatal("restore(nil) kept timers")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	s := NewService(nil, nil)
	s.Start()
	s.Start() // second start is a no-op
	s.Stop()
	s.Stop() // second stop is a no-op
}
