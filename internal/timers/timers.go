// Package timers implements a task's timer service: processing-time timers
// driven by the wall clock on a dedicated thread (a source of
// nondeterminism, captured by TIMER determinants) and event-time timers
// fired deterministically by watermark advancement.
package timers

import (
	"bytes"
	"encoding/gob"
	"sort"
	"sync"
	"time"
)

// Timer identifies one pending timer instance. HandlerID selects the
// callback registered by the operator chain at setup time (stable across
// task incarnations); Key scopes it to a partition key; When is the firing
// deadline in Unix milliseconds.
type Timer struct {
	HandlerID int32
	Key       uint64
	When      int64
}

func less(a, b Timer) bool {
	if a.When != b.When {
		return a.When < b.When
	}
	if a.HandlerID != b.HandlerID {
		return a.HandlerID < b.HandlerID
	}
	return a.Key < b.Key
}

// set is a deduplicating ordered collection of timers.
type set struct {
	items map[Timer]struct{}
}

func newSet() *set { return &set{items: make(map[Timer]struct{})} }

func (s *set) add(t Timer) bool {
	if _, ok := s.items[t]; ok {
		return false
	}
	s.items[t] = struct{}{}
	return true
}

func (s *set) remove(t Timer) bool {
	if _, ok := s.items[t]; !ok {
		return false
	}
	delete(s.items, t)
	return true
}

// due removes and returns all timers with When <= bound, sorted.
func (s *set) due(bound int64) []Timer {
	var out []Timer
	for t := range s.items {
		if t.When <= bound {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	for _, t := range out {
		delete(s.items, t)
	}
	return out
}

func (s *set) earliest() (Timer, bool) {
	var best Timer
	found := false
	for t := range s.items {
		if !found || less(t, best) {
			best = t
			found = true
		}
	}
	return best, found
}

func (s *set) all() []Timer {
	out := make([]Timer, 0, len(s.items))
	for t := range s.items {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Service manages a task's pending timers.
//
// Processing-time timers fire from a dedicated goroutine via the fire
// callback (the task routes this into its mailbox, serializing it with
// record processing and logging a TIMER determinant). Event-time timers
// fire synchronously from the main loop on watermark advancement and need
// no determinant — watermarks are in-stream and replayed.
type Service struct {
	mu    sync.Mutex
	proc  *set
	event *set
	clock func() int64
	fire  func(Timer)
	live  bool
	stop  chan struct{}
	wake  chan struct{}
	done  sync.WaitGroup
}

// NewService builds a timer service. clock returns the wall time in Unix
// ms; fire is invoked from the timer thread for each due processing-time
// timer while the service is live.
func NewService(clock func() int64, fire func(Timer)) *Service {
	if clock == nil {
		clock = func() int64 { return time.Now().UnixMilli() }
	}
	return &Service{
		proc:  newSet(),
		event: newSet(),
		clock: clock,
		fire:  fire,
		wake:  make(chan struct{}, 1),
	}
}

// RegisterProc arms a processing-time timer. Duplicate registrations are
// idempotent.
func (s *Service) RegisterProc(t Timer) {
	s.mu.Lock()
	added := s.proc.add(t)
	s.mu.Unlock()
	if added {
		s.kick()
	}
}

// CancelProc disarms a processing-time timer; reports whether it existed.
func (s *Service) CancelProc(t Timer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proc.remove(t)
}

// TakeProc removes a pending processing-time timer during determinant
// replay (the logged firing consumed it). Reports whether it was pending.
func (s *Service) TakeProc(t Timer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proc.remove(t)
}

// RegisterEvent arms an event-time timer.
func (s *Service) RegisterEvent(t Timer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.event.add(t)
}

// CancelEvent disarms an event-time timer.
func (s *Service) CancelEvent(t Timer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.event.remove(t)
}

// AdvanceWatermark removes and returns, in deterministic order, all
// event-time timers due at the given watermark.
func (s *Service) AdvanceWatermark(wm int64) []Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.event.due(wm)
}

// DrainProc removes and returns every armed processing-time timer whose
// handler passes keep, in deterministic order. Tasks use it at
// end-of-stream so bounded jobs flush pending processing-time windows.
func (s *Service) DrainProc(keep func(Timer) bool) []Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Timer
	for t := range s.proc.items {
		if keep == nil || keep(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	for _, t := range out {
		delete(s.proc.items, t)
	}
	return out
}

// PendingProc reports the number of armed processing-time timers.
func (s *Service) PendingProc() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.proc.items)
}

// PendingEvent reports the number of armed event-time timers.
func (s *Service) PendingEvent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.event.items)
}

// SetLive toggles real firing. While not live (during causally guided
// recovery) the timer thread parks and lets determinant replay drive
// firings.
func (s *Service) SetLive(live bool) {
	s.mu.Lock()
	s.live = live
	s.mu.Unlock()
	s.kick()
}

// Start launches the processing-time thread.
func (s *Service) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	stop := s.stop
	s.mu.Unlock()
	s.done.Add(1)
	go s.run(stop)
}

// Stop terminates the processing-time thread and waits for it.
func (s *Service) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.done.Wait()
	}
}

func (s *Service) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Service) run(stop chan struct{}) {
	defer s.done.Done()
	const idle = 50 * time.Millisecond
	for {
		s.mu.Lock()
		live := s.live
		now := s.clock()
		var fired []Timer
		var wait time.Duration = idle
		if live {
			fired = s.proc.due(now)
			if next, ok := s.proc.earliest(); ok {
				if d := time.Duration(next.When-now) * time.Millisecond; d < wait {
					wait = d
				}
			}
		}
		fire := s.fire
		s.mu.Unlock()
		if fire != nil {
			for _, t := range fired {
				fire(t)
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-s.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// snapshotState is the serialized form of pending timers.
type snapshotState struct {
	Proc  []Timer
	Event []Timer
}

// Snapshot serializes all pending timers for inclusion in a checkpoint.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	st := snapshotState{Proc: s.proc.all(), Event: s.event.all()}
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces pending timers from a snapshot.
func (s *Service) Restore(b []byte) error {
	st := snapshotState{}
	if len(b) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proc = newSet()
	s.event = newSet()
	for _, t := range st.Proc {
		s.proc.add(t)
	}
	for _, t := range st.Event {
		s.event.add(t)
	}
	return nil
}
