package nexmark

import (
	"testing"
	"testing/quick"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/services"
)

func TestGeneratorProportions(t *testing.T) {
	cfg := DefaultGeneratorConfig(1)
	var persons, auctions, bids int
	for i := int64(0); i < 5000; i++ {
		switch GenEvent(cfg, i, int64(i)).Kind {
		case KindPerson:
			persons++
		case KindAuction:
			auctions++
		case KindBid:
			bids++
		}
	}
	if persons != 100 || auctions != 300 || bids != 4600 {
		t.Fatalf("mix = %d:%d:%d, want 100:300:4600", persons, auctions, bids)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig(42)
	for i := int64(0); i < 500; i++ {
		a := GenEvent(cfg, i, 1000+i)
		b := GenEvent(cfg, i, 1000+i)
		if a.Kind != b.Kind || a.Time() != b.Time() {
			t.Fatalf("event %d differs across generations", i)
		}
		switch a.Kind {
		case KindBid:
			if *a.Bid != *b.Bid {
				t.Fatalf("bid %d differs: %+v vs %+v", i, a.Bid, b.Bid)
			}
		case KindAuction:
			if *a.Auction != *b.Auction {
				t.Fatalf("auction %d differs", i)
			}
		case KindPerson:
			if *a.Person != *b.Person {
				t.Fatalf("person %d differs", i)
			}
		}
	}
}

func TestGeneratorIDsDenseAndReferential(t *testing.T) {
	cfg := DefaultGeneratorConfig(7)
	var persons, auctions int64
	for i := int64(0); i < 5000; i++ {
		ev := GenEvent(cfg, i, int64(i))
		switch ev.Kind {
		case KindPerson:
			if ev.Person.ID != uint64(persons) {
				t.Fatalf("person id %d, want %d", ev.Person.ID, persons)
			}
			persons++
		case KindAuction:
			if ev.Auction.ID != uint64(auctions) {
				t.Fatalf("auction id %d, want %d", ev.Auction.ID, auctions)
			}
			if persons > 0 && ev.Auction.Seller >= uint64(persons) {
				t.Fatalf("auction refers to future seller %d (persons=%d)", ev.Auction.Seller, persons)
			}
			auctions++
		case KindBid:
			if auctions > 0 && ev.Bid.Auction >= uint64(auctions) {
				t.Fatalf("bid refers to future auction %d (auctions=%d)", ev.Bid.Auction, auctions)
			}
			if persons > 0 && ev.Bid.Bidder >= uint64(persons) {
				t.Fatalf("bid refers to future bidder")
			}
		}
	}
}

func TestGeneratorHotSkew(t *testing.T) {
	cfg := DefaultGeneratorConfig(3)
	hot := 0
	total := 0
	var auctions int64
	for i := int64(0); i < 20000; i++ {
		ev := GenEvent(cfg, i, int64(i))
		if ev.Kind == KindAuction {
			auctions++
		}
		if ev.Kind == KindBid && auctions > 32 {
			total++
			if ev.Bid.Auction >= uint64(auctions-16) {
				hot++
			}
		}
	}
	ratio := float64(hot) / float64(total)
	if ratio < 0.7 || ratio > 0.95 {
		t.Fatalf("hot-auction ratio = %.2f, want ~0.85", ratio)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig(11)
	c := EventCodec{}
	for i := int64(0); i < 200; i++ {
		ev := GenEvent(cfg, i, 5_000+i)
		b, err := c.EncodeAppend(nil, ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		ge := got.(Event)
		if ge.Kind != ev.Kind || ge.Time() != ev.Time() {
			t.Fatalf("event %d: %+v vs %+v", i, ge, ev)
		}
		switch ev.Kind {
		case KindPerson:
			if *ge.Person != *ev.Person {
				t.Fatalf("person mismatch: %+v vs %+v", ge.Person, ev.Person)
			}
		case KindAuction:
			if *ge.Auction != *ev.Auction {
				t.Fatalf("auction mismatch")
			}
		case KindBid:
			if *ge.Bid != *ev.Bid {
				t.Fatalf("bid mismatch")
			}
		}
	}
}

func TestEventCodecErrors(t *testing.T) {
	c := EventCodec{}
	if _, err := c.EncodeAppend(nil, "nope"); err == nil {
		t.Fatal("encoded a string")
	}
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("decoded empty")
	}
	if _, err := c.Decode([]byte{99}); err == nil {
		t.Fatal("decoded unknown kind")
	}
	ev := Event{Kind: KindBid, Bid: &Bid{Auction: 1, Bidder: 2, Price: 3, DateTime: 4}}
	b, _ := c.EncodeAppend(nil, ev)
	if _, err := c.Decode(b[:len(b)-2]); err == nil {
		t.Fatal("decoded truncated bid")
	}
}

func TestQuickResultCodecRoundTrip(t *testing.T) {
	c := ResultCodec{}
	f := func(a uint64, b int64, cf float64, s string, tt int64) bool {
		r := Result{A: a, B: b, C: cf, S: s, T: tt}
		enc, err := c.EncodeAppend(nil, r)
		if err != nil {
			return false
		}
		got, err := c.Decode(enc)
		if err != nil {
			return false
		}
		gr := got.(Result)
		// NaN never round-trips by ==; compare bits via re-encode.
		if cf != cf {
			gr.C, r.C = 0, 0
		}
		return gr == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// runQuery executes one query over a finite deterministic event set and
// returns the sink.
func runQuery(t *testing.T, name string, n int64) *kafkasim.SinkTopic {
	t.Helper()
	topic := kafkasim.NewTopic("nexmark", 2)
	GenerateAll(topic, DefaultGeneratorConfig(5), n, 1_000_000, 1)
	sink := kafkasim.NewSinkTopic(true)
	qc := DefaultQueryConfig(2)
	g, err := Build(name, topic, sink, qc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := job.DefaultConfig()
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.World = services.NewExternalWorld()
	r, err := job.NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("%s did not finish: %v", name, r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("%s task error: %v", name, e)
	}
	return sink
}

func TestQ1ConvertsEveryBid(t *testing.T) {
	const n = 5000
	sink := runQuery(t, "Q1", n)
	// 46 of every 50 events are bids.
	want := 0
	cfg := DefaultGeneratorConfig(5)
	for i := int64(0); i < n; i++ {
		if kindOf(cfg, i) == KindBid {
			want++
		}
	}
	if sink.Len() != want {
		t.Fatalf("Q1 output = %d, want %d", sink.Len(), want)
	}
	for _, rec := range sink.All()[:10] {
		r := rec.Value.(Result)
		if r.B <= 0 {
			t.Fatalf("non-positive converted price: %+v", r)
		}
	}
}

func TestQ2Selects(t *testing.T) {
	sink := runQuery(t, "Q2", 5000)
	if sink.Len() == 0 {
		t.Fatal("Q2 produced nothing")
	}
	for _, rec := range sink.All() {
		if rec.Value.(Result).A%5 != 0 {
			t.Fatalf("Q2 emitted auction %d", rec.Value.(Result).A)
		}
	}
}

func TestQ3JoinOutputs(t *testing.T) {
	sink := runQuery(t, "Q3", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q3 produced nothing")
	}
	for _, rec := range sink.All() {
		r := rec.Value.(Result)
		if r.S == "" {
			t.Fatalf("Q3 output without person data: %+v", r)
		}
	}
}

func TestQ4AveragePerCategory(t *testing.T) {
	sink := runQuery(t, "Q4", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q4 produced nothing")
	}
	for _, rec := range sink.All() {
		r := rec.Value.(Result)
		if r.A < 10 || r.A >= 15 || r.C <= 0 {
			t.Fatalf("Q4 category/avg out of range: %+v", r)
		}
	}
}

func TestQ5HotItems(t *testing.T) {
	sink := runQuery(t, "Q5", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q5 produced nothing")
	}
	for _, rec := range sink.All() {
		if rec.Value.(Result).B <= 0 {
			t.Fatalf("Q5 max count not positive: %+v", rec.Value)
		}
	}
}

func TestQ6SellerAverages(t *testing.T) {
	sink := runQuery(t, "Q6", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q6 produced nothing")
	}
}

func TestQ7HighestBid(t *testing.T) {
	sink := runQuery(t, "Q7", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q7 produced nothing")
	}
	// Exactly one result per fired window.
	seen := map[uint64]int{}
	for _, rec := range sink.All() {
		seen[rec.Value.(Result).A]++
	}
	for end, n := range seen {
		if n != 1 {
			t.Fatalf("window %d emitted %d results", end, n)
		}
	}
}

func TestQ8WindowedJoin(t *testing.T) {
	sink := runQuery(t, "Q8", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q8 produced nothing")
	}
}

func TestQ11Sessions(t *testing.T) {
	sink := runQuery(t, "Q11", 10000)
	if sink.Len() == 0 {
		t.Fatal("Q11 produced nothing")
	}
	var total int64
	for _, rec := range sink.All() {
		total += rec.Value.(Result).B
	}
	// Every bid lands in exactly one session.
	want := int64(0)
	cfg := DefaultGeneratorConfig(5)
	for i := int64(0); i < 10000; i++ {
		if kindOf(cfg, i) == KindBid {
			want++
		}
	}
	if total != want {
		t.Fatalf("session counts sum to %d, want %d", total, want)
	}
}

func TestQ12ProcessingTimeCounts(t *testing.T) {
	sink := runQuery(t, "Q12", 10000)
	var total int64
	for _, rec := range sink.All() {
		total += rec.Value.(int64)
	}
	want := int64(0)
	cfg := DefaultGeneratorConfig(5)
	for i := int64(0); i < 10000; i++ {
		if kindOf(cfg, i) == KindBid {
			want++
		}
	}
	if total != want {
		t.Fatalf("processing-time counts sum to %d, want %d", total, want)
	}
}

func TestQ13SideInputJoin(t *testing.T) {
	sink := runQuery(t, "Q13", 5000)
	if sink.Len() == 0 {
		t.Fatal("Q13 produced nothing")
	}
	for _, rec := range sink.All()[:5] {
		if rec.Value.(Result).S == "" {
			t.Fatal("Q13 output missing side value")
		}
	}
}

func TestQ14Calculation(t *testing.T) {
	sink := runQuery(t, "Q14", 5000)
	if sink.Len() == 0 {
		t.Fatal("Q14 produced nothing")
	}
	for _, rec := range sink.All() {
		r := rec.Value.(Result)
		if r.C <= 500 || (r.S != "normal" && r.S != "expensive") {
			t.Fatalf("Q14 bad output: %+v", r)
		}
	}
}

func TestBuildUnknownQuery(t *testing.T) {
	if _, err := Build("Q99", kafkasim.NewTopic("x", 1), kafkasim.NewSinkTopic(true), DefaultQueryConfig(1)); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestAllQueriesValidate(t *testing.T) {
	for _, name := range QueryNames {
		g, err := Build(name, kafkasim.NewTopic("x", 2), kafkasim.NewSinkTopic(true), DefaultQueryConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Depth() < 2 {
			t.Fatalf("%s depth = %d", name, g.Depth())
		}
	}
}

func TestQ9WinningBids(t *testing.T) {
	sink := runQuery(t, "Q9", 20000)
	if sink.Len() == 0 {
		t.Fatal("Q9 produced nothing")
	}
	seen := map[uint64]bool{}
	for _, rec := range sink.All() {
		r := rec.Value.(Result)
		if r.B <= 0 {
			t.Fatalf("non-positive winning price: %+v", r)
		}
		if seen[r.A] {
			t.Fatalf("auction %d won twice", r.A)
		}
		seen[r.A] = true
	}
}

func TestGeneratorExtraPadding(t *testing.T) {
	cfg := DefaultGeneratorConfig(9)
	cfg.ExtraBytes = 40
	c := EventCodec{}
	for i := int64(0); i < 100; i++ {
		ev := GenEvent(cfg, i, int64(i))
		var extra string
		switch ev.Kind {
		case KindPerson:
			extra = ev.Person.Extra
		case KindAuction:
			extra = ev.Auction.Extra
		case KindBid:
			extra = ev.Bid.Extra
		}
		if len(extra) != 40 {
			t.Fatalf("event %d extra = %d bytes", i, len(extra))
		}
		// Padding is deterministic per event index.
		again := GenEvent(cfg, i, int64(i))
		b1, _ := c.EncodeAppend(nil, ev)
		b2, _ := c.EncodeAppend(nil, again)
		if string(b1) != string(b2) {
			t.Fatalf("event %d padding not deterministic", i)
		}
	}
}
