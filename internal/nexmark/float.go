package nexmark

import "math"

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }
func floatFromUint64(u uint64) float64 { return math.Float64frombits(u) }
