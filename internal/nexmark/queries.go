package nexmark

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"clonos/internal/codec"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/operator"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// Result is the uniform output record of every query, with a compact
// binary codec so the hot sink edges avoid reflective encoding.
type Result struct {
	A uint64  // entity or window identifier
	B int64   // integral value (price, count)
	C float64 // fractional value (average, conversion)
	S string  // label
	T int64   // auxiliary time
}

func init() {
	statestore.Register(Result{})
	statestore.Register(q4Acc{})
	statestore.Register([]int64{})
	statestore.Register(map[uint64]int64{})
	// Typed tier registrations; []int64 and map[uint64]int64 are codec
	// package built-ins.
	codec.RegisterType(Result{}, ResultCodec{})
	codec.RegisterType(q4Acc{}, q4AccCodec{})
}

// ResultCodec is the binary codec for Result values.
type ResultCodec struct{}

// EncodeAppend implements codec.Codec.
func (ResultCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	r, ok := v.(Result)
	if !ok {
		return dst, fmt.Errorf("nexmark: ResultCodec got %T", v)
	}
	dst = binary.AppendUvarint(dst, r.A)
	dst = binary.AppendVarint(dst, r.B)
	dst = binary.BigEndian.AppendUint64(dst, floatBits(r.C))
	dst = putString(dst, r.S)
	dst = binary.AppendVarint(dst, r.T)
	return dst, nil
}

// Decode implements codec.Codec.
func (ResultCodec) Decode(b []byte) (any, error) {
	var r Result
	i := 0
	a, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return nil, fmt.Errorf("nexmark: truncated result")
	}
	i += n
	r.A = a
	bv, n := binary.Varint(b[i:])
	if n <= 0 {
		return nil, fmt.Errorf("nexmark: truncated result")
	}
	i += n
	r.B = bv
	if len(b)-i < 8 {
		return nil, fmt.Errorf("nexmark: truncated result")
	}
	r.C = floatFromBits(binary.BigEndian.Uint64(b[i:]))
	i += 8
	s, n, err := getString(b[i:])
	if err != nil {
		return nil, err
	}
	i += n
	r.S = s
	tv, n := binary.Varint(b[i:])
	if n <= 0 {
		return nil, fmt.Errorf("nexmark: truncated result")
	}
	i += n
	r.T = tv
	if i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return r, nil
}

// q4AccCodec is the typed snapshot codec for the Q4/Q6 auction-close
// accumulator.
type q4AccCodec struct{}

// EncodeAppend implements codec.Codec.
func (q4AccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a, ok := v.(q4Acc)
	if !ok {
		return dst, fmt.Errorf("nexmark: q4AccCodec got %T", v)
	}
	have := byte(0)
	if a.HaveAuction {
		have = 1
	}
	dst = append(dst, have)
	dst = binary.AppendUvarint(dst, a.Category)
	dst = binary.AppendUvarint(dst, a.Seller)
	dst = binary.AppendVarint(dst, a.Expires)
	dst = binary.AppendVarint(dst, a.Reserve)
	dst = binary.AppendVarint(dst, a.Best)
	return dst, nil
}

// Decode implements codec.Codec.
func (q4AccCodec) Decode(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("nexmark: truncated q4Acc")
	}
	c := &cursor{b: b, i: 1}
	a := q4Acc{
		HaveAuction: b[0] != 0,
		Category:    c.uv(), Seller: c.uv(),
		Expires: c.sv(), Reserve: c.sv(), Best: c.sv(),
	}
	if c.err != nil {
		return nil, fmt.Errorf("nexmark: truncated q4Acc")
	}
	if c.i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return a, nil
}

func floatBits(f float64) uint64     { return uint64FromFloat(f) }
func floatFromBits(u uint64) float64 { return floatFromUint64(u) }

// QueryConfig parameterizes the query topologies.
type QueryConfig struct {
	// Parallelism of every non-sink vertex.
	Parallelism int
	// WindowMs / SlideMs / SessionGapMs scale the windowed queries.
	WindowMs     int64
	SlideMs      int64
	SessionGapMs int64
	// SideURLCardinality bounds Q13's side-input key space.
	SideURLCardinality uint64
	// WatermarkEvery configures the source's watermark period.
	WatermarkEvery int64
}

// DefaultQueryConfig returns experiment-scaled defaults.
func DefaultQueryConfig(p int) QueryConfig {
	return QueryConfig{
		Parallelism:        p,
		WindowMs:           1000,
		SlideMs:            250,
		SessionGapMs:       500,
		SideURLCardinality: 100,
		WatermarkEvery:     100,
	}
}

// QueryNames lists the implemented queries in the paper's Figure 5 order
// (Q10 is excluded by the paper itself: it requires GCP access).
var QueryNames = []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q11", "Q12", "Q13", "Q14"}

// Build constructs the dataflow graph of one query over a NEXMark topic.
func Build(name string, topic *kafkasim.Topic, sink *kafkasim.SinkTopic, cfg QueryConfig) (*job.Graph, error) {
	b := &builder{g: job.NewGraph(), topic: topic, sink: sink, cfg: cfg}
	switch name {
	case "Q1":
		return b.q1(), nil
	case "Q2":
		return b.q2(), nil
	case "Q3":
		return b.q3(), nil
	case "Q4":
		return b.q4(), nil
	case "Q5":
		return b.q5(), nil
	case "Q6":
		return b.q6(), nil
	case "Q7":
		return b.q7(), nil
	case "Q8":
		return b.q8(), nil
	case "Q9":
		return b.q9(), nil
	case "Q11":
		return b.q11(), nil
	case "Q12":
		return b.q12(), nil
	case "Q13":
		return b.q13(), nil
	case "Q14":
		return b.q14(), nil
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q", name)
	}
}

type builder struct {
	g     *job.Graph
	topic *kafkasim.Topic
	sink  *kafkasim.SinkTopic
	cfg   QueryConfig
}

// source adds the NEXMark source vertex.
func (b *builder) source() *job.Vertex {
	return b.g.AddVertex("source", b.cfg.Parallelism, &operator.KafkaSource{
		SourceName:     "nexmark",
		Topic:          b.topic,
		WatermarkEvery: b.cfg.WatermarkEvery,
	})
}

// sinkVertex adds the measured sink.
func (b *builder) sinkVertex() *job.Vertex {
	return b.g.AddVertex("sink", 1, nil, operator.NewKafkaSink("kafka-sink", b.sink))
}

// connectResult wires an edge carrying Result values, hash-keyed by A.
func (b *builder) connectResult(from, to *job.Vertex) {
	b.g.Connect(from, to, job.PartitionHash, func(v any) uint64 { return v.(Result).A }, ResultCodec{})
}

// asEvent returns the Event in v.
func asEvent(v any) Event { return v.(Event) }

// bidMap builds a vertex mapping bids through f (dropping non-bids).
func (b *builder) bidMap(name string, f func(ctx operator.Context, bid *Bid, ts int64) (Result, bool, error)) *job.Vertex {
	return b.g.AddVertex(name, b.cfg.Parallelism, nil, operator.Map(name, func(ctx operator.Context, e types.Element) (any, bool, error) {
		ev := asEvent(e.Value)
		if ev.Kind != KindBid {
			return nil, false, nil
		}
		r, keep, err := f(ctx, ev.Bid, e.Timestamp)
		if err != nil || !keep {
			return nil, false, err
		}
		return r, true, nil
	}))
}

// Q1: currency conversion — dollar prices to euro (price * 0.908).
func (b *builder) q1() *job.Graph {
	src := b.source()
	conv := b.bidMap("q1-convert", func(_ operator.Context, bid *Bid, ts int64) (Result, bool, error) {
		return Result{A: bid.Auction, B: bid.Price * 908 / 1000, T: bid.DateTime}, true, nil
	})
	sink := b.sinkVertex()
	b.g.Connect(src, conv, job.PartitionForward, nil, EventCodec{})
	b.connectResult(conv, sink)
	return b.g
}

// Q2: selection — bids on auctions with ID % 123 == 0 (relaxed modulus so
// scaled-down runs still produce output).
func (b *builder) q2() *job.Graph {
	src := b.source()
	sel := b.bidMap("q2-filter", func(_ operator.Context, bid *Bid, ts int64) (Result, bool, error) {
		if bid.Auction%5 != 0 {
			return Result{}, false, nil
		}
		return Result{A: bid.Auction, B: bid.Price}, true, nil
	})
	sink := b.sinkVertex()
	b.g.Connect(src, sel, job.PartitionForward, nil, EventCodec{})
	b.connectResult(sel, sink)
	return b.g
}

// Q3: local item suggestion — persons from OR/ID/CA joined with their
// category-10 auctions (incremental full-history join).
func (b *builder) q3() *job.Graph {
	src := b.source()
	people := b.g.AddVertex("q3-people", b.cfg.Parallelism, nil, operator.Map("people", func(_ operator.Context, e types.Element) (any, bool, error) {
		ev := asEvent(e.Value)
		if ev.Kind != KindPerson {
			return nil, false, nil
		}
		p := ev.Person
		if p.State != "OR" && p.State != "ID" && p.State != "CA" {
			return nil, false, nil
		}
		return Result{A: p.ID, S: p.Name + "," + p.City + "," + p.State}, true, nil
	}))
	auctions := b.g.AddVertex("q3-auctions", b.cfg.Parallelism, nil, operator.Map("auctions", func(_ operator.Context, e types.Element) (any, bool, error) {
		ev := asEvent(e.Value)
		if ev.Kind != KindAuction || ev.Auction.Category != 10 {
			return nil, false, nil
		}
		return Result{A: ev.Auction.Seller, B: int64(ev.Auction.ID)}, true, nil
	}))
	joinV := b.g.AddVertex("q3-join", b.cfg.Parallelism, nil, operator.HashJoin("join", func(l, r any) any {
		person := l.(Result)
		auction := r.(Result)
		return Result{A: person.A, B: auction.B, S: person.S}
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, people, job.PartitionForward, nil, EventCodec{})
	b.g.Connect(src, auctions, job.PartitionForward, nil, EventCodec{})
	b.connectResult(people, joinV)
	b.connectResult(auctions, joinV)
	b.connectResult(joinV, sink)
	return b.g
}

// q4Acc is the auction-close state of Q4/Q6.
type q4Acc struct {
	HaveAuction bool
	Category    uint64
	Seller      uint64
	Expires     int64
	Reserve     int64
	Best        int64
}

// closer builds the winning-bid operator: auctions and their bids meet
// keyed by auction ID; at the auction's expiry (event time) the winning
// bid is emitted as Result{A: category, B: price, T: seller}.
func (b *builder) closer(name string) *job.Vertex {
	op := operator.NewProcess(name, nil)
	op.OnRecord = func(ctx operator.Context, _ int, e types.Element) error {
		ev := asEvent(e.Value)
		st := ctx.State()
		switch ev.Kind {
		case KindAuction:
			a := ev.Auction
			acc, _ := st.Get(e.Key).(q4Acc)
			acc.HaveAuction = true
			acc.Category = a.Category
			acc.Seller = a.Seller
			acc.Expires = a.Expires
			acc.Reserve = a.Reserve
			st.Put(e.Key, acc)
			ctx.RegisterEventTimer(e.Key, a.Expires)
		case KindBid:
			bid := ev.Bid
			acc, _ := st.Get(e.Key).(q4Acc)
			if bid.Price > acc.Best {
				acc.Best = bid.Price
				st.Put(e.Key, acc)
			}
		}
		return nil
	}
	op.OnEvent = func(ctx operator.Context, key uint64, when int64) error {
		st := ctx.State()
		acc, ok := st.Get(key).(q4Acc)
		if !ok || !acc.HaveAuction || acc.Expires != when {
			return nil
		}
		st.Delete(key)
		if acc.Best >= acc.Reserve {
			ctx.Emit(key, when, Result{A: acc.Category, B: acc.Best, T: int64(acc.Seller)})
		}
		return nil
	}
	return b.g.AddVertex(name, b.cfg.Parallelism, nil, op)
}

// bidAuctionKey routes by the bid's auction; non-bids (dropped by the
// downstream filter) route to key 0.
func bidAuctionKey(v any) uint64 {
	if ev := asEvent(v); ev.Kind == KindBid {
		return ev.Bid.Auction
	}
	return 0
}

// bidBidderKey routes by the bid's bidder; non-bids route to key 0.
func bidBidderKey(v any) uint64 {
	if ev := asEvent(v); ev.Kind == KindBid {
		return ev.Bid.Bidder
	}
	return 0
}

// auctionKey routes auctions and bids to the same key space.
func auctionKey(v any) uint64 {
	ev := asEvent(v)
	switch ev.Kind {
	case KindAuction:
		return ev.Auction.ID
	case KindBid:
		return ev.Bid.Auction
	default:
		return 0
	}
}

// Q4: average closing price per category.
func (b *builder) q4() *job.Graph {
	src := b.source()
	close := b.closer("q4-close")
	avg := b.g.AddVertex("q4-avg", b.cfg.Parallelism, nil, operator.KeyedReduce("avg", func(_ operator.Context, acc any, e types.Element) (any, error) {
		a, _ := acc.(Result)
		a.A = e.Key
		a.B++
		a.C += (float64(e.Value.(Result).B) - a.C) / float64(a.B)
		return a, nil
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, close, job.PartitionHash, auctionKey, EventCodec{})
	b.connectResult(close, avg)
	b.connectResult(avg, sink)
	return b.g
}

// windowMax builds the combiner stage of the Q5/Q7 aggregation tree: it
// keeps the maximum Result.B per window (records arrive keyed by window
// end, timestamped end-1) and emits it when the watermark passes.
func (b *builder) windowMax(name string, parallelism int) *job.Vertex {
	op := operator.NewProcess(name, nil)
	op.OnRecord = func(ctx operator.Context, _ int, e types.Element) error {
		st := ctx.State()
		var r Result
		switch v := e.Value.(type) {
		case Result:
			r = v
		case operator.WindowResult:
			// Output of an upstream window stage: carry the window end
			// as the routing identifier and the aggregate as the value.
			r = Result{A: uint64(v.End), B: v.Value.(int64), T: int64(v.Key)}
		default:
			return fmt.Errorf("nexmark: %s got %T", name, e.Value)
		}
		cur, ok := st.Get(e.Key).(Result)
		if !ok {
			ctx.RegisterEventTimer(e.Key, e.Timestamp)
			cur = r
		} else if r.B > cur.B {
			cur = r
		}
		st.Put(e.Key, cur)
		return nil
	}
	op.OnEvent = func(ctx operator.Context, key uint64, when int64) error {
		st := ctx.State()
		if cur, ok := st.Get(key).(Result); ok {
			st.Delete(key)
			ctx.Emit(key, when, cur)
		}
		return nil
	}
	return b.g.AddVertex(name, parallelism, nil, op)
}

// Q5: hot items — the auction with the most bids per sliding window,
// computed with an aggregation tree (count → partial max → final max) as
// the paper describes for skew handling.
func (b *builder) q5() *job.Graph {
	src := b.source()
	count := b.g.AddVertex("q5-count", b.cfg.Parallelism, nil,
		operator.Filter("bids", func(_ operator.Context, e types.Element) (bool, error) {
			return asEvent(e.Value).Kind == KindBid, nil
		}),
		operator.Window("count", operator.WindowSpec{Kind: operator.SlidingEventTime, Size: b.cfg.WindowMs, Slide: b.cfg.SlideMs}, operator.Count(), true),
	)
	partial := b.windowMax("q5-partial", b.cfg.Parallelism)
	final := b.windowMax("q5-final", b.cfg.Parallelism)
	sink := b.sinkVertex()
	b.g.Connect(src, count, job.PartitionHash, bidAuctionKey, EventCodec{})
	// Partial stage: spread each window over parallel combiner groups.
	b.g.Connect(count, partial, job.PartitionHash, func(v any) uint64 {
		wr := v.(operator.WindowResult)
		return hashPair(uint64(wr.End), wr.Key%4)
	}, nil)
	b.g.Connect(partial, final, job.PartitionHash, nil, ResultCodec{})
	b.connectResult(final, sink)
	return b.g
}

// hashPair mixes two words into a key.
func hashPair(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b
	return bits.RotateLeft64(x, 31) * 0xBF58476D1CE4E5B9
}

// Q6: average selling price per seller, over the seller's last 10 closed
// auctions.
func (b *builder) q6() *job.Graph {
	src := b.source()
	close := b.closer("q6-close")
	last10 := b.g.AddVertex("q6-avg", b.cfg.Parallelism, nil, operator.NewProcess("last10", func(ctx operator.Context, _ int, e types.Element) error {
		st := ctx.State()
		prices, _ := st.Get(e.Key).([]int64)
		prices = append(prices, e.Value.(Result).B)
		if len(prices) > 10 {
			prices = prices[len(prices)-10:]
		}
		st.Put(e.Key, prices)
		var sum int64
		for _, p := range prices {
			sum += p
		}
		ctx.Emit(e.Key, e.Timestamp, Result{A: e.Key, C: float64(sum) / float64(len(prices))})
		return nil
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, close, job.PartitionHash, auctionKey, EventCodec{})
	// Re-key winning bids by seller.
	b.g.Connect(close, last10, job.PartitionHash, func(v any) uint64 { return uint64(v.(Result).T) }, ResultCodec{})
	b.connectResult(last10, sink)
	return b.g
}

// Q7: highest bid per tumbling window, again via an aggregation tree.
func (b *builder) q7() *job.Graph {
	src := b.source()
	partialWin := b.g.AddVertex("q7-partial", b.cfg.Parallelism, nil,
		operator.Filter("bids", func(_ operator.Context, e types.Element) (bool, error) {
			return asEvent(e.Value).Kind == KindBid, nil
		}),
		operator.Window("maxprice", operator.WindowSpec{Kind: operator.TumblingEventTime, Size: b.cfg.WindowMs},
			operator.MaxBy(func(v any) float64 { return float64(asEvent(v).Bid.Price) }), true),
	)
	toResult := b.g.AddVertex("q7-project", b.cfg.Parallelism, nil, operator.Map("project", func(_ operator.Context, e types.Element) (any, bool, error) {
		wr := e.Value.(operator.WindowResult)
		if wr.Value == nil {
			return nil, false, nil
		}
		bid := asEvent(wr.Value).Bid
		return Result{A: uint64(wr.End), B: bid.Price, T: int64(bid.Bidder)}, true, nil
	}))
	final := b.windowMax("q7-final", b.cfg.Parallelism)
	sink := b.sinkVertex()
	// Partial max over bidder groups to spread the skew.
	b.g.Connect(src, partialWin, job.PartitionHash, func(v any) uint64 { return bidBidderKey(v) % 16 }, EventCodec{})
	b.g.Connect(partialWin, toResult, job.PartitionForward, nil, nil)
	b.connectResult(toResult, final)
	b.connectResult(final, sink)
	return b.g
}

// Q8: monitor new users — persons who created auctions in the same
// tumbling window (windowed join).
func (b *builder) q8() *job.Graph {
	src := b.source()
	people := b.g.AddVertex("q8-people", b.cfg.Parallelism, nil, operator.Map("people", func(_ operator.Context, e types.Element) (any, bool, error) {
		ev := asEvent(e.Value)
		if ev.Kind != KindPerson {
			return nil, false, nil
		}
		return Result{A: ev.Person.ID, S: ev.Person.Name}, true, nil
	}))
	sellers := b.g.AddVertex("q8-sellers", b.cfg.Parallelism, nil, operator.Map("sellers", func(_ operator.Context, e types.Element) (any, bool, error) {
		ev := asEvent(e.Value)
		if ev.Kind != KindAuction {
			return nil, false, nil
		}
		return Result{A: ev.Auction.Seller, B: int64(ev.Auction.ID)}, true, nil
	}))
	joinV := b.g.AddVertex("q8-join", b.cfg.Parallelism, nil, operator.WindowJoin("wjoin", b.cfg.WindowMs, func(l, r any) any {
		return Result{A: l.(Result).A, B: r.(Result).B, S: l.(Result).S}
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, people, job.PartitionForward, nil, EventCodec{})
	b.g.Connect(src, sellers, job.PartitionForward, nil, EventCodec{})
	b.connectResult(people, joinV)
	b.connectResult(sellers, joinV)
	b.connectResult(joinV, sink)
	return b.g
}

// Q9: winning bids — the highest bid at or above the reserve for each
// closed auction (the relational core reused by Q4/Q6, surfaced as its
// own output stream).
func (b *builder) q9() *job.Graph {
	src := b.source()
	close := b.closer("q9-close")
	project := b.g.AddVertex("q9-project", b.cfg.Parallelism, nil, operator.Map("project", func(_ operator.Context, e types.Element) (any, bool, error) {
		r := e.Value.(Result)
		// closer emits Result{A: category, B: price, T: seller}; re-key
		// the winning bid by auction (the record key at the closer).
		return Result{A: e.Key, B: r.B, T: r.T}, true, nil
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, close, job.PartitionHash, auctionKey, EventCodec{})
	b.g.Connect(close, project, job.PartitionForward, nil, ResultCodec{})
	b.connectResult(project, sink)
	return b.g
}

// Q11: user sessions — bids per bidder per session window.
func (b *builder) q11() *job.Graph {
	src := b.source()
	sess := b.g.AddVertex("q11-sessions", b.cfg.Parallelism, nil,
		operator.Filter("bids", func(_ operator.Context, e types.Element) (bool, error) {
			return asEvent(e.Value).Kind == KindBid, nil
		}),
		operator.Window("sessions", operator.WindowSpec{Kind: operator.SessionEventTime, Size: b.cfg.SessionGapMs}, operator.Count(), true),
	)
	project := b.g.AddVertex("q11-project", b.cfg.Parallelism, nil, operator.Map("project", func(_ operator.Context, e types.Element) (any, bool, error) {
		wr := e.Value.(operator.WindowResult)
		return Result{A: wr.Key, B: wr.Value.(int64), T: wr.End - wr.Start}, true, nil
	}))
	sink := b.sinkVertex()
	b.g.Connect(src, sess, job.PartitionHash, bidBidderKey, EventCodec{})
	b.g.Connect(sess, project, job.PartitionForward, nil, nil)
	b.connectResult(project, sink)
	return b.g
}

// Q12: processing-time windows — bids per bidder per wall-clock window.
// This query is inherently nondeterministic (the paper's motivating case).
func (b *builder) q12() *job.Graph {
	src := b.source()
	win := b.g.AddVertex("q12-ptwin", b.cfg.Parallelism, nil,
		operator.Filter("bids", func(_ operator.Context, e types.Element) (bool, error) {
			return asEvent(e.Value).Kind == KindBid, nil
		}),
		operator.Window("ptcount", operator.WindowSpec{Kind: operator.TumblingProcessingTime, Size: b.cfg.WindowMs}, operator.Count(), false),
	)
	sink := b.sinkVertex()
	b.g.Connect(src, win, job.PartitionHash, bidBidderKey, EventCodec{})
	b.g.Connect(win, sink, job.PartitionHash, nil, nil)
	return b.g
}

// Q13: bounded side-input join — bids enriched through an external
// key-value service, exercising the HTTP causal service per record.
func (b *builder) q13() *job.Graph {
	src := b.source()
	cardinality := b.cfg.SideURLCardinality
	if cardinality == 0 {
		cardinality = 100
	}
	enrich := b.bidMap("q13-enrich", func(ctx operator.Context, bid *Bid, ts int64) (Result, bool, error) {
		side, err := ctx.Services().HTTPGet(fmt.Sprintf("side/%d", bid.Auction%cardinality))
		if err != nil {
			return Result{}, false, err
		}
		return Result{A: bid.Auction, B: bid.Price, S: string(side)}, true, nil
	})
	sink := b.sinkVertex()
	b.g.Connect(src, enrich, job.PartitionForward, nil, EventCodec{})
	b.connectResult(enrich, sink)
	return b.g
}

// Q14: calculation — per-bid arithmetic plus a wall-clock processing
// timestamp obtained through the Timestamp service.
func (b *builder) q14() *job.Graph {
	src := b.source()
	calc := b.bidMap("q14-calc", func(ctx operator.Context, bid *Bid, ts int64) (Result, bool, error) {
		price := float64(bid.Price) * 0.908
		if price <= 500 {
			return Result{}, false, nil
		}
		now, err := ctx.Services().CurrentTimeMillis()
		if err != nil {
			return Result{}, false, err
		}
		bucket := "expensive"
		if price <= 5000 {
			bucket = "normal"
		}
		// The Beam Q14 "expensive computation": a short checksum loop.
		var check uint64
		for i := uint64(0); i < 16; i++ {
			check = hashPair(check^bid.Auction, bid.Bidder+i)
		}
		return Result{A: bid.Auction, B: int64(check & 0xFFFF), C: price, S: bucket, T: now}, true, nil
	})
	sink := b.sinkVertex()
	b.g.Connect(src, calc, job.PartitionForward, nil, EventCodec{})
	b.connectResult(calc, sink)
	return b.g
}
