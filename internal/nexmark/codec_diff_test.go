package nexmark

// Differential tests for the typed NEXMark codecs: the hand-written
// binary encoding must round-trip every value exactly, agree with the
// gob fallback's semantics (decode(encode(v)) identical under both), and
// reject truncated or trailing bytes. Event generation is seeded, so a
// failure reproduces.

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"clonos/internal/codec"
)

func init() {
	// The gob fallback side of the differential needs the bare shapes
	// registered; the engine itself only gob-registers the Event union.
	gob.Register(Person{})
	gob.Register(Auction{})
	gob.Register(Bid{})
}

func randString(rng *rand.Rand, max int) string {
	n := rng.Intn(max)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(rune('!' + rng.Intn(94)))
	}
	return sb.String()
}

func randPerson(rng *rand.Rand) Person {
	return Person{
		ID: rng.Uint64(), Name: randString(rng, 20), Email: randString(rng, 30),
		City: randString(rng, 15), State: randString(rng, 3),
		DateTime: rng.Int63() - rng.Int63(), Extra: randString(rng, 50),
	}
}

func randAuction(rng *rand.Rand) Auction {
	return Auction{
		ID: rng.Uint64(), ItemName: randString(rng, 20), Description: randString(rng, 80),
		InitialBid: rng.Int63(), Reserve: -rng.Int63(), DateTime: rng.Int63(),
		Expires: rng.Int63(), Seller: rng.Uint64(), Category: rng.Uint64() % 1000,
		Extra: randString(rng, 50),
	}
}

func randBid(rng *rand.Rand) Bid {
	return Bid{
		Auction: rng.Uint64(), Bidder: rng.Uint64(), Price: rng.Int63(),
		DateTime: rng.Int63() - rng.Int63(), Extra: randString(rng, 50),
	}
}

func randEvent(rng *rand.Rand) Event {
	switch rng.Intn(3) {
	case 0:
		p := randPerson(rng)
		return Event{Kind: KindPerson, Person: &p}
	case 1:
		a := randAuction(rng)
		return Event{Kind: KindAuction, Auction: &a}
	default:
		b := randBid(rng)
		return Event{Kind: KindBid, Bid: &b}
	}
}

// TestTypedMatchesGobSemantics decodes each value through the typed
// codec and through the gob fallback and requires identical results —
// the typed tier changes the wire format, never the value semantics.
func TestTypedMatchesGobSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gobC := codec.GobFallback()
	for i := 0; i < 500; i++ {
		var v any
		switch i % 4 {
		case 0:
			v = randEvent(rng)
		case 1:
			v = randPerson(rng)
		case 2:
			v = randAuction(rng)
		default:
			v = randBid(rng)
		}
		typedC, ok := codec.TypedFor(v)
		if !ok {
			t.Fatalf("no typed codec for %T", v)
		}
		tEnc, err := typedC.EncodeAppend(nil, v)
		if err != nil {
			t.Fatalf("typed encode %#v: %v", v, err)
		}
		tDec, err := typedC.Decode(tEnc)
		if err != nil {
			t.Fatalf("typed decode %#v: %v", v, err)
		}
		gEnc, err := gobC.EncodeAppend(nil, v)
		if err != nil {
			t.Fatalf("gob encode %#v: %v", v, err)
		}
		gDec, err := gobC.Decode(gEnc)
		if err != nil {
			t.Fatalf("gob decode %#v: %v", v, err)
		}
		if !reflect.DeepEqual(tDec, v) {
			t.Fatalf("typed round trip diverged:\n  in:  %#v\n  out: %#v", v, tDec)
		}
		if !reflect.DeepEqual(tDec, gDec) {
			t.Fatalf("typed and gob decode disagree:\n  typed: %#v\n  gob:   %#v", tDec, gDec)
		}
	}
}

// TestEventCodecRejectsMutations pins strictness: every truncation must
// fail, and a trailing byte must fail with ErrTrailingBytes.
func TestEventCodecRejectsMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := EventCodec{}
	for i := 0; i < 100; i++ {
		e := randEvent(rng)
		enc, err := c.EncodeAppend(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := c.Decode(enc[:cut]); err == nil {
				// A truncated Extra (last field, length-prefixed) can only
				// fail; any success is a framing hole.
				t.Fatalf("truncated encoding (len %d of %d) decoded without error", cut, len(enc))
			}
		}
		if _, err := c.Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, codec.ErrTrailingBytes) {
			t.Fatalf("trailing byte not rejected: %v", err)
		}
	}
}

// TestEventEncodeDeterministic pins re-encoding determinism for values
// the engine itself produced: encode → decode → encode must be
// byte-identical (guided replay re-encodes logged values and compares).
func TestEventEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	c := EventCodec{}
	for i := 0; i < 200; i++ {
		enc, err := c.EncodeAppend(nil, randEvent(rng))
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		re, err := c.EncodeAppend(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(enc, re) {
			t.Fatalf("encode->decode->encode not byte-identical:\n  in:  %x\n  out: %x", enc, re)
		}
	}
}

// FuzzEventCodecRoundTrip feeds arbitrary bytes to Decode, which must
// never panic; where they decode, the value must survive a semantic
// re-encode round trip. (Byte identity is not required here: Uvarint
// tolerates non-minimal varints, so foreign bytes can decode to a value
// whose canonical encoding is shorter.)
func FuzzEventCodecRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(44))
	c := EventCodec{}
	for i := 0; i < 8; i++ {
		enc, err := c.EncodeAppend(nil, randEvent(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := c.Decode(b)
		if err != nil {
			return
		}
		re, err := c.EncodeAppend(nil, v)
		if err != nil {
			t.Fatalf("re-encode of decoded value failed: %v", err)
		}
		v2, err := c.Decode(re)
		if err != nil {
			t.Fatalf("decode of re-encoded value failed: %v", err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("semantic round trip diverged:\n  first:  %#v\n  second: %#v", v, v2)
		}
	})
}
