// Package nexmark implements the NEXMark benchmark (Tucker et al.) used in
// the paper's evaluation: the event model (persons, auctions, bids), a
// deterministic rate-controlled generator, a compact binary codec, and the
// queries Q1–Q8 and Q11–Q14 (Q10 is excluded by the paper itself) built as
// dataflow graphs on the engine.
package nexmark

import (
	"encoding/binary"
	"fmt"

	"clonos/internal/codec"
	"clonos/internal/statestore"
)

// EventKind discriminates the three NEXMark event types.
type EventKind uint8

const (
	// KindPerson is a new-person event.
	KindPerson EventKind = iota
	// KindAuction is a new-auction event.
	KindAuction
	// KindBid is a bid event.
	KindBid
)

// Person is a new marketplace user.
type Person struct {
	ID    uint64
	Name  string
	Email string
	City  string
	State string
	// DateTime is the event time in Unix ms.
	DateTime int64
	// Extra pads the record to realistic NEXMark sizes.
	Extra string
}

// Auction is a newly listed item.
type Auction struct {
	ID          uint64
	ItemName    string
	Description string
	InitialBid  int64
	Reserve     int64
	DateTime    int64
	// Expires is the auction close time in Unix ms.
	Expires  int64
	Seller   uint64
	Category uint64
	Extra    string
}

// Bid is one bid on an auction.
type Bid struct {
	Auction  uint64
	Bidder   uint64
	Price    int64
	DateTime int64
	Extra    string
}

// Event is the union flowing on the NEXMark stream.
type Event struct {
	Kind    EventKind
	Person  *Person
	Auction *Auction
	Bid     *Bid
}

// Time returns the event's own timestamp.
func (e Event) Time() int64 {
	switch e.Kind {
	case KindPerson:
		return e.Person.DateTime
	case KindAuction:
		return e.Auction.DateTime
	default:
		return e.Bid.DateTime
	}
}

func init() {
	// Event is stored in interface-typed state; gob registration remains
	// for legacy snapshot images and the reflective fallback.
	statestore.Register(Event{})
	// The typed tier: every NEXMark shape that crosses an edge or lands
	// in keyed state encodes through its hand-written codec — snapshots,
	// fingerprints, and Auto edges never pay the gob reflection walk.
	codec.RegisterType(Event{}, EventCodec{})
	codec.RegisterType(Person{}, PersonCodec{})
	codec.RegisterType(Auction{}, AuctionCodec{})
	codec.RegisterType(Bid{}, BidCodec{})
}

// EventCodec is a hand-written binary codec for Event values, far cheaper
// than the reflective gob fallback on the benchmark's hot path.
type EventCodec struct{}

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func getString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("nexmark: truncated string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}

// encodePerson appends p's field encoding (no kind byte).
func encodePerson(dst []byte, p *Person) []byte {
	dst = binary.AppendUvarint(dst, p.ID)
	dst = putString(dst, p.Name)
	dst = putString(dst, p.Email)
	dst = putString(dst, p.City)
	dst = putString(dst, p.State)
	dst = binary.AppendVarint(dst, p.DateTime)
	return putString(dst, p.Extra)
}

// encodeAuction appends a's field encoding (no kind byte).
func encodeAuction(dst []byte, a *Auction) []byte {
	dst = binary.AppendUvarint(dst, a.ID)
	dst = putString(dst, a.ItemName)
	dst = putString(dst, a.Description)
	dst = binary.AppendVarint(dst, a.InitialBid)
	dst = binary.AppendVarint(dst, a.Reserve)
	dst = binary.AppendVarint(dst, a.DateTime)
	dst = binary.AppendVarint(dst, a.Expires)
	dst = binary.AppendUvarint(dst, a.Seller)
	dst = binary.AppendUvarint(dst, a.Category)
	return putString(dst, a.Extra)
}

// encodeBid appends b's field encoding (no kind byte).
func encodeBid(dst []byte, b *Bid) []byte {
	dst = binary.AppendUvarint(dst, b.Auction)
	dst = binary.AppendUvarint(dst, b.Bidder)
	dst = binary.AppendVarint(dst, b.Price)
	dst = binary.AppendVarint(dst, b.DateTime)
	return putString(dst, b.Extra)
}

// EncodeAppend implements codec.Codec.
func (EventCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	e, ok := v.(Event)
	if !ok {
		return dst, fmt.Errorf("nexmark: EventCodec got %T", v)
	}
	dst = append(dst, byte(e.Kind))
	switch e.Kind {
	case KindPerson:
		return encodePerson(dst, e.Person), nil
	case KindAuction:
		return encodeAuction(dst, e.Auction), nil
	case KindBid:
		return encodeBid(dst, e.Bid), nil
	default:
		return dst, fmt.Errorf("nexmark: unknown event kind %d", e.Kind)
	}
}

// cursor walks a byte slice during decode, latching the first error.
type cursor struct {
	b   []byte
	i   int
	err error
}

func (c *cursor) uv() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.i:])
	if n <= 0 {
		c.err = fmt.Errorf("nexmark: truncated event")
		return 0
	}
	c.i += n
	return v
}

func (c *cursor) sv() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.i:])
	if n <= 0 {
		c.err = fmt.Errorf("nexmark: truncated event")
		return 0
	}
	c.i += n
	return v
}

func (c *cursor) str() string {
	if c.err != nil {
		return ""
	}
	s, n, err := getString(c.b[c.i:])
	if err != nil {
		c.err = err
		return ""
	}
	c.i += n
	return s
}

func decodePerson(c *cursor) Person {
	return Person{
		ID: c.uv(), Name: c.str(), Email: c.str(), City: c.str(),
		State: c.str(), DateTime: c.sv(), Extra: c.str(),
	}
}

func decodeAuction(c *cursor) Auction {
	return Auction{
		ID: c.uv(), ItemName: c.str(), Description: c.str(),
		InitialBid: c.sv(), Reserve: c.sv(), DateTime: c.sv(),
		Expires: c.sv(), Seller: c.uv(), Category: c.uv(), Extra: c.str(),
	}
}

func decodeBid(c *cursor) Bid {
	return Bid{
		Auction: c.uv(), Bidder: c.uv(), Price: c.sv(),
		DateTime: c.sv(), Extra: c.str(),
	}
}

// Decode implements codec.Codec.
func (EventCodec) Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("nexmark: empty event")
	}
	c := &cursor{b: b, i: 1}
	var e Event
	switch EventKind(b[0]) {
	case KindPerson:
		p := decodePerson(c)
		e = Event{Kind: KindPerson, Person: &p}
	case KindAuction:
		a := decodeAuction(c)
		e = Event{Kind: KindAuction, Auction: &a}
	case KindBid:
		bid := decodeBid(c)
		e = Event{Kind: KindBid, Bid: &bid}
	default:
		return nil, fmt.Errorf("nexmark: unknown event kind %d", b[0])
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return e, nil
}

// PersonCodec is the binary codec for bare Person values (the typed
// snapshot tier; events on edges use EventCodec).
type PersonCodec struct{}

// EncodeAppend implements codec.Codec.
func (PersonCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	p, ok := v.(Person)
	if !ok {
		return dst, fmt.Errorf("nexmark: PersonCodec got %T", v)
	}
	return encodePerson(dst, &p), nil
}

// Decode implements codec.Codec.
func (PersonCodec) Decode(b []byte) (any, error) {
	c := &cursor{b: b}
	p := decodePerson(c)
	if c.err != nil {
		return nil, c.err
	}
	if c.i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return p, nil
}

// AuctionCodec is the binary codec for bare Auction values.
type AuctionCodec struct{}

// EncodeAppend implements codec.Codec.
func (AuctionCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a, ok := v.(Auction)
	if !ok {
		return dst, fmt.Errorf("nexmark: AuctionCodec got %T", v)
	}
	return encodeAuction(dst, &a), nil
}

// Decode implements codec.Codec.
func (AuctionCodec) Decode(b []byte) (any, error) {
	c := &cursor{b: b}
	a := decodeAuction(c)
	if c.err != nil {
		return nil, c.err
	}
	if c.i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return a, nil
}

// BidCodec is the binary codec for bare Bid values.
type BidCodec struct{}

// EncodeAppend implements codec.Codec.
func (BidCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	bid, ok := v.(Bid)
	if !ok {
		return dst, fmt.Errorf("nexmark: BidCodec got %T", v)
	}
	return encodeBid(dst, &bid), nil
}

// Decode implements codec.Codec.
func (BidCodec) Decode(b []byte) (any, error) {
	c := &cursor{b: b}
	bid := decodeBid(c)
	if c.err != nil {
		return nil, c.err
	}
	if c.i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return bid, nil
}
