// Package nexmark implements the NEXMark benchmark (Tucker et al.) used in
// the paper's evaluation: the event model (persons, auctions, bids), a
// deterministic rate-controlled generator, a compact binary codec, and the
// queries Q1–Q8 and Q11–Q14 (Q10 is excluded by the paper itself) built as
// dataflow graphs on the engine.
package nexmark

import (
	"encoding/binary"
	"fmt"

	"clonos/internal/statestore"
)

// EventKind discriminates the three NEXMark event types.
type EventKind uint8

const (
	// KindPerson is a new-person event.
	KindPerson EventKind = iota
	// KindAuction is a new-auction event.
	KindAuction
	// KindBid is a bid event.
	KindBid
)

// Person is a new marketplace user.
type Person struct {
	ID    uint64
	Name  string
	Email string
	City  string
	State string
	// DateTime is the event time in Unix ms.
	DateTime int64
	// Extra pads the record to realistic NEXMark sizes.
	Extra string
}

// Auction is a newly listed item.
type Auction struct {
	ID          uint64
	ItemName    string
	Description string
	InitialBid  int64
	Reserve     int64
	DateTime    int64
	// Expires is the auction close time in Unix ms.
	Expires  int64
	Seller   uint64
	Category uint64
	Extra    string
}

// Bid is one bid on an auction.
type Bid struct {
	Auction  uint64
	Bidder   uint64
	Price    int64
	DateTime int64
	Extra    string
}

// Event is the union flowing on the NEXMark stream.
type Event struct {
	Kind    EventKind
	Person  *Person
	Auction *Auction
	Bid     *Bid
}

// Time returns the event's own timestamp.
func (e Event) Time() int64 {
	switch e.Kind {
	case KindPerson:
		return e.Person.DateTime
	case KindAuction:
		return e.Auction.DateTime
	default:
		return e.Bid.DateTime
	}
}

func init() {
	// Event is stored in interface-typed state and on gob-encoded edges;
	// its pointer fields encode transparently without registration.
	statestore.Register(Event{})
}

// EventCodec is a hand-written binary codec for Event values, far cheaper
// than the reflective gob fallback on the benchmark's hot path.
type EventCodec struct{}

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func getString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", 0, fmt.Errorf("nexmark: truncated string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}

// EncodeAppend implements codec.Codec.
func (EventCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	e, ok := v.(Event)
	if !ok {
		return dst, fmt.Errorf("nexmark: EventCodec got %T", v)
	}
	dst = append(dst, byte(e.Kind))
	switch e.Kind {
	case KindPerson:
		p := e.Person
		dst = binary.AppendUvarint(dst, p.ID)
		dst = putString(dst, p.Name)
		dst = putString(dst, p.Email)
		dst = putString(dst, p.City)
		dst = putString(dst, p.State)
		dst = binary.AppendVarint(dst, p.DateTime)
		dst = putString(dst, p.Extra)
	case KindAuction:
		a := e.Auction
		dst = binary.AppendUvarint(dst, a.ID)
		dst = putString(dst, a.ItemName)
		dst = putString(dst, a.Description)
		dst = binary.AppendVarint(dst, a.InitialBid)
		dst = binary.AppendVarint(dst, a.Reserve)
		dst = binary.AppendVarint(dst, a.DateTime)
		dst = binary.AppendVarint(dst, a.Expires)
		dst = binary.AppendUvarint(dst, a.Seller)
		dst = binary.AppendUvarint(dst, a.Category)
		dst = putString(dst, a.Extra)
	case KindBid:
		b := e.Bid
		dst = binary.AppendUvarint(dst, b.Auction)
		dst = binary.AppendUvarint(dst, b.Bidder)
		dst = binary.AppendVarint(dst, b.Price)
		dst = binary.AppendVarint(dst, b.DateTime)
		dst = putString(dst, b.Extra)
	default:
		return dst, fmt.Errorf("nexmark: unknown event kind %d", e.Kind)
	}
	return dst, nil
}

// Decode implements codec.Codec.
func (EventCodec) Decode(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("nexmark: empty event")
	}
	kind := EventKind(b[0])
	i := 1
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("nexmark: truncated event")
		}
		i += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("nexmark: truncated event")
		}
		i += n
		return v, nil
	}
	str := func() (string, error) {
		s, n, err := getString(b[i:])
		if err != nil {
			return "", err
		}
		i += n
		return s, nil
	}
	var err error
	switch kind {
	case KindPerson:
		p := &Person{}
		if p.ID, err = uv(); err != nil {
			return nil, err
		}
		if p.Name, err = str(); err != nil {
			return nil, err
		}
		if p.Email, err = str(); err != nil {
			return nil, err
		}
		if p.City, err = str(); err != nil {
			return nil, err
		}
		if p.State, err = str(); err != nil {
			return nil, err
		}
		if p.DateTime, err = sv(); err != nil {
			return nil, err
		}
		if p.Extra, err = str(); err != nil {
			return nil, err
		}
		return Event{Kind: KindPerson, Person: p}, nil
	case KindAuction:
		a := &Auction{}
		if a.ID, err = uv(); err != nil {
			return nil, err
		}
		if a.ItemName, err = str(); err != nil {
			return nil, err
		}
		if a.Description, err = str(); err != nil {
			return nil, err
		}
		if a.InitialBid, err = sv(); err != nil {
			return nil, err
		}
		if a.Reserve, err = sv(); err != nil {
			return nil, err
		}
		if a.DateTime, err = sv(); err != nil {
			return nil, err
		}
		if a.Expires, err = sv(); err != nil {
			return nil, err
		}
		if a.Seller, err = uv(); err != nil {
			return nil, err
		}
		if a.Category, err = uv(); err != nil {
			return nil, err
		}
		if a.Extra, err = str(); err != nil {
			return nil, err
		}
		return Event{Kind: KindAuction, Auction: a}, nil
	case KindBid:
		bid := &Bid{}
		if bid.Auction, err = uv(); err != nil {
			return nil, err
		}
		if bid.Bidder, err = uv(); err != nil {
			return nil, err
		}
		if bid.Price, err = sv(); err != nil {
			return nil, err
		}
		if bid.DateTime, err = sv(); err != nil {
			return nil, err
		}
		if bid.Extra, err = str(); err != nil {
			return nil, err
		}
		return Event{Kind: KindBid, Bid: bid}, nil
	default:
		return nil, fmt.Errorf("nexmark: unknown event kind %d", b[0])
	}
}
