package nexmark

import (
	"fmt"
	"math/rand"
	"time"

	"clonos/internal/kafkasim"
)

// GeneratorConfig mirrors the NEXMark generator parameters. Event i is a
// pure function of (Seed, i, FirstEventTs), so regenerating a prefix is
// deterministic regardless of rate or batching.
type GeneratorConfig struct {
	Seed int64
	// Proportions out of their sum: defaults 1:3:46 (the NEXMark mix).
	PersonProportion, AuctionProportion, BidProportion int
	// HotAuctionRatio is the share (out of 100) of bids targeting the
	// most recent auctions (skew); HotBidderRatio likewise for bidders.
	HotAuctionRatio, HotBidderRatio int
	// ActiveAuctions is the window of recent auctions cold bids pick from.
	ActiveAuctions int
	// ActivePersons is the window of recent persons used as bidders and
	// sellers.
	ActivePersons int
	// NumCategories is the auction category cardinality.
	NumCategories uint64
	// AuctionDurationMs is added to an auction's DateTime for Expires.
	AuctionDurationMs int64
	// ExtraBytes pads every event with that many bytes of filler, as
	// the NEXMark generator's "extra" field does to reach realistic
	// record sizes (0 disables padding).
	ExtraBytes int
	// FirstEventTs pins event time of event 0; 0 means wall clock at
	// generator start (ingestion-style timestamps, as in the paper's
	// latency measurement).
	FirstEventTs int64
	// InterEventDelayUs spaces event times; 0 derives it from the rate.
	InterEventDelayUs int64
}

// DefaultGeneratorConfig returns the standard NEXMark mix.
func DefaultGeneratorConfig(seed int64) GeneratorConfig {
	return GeneratorConfig{
		Seed:              seed,
		PersonProportion:  1,
		AuctionProportion: 3,
		BidProportion:     46,
		HotAuctionRatio:   85,
		HotBidderRatio:    80,
		ActiveAuctions:    200,
		ActivePersons:     500,
		NumCategories:     5,
		AuctionDurationMs: 2000,
	}
}

var (
	firstNames = []string{"Peter", "Paul", "Luke", "John", "Saul", "Vicky", "Kate", "Julie", "Sarah", "Deiter", "Walter"}
	lastNames  = []string{"Shultz", "Abrams", "Spencer", "White", "Bartels", "Walton", "Smith", "Jones", "Noris"}
	cities     = []string{"Phoenix", "Los Angeles", "San Francisco", "Boise", "Portland", "Bend", "Redmond", "Seattle", "Kent", "Cheyenne"}
	states     = []string{"AZ", "CA", "ID", "OR", "WA", "WY"}
	items      = []string{"chair", "lamp", "couch", "desk", "bike", "skis", "guitar", "amp", "vase", "rug"}
)

// counts of each entity among the first i events.
func countsBefore(cfg GeneratorConfig, i int64) (persons, auctions, bids int64) {
	total := int64(cfg.PersonProportion + cfg.AuctionProportion + cfg.BidProportion)
	cycle := i / total
	rem := int(i % total)
	persons = cycle * int64(cfg.PersonProportion)
	auctions = cycle * int64(cfg.AuctionProportion)
	bids = cycle * int64(cfg.BidProportion)
	if rem > 0 {
		p := min64(int64(rem), int64(cfg.PersonProportion))
		persons += p
		rem -= int(p)
	}
	if rem > 0 {
		a := min64(int64(rem), int64(cfg.AuctionProportion))
		auctions += a
		rem -= int(a)
	}
	bids += int64(rem)
	return persons, auctions, bids
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// kindOf returns the event kind of sequence number i.
func kindOf(cfg GeneratorConfig, i int64) EventKind {
	total := int64(cfg.PersonProportion + cfg.AuctionProportion + cfg.BidProportion)
	rem := i % total
	switch {
	case rem < int64(cfg.PersonProportion):
		return KindPerson
	case rem < int64(cfg.PersonProportion+cfg.AuctionProportion):
		return KindAuction
	default:
		return KindBid
	}
}

// extraFor builds the deterministic padding of one event.
func extraFor(cfg GeneratorConfig, rng *rand.Rand) string {
	if cfg.ExtraBytes <= 0 {
		return ""
	}
	b := make([]byte, cfg.ExtraBytes)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// GenEvent deterministically produces event i with the given event time.
func GenEvent(cfg GeneratorConfig, i int64, ts int64) Event {
	rng := rand.New(rand.NewSource(cfg.Seed ^ (i * 0x5851F42D4C957F2D)))
	persons, auctions, _ := countsBefore(cfg, i)
	switch kindOf(cfg, i) {
	case KindPerson:
		id := uint64(persons) // this event creates person #persons
		return Event{Kind: KindPerson, Person: &Person{
			ID:       id,
			Name:     firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))],
			Email:    fmt.Sprintf("p%d@example.com", id),
			City:     cities[rng.Intn(len(cities))],
			State:    states[rng.Intn(len(states))],
			DateTime: ts,
			Extra:    extraFor(cfg, rng),
		}}
	case KindAuction:
		id := uint64(auctions)
		seller := pickRecent(rng, persons, int64(cfg.ActivePersons), 100)
		initial := 1 + rng.Int63n(1000)
		return Event{Kind: KindAuction, Auction: &Auction{
			ID:          id,
			ItemName:    items[rng.Intn(len(items))],
			Description: fmt.Sprintf("auction %d", id),
			InitialBid:  initial,
			Reserve:     initial + rng.Int63n(1000),
			DateTime:    ts,
			Expires:     ts + cfg.AuctionDurationMs,
			Seller:      seller,
			Category:    uint64(rng.Int63n(int64(cfg.NumCategories))) + 10,
			Extra:       extraFor(cfg, rng),
		}}
	default:
		auction := pickRecent(rng, auctions, int64(cfg.ActiveAuctions), cfg.HotAuctionRatio)
		bidder := pickRecent(rng, persons, int64(cfg.ActivePersons), cfg.HotBidderRatio)
		return Event{Kind: KindBid, Bid: &Bid{
			Auction:  auction,
			Bidder:   bidder,
			Price:    1 + rng.Int63n(10_000),
			DateTime: ts,
			Extra:    extraFor(cfg, rng),
		}}
	}
}

// pickRecent selects an entity ID: with hotRatio% probability one of the
// 16 newest, otherwise uniform over the last `window` created. count is
// the number created so far (>=0 works even before any exist: id 0).
func pickRecent(rng *rand.Rand, count, window int64, hotRatio int) uint64 {
	if count <= 0 {
		return 0
	}
	if int(rng.Int63n(100)) < hotRatio {
		hot := min64(16, count)
		return uint64(count - 1 - rng.Int63n(hot))
	}
	w := min64(window, count)
	return uint64(count - 1 - rng.Int63n(w))
}

// Driver feeds NEXMark events into a kafkasim topic at a target rate,
// stamping event times with the wall clock (ingestion-time style, so sink
// latency is end-to-end).
type Driver struct {
	gen *kafkasim.Generator
}

// NewDriver builds a driver producing `limit` events (limit <= 0 means
// unbounded) at rate events/second into topic.
func NewDriver(topic *kafkasim.Topic, cfg GeneratorConfig, rate int, limit int64) *Driver {
	g := kafkasim.NewGenerator(topic, rate, func(i int64) (kafkasim.Record, bool) {
		if limit > 0 && i >= limit {
			return kafkasim.Record{}, false
		}
		ts := cfg.FirstEventTs
		if ts == 0 {
			ts = time.Now().UnixMilli()
		} else if cfg.InterEventDelayUs > 0 {
			ts += i * cfg.InterEventDelayUs / 1000
		}
		ev := GenEvent(cfg, i, ts)
		return kafkasim.Record{Key: uint64(i), Ts: ts, Value: ev}, true
	})
	return &Driver{gen: g}
}

// Start launches the driver.
func (d *Driver) Start() { d.gen.Start() }

// Stop halts the driver.
func (d *Driver) Stop() { d.gen.Stop() }

// GenerateAll synchronously fills a topic with n events using a fixed
// event-time progression (for finite, fully deterministic tests).
func GenerateAll(topic *kafkasim.Topic, cfg GeneratorConfig, n int64, baseTs int64, stepMs int64) {
	for i := int64(0); i < n; i++ {
		ts := baseTs + i*stepMs
		topic.Append(kafkasim.Record{Key: uint64(i), Ts: ts, Value: GenEvent(cfg, i, ts)})
	}
	topic.Close()
}
