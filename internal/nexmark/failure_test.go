package nexmark

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/services"
	"clonos/internal/types"
)

// runQueryMaybeFail executes a query over a fully deterministic event set,
// optionally injecting a failure mid-run, and returns the multiset of
// output records (canonically encoded).
//
// Output-identity comparisons require parallelism 1: with parallel
// sources, the interleaving of records and watermarks across channels is
// honestly nondeterministic between *any* two runs (late records may be
// dropped or fire split windows), failure or not.
func runQueryMaybeFail(t *testing.T, name string, n int64, failTask *types.TaskID) []string {
	t.Helper()
	topic := kafkasim.NewTopic("nexmark", 2)
	sink := kafkasim.NewSinkTopic(true)
	qc := DefaultQueryConfig(1)
	g, err := Build(name, topic, sink, qc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := job.DefaultConfig()
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	cfg.World = services.NewExternalWorld()
	r, err := job.NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Trickle the deterministic events so the failure lands mid-stream.
	gen := kafkasim.NewGenerator(topic, 20000, func(i int64) (kafkasim.Record, bool) {
		if i >= n {
			return kafkasim.Record{}, false
		}
		ts := int64(1_000_000) + i
		return kafkasim.Record{Key: uint64(i), Ts: ts, Value: GenEvent(DefaultGeneratorConfig(5), i, ts)}, true
	})
	gen.Start()
	defer gen.Stop()

	if failTask != nil {
		if !r.WaitForCheckpoint(1, 8*time.Second) {
			t.Fatalf("no checkpoint: %v", r.Errors())
		}
		if err := r.InjectFailure(*failTask); err != nil {
			t.Fatal(err)
		}
	}
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("%s did not finish: %v", name, r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("%s task error: %v", name, e)
	}
	var out []string
	for _, rec := range sink.All() {
		res := rec.Value.(Result)
		out = append(out, fmt.Sprintf("%d|%d|%.3f|%s|key=%d", res.A, res.B, res.C, res.S, rec.Key))
	}
	sort.Strings(out)
	return out
}

// assertSameOutputs compares failure-free and failure runs of a query
// whose outputs are a deterministic function of the (deterministic)
// input: exactly-once recovery must make them identical.
func assertSameOutputs(t *testing.T, query string, n int64, failVertex int32) {
	t.Helper()
	clean := runQueryMaybeFail(t, query, n, nil)
	fail := types.TaskID{Vertex: types.VertexID(failVertex), Subtask: 0}
	failed := runQueryMaybeFail(t, query, n, &fail)
	if len(clean) != len(failed) {
		t.Fatalf("%s: %d outputs clean vs %d with failure", query, len(clean), len(failed))
	}
	for i := range clean {
		if clean[i] != failed[i] {
			t.Fatalf("%s: output %d differs:\n  clean:  %s\n  failed: %s", query, i, clean[i], failed[i])
		}
	}
	if len(clean) == 0 {
		t.Fatalf("%s produced no output", query)
	}
}

// TestQ4OutputIdenticalUnderFailure: with a single source (see
// runQueryMaybeFail), Q4's stream — including its running average and the
// event-time late-bid drops — is fully deterministic, so the output with
// a mid-run failure must be byte-identical to a failure-free run.
func TestQ4OutputIdenticalUnderFailure(t *testing.T) {
	assertSameOutputs(t, "Q4", 20000, 1) // fail the auction-close operator
}

func TestQ7OutputIdenticalUnderFailure(t *testing.T) {
	assertSameOutputs(t, "Q7", 20000, 1) // fail the partial window stage
}

func TestQ8OutputIdenticalUnderFailure(t *testing.T) {
	assertSameOutputs(t, "Q8", 20000, 3) // fail the windowed join
}

func TestQ11OutputIdenticalUnderFailure(t *testing.T) {
	assertSameOutputs(t, "Q11", 15000, 1) // fail the session-window stage
}

func TestQ3OutputIdenticalUnderFailure(t *testing.T) {
	assertSameOutputs(t, "Q3", 20000, 3) // fail the incremental join
}

// TestQ13ExternalCallsExactlyOnceUnderFailure checks the side-input join:
// outputs depend on the external world (not comparable across runs), but
// the number of external calls must equal the number of bids — recovery
// must never re-issue a call.
func TestQ13ExternalCallsExactlyOnceUnderFailure(t *testing.T) {
	const n = 10000
	topic := kafkasim.NewTopic("nexmark", 2)
	sink := kafkasim.NewSinkTopic(true)
	world := services.NewExternalWorld()
	g, err := Build("Q13", topic, sink, DefaultQueryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := job.DefaultConfig()
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	cfg.World = world
	r, err := job.NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 15000, func(i int64) (kafkasim.Record, bool) {
		if i >= n {
			return kafkasim.Record{}, false
		}
		ts := int64(1_000_000) + i
		return kafkasim.Record{Key: uint64(i), Ts: ts, Value: GenEvent(DefaultGeneratorConfig(5), i, ts)}, true
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 8*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}

	var bids uint64
	cfgGen := DefaultGeneratorConfig(5)
	for i := int64(0); i < n; i++ {
		if kindOf(cfgGen, i) == KindBid {
			bids++
		}
	}
	if uint64(sink.Len()) != bids {
		t.Fatalf("outputs = %d, want %d", sink.Len(), bids)
	}
	// Calls whose determinants were logged are replayed, never re-issued.
	// Calls made by the failed task after its last buffer dispatch are a
	// legitimate exception: their determinants died unshared, no process
	// depends on them (§5.3 "recover without determinant"), so recovery
	// re-executes them. That tail is bounded by one flush interval of
	// records.
	if world.Calls() < bids {
		t.Fatalf("external calls = %d < %d bids", world.Calls(), bids)
	}
	if extra := world.Calls() - bids; extra > 1000 {
		t.Fatalf("recovery re-issued %d calls; replay is not consuming logged responses", extra)
	}
}
