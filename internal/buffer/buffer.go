// Package buffer implements fixed-size network buffers and the buffer pools
// that back output channels and in-flight record logs.
//
// The pool mechanics mirror Clonos §6.1: each output channel is served by a
// small pool (keeping backpressure reactive), while the in-flight log owns a
// second, larger pool. When the network layer dispatches a buffer downstream
// it hands the full buffer to the in-flight log, and the log donates an
// empty buffer back to the channel's pool — no copy, constant channel-pool
// size, and the log pool shrinks as the log grows.
package buffer

import (
	"sync"
	"sync/atomic"
	"time"

	"clonos/internal/obs"
	"clonos/internal/types"
)

// DefaultSize is the default capacity of a network buffer in bytes.
// Flink's default is 32 KiB; the paper logs whole network buffers.
const DefaultSize = 32 * 1024

// Buffer is one network buffer: a bounded byte slice of serialized stream
// elements plus the metadata stamped on it when it is dispatched.
//
// Buffers are reference counted so the zero-copy dispatch path can alias
// one backing array from several holders at once (the in-flight log and
// the wire message share the bytes). The rules:
//
//   - Get/Take hand out a buffer holding one reference (the caller's).
//   - Retain adds a reference; it may only be called while holding one.
//   - Data is immutable from dispatch until the refcount drains to zero:
//     holders read, nobody writes. Reset (and the rewrite by the next
//     writer) happens only after recycling.
//   - The structural owner recycles with ReleaseTo/DonateTo, naming the
//     pool the buffer returns to; plain Release just drops a reference.
//     Whoever drops the last reference performs the recycle.
type Buffer struct {
	// Data holds the serialized element stream. len(Data) is the bytes
	// written so far; cap(Data) is the buffer size.
	Data []byte
	// Seq is the per-channel sequence number assigned at dispatch,
	// starting at 1. Zero means not yet dispatched.
	Seq uint64
	// Epoch is the checkpoint epoch the buffer belongs to.
	Epoch types.EpochID
	// Delta carries the piggybacked causal-log delta attached at
	// dispatch. It is not part of the record byte stream.
	Delta []byte

	// refs counts the live holders of Data. 0 means free / sole untracked
	// owner (pool free list, pre-refcount call sites).
	refs atomic.Int32
	// dest, when set, is where the buffer goes once refs drains to zero.
	dest atomic.Pointer[recycleDest]
}

// recycleDest names the pool (and transfer semantics) a released buffer
// returns to. Pools pre-build their two destinations so the release path
// does not allocate.
type recycleDest struct {
	pool   *Pool
	donate bool
}

// NewBuffer allocates a standalone buffer of the given capacity.
func NewBuffer(size int) *Buffer {
	return &Buffer{Data: make([]byte, 0, size)}
}

// Reset clears the buffer for reuse, keeping its backing array.
func (b *Buffer) Reset() {
	b.Data = b.Data[:0]
	b.Seq = 0
	b.Epoch = 0
	b.Delta = nil
}

// Retain adds a reference. The caller must already hold one, so the
// count can never be resurrected from zero.
func (b *Buffer) Retain() { b.refs.Add(1) }

// Refs reports the current reference count (diagnostics and tests).
func (b *Buffer) Refs() int32 { return b.refs.Load() }

// Release drops one reference. The holder that drops the last reference
// recycles the buffer into the destination set by ReleaseTo/DonateTo (a
// release without a destination leaves the buffer to the garbage
// collector — correct for buffers whose owning task died with its pools).
func (b *Buffer) Release() {
	if n := b.refs.Add(-1); n == 0 {
		if d := b.dest.Swap(nil); d != nil {
			if d.donate {
				d.pool.Donate(b)
			} else {
				d.pool.Put(b)
			}
		}
	} else if n < 0 {
		panic("buffer: Release without matching reference")
	}
}

// ReleaseTo drops the structural owner's reference and routes the
// eventual recycle to p with Put semantics (return to owning pool).
func (b *Buffer) ReleaseTo(p *Pool) {
	b.dest.Store(p.putDest)
	b.Release()
}

// DonateTo drops the structural owner's reference and routes the
// eventual recycle to p with Donate semantics (grow p by one; the §6.1
// exchange hand-off).
func (b *Buffer) DonateTo(p *Pool) {
	b.dest.Store(p.donateDest)
	b.Release()
}

// Remaining reports how many bytes can still be written.
func (b *Buffer) Remaining() int { return cap(b.Data) - len(b.Data) }

// Len reports the bytes written so far.
func (b *Buffer) Len() int { return len(b.Data) }

// Pool is a blocking pool of equally sized buffers.
//
// The zero value is not usable; construct with NewPool. Get blocks until a
// buffer is free or the pool is closed; Close unblocks all waiters (used
// when a task crashes so its threads do not hang on buffer starvation).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	free   []*Buffer
	size   int
	total  int
	closed bool

	// putDest/donateDest are the pre-built recycle destinations handed to
	// Buffer.ReleaseTo/DonateTo, so releases do not allocate.
	putDest    *recycleDest
	donateDest *recycleDest

	// backpressure instrumentation (nil-safe; see Instrument)
	waits  *obs.Counter
	waitNs *obs.Counter
	stall  *obs.Histogram
}

// NewPool creates a pool holding n buffers of the given byte size.
func NewPool(n, size int) *Pool {
	p := &Pool{size: size, total: n}
	p.putDest = &recycleDest{pool: p}
	p.donateDest = &recycleDest{pool: p, donate: true}
	p.cond = sync.NewCond(&p.mu)
	p.free = make([]*Buffer, 0, n)
	for i := 0; i < n; i++ {
		p.free = append(p.free, NewBuffer(size))
	}
	return p
}

// BufferSize returns the byte size of buffers in this pool.
func (p *Pool) BufferSize() int { return p.size }

// Instrument attaches backpressure counters: waits counts Get/Take calls
// that had to block on an exhausted pool, waitNs accumulates the blocked
// nanoseconds. Either may be nil.
func (p *Pool) Instrument(waits, waitNs *obs.Counter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waits = waits
	p.waitNs = waitNs
}

// InstrumentStall additionally observes each starvation wait's duration
// into a histogram (nil detaches).
func (p *Pool) InstrumentStall(h *obs.Histogram) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stall = h
}

// waitLocked blocks until a buffer is free or the pool closes, recording
// the backpressure wait. Callers hold p.mu.
func (p *Pool) waitLocked() {
	if len(p.free) > 0 || p.closed {
		return
	}
	p.waits.Inc()
	start := time.Now()
	for len(p.free) == 0 && !p.closed {
		p.cond.Wait()
	}
	p.waitNs.AddDuration(time.Since(start))
	p.stall.ObserveSince(start)
}

// handOutLocked pops a free buffer and arms its reference count: the
// caller receives the sole reference.
func (p *Pool) handOutLocked() *Buffer {
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	b.refs.Store(1)
	b.dest.Store(nil)
	return b
}

// Get returns a free buffer, blocking until one is available. It returns
// nil if the pool is closed while waiting.
func (p *Pool) Get() *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waitLocked()
	if p.closed {
		return nil
	}
	return p.handOutLocked()
}

// TryGet returns a free buffer or nil without blocking.
func (p *Pool) TryGet() *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.free) == 0 {
		return nil
	}
	return p.handOutLocked()
}

// Put returns a buffer to the pool after resetting it. The caller asserts
// sole ownership: any reference count is cleared.
func (p *Pool) Put(b *Buffer) {
	if b == nil {
		return
	}
	b.Reset()
	b.refs.Store(0)
	b.dest.Store(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.free = append(p.free, b)
	p.cond.Signal()
}

// Donate adds a foreign buffer to this pool, growing it by one. It is the
// "exchange" half of the §6.1 hand-off: the in-flight log keeps the sent
// buffer and donates an empty one of its own to the channel pool.
func (p *Pool) Donate(b *Buffer) {
	if b == nil {
		return
	}
	b.Reset()
	b.refs.Store(0)
	b.dest.Store(nil)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total++
	if p.closed {
		return
	}
	p.free = append(p.free, b)
	p.cond.Signal()
}

// Take removes capacity from the pool: it gets a free buffer (blocking)
// and permanently reduces the pool's total by one. It is the other half of
// the exchange. Returns nil if the pool is closed.
func (p *Pool) Take() *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.waitLocked()
	if p.closed {
		return nil
	}
	p.total--
	return p.handOutLocked()
}

// TryTake is Take without blocking; it returns nil when no buffer is free.
func (p *Pool) TryTake() *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.free) == 0 {
		return nil
	}
	p.total--
	return p.handOutLocked()
}

// Forfeit records that one outstanding buffer will never be returned —
// the in-flight log took ownership of it at dispatch — keeping Total
// honest when paired with a Donate of the log's replacement buffer.
func (p *Pool) Forfeit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total--
}

// Available reports the number of free buffers.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Total reports the pool's current total capacity in buffers.
func (p *Pool) Total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// AvailableRatio reports free/total, used by the spill-threshold policy.
func (p *Pool) AvailableRatio() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total == 0 {
		return 0
	}
	return float64(len(p.free)) / float64(p.total)
}

// Close unblocks all waiters; subsequent Get/Take calls return nil.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}
