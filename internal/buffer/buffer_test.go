package buffer

import (
	"sync"
	"testing"
	"time"
)

func TestPoolGetPut(t *testing.T) {
	p := NewPool(2, 64)
	a := p.Get()
	b := p.Get()
	if a == nil || b == nil {
		t.Fatal("expected two buffers")
	}
	if p.Available() != 0 {
		t.Fatalf("available = %d, want 0", p.Available())
	}
	if got := p.TryGet(); got != nil {
		t.Fatal("TryGet on empty pool returned a buffer")
	}
	p.Put(a)
	if p.Available() != 1 {
		t.Fatalf("available = %d, want 1", p.Available())
	}
}

func TestPoolGetBlocksUntilPut(t *testing.T) {
	p := NewPool(1, 64)
	a := p.Get()
	done := make(chan *Buffer)
	go func() { done <- p.Get() }()
	select {
	case <-done:
		t.Fatal("Get returned while pool empty")
	case <-time.After(20 * time.Millisecond):
	}
	p.Put(a)
	select {
	case b := <-done:
		if b == nil {
			t.Fatal("got nil buffer")
		}
	case <-time.After(time.Second):
		t.Fatal("Get never unblocked")
	}
}

func TestPoolCloseUnblocks(t *testing.T) {
	p := NewPool(1, 64)
	_ = p.Get()
	done := make(chan *Buffer)
	go func() { done <- p.Get() }()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case b := <-done:
		if b != nil {
			t.Fatal("Get on closed pool returned a buffer")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Get")
	}
}

func TestExchangeDonateTake(t *testing.T) {
	channelPool := NewPool(2, 64)
	logPool := NewPool(4, 64)

	// Simulate §6.1: a sent buffer moves to the log, which donates a
	// fresh one to the channel pool.
	sent := channelPool.Get()
	sent.Data = append(sent.Data, 1, 2, 3)
	channelPool.Forfeit() // the log takes ownership of `sent`
	replacement := logPool.Take()
	if replacement == nil {
		t.Fatal("log pool empty")
	}
	channelPool.Donate(replacement)

	if channelPool.Total() != 2 { // exchange keeps the channel pool size constant
		t.Fatalf("channel pool total = %d, want 2", channelPool.Total())
	}
	if logPool.Total() != 3 {
		t.Fatalf("log pool total = %d, want 3", logPool.Total())
	}
	if channelPool.Available() != 2 {
		t.Fatalf("channel pool available = %d, want 2", channelPool.Available())
	}
	// The sent buffer is owned by the log now; returning it to the log
	// pool restores its capacity.
	logPool.Donate(sent)
	if logPool.Total() != 4 {
		t.Fatalf("log pool total = %d, want 4", logPool.Total())
	}
	if sent.Len() != 0 {
		t.Fatal("Donate did not reset buffer")
	}
}

func TestAvailableRatio(t *testing.T) {
	p := NewPool(4, 16)
	if r := p.AvailableRatio(); r != 1 {
		t.Fatalf("ratio = %v, want 1", r)
	}
	a := p.Get()
	b := p.Get()
	if r := p.AvailableRatio(); r != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", r)
	}
	p.Put(a)
	p.Put(b)
}

func TestBufferResetAndRemaining(t *testing.T) {
	b := NewBuffer(8)
	if b.Remaining() != 8 {
		t.Fatalf("remaining = %d, want 8", b.Remaining())
	}
	b.Data = append(b.Data, 1, 2, 3)
	b.Seq = 5
	b.Epoch = 2
	b.Delta = []byte{1}
	if b.Remaining() != 5 || b.Len() != 3 {
		t.Fatalf("remaining=%d len=%d", b.Remaining(), b.Len())
	}
	b.Reset()
	if b.Len() != 0 || b.Seq != 0 || b.Epoch != 0 || b.Delta != nil {
		t.Fatalf("reset incomplete: %+v", b)
	}
}

func TestPoolConcurrentStress(t *testing.T) {
	p := NewPool(4, 16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b := p.Get()
				if b == nil {
					t.Error("nil buffer from open pool")
					return
				}
				b.Data = append(b.Data, byte(j))
				p.Put(b)
			}
		}()
	}
	wg.Wait()
	if p.Available() != 4 {
		t.Fatalf("available = %d, want 4", p.Available())
	}
}

func TestTryTakeReducesTotal(t *testing.T) {
	p := NewPool(2, 16)
	b := p.TryTake()
	if b == nil {
		t.Fatal("TryTake failed on full pool")
	}
	if p.Total() != 1 {
		t.Fatalf("total = %d, want 1", p.Total())
	}
	if p.TryTake() == nil {
		t.Fatal("second TryTake failed")
	}
	if p.TryTake() != nil {
		t.Fatal("TryTake on empty pool succeeded")
	}
}
