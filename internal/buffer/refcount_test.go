package buffer

import (
	"sync"
	"testing"
)

// Double-release is an ownership bug, not a tolerable no-op: the second
// Release would recycle a buffer another holder may have re-acquired.
// The refcount panics so the bug surfaces at the faulty call site (the
// bufown analyzer catches the intraprocedural cases statically; this
// pins the dynamic backstop).
func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(1, 64)
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestReleaseAfterReleaseToPanics(t *testing.T) {
	p := NewPool(1, 64)
	b := p.Get()
	b.ReleaseTo(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Release after ReleaseTo did not panic")
		}
	}()
	b.Release()
}

// ReleaseTo on a closed pool must still drop the reference cleanly: the
// recycle is refused (Put on a closed pool discards), the buffer goes to
// the garbage collector, and no waiter wakes on a dead pool.
func TestReleaseToClosedPool(t *testing.T) {
	p := NewPool(1, 64)
	b := p.Get()
	p.Close()
	b.ReleaseTo(p) // must not panic or deadlock
	if got := p.Available(); got != 0 {
		t.Fatalf("closed pool re-admitted a buffer: available=%d", got)
	}
	if p.Get() != nil {
		t.Fatal("Get on closed pool returned a buffer")
	}
}

func TestDonateToClosedPoolStillCountsTotal(t *testing.T) {
	src := NewPool(1, 64)
	dst := NewPool(0, 64)
	b := src.Take()
	dst.Close()
	b.DonateTo(dst)
	// The donation bookkeeping runs (total grows — the §6.1 exchange
	// already forfeited on the other side) even though the free list is
	// sealed; the buffer itself is dropped to the GC.
	if got := dst.Total(); got != 1 {
		t.Fatalf("closed pool total = %d, want 1", got)
	}
	if got := dst.Available(); got != 0 {
		t.Fatalf("closed pool admitted a donated buffer: available=%d", got)
	}
}

// A wire holder releasing concurrently with the structural owner's
// DonateTo must recycle the buffer exactly once, whichever side drops
// the last reference. Run under -race this also proves the dest/refs
// ordering is sound.
func TestDonateToRacingRelease(t *testing.T) {
	for i := 0; i < 200; i++ {
		src := NewPool(1, 64)
		dst := NewPool(0, 64)
		b := src.Take()
		b.Retain() // wire's reference
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); b.DonateTo(dst) }()
		go func() { defer wg.Done(); b.Release() }()
		wg.Wait()
		if got := dst.Available(); got != 1 {
			t.Fatalf("iteration %d: donated buffer not recycled exactly once: available=%d", i, got)
		}
		if got := dst.Total(); got != 1 {
			t.Fatalf("iteration %d: donation total = %d, want 1", i, got)
		}
	}
}

// The deferred-recycle contract: while any reference is live the
// destination is only armed, and the recycle happens at the final
// Release — Data stays readable for the surviving holder in between.
func TestDonateToDefersRecycleUntilLastRelease(t *testing.T) {
	src := NewPool(1, 64)
	dst := NewPool(0, 64)
	b := src.Take()
	b.Data = append(b.Data, "payload"...)
	b.Retain() // second holder (the wire)
	b.DonateTo(dst)
	if got := dst.Available(); got != 0 {
		t.Fatal("recycled while a reference was still live")
	}
	if string(b.Data) != "payload" {
		t.Fatalf("payload clobbered before last release: %q", b.Data)
	}
	b.Release() // wire done: now it recycles
	if got := dst.Available(); got != 1 {
		t.Fatalf("not recycled after last release: available=%d", got)
	}
	if b.Len() != 0 {
		t.Fatal("recycled buffer not reset")
	}
}
