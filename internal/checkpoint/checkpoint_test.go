package checkpoint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clonos/internal/statestore"
	"clonos/internal/types"
)

func tid(v, s int32) types.TaskID { return types.TaskID{Vertex: types.VertexID(v), Subtask: s} }

func TestStorePutGet(t *testing.T) {
	s := NewStore("")
	snap := &TaskSnapshot{Checkpoint: 1, Task: tid(0, 0), State: []byte("x")}
	if err := s.Put(snap); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(1, tid(0, 0))
	if !ok || string(got.State) != "x" {
		t.Fatalf("get: ok=%v snap=%+v", ok, got)
	}
	if _, ok := s.Get(2, tid(0, 0)); ok {
		t.Fatal("unknown checkpoint found")
	}
	if _, ok := s.Get(1, tid(9, 9)); ok {
		t.Fatal("unknown task found")
	}
}

func TestStoreMarkCompletedDiscardsOld(t *testing.T) {
	s := NewStore("")
	for cp := types.CheckpointID(1); cp <= 3; cp++ {
		if err := s.Put(&TaskSnapshot{Checkpoint: cp, Task: tid(0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	s.MarkCompleted(2)
	if s.LatestCompleted() != 2 {
		t.Fatalf("latest = %d", s.LatestCompleted())
	}
	if _, ok := s.Get(1, tid(0, 0)); ok {
		t.Fatal("old checkpoint retained")
	}
	if _, ok := s.Get(2, tid(0, 0)); !ok {
		t.Fatal("completed checkpoint discarded")
	}
	if _, ok := s.Get(3, tid(0, 0)); !ok {
		t.Fatal("newer checkpoint discarded")
	}
	// Completion never regresses.
	s.MarkCompleted(1)
	if s.LatestCompleted() != 2 {
		t.Fatal("completion regressed")
	}
}

func TestStorePersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	if err := s.Put(&TaskSnapshot{Checkpoint: 5, Task: tid(1, 2), State: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "chk-5-v1-2.state"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "abc" {
		t.Fatalf("disk state = %q", b)
	}
}

// coordinatorHarness wires a coordinator to in-memory callbacks. Every
// mutation signals changed so tests can wait event-driven instead of
// sleep-polling.
type coordinatorHarness struct {
	mu        sync.Mutex
	triggered []types.CheckpointID
	completed []types.CheckpointID
	expected  []types.TaskID
	changed   chan struct{}
}

func newHarness(tasks ...types.TaskID) *coordinatorHarness {
	return &coordinatorHarness{expected: tasks, changed: make(chan struct{}, 1)}
}

func (h *coordinatorHarness) signal() {
	select {
	case h.changed <- struct{}{}:
	default:
	}
}

func (h *coordinatorHarness) coordinator(interval, timeout time.Duration) *Coordinator {
	return NewCoordinator(interval, timeout,
		func() []types.TaskID {
			h.mu.Lock()
			defer h.mu.Unlock()
			return append([]types.TaskID(nil), h.expected...)
		},
		func(cp types.CheckpointID) {
			h.mu.Lock()
			h.triggered = append(h.triggered, cp)
			h.mu.Unlock()
			h.signal()
		},
		func(cp types.CheckpointID) {
			h.mu.Lock()
			h.completed = append(h.completed, cp)
			h.mu.Unlock()
			h.signal()
		})
}

func (h *coordinatorHarness) lastTriggered() (types.CheckpointID, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.triggered) == 0 {
		return 0, false
	}
	return h.triggered[len(h.triggered)-1], true
}

func (h *coordinatorHarness) completions() []types.CheckpointID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]types.CheckpointID(nil), h.completed...)
}

// waitFor blocks until cond holds, waking on harness mutations rather
// than polling. The coordinator's acks arrive through the harness
// callbacks, so every state change rings h.changed.
func (h *coordinatorHarness) waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for !cond() {
		select {
		case <-h.changed:
		case <-deadline.C:
			if cond() {
				return
			}
			t.Fatal("condition never met")
		}
	}
}

func TestCoordinatorCompletesOnAllAcks(t *testing.T) {
	a, b := tid(0, 0), tid(1, 0)
	h := newHarness(a, b)
	c := h.coordinator(20*time.Millisecond, time.Second)
	c.Start()
	defer c.Stop()

	h.waitFor(t, 2*time.Second, func() bool { _, ok := h.lastTriggered(); return ok })
	cp, _ := h.lastTriggered()
	c.Ack(cp, a)
	if len(h.completions()) != 0 {
		t.Fatal("completed with one ack")
	}
	c.Ack(cp, b)
	h.waitFor(t, 2*time.Second, func() bool { return len(h.completions()) == 1 })
	if c.LatestCompleted() != cp {
		t.Fatalf("latest = %d, want %d", c.LatestCompleted(), cp)
	}
}

func TestCoordinatorNoConcurrentCheckpoints(t *testing.T) {
	a := tid(0, 0)
	h := newHarness(a)
	c := h.coordinator(10*time.Millisecond, 10*time.Second)
	c.Start()
	defer c.Stop()
	// Never ack: no further checkpoint may be triggered.
	h.waitFor(t, 2*time.Second, func() bool { _, ok := h.lastTriggered(); return ok })
	time.Sleep(100 * time.Millisecond)
	h.mu.Lock()
	n := len(h.triggered)
	h.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d checkpoints triggered while one was in flight", n)
	}
}

func TestCoordinatorTimeoutAbandonsCheckpoint(t *testing.T) {
	a := tid(0, 0)
	h := newHarness(a)
	c := h.coordinator(15*time.Millisecond, 40*time.Millisecond)
	c.Start()
	defer c.Stop()
	// Never ack the first; after the timeout a new one must trigger.
	h.waitFor(t, 2*time.Second, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.triggered) >= 2
	})
	if len(h.completions()) != 0 {
		t.Fatal("abandoned checkpoint completed")
	}
}

func TestCoordinatorStaleAckIgnored(t *testing.T) {
	a := tid(0, 0)
	h := newHarness(a)
	c := h.coordinator(15*time.Millisecond, time.Second)
	c.Start()
	defer c.Stop()
	h.waitFor(t, 2*time.Second, func() bool { _, ok := h.lastTriggered(); return ok })
	cp, _ := h.lastTriggered()
	c.Ack(cp+100, a) // unknown checkpoint
	time.Sleep(50 * time.Millisecond)
	if len(h.completions()) != 0 {
		t.Fatal("stale ack completed a checkpoint")
	}
	c.Ack(cp, a)
	h.waitFor(t, 2*time.Second, func() bool { return len(h.completions()) == 1 })
}

func TestCoordinatorPauseAbortsInFlight(t *testing.T) {
	a := tid(0, 0)
	h := newHarness(a)
	c := h.coordinator(15*time.Millisecond, 10*time.Second)
	c.Start()
	defer c.Stop()
	h.waitFor(t, 2*time.Second, func() bool { _, ok := h.lastTriggered(); return ok })
	cp, _ := h.lastTriggered()
	// Pause (failure handling) aborts the in-flight checkpoint: a late
	// ack for it must not complete anything, before or after Resume.
	c.Pause()
	c.Ack(cp, a)
	time.Sleep(80 * time.Millisecond)
	if len(h.completions()) != 0 {
		t.Fatal("aborted checkpoint completed while paused")
	}
	c.Resume()
	// A fresh checkpoint triggers after Resume and completes normally.
	h.waitFor(t, 2*time.Second, func() bool {
		lcp, ok := h.lastTriggered()
		return ok && lcp > cp
	})
	time.Sleep(40 * time.Millisecond)
	if len(h.completions()) != 0 {
		t.Fatal("aborted checkpoint completed after resume")
	}
	lcp, _ := h.lastTriggered()
	c.Ack(lcp, a)
	h.waitFor(t, 2*time.Second, func() bool { return len(h.completions()) == 1 })
	if c.LatestCompleted() != lcp {
		t.Fatalf("latest = %d, want %d", c.LatestCompleted(), lcp)
	}
}

func TestCoordinatorReset(t *testing.T) {
	a := tid(0, 0)
	h := newHarness(a)
	c := h.coordinator(15*time.Millisecond, 10*time.Second)
	c.Start()
	defer c.Stop()
	h.waitFor(t, 2*time.Second, func() bool { _, ok := h.lastTriggered(); return ok })
	cp, _ := h.lastTriggered()
	c.Reset()
	c.Ack(cp, a) // ack for a reset checkpoint: ignored
	time.Sleep(50 * time.Millisecond)
	if len(h.completions()) != 0 {
		t.Fatal("ack after reset completed a checkpoint")
	}
	// A new checkpoint triggers and completes normally.
	h.waitFor(t, 2*time.Second, func() bool {
		lcp, ok := h.lastTriggered()
		return ok && lcp > cp
	})
	lcp, _ := h.lastTriggered()
	c.Ack(lcp, a)
	h.waitFor(t, 2*time.Second, func() bool { return len(h.completions()) == 1 })
}

func TestStoreIncrementalChain(t *testing.T) {
	img := statestore.NewStore()
	img.Keyed("x").Put(1, int64(1))
	img.Keyed("x").Put(2, int64(2))
	full, err := img.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img.ResetDirty()

	s := NewStore("")
	if err := s.Put(&TaskSnapshot{Checkpoint: 1, Task: tid(0, 0), State: full}); err != nil {
		t.Fatal(err)
	}
	// Two chained deltas.
	img.Keyed("x").Put(2, int64(22))
	d1, _ := img.DeltaSnapshot()
	if err := s.Put(&TaskSnapshot{Checkpoint: 2, Task: tid(0, 0), State: d1, StateIsDelta: true}); err != nil {
		t.Fatal(err)
	}
	img.Keyed("x").Delete(1)
	d2, _ := img.DeltaSnapshot()
	if err := s.Put(&TaskSnapshot{Checkpoint: 3, Task: tid(0, 0), State: d2, StateIsDelta: true}); err != nil {
		t.Fatal(err)
	}

	// Get always returns reconstructed full state.
	snap, ok := s.Get(3, tid(0, 0))
	if !ok || snap.StateIsDelta {
		t.Fatalf("snap = %+v ok=%v", snap, ok)
	}
	rec := statestore.NewStore()
	if err := rec.Restore(snap.State); err != nil {
		t.Fatal(err)
	}
	if rec.Keyed("x").Get(1) != nil || rec.Keyed("x").Get(2).(int64) != 22 {
		t.Fatalf("reconstructed = %v %v", rec.Keyed("x").Get(1), rec.Keyed("x").Get(2))
	}
	fullB, deltaB := s.SnapshotTraffic()
	if fullB == 0 || deltaB == 0 {
		t.Fatalf("traffic full=%d delta=%d", fullB, deltaB)
	}
}

func TestStoreDeltaWithoutBase(t *testing.T) {
	s := NewStore("")
	img := statestore.NewStore()
	img.Keyed("x").Put(1, int64(1))
	d, _ := img.DeltaSnapshot()
	if err := s.Put(&TaskSnapshot{Checkpoint: 1, Task: tid(9, 9), State: d, StateIsDelta: true}); err == nil {
		t.Fatal("delta without base accepted")
	}
}
