// Package checkpoint implements coordinated Chandy-Lamport checkpointing:
// a coordinator that periodically triggers barrier injection at the
// sources via RPC, collects per-task acknowledgements, declares
// checkpoints complete, and a snapshot store holding every task's state
// (optionally persisted to disk, standing in for the paper's HDFS).
package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"clonos/internal/obs"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// TaskSnapshot is everything one task persists at a barrier.
type TaskSnapshot struct {
	Checkpoint types.CheckpointID
	Task       types.TaskID
	// State is the serialized operator state (statestore bytes). When
	// StateIsDelta is set it holds only the entries changed since the
	// task's previous snapshot (§6.4 incremental checkpoints); the
	// snapshot store reconstructs the full image on Put.
	State        []byte
	StateIsDelta bool
	// Timers is the serialized pending-timer set.
	Timers []byte
	// NextSeq is each output channel's next buffer sequence number, so
	// a recovering task resumes channel numbering exactly.
	NextSeq map[types.ChannelID]uint64
	// MainLogBase is the absolute causal main-log index at the epoch
	// boundary; a standby seeds its log here so re-appended determinants
	// land on the predecessor's indices.
	MainLogBase uint64
	// ChannelLogBase is the same per output-channel log.
	ChannelLogBase map[types.ChannelID]uint64
	// ChanWms is each input channel's highest received watermark at the
	// epoch boundary and CurWm the combined watermark already emitted.
	// A replacement must seed watermark merging with both: the combined
	// watermark is a min() over per-channel values carried across epoch
	// boundaries, so a replacement starting from blank channel watermarks
	// would emit (or suppress) different Watermark elements during guided
	// re-execution, breaking the byte-identity that sender-side
	// deduplication relies on.
	ChanWms map[types.ChannelID]int64
	CurWm   int64
	// Fingerprint is the audit plane's state-attestation digest computed
	// over the live task state at snapshot time (see audit.Fingerprint);
	// restore recomputes and compares it. 0 means no fingerprint was
	// recorded (audit disarmed at snapshot time), which skips the check.
	Fingerprint uint64
	// InFlight is the logged-buffer section of an unaligned checkpoint
	// (statestore.EncodeInFlight bytes): the pre-barrier input of every
	// channel whose barrier had not arrived when the task snapshotted.
	// Restore preloads it ahead of live replay. Empty for aligned
	// checkpoints. Held in memory only — the disk mirror (Store.Put)
	// writes operator state, standing in for HDFS's state files, not the
	// transient channel log.
	InFlight []byte
	// SourceBacklog is the polled-but-unemitted tail of a source task's
	// current batch at barrier time. Source operators advance their
	// offsets when a batch is polled, not per emitted element, so a
	// barrier arriving mid-batch snapshots state that already covers
	// elements still waiting in the task's pending batch — elements that
	// then flow in the next epoch. Restore must re-emit them before
	// polling again or they are silently skipped (the offsets are past
	// them). Like InFlight, this section is held in memory only; the
	// disk mirror persists operator state.
	SourceBacklog []types.Element
}

// Store holds snapshots by (checkpoint, task) and tracks which checkpoints
// completed. With a non-empty directory it also writes snapshots to disk,
// exercising the same state-transfer path used for standby dispatch.
type Store struct {
	mu        sync.Mutex
	snaps     map[types.CheckpointID]map[types.TaskID]*TaskSnapshot
	completed types.CheckpointID
	dir       string
	// images reconstruct full state from incremental snapshots (§6.4):
	// one evolving full image per task, advanced by each delta and
	// decoded lazily from lastFull on the first delta.
	images   map[types.TaskID]*statestore.Store
	lastFull map[types.TaskID][]byte
	// traffic accounting: bytes received as full vs delta snapshots.
	fullBytes, deltaBytes uint64
	// exported traffic counters (nil-safe; see Instrument).
	fullCtr, deltaCtr *obs.Counter
}

// NewStore creates a snapshot store. dir may be empty for memory-only.
func NewStore(dir string) *Store {
	return &Store{
		snaps:    make(map[types.CheckpointID]map[types.TaskID]*TaskSnapshot),
		dir:      dir,
		images:   make(map[types.TaskID]*statestore.Store),
		lastFull: make(map[types.TaskID][]byte),
	}
}

// Instrument attaches byte counters mirroring SnapshotTraffic: full
// counts bytes received as full snapshots, delta as incremental deltas.
func (s *Store) Instrument(full, delta *obs.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fullCtr = full
	s.deltaCtr = delta
}

// Put stores one task's snapshot for a checkpoint. Incremental snapshots
// are merged into the task's retained full image, so Get always returns
// full state.
func (s *Store) Put(snap *TaskSnapshot) error {
	s.mu.Lock()
	if snap.StateIsDelta {
		s.deltaBytes += uint64(len(snap.State))
		s.deltaCtr.Add(uint64(len(snap.State)))
		img, ok := s.images[snap.Task]
		if !ok {
			// Lazily decode the base image from the last full snapshot.
			base, haveBase := s.lastFull[snap.Task]
			if !haveBase {
				s.mu.Unlock()
				return fmt.Errorf("checkpoint: delta snapshot for %v without a base image", snap.Task)
			}
			img = statestore.NewStore()
			if err := img.Restore(base); err != nil {
				s.mu.Unlock()
				return err
			}
			s.images[snap.Task] = img
		}
		if err := img.ApplyDelta(snap.State); err != nil {
			s.mu.Unlock()
			return err
		}
		full, err := img.Snapshot()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		snap.State = full
		snap.StateIsDelta = false
		s.lastFull[snap.Task] = full
	} else {
		s.fullBytes += uint64(len(snap.State))
		s.fullCtr.Add(uint64(len(snap.State)))
		s.lastFull[snap.Task] = snap.State
		delete(s.images, snap.Task)
	}
	m, ok := s.snaps[snap.Checkpoint]
	if !ok {
		m = make(map[types.TaskID]*TaskSnapshot)
		s.snaps[snap.Checkpoint] = m
	}
	m[snap.Task] = snap
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	name := filepath.Join(dir, fmt.Sprintf("chk-%d-v%d-%d.state", snap.Checkpoint, snap.Task.Vertex, snap.Task.Subtask))
	return os.WriteFile(name, snap.State, 0o644)
}

// Get returns one task's snapshot for a checkpoint.
func (s *Store) Get(cp types.CheckpointID, task types.TaskID) (*TaskSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.snaps[cp]
	if !ok {
		return nil, false
	}
	snap, ok := m[task]
	return snap, ok
}

// MarkCompleted records that a checkpoint completed; older checkpoints
// are discarded.
func (s *Store) MarkCompleted(cp types.CheckpointID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cp <= s.completed {
		return
	}
	s.completed = cp
	for old := range s.snaps {
		if old < cp {
			delete(s.snaps, old)
		}
	}
}

// LatestCompleted returns the newest completed checkpoint (0 = none).
func (s *Store) LatestCompleted() types.CheckpointID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// SnapshotTraffic reports the state bytes received as full snapshots and
// as incremental deltas — the §6.4 state-transfer cost.
func (s *Store) SnapshotTraffic() (full, delta uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fullBytes, s.deltaBytes
}

// Coordinator drives periodic checkpoints. It triggers a checkpoint only
// after the previous one completed (no concurrent checkpoints, matching
// §6.4's assumption), collects acks from every expected task, and invokes
// the completion callback — which the job layer uses to truncate in-flight
// and causal logs and to dispatch state to standby tasks.
// CoordinatorMetrics instruments checkpoint progress. All fields are
// optional (nil-safe): Triggered counts checkpoints started, Completed
// those fully acked, Aborted those abandoned (timeout or recovery
// pause), and Duration observes trigger-to-completion seconds.
type CoordinatorMetrics struct {
	Triggered *obs.Counter
	Completed *obs.Counter
	Aborted   *obs.Counter
	Duration  *obs.Histogram
}

// SpanName names the tracer span covering one checkpoint epoch, from
// trigger to completion (or abort). Its marks record the protocol
// milestones in arrival order: "first-barrier" when any task first sees
// the epoch's barrier, "align-complete:<task>" when that task finishes
// barrier alignment, "snapshot-persisted:<task>" when its snapshot
// lands in the store, "ack:<task>" for each acknowledgement, and
// "complete" when the epoch is declared done. Aborted epochs end with
// an "aborted" attribute (pause | reset | timeout) instead. Epochs where
// any task snapshotted through the unaligned capture path carry an
// "alignment"="unaligned" attribute (see Coordinator.AnnotateCheckpoint).
const SpanName = "checkpoint"

type Coordinator struct {
	interval time.Duration
	timeout  time.Duration
	expected func() []types.TaskID
	trigger  func(cp types.CheckpointID)
	complete func(cp types.CheckpointID)
	metrics  CoordinatorMetrics
	tracer   *obs.Tracer

	mu        sync.Mutex
	current   types.CheckpointID // checkpoint in flight, 0 = none
	next      types.CheckpointID
	acked     map[types.TaskID]bool
	started   time.Time
	completed types.CheckpointID
	paused    bool
	span      *obs.Span       // epoch span for the in-flight checkpoint
	marked    map[string]bool // span marks already recorded (dedup)

	stop chan struct{}
	done sync.WaitGroup
}

// NewCoordinator builds a coordinator. expected lists the tasks that must
// ack each checkpoint; trigger injects the barrier RPC at the sources;
// complete fires when all acks arrive.
func NewCoordinator(interval, timeout time.Duration, expected func() []types.TaskID, trigger, complete func(cp types.CheckpointID)) *Coordinator {
	return &Coordinator{
		interval: interval,
		timeout:  timeout,
		expected: expected,
		trigger:  trigger,
		complete: complete,
		next:     1,
		stop:     make(chan struct{}),
	}
}

// Instrument attaches progress metrics. Call before Start.
func (c *Coordinator) Instrument(m CoordinatorMetrics) {
	c.metrics = m
}

// Trace attaches a tracer; each subsequent checkpoint epoch becomes a
// SpanName span from trigger to completion/abort. Call before Start.
func (c *Coordinator) Trace(tr *obs.Tracer) {
	c.tracer = tr
}

// MarkCheckpoint records a named milestone on the in-flight epoch's
// span. Marks for checkpoints that are not in flight are dropped (stale
// barriers from recovered tasks), and each name is recorded at most once
// per epoch — so "first-barrier" can be reported by every task and only
// the first arrival lands on the span. Nil-safe without a tracer.
func (c *Coordinator) MarkCheckpoint(cp types.CheckpointID, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp != c.current || c.span == nil || c.marked[name] {
		return
	}
	c.marked[name] = true
	c.span.Mark(name)
}

// AnnotateCheckpoint sets an attribute on the in-flight epoch's span —
// e.g. the job layer stamps "alignment"="unaligned" when any task takes
// the epoch's snapshot through the unaligned capture path. Attributes for
// checkpoints that are not in flight are dropped; nil-safe without a
// tracer.
func (c *Coordinator) AnnotateCheckpoint(cp types.CheckpointID, key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp != c.current || c.span == nil {
		return
	}
	c.span.SetAttr(key, value)
}

// endSpanLocked detaches and finishes the in-flight epoch span. With a
// non-empty abort reason the span gets an "aborted" attribute instead of
// a "complete" mark. Caller holds c.mu; Span methods take only the
// span's own lock, so ending under c.mu cannot deadlock.
func (c *Coordinator) endSpanLocked(aborted string) {
	sp := c.span
	c.span = nil
	c.marked = nil
	if sp == nil {
		return
	}
	if aborted != "" {
		sp.SetAttr("aborted", aborted)
	} else {
		sp.Mark("complete")
	}
	sp.End()
}

// Start launches the coordinator loop.
func (c *Coordinator) Start() {
	c.done.Add(1)
	go c.run()
}

// Stop terminates the coordinator.
func (c *Coordinator) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.done.Wait()
}

// Pause suspends triggering and completion (used while a recovery is in
// flight so no truncation races with in-flight replay) and aborts any
// checkpoint currently in flight — a failed task would never ack it, and
// its barriers may be lost with the failure. Resume re-enables.
func (c *Coordinator) Pause() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paused = true
	if c.current != 0 {
		c.metrics.Aborted.Inc()
		c.endSpanLocked("pause")
	}
	c.current = 0
	c.acked = nil
}

// Resume re-enables checkpointing after a Pause. An in-flight checkpoint
// whose acks all arrived while paused completes on the next tick.
func (c *Coordinator) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paused = false
}

// LatestCompleted returns the newest completed checkpoint ID.
func (c *Coordinator) LatestCompleted() types.CheckpointID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Reset aborts any in-flight checkpoint (after a global rollback).
func (c *Coordinator) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current != 0 {
		c.metrics.Aborted.Inc()
		c.endSpanLocked("reset")
	}
	c.current = 0
	c.acked = nil
}

// Ack records one task's acknowledgement for a checkpoint. Acks for
// checkpoints that are not in flight are ignored (stale re-acks from
// recovered tasks replaying barriers).
func (c *Coordinator) Ack(cp types.CheckpointID, task types.TaskID) {
	c.mu.Lock()
	if cp != c.current || c.acked == nil {
		c.mu.Unlock()
		return
	}
	c.acked[task] = true
	if c.span != nil {
		name := "ack:" + task.String()
		if !c.marked[name] {
			c.marked[name] = true
			c.span.Mark(name)
		}
	}
	expected := c.expected()
	for _, t := range expected {
		if !c.acked[t] {
			c.mu.Unlock()
			return
		}
	}
	// All acks in: complete unless paused (completion then happens on
	// a later tick, after recovery resumes checkpointing).
	if c.paused {
		c.mu.Unlock()
		return
	}
	c.finishLocked()
	c.mu.Unlock()
}

// finishLocked completes the in-flight checkpoint. Caller holds c.mu; the
// completion callback runs without the lock.
func (c *Coordinator) finishLocked() {
	cp := c.current
	c.current = 0
	c.acked = nil
	c.completed = cp
	c.metrics.Completed.Inc()
	c.metrics.Duration.ObserveSince(c.started)
	c.endSpanLocked("")
	complete := c.complete
	c.mu.Unlock()
	if complete != nil {
		complete(cp)
	}
	c.mu.Lock()
}

func (c *Coordinator) run() {
	defer c.done.Done()
	tick := time.NewTicker(c.interval / 4)
	defer tick.Stop()
	lastTrigger := time.Time{}
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		if c.paused {
			c.mu.Unlock()
			continue
		}
		if c.current != 0 {
			// Re-check completion (acks may have arrived while paused)
			// and abandon checkpoints that outlive the timeout (a
			// failure is being handled by a global restart).
			all := true
			for _, t := range c.expected() {
				if !c.acked[t] {
					all = false
					break
				}
			}
			if all {
				c.finishLocked()
			} else if c.timeout > 0 && time.Since(c.started) > c.timeout {
				c.metrics.Aborted.Inc()
				c.endSpanLocked("timeout")
				c.current = 0
				c.acked = nil
			}
			c.mu.Unlock()
			continue
		}
		if time.Since(lastTrigger) < c.interval {
			c.mu.Unlock()
			continue
		}
		cp := c.next
		c.next++
		c.current = cp
		c.acked = make(map[types.TaskID]bool)
		c.started = time.Now()
		c.metrics.Triggered.Inc()
		if c.tracer != nil {
			c.span = c.tracer.StartSpan(SpanName, map[string]string{"cp": fmt.Sprintf("%d", cp)})
			c.marked = make(map[string]bool)
		}
		trigger := c.trigger
		c.mu.Unlock()
		lastTrigger = time.Now()
		if trigger != nil {
			trigger(cp)
		}
	}
}
