package statestore

// Framing tests for the version-3 in-flight section of unaligned
// checkpoints: byte round-trip, pinned rejection of malformed/truncated/
// foreign-version frames, and the empty-section edge case.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"clonos/internal/codec"
	"clonos/internal/types"
)

func sampleInFlight() []InFlightChannel {
	return []InFlightChannel{
		{
			Channel: types.ChannelID{Edge: 3, From: 1, To: 0},
			Prefix:  []byte{0xde, 0xad, 0xbe},
			Msgs: []InFlightMessage{
				{Seq: 41, Epoch: 7, Data: []byte("first captured buffer"), Delta: []byte{1, 2, 3}},
				{Seq: 42, Epoch: 7, Data: []byte("second"), Delta: nil},
			},
		},
		{
			// A channel whose capture holds only a deserializer prefix.
			Channel: types.ChannelID{Edge: 0, From: 0, To: 1},
			Prefix:  []byte{0xff},
		},
	}
}

func TestInFlightRoundTrip(t *testing.T) {
	in := sampleInFlight()
	enc := EncodeInFlight(in)
	if len(enc) < snapshotHeadLen || enc[0] != legacyFirstByte || enc[2] != magicKindInFlight || enc[3] != snapshotVersion {
		t.Fatalf("in-flight frame header wrong: % x", enc[:snapshotHeadLen])
	}
	out, err := DecodeInFlight(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Normalize nil-vs-empty before comparing: the wire format cannot
	// distinguish them and neither can restore.
	for i := range out {
		if len(out[i].Prefix) == 0 {
			out[i].Prefix = nil
		}
		if len(out[i].Msgs) == 0 {
			out[i].Msgs = nil
		}
		for j := range out[i].Msgs {
			if len(out[i].Msgs[j].Data) == 0 {
				out[i].Msgs[j].Data = nil
			}
			if len(out[i].Msgs[j].Delta) == 0 {
				out[i].Msgs[j].Delta = nil
			}
		}
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in  %#v\n out %#v", in, out)
	}
}

func TestInFlightEmptyRoundTrip(t *testing.T) {
	enc := EncodeInFlight(nil)
	out, err := DecodeInFlight(enc)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty section decoded %d channels", len(out))
	}
}

// TestInFlightMalformedHeaderRejected pins the header rejection message:
// a corrupt in-flight section must error, never silently drop input.
func TestInFlightMalformedHeaderRejected(t *testing.T) {
	_, err := DecodeInFlight([]byte{0x00, 'C', 'X', snapshotVersion, 0})
	if err == nil || !strings.Contains(err.Error(), "malformed in-flight section header") {
		t.Fatalf("malformed header not rejected: %v", err)
	}
	if _, err := DecodeInFlight(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	// A full-snapshot frame is not an in-flight section.
	if _, err := DecodeInFlight([]byte{0x00, 'C', magicKindFull, snapshotVersion, 0}); err == nil {
		t.Fatal("full-snapshot magic accepted as in-flight section")
	}
}

// TestInFlightVersionRejected pins the version rejection message. Unlike
// the 'S'/'D' kinds there is no older in-flight layout to accept: the
// kind itself was introduced in version 3.
func TestInFlightVersionRejected(t *testing.T) {
	enc := EncodeInFlight(sampleInFlight())
	enc[3] = snapshotVersion - 1
	_, err := DecodeInFlight(enc)
	want := fmt.Sprintf("statestore: unsupported in-flight section version %d (want %d)", snapshotVersion-1, snapshotVersion)
	if err == nil || err.Error() != want {
		t.Fatalf("rejection message %q, want pinned %q", err, want)
	}
}

// TestInFlightTruncatedRejected proves every truncation point surfaces
// codec.ErrShortBuffer rather than a partial decode.
func TestInFlightTruncatedRejected(t *testing.T) {
	enc := EncodeInFlight(sampleInFlight())
	for cut := snapshotHeadLen; cut < len(enc); cut++ {
		if _, err := DecodeInFlight(enc[:cut]); !errors.Is(err, codec.ErrShortBuffer) {
			t.Fatalf("cut at %d/%d: got %v, want ErrShortBuffer", cut, len(enc), err)
		}
	}
}

// TestInFlightTrailingBytesRejected proves appended garbage is detected.
func TestInFlightTrailingBytesRejected(t *testing.T) {
	enc := append(EncodeInFlight(sampleInFlight()), 0x7f)
	if _, err := DecodeInFlight(enc); !errors.Is(err, codec.ErrTrailingBytes) {
		t.Fatalf("trailing byte not rejected: %v", err)
	}
}
