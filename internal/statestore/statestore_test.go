package statestore

import (
	"testing"
	"testing/quick"
)

type widget struct {
	Name  string
	Count int
}

func init() { Register(widget{}) }

func TestKeyedStatePutGetDelete(t *testing.T) {
	s := NewStore()
	k := s.Keyed("counts")
	if k.Get(1) != nil {
		t.Fatal("missing key returned non-nil")
	}
	k.Put(1, int64(5))
	if got := k.Get(1).(int64); got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
	k.Delete(1)
	if k.Get(1) != nil {
		t.Fatal("deleted key still present")
	}
}

func TestKeyedStateSameInstance(t *testing.T) {
	s := NewStore()
	if s.Keyed("a") != s.Keyed("a") {
		t.Fatal("Keyed returned different instances for same name")
	}
}

func TestSortedKeys(t *testing.T) {
	s := NewStore()
	k := s.Keyed("x")
	for _, key := range []uint64{5, 1, 9, 3} {
		k.Put(key, key)
	}
	keys := k.SortedKeys()
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestAppendList(t *testing.T) {
	s := NewStore()
	k := s.Keyed("lists")
	k.AppendList(7, "a")
	k.AppendList(7, "b")
	l := k.List(7)
	if len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Fatalf("list = %v", l)
	}
	if k.List(8) != nil {
		t.Fatal("missing list non-nil")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Keyed("counts").Put(1, int64(10))
	s.Keyed("counts").Put(2, int64(20))
	s.Keyed("widgets").Put(9, widget{Name: "w", Count: 3})
	s.Keyed("lists").AppendList(4, "x")

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s2.Keyed("counts").Get(2).(int64); got != 20 {
		t.Fatalf("counts[2] = %d", got)
	}
	w := s2.Keyed("widgets").Get(9).(widget)
	if w.Name != "w" || w.Count != 3 {
		t.Fatalf("widget = %+v", w)
	}
	if l := s2.Keyed("lists").List(4); len(l) != 1 || l[0] != "x" {
		t.Fatalf("lists[4] = %v", l)
	}
}

func TestRestoreEmptySnapshot(t *testing.T) {
	s := NewStore()
	s.Keyed("x").Put(1, int64(1))
	if err := s.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if s.Keyed("x").Len() != 0 {
		t.Fatal("restore(nil) kept old state")
	}
}

func TestRestoreCorruptSnapshot(t *testing.T) {
	s := NewStore()
	if err := s.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
}

func TestNamesAndTotalEntries(t *testing.T) {
	s := NewStore()
	s.Keyed("b").Put(1, int64(1))
	s.Keyed("a").Put(1, int64(1))
	s.Keyed("a").Put(2, int64(2))
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.TotalEntries() != 3 {
		t.Fatalf("entries = %d, want 3", s.TotalEntries())
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewStore()
	k := s.Keyed("x")
	for i := uint64(0); i < 10; i++ {
		k.Put(i, i)
	}
	n := 0
	k.Range(func(key uint64, v any) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d entries, want 3", n)
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(keys []uint64, vals []int64) bool {
		s := NewStore()
		k := s.Keyed("q")
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := make(map[uint64]int64)
		for i := 0; i < n; i++ {
			k.Put(keys[i], vals[i])
			want[keys[i]] = vals[i]
		}
		snap, err := s.Snapshot()
		if err != nil {
			return false
		}
		s2 := NewStore()
		if err := s2.Restore(snap); err != nil {
			return false
		}
		k2 := s2.Keyed("q")
		if k2.Len() != len(want) {
			return false
		}
		for key, v := range want {
			if got, ok := k2.Get(key).(int64); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	k := s.Keyed("x")
	k.Put(1, int64(10))
	k.Put(2, int64(20))
	full, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.ResetDirty()

	// Mutate a subset; the delta carries only those keys.
	k.Put(2, int64(22))
	k.Put(3, int64(30))
	k.Delete(1)
	delta, err := s.DeltaSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct: base image + delta == live store.
	img := NewStore()
	if err := img.Restore(full); err != nil {
		t.Fatal(err)
	}
	if err := img.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	ik := img.Keyed("x")
	if ik.Get(1) != nil {
		t.Fatal("deleted key survived delta")
	}
	if ik.Get(2).(int64) != 22 || ik.Get(3).(int64) != 30 {
		t.Fatalf("image = %v %v", ik.Get(2), ik.Get(3))
	}
	// Dirty set was consumed: an immediate second delta is empty-ish.
	delta2, err := s.DeltaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	img2 := NewStore()
	_ = img2.Restore(full)
	if err := img2.ApplyDelta(delta2); err != nil {
		t.Fatal(err)
	}
	if img2.Keyed("x").Get(2).(int64) != 20 {
		t.Fatal("empty delta changed the image")
	}
}

func TestDeltaTracksAppendListAndClear(t *testing.T) {
	s := NewStore()
	k := s.Keyed("lists")
	k.AppendList(5, "a")
	delta, err := s.DeltaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	img := NewStore()
	if err := img.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if l := img.Keyed("lists").List(5); len(l) != 1 || l[0] != "a" {
		t.Fatalf("list = %v", l)
	}
	// Clear marks all keys dirty as deletions.
	k.Clear()
	delta, err = s.DeltaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := img.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if img.Keyed("lists").Len() != 0 {
		t.Fatal("clear not propagated by delta")
	}
}

func TestApplyDeltaCorrupt(t *testing.T) {
	if err := NewStore().ApplyDelta([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt delta applied")
	}
}
