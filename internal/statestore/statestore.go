// Package statestore implements the keyed operator state backend: named
// keyed states with snapshot/restore to opaque bytes, used both by
// checkpoints and by live state transfer to standby tasks.
package statestore

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"clonos/internal/codec"
)

// Register makes a concrete value type encodable inside snapshots. Every
// type stored as a state value must be registered once (encoding/gob
// requirement); built-in scalar types work without registration.
func Register(v any) { gob.Register(v) }

func init() {
	// List-state values are []any; register once for all users.
	gob.Register([]any{})
}

// KeyedState is one named map from partitioning key to value. Access is
// single-threaded (the task's main loop), so no locking is done here.
// Mutations are tracked in a dirty set so incremental snapshots (§6.4)
// can ship only the keys changed since the previous snapshot.
type KeyedState struct {
	name  string
	data  map[uint64]any
	dirty map[uint64]struct{}
}

func (k *KeyedState) markDirty(key uint64) {
	if k.dirty == nil {
		k.dirty = make(map[uint64]struct{})
	}
	k.dirty[key] = struct{}{}
}

// Name returns the state's registered name.
func (k *KeyedState) Name() string { return k.name }

// Get returns the value for key, or nil when absent.
func (k *KeyedState) Get(key uint64) any { return k.data[key] }

// Put stores v under key.
func (k *KeyedState) Put(key uint64, v any) {
	k.data[key] = v
	k.markDirty(key)
}

// Delete removes key.
func (k *KeyedState) Delete(key uint64) {
	delete(k.data, key)
	k.markDirty(key)
}

// Len reports the number of keys.
func (k *KeyedState) Len() int { return len(k.data) }

// Range calls f for every entry until f returns false. Iteration order is
// unspecified; state mutations that depend on it must sort first (see
// SortedKeys).
func (k *KeyedState) Range(f func(key uint64, v any) bool) {
	for key, v := range k.data {
		if !f(key, v) {
			return
		}
	}
}

// SortedKeys returns all keys in ascending order, for deterministic
// iteration (window firing must not depend on map order).
func (k *KeyedState) SortedKeys() []uint64 {
	keys := make([]uint64, 0, len(k.data))
	for key := range k.data {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// AppendList treats the value under key as a []any list and appends v.
func (k *KeyedState) AppendList(key uint64, v any) {
	list, _ := k.data[key].([]any)
	k.Put(key, append(list, v))
}

// List returns the []any list under key (nil when absent).
func (k *KeyedState) List(key uint64) []any {
	list, _ := k.data[key].([]any)
	return list
}

// Clear removes every entry.
func (k *KeyedState) Clear() {
	for key := range k.data {
		k.markDirty(key)
	}
	k.data = make(map[uint64]any)
}

// Store holds all named keyed states of one task.
type Store struct {
	states map[string]*KeyedState
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{states: make(map[string]*KeyedState)}
}

// Keyed returns the named keyed state, creating it on first use.
func (s *Store) Keyed(name string) *KeyedState {
	st, ok := s.states[name]
	if !ok {
		st = &KeyedState{name: name, data: make(map[uint64]any)}
		s.states[name] = st
	}
	return st
}

// Names returns the registered state names in sorted order.
func (s *Store) Names() []string {
	names := make([]string, 0, len(s.states))
	for n := range s.states {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalEntries reports the number of (state, key) entries, an inexpensive
// size proxy used by metrics.
func (s *Store) TotalEntries() int {
	n := 0
	for _, st := range s.states {
		n += len(st.data)
	}
	return n
}

// Snapshot serializes every state to bytes: a versioned binary frame of
// typed-codec-encoded entries (see snapshot.go), deterministic for equal
// logical state.
func (s *Store) Snapshot() ([]byte, error) {
	flat := make(map[string]map[uint64]any, len(s.states))
	for name, st := range s.states {
		flat[name] = st.data
	}
	out := appendMagic(make([]byte, 0, 64+16*s.TotalEntries()), magicKindFull)
	out, err := appendStateSection(out, flat)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Restore replaces the store contents with a snapshot produced by
// Snapshot. A nil snapshot restores the empty store; legacy gob images
// (pre-binary-frame) are detected by their first byte and decoded with
// the reflective path. Dirty tracking is reset: the next delta snapshot
// is computed against the restore point.
func (s *Store) Restore(snapshot []byte) error {
	s.states = make(map[string]*KeyedState)
	if len(snapshot) == 0 {
		return nil
	}
	var flat map[string]map[uint64]any
	binaryFrame, err := checkMagic(snapshot, magicKindFull)
	if err != nil {
		return err
	}
	if binaryFrame {
		var used int
		flat, used, err = readStateSection(snapshot[snapshotHeadLen:])
		if err != nil {
			return err
		}
		if snapshotHeadLen+used != len(snapshot) {
			return fmt.Errorf("statestore: restore: %w", codec.ErrTrailingBytes)
		}
	} else if flat, err = decodeLegacySnapshot(snapshot); err != nil {
		return err
	}
	for name, data := range flat {
		if data == nil {
			data = make(map[uint64]any)
		}
		s.states[name] = &KeyedState{name: name, data: data}
	}
	return nil
}

// delta is the serialized form of an incremental snapshot: the changed
// entries and deleted keys of every state since the previous snapshot.
type delta struct {
	Changes map[string]map[uint64]any
	Deletes map[string][]uint64
}

// DeltaSnapshot serializes only the entries changed since the previous
// (full or delta) snapshot and resets the dirty sets — the §6.4
// incremental checkpoint: the dispatch cost depends on the state's delta
// rather than its absolute size.
func (s *Store) DeltaSnapshot() ([]byte, error) {
	d := delta{Changes: make(map[string]map[uint64]any), Deletes: make(map[string][]uint64)}
	for name, st := range s.states {
		for key := range st.dirty {
			if v, ok := st.data[key]; ok {
				m := d.Changes[name]
				if m == nil {
					m = make(map[uint64]any)
					d.Changes[name] = m
				}
				m[key] = v
			} else {
				d.Deletes[name] = append(d.Deletes[name], key)
			}
		}
		st.dirty = nil
	}
	out := appendMagic(make([]byte, 0, 64), magicKindDelta)
	out, err := appendStateSection(out, d.Changes)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(d.Deletes))
	for name := range d.Deletes {
		names = append(names, name)
	}
	sort.Strings(names)
	out = binary.AppendUvarint(out, uint64(len(names)))
	for _, name := range names {
		out = binary.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		keys := d.Deletes[name]
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out = binary.AppendUvarint(out, uint64(len(keys)))
		for _, k := range keys {
			out = binary.AppendUvarint(out, k)
		}
	}
	return out, nil
}

// ResetDirty clears dirty tracking without snapshotting (used right after
// a full snapshot, whose delta baseline is the full image).
func (s *Store) ResetDirty() {
	for _, st := range s.states {
		st.dirty = nil
	}
}

// ApplyDelta merges a DeltaSnapshot into the store — the snapshot-store
// side of incremental checkpointing, reconstructing the full image.
// Legacy gob deltas are detected and decoded like legacy full snapshots.
func (s *Store) ApplyDelta(b []byte) error {
	var d delta
	binaryFrame, err := checkMagic(b, magicKindDelta)
	if err != nil {
		return err
	}
	if binaryFrame {
		if d, err = readBinaryDelta(b[snapshotHeadLen:]); err != nil {
			return err
		}
	} else if d, err = decodeLegacyDelta(b); err != nil {
		return err
	}
	for name, changes := range d.Changes {
		st := s.Keyed(name)
		for key, v := range changes {
			st.data[key] = v
		}
	}
	for name, keys := range d.Deletes {
		st := s.Keyed(name)
		for _, key := range keys {
			delete(st.data, key)
		}
	}
	return nil
}
