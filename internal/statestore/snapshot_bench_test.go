package statestore_test

// Budget tests for the binary snapshot encoding (see
// internal/hotbench/snapshot.go for the scenario definitions): the
// checkpoint path must hold its near-zero per-entry allocation profile
// and its margin over the legacy gob encoding it replaced.

import (
	"testing"

	"clonos/internal/hotbench"
)

func snapshotScenarioByName(t testing.TB, name string) hotbench.SnapshotScenario {
	for _, sc := range hotbench.SnapshotScenarios() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("unknown snapshot scenario %q", name)
	return hotbench.SnapshotScenario{}
}

// TestSnapshotEncodeAllocBudget fences per-entry allocations of the full
// and delta snapshot paths. The binary frame appends typed encodings
// into one grown buffer, so steady-state cost is amortized slice growth
// plus the sort scratch — well under one allocation per entry (measured
// ~0.01 full, ~0.3 delta; the delta budget also absorbs its per-op
// change-map rebuild).
func TestSnapshotEncodeAllocBudget(t *testing.T) {
	cases := []struct {
		name   string
		budget float64 // max allocs per encoded entry
	}{
		{"snapshot-encode", 0.5},
		{"delta-encode", 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := snapshotScenarioByName(t, tc.name)
			op := sc.New()
			if _, err := op(); err != nil { // warm caches and buffers
				t.Fatal(err)
			}
			perRun := testing.AllocsPerRun(10, func() {
				if _, err := op(); err != nil {
					t.Fatal(err)
				}
			})
			perEntry := perRun / float64(sc.Entries)
			t.Logf("%s: %.3f allocs/entry (budget %.1f)", tc.name, perEntry, tc.budget)
			if perEntry > tc.budget {
				t.Errorf("%s: %.3f allocs/entry exceeds budget %.1f — the binary snapshot path regressed",
					tc.name, perEntry, tc.budget)
			}
		})
	}
}

// TestSnapshotEncodeBeatsGob pins the binary frame's margin over the
// legacy gob image on the same store (measured ~4x per entry at
// introduction; 2x is the regression floor).
func TestSnapshotEncodeBeatsGob(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	bench := func(name string) float64 {
		sc := snapshotScenarioByName(t, name)
		op := sc.New()
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := op(); err != nil {
					panic(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	binNs := bench("snapshot-encode")
	gobNs := bench("snapshot-gob")
	ratio := gobNs / binNs
	t.Logf("binary %.0f ns/op, gob %.0f ns/op: %.1fx", binNs, gobNs, ratio)
	if ratio < 2 {
		t.Errorf("binary snapshot only %.1fx faster than gob (want >= 2x) — typed snapshot encoding regressed", ratio)
	}
}
