package statestore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"clonos/internal/codec"
)

// Snapshot wire format (version 3, the binary frame):
//
//	magic    0x00 'C' ('S' full | 'D' delta | 'F' in-flight) version
//	full:    uvarint nStates, then per state (sorted by name):
//	         uvarint len(name) | name | uvarint nEntries,
//	         then per entry (sorted by key): uvarint key | framed value
//	delta:   the changes section in full-snapshot layout, then a deletes
//	         section: uvarint nStates, per state name | uvarint nKeys |
//	         sorted uvarint keys
//	in-flight: see inflight.go — the logged pre-barrier input of an
//	         unaligned checkpoint, one section per not-yet-barriered
//	         channel (deserializer prefix + captured messages).
//
// Values are codec.EncodeAnyFramed frames (type tag | uvarint len |
// payload), so registered types encode through the reflection-free tier
// and anything else falls back to a gob-tagged frame. The leading 0x00
// distinguishes the frame from legacy gob images: a gob stream begins
// with a message byte count, which is never zero, so Restore/ApplyDelta
// can decode pre-binary snapshots with the old reflective path.
//
// Version 3 added the 'F' in-flight kind; the 'S'/'D' layouts are
// unchanged, so readers accept version 2 images of those kinds (the
// committed legacy baseline) alongside version-3 ones.
const (
	snapshotVersion    = 3
	minSnapshotVersion = 2
	magicKindFull      = 'S'
	magicKindDelta     = 'D'
	magicKindInFlight  = 'F'
	legacyFirstByte    = 0x00
	snapshotHeadLen    = 4
	magicChecksByte1   = 'C'
)

func appendMagic(dst []byte, kind byte) []byte {
	return append(dst, legacyFirstByte, magicChecksByte1, kind, snapshotVersion)
}

// checkMagic validates the frame header for kind and returns whether b is
// a binary frame at all (false means legacy gob).
func checkMagic(b []byte, kind byte) (bool, error) {
	if len(b) == 0 || b[0] != legacyFirstByte {
		return false, nil
	}
	if len(b) < snapshotHeadLen || b[1] != magicChecksByte1 || b[2] != kind {
		return false, fmt.Errorf("statestore: malformed snapshot header % x", b[:min(len(b), snapshotHeadLen)])
	}
	if b[3] < minSnapshotVersion || b[3] > snapshotVersion {
		return false, fmt.Errorf("statestore: unsupported snapshot version %d (want %d..%d)", b[3], minSnapshotVersion, snapshotVersion)
	}
	return true, nil
}

// appendStateSection encodes a name→(key→value) section with sorted names
// and sorted keys, so identical logical state yields identical bytes (the
// audit fingerprint and guided replay both rely on byte determinism).
func appendStateSection(dst []byte, flat map[string]map[uint64]any) ([]byte, error) {
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	var err error
	for _, name := range names {
		data := flat[name]
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		keys := make([]uint64, 0, len(data))
		for k := range data {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, k)
			if dst, err = codec.EncodeAnyFramed(dst, data[k]); err != nil {
				return dst, fmt.Errorf("statestore: encode %s[%d]: %w", name, k, err)
			}
		}
	}
	return dst, nil
}

// readStateSection decodes a section written by appendStateSection,
// returning the bytes consumed.
func readStateSection(b []byte) (map[string]map[uint64]any, int, error) {
	nStates, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, codec.ErrShortBuffer
	}
	i := w
	out := make(map[string]map[uint64]any, nStates)
	for s := uint64(0); s < nStates; s++ {
		nameLen, w := binary.Uvarint(b[i:])
		if w <= 0 || uint64(len(b)-i-w) < nameLen {
			return nil, 0, codec.ErrShortBuffer
		}
		i += w
		name := string(b[i : i+int(nameLen)])
		i += int(nameLen)
		nEntries, w := binary.Uvarint(b[i:])
		if w <= 0 {
			return nil, 0, codec.ErrShortBuffer
		}
		i += w
		data := make(map[uint64]any, nEntries)
		for e := uint64(0); e < nEntries; e++ {
			key, w := binary.Uvarint(b[i:])
			if w <= 0 {
				return nil, 0, codec.ErrShortBuffer
			}
			i += w
			v, used, err := codec.DecodeAnyFramed(b[i:])
			if err != nil {
				return nil, 0, fmt.Errorf("statestore: decode %s[%d]: %w", name, key, err)
			}
			i += used
			data[key] = v
		}
		out[name] = data
	}
	return out, i, nil
}

// readBinaryDelta decodes the body (after the header) of a version-2
// delta frame.
func readBinaryDelta(b []byte) (delta, error) {
	var d delta
	changes, used, err := readStateSection(b)
	if err != nil {
		return d, err
	}
	d.Changes = changes
	i := used
	nStates, w := binary.Uvarint(b[i:])
	if w <= 0 {
		return d, codec.ErrShortBuffer
	}
	i += w
	d.Deletes = make(map[string][]uint64, nStates)
	for s := uint64(0); s < nStates; s++ {
		nameLen, w := binary.Uvarint(b[i:])
		if w <= 0 || uint64(len(b)-i-w) < nameLen {
			return d, codec.ErrShortBuffer
		}
		i += w
		name := string(b[i : i+int(nameLen)])
		i += int(nameLen)
		nKeys, w := binary.Uvarint(b[i:])
		if w <= 0 {
			return d, codec.ErrShortBuffer
		}
		i += w
		keys := make([]uint64, 0, nKeys)
		for k := uint64(0); k < nKeys; k++ {
			key, w := binary.Uvarint(b[i:])
			if w <= 0 {
				return d, codec.ErrShortBuffer
			}
			i += w
			keys = append(keys, key)
		}
		d.Deletes[name] = keys
	}
	if i != len(b) {
		return d, fmt.Errorf("statestore: apply delta: %w", codec.ErrTrailingBytes)
	}
	return d, nil
}

// decodeLegacySnapshot decodes a pre-binary (gob) full snapshot image.
func decodeLegacySnapshot(b []byte) (map[string]map[uint64]any, error) {
	var flat map[string]map[uint64]any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&flat); err != nil {
		return nil, fmt.Errorf("statestore: restore: %w", err)
	}
	return flat, nil
}

// decodeLegacyDelta decodes a pre-binary (gob) delta image.
func decodeLegacyDelta(b []byte) (delta, error) {
	var d delta
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&d); err != nil {
		return d, fmt.Errorf("statestore: apply delta: %w", err)
	}
	return d, nil
}
