package statestore

import (
	"encoding/binary"
	"fmt"

	"clonos/internal/codec"
	"clonos/internal/types"
)

// In-flight section wire format (version 3, kind 'F'):
//
//	magic    0x00 'C' 'F' 3
//	uvarint nChannels, then per channel:
//	  uvarint edge | uvarint from | uvarint to       (the ChannelID)
//	  uvarint len(prefix) | prefix                   (deserializer tail)
//	  uvarint nMsgs, then per message:
//	    uvarint seq | uvarint epoch |
//	    uvarint len(data) | data | uvarint len(delta) | delta
//
// This is the logged pre-barrier input of an unaligned checkpoint: for
// every channel whose barrier had not arrived when the task snapshotted,
// the partial element bytes already inside the deserializer (prefix) and
// every pre-barrier message consumed between the snapshot and that
// channel's barrier. Restore feeds the prefix back into the channel's
// deserializer and preloads the messages ahead of live replay, so the
// restored task re-consumes exactly the bytes the checkpoint covered.

// InFlightMessage is one captured in-flight buffer: the original seq and
// epoch stamps plus private copies of the payload and the piggybacked
// determinant delta.
type InFlightMessage struct {
	Seq   uint64
	Epoch types.EpochID
	Data  []byte
	Delta []byte
}

// InFlightChannel is the logged input of one not-yet-barriered channel.
type InFlightChannel struct {
	Channel types.ChannelID
	// Prefix is the deserializer's pending tail at snapshot time: the
	// head bytes of an element that straddled the last pre-snapshot
	// message boundary.
	Prefix []byte
	// Msgs are the pre-barrier messages consumed after the snapshot, in
	// delivery order, ending with the message that carried the barrier
	// (or end-of-stream) for this channel.
	Msgs []InFlightMessage
}

// EncodeInFlight serializes the logged channels as a version-3 'F' frame.
func EncodeInFlight(chans []InFlightChannel) []byte {
	size := snapshotHeadLen + 8
	for i := range chans {
		size += 32 + len(chans[i].Prefix)
		for j := range chans[i].Msgs {
			size += 24 + len(chans[i].Msgs[j].Data) + len(chans[i].Msgs[j].Delta)
		}
	}
	out := appendMagic(make([]byte, 0, size), magicKindInFlight)
	out = binary.AppendUvarint(out, uint64(len(chans)))
	for i := range chans {
		ch := &chans[i]
		out = binary.AppendUvarint(out, uint64(uint32(ch.Channel.Edge)))
		out = binary.AppendUvarint(out, uint64(uint32(ch.Channel.From)))
		out = binary.AppendUvarint(out, uint64(uint32(ch.Channel.To)))
		out = binary.AppendUvarint(out, uint64(len(ch.Prefix)))
		out = append(out, ch.Prefix...)
		out = binary.AppendUvarint(out, uint64(len(ch.Msgs)))
		for j := range ch.Msgs {
			m := &ch.Msgs[j]
			out = binary.AppendUvarint(out, m.Seq)
			out = binary.AppendUvarint(out, uint64(m.Epoch))
			out = binary.AppendUvarint(out, uint64(len(m.Data)))
			out = append(out, m.Data...)
			out = binary.AppendUvarint(out, uint64(len(m.Delta)))
			out = append(out, m.Delta...)
		}
	}
	return out
}

// DecodeInFlight parses a version-3 'F' frame. Byte slices in the result
// alias b; callers that outlive b must copy. A truncated or corrupt
// section is rejected with an error — restore must never silently drop
// logged input.
func DecodeInFlight(b []byte) ([]InFlightChannel, error) {
	if len(b) < snapshotHeadLen || b[0] != legacyFirstByte || b[1] != magicChecksByte1 || b[2] != magicKindInFlight {
		return nil, fmt.Errorf("statestore: malformed in-flight section header % x", b[:min(len(b), snapshotHeadLen)])
	}
	if b[3] != snapshotVersion {
		return nil, fmt.Errorf("statestore: unsupported in-flight section version %d (want %d)", b[3], snapshotVersion)
	}
	i := snapshotHeadLen
	nChans, w := binary.Uvarint(b[i:])
	if w <= 0 {
		return nil, fmt.Errorf("statestore: in-flight section: %w", codec.ErrShortBuffer)
	}
	i += w
	readBytes := func() ([]byte, error) {
		n, w := binary.Uvarint(b[i:])
		if w <= 0 || uint64(len(b)-i-w) < n {
			return nil, fmt.Errorf("statestore: in-flight section: %w", codec.ErrShortBuffer)
		}
		i += w
		out := b[i : i+int(n)]
		i += int(n)
		return out, nil
	}
	readUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(b[i:])
		if w <= 0 {
			return 0, fmt.Errorf("statestore: in-flight section: %w", codec.ErrShortBuffer)
		}
		i += w
		return v, nil
	}
	out := make([]InFlightChannel, 0, nChans)
	for c := uint64(0); c < nChans; c++ {
		var ch InFlightChannel
		edge, err := readUvarint()
		if err != nil {
			return nil, err
		}
		from, err := readUvarint()
		if err != nil {
			return nil, err
		}
		to, err := readUvarint()
		if err != nil {
			return nil, err
		}
		ch.Channel = types.ChannelID{Edge: types.EdgeID(int32(uint32(edge))), From: int32(uint32(from)), To: int32(uint32(to))}
		if ch.Prefix, err = readBytes(); err != nil {
			return nil, err
		}
		nMsgs, err := readUvarint()
		if err != nil {
			return nil, err
		}
		ch.Msgs = make([]InFlightMessage, 0, nMsgs)
		for m := uint64(0); m < nMsgs; m++ {
			var msg InFlightMessage
			if msg.Seq, err = readUvarint(); err != nil {
				return nil, err
			}
			epoch, err := readUvarint()
			if err != nil {
				return nil, err
			}
			msg.Epoch = types.EpochID(epoch)
			if msg.Data, err = readBytes(); err != nil {
				return nil, err
			}
			if msg.Delta, err = readBytes(); err != nil {
				return nil, err
			}
			ch.Msgs = append(ch.Msgs, msg)
		}
		out = append(out, ch)
	}
	if i != len(b) {
		return nil, fmt.Errorf("statestore: in-flight section: %w", codec.ErrTrailingBytes)
	}
	return out, nil
}
