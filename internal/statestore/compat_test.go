package statestore

// Back-compat and framing tests for the binary snapshot encoding: legacy
// gob images (full and delta) must still restore, the version byte must
// reject foreign frames with a pinned message, and the binary image must
// be byte-deterministic and semantically identical to what the legacy
// encoding preserved.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// populate fills a store with a mix of shapes across two named states.
func populate(s *Store) {
	ks := s.Keyed("counts")
	for i := uint64(0); i < 50; i++ {
		ks.Put(i, int64(i*3))
	}
	mixed := s.Keyed("mixed")
	mixed.Put(1, "a string")
	mixed.Put(2, []byte{9, 8, 7})
	mixed.Put(3, 2.5)
	mixed.Put(4, []any{int64(1), "two"})
	mixed.Put(5, nil)
}

// legacyGobSnapshot builds a full snapshot the way the pre-binary
// Snapshot implementation did.
func legacyGobSnapshot(t *testing.T, s *Store) []byte {
	t.Helper()
	flat := make(map[string]map[uint64]any)
	for _, name := range s.Names() {
		m := make(map[uint64]any)
		s.Keyed(name).Range(func(key uint64, v any) bool {
			m[key] = v
			return true
		})
		flat[name] = m
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if !reflect.DeepEqual(a.Names(), b.Names()) {
		t.Fatalf("state names differ: %v vs %v", a.Names(), b.Names())
	}
	for _, name := range a.Names() {
		ka, kb := a.Keyed(name), b.Keyed(name)
		if !reflect.DeepEqual(ka.SortedKeys(), kb.SortedKeys()) {
			t.Fatalf("%s: keys differ", name)
		}
		for _, key := range ka.SortedKeys() {
			if !reflect.DeepEqual(ka.Get(key), kb.Get(key)) {
				t.Fatalf("%s[%d]: %#v vs %#v", name, key, ka.Get(key), kb.Get(key))
			}
		}
	}
}

// TestRestoreLegacyGobSnapshot proves a pre-binary image still restores
// to the identical store through the gob fallback path.
func TestRestoreLegacyGobSnapshot(t *testing.T) {
	src := NewStore()
	populate(src)

	legacy := NewStore()
	if err := legacy.Restore(legacyGobSnapshot(t, src)); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
	binSnap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	viaBinary := NewStore()
	if err := viaBinary.Restore(binSnap); err != nil {
		t.Fatalf("binary restore: %v", err)
	}
	storesEqual(t, src, legacy)
	storesEqual(t, legacy, viaBinary)
}

// TestApplyLegacyGobDelta proves a pre-binary delta image still applies.
func TestApplyLegacyGobDelta(t *testing.T) {
	d := delta{
		Changes: map[string]map[uint64]any{"s": {1: int64(10), 2: "x"}},
		Deletes: map[string][]uint64{"s": {3}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Keyed("s").Put(3, int64(99))
	if err := s.ApplyDelta(buf.Bytes()); err != nil {
		t.Fatalf("legacy delta apply: %v", err)
	}
	ks := s.Keyed("s")
	if ks.Get(1) != int64(10) || ks.Get(2) != "x" || ks.Get(3) != nil {
		t.Fatalf("legacy delta applied wrong: %v %v %v", ks.Get(1), ks.Get(2), ks.Get(3))
	}
}

// TestSnapshotVersionRejected pins the rejection message for frames from
// a future (or corrupted) snapshot version — they must error, never
// misdecode.
func TestSnapshotVersionRejected(t *testing.T) {
	src := NewStore()
	populate(src)
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap[3] = snapshotVersion + 1 // bump the version byte
	s := NewStore()
	err = s.Restore(snap)
	if err == nil {
		t.Fatal("future-version snapshot restored without error")
	}
	want := fmt.Sprintf("statestore: unsupported snapshot version %d (want %d..%d)", snapshotVersion+1, minSnapshotVersion, snapshotVersion)
	if err.Error() != want {
		t.Fatalf("rejection message %q, want pinned %q", err.Error(), want)
	}
}

// TestSnapshotPriorVersionAccepted proves a version-2 image (the layout is
// unchanged; only the 'F' in-flight kind was added in 3) still restores —
// the committed legacy baseline must keep loading.
func TestSnapshotPriorVersionAccepted(t *testing.T) {
	src := NewStore()
	populate(src)
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap[3] = minSnapshotVersion // rewrite the header to the oldest accepted version
	s := NewStore()
	if err := s.Restore(snap); err != nil {
		t.Fatalf("version-%d snapshot rejected: %v", minSnapshotVersion, err)
	}
	storesEqual(t, src, s)
}

// TestSnapshotMalformedHeaderRejected covers a 0x00-leading buffer that
// is not a valid frame.
func TestSnapshotMalformedHeaderRejected(t *testing.T) {
	s := NewStore()
	if err := s.Restore([]byte{0x00, 'X', 'X', 2, 0}); err == nil ||
		!strings.Contains(err.Error(), "malformed snapshot header") {
		t.Fatalf("malformed header not rejected: %v", err)
	}
	if err := s.ApplyDelta([]byte{0x00, 'C', 'S', 2, 0}); err == nil {
		t.Fatal("full-snapshot magic accepted as delta")
	}
}

// TestSnapshotDeterministic pins byte determinism of the binary frame:
// equal logical state must produce identical bytes (audit fingerprints
// and guided replay compare encodings).
func TestSnapshotDeterministic(t *testing.T) {
	a, b := NewStore(), NewStore()
	populate(a)
	populate(b)
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("equal stores produced different snapshot bytes")
	}
}

// TestBinaryDeltaRoundTrip covers the new frame end to end, including
// deletes and the nil value tag.
func TestBinaryDeltaRoundTrip(t *testing.T) {
	src := NewStore()
	populate(src)
	src.ResetDirty()
	src.Keyed("counts").Put(7, int64(777))
	src.Keyed("counts").Delete(8)
	src.Keyed("mixed").Put(5, nil) // re-dirty the nil entry
	d, err := src.DeltaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(d) < snapshotHeadLen || d[0] != 0x00 || d[2] != magicKindDelta {
		t.Fatalf("delta frame header wrong: % x", d[:4])
	}
	dst := NewStore()
	populate(dst)
	if err := dst.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if dst.Keyed("counts").Get(7) != int64(777) {
		t.Fatalf("change not applied: %v", dst.Keyed("counts").Get(7))
	}
	if dst.Keyed("counts").Get(8) != nil {
		t.Fatal("delete not applied")
	}
	if v := dst.Keyed("mixed").Get(5); v != nil {
		t.Fatalf("nil value came back as %#v", v)
	}
}
