package synthetic

import (
	"testing"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

func TestBuildShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 4
	g := Build(kafkasim.NewTopic("s", 2), kafkasim.NewSinkTopic(true), cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// source + depth stages + sink
	if len(g.Vertices) != cfg.Depth+2 {
		t.Fatalf("vertices = %d", len(g.Vertices))
	}
	if g.Depth() != cfg.Depth+1 {
		t.Fatalf("graph depth = %d", g.Depth())
	}
}

func TestPipelineDeliversAllRecords(t *testing.T) {
	cfg := DefaultConfig()
	topic := kafkasim.NewTopic("s", 2)
	sink := kafkasim.NewSinkTopic(true)
	const n = 2000
	FillDeterministic(topic, cfg, n, 1000, 1)
	g := Build(topic, sink, cfg)
	jcfg := job.DefaultConfig()
	jcfg.CheckpointInterval = 200 * time.Millisecond
	r, err := job.NewRuntime(g, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	if sink.Len() != n {
		t.Fatalf("sink = %d, want %d", sink.Len(), n)
	}
}

func TestPipelineSurvivesMidStageFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 3
	topic := kafkasim.NewTopic("s", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := Build(topic, sink, cfg)
	jcfg := job.DefaultConfig()
	jcfg.CheckpointInterval = 200 * time.Millisecond
	jcfg.HeartbeatTimeout = 250 * time.Millisecond
	r, err := job.NewRuntime(g, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	const n = 5000
	gen := Drive(topic, cfg, 8000, n)
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 8*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 1}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	if sink.Len() != n {
		t.Fatalf("sink = %d, want %d (exactly-once)", sink.Len(), n)
	}
}

func TestStageStateGrows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 1
	cfg.Keys = 8
	cfg.StateBytesPerKey = 64
	topic := kafkasim.NewTopic("s", 1)
	sink := kafkasim.NewSinkTopic(true)
	FillDeterministic(topic, cfg, 100, 0, 1)
	g := Build(topic, sink, cfg)
	r, err := job.NewRuntime(g, job.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if !r.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	if sink.Len() != 100 {
		t.Fatalf("sink = %d", sink.Len())
	}
}
