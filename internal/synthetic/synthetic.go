// Package synthetic builds the configurable workload of §7.4–§7.5: a
// linear pipeline of a given depth and parallelism whose stages hold
// per-key state of a configurable size, used for the multiple/concurrent
// failure experiments, the memory/spill study, and the DSD ablation.
package synthetic

import (
	"encoding/binary"
	"time"

	"fmt"

	"clonos/internal/codec"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/operator"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// Config shapes the synthetic job.
type Config struct {
	// Parallelism of every stage (the paper used 5).
	Parallelism int
	// Depth is the number of stateful middle stages (graph depth is
	// Depth+2 counting source and sink; the paper used 5).
	Depth int
	// Keys is the key cardinality.
	Keys uint64
	// StateBytesPerKey is each stage's per-key state payload (the
	// paper's 100 MB per operator, scaled down).
	StateBytesPerKey int
	// CPUWorkIters adds per-record computation.
	CPUWorkIters int
}

// DefaultConfig returns a scaled-down version of the paper's setup.
func DefaultConfig() Config {
	return Config{Parallelism: 2, Depth: 3, Keys: 64, StateBytesPerKey: 1024, CPUWorkIters: 0}
}

// stageState is one key's state in a synthetic stage.
type stageState struct {
	Count   int64
	Payload []byte
}

func init() {
	statestore.Register(stageState{})
	codec.RegisterType(stageState{}, stageStateCodec{})
}

// stageStateCodec is the typed snapshot codec for stageState: the payload
// dominates the synthetic state footprint, so snapshot encoding must not
// pay gob's per-byte reflection walk over it.
type stageStateCodec struct{}

// EncodeAppend implements codec.Codec.
func (stageStateCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	s, ok := v.(stageState)
	if !ok {
		return dst, fmt.Errorf("synthetic: stageStateCodec got %T", v)
	}
	dst = binary.AppendVarint(dst, s.Count)
	dst = binary.AppendUvarint(dst, uint64(len(s.Payload)))
	return append(dst, s.Payload...), nil
}

// Decode implements codec.Codec.
func (stageStateCodec) Decode(b []byte) (any, error) {
	var s stageState
	count, n := binary.Varint(b)
	if n <= 0 {
		return nil, codec.ErrShortBuffer
	}
	s.Count = count
	plen, w := binary.Uvarint(b[n:])
	if w <= 0 || uint64(len(b)-n-w) < plen {
		return nil, codec.ErrShortBuffer
	}
	if n+w+int(plen) != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	if plen > 0 {
		s.Payload = make([]byte, plen)
		copy(s.Payload, b[n+w:])
	}
	return s, nil
}

// Build constructs the synthetic pipeline over an int64 record topic.
func Build(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, cfg Config) *job.Graph {
	g := job.NewGraph()
	src := g.AddVertex("src", cfg.Parallelism, &operator.KafkaSource{
		SourceName:     "syn",
		Topic:          topic,
		WatermarkEvery: 64,
	})
	prev := src
	for d := 0; d < cfg.Depth; d++ {
		name := fmt.Sprintf("stage%d", d)
		stage := g.AddVertex(name, cfg.Parallelism, nil, workOperator(name, cfg))
		// Hash shuffle between every stage, as in the paper's synthetic
		// setup (no operator fusion: every stage pays network and
		// determinant-sharing costs). The partition function becomes the
		// downstream element key, so it must fold the record value back
		// into the configured key space — keying by the raw value would
		// give every record its own key and grow each stage's "per-key"
		// state by StateBytesPerKey on every record, without bound.
		keys := cfg.Keys
		if keys == 0 {
			keys = 1
		}
		g.Connect(prev, stage, job.PartitionHash, func(v any) uint64 { return uint64(v.(int64)) % keys }, codec.Int64Codec{})
		prev = stage
	}
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(prev, sinkV, job.PartitionHash, nil, codec.Int64Codec{})
	return g
}

// workOperator updates per-key state and passes the record on.
func workOperator(name string, cfg Config) operator.Operator {
	return operator.Map(name, func(ctx operator.Context, e types.Element) (any, bool, error) {
		st := ctx.State()
		s, _ := st.Get(e.Key).(stageState)
		if s.Payload == nil && cfg.StateBytesPerKey > 0 {
			s.Payload = make([]byte, cfg.StateBytesPerKey)
		}
		s.Count++
		if len(s.Payload) > 0 {
			s.Payload[int(s.Count)%len(s.Payload)]++
		}
		st.Put(e.Key, s)
		v := e.Value.(int64)
		for i := 0; i < cfg.CPUWorkIters; i++ {
			v = v*6364136223846793005 + 1442695040888963407
		}
		if cfg.CPUWorkIters > 0 {
			// Keep the routing key stable regardless of the mixing.
			v = e.Value.(int64)
		}
		return v, true, nil
	})
}

// Drive produces limit int64 records (limit <= 0: unbounded) at the given
// rate, keyed round-robin over cfg.Keys, timestamped with wall time.
func Drive(topic *kafkasim.Topic, cfg Config, rate int, limit int64) *kafkasim.Generator {
	return kafkasim.NewGenerator(topic, rate, func(i int64) (kafkasim.Record, bool) {
		if limit > 0 && i >= limit {
			return kafkasim.Record{}, false
		}
		return kafkasim.Record{Key: uint64(i) % cfg.Keys, Ts: nowMs(), Value: i}, true
	})
}

// FillDeterministic synchronously loads n records with event times spaced
// stepMs apart, for reproducible finite tests.
func FillDeterministic(topic *kafkasim.Topic, cfg Config, n int64, baseTs, stepMs int64) {
	for i := int64(0); i < n; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i) % cfg.Keys, Ts: baseTs + i*stepMs, Value: i})
	}
	topic.Close()
}

// nowMs returns the wall clock in Unix milliseconds.
func nowMs() int64 { return time.Now().UnixMilli() }
