// Package faultinject turns chaos testing into a reproducible bug-hunting
// tool: a registry of named crash points instrumented across the protocol
// layers (task main loop, barrier alignment, the snapshot-persist→ack
// window, the local-recovery step sequence, in-flight replay) and a
// deterministic schedule driver that crashes chosen victims at exactly
// those points.
//
// A crash point is a zero-cost no-op unless an Injector is armed: the
// engine calls Hit(point, task) at each point, and the injector fires the
// armed kills whose (point, victim, occurrence) match. Because firing is
// keyed to execution structure — "the 3rd time task v2[0] reaches
// replay/step" — rather than wall-clock time, a schedule string replays
// the same failure pattern on every run, and a failing chaos run shrinks
// to a one-line reproducer.
//
// Point names deliberately mirror the obs tracer's recovery-span mark
// vocabulary (standby-activated, determinants-retrieved,
// network-reconfigured, replay-done) so flight-recorder traces and crash
// schedules describe the same protocol timeline.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Crash-point names. Each constant is referenced from exactly the code
// location it names; Points() lists them all for sweep enumeration.
const (
	// Task main loop and mailbox.
	PointTaskLoop      = "task/loop"           // top of the main-thread loop
	PointTimerFiring   = "task/timer-firing"   // processing-time timer delivery, before the TIMER determinant is logged
	PointCheckpointRPC = "task/checkpoint-rpc" // checkpoint-trigger RPC delivery, before the RPC determinant is logged
	PointSourceEmit    = "source/emit"         // before emitting one source element

	// Barrier alignment (task.handleBarrier).
	PointAlignStart    = "align/start"    // a barrier arrived, before any channel blocks
	PointAlignBlocked  = "align/blocked"  // a channel was just blocked for alignment
	PointAlignComplete = "align/complete" // all barriers in, before the snapshot

	// Unaligned checkpointing (task.beginUnalignedCapture / captureMessage
	// / sealCapture): the overload-tolerant path snapshots on the first
	// barrier and logs pre-barrier input instead of gating channels, so
	// these windows bracket a snapshot that is visible but not yet sealed.
	PointUnalignedSnapshot = "unaligned/snapshot" // first barrier arrived, before the immediate snapshot
	PointUnalignedCapture  = "unaligned/capture"  // one pre-barrier message was just logged into the capture
	PointUnalignedSeal     = "unaligned/seal"     // every pending barrier drained, before the sealed snapshot persists

	// Snapshot and the persist→ack window (task.snapshot / Runtime.onSnapshot).
	PointSnapshotPreBarrier = "snapshot/pre-barrier"        // before the barrier is forwarded downstream
	PointSnapshotPreState   = "snapshot/pre-state"          // barrier forwarded and epochs rolled, before state capture
	PointSnapshotPrePersist = "snapshot/pre-persist"        // snapshot built, before it reaches the store
	PointPersistAckWindow   = "snapshot/persist-ack-window" // snapshot persisted, before the coordinator ack

	// Causally guided replay (task.runReplay).
	PointReplayStart = "replay/start" // determinant cursor installed, before the first replayed step
	PointReplayStep  = "replay/step"  // before consuming one determinant (use #skip to land mid-replay)
	PointReplayDone  = "replay/done"  // log exhausted, before the replay-done mark

	// Local-recovery protocol windows (Runtime.localRecover): the victim
	// here is the recovering task, so these model a standby/replacement
	// dying between named recovery phases — the §5 "failures during
	// recovery" cases.
	PointRecoveryPreActivate  = "recovery/pre-activate"           // before checkpoint restore
	PointRecoveryActivated    = "recovery/standby-activated"      // restored, before endpoint rebind
	PointRecoveryRebind       = "recovery/rebind"                 // after rebinding one downstream endpoint (use #skip for middles)
	PointRecoveryDedupSampled = "recovery/dedup-sampled"          // all dedup floors sampled, before determinant extraction
	PointRecoveryDeterminants = "recovery/determinants-retrieved" // determinants merged, before network reconfiguration
	PointRecoveryNetwork      = "recovery/network-reconfigured"   // fresh endpoints installed, before the task is registered
	PointRecoveryPreStart     = "recovery/pre-start"              // registered, before threads launch
	PointRecoveryServeReplay  = "recovery/pre-serve-replay"       // running, before deferred replay requests are served

	// In-flight replay serving (outChannel.replayLoop): the victim is the
	// task serving a downstream recovery, crashing mid-retransmission.
	PointServeReplayEntry = "channel/serve-replay"

	// Global rollback (Runtime.globalRestart): a rebuilt task crashes
	// immediately after the full-topology restart deployed it.
	PointGlobalRebuilt = "global/post-rebuild"
)

// PointKind classifies how a crash point is reached, which the sweep uses
// to decide whether a schedule needs a priming failure first.
type PointKind int

const (
	// KindDirect points fire during normal operation on any task.
	KindDirect PointKind = iota
	// KindSource points fire only on source tasks.
	KindSource
	// KindAlign points fire only on tasks with two or more input channels.
	KindAlign
	// KindUnaligned points fire only on multi-input tasks running with
	// unaligned checkpoints armed; the sweep driver arms the mode when a
	// schedule carries this kind.
	KindUnaligned
	// KindTimer points fire only on tasks with processing-time timers.
	KindTimer
	// KindRecovery points fire while a task is being recovered, so a
	// schedule must prime them with an earlier kill of the same victim.
	KindRecovery
	// KindServe points fire on a task serving an in-flight replay to a
	// recovering downstream; primed by killing the downstream.
	KindServe
	// KindGlobal points fire during a global rollback restart.
	KindGlobal
)

// PointInfo describes one registered crash point.
type PointInfo struct {
	Name string
	Kind PointKind
}

// points is the canonical registry, in sweep order.
var points = []PointInfo{
	{PointTaskLoop, KindDirect},
	{PointTimerFiring, KindTimer},
	{PointCheckpointRPC, KindSource},
	{PointSourceEmit, KindSource},
	{PointAlignStart, KindAlign},
	{PointAlignBlocked, KindAlign},
	{PointAlignComplete, KindAlign},
	{PointUnalignedSnapshot, KindUnaligned},
	{PointUnalignedCapture, KindUnaligned},
	{PointUnalignedSeal, KindUnaligned},
	{PointSnapshotPreBarrier, KindDirect},
	{PointSnapshotPreState, KindDirect},
	{PointSnapshotPrePersist, KindDirect},
	{PointPersistAckWindow, KindDirect},
	{PointReplayStart, KindRecovery},
	{PointReplayStep, KindRecovery},
	{PointReplayDone, KindRecovery},
	{PointRecoveryPreActivate, KindRecovery},
	{PointRecoveryActivated, KindRecovery},
	{PointRecoveryRebind, KindRecovery},
	{PointRecoveryDedupSampled, KindRecovery},
	{PointRecoveryDeterminants, KindRecovery},
	{PointRecoveryNetwork, KindRecovery},
	{PointRecoveryPreStart, KindRecovery},
	{PointRecoveryServeReplay, KindRecovery},
	{PointServeReplayEntry, KindServe},
	{PointGlobalRebuilt, KindGlobal},
}

var pointSet = func() map[string]PointInfo {
	m := make(map[string]PointInfo, len(points))
	for _, p := range points {
		m[p.Name] = p
	}
	return m
}()

// MirroredMarks pairs crash points with the obs tracer mark emitted at
// the same protocol step, so chaos runs line up with recovery-span
// traces: crashing at the point and seeing the mark are two views of one
// protocol location. The crashpoint analyzer (clonos-vet) keeps the pair
// from drifting — the mark string must stay derivable from the point
// name, and must still be emitted somewhere in non-test code.
var MirroredMarks = map[string]string{
	PointRecoveryActivated:    "standby-activated",
	PointRecoveryDeterminants: "determinants-retrieved",
	PointRecoveryNetwork:      "network-reconfigured",
	PointReplayDone:           "replay-done",
}

// Points returns the registered crash points in sweep order.
func Points() []PointInfo { return append([]PointInfo(nil), points...) }

// LookupPoint returns the registry entry for a point name.
func LookupPoint(name string) (PointInfo, bool) {
	p, ok := pointSet[name]
	return p, ok
}

// Kill is one armed crash: when the Skip+1-th matching (Point, Victim)
// hit occurs, Target (the victim itself when empty) is crashed.
type Kill struct {
	Point  string // crash-point name (must be registered)
	Victim string // task whose execution hits the point; "*" matches any
	Target string // task to crash when fired; "" crashes the hitting task
	Skip   int    // matching occurrences to let pass before firing
}

// String renders the kill in schedule grammar: point@victim[#skip][->target].
func (k Kill) String() string {
	var b strings.Builder
	b.WriteString(k.Point)
	b.WriteByte('@')
	b.WriteString(k.Victim)
	if k.Skip > 0 {
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(k.Skip))
	}
	if k.Target != "" {
		b.WriteString("->")
		b.WriteString(k.Target)
	}
	return b.String()
}

// Schedule is an ordered set of kills; order is cosmetic (firing order is
// decided by execution), but String/Parse preserve it so a schedule
// round-trips byte-identically.
type Schedule struct {
	Kills []Kill
}

// String renders the schedule as "kill=...;kill=..." — the replayable
// artifact format accepted by Parse and the -schedule test flag.
func (s Schedule) String() string {
	parts := make([]string, 0, len(s.Kills))
	for _, k := range s.Kills {
		parts = append(parts, "kill="+k.String())
	}
	return strings.Join(parts, ";")
}

// HasKind reports whether any kill targets a point of the given kind —
// the test driver uses this to pick a suitable pipeline and mode.
func (s Schedule) HasKind(kind PointKind) bool {
	for _, k := range s.Kills {
		if p, ok := pointSet[k.Point]; ok && p.Kind == kind {
			return true
		}
	}
	return false
}

// Parse decodes a schedule produced by Schedule.String. Unknown point
// names are rejected so a typo cannot silently become a no-op schedule.
func Parse(in string) (Schedule, error) {
	var s Schedule
	in = strings.TrimSpace(in)
	if in == "" {
		return s, nil
	}
	for _, part := range strings.Split(in, ";") {
		part = strings.TrimSpace(part)
		body, ok := strings.CutPrefix(part, "kill=")
		if !ok {
			return Schedule{}, fmt.Errorf("faultinject: entry %q: want kill=point@victim[#skip][->target]", part)
		}
		var k Kill
		body, k.Target, _ = cutLast(body, "->")
		point, rest, ok := strings.Cut(body, "@")
		if !ok {
			return Schedule{}, fmt.Errorf("faultinject: entry %q: missing @victim", part)
		}
		k.Point = point
		if victim, skip, ok := strings.Cut(rest, "#"); ok {
			n, err := strconv.Atoi(skip)
			if err != nil || n < 0 {
				return Schedule{}, fmt.Errorf("faultinject: entry %q: bad skip %q", part, skip)
			}
			k.Victim, k.Skip = victim, n
		} else {
			k.Victim = rest
		}
		if _, ok := pointSet[k.Point]; !ok {
			return Schedule{}, fmt.Errorf("faultinject: unknown crash point %q", k.Point)
		}
		if k.Victim == "" {
			return Schedule{}, fmt.Errorf("faultinject: entry %q: empty victim", part)
		}
		s.Kills = append(s.Kills, k)
	}
	return s, nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):], true
	}
	return s, "", false
}

// Fired records one kill that went off.
type Fired struct {
	Kill   Kill
	Task   string // the task that hit the point
	Target string // the task that was crashed
}

// Injector matches crash-point hits against an armed schedule. Hit is
// called from task main threads and the recovery worker; all methods are
// safe for concurrent use. Each armed kill fires at most once.
type Injector struct {
	mu     sync.Mutex
	kills  []killState
	fired  []Fired
	killFn func(task string)
}

type killState struct {
	k     Kill
	left  int
	fired bool
}

// New builds an injector armed with the schedule.
func New(s Schedule) *Injector {
	in := &Injector{}
	for _, k := range s.Kills {
		in.kills = append(in.kills, killState{k: k, left: k.Skip})
	}
	return in
}

// OnKill installs the callback used to crash a target other than the
// hitting task (the runtime routes it to the task's crash path). It is
// invoked without the injector's lock held.
func (in *Injector) OnKill(fn func(task string)) {
	in.mu.Lock()
	in.killFn = fn
	in.mu.Unlock()
}

// Hit reports a crash point reached by task. It returns true when an
// armed kill fired against the hitting task itself — the caller must then
// crash that task at this exact point. Kills aimed at a different target
// are dispatched through the OnKill callback and return false so the
// hitting task keeps running.
func (in *Injector) Hit(point, task string) bool {
	in.mu.Lock()
	self := false
	var targets []string
	for i := range in.kills {
		ks := &in.kills[i]
		if ks.fired || ks.k.Point != point {
			continue
		}
		if ks.k.Victim != "*" && ks.k.Victim != task {
			continue
		}
		if ks.left > 0 {
			ks.left--
			continue
		}
		ks.fired = true
		target := ks.k.Target
		if target == "" || target == task {
			self = true
			target = task
		} else {
			targets = append(targets, target)
		}
		in.fired = append(in.fired, Fired{Kill: ks.k, Task: task, Target: target})
	}
	fn := in.killFn
	in.mu.Unlock()
	for _, t := range targets {
		if fn != nil {
			fn(t)
		}
	}
	return self
}

// Fired returns the kills that went off, in firing order.
func (in *Injector) Fired() []Fired {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fired(nil), in.fired...)
}

// Unfired returns armed kills that never went off — a sweep diagnostic:
// the schedule named a point its run never reached.
func (in *Injector) Unfired() []Kill {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Kill
	for _, ks := range in.kills {
		if !ks.fired {
			out = append(out, ks.k)
		}
	}
	return out
}

// SweepPlan names the victims a sweep enumerates against. Victims are
// task-ID strings as produced by types.TaskID.String (e.g. "v2[0]").
type SweepPlan struct {
	// Victims receive one schedule per direct point each.
	Victims []string
	// Source is the victim for source-only points.
	Source string
	// Align is the victim for alignment points (a task with >= 2 inputs);
	// empty falls back to the first entry of Victims.
	Align string
	// Timer is the victim for the processing-time-timer point; empty
	// skips that point (the swept pipeline has no such timers).
	Timer string
	// Recovery is the victim whose recovery windows are swept: each
	// recovery/replay point gets a schedule that first kills it at
	// task/loop (after PrimeSkip iterations), then fires the window
	// point during the resulting recovery — the second failure landing
	// between named protocol phases.
	Recovery string
	// PrimeSkip is the loop-iteration count let pass before the priming
	// kill, so the victim has produced data (and determinants) first.
	PrimeSkip int
	// StepSkip offsets occurrence-counted points (replay/step,
	// recovery/rebind, channel/serve-replay) into the middle of their
	// loops rather than the first iteration.
	StepSkip int
}

// Sweep deterministically enumerates one schedule per (point, victim):
// direct points against every plan victim, scoped points against their
// designated victim, and recovery-window points as two-kill schedules
// (priming failure, then the second failure inside the recovery). The
// output order is fixed, so a sweep is itself a replayable artifact.
func Sweep(plan SweepPlan) []Schedule {
	prime := func(victim string) Kill {
		return Kill{Point: PointTaskLoop, Victim: victim, Skip: plan.PrimeSkip}
	}
	align := plan.Align
	if align == "" && len(plan.Victims) > 0 {
		align = plan.Victims[0]
	}
	var out []Schedule
	for _, p := range points {
		switch p.Kind {
		case KindDirect:
			for _, v := range plan.Victims {
				out = append(out, Schedule{Kills: []Kill{{Point: p.Name, Victim: v}}})
			}
		case KindSource:
			if plan.Source != "" {
				out = append(out, Schedule{Kills: []Kill{{Point: p.Name, Victim: plan.Source}}})
			}
		case KindAlign:
			if align != "" {
				out = append(out, Schedule{Kills: []Kill{{Point: p.Name, Victim: align}}})
			}
		case KindUnaligned:
			// Same victim shape as alignment points; the driver arms
			// Config.UnalignedCheckpoints when it sees this kind.
			if align != "" {
				k := Kill{Point: p.Name, Victim: align}
				if p.Name == PointUnalignedCapture {
					// Land mid-capture rather than on the first logged
					// message.
					k.Skip = plan.StepSkip
				}
				out = append(out, Schedule{Kills: []Kill{k}})
			}
		case KindTimer:
			if plan.Timer != "" {
				out = append(out, Schedule{Kills: []Kill{{Point: p.Name, Victim: plan.Timer}}})
			}
		case KindRecovery:
			if plan.Recovery == "" {
				continue
			}
			k := Kill{Point: p.Name, Victim: plan.Recovery}
			if p.Name == PointReplayStep {
				// Mid-loop landing. recovery/rebind deliberately keeps
				// skip 0: its occurrence count is bounded by the victim's
				// output-channel count, which may be 1.
				k.Skip = plan.StepSkip
			}
			out = append(out, Schedule{Kills: []Kill{prime(plan.Recovery), k}})
		case KindServe:
			if plan.Recovery == "" {
				continue
			}
			// Whichever upstream serves the recovering victim's replay
			// crashes mid-retransmission.
			out = append(out, Schedule{Kills: []Kill{prime(plan.Recovery), {Point: p.Name, Victim: "*"}}})
		case KindGlobal:
			if plan.Recovery == "" {
				continue
			}
			out = append(out, Schedule{Kills: []Kill{prime(plan.Recovery), {Point: p.Name, Victim: plan.Recovery}}})
		}
	}
	return out
}

// Fuzz generates n pseudo-random schedules from seed. The same seed
// always produces the byte-identical schedule list; victims are drawn
// from the plan. Roughly a third of the schedules stack a second kill
// into the recovery opened by the first, and a few redirect the kill at
// a different target to exercise overlapping-failure patterns.
func Fuzz(seed int64, n int, plan SweepPlan) []Schedule {
	rng := rand.New(rand.NewSource(seed))
	victims := append([]string(nil), plan.Victims...)
	if plan.Source != "" {
		victims = append(victims, plan.Source)
	}
	sort.Strings(victims)
	if len(victims) == 0 {
		return nil
	}
	var direct []PointInfo
	var windows []PointInfo
	for _, p := range points {
		switch p.Kind {
		case KindDirect:
			direct = append(direct, p)
		case KindRecovery, KindServe:
			windows = append(windows, p)
		}
	}
	out := make([]Schedule, 0, n)
	for i := 0; i < n; i++ {
		var s Schedule
		v := victims[rng.Intn(len(victims))]
		first := Kill{Point: direct[rng.Intn(len(direct))].Name, Victim: v, Skip: rng.Intn(40)}
		s.Kills = append(s.Kills, first)
		if rng.Intn(3) == 0 {
			// Second failure inside the first kill's recovery window.
			w := windows[rng.Intn(len(windows))]
			k := Kill{Point: w.Name, Victim: v}
			if w.Kind == KindServe {
				k.Victim = "*"
			}
			if w.Name == PointReplayStep {
				k.Skip = rng.Intn(8)
			}
			if rng.Intn(4) == 0 {
				// Redirect at a different victim: overlapping failures.
				k.Target = victims[rng.Intn(len(victims))]
			}
			s.Kills = append(s.Kills, k)
		} else if rng.Intn(2) == 0 {
			// Independent concurrent kill of another task.
			s.Kills = append(s.Kills, Kill{Point: PointTaskLoop, Victim: victims[rng.Intn(len(victims))], Skip: rng.Intn(60)})
		}
		out = append(out, s)
	}
	return out
}
