package faultinject

import (
	"reflect"
	"testing"
)

func TestScheduleRoundTrip(t *testing.T) {
	cases := []Schedule{
		{},
		{Kills: []Kill{{Point: PointTaskLoop, Victim: "v1[0]"}}},
		{Kills: []Kill{
			{Point: PointTaskLoop, Victim: "v2[0]", Skip: 40},
			{Point: PointRecoveryRebind, Victim: "v2[0]", Skip: 1},
		}},
		{Kills: []Kill{
			{Point: PointAlignBlocked, Victim: "v3[0]", Target: "v1[1]"},
			{Point: PointServeReplayEntry, Victim: "*", Skip: 3},
		}},
	}
	for _, want := range cases {
		s := want.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, want)
		}
		if got.String() != s {
			t.Fatalf("re-render %q != %q", got.String(), s)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"task/loop@v1[0]",           // missing kill= prefix
		"kill=task/loop",            // missing victim
		"kill=nonsense/point@v1[0]", // unregistered point
		"kill=task/loop@v1[0]#x",    // bad skip
		"kill=task/loop@",           // empty victim
		"kill=task/loop@v1[0]#-2",   // negative skip
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error, got nil", bad)
		}
	}
}

func TestInjectorOccurrenceAndTarget(t *testing.T) {
	sched := Schedule{Kills: []Kill{
		{Point: PointReplayStep, Victim: "v1[0]", Skip: 2},
		{Point: PointTaskLoop, Victim: "*", Target: "v9[9]"},
	}}
	in := New(sched)
	var killed []string
	in.OnKill(func(task string) { killed = append(killed, task) })

	// Wildcard victim with a redirect target: the hitting task survives,
	// the target dies, and the kill fires exactly once.
	if in.Hit(PointTaskLoop, "v0[0]") {
		t.Fatal("redirected kill must not self-crash the hitting task")
	}
	if in.Hit(PointTaskLoop, "v0[1]") {
		t.Fatal("fired kill must not fire twice")
	}
	if !reflect.DeepEqual(killed, []string{"v9[9]"}) {
		t.Fatalf("killed = %v, want [v9[9]]", killed)
	}

	// Occurrence skip: the first two matching hits pass, the third fires.
	if in.Hit(PointReplayStep, "v1[0]") || in.Hit(PointReplayStep, "v1[0]") {
		t.Fatal("skip=2 fired early")
	}
	if in.Hit(PointReplayStep, "v1[1]") {
		t.Fatal("non-matching victim fired")
	}
	if !in.Hit(PointReplayStep, "v1[0]") {
		t.Fatal("skip=2 did not fire on the third matching hit")
	}
	if in.Hit(PointReplayStep, "v1[0]") {
		t.Fatal("kill must fire at most once")
	}

	if got := len(in.Fired()); got != 2 {
		t.Fatalf("Fired() len = %d, want 2", got)
	}
	if got := len(in.Unfired()); got != 0 {
		t.Fatalf("Unfired() len = %d, want 0", got)
	}
}

func TestSweepShape(t *testing.T) {
	plan := SweepPlan{
		Victims:   []string{"v1[0]", "v2[0]", "v3[0]"},
		Source:    "v0[1]",
		Align:     "v2[0]",
		Recovery:  "v2[0]",
		PrimeSkip: 40,
		StepSkip:  1,
	}
	scheds := Sweep(plan)
	if len(scheds) < 20 {
		t.Fatalf("sweep produced %d schedules, want >= 20", len(scheds))
	}
	seen := map[string]bool{}
	secondFailure := 0
	for _, s := range scheds {
		if len(s.Kills) == 0 {
			t.Fatal("empty schedule in sweep")
		}
		last := s.Kills[len(s.Kills)-1]
		seen[last.Point] = true
		if len(s.Kills) == 2 {
			if s.Kills[0].Point != PointTaskLoop {
				t.Fatalf("two-kill schedule %q not primed at task/loop", s)
			}
			if p, _ := LookupPoint(last.Point); p.Kind == KindRecovery {
				secondFailure++
			}
		}
		// Every sweep schedule must survive a parse round trip.
		if rt, err := Parse(s.String()); err != nil || !reflect.DeepEqual(rt, s) {
			t.Fatalf("sweep schedule %q does not round-trip (err=%v)", s, err)
		}
	}
	// Every registered point except the timer point (no timer victim in
	// this plan) must be enumerated.
	for _, p := range Points() {
		if p.Name == PointTimerFiring {
			continue
		}
		if !seen[p.Name] {
			t.Errorf("sweep never targets point %q", p.Name)
		}
	}
	if secondFailure < 4 {
		t.Fatalf("sweep has %d second-failure-during-recovery windows, want >= 4", secondFailure)
	}
	// Determinism: same plan, byte-identical output.
	again := Sweep(plan)
	if !reflect.DeepEqual(again, scheds) {
		t.Fatal("Sweep is not deterministic")
	}
}

func TestFuzzDeterminism(t *testing.T) {
	plan := SweepPlan{Victims: []string{"v1[0]", "v2[1]"}, Source: "v0[0]"}
	a := Fuzz(42, 50, plan)
	b := Fuzz(42, 50, plan)
	if len(a) != 50 {
		t.Fatalf("Fuzz produced %d schedules, want 50", len(a))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("seed 42 schedule %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	c := Fuzz(43, 50, plan)
	same := 0
	for i := range a {
		if a[i].String() == c[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedule lists")
	}
	// Fuzz output must always be parseable (it becomes the artifact).
	for _, s := range a {
		if _, err := Parse(s.String()); err != nil {
			t.Fatalf("fuzz schedule %q does not parse: %v", s, err)
		}
	}
}
