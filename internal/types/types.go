// Package types defines the stream element model shared by every layer of
// the engine: data records, watermarks, checkpoint barriers, and the
// identifiers for vertices, tasks, channels, and epochs.
package types

import "fmt"

// VertexID identifies a logical operator (chain) in the dataflow graph.
type VertexID int32

// TaskID identifies one parallel instance of a vertex.
type TaskID struct {
	Vertex  VertexID
	Subtask int32 // 0-based parallel subtask index
}

func (t TaskID) String() string {
	return fmt.Sprintf("v%d[%d]", t.Vertex, t.Subtask)
}

// EdgeID identifies a logical edge (shuffle) between two vertices.
type EdgeID int32

// ChannelID identifies one physical FIFO channel: a specific (producer
// subtask, consumer subtask) pair on a logical edge.
type ChannelID struct {
	Edge EdgeID
	From int32 // producer subtask index
	To   int32 // consumer subtask index
}

func (c ChannelID) String() string {
	return fmt.Sprintf("e%d:%d->%d", c.Edge, c.From, c.To)
}

// EpochID is the checkpoint epoch a record belongs to. Epoch n contains all
// records produced after barrier n-1 and up to (including) barrier n. Epoch 0
// precedes the first checkpoint.
type EpochID uint64

// CheckpointID numbers checkpoints; checkpoint n closes epoch n.
type CheckpointID = EpochID

// Kind discriminates the element variants that flow through channels.
type Kind uint8

const (
	// KindRecord is a data record.
	KindRecord Kind = iota
	// KindWatermark is an event-time low-watermark.
	KindWatermark
	// KindBarrier is a checkpoint barrier (Chandy-Lamport marker).
	KindBarrier
	// KindEndOfStream signals that the producer has no further output.
	KindEndOfStream
	// KindLatencyMarker is a source-stamped latency probe. It flows
	// through operators like a watermark (broadcast downstream, never
	// keyed) and is observed at sinks, where arrival time minus Timestamp
	// is the live end-to-end latency.
	KindLatencyMarker
)

func (k Kind) String() string {
	switch k {
	case KindRecord:
		return "record"
	case KindWatermark:
		return "watermark"
	case KindBarrier:
		return "barrier"
	case KindEndOfStream:
		return "end-of-stream"
	case KindLatencyMarker:
		return "latency-marker"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Element is the unit that flows along a stream: either a data record, a
// watermark, a checkpoint barrier, or an end-of-stream marker.
//
// For KindRecord, Key is the partitioning key (already extracted by the
// upstream key selector; 0 for non-keyed streams), Timestamp is the record's
// event time in milliseconds, and Value holds the payload. For KindWatermark,
// Timestamp carries the watermark. For KindBarrier, Checkpoint carries the
// checkpoint being taken.
type Element struct {
	Kind       Kind
	Key        uint64
	Timestamp  int64
	Checkpoint CheckpointID
	Value      any
}

// Record builds a data-record element.
func Record(key uint64, ts int64, value any) Element {
	return Element{Kind: KindRecord, Key: key, Timestamp: ts, Value: value}
}

// Watermark builds a watermark element.
func Watermark(ts int64) Element {
	return Element{Kind: KindWatermark, Timestamp: ts}
}

// Barrier builds a checkpoint-barrier element.
func Barrier(id CheckpointID) Element {
	return Element{Kind: KindBarrier, Checkpoint: id}
}

// EndOfStream builds an end-of-stream marker.
func EndOfStream() Element {
	return Element{Kind: KindEndOfStream}
}

// LatencyMarker builds a latency probe stamped with the source's wall
// clock (Unix milliseconds).
func LatencyMarker(ts int64) Element {
	return Element{Kind: KindLatencyMarker, Timestamp: ts}
}

// IsRecord reports whether the element is a data record.
func (e Element) IsRecord() bool { return e.Kind == KindRecord }

func (e Element) String() string {
	switch e.Kind {
	case KindRecord:
		return fmt.Sprintf("record(key=%d ts=%d %v)", e.Key, e.Timestamp, e.Value)
	case KindWatermark:
		return fmt.Sprintf("watermark(%d)", e.Timestamp)
	case KindBarrier:
		return fmt.Sprintf("barrier(%d)", e.Checkpoint)
	case KindLatencyMarker:
		return fmt.Sprintf("latency-marker(%d)", e.Timestamp)
	default:
		return e.Kind.String()
	}
}
