// Package hotbench drives the zero-copy hot path — serialize → dispatch
// → transmit → deserialize → decode — end to end, outside any job
// topology, so its cost can be benchmarked and budgeted precisely.
//
// The same Loop backs three consumers: the micro-benchmarks in
// internal/netstack, the allocation-budget tests that fail CI when the
// hot path regresses, and cmd/clonos-hotpath, which emits the
// BENCH_hotpath.json trajectory baseline.
package hotbench

import (
	"fmt"
	"testing"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/codec"
	"clonos/internal/netstack"
	"clonos/internal/nexmark"
	"clonos/internal/types"
)

// Loop wires a ChannelWriter straight into an Endpoint and Deserializer:
// each dispatched buffer is bound into a pooled message (aliasing the
// buffer, as outChannel.dispatch does), pushed, popped, and decoded to
// exhaustion. It is single-threaded; the sequencing mirrors the task
// main-thread hot path without the job-layer scaffolding.
type Loop struct {
	pool  *buffer.Pool
	ep    *netstack.Endpoint
	deser *netstack.Deserializer
	w     *netstack.ChannelWriter

	seq       uint64
	elemsOut  uint64
	elemsIn   uint64
	wireBytes uint64
}

// NewLoop builds a loop over poolBufs buffers of bufSize bytes encoding
// with c.
func NewLoop(bufSize, poolBufs int, c codec.Codec) *Loop {
	l := &Loop{}
	id := types.ChannelID{Edge: 1, From: 0, To: 0}
	l.pool = buffer.NewPool(poolBufs, bufSize)
	l.ep = netstack.NewEndpoint(id, 2*poolBufs, nil, true)
	l.deser = netstack.NewDeserializer(c)
	l.w = netstack.NewChannelWriter(l.pool, c, func(b *buffer.Buffer) error {
		l.seq++
		l.wireBytes += uint64(b.Len())
		m := netstack.NewMessage()
		m.Channel = id
		m.Seq = l.seq
		m.Bind(b)
		err := l.ep.Push(m)
		b.ReleaseTo(l.pool)
		if err != nil {
			m.Release()
			return err
		}
		return l.drain()
	})
	return l
}

// Write serializes one element into the loop.
func (l *Loop) Write(e types.Element) error {
	l.elemsOut++
	return l.w.WriteElement(e)
}

// Flush pushes out the partial buffer and consumes everything in flight.
func (l *Loop) Flush() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.drain()
}

// drain moves queued messages through the deserializer until empty.
func (l *Loop) drain() error {
	for {
		m := l.ep.Pop()
		if m == nil {
			return nil
		}
		l.deser.Push(m)
		for {
			_, ok, err := l.deser.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			l.elemsIn++
		}
	}
}

// Stats is a point-in-time snapshot of the loop's copy/throughput
// counters.
type Stats struct {
	ElemsOut  uint64 // elements written
	ElemsIn   uint64 // elements decoded on the receive side
	WireBytes uint64 // payload bytes dispatched
	// ScratchBytes counts sender-side bytes that took the copying
	// fallback (element straddled a buffer boundary or recovery cuts
	// pending); zero means every element encoded directly into its
	// network buffer.
	ScratchBytes uint64
	// CopiedBytes counts receiver-side bytes copied reassembling
	// elements that straddled message boundaries; zero means every
	// element decoded in place from the retained (aliased) payload.
	CopiedBytes uint64
}

// Stats returns the loop's counters so far.
func (l *Loop) Stats() Stats {
	return Stats{
		ElemsOut:     l.elemsOut,
		ElemsIn:      l.elemsIn,
		WireBytes:    l.wireBytes,
		ScratchBytes: l.w.ScratchBytes(),
		CopiedBytes:  l.deser.CopiedBytes(),
	}
}

// Verify checks the loop's conservation invariant: everything written
// was decoded (call after Flush).
func (l *Loop) Verify() error {
	if l.elemsIn != l.elemsOut {
		return fmt.Errorf("hotbench: wrote %d elements, decoded %d", l.elemsOut, l.elemsIn)
	}
	return nil
}

// Scenario is one benchmarked hot-path configuration.
type Scenario struct {
	Name     string
	BufSize  int
	PoolBufs int
	Codec    codec.Codec
	// Element returns the i-th element to write.
	Element func(i int) types.Element
}

// Scenarios returns the standard set tracked by BENCH_hotpath.json.
func Scenarios() []Scenario {
	// alignedPayload sizes a BytesCodec record so each wire element is
	// exactly 512 bytes (4 length + 1 kind + 1 key + 1 ts + payload):
	// elements tile 32 KiB buffers exactly, so a correct zero-copy path
	// moves no bytes through scratch on either side.
	alignedPayload := make([]byte, 512-4-1-1-1)
	// Pre-box the element so the benchmark measures the pipeline, not
	// the cost of boxing the []byte into types.Element.Value per call.
	alignedElem := types.Record(1, 0, alignedPayload)
	structElems := structElements()
	return []Scenario{
		{
			Name: "int64", BufSize: buffer.DefaultSize, PoolBufs: 8, Codec: codec.Int64Codec{},
			Element: func(i int) types.Element {
				return types.Record(uint64(i)&0xffff, int64(i)&0xffff, int64(i))
			},
		},
		{
			Name: "bytes512-aligned", BufSize: buffer.DefaultSize, PoolBufs: 8, Codec: codec.BytesCodec{},
			Element: func(i int) types.Element { return alignedElem },
		},
		{
			Name: "gob", BufSize: buffer.DefaultSize, PoolBufs: 8, Codec: codec.GobFallback(),
			Element: func(i int) types.Element {
				return types.Record(uint64(i)&0xffff, int64(i)&0xffff, int64(i))
			},
		},
		{
			// The typed tier on a realistic struct edge: NEXMark bid
			// events through the auto codec (registry dispatch + the
			// hand-written EventCodec), the encoding every nil-codec edge
			// now gets for registered types.
			Name: "typed-struct", BufSize: buffer.DefaultSize, PoolBufs: 8, Codec: codec.Auto{},
			Element: func(i int) types.Element { return structElems[i&255] },
		},
		{
			// The same struct edge through the reflective gob fallback:
			// the before side of the typed-tier speedup, and the budget
			// tests' comparison baseline.
			Name: "struct-gob", BufSize: buffer.DefaultSize, PoolBufs: 8, Codec: codec.GobFallback(),
			Element: func(i int) types.Element { return structElems[i&255] },
		},
	}
}

// structElements pre-boxes 256 distinct bid events so struct scenarios
// measure the pipeline, not per-call boxing, while still varying the
// encoded bytes call to call.
func structElements() []types.Element {
	elems := make([]types.Element, 256)
	for i := range elems {
		elems[i] = types.Record(uint64(i), int64(i), nexmark.Event{
			Kind: nexmark.KindBid,
			Bid: &nexmark.Bid{
				Auction:  uint64(1000 + i%101),
				Bidder:   uint64(i),
				Price:    int64(100 + 7*i),
				DateTime: int64(1_600_000_000_000 + i),
			},
		})
	}
	return elems
}

// Result is the machine-readable outcome of one scenario, the unit
// stored in BENCH_hotpath.json.
type Result struct {
	Scenario    string  `json:"scenario"`
	NsPerElem   float64 `json:"ns_per_elem"`
	ElemsPerSec float64 `json:"elems_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_elem"`
	BytesPerOp  float64 `json:"alloc_bytes_per_elem"`
	// Copy counters over the whole run: the residual copying cost of the
	// zero-copy pipeline, as fractions of the bytes that crossed it.
	WireBytes       uint64  `json:"wire_bytes"`
	ScratchBytes    uint64  `json:"scratch_bytes"`
	CopiedBytes     uint64  `json:"copied_bytes"`
	ScratchFraction float64 `json:"scratch_fraction"`
	CopiedFraction  float64 `json:"copied_fraction"`
}

// Bench runs one scenario under the testing benchmark driver and
// reports per-element figures. It is used both by `go test -bench` (via
// the b parameter) and by cmd/clonos-hotpath (via testing.Benchmark).
func Bench(b *testing.B, sc Scenario) Stats {
	loop := NewLoop(sc.BufSize, sc.PoolBufs, sc.Codec)
	// Warm the element and message pools so steady state is measured.
	for i := 0; i < 256; i++ {
		if err := loop.Write(sc.Element(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := loop.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := loop.Write(sc.Element(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := loop.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := loop.Verify(); err != nil {
		b.Fatal(err)
	}
	st := loop.Stats()
	if st.ElemsOut > 0 {
		b.SetBytes(int64(st.WireBytes / st.ElemsOut))
	}
	b.ReportMetric(float64(st.ScratchBytes)/float64(b.N), "scratchB/op")
	b.ReportMetric(float64(st.CopiedBytes)/float64(b.N), "copiedB/op")
	return st
}

// Measure runs one scenario via testing.Benchmark and converts it to a
// Result.
func Measure(sc Scenario) Result {
	var st Stats
	r := testing.Benchmark(func(b *testing.B) {
		st = Bench(b, sc)
	})
	perElem := float64(st.WireBytes) / float64(st.ElemsOut)
	ns := float64(r.NsPerOp())
	res := Result{
		Scenario:     sc.Name,
		NsPerElem:    ns,
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		WireBytes:    st.WireBytes,
		ScratchBytes: st.ScratchBytes,
		CopiedBytes:  st.CopiedBytes,
	}
	if ns > 0 {
		res.ElemsPerSec = float64(time.Second) / ns
		res.MBPerSec = res.ElemsPerSec * perElem / (1 << 20)
	}
	if st.WireBytes > 0 {
		res.ScratchFraction = float64(st.ScratchBytes) / float64(st.WireBytes)
		res.CopiedFraction = float64(st.CopiedBytes) / float64(st.WireBytes)
	}
	return res
}
