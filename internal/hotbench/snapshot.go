package hotbench

// Snapshot-path benchmarks: where hotbench.Loop drives the per-record
// network hot path, these scenarios drive the per-checkpoint state
// encoding — Store.Snapshot and Store.DeltaSnapshot over typed values —
// plus the legacy gob encoding of the same store as the before/after
// baseline. Results share the Result JSON shape with per-entry
// normalization (ns_per_elem is nanoseconds per state entry).

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
	"time"

	"clonos/internal/nexmark"
	"clonos/internal/statestore"
)

func init() {
	// The snapshot-gob baseline encodes bare Bid values reflectively;
	// nexmark only gob-registers the Event union.
	gob.Register(nexmark.Bid{})
}

// snapshotEntries is the store population of the snapshot scenarios:
// enough keys that per-entry cost dominates fixed overhead.
const snapshotEntries = 1024

// deltaDirty is how many keys each delta-encode iteration re-dirties.
const deltaDirty = 128

// SnapshotScenario is one benchmarked snapshot-path configuration.
type SnapshotScenario struct {
	Name string
	// Entries is how many state entries one op encodes (normalizes
	// per-entry figures).
	Entries int
	// New builds the store and returns the measured op, which reports
	// the encoded byte count.
	New func() func() (int, error)
}

// populatedStore builds a store with snapshotEntries bid values under one
// state name, dirty tracking reset.
func populatedStore() *statestore.Store {
	s := statestore.NewStore()
	ks := s.Keyed("bids")
	for i := 0; i < snapshotEntries; i++ {
		ks.Put(uint64(i), nexmark.Bid{
			Auction:  uint64(1000 + i%101),
			Bidder:   uint64(i),
			Price:    int64(100 + 7*i),
			DateTime: int64(1_600_000_000_000 + i),
		})
	}
	s.ResetDirty()
	return s
}

// SnapshotScenarios returns the snapshot-path set tracked by
// BENCH_hotpath.json.
func SnapshotScenarios() []SnapshotScenario {
	return []SnapshotScenario{
		{
			// Full snapshot through the binary frame + typed codecs.
			Name: "snapshot-encode", Entries: snapshotEntries,
			New: func() func() (int, error) {
				s := populatedStore()
				return func() (int, error) {
					b, err := s.Snapshot()
					return len(b), err
				}
			},
		},
		{
			// The same store through the legacy gob encoding (the
			// pre-binary Snapshot implementation), kept as the measured
			// before side of the switch.
			Name: "snapshot-gob", Entries: snapshotEntries,
			New: func() func() (int, error) {
				s := populatedStore()
				return func() (int, error) {
					flat := make(map[string]map[uint64]any)
					for _, name := range s.Names() {
						m := make(map[uint64]any)
						s.Keyed(name).Range(func(key uint64, v any) bool {
							m[key] = v
							return true
						})
						flat[name] = m
					}
					var buf bytes.Buffer
					if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
						return 0, err
					}
					return buf.Len(), nil
				}
			},
		},
		{
			// Incremental snapshot: each op re-dirties deltaDirty keys and
			// encodes the delta (the Put cost is part of the real delta
			// cycle and is included).
			Name: "delta-encode", Entries: deltaDirty,
			New: func() func() (int, error) {
				s := populatedStore()
				ks := s.Keyed("bids")
				return func() (int, error) {
					for i := 0; i < deltaDirty; i++ {
						ks.Put(uint64(i), ks.Get(uint64(i)))
					}
					b, err := s.DeltaSnapshot()
					return len(b), err
				}
			},
		},
	}
}

// MeasureSnapshot runs one snapshot scenario via testing.Benchmark and
// converts it to a per-entry Result.
func MeasureSnapshot(sc SnapshotScenario) Result {
	op := sc.New()
	var lastBytes int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := op()
			if err != nil {
				// b.Fatal on a testing.Benchmark-driven B has no runner
				// to unwind to; a broken scenario must abort loudly.
				panic(fmt.Sprintf("hotbench: %s: %v", sc.Name, err))
			}
			lastBytes = n
		}
	})
	perEntryNs := float64(r.NsPerOp()) / float64(sc.Entries)
	res := Result{
		Scenario:    sc.Name,
		NsPerElem:   perEntryNs,
		AllocsPerOp: float64(r.AllocsPerOp()) / float64(sc.Entries),
		BytesPerOp:  float64(r.AllocedBytesPerOp()) / float64(sc.Entries),
		WireBytes:   uint64(lastBytes),
	}
	if perEntryNs > 0 {
		res.ElemsPerSec = float64(time.Second) / perEntryNs
		res.MBPerSec = float64(lastBytes) / (float64(r.NsPerOp()) / float64(time.Second)) / (1 << 20)
	}
	return res
}
