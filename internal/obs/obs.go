// Package obs is the engine's observability layer: a low-overhead,
// concurrency-safe metrics registry (atomic counters, gauges, callback
// gauges, and fixed-bucket histograms organized into labeled families)
// plus a structured span/event tracer for protocol-level timing such as
// the recovery protocol's phases.
//
// Design constraints, in order:
//
//   - Hot-path cost: recording a metric is one atomic op (plus a bucket
//     search for histograms). No locks, no allocation after the handle is
//     created. Handles are looked up once (get-or-create) and cached by
//     the instrumented component.
//   - Nil safety: every handle method is a no-op on a nil receiver, and a
//     nil *Registry hands out detached (unregistered but functional)
//     handles, so instrumented packages never need nil checks.
//   - Exposition: the registry renders Prometheus text format 0.0.4 and a
//     JSON snapshot; see expose.go and server.go.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is a set of label key/value pairs identifying one metric within
// a family. Cardinality discipline is the caller's job: label values must
// come from small, bounded sets (vertex names, pool kinds, phase names —
// never record keys or sequence numbers).
type Labels map[string]string

// clone copies l so callers cannot mutate a registered label set.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// key builds the canonical instance key: sorted k=v pairs.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing uint64. Durations are recorded in
// nanoseconds (name the family *_ns_total).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// AddDuration adds d as nanoseconds.
func (c *Counter) AddDuration(d time.Duration) {
	if c != nil && d > 0 {
		c.v.Add(uint64(d))
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts and
// a CAS-maintained float64 sum. Bucket bounds are upper-inclusive
// (Prometheus "le" semantics); an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds (the Prometheus convention for
// duration histograms).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns the q-quantile (0..1) of the observed distribution,
// approximated from the bucket counts. It uses the same nearest-rank
// definition as metrics.Percentile — the rank is round(q*(n-1)) over the
// n observations — and reports the upper bound of the bucket holding
// that rank, so a value in an exponential-bucket family is overestimated
// by at most one bucket factor (e.g. 2x for factor-2 buckets) and never
// underestimated past the bucket's lower bound. Values landing in the
// +Inf overflow bucket report the largest finite bound. Returns 0 when
// nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Round(q * float64(n-1)))
	if rank > n-1 {
		rank = n - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// Overflow bucket: the best finite answer is the last bound.
			if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1]
			}
			return 0
		}
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// DefDurationBuckets spans 50µs..~26s, suitable for the engine's
// buffer-handling through recovery-phase time scales.
var DefDurationBuckets = ExpBuckets(50e-6, 2, 20)

// LatencyBuckets spans 100µs..~7min in factor-2 steps: wide enough that
// end-to-end latency does not clip into the overflow bucket even while a
// recovery stalls output for minutes, and fine enough that the bounded
// quantile error (see Histogram.Quantile) stays within one octave.
var LatencyBuckets = ExpBuckets(1e-4, 2, 22)

// metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// instance is one (labels, handle) member of a family.
type instance struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups instances of one metric name.
type family struct {
	name   string
	help   string
	typ    string
	bounds []float64 // histograms only; fixed at first registration
	insts  map[string]*instance
	order  []string // stable exposition order (registration order)
}

// Registry is a set of metric families. All methods are safe for
// concurrent use. Handles returned by the getters are get-or-create:
// the same (name, labels) always yields the same handle, so re-created
// components (e.g. recovered tasks) keep counting where their
// predecessor stopped.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for (name, labels), creating it on first
// use. A nil registry returns a detached, functional counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return &Counter{}
	}
	inst := r.instance(name, help, typeCounter, nil, labels)
	if inst.counter == nil {
		return &Counter{} // name registered with a different type
	}
	return inst.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	inst := r.instance(name, help, typeGauge, nil, labels)
	if inst.gauge == nil {
		return &Gauge{}
	}
	return inst.gauge
}

// GaugeFunc registers (or replaces) a callback gauge for (name, labels).
// The callback is invoked at exposition time; it must be safe to call
// concurrently with the component it observes. Re-registering the same
// (name, labels) replaces the callback — recovered components re-register
// over their dead predecessor's closure.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	if r == nil || f == nil {
		return
	}
	inst := r.instance(name, help, typeGauge, nil, labels)
	r.mu.Lock()
	inst.fn = f
	inst.gauge = nil
	r.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. The family's bucket bounds are fixed by the first
// registration; later bounds arguments are ignored.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	inst := r.instance(name, help, typeHistogram, bounds, labels)
	if inst.hist == nil {
		return newHistogram(bounds)
	}
	return inst.hist
}

// instance resolves (name, labels) to its instance, creating family and
// instance as needed.
func (r *Registry) instance(name, help, typ string, bounds []float64, labels Labels) *instance {
	key := labels.key()
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if inst, ok := f.insts[key]; ok && f.typ == typ {
			r.mu.RUnlock()
			return inst
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, insts: make(map[string]*instance)}
		if typ == typeHistogram {
			if len(bounds) == 0 {
				bounds = DefDurationBuckets
			}
			bs := append([]float64(nil), bounds...)
			sort.Float64s(bs)
			f.bounds = bs
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		// Type clash: hand back a detached instance rather than corrupting
		// the registered family.
		return &instance{labels: labels.clone()}
	}
	inst, ok := f.insts[key]
	if !ok {
		inst = &instance{labels: labels.clone()}
		switch typ {
		case typeCounter:
			inst.counter = &Counter{}
		case typeGauge:
			inst.gauge = &Gauge{}
		case typeHistogram:
			inst.hist = newHistogram(f.bounds)
		}
		f.insts[key] = inst
		f.order = append(f.order, key)
	}
	return inst
}

// visit iterates families and instances in registration order under the
// read lock, copying out what exposition needs.
func (r *Registry) visit(fn func(f *family, inst *instance)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			fn(f, f.insts[key])
		}
	}
}
