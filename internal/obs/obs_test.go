package obs

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("clonos_test_total", "help", Labels{"vertex": "map", "subtask": "0"})
	b := r.Counter("clonos_test_total", "help", Labels{"subtask": "0", "vertex": "map"})
	if a != b {
		t.Fatalf("same (name, labels) returned distinct counters")
	}
	c := r.Counter("clonos_test_total", "help", Labels{"vertex": "map", "subtask": "1"})
	if a == c {
		t.Fatalf("distinct labels returned the same counter")
	}
	a.Inc()
	a.Add(4)
	if got := b.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", nil)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("detached counter did not count")
	}
	g := r.Gauge("y", "", nil)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("detached gauge did not store")
	}
	h := r.Histogram("z", "", []float64{1}, nil)
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Fatalf("detached histogram did not observe")
	}
	r.GaugeFunc("f", "", nil, func() float64 { return 1 })

	var nc *Counter
	nc.Inc()
	nc.Add(3)
	var ng *Gauge
	ng.Set(1)
	ng.Add(-1)
	var nh *Histogram
	nh.Observe(1)
	var sp *Span
	sp.Mark("m")
	sp.SetAttr("k", "v")
	sp.End()
	var tr *Tracer
	tr.Emit("e", nil, nil)
	if tr.Events() != nil || tr.Spans() != nil {
		t.Fatalf("nil tracer returned non-nil slices")
	}
}

func TestTypeClashDetaches(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("clonos_clash", "", nil)
	c.Inc()
	g := r.Gauge("clonos_clash", "", nil)
	g.Set(99)
	if c.Value() != 1 {
		t.Fatalf("clash corrupted registered counter")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "99") {
		t.Fatalf("detached clash instance leaked into exposition:\n%s", b.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("clonos_h", "h help", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# HELP clonos_h h help",
		"# TYPE clonos_h histogram",
		`clonos_h_bucket{le="0.1"} 2`,
		`clonos_h_bucket{le="1"} 3`,
		`clonos_h_bucket{le="10"} 4`,
		`clonos_h_bucket{le="+Inf"} 5`,
		"clonos_h_sum 55.65",
		"clonos_h_count 5",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestGaugeFuncAndReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("clonos_depth", "", Labels{"q": "a"}, func() float64 { return 3 })
	// A recovered component re-registers over its predecessor.
	r.GaugeFunc("clonos_depth", "", Labels{"q": "a"}, func() float64 { return 8 })
	snap := r.Snapshot()
	if len(snap.Families) != 1 || len(snap.Families[0].Metrics) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	if got := snap.Families[0].Metrics[0].Value; got == nil || *got != 8 {
		t.Fatalf("gauge func value = %v, want 8 (replacement)", got)
	}
}

func TestPrometheusLabelRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("clonos_lbl_total", "", Labels{"vertex": `we"ird`, "subtask": "0"}).Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `clonos_lbl_total{subtask="0",vertex="we\"ird"} 2`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestSnapshotJSONHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("clonos_js", "", []float64{1}, nil).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON with +Inf bucket: %v", err)
	}
	if !strings.Contains(b.String(), `"+Inf"`) {
		t.Fatalf("JSON snapshot missing +Inf bucket:\n%s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("clonos_conc_total", "", Labels{"worker": "shared"})
			h := r.Histogram("clonos_conc_seconds", "", []float64{0.001, 0.1}, nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-4)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("clonos_conc_total", "", Labels{"worker": "shared"}).Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("clonos_conc_seconds", "", nil, nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestSpanPhases(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("recovery", map[string]string{"task": "1/0"})
	sp.Mark("standby-activated")
	time.Sleep(2 * time.Millisecond)
	sp.Mark("determinants-retrieved")
	sp.SetAttr("mode", "clonos")
	rec := sp.End()

	if rec.Name != "recovery" || rec.Attr("task") != "1/0" || rec.Attr("mode") != "clonos" {
		t.Fatalf("span record metadata wrong: %+v", rec)
	}
	phases := rec.Phases()
	if len(phases) != 2 || phases[0].Name != "standby-activated" || phases[1].Name != "determinants-retrieved" {
		t.Fatalf("phases = %+v", phases)
	}
	if d, ok := rec.Phase("determinants-retrieved"); !ok || d < 2*time.Millisecond {
		t.Fatalf("determinants-retrieved phase = %v ok=%v, want >= 2ms", d, ok)
	}
	if rec.Duration() < 2*time.Millisecond {
		t.Fatalf("total duration %v too short", rec.Duration())
	}

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "recovery" {
		t.Fatalf("tracer spans = %+v", spans)
	}

	// End is idempotent and post-End mutation is ignored.
	sp.Mark("late")
	sp.SetAttr("x", "y")
	again := sp.End()
	if len(again.Marks) != 2 || again.Attr("x") != "" || !again.End.Equal(rec.End) {
		t.Fatalf("End not idempotent: %+v", again)
	}
	if len(tr.Spans()) != 1 {
		t.Fatalf("double End published twice")
	}
}

func TestTracerBounds(t *testing.T) {
	tr := NewTracer()
	tr.SetLimits(4, 2)
	for i := 0; i < 10; i++ {
		tr.Emit("e", i, nil)
	}
	evs := tr.Events()
	if len(evs) != 4 || evs[0].Payload.(int) != 6 || evs[3].Payload.(int) != 9 {
		t.Fatalf("bounded events = %+v", evs)
	}
	for i := 0; i < 5; i++ {
		tr.StartSpan("s", nil).End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("bounded spans len = %d, want 2", got)
	}
	de, ds := tr.Dropped()
	if de != 6 || ds != 3 {
		t.Fatalf("dropped = (%d, %d), want (6, 3)", de, ds)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("clonos_srv_total", "served", nil).Add(3)
	tr := NewTracer()
	sp := tr.StartSpan("srv-span", map[string]string{"task": "1/0"})
	sp.Mark("midpoint")
	sp.End()
	tr.Emit("srv-event", nil, nil)
	s, err := StartServer("127.0.0.1:0", func() *Registry { return r }, func() *Tracer { return tr }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "clonos_srv_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	body, _ = get("/metrics.json")
	if !strings.Contains(body, `"clonos_srv_total"`) {
		t.Fatalf("/metrics.json missing family:\n%s", body)
	}
	body, _ = get("/debug/vars")
	if !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars missing memstats:\n%s", body[:min(len(body), 200)])
	}
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ missing index")
	}
	body, ctype = get("/debug/trace")
	if !strings.Contains(ctype, "ndjson") {
		t.Fatalf("/debug/trace content type = %q", ctype)
	}
	recs, err := ReadTraceJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/debug/trace parse: %v", err)
	}
	var haveSpan, haveEvent, haveSample bool
	for _, rec := range recs {
		switch {
		case rec.Type == RecordSpan && rec.Name == "srv-span":
			haveSpan = true
			if _, ok := rec.Mark("midpoint"); !ok {
				t.Fatalf("span record lost its mark: %+v", rec)
			}
		case rec.Type == RecordEvent && rec.Name == "srv-event":
			haveEvent = true
		case rec.Type == RecordSample:
			haveSample = true
			if rec.Vals["clonos_srv_total"] != 3 {
				t.Fatalf("sample missing counter: %v", rec.Vals)
			}
		}
	}
	if !haveSpan || !haveEvent || !haveSample {
		t.Fatalf("span=%v event=%v sample=%v in %d records", haveSpan, haveEvent, haveSample, len(recs))
	}
	body, ctype = get("/debug/trace.chrome")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/trace.chrome content type = %q", ctype)
	}
	if !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, `"srv-span"`) {
		t.Fatalf("/debug/trace.chrome missing span:\n%s", body[:min(len(body), 300)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
