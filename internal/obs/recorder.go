package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// RecorderConfig bounds a flight recorder. Zero values select defaults.
type RecorderConfig struct {
	// QueueSize bounds the in-memory record queue between the engine
	// threads and the writer goroutine (default 8192). When full,
	// records are dropped and counted rather than blocking publishers.
	QueueSize int
	// FlushInterval bounds how stale the underlying writer may be
	// (default 500ms), so a recording survives a crash mostly intact.
	FlushInterval time.Duration
}

// Recorder is a flight recorder: a TracerSink that streams every event,
// ended span, and periodic registry sample to an io.Writer as JSONL
// (one TraceRecord per line). Publishing is allocation-light and never
// blocks — records are handed to a single writer goroutine through a
// bounded queue and dropped (with a count) on overflow.
type Recorder struct {
	ch      chan TraceRecord
	dropped atomic.Uint64

	wg       sync.WaitGroup
	sampStop chan struct{}
	sampOnce sync.Once

	mu     sync.Mutex
	closed bool
	err    error
}

// NewRecorder starts a recorder writing to w. Close flushes and stops
// the writer goroutine; it does not close w.
func NewRecorder(w io.Writer, cfg RecorderConfig) *Recorder {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 8192
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 500 * time.Millisecond
	}
	r := &Recorder{
		ch:       make(chan TraceRecord, cfg.QueueSize),
		sampStop: make(chan struct{}),
	}
	r.wg.Add(1)
	go r.drain(w, cfg.FlushInterval)
	return r
}

func (r *Recorder) drain(w io.Writer, flushEvery time.Duration) {
	defer r.wg.Done()
	bw := bufio.NewWriterSize(w, 64*1024)
	enc := json.NewEncoder(bw)
	tick := time.NewTicker(flushEvery)
	defer tick.Stop()
	fail := func(err error) {
		r.mu.Lock()
		if r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
	}
	for {
		select {
		case rec, ok := <-r.ch:
			if !ok {
				if err := bw.Flush(); err != nil {
					fail(err)
				}
				return
			}
			if err := enc.Encode(rec); err != nil {
				fail(err)
			}
		case <-tick.C:
			if err := bw.Flush(); err != nil {
				fail(err)
			}
		}
	}
}

// Push enqueues a record, dropping it (counted) if the queue is full or
// the recorder is closed. Safe for concurrent use; nil-receiver safe.
func (r *Recorder) Push(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	// Send under the lock so Close cannot close the channel between the
	// check and the send; the channel send itself never blocks.
	select {
	case r.ch <- rec:
	default:
		r.dropped.Add(1)
	}
	r.mu.Unlock()
}

// OnEvent implements TracerSink.
func (r *Recorder) OnEvent(ev Event) { r.Push(EventRecord(ev)) }

// OnSpan implements TracerSink.
func (r *Recorder) OnSpan(sp SpanRecord) { r.Push(SpanTraceRecord(sp)) }

// StartSampling records a registry sample every interval until Close.
// The source is re-resolved each tick (the harness swaps registries
// between runs); nil results are skipped.
func (r *Recorder) StartSampling(source func() *Registry, every time.Duration) {
	if r == nil || source == nil {
		return
	}
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-r.sampStop:
				return
			case now := <-tick.C:
				if reg := source(); reg != nil {
					r.Push(SampleRecord(reg, now))
				}
			}
		}
	}()
}

// Dropped reports how many records overflowed the queue.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Occupancy reports the current and maximum queue depth.
func (r *Recorder) Occupancy() (used, capacity int) {
	if r == nil {
		return 0, 0
	}
	return len(r.ch), cap(r.ch)
}

// Close stops sampling, drains queued records, flushes the writer, and
// returns the first write error (if any). Idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.sampOnce.Do(func() { close(r.sampStop) })
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
