package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and ui.perfetto.dev). Timestamps and
// durations are microseconds relative to the earliest record so traces
// open centered instead of at the unix epoch.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Registry sample series worth plotting as counter tracks. Everything
// else in a sample is ignored — counter tracks are expensive to render
// and most families only make sense as a final snapshot.
var chromeCounterPrefixes = []string{
	"clonos_task_watermark_ms",
	"clonos_task_watermark_skew_ms",
	"clonos_task_blocked_channels",
	"clonos_stalled_tasks",
	"clonos_netstack_queue_depth",
	"clonos_buffer_pool_free_buffers",
}

// WriteChromeTrace converts a flight recording to Chrome trace_event
// JSON. Spans become complete ("X") slices with their marks as instant
// events, tracer events become instants, and whitelisted registry
// sample series become counter ("C") tracks. Records are grouped into
// tracks by their "task" attribute (falling back to the record name) so
// per-task activity lines up vertically in the viewer.
func WriteChromeTrace(w io.Writer, recs []TraceRecord) error {
	var t0 int64
	for _, rec := range recs {
		if t0 == 0 || (rec.TS != 0 && rec.TS < t0) {
			t0 = rec.TS
		}
	}
	us := func(ns int64) float64 { return float64(ns-t0) / 1e3 }

	tids := map[string]int{}
	tid := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
		}
		return id
	}
	track := func(rec TraceRecord) string {
		if task := rec.Attrs["task"]; task != "" {
			return task
		}
		return rec.Name
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, rec := range recs {
		switch rec.Type {
		case RecordSpan:
			args := attrArgs(rec.Attrs)
			id := tid(track(rec))
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: rec.Name, Phase: "X", TS: us(rec.TS), Dur: us(rec.End) - us(rec.TS),
				PID: 1, TID: id, Cat: "span", Args: args,
			})
			for _, m := range rec.Marks {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: m.Name, Phase: "i", TS: us(m.At), PID: 1, TID: id, Scope: "t", Cat: "mark",
				})
			}
		case RecordEvent:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: rec.Name, Phase: "i", TS: us(rec.TS), PID: 1, TID: tid(track(rec)),
				Scope: "t", Cat: "event", Args: attrArgs(rec.Attrs),
			})
		case RecordSample:
			for key, val := range rec.Vals {
				if !counterSeries(key) {
					continue
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: key, Phase: "C", TS: us(rec.TS), PID: 1,
					Args: map[string]any{"value": val},
				})
			}
		}
	}
	// Counter events from map iteration arrive in random order; the
	// viewers tolerate it but sorted output diffs cleanly in tests.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool { return out.TraceEvents[i].TS < out.TraceEvents[j].TS })

	// Name the tracks after their grouping key.
	names := make([]string, 0, len(tids))
	for name := range tids {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tids[name],
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func counterSeries(key string) bool {
	for _, p := range chromeCounterPrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

func attrArgs(attrs map[string]string) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	for k, v := range attrs {
		args[k] = v
	}
	return args
}
