package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestComputeHealthVerdicts(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()

	h := ComputeHealth(r, tr, nil)
	if h.Status != HealthOK {
		t.Fatalf("empty registry: status = %s, want OK", h.Status)
	}

	// A stuck task degrades but does not condemn.
	stalled := r.Gauge("clonos_stalled_tasks", "stuck", nil)
	stalled.Set(2)
	h = ComputeHealth(r, tr, nil)
	if h.Status != HealthDegraded || h.StalledTasks != 2 {
		t.Fatalf("stalled: status = %s stalled = %d, want DEGRADED 2", h.Status, h.StalledTasks)
	}

	// Tracer ring overflow also degrades.
	stalled.Set(0)
	tr.SetLimits(1, 1)
	tr.Emit("a", nil, nil)
	tr.Emit("b", nil, nil)
	h = ComputeHealth(r, tr, nil)
	if h.Status != HealthDegraded || h.TracerDroppedEvents == 0 {
		t.Fatalf("tracer drops: status = %s dropped = %d, want DEGRADED >0", h.Status, h.TracerDroppedEvents)
	}

	// Any audit violation outranks everything else.
	r.Counter("clonos_audit_violations_total", "violations",
		Labels{"invariant": "replay-hash-mismatch", "vertex": "map", "subtask": "0"}).Add(3)
	r.Counter("clonos_audit_violations_total", "violations",
		Labels{"invariant": "seq-gap", "vertex": "sink", "subtask": "0"}).Add(1)
	h = ComputeHealth(r, tr, nil)
	if h.Status != HealthViolation || h.AuditViolations != 4 {
		t.Fatalf("violations: status = %s total = %d, want VIOLATION 4", h.Status, h.AuditViolations)
	}
	if got := h.Invariants(); len(got) != 2 || got[0] != "replay-hash-mismatch" || got[1] != "seq-gap" {
		t.Fatalf("invariants = %v", got)
	}
	if h.ViolationsByInvariant["replay-hash-mismatch"] != 3 {
		t.Fatalf("by-invariant = %v", h.ViolationsByInvariant)
	}
}

func TestComputeHealthNilInputs(t *testing.T) {
	h := ComputeHealth(nil, nil, nil)
	if h.Status != HealthOK {
		t.Fatalf("nil inputs: status = %s, want OK", h.Status)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := NewRegistry()
	s, err := StartServer("127.0.0.1:0", func() *Registry { return r }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func() (int, Health) {
		resp, err := http.Get("http://" + s.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("unmarshal %q: %v", body, err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != HealthOK {
		t.Fatalf("healthy: code = %d status = %s, want 200 OK", code, h.Status)
	}

	r.Counter("clonos_audit_violations_total", "violations",
		Labels{"invariant": "fingerprint-mismatch", "vertex": "reduce", "subtask": "1"}).Inc()
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != HealthViolation {
		t.Fatalf("violated: code = %d status = %s, want 503 VIOLATION", code, h.Status)
	}
	if h.AuditViolations != 1 || h.ViolationsByInvariant["fingerprint-mismatch"] != 1 {
		t.Fatalf("violation accounting: %+v", h)
	}
}
