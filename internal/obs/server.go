package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves metric exposition and the standard Go debug endpoints
// over HTTP:
//
//	/metrics             Prometheus text format 0.0.4
//	/metrics.json        JSON registry snapshot
//	/healthz             aggregated health verdict (see ComputeHealth); 503 on VIOLATION
//	/debug/trace         retained tracer spans/events + one registry sample, JSONL
//	/debug/trace.chrome  the same, as Chrome trace_event JSON (Perfetto)
//	/debug/vars          expvar
//	/debug/pprof/        runtime profiling
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr and serves exposition for whatever
// registry source (and tracer, for the /debug/trace endpoints, and
// flight recorder, for /healthz drop accounting) the callbacks return
// at request time; any may be nil or return nil, which renders an
// empty page. The indirection lets a long-running process expose the
// registry of the currently active experiment run.
func StartServer(addr string, source func() *Registry, tracer func() *Tracer, recorder func() *Recorder) (*Server, error) {
	if source == nil {
		source = func() *Registry { return nil }
	}
	if tracer == nil {
		tracer = func() *Tracer { return nil }
	}
	if recorder == nil {
		recorder = func() *Recorder { return nil }
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = source().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = source().WriteJSON(w)
	})
	// Live trace dump: everything the tracer rings still retain, plus a
	// registry sample taken now so counter state rides along with the
	// spans. Same record shape as the flight recorder's JSONL output.
	liveRecords := func() []TraceRecord {
		recs := TracerRecords(tracer())
		if reg := source(); reg != nil {
			recs = append(recs, SampleRecord(reg, time.Now()))
		}
		return recs
	}
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteTraceJSONL(w, liveRecords())
	})
	mux.HandleFunc("/debug/trace.chrome", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, liveRecords())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeHealth(w, ComputeHealth(source(), tracer(), recorder()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
