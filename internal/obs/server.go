package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves metric exposition and the standard Go debug endpoints
// over HTTP:
//
//	/metrics       Prometheus text format 0.0.4
//	/metrics.json  JSON registry snapshot
//	/debug/vars    expvar
//	/debug/pprof/  runtime profiling
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr and serves exposition for whatever
// registry source returns at request time (source may return nil, which
// renders an empty page). The indirection lets a long-running process
// expose the registry of the currently active experiment run.
func StartServer(addr string, source func() *Registry) (*Server, error) {
	if source == nil {
		source = func() *Registry { return nil }
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = source().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = source().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
