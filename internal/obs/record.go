package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Flight-recording record types. A recording is a JSONL stream of
// TraceRecord lines: tracer events and spans interleaved with periodic
// registry samples, in arrival order. The same shape backs the live
// /debug/trace endpoint and the clonos-trace CLI.
const (
	RecordEvent  = "event"
	RecordSpan   = "span"
	RecordSample = "sample"
)

// TraceMark is a named instant inside a recorded span (unix nanos).
type TraceMark struct {
	Name string `json:"name"`
	At   int64  `json:"at"`
}

// TraceRecord is one line of a flight recording. TS is unix nanoseconds:
// the event instant, the span start, or the sample time. End is set for
// spans only. Vals carries a flattened registry sample keyed by
// exposition-style instance names (`family{k="v"}`, histograms as
// `_count`/`_sum`).
type TraceRecord struct {
	Type  string             `json:"type"`
	Name  string             `json:"name,omitempty"`
	TS    int64              `json:"ts"`
	End   int64              `json:"end,omitempty"`
	Attrs map[string]string  `json:"attrs,omitempty"`
	Marks []TraceMark        `json:"marks,omitempty"`
	Vals  map[string]float64 `json:"vals,omitempty"`
}

// Duration returns a span record's wall time (0 for non-spans).
func (r TraceRecord) Duration() time.Duration {
	if r.Type != RecordSpan || r.End == 0 {
		return 0
	}
	return time.Duration(r.End - r.TS)
}

// Phases decomposes a span record into consecutive mark-to-mark
// segments, mirroring SpanRecord.Phases.
func (r TraceRecord) Phases() []Phase {
	out := make([]Phase, 0, len(r.Marks))
	prev := r.TS
	for _, m := range r.Marks {
		out = append(out, Phase{Name: m.Name, Dur: time.Duration(m.At - prev)})
		prev = m.At
	}
	return out
}

// Mark returns the instant of the named mark (ok=false when absent).
func (r TraceRecord) Mark(name string) (int64, bool) {
	for _, m := range r.Marks {
		if m.Name == name {
			return m.At, true
		}
	}
	return 0, false
}

// EventRecord converts a tracer event to its recording shape. The
// structured payload is not serialized — attributes carry the portable
// metadata.
func EventRecord(ev Event) TraceRecord {
	return TraceRecord{Type: RecordEvent, Name: ev.Name, TS: ev.Time.UnixNano(), Attrs: ev.Attrs}
}

// SpanTraceRecord converts an ended span to its recording shape.
func SpanTraceRecord(sp SpanRecord) TraceRecord {
	rec := TraceRecord{Type: RecordSpan, Name: sp.Name, TS: sp.Start.UnixNano(), End: sp.End.UnixNano(), Attrs: sp.Attrs}
	for _, m := range sp.Marks {
		rec.Marks = append(rec.Marks, TraceMark{Name: m.Name, At: m.At.UnixNano()})
	}
	return rec
}

// SampleRecord captures the registry's flattened state at time now.
func SampleRecord(r *Registry, now time.Time) TraceRecord {
	return TraceRecord{Type: RecordSample, TS: now.UnixNano(), Vals: r.Snapshot().Flatten()}
}

// Flatten renders the snapshot as a flat map keyed by exposition-style
// instance names: counters and gauges map to their value, histograms to
// `name_count` and `name_sum` entries.
func (s RegistrySnapshot) Flatten() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range s.Families {
		for _, m := range f.Metrics {
			key := f.Name + labelString(m.Labels, "", "")
			switch f.Type {
			case typeHistogram:
				out[key+"_count"] = float64(m.Count)
				out[key+"_sum"] = m.Sum
			default:
				if m.Value != nil {
					out[key] = *m.Value
				}
			}
		}
	}
	return out
}

// TracerRecords converts a tracer's retained events and spans into
// recording shape, sorted by start time. Nil-safe.
func TracerRecords(t *Tracer) []TraceRecord {
	if t == nil {
		return nil
	}
	events := t.Events()
	spans := t.Spans()
	out := make([]TraceRecord, 0, len(events)+len(spans))
	for _, ev := range events {
		out = append(out, EventRecord(ev))
	}
	for _, sp := range spans {
		out = append(out, SpanTraceRecord(sp))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteTraceJSONL writes records as one JSON object per line.
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a JSONL recording. Blank lines are skipped; a
// malformed line fails with its line number so a truncated tail (the
// recorder was killed mid-write) is easy to diagnose.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceRecord
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return out, fmt.Errorf("obs: recording line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
