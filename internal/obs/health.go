package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// Health statuses, ordered by severity. DEGRADED means the job is
// running but an operator should look (stuck tasks, observability data
// being shed); VIOLATION means the audit plane detected a breach of the
// causal-recovery contract — the job's output can no longer be trusted.
const (
	HealthOK        = "OK"
	HealthDegraded  = "DEGRADED"
	HealthViolation = "VIOLATION"
)

// Health is the aggregated job health verdict served by /healthz: the
// stall watchdog's view, observability back-pressure (tracer ring and
// flight-recorder drops), and the audit plane's violation tally folded
// into one status.
type Health struct {
	Status              string    `json:"status"`
	Time                time.Time `json:"time"`
	StalledTasks        int64     `json:"stalled_tasks"`
	TracerDroppedEvents uint64    `json:"tracer_dropped_events"`
	TracerDroppedSpans  uint64    `json:"tracer_dropped_spans"`
	RecorderDropped     uint64    `json:"recorder_dropped"`
	AuditViolations     uint64    `json:"audit_violations"`
	// ViolationsByInvariant breaks audit_violations down by the
	// {invariant} label of clonos_audit_violations_total.
	ViolationsByInvariant map[string]uint64 `json:"violations_by_invariant,omitempty"`
}

// Metric families ComputeHealth aggregates.
const (
	famStalledTasks    = "clonos_stalled_tasks"
	famAuditViolations = "clonos_audit_violations_total"
)

// ComputeHealth derives the health verdict from the registry (stall
// gauge + audit violation counters), the tracer's drop counts, and the
// flight recorder's overflow count. Any argument may be nil.
func ComputeHealth(reg *Registry, tracer *Tracer, rec *Recorder) Health {
	h := Health{Status: HealthOK, Time: time.Now()}
	for _, fam := range reg.Snapshot().Families {
		switch fam.Name {
		case famStalledTasks:
			for _, m := range fam.Metrics {
				if m.Value != nil {
					h.StalledTasks += int64(*m.Value)
				}
			}
		case famAuditViolations:
			for _, m := range fam.Metrics {
				if m.Value == nil {
					continue
				}
				n := uint64(*m.Value)
				h.AuditViolations += n
				if inv := m.Labels["invariant"]; inv != "" && n > 0 {
					if h.ViolationsByInvariant == nil {
						h.ViolationsByInvariant = make(map[string]uint64)
					}
					h.ViolationsByInvariant[inv] += n
				}
			}
		}
	}
	if tracer != nil {
		h.TracerDroppedEvents, h.TracerDroppedSpans = tracer.Dropped()
	}
	if rec != nil {
		h.RecorderDropped = rec.Dropped()
	}
	switch {
	case h.AuditViolations > 0:
		h.Status = HealthViolation
	case h.StalledTasks > 0 || h.TracerDroppedEvents > 0 || h.TracerDroppedSpans > 0 || h.RecorderDropped > 0:
		h.Status = HealthDegraded
	}
	return h
}

// Invariants lists the breached invariants in deterministic order (for
// log lines and tests).
func (h Health) Invariants() []string {
	out := make([]string, 0, len(h.ViolationsByInvariant))
	for inv := range h.ViolationsByInvariant {
		out = append(out, inv)
	}
	sort.Strings(out)
	return out
}

// writeHealth serves one /healthz response. A VIOLATION verdict answers
// 503 so load balancers and probes fail over without parsing the body;
// DEGRADED stays 200 — the job is still making progress.
func writeHealth(w http.ResponseWriter, h Health) {
	w.Header().Set("Content-Type", "application/json")
	if h.Status == HealthViolation {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}
