package obs

import (
	"math"
	"testing"

	"clonos/internal/metrics"
)

// TestQuantileMatchesMetricsPercentile reconciles the two quantile
// definitions in the repo: Histogram.Quantile uses the same nearest-rank
// rule as metrics.Percentile, so when every observation is exactly a
// bucket bound the two must agree exactly — no off-by-one between the
// harness's latency tables and the live p99 gauge.
func TestQuantileMatchesMetricsPercentile(t *testing.T) {
	const n = 200
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := newHistogram(bounds)
	var vals []int64
	// A deterministic shuffle (stride coprime with n) of 1..n: order must
	// not matter to either definition.
	for i := 0; i < n; i++ {
		v := int64((i*73)%n + 1)
		vals = append(vals, v)
		h.Observe(float64(v))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		want := float64(metrics.Percentile(vals, q))
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, metrics.Percentile = %v: definitions diverged", q, got, want)
		}
	}
}

// TestQuantileBoundedError verifies the documented error bound on the
// exponential latency buckets: the histogram quantile may overestimate
// the exact nearest-rank percentile by at most one bucket factor (2x for
// LatencyBuckets) and never returns less than the exact value.
func TestQuantileBoundedError(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	var vals []float64
	// Deterministic pseudo-random latencies spread over 1ms..60s, well
	// inside the bucket range and above the smallest bound.
	x := uint64(12345)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		frac := float64(x>>11) / float64(1<<53)
		v := 0.001 * math.Pow(60000, frac) // log-uniform in [1ms, 60s]
		vals = append(vals, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := metrics.PercentileF(vals, q)
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %v underestimates exact %v", q, got, exact)
		}
		if got > exact*2 {
			t.Errorf("Quantile(%v) = %v exceeds exact %v by more than the bucket factor 2", q, got, exact)
		}
	}
	if h.Quantile(0.99) == 0 {
		t.Error("Quantile(0.99) = 0 on a populated histogram")
	}
}
