package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format 0.0.4: # HELP / # TYPE headers, one sample line per
// instance, and for histograms the cumulative le-bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	var cur *family
	r.visit(func(f *family, inst *instance) {
		if f != cur {
			cur = f
			if f.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		}
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(inst.labels, "", ""), inst.counter.Value())
		case typeGauge:
			var v float64
			if inst.fn != nil {
				v = inst.fn()
			} else {
				v = float64(inst.gauge.Value())
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(inst.labels, "", ""), formatFloat(v))
		case typeHistogram:
			h := inst.hist
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(inst.labels, "le", formatFloat(bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(inst.labels, "le", "+Inf"), h.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(inst.labels, "", ""), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(inst.labels, "", ""), h.Count())
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...} with labels sorted by key, optionally
// appending one extra pair (used for the histogram le label). Returns ""
// when there are no labels at all.
func labelString(labels Labels, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is a
// string ("0.001", "+Inf") because JSON cannot encode infinity.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is one metric instance's state at snapshot time. Value
// is a pointer so a counter or gauge legitimately at zero still renders,
// while histograms (which use Count/Sum/Buckets instead) omit it.
type MetricSnapshot struct {
	Labels  Labels   `json:"labels,omitempty"`
	Value   *float64 `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// FamilySnapshot is one family's state at snapshot time.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    string           `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// RegistrySnapshot is a point-in-time copy of every registered family,
// suitable for JSON encoding.
type RegistrySnapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures all families and instances.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	var cur *FamilySnapshot
	var curFam *family
	r.visit(func(f *family, inst *instance) {
		if f != curFam {
			curFam = f
			snap.Families = append(snap.Families, FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ})
			cur = &snap.Families[len(snap.Families)-1]
		}
		m := MetricSnapshot{Labels: inst.labels.clone()}
		setValue := func(v float64) { m.Value = &v }
		switch f.typ {
		case typeCounter:
			setValue(float64(inst.counter.Value()))
		case typeGauge:
			if inst.fn != nil {
				setValue(inst.fn())
			} else {
				setValue(float64(inst.gauge.Value()))
			}
		case typeHistogram:
			h := inst.hist
			m.Count = h.Count()
			m.Sum = h.Sum()
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				m.Buckets = append(m.Buckets, Bucket{LE: formatFloat(bound), Count: cum})
			}
			m.Buckets = append(m.Buckets, Bucket{LE: "+Inf", Count: h.Count()})
		}
		cur.Metrics = append(cur.Metrics, m)
	})
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
