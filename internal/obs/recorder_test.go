package obs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedWriter blocks every Write until the gate is released, simulating a
// wedged disk behind the flight recorder.
type gatedWriter struct {
	gate chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
}

func (w *gatedWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *gatedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRecorderFullQueueNeverBlocks wedges the recorder's writer, fills
// the bounded queue from concurrent publishers, and verifies the
// no-block contract: every Push returns while the writer is stuck, the
// overflow is counted, and written + dropped accounts for every record
// pushed — nothing is lost silently and nothing is double-counted.
func TestRecorderFullQueueNeverBlocks(t *testing.T) {
	w := &gatedWriter{gate: make(chan struct{})}
	// A tiny queue and an hour-long flush interval: once the drain
	// goroutine blocks inside Write, everything else must overflow.
	rec := NewRecorder(w, RecorderConfig{QueueSize: 16, FlushInterval: time.Hour})

	// Records are padded past the drain goroutine's 64 KiB buffered
	// writer so it blocks on the gated Write after a bounded number of
	// records instead of buffering the whole test load.
	pad := strings.Repeat("x", 4096)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				rec.Push(TraceRecord{
					Type: RecordEvent,
					Name: fmt.Sprintf("ev-%d-%d", i, j),
					Attrs: map[string]string{
						"pad": pad,
					},
				})
			}
		}(i)
	}
	// This Wait is the no-block assertion: with the writer wedged and the
	// queue full, a blocking Push would deadlock the test (caught by the
	// test timeout) instead of returning.
	wg.Wait()

	dropped := rec.Dropped()
	if dropped == 0 {
		t.Fatalf("dropped = 0 after %d pushes against a wedged 16-slot queue, want overflow", writers*perWriter)
	}

	// Release the writer: Close drains the surviving queue and flushes.
	close(w.gate)
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := ReadTraceJSONL(io.Reader(strings.NewReader(w.String())))
	if err != nil {
		t.Fatalf("reading recording back: %v", err)
	}
	written := uint64(len(recs))
	if written+dropped != writers*perWriter {
		t.Fatalf("written (%d) + dropped (%d) = %d, want %d: the drop count must match actual drops exactly",
			written, dropped, written+dropped, writers*perWriter)
	}
	if written == 0 {
		t.Error("written = 0, want the queued records to survive the stall")
	}

	// Pushing after Close must stay non-blocking and keep counting.
	rec.Push(TraceRecord{Type: RecordEvent, Name: "late"})
	if got := rec.Dropped(); got != dropped+1 {
		t.Errorf("dropped after post-close push = %d, want %d", got, dropped+1)
	}
}
