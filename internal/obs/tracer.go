package obs

import (
	"sync"
	"time"
)

// Event is one timestamped occurrence recorded by a Tracer. Payload
// carries a caller-defined structured value (e.g. the job package's Event
// struct) so higher-level APIs can be rebuilt from the trace.
type Event struct {
	Time    time.Time
	Name    string
	Attrs   map[string]string
	Payload any
}

// Mark is a named instant inside a span.
type Mark struct {
	Name string
	At   time.Time
}

// Phase is one segment of a span: the interval ending at the mark with
// this name, measured from the previous mark (or the span start).
type Phase struct {
	Name string
	Dur  time.Duration
}

// SpanRecord is the immutable result of an ended span.
type SpanRecord struct {
	Name  string
	Attrs map[string]string
	Start time.Time
	End   time.Time
	Marks []Mark
}

// Duration returns the span's total wall time.
func (s SpanRecord) Duration() time.Duration { return s.End.Sub(s.Start) }

// Phases decomposes the span into consecutive mark-to-mark segments. The
// first phase is measured from the span start; marks are assumed to be in
// time order (Mark appends monotonically).
func (s SpanRecord) Phases() []Phase {
	out := make([]Phase, 0, len(s.Marks))
	prev := s.Start
	for _, m := range s.Marks {
		out = append(out, Phase{Name: m.Name, Dur: m.At.Sub(prev)})
		prev = m.At
	}
	return out
}

// Phase returns the duration of the named phase segment.
func (s SpanRecord) Phase(name string) (time.Duration, bool) {
	for _, p := range s.Phases() {
		if p.Name == name {
			return p.Dur, true
		}
	}
	return 0, false
}

// Attr returns the attribute value for key ("" when absent).
func (s SpanRecord) Attr(key string) string { return s.Attrs[key] }

// Span is an in-progress named operation. Marks partition it into
// phases; attributes carry outcome metadata (e.g. aborted=crashed).
// All methods are safe for concurrent use and nil-receiver safe.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	name  string
	attrs map[string]string
	start time.Time
	marks []Mark
	ended bool
	rec   SpanRecord
}

// Mark records a named instant, ending the current phase.
func (s *Span) Mark(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.marks = append(s.marks, Mark{Name: name, At: time.Now()})
	}
	s.mu.Unlock()
}

// SetAttr sets an attribute on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]string)
		}
		s.attrs[k] = v
	}
	s.mu.Unlock()
}

// End finishes the span, publishes it to the tracer, and returns the
// record. Idempotent: later calls return the first record.
func (s *Span) End() SpanRecord {
	if s == nil {
		return SpanRecord{}
	}
	s.mu.Lock()
	if s.ended {
		rec := s.rec
		s.mu.Unlock()
		return rec
	}
	s.ended = true
	s.rec = SpanRecord{
		Name:  s.name,
		Attrs: s.attrs,
		Start: s.start,
		End:   time.Now(),
		Marks: append([]Mark(nil), s.marks...),
	}
	rec := s.rec
	tr := s.tracer
	s.mu.Unlock()
	if tr != nil {
		tr.addSpan(rec)
	}
	return rec
}

// TracerSink receives every event and ended span published to a Tracer,
// synchronously on the publishing goroutine. Implementations must be
// cheap and non-blocking (the flight recorder enqueues into a bounded
// channel and drops on overflow rather than stalling the engine).
type TracerSink interface {
	OnEvent(Event)
	OnSpan(SpanRecord)
}

// Tracer collects events and ended spans in bounded rings: the newest
// maxEvents/maxSpans entries are kept, and older ones are counted as
// dropped rather than growing memory without bound on long runs. An
// optional sink additionally receives every record as it is published,
// unaffected by the ring bounds.
type Tracer struct {
	mu            sync.Mutex
	events        []Event
	spans         []SpanRecord
	maxEvents     int
	maxSpans      int
	droppedEvents uint64
	droppedSpans  uint64
	sink          TracerSink
}

const (
	defaultMaxEvents = 8192
	defaultMaxSpans  = 1024
)

// NewTracer creates a tracer with default bounds.
func NewTracer() *Tracer {
	return &Tracer{maxEvents: defaultMaxEvents, maxSpans: defaultMaxSpans}
}

// SetSink attaches a sink that receives every subsequent event and ended
// span (nil detaches). The sink is invoked synchronously; see TracerSink.
func (t *Tracer) SetSink(s TracerSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// SetLimits overrides the event/span retention bounds (values <= 0 keep
// the current bound). job.Config.TraceMaxEvents/TraceMaxSpans route here.
func (t *Tracer) SetLimits(maxEvents, maxSpans int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if maxEvents > 0 {
		t.maxEvents = maxEvents
	}
	if maxSpans > 0 {
		t.maxSpans = maxSpans
	}
	t.mu.Unlock()
}

// Emit records an event.
func (t *Tracer) Emit(name string, payload any, attrs map[string]string) {
	if t == nil {
		return
	}
	ev := Event{Time: time.Now(), Name: name, Attrs: attrs, Payload: payload}
	t.mu.Lock()
	t.events = append(t.events, ev)
	if len(t.events) > t.maxEvents {
		drop := len(t.events) - t.maxEvents
		t.events = append(t.events[:0], t.events[drop:]...)
		t.droppedEvents += uint64(drop)
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.OnEvent(ev)
	}
}

// Events returns a copy of the retained events in arrival order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// StartSpan begins a span. End() publishes it to this tracer.
func (t *Tracer) StartSpan(name string, attrs map[string]string) *Span {
	var a map[string]string
	if len(attrs) > 0 {
		a = make(map[string]string, len(attrs))
		for k, v := range attrs {
			a[k] = v
		}
	}
	return &Span{tracer: t, name: name, attrs: a, start: time.Now()}
}

func (t *Tracer) addSpan(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	if len(t.spans) > t.maxSpans {
		drop := len(t.spans) - t.maxSpans
		t.spans = append(t.spans[:0], t.spans[drop:]...)
		t.droppedSpans += uint64(drop)
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink.OnSpan(rec)
	}
}

// Spans returns a copy of the retained ended spans in end order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Dropped reports how many events and spans fell out of the rings.
func (t *Tracer) Dropped() (events, spans uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedEvents, t.droppedSpans
}

// Len reports the current ring occupancy (retained events and spans).
func (t *Tracer) Len() (events, spans int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events), len(t.spans)
}

// Limits reports the retention bounds of the event and span rings.
func (t *Tracer) Limits() (maxEvents, maxSpans int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxEvents, t.maxSpans
}
