// Package services implements the causal services of Clonos §4.2: the
// programming abstraction that hides causal logging and recovery from UDF
// authors. Under normal operation a service executes its nondeterministic
// logic and appends the result to the causal log; during causally guided
// recovery it returns the logged result instead.
package services

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"clonos/internal/causal"
)

// Well-known service IDs for SERVICE determinants.
const (
	// ServiceHTTP identifies external-world (HTTP) call responses.
	ServiceHTTP uint16 = 1
	// ServiceCustomBase is the first ID handed to user-built services.
	ServiceCustomBase uint16 = 100
)

// Logger is the slice of the causal manager the services append to.
type Logger interface {
	AppendTimestamp(ms int64)
	AppendRNG(seed int64)
	AppendService(id uint16, payload []byte)
}

// Replayer supplies logged determinants during causally guided recovery.
// Replaying reports whether the task is still consuming its recovered
// determinant log; Next consumes the next main-thread determinant, which
// must be of the given kind.
type Replayer interface {
	Replaying() bool
	Next(kind causal.Kind) (causal.Determinant, error)
}

// Services is the per-task causal service registry handed to operators
// through their runtime context.
type Services struct {
	log   Logger
	rep   Replayer
	clock func() int64
	world *ExternalWorld

	// Timestamp service caching (§4.2 "Wall-Clock Time"): the cached
	// value refreshes at most once per granularity via a logged timer,
	// cutting determinant volume by orders of magnitude.
	granMs int64
	//clonos:ephemeral cache of a logged TIME determinant; replay re-fills it from the causal log
	cached int64
	//clonos:ephemeral invalidated at restore; the next read re-arms the cache from a logged determinant
	cachedValid bool
	//clonos:ephemeral refresh bookkeeping; the logged timer determinant re-derives it during replay
	readSince  bool
	armRefresh func(whenMs int64)

	// RNG service: one seed per epoch, drawn lazily and logged.
	//clonos:ephemeral re-seeded from the logged RNGSEED determinant at the restored epoch
	rng *rand.Rand
	//clonos:ephemeral cleared at every epoch roll so the first draw re-logs (or replays) a seed
	seedFresh bool
	seedFn    func() int64

	//clonos:ephemeral registration counter; operators re-register custom services in open order after restore
	nextCustom uint16
}

// Config configures a task's services.
type Config struct {
	// Clock returns wall time in Unix ms; nil uses the real clock.
	Clock func() int64
	// TimestampGranularityMs is the cache refresh period; 0 logs every
	// timestamp call individually.
	TimestampGranularityMs int64
	// World is the simulated external world for HTTP calls; nil
	// disables the HTTP service.
	World *ExternalWorld
	// SeedSource draws fresh RNG seeds; nil derives them from the clock.
	SeedSource func() int64
}

// SeededSource returns a deterministic SeedSource: a splitmix64 stream
// over the given seed. Two sources built from the same seed yield the
// same seed sequence, making a job's nondeterminant stream reproducible
// run-to-run — the property a replayed fault-injection schedule needs to
// hit the same determinants the original run logged. (The default
// wall-clock fallback draws a fresh, unrepeatable seed per epoch.)
func SeededSource(seed int64) func() int64 {
	state := uint64(seed)
	return func() int64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int64(z ^ (z >> 31))
	}
}

// New builds the service registry. log receives determinants; rep serves
// them back during recovery; armRefresh (may be nil) registers the
// timestamp-cache refresh timer with the task's timer service.
func New(cfg Config, log Logger, rep Replayer, armRefresh func(whenMs int64)) *Services {
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixMilli() }
	}
	seedFn := cfg.SeedSource
	if seedFn == nil {
		seedFn = func() int64 { return time.Now().UnixNano() }
	}
	return &Services{
		log:        log,
		rep:        rep,
		clock:      clock,
		world:      cfg.World,
		granMs:     cfg.TimestampGranularityMs,
		armRefresh: armRefresh,
		seedFresh:  true,
		seedFn:     seedFn,
		nextCustom: ServiceCustomBase,
	}
}

// CurrentTimeMillis is the Timestamp service: nondeterministic wall-clock
// reads made replayable. With a positive granularity, only cache refreshes
// generate TS determinants; reads in between return the cached value
// deterministically.
func (s *Services) CurrentTimeMillis() (int64, error) {
	if s.granMs > 0 && s.cachedValid {
		s.readSince = true
		return s.cached, nil
	}
	ts, err := s.freshTimestamp()
	if err != nil {
		return 0, err
	}
	if s.granMs > 0 {
		s.cached = ts
		s.cachedValid = true
		s.readSince = false
		if s.armRefresh != nil {
			s.armRefresh(ts + s.granMs)
		}
	}
	return ts, nil
}

// freshTimestamp generates (or replays) one TS determinant.
func (s *Services) freshTimestamp() (int64, error) {
	if s.rep != nil && s.rep.Replaying() {
		d, err := s.rep.Next(causal.KindTimestamp)
		if err != nil {
			return 0, err
		}
		s.log.AppendTimestamp(d.Value)
		return d.Value, nil
	}
	ts := s.clock()
	s.log.AppendTimestamp(ts)
	return ts, nil
}

// OnRefreshTimer is invoked by the task when the timestamp-cache refresh
// timer fires (a logged, replayable event). It refreshes the cache and
// re-arms the timer only if reads occurred since the last refresh.
func (s *Services) OnRefreshTimer() error {
	if !s.readSince {
		s.cachedValid = false
		return nil
	}
	ts, err := s.freshTimestamp()
	if err != nil {
		return err
	}
	s.cached = ts
	s.readSince = false
	if s.armRefresh != nil {
		s.armRefresh(ts + s.granMs)
	}
	return nil
}

// StartEpoch resets per-epoch service state: the next RNG use draws and
// logs a fresh seed (§4.2 "Random Numbers"), and the timestamp cache is
// invalidated so its validity is a deterministic function of the current
// epoch alone — a recovering standby starts the epoch with exactly this
// state, so cache hits and misses replay identically.
func (s *Services) StartEpoch() {
	s.seedFresh = true
	s.cachedValid = false
	s.readSince = false
}

// Random returns the epoch-seeded deterministic RNG, drawing and logging
// the seed on first use in the epoch.
func (s *Services) Random() (*rand.Rand, error) {
	if s.seedFresh {
		var seed int64
		if s.rep != nil && s.rep.Replaying() {
			d, err := s.rep.Next(causal.KindRNG)
			if err != nil {
				return nil, err
			}
			seed = d.Value
		} else {
			seed = s.seedFn()
		}
		s.log.AppendRNG(seed)
		s.rng = rand.New(rand.NewSource(seed))
		s.seedFresh = false
	}
	return s.rng, nil
}

// RandomInt63 draws one value from the RNG service.
func (s *Services) RandomInt63() (int64, error) {
	r, err := s.Random()
	if err != nil {
		return 0, err
	}
	return r.Int63(), nil
}

// HTTPGet is the HTTP service: it calls the external world and logs the
// response so recovery replays the identical payload without re-issuing
// the call.
func (s *Services) HTTPGet(url string) ([]byte, error) {
	return s.applyService(ServiceHTTP, func() ([]byte, error) {
		if s.world == nil {
			return nil, fmt.Errorf("services: no external world configured")
		}
		return s.world.Get(url), nil
	})
}

// applyService runs f (or replays its logged result) for service id.
func (s *Services) applyService(id uint16, f func() ([]byte, error)) ([]byte, error) {
	if s.rep != nil && s.rep.Replaying() {
		d, err := s.rep.Next(causal.KindService)
		if err != nil {
			return nil, err
		}
		if d.ServiceID != id {
			return nil, fmt.Errorf("services: replay expected service %d, log has %d", id, d.ServiceID)
		}
		s.log.AppendService(id, d.Payload)
		return d.Payload, nil
	}
	out, err := f()
	if err != nil {
		return nil, err
	}
	s.log.AppendService(id, out)
	return out, nil
}

// Custom is a user-defined causal service (§4.2 Listing 2): arbitrary
// nondeterministic logic whose serialized output is logged and replayed
// transparently.
type Custom struct {
	id  uint16
	svc *Services
	f   func(input []byte) ([]byte, error)
}

// BuildService registers a user-defined nondeterministic function as a
// causal service. Services must be built in a deterministic order at
// operator setup so IDs are stable across task incarnations.
func (s *Services) BuildService(f func(input []byte) ([]byte, error)) *Custom {
	id := s.nextCustom
	s.nextCustom++
	return &Custom{id: id, svc: s, f: f}
}

// Apply runs the service on input under normal operation, or replays the
// logged output during recovery.
func (c *Custom) Apply(input []byte) ([]byte, error) {
	return c.svc.applyService(c.id, func() ([]byte, error) { return c.f(input) })
}

// ExternalWorld simulates external systems reachable from UDFs. Responses
// change on every call (a per-URL version counter), so re-executing a call
// during recovery would observe a different answer — exactly the
// divergence causal logging must mask.
//
//clonos:external stands in for systems outside the recovery domain; tasks never snapshot it, they log the observed responses as determinants
type ExternalWorld struct {
	mu       sync.Mutex
	versions map[string]uint64
	// Handler, when set, computes responses; the default encodes the
	// URL with its version counter.
	Handler func(url string, version uint64) []byte
	calls   uint64
}

// NewExternalWorld creates a fresh world.
func NewExternalWorld() *ExternalWorld {
	return &ExternalWorld{versions: make(map[string]uint64)}
}

// Get performs one call; every call advances the URL's version.
func (w *ExternalWorld) Get(url string) []byte {
	w.mu.Lock()
	w.versions[url]++
	v := w.versions[url]
	w.calls++
	h := w.Handler
	w.mu.Unlock()
	if h != nil {
		return h(url, v)
	}
	out := make([]byte, 0, len(url)+9)
	out = append(out, url...)
	out = append(out, '#')
	out = binary.BigEndian.AppendUint64(out, v)
	return out
}

// Calls reports the total number of calls served; tests use it to verify
// recovery does not re-issue external calls.
func (w *ExternalWorld) Calls() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.calls
}
