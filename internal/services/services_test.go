package services

import (
	"fmt"
	"sync/atomic"
	"testing"

	"clonos/internal/causal"
)

// recorder implements Logger, collecting appended determinants.
type recorder struct {
	dets []causal.Determinant
}

func (r *recorder) AppendTimestamp(ms int64) {
	r.dets = append(r.dets, causal.Determinant{Kind: causal.KindTimestamp, Value: ms})
}
func (r *recorder) AppendRNG(seed int64) {
	r.dets = append(r.dets, causal.Determinant{Kind: causal.KindRNG, Value: seed})
}
func (r *recorder) AppendService(id uint16, payload []byte) {
	r.dets = append(r.dets, causal.Determinant{Kind: causal.KindService, ServiceID: id, Payload: payload})
}

// replayer implements Replayer over a recorded determinant list.
type replayer struct {
	dets []causal.Determinant
	pos  int
}

func (r *replayer) Replaying() bool { return r.pos < len(r.dets) }
func (r *replayer) Next(kind causal.Kind) (causal.Determinant, error) {
	if r.pos >= len(r.dets) {
		return causal.Determinant{}, fmt.Errorf("replayer: log exhausted")
	}
	d := r.dets[r.pos]
	if d.Kind != kind {
		return causal.Determinant{}, fmt.Errorf("replayer: want %v, log has %v", kind, d.Kind)
	}
	r.pos++
	return d, nil
}

func TestTimestampUncachedLogsEveryCall(t *testing.T) {
	var now atomic.Int64
	now.Store(1000)
	rec := &recorder{}
	s := New(Config{Clock: now.Load, TimestampGranularityMs: 0}, rec, nil, nil)
	ts1, err := s.CurrentTimeMillis()
	if err != nil || ts1 != 1000 {
		t.Fatalf("ts1=%d err=%v", ts1, err)
	}
	now.Store(1001)
	ts2, _ := s.CurrentTimeMillis()
	if ts2 != 1001 {
		t.Fatalf("ts2=%d", ts2)
	}
	if len(rec.dets) != 2 {
		t.Fatalf("logged %d determinants, want 2", len(rec.dets))
	}
}

func TestTimestampCachedReducesDeterminants(t *testing.T) {
	var now atomic.Int64
	now.Store(5000)
	rec := &recorder{}
	var armed []int64
	s := New(Config{Clock: now.Load, TimestampGranularityMs: 10}, rec, nil, func(when int64) { armed = append(armed, when) })
	for i := 0; i < 100; i++ {
		if _, err := s.CurrentTimeMillis(); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.dets) != 1 {
		t.Fatalf("logged %d determinants for 100 reads, want 1", len(rec.dets))
	}
	if len(armed) != 1 || armed[0] != 5010 {
		t.Fatalf("armed = %v", armed)
	}
	// Refresh with reads pending: logs a new TS, re-arms.
	now.Store(5010)
	if err := s.OnRefreshTimer(); err != nil {
		t.Fatal(err)
	}
	if len(rec.dets) != 2 || len(armed) != 2 {
		t.Fatalf("after refresh: dets=%d armed=%d", len(rec.dets), len(armed))
	}
	ts, _ := s.CurrentTimeMillis()
	if ts != 5010 {
		t.Fatalf("cached ts = %d", ts)
	}
	// Refresh with no reads: cache invalidated, no new determinant.
	s.readSince = false
	nDets := len(rec.dets)
	if err := s.OnRefreshTimer(); err != nil {
		t.Fatal(err)
	}
	if len(rec.dets) != nDets {
		t.Fatal("idle refresh logged a determinant")
	}
	if s.cachedValid {
		t.Fatal("idle refresh kept cache valid")
	}
}

func TestTimestampReplayReturnsLoggedValues(t *testing.T) {
	// Original run.
	var now atomic.Int64
	now.Store(100)
	rec := &recorder{}
	s := New(Config{Clock: now.Load}, rec, nil, nil)
	a, _ := s.CurrentTimeMillis()
	now.Store(200)
	b, _ := s.CurrentTimeMillis()

	// Recovery run with a different wall clock.
	rep := &replayer{dets: rec.dets}
	rec2 := &recorder{}
	var wrong atomic.Int64
	wrong.Store(99999)
	s2 := New(Config{Clock: wrong.Load}, rec2, rep, nil)
	ra, _ := s2.CurrentTimeMillis()
	rb, _ := s2.CurrentTimeMillis()
	if ra != a || rb != b {
		t.Fatalf("replay returned %d,%d want %d,%d", ra, rb, a, b)
	}
	// Replay re-appends, rebuilding the log identically.
	if len(rec2.dets) != 2 || rec2.dets[0].Value != a {
		t.Fatalf("rebuilt log = %v", rec2.dets)
	}
	// Log exhausted: live mode resumes on the new clock.
	rc, _ := s2.CurrentTimeMillis()
	if rc != 99999 {
		t.Fatalf("post-replay ts = %d", rc)
	}
}

func TestRNGSeedPerEpochAndReplay(t *testing.T) {
	rec := &recorder{}
	seed := int64(40)
	s := New(Config{SeedSource: func() int64 { seed++; return seed }}, rec, nil, nil)
	v1, err := s.RandomInt63()
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := s.RandomInt63()
	if len(rec.dets) != 1 {
		t.Fatalf("logged %d seeds, want 1", len(rec.dets))
	}
	s.StartEpoch()
	v3, _ := s.RandomInt63()
	if len(rec.dets) != 2 {
		t.Fatalf("logged %d seeds after new epoch, want 2", len(rec.dets))
	}

	// Replay: same values despite a different seed source.
	rep := &replayer{dets: rec.dets}
	s2 := New(Config{SeedSource: func() int64 { return 777 }}, &recorder{}, rep, nil)
	r1, _ := s2.RandomInt63()
	r2, _ := s2.RandomInt63()
	s2.StartEpoch()
	r3, _ := s2.RandomInt63()
	if r1 != v1 || r2 != v2 || r3 != v3 {
		t.Fatalf("replay = %d,%d,%d want %d,%d,%d", r1, r2, r3, v1, v2, v3)
	}
}

func TestHTTPServiceLogsAndReplays(t *testing.T) {
	world := NewExternalWorld()
	rec := &recorder{}
	s := New(Config{World: world}, rec, nil, nil)
	a, err := s.HTTPGet("svc/stock")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.HTTPGet("svc/stock")
	if string(a) == string(b) {
		t.Fatal("external world returned identical responses; nondeterminism not simulated")
	}
	calls := world.Calls()

	rep := &replayer{dets: rec.dets}
	s2 := New(Config{World: world}, &recorder{}, rep, nil)
	ra, _ := s2.HTTPGet("svc/stock")
	rb, _ := s2.HTTPGet("svc/stock")
	if string(ra) != string(a) || string(rb) != string(b) {
		t.Fatal("replayed responses differ from logged ones")
	}
	if world.Calls() != calls {
		t.Fatal("recovery re-issued external calls")
	}
}

func TestHTTPServiceWithoutWorld(t *testing.T) {
	s := New(Config{}, &recorder{}, nil, nil)
	if _, err := s.HTTPGet("x"); err == nil {
		t.Fatal("HTTPGet without world succeeded")
	}
}

func TestCustomServiceRoundTrip(t *testing.T) {
	rec := &recorder{}
	calls := 0
	s := New(Config{}, rec, nil, nil)
	svc := s.BuildService(func(input []byte) ([]byte, error) {
		calls++
		return append([]byte("out:"), input...), nil
	})
	out, err := svc.Apply([]byte("in"))
	if err != nil || string(out) != "out:in" {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}

	// Replay never invokes the user function.
	rep := &replayer{dets: rec.dets}
	s2 := New(Config{}, &recorder{}, rep, nil)
	svc2 := s2.BuildService(func(input []byte) ([]byte, error) {
		t.Fatal("user function invoked during replay")
		return nil, nil
	})
	out2, err := svc2.Apply([]byte("ignored"))
	if err != nil || string(out2) != "out:in" {
		t.Fatalf("replay out=%q err=%v", out2, err)
	}
}

func TestCustomServiceStableIDs(t *testing.T) {
	s := New(Config{}, &recorder{}, nil, nil)
	a := s.BuildService(func(b []byte) ([]byte, error) { return b, nil })
	b := s.BuildService(func(b []byte) ([]byte, error) { return b, nil })
	if a.id != ServiceCustomBase || b.id != ServiceCustomBase+1 {
		t.Fatalf("ids = %d,%d", a.id, b.id)
	}
}

func TestServiceReplayKindMismatch(t *testing.T) {
	rep := &replayer{dets: []causal.Determinant{{Kind: causal.KindTimestamp, Value: 5}}}
	s := New(Config{World: NewExternalWorld()}, &recorder{}, rep, nil)
	if _, err := s.HTTPGet("x"); err == nil {
		t.Fatal("kind mismatch not detected")
	}
}

func TestServiceReplayIDMismatch(t *testing.T) {
	rep := &replayer{dets: []causal.Determinant{{Kind: causal.KindService, ServiceID: 42, Payload: []byte("x")}}}
	s := New(Config{World: NewExternalWorld()}, &recorder{}, rep, nil)
	if _, err := s.HTTPGet("x"); err == nil {
		t.Fatal("service ID mismatch not detected")
	}
}

func TestExternalWorldCustomHandler(t *testing.T) {
	w := NewExternalWorld()
	w.Handler = func(url string, v uint64) []byte { return []byte(fmt.Sprintf("%s@%d", url, v)) }
	if got := string(w.Get("a")); got != "a@1" {
		t.Fatalf("got %q", got)
	}
	if got := string(w.Get("a")); got != "a@2" {
		t.Fatalf("got %q", got)
	}
}

func TestStartEpochResetsTimestampCache(t *testing.T) {
	var now atomic.Int64
	now.Store(100)
	rec := &recorder{}
	s := New(Config{Clock: now.Load, TimestampGranularityMs: 10}, rec, nil, nil)
	if _, err := s.CurrentTimeMillis(); err != nil {
		t.Fatal(err)
	}
	if len(rec.dets) != 1 {
		t.Fatalf("dets = %d", len(rec.dets))
	}
	// Within the epoch a second read hits the cache.
	if _, err := s.CurrentTimeMillis(); err != nil {
		t.Fatal(err)
	}
	if len(rec.dets) != 1 {
		t.Fatal("cache hit logged a determinant")
	}
	// Across the epoch boundary the cache must invalidate so a standby
	// replaying the new epoch observes the same miss.
	s.StartEpoch()
	if _, err := s.CurrentTimeMillis(); err != nil {
		t.Fatal(err)
	}
	if len(rec.dets) < 2 {
		t.Fatal("post-epoch read did not log a fresh timestamp")
	}
}
