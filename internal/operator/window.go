package operator

import (
	"fmt"

	"clonos/internal/statestore"
	"clonos/internal/types"
)

func init() {
	statestore.Register(map[int64]any{})
	statestore.Register([]sessionState{})
}

// AggregateFn is an incremental window aggregate.
type AggregateFn struct {
	// Create returns a fresh accumulator.
	Create func() any
	// Add folds one record into the accumulator.
	Add func(acc any, e types.Element) any
	// Result finalizes the accumulator into the emitted value.
	Result func(acc any) any
}

// Count aggregates the number of records.
func Count() AggregateFn {
	return AggregateFn{
		Create: func() any { return int64(0) },
		Add:    func(acc any, _ types.Element) any { return acc.(int64) + 1 },
		Result: func(acc any) any { return acc },
	}
}

// SumFloat aggregates the sum of extract(value).
func SumFloat(extract func(v any) float64) AggregateFn {
	return AggregateFn{
		Create: func() any { return float64(0) },
		Add:    func(acc any, e types.Element) any { return acc.(float64) + extract(e.Value) },
		Result: func(acc any) any { return acc },
	}
}

// avgAcc is the accumulator of AvgFloat.
type avgAcc struct {
	Sum float64
	N   int64
}

func init() { statestore.Register(avgAcc{}) }

// AvgFloat aggregates the mean of extract(value).
func AvgFloat(extract func(v any) float64) AggregateFn {
	return AggregateFn{
		Create: func() any { return avgAcc{} },
		Add: func(acc any, e types.Element) any {
			a := acc.(avgAcc)
			return avgAcc{Sum: a.Sum + extract(e.Value), N: a.N + 1}
		},
		Result: func(acc any) any {
			a := acc.(avgAcc)
			if a.N == 0 {
				return float64(0)
			}
			return a.Sum / float64(a.N)
		},
	}
}

// maxAcc is the accumulator of MaxBy.
type maxAcc struct {
	Best  any
	Score float64
	Valid bool
}

func init() { statestore.Register(maxAcc{}) }

// MaxBy keeps the record value with the highest score.
func MaxBy(score func(v any) float64) AggregateFn {
	return AggregateFn{
		Create: func() any { return maxAcc{} },
		Add: func(acc any, e types.Element) any {
			a := acc.(maxAcc)
			s := score(e.Value)
			if !a.Valid || s > a.Score {
				return maxAcc{Best: e.Value, Score: s, Valid: true}
			}
			return a
		},
		Result: func(acc any) any { return acc.(maxAcc).Best },
	}
}

// WindowKind selects the windowing discipline.
type WindowKind int

const (
	// TumblingEventTime assigns each record to one fixed event-time window.
	TumblingEventTime WindowKind = iota
	// SlidingEventTime assigns each record to size/slide overlapping windows.
	SlidingEventTime
	// SessionEventTime groups records separated by less than the gap.
	SessionEventTime
	// TumblingProcessingTime windows by the (causally logged) wall clock.
	TumblingProcessingTime
)

// WindowSpec configures a window operator.
type WindowSpec struct {
	Kind  WindowKind
	Size  int64 // window length (ms); session gap for SessionEventTime
	Slide int64 // slide for SlidingEventTime
}

// WindowResult is emitted once per fired window when the operator is
// built with EmitWindowResult; otherwise the bare aggregate is emitted.
type WindowResult struct {
	Key   uint64
	Start int64
	End   int64
	Value any
}

func init() { statestore.Register(WindowResult{}) }

// Window builds a keyed window aggregation operator. Emitted records carry
// the window's end-1 as timestamp and the user key; the value is the
// finalized aggregate (or a WindowResult when wrap is true).
func Window(name string, spec WindowSpec, agg AggregateFn, wrap bool) Operator {
	return &windowOp{Base: Base{name}, spec: spec, agg: agg, wrap: wrap}
}

type windowOp struct {
	Base
	spec WindowSpec
	agg  AggregateFn
	wrap bool
}

// windows returns the [start] list of windows an event-time ts joins.
func (w *windowOp) windows(ts int64) []int64 {
	switch w.spec.Kind {
	case TumblingEventTime, TumblingProcessingTime:
		return []int64{floorTo(ts, w.spec.Size)}
	case SlidingEventTime:
		var starts []int64
		last := floorTo(ts, w.spec.Slide)
		for s := last; s > ts-w.spec.Size; s -= w.spec.Slide {
			starts = append(starts, s)
		}
		return starts
	default:
		return nil
	}
}

func floorTo(ts, size int64) int64 {
	s := ts - ts%size
	if ts < 0 && ts%size != 0 {
		s -= size
	}
	return s
}

func (w *windowOp) ProcessRecord(ctx Context, _ int, e types.Element) error {
	if w.spec.Kind == SessionEventTime {
		return w.processSession(ctx, e)
	}
	ts := e.Timestamp
	if w.spec.Kind == TumblingProcessingTime {
		now, err := ctx.Services().CurrentTimeMillis()
		if err != nil {
			return err
		}
		ts = now
	}
	st := ctx.State()
	wins, _ := st.Get(e.Key).(map[int64]any)
	if wins == nil {
		wins = make(map[int64]any)
	}
	for _, start := range w.windows(ts) {
		acc, ok := wins[start]
		if !ok {
			acc = w.agg.Create()
			end := start + w.spec.Size
			if w.spec.Kind == TumblingProcessingTime {
				ctx.RegisterProcTimer(e.Key, end)
			} else {
				ctx.RegisterEventTimer(e.Key, end-1)
			}
		}
		wins[start] = w.agg.Add(acc, e)
	}
	st.Put(e.Key, wins)
	return nil
}

// fire emits and clears the window [start, start+size).
func (w *windowOp) fire(ctx Context, key uint64, start int64) error {
	st := ctx.State()
	wins, _ := st.Get(key).(map[int64]any)
	acc, ok := wins[start]
	if !ok {
		return nil // already fired or never populated
	}
	delete(wins, start)
	if len(wins) == 0 {
		st.Delete(key)
	} else {
		st.Put(key, wins)
	}
	end := start + w.spec.Size
	v := w.agg.Result(acc)
	if w.wrap {
		v = WindowResult{Key: key, Start: start, End: end, Value: v}
	}
	ctx.Emit(key, end-1, v)
	return nil
}

func (w *windowOp) OnEventTimer(ctx Context, key uint64, when int64) error {
	if w.spec.Kind == SessionEventTime {
		return w.fireSession(ctx, key, when)
	}
	return w.fire(ctx, key, when+1-w.spec.Size)
}

func (w *windowOp) OnProcTimer(ctx Context, key uint64, when int64) error {
	if w.spec.Kind != TumblingProcessingTime {
		return fmt.Errorf("operator %s: unexpected processing-time timer", w.OpName)
	}
	return w.fire(ctx, key, when-w.spec.Size)
}

// sessionState is one open session window of a key.
type sessionState struct {
	Start int64
	End   int64 // last event ts + gap: the session closes at End
	Acc   any
}

func (w *windowOp) processSession(ctx Context, e types.Element) error {
	gap := w.spec.Size
	st := ctx.State()
	sessions, _ := st.Get(e.Key).([]sessionState)
	// Build the new single-record session, then merge every overlapping
	// existing session into it.
	cur := sessionState{Start: e.Timestamp, End: e.Timestamp + gap, Acc: w.agg.Add(w.agg.Create(), e)}
	var kept []sessionState
	for _, s := range sessions {
		if s.Start < cur.End && cur.Start < s.End {
			if s.Start < cur.Start {
				cur.Start = s.Start
			}
			if s.End > cur.End {
				cur.End = s.End
			}
			cur.Acc = mergeAccs(w.agg, s.Acc, cur.Acc)
		} else {
			kept = append(kept, s)
		}
	}
	kept = append(kept, cur)
	st.Put(e.Key, kept)
	ctx.RegisterEventTimer(e.Key, cur.End-1)
	return nil
}

// mergeAccs merges session accumulators. Count-like int64 and float sums
// merge additively; other accumulator types fall back to keeping the
// later accumulator (callers needing richer merges should aggregate lists).
func mergeAccs(agg AggregateFn, a, b any) any {
	switch av := a.(type) {
	case int64:
		return av + b.(int64)
	case float64:
		return av + b.(float64)
	case avgAcc:
		bv := b.(avgAcc)
		return avgAcc{Sum: av.Sum + bv.Sum, N: av.N + bv.N}
	default:
		return b
	}
}

func (w *windowOp) fireSession(ctx Context, key uint64, when int64) error {
	st := ctx.State()
	sessions, _ := st.Get(key).([]sessionState)
	var kept []sessionState
	for _, s := range sessions {
		if s.End-1 == when {
			v := w.agg.Result(s.Acc)
			if w.wrap {
				v = WindowResult{Key: key, Start: s.Start, End: s.End, Value: v}
			}
			ctx.Emit(key, s.End-1, v)
		} else {
			kept = append(kept, s) // extended or different session: stale timer
		}
	}
	if len(kept) == 0 {
		st.Delete(key)
	} else {
		st.Put(key, kept)
	}
	return nil
}
