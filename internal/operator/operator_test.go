package operator

import (
	"sort"
	"testing"

	"clonos/internal/kafkasim"
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// fakeTimer records a registered timer.
type fakeTimer struct {
	key  uint64
	when int64
}

// fakeCtx implements Context for unit-testing operators in isolation.
type fakeCtx struct {
	store    *statestore.Store
	scope    string
	emitted  []types.Element
	procs    []fakeTimer
	events   []fakeTimer
	svcs     *services.Services
	wm       int64
	delta    []byte
	task     types.TaskID
	subtasks int
}

type nullLogger struct{}

func (nullLogger) AppendTimestamp(int64)        {}
func (nullLogger) AppendRNG(int64)              {}
func (nullLogger) AppendService(uint16, []byte) {}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{
		store:    statestore.NewStore(),
		scope:    "test",
		svcs:     services.New(services.Config{World: services.NewExternalWorld()}, nullLogger{}, nil, nil),
		subtasks: 1,
	}
}

func (c *fakeCtx) Emit(key uint64, ts int64, v any) {
	c.emitted = append(c.emitted, types.Record(key, ts, v))
}
func (c *fakeCtx) State() *statestore.KeyedState { return c.store.Keyed(c.scope + ".state") }
func (c *fakeCtx) NamedState(name string) *statestore.KeyedState {
	return c.store.Keyed(c.scope + "." + name)
}
func (c *fakeCtx) Services() *services.Services { return c.svcs }
func (c *fakeCtx) RegisterProcTimer(key uint64, when int64) {
	c.procs = append(c.procs, fakeTimer{key, when})
}
func (c *fakeCtx) RegisterEventTimer(key uint64, when int64) {
	c.events = append(c.events, fakeTimer{key, when})
}
func (c *fakeCtx) Watermark() int64     { return c.wm }
func (c *fakeCtx) TaskID() types.TaskID { return c.task }
func (c *fakeCtx) NumSubtasks() int     { return c.subtasks }

func rec(key uint64, ts int64, v any) types.Element { return types.Record(key, ts, v) }

func TestMapOperator(t *testing.T) {
	ctx := newFakeCtx()
	op := Map("m", func(_ Context, e types.Element) (any, bool, error) {
		return e.Value.(int64) * 10, true, nil
	})
	if err := op.ProcessRecord(ctx, 0, rec(1, 5, int64(3))); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 || ctx.emitted[0].Value.(int64) != 30 || ctx.emitted[0].Timestamp != 5 {
		t.Fatalf("emitted = %v", ctx.emitted)
	}
}

func TestMapDrop(t *testing.T) {
	ctx := newFakeCtx()
	op := Map("m", func(_ Context, e types.Element) (any, bool, error) { return nil, false, nil })
	if err := op.ProcessRecord(ctx, 0, rec(1, 5, int64(3))); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 0 {
		t.Fatal("dropped record emitted")
	}
}

func TestFilterOperator(t *testing.T) {
	ctx := newFakeCtx()
	op := Filter("f", func(_ Context, e types.Element) (bool, error) {
		return e.Value.(int64)%2 == 0, nil
	})
	for i := int64(0); i < 6; i++ {
		if err := op.ProcessRecord(ctx, 0, rec(0, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctx.emitted) != 3 {
		t.Fatalf("filter kept %d records", len(ctx.emitted))
	}
}

func TestFlatMapOperator(t *testing.T) {
	ctx := newFakeCtx()
	op := FlatMap("fm", func(_ Context, e types.Element, emit func(uint64, int64, any)) error {
		for i := int64(0); i < e.Value.(int64); i++ {
			emit(e.Key, e.Timestamp, i)
		}
		return nil
	})
	if err := op.ProcessRecord(ctx, 0, rec(1, 1, int64(3))); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 3 {
		t.Fatalf("flatmap emitted %d", len(ctx.emitted))
	}
}

func TestKeyedReduce(t *testing.T) {
	ctx := newFakeCtx()
	op := KeyedReduce("r", func(_ Context, acc any, e types.Element) (any, error) {
		s, _ := acc.(int64)
		return s + e.Value.(int64), nil
	})
	inputs := []types.Element{rec(1, 0, int64(2)), rec(2, 0, int64(5)), rec(1, 0, int64(3))}
	for _, e := range inputs {
		if err := op.ProcessRecord(ctx, 0, e); err != nil {
			t.Fatal(err)
		}
	}
	last := ctx.emitted[len(ctx.emitted)-1]
	if last.Key != 1 || last.Value.(int64) != 5 {
		t.Fatalf("last = %v", last)
	}
	if got := ctx.State().Get(2).(int64); got != 5 {
		t.Fatalf("state[2] = %d", got)
	}
}

func TestTumblingEventWindow(t *testing.T) {
	ctx := newFakeCtx()
	op := Window("w", WindowSpec{Kind: TumblingEventTime, Size: 100}, Count(), false)
	for _, ts := range []int64{10, 50, 99, 100, 150} {
		if err := op.ProcessRecord(ctx, 0, rec(7, ts, ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Two windows registered: [0,100) and [100,200).
	if len(ctx.events) != 2 {
		t.Fatalf("registered %d event timers", len(ctx.events))
	}
	if err := op.OnEventTimer(ctx, 7, 99); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 || ctx.emitted[0].Value.(int64) != 3 {
		t.Fatalf("window [0,100) = %v", ctx.emitted)
	}
	if err := op.OnEventTimer(ctx, 7, 199); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 || ctx.emitted[1].Value.(int64) != 2 {
		t.Fatalf("window [100,200) = %v", ctx.emitted)
	}
	// Re-firing is a no-op.
	if err := op.OnEventTimer(ctx, 7, 99); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 {
		t.Fatal("window fired twice")
	}
}

func TestSlidingEventWindow(t *testing.T) {
	ctx := newFakeCtx()
	op := Window("w", WindowSpec{Kind: SlidingEventTime, Size: 100, Slide: 50}, Count(), true)
	if err := op.ProcessRecord(ctx, 0, rec(1, 120, nil)); err != nil {
		t.Fatal(err)
	}
	// ts=120 joins windows starting at 100 and 50.
	if err := op.OnEventTimer(ctx, 1, 149); err != nil { // window [50,150)
		t.Fatal(err)
	}
	if err := op.OnEventTimer(ctx, 1, 199); err != nil { // window [100,200)
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 {
		t.Fatalf("emitted %d windows", len(ctx.emitted))
	}
	for _, e := range ctx.emitted {
		wr := e.Value.(WindowResult)
		if wr.Value.(int64) != 1 {
			t.Fatalf("window %+v count != 1", wr)
		}
	}
}

func TestSessionWindowMerging(t *testing.T) {
	ctx := newFakeCtx()
	op := Window("w", WindowSpec{Kind: SessionEventTime, Size: 50}, Count(), true)
	// Two bursts: 10,20,30 then 200.
	for _, ts := range []int64{10, 20, 30, 200} {
		if err := op.ProcessRecord(ctx, 0, rec(3, ts, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// First session closes at 30+50=80.
	if err := op.OnEventTimer(ctx, 3, 79); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 {
		t.Fatalf("emitted %d", len(ctx.emitted))
	}
	wr := ctx.emitted[0].Value.(WindowResult)
	if wr.Start != 10 || wr.End != 80 || wr.Value.(int64) != 3 {
		t.Fatalf("session = %+v", wr)
	}
	// Stale timer for the merged-away boundary fires harmlessly.
	if err := op.OnEventTimer(ctx, 3, 59); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 {
		t.Fatal("stale session timer emitted")
	}
	// Second session.
	if err := op.OnEventTimer(ctx, 3, 249); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 || ctx.emitted[1].Value.(WindowResult).Value.(int64) != 1 {
		t.Fatalf("second session = %v", ctx.emitted)
	}
}

func TestProcessingTimeWindow(t *testing.T) {
	ctx := newFakeCtx()
	op := Window("w", WindowSpec{Kind: TumblingProcessingTime, Size: 1000}, Count(), false)
	if err := op.ProcessRecord(ctx, 0, rec(1, 0, nil)); err != nil {
		t.Fatal(err)
	}
	if len(ctx.procs) != 1 {
		t.Fatalf("registered %d proc timers", len(ctx.procs))
	}
	when := ctx.procs[0].when
	if when%1000 != 0 {
		t.Fatalf("proc timer at %d, want window end", when)
	}
	if err := op.OnProcTimer(ctx, 1, when); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 || ctx.emitted[0].Value.(int64) != 1 {
		t.Fatalf("emitted = %v", ctx.emitted)
	}
}

func TestAggregates(t *testing.T) {
	sum := SumFloat(func(v any) float64 { return v.(float64) })
	acc := sum.Create()
	acc = sum.Add(acc, rec(0, 0, 2.5))
	acc = sum.Add(acc, rec(0, 0, 1.5))
	if got := sum.Result(acc).(float64); got != 4 {
		t.Fatalf("sum = %v", got)
	}

	avg := AvgFloat(func(v any) float64 { return v.(float64) })
	acc = avg.Create()
	if got := avg.Result(acc).(float64); got != 0 {
		t.Fatalf("avg of empty = %v", got)
	}
	acc = avg.Add(acc, rec(0, 0, 2.0))
	acc = avg.Add(acc, rec(0, 0, 4.0))
	if got := avg.Result(acc).(float64); got != 3 {
		t.Fatalf("avg = %v", got)
	}

	max := MaxBy(func(v any) float64 { return v.(float64) })
	acc = max.Create()
	acc = max.Add(acc, rec(0, 0, 2.0))
	acc = max.Add(acc, rec(0, 0, 9.0))
	acc = max.Add(acc, rec(0, 0, 5.0))
	if got := max.Result(acc).(float64); got != 9 {
		t.Fatalf("max = %v", got)
	}
}

func TestHashJoinBothDirections(t *testing.T) {
	ctx := newFakeCtx()
	op := HashJoin("j", func(l, r any) any { return l.(string) + "-" + r.(string) })
	if err := op.ProcessRecord(ctx, 0, rec(1, 0, "l1")); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 0 {
		t.Fatal("join emitted without a match")
	}
	if err := op.ProcessRecord(ctx, 1, rec(1, 0, "r1")); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 1 || ctx.emitted[0].Value.(string) != "l1-r1" {
		t.Fatalf("join = %v", ctx.emitted)
	}
	// Second left matches the stored right (full history).
	if err := op.ProcessRecord(ctx, 0, rec(1, 0, "l2")); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 || ctx.emitted[1].Value.(string) != "l2-r1" {
		t.Fatalf("join = %v", ctx.emitted)
	}
	// Different key: no match.
	if err := op.ProcessRecord(ctx, 1, rec(2, 0, "r2")); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 {
		t.Fatal("join matched across keys")
	}
}

func TestWindowJoin(t *testing.T) {
	ctx := newFakeCtx()
	op := WindowJoin("wj", 100, func(l, r any) any { return l.(string) + "+" + r.(string) })
	_ = op.ProcessRecord(ctx, 0, rec(1, 10, "a"))
	_ = op.ProcessRecord(ctx, 1, rec(1, 20, "x"))
	_ = op.ProcessRecord(ctx, 1, rec(1, 30, "y"))
	_ = op.ProcessRecord(ctx, 0, rec(1, 150, "b")) // next window
	if err := op.OnEventTimer(ctx, 1, 99); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range ctx.emitted {
		got = append(got, e.Value.(string))
	}
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a+x" || got[1] != "a+y" {
		t.Fatalf("window join = %v", got)
	}
	// Window [100,200) has no right side: nothing emitted.
	if err := op.OnEventTimer(ctx, 1, 199); err != nil {
		t.Fatal(err)
	}
	if len(ctx.emitted) != 2 {
		t.Fatal("unmatched window emitted")
	}
}

func TestKafkaSourcePollOffsetsAndWatermarks(t *testing.T) {
	topic := kafkasim.NewTopic("t", 2)
	for i := 0; i < 40; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i), Ts: int64(i), Value: int64(i)})
	}
	topic.Close()
	src := &KafkaSource{SourceName: "s", Topic: topic, WatermarkEvery: 5, BatchMax: 100}
	ctx := newFakeCtx()
	ctx.subtasks = 1

	var records, watermarks int
	done := false
	for !done {
		batch, d, err := src.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		done = d
		for _, e := range batch {
			switch e.Kind {
			case types.KindRecord:
				records++
			case types.KindWatermark:
				watermarks++
			}
		}
	}
	if records != 40 {
		t.Fatalf("polled %d records", records)
	}
	if watermarks == 0 {
		t.Fatal("no watermarks emitted")
	}
	// Offsets persisted in state: re-polling returns nothing.
	batch, _, _ := src.Poll(ctx)
	if len(batch) != 0 {
		t.Fatalf("re-poll returned %d elements", len(batch))
	}
}

func TestKafkaSourcePartitionAssignment(t *testing.T) {
	topic := kafkasim.NewTopic("t", 4)
	for i := 0; i < 40; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i), Ts: int64(i), Value: int64(i)})
	}
	topic.Close()
	src := &KafkaSource{SourceName: "s", Topic: topic, BatchMax: 1000}

	ctx0 := newFakeCtx()
	ctx0.subtasks = 2
	ctx0.task = types.TaskID{Subtask: 0}
	ctx1 := newFakeCtx()
	ctx1.subtasks = 2
	ctx1.task = types.TaskID{Subtask: 1}

	b0, _, _ := src.Poll(ctx0)
	b1, _, _ := src.Poll(ctx1)
	n0, n1 := 0, 0
	for _, e := range b0 {
		if e.IsRecord() {
			n0++
		}
	}
	for _, e := range b1 {
		if e.IsRecord() {
			n1++
		}
	}
	if n0+n1 != 40 || n0 == 0 || n1 == 0 {
		t.Fatalf("split = %d + %d", n0, n1)
	}
}

func TestKafkaSourceStateDrivenReplay(t *testing.T) {
	// Restoring the state snapshot must replay the identical sequence.
	topic := kafkasim.NewTopic("t", 1)
	for i := 0; i < 20; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i), Ts: int64(i), Value: int64(i)})
	}
	topic.Close()
	src := &KafkaSource{SourceName: "s", Topic: topic, BatchMax: 5}
	ctx := newFakeCtx()
	first, _, _ := src.Poll(ctx)
	snap, err := ctx.store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	second, _, _ := src.Poll(ctx)

	// Roll back and re-poll: must equal `second`.
	restored := newFakeCtx()
	if err := restored.store.Restore(snap); err != nil {
		t.Fatal(err)
	}
	replayed, _, _ := src.Poll(restored)
	if len(replayed) != len(second) {
		t.Fatalf("replayed %d elements, want %d", len(replayed), len(second))
	}
	for i := range second {
		if second[i].Value != replayed[i].Value {
			t.Fatalf("element %d: %v != %v", i, second[i], replayed[i])
		}
	}
	_ = first
}

func TestKafkaSinkSequencesOutput(t *testing.T) {
	sink := kafkasim.NewSinkTopic(true)
	op := NewKafkaSink("k", sink)
	ctx := newFakeCtx()
	for i := int64(0); i < 3; i++ {
		if err := op.ProcessRecord(ctx, 0, rec(1, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := sink.All()
	if len(recs) != 3 {
		t.Fatalf("sink has %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
	}
	// Seq survives via state: simulate replay after restore.
	snap, _ := ctx.store.Snapshot()
	ctx2 := newFakeCtx()
	_ = ctx2.store.Restore(snap)
	op2 := NewKafkaSink("k", sink)
	_ = op2.ProcessRecord(ctx2, 0, rec(1, 9, int64(9)))
	if last := sink.All()[len(sink.All())-1]; last.Seq != 4 {
		t.Fatalf("restored seq = %d, want 4", last.Seq)
	}
}

func TestProcessOperatorCallbacks(t *testing.T) {
	var opened, closed bool
	var wmSeen int64
	p := NewProcess("p", func(ctx Context, port int, e types.Element) error {
		ctx.Emit(e.Key, e.Timestamp, e.Value)
		return nil
	})
	p.OnOpen = func(Context) error { opened = true; return nil }
	p.OnClosing = func(Context) error { closed = true; return nil }
	p.OnWM = func(_ Context, wm int64) error { wmSeen = wm; return nil }
	ctx := newFakeCtx()
	if err := p.Open(ctx); err != nil || !opened {
		t.Fatal("open not invoked")
	}
	if err := p.ProcessRecord(ctx, 0, rec(1, 1, "v")); err != nil || len(ctx.emitted) != 1 {
		t.Fatal("record not processed")
	}
	if err := p.OnWatermark(ctx, 42); err != nil || wmSeen != 42 {
		t.Fatal("watermark not seen")
	}
	if err := p.Close(ctx); err != nil || !closed {
		t.Fatal("close not invoked")
	}
}

func (c *fakeCtx) Epoch() uint64 { return 1 }

func (c *fakeCtx) CausalDelta() []byte { return c.delta }

func TestKafkaSinkExactlyOnceOutput(t *testing.T) {
	sink := kafkasim.NewSinkTopic(true)
	op := NewKafkaSink("k", sink)
	op.ExactlyOnceOutput = true
	ctx := newFakeCtx()
	ctx.delta = []byte("blob")
	if err := op.ProcessRecord(ctx, 0, rec(1, 1, int64(1))); err != nil {
		t.Fatal(err)
	}
	blobs := op.RecoverDeterminants(ctx.TaskID().String())
	if len(blobs) != 1 || string(blobs[0]) != "blob" {
		t.Fatalf("blobs = %v", blobs)
	}
	op.OnCheckpointComplete(2) // fakeCtx epoch is 1 -> truncated
	if len(op.RecoverDeterminants(ctx.TaskID().String())) != 0 {
		t.Fatal("truncation did not drop stored deltas")
	}
	// Disabled EOO stores and returns nothing.
	op2 := NewKafkaSink("k2", kafkasim.NewSinkTopic(true))
	if err := op2.ProcessRecord(ctx, 0, rec(1, 1, int64(2))); err != nil {
		t.Fatal(err)
	}
	if got := op2.RecoverDeterminants(ctx.TaskID().String()); got != nil {
		t.Fatalf("disabled EOO returned %v", got)
	}
}
