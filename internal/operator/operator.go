// Package operator defines the operator model executed by tasks: the
// runtime context handed to user logic, the Operator interface for chained
// (fused) operators, the Source interface for input vertices, and a
// library of built-ins (map, filter, flatMap, reduce, process, windows,
// joins, Kafka-sim connectors).
package operator

import (
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// Context is the runtime handed to operator callbacks. Implementations
// are provided by the task runtime; all methods are main-thread only.
type Context interface {
	// Emit sends a record to the next operator in the chain (or to the
	// task's output if this is the last operator).
	Emit(key uint64, ts int64, value any)
	// State returns the operator's scoped keyed-state store.
	State() *statestore.KeyedState
	// NamedState returns an additional scoped state by name.
	NamedState(name string) *statestore.KeyedState
	// Services returns the task's causal services (§4.2).
	Services() *services.Services
	// RegisterProcTimer arms a processing-time timer owned by this
	// operator; firing is causally logged and replayable.
	RegisterProcTimer(key uint64, whenMs int64)
	// RegisterEventTimer arms an event-time timer owned by this
	// operator; it fires deterministically on watermark advancement.
	RegisterEventTimer(key uint64, whenMs int64)
	// Watermark returns the task's current combined watermark.
	Watermark() int64
	// TaskID identifies the executing task instance.
	TaskID() types.TaskID
	// NumSubtasks reports the vertex parallelism.
	NumSubtasks() int
	// Epoch reports the task's current checkpoint epoch.
	Epoch() uint64
	// CausalDelta returns this task's serialized causal-log delta since
	// the previous call — the §5.5 exactly-once-output payload a sink
	// piggybacks on records written to external systems. It returns nil
	// when causal logging is disabled.
	CausalDelta() []byte
}

// ExternalRecoverable is implemented by sink operators whose external
// output system stores piggybacked determinants (§5.5) and can return
// them during the producer's recovery.
type ExternalRecoverable interface {
	// RecoverDeterminants returns the stored delta blobs of a producer
	// task, in append order.
	RecoverDeterminants(producer string) [][]byte
}

// CheckpointAware is implemented by operators that react to completed
// checkpoints, e.g. to truncate determinants stored in external systems.
// OnCheckpointComplete may be called from outside the task's main thread
// and concurrently for the subtasks sharing the operator instance.
type CheckpointAware interface {
	OnCheckpointComplete(cp uint64)
}

// Operator is one chained operator. Implementations should embed Base and
// override what they need.
type Operator interface {
	// Name is the operator's stable name, also its state scope.
	Name() string
	// Open is called once before any record, both on fresh starts and
	// after state restore.
	Open(ctx Context) error
	// ProcessRecord handles one data record from the given input port
	// (index of the vertex's input edge).
	ProcessRecord(ctx Context, port int, e types.Element) error
	// OnWatermark is called when the combined watermark advances, after
	// due event timers have fired.
	OnWatermark(ctx Context, wm int64) error
	// OnProcTimer handles a processing-time timer owned by this operator.
	OnProcTimer(ctx Context, key uint64, whenMs int64) error
	// OnEventTimer handles an event-time timer owned by this operator.
	OnEventTimer(ctx Context, key uint64, whenMs int64) error
	// Close is called at shutdown.
	Close(ctx Context) error
}

// Base provides no-op defaults for Operator.
type Base struct{ OpName string }

// Name implements Operator.
func (b Base) Name() string { return b.OpName }

// Open implements Operator.
func (Base) Open(Context) error { return nil }

// ProcessRecord implements Operator.
func (Base) ProcessRecord(Context, int, types.Element) error { return nil }

// OnWatermark implements Operator.
func (Base) OnWatermark(Context, int64) error { return nil }

// OnProcTimer implements Operator.
func (Base) OnProcTimer(Context, uint64, int64) error { return nil }

// OnEventTimer implements Operator.
func (Base) OnEventTimer(Context, uint64, int64) error { return nil }

// Close implements Operator.
func (Base) Close(Context) error { return nil }

// Source produces a vertex's input. Poll must be deterministic given
// operator state: typically it reads a replayable log at an offset kept
// in state, so recovery replays the identical element sequence.
type Source interface {
	// Name is the source's stable name and state scope.
	Name() string
	// Open is called once before polling starts.
	Open(ctx Context) error
	// Poll returns the next batch of elements (records and watermarks),
	// or an empty batch when nothing is available right now. done
	// reports end of input.
	Poll(ctx Context) (batch []types.Element, done bool, err error)
	// Close is called at shutdown.
	Close(ctx Context) error
}
