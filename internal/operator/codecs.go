package operator

// Typed snapshot codecs for the operator-state shapes: every value an
// operator keeps in keyed state encodes through the codec package's
// reflection-free tier instead of the gob fallback, so snapshots, delta
// snapshots, and audit fingerprints stay off the reflection walk.
// Interface-typed fields (accumulators, window panes, join buffers)
// nest through codec.EncodeAnyFramed, which recurses into the registry.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"clonos/internal/codec"
)

func init() {
	codec.RegisterType(wmState{}, wmStateCodec{})
	codec.RegisterType(avgAcc{}, avgAccCodec{})
	codec.RegisterType(maxAcc{}, maxAccCodec{})
	codec.RegisterType(WindowResult{}, windowResultCodec{})
	codec.RegisterType([]sessionState{}, sessionSliceCodec{})
	codec.RegisterType(&joinAcc{}, joinAccCodec{})
	codec.RegisterType(map[int64]*joinAcc{}, joinAccMapCodec{})
}

// wmStateCodec encodes the source's watermark-generation state.
type wmStateCodec struct{}

// EncodeAppend implements codec.Codec.
func (wmStateCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	s, ok := v.(wmState)
	if !ok {
		return dst, fmt.Errorf("operator: wmStateCodec got %T", v)
	}
	dst = binary.AppendVarint(dst, s.MaxTs)
	dst = binary.AppendVarint(dst, s.Count)
	return binary.AppendVarint(dst, s.LastWm), nil
}

// Decode implements codec.Codec.
func (wmStateCodec) Decode(b []byte) (any, error) {
	var s wmState
	i := 0
	for _, f := range []*int64{&s.MaxTs, &s.Count, &s.LastWm} {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return nil, codec.ErrShortBuffer
		}
		*f = v
		i += n
	}
	if i != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return s, nil
}

// avgAccCodec encodes the AvgFloat accumulator.
type avgAccCodec struct{}

// EncodeAppend implements codec.Codec.
func (avgAccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a, ok := v.(avgAcc)
	if !ok {
		return dst, fmt.Errorf("operator: avgAccCodec got %T", v)
	}
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Sum))
	return binary.AppendVarint(dst, a.N), nil
}

// Decode implements codec.Codec.
func (avgAccCodec) Decode(b []byte) (any, error) {
	if len(b) < 9 {
		return nil, codec.ErrShortBuffer
	}
	var a avgAcc
	a.Sum = math.Float64frombits(binary.BigEndian.Uint64(b))
	n, w := binary.Varint(b[8:])
	if w <= 0 {
		return nil, codec.ErrShortBuffer
	}
	if 8+w != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	a.N = n
	return a, nil
}

// maxAccCodec encodes the MaxBy accumulator; Best is interface-typed
// and nests through the tagged-union frame.
type maxAccCodec struct{}

// EncodeAppend implements codec.Codec.
func (maxAccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a, ok := v.(maxAcc)
	if !ok {
		return dst, fmt.Errorf("operator: maxAccCodec got %T", v)
	}
	valid := byte(0)
	if a.Valid {
		valid = 1
	}
	dst = append(dst, valid)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Score))
	return codec.EncodeAnyFramed(dst, a.Best)
}

// Decode implements codec.Codec.
func (maxAccCodec) Decode(b []byte) (any, error) {
	if len(b) < 9 {
		return nil, codec.ErrShortBuffer
	}
	a := maxAcc{Valid: b[0] != 0, Score: math.Float64frombits(binary.BigEndian.Uint64(b[1:]))}
	best, used, err := codec.DecodeAnyFramed(b[9:])
	if err != nil {
		return nil, err
	}
	if 9+used != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	a.Best = best
	return a, nil
}

// windowResultCodec encodes the wrapped window emission.
type windowResultCodec struct{}

// EncodeAppend implements codec.Codec.
func (windowResultCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	r, ok := v.(WindowResult)
	if !ok {
		return dst, fmt.Errorf("operator: windowResultCodec got %T", v)
	}
	dst = binary.AppendUvarint(dst, r.Key)
	dst = binary.AppendVarint(dst, r.Start)
	dst = binary.AppendVarint(dst, r.End)
	return codec.EncodeAnyFramed(dst, r.Value)
}

// Decode implements codec.Codec.
func (windowResultCodec) Decode(b []byte) (any, error) {
	var r WindowResult
	key, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, codec.ErrShortBuffer
	}
	i := n
	r.Key = key
	start, n := binary.Varint(b[i:])
	if n <= 0 {
		return nil, codec.ErrShortBuffer
	}
	i += n
	r.Start = start
	end, n := binary.Varint(b[i:])
	if n <= 0 {
		return nil, codec.ErrShortBuffer
	}
	i += n
	r.End = end
	val, used, err := codec.DecodeAnyFramed(b[i:])
	if err != nil {
		return nil, err
	}
	if i+used != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	r.Value = val
	return r, nil
}

// sessionSliceCodec encodes a key's open session windows.
type sessionSliceCodec struct{}

// EncodeAppend implements codec.Codec.
func (sessionSliceCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	ss, ok := v.([]sessionState)
	if !ok {
		return dst, fmt.Errorf("operator: sessionSliceCodec got %T", v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	var err error
	for _, s := range ss {
		dst = binary.AppendVarint(dst, s.Start)
		dst = binary.AppendVarint(dst, s.End)
		if dst, err = codec.EncodeAnyFramed(dst, s.Acc); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Decode implements codec.Codec.
func (sessionSliceCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, codec.ErrShortBuffer
	}
	b = b[sz:]
	out := make([]sessionState, 0, n)
	for i := uint64(0); i < n; i++ {
		var s sessionState
		start, w := binary.Varint(b)
		if w <= 0 {
			return nil, codec.ErrShortBuffer
		}
		b = b[w:]
		s.Start = start
		end, w := binary.Varint(b)
		if w <= 0 {
			return nil, codec.ErrShortBuffer
		}
		b = b[w:]
		s.End = end
		acc, used, err := codec.DecodeAnyFramed(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		s.Acc = acc
		out = append(out, s)
	}
	if len(b) != 0 {
		return nil, codec.ErrTrailingBytes
	}
	return out, nil
}

// joinAccCodec encodes one window-join buffer (*joinAcc, the pointer
// shape the operator stores).
type joinAccCodec struct{}

func encodeAnySlice(dst []byte, s []any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	var err error
	for _, e := range s {
		if dst, err = codec.EncodeAnyFramed(dst, e); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func decodeAnySlice(b []byte) ([]any, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, codec.ErrShortBuffer
	}
	i := sz
	out := make([]any, 0, n)
	for k := uint64(0); k < n; k++ {
		v, used, err := codec.DecodeAnyFramed(b[i:])
		if err != nil {
			return nil, 0, err
		}
		i += used
		out = append(out, v)
	}
	return out, i, nil
}

// EncodeAppend implements codec.Codec.
func (joinAccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a, ok := v.(*joinAcc)
	if !ok {
		return dst, fmt.Errorf("operator: joinAccCodec got %T", v)
	}
	dst, err := encodeAnySlice(dst, a.Left)
	if err != nil {
		return dst, err
	}
	return encodeAnySlice(dst, a.Right)
}

// Decode implements codec.Codec.
func (joinAccCodec) Decode(b []byte) (any, error) {
	left, n, err := decodeAnySlice(b)
	if err != nil {
		return nil, err
	}
	right, n2, err := decodeAnySlice(b[n:])
	if err != nil {
		return nil, err
	}
	if n+n2 != len(b) {
		return nil, codec.ErrTrailingBytes
	}
	return &joinAcc{Left: left, Right: right}, nil
}

// joinAccMapCodec encodes the per-key window map of WindowJoin with
// sorted keys (fingerprint determinism).
type joinAccMapCodec struct{}

// EncodeAppend implements codec.Codec.
func (joinAccMapCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	m, ok := v.(map[int64]*joinAcc)
	if !ok {
		return dst, fmt.Errorf("operator: joinAccMapCodec got %T", v)
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	var err error
	for _, k := range keys {
		dst = binary.AppendVarint(dst, k)
		if dst, err = (joinAccCodec{}).EncodeAppend(dst, m[k]); err != nil {
			return dst, err
		}
		// Each joinAcc is self-delimiting (two counted slices), so no
		// per-entry length frame is needed.
	}
	return dst, nil
}

// Decode implements codec.Codec.
func (joinAccMapCodec) Decode(b []byte) (any, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, codec.ErrShortBuffer
	}
	b = b[sz:]
	out := make(map[int64]*joinAcc, n)
	for i := uint64(0); i < n; i++ {
		k, w := binary.Varint(b)
		if w <= 0 {
			return nil, codec.ErrShortBuffer
		}
		b = b[w:]
		left, used, err := decodeAnySlice(b)
		if err != nil {
			return nil, err
		}
		b = b[used:]
		right, used2, err := decodeAnySlice(b)
		if err != nil {
			return nil, err
		}
		b = b[used2:]
		out[k] = &joinAcc{Left: left, Right: right}
	}
	if len(b) != 0 {
		return nil, codec.ErrTrailingBytes
	}
	return out, nil
}
