package operator

import (
	"clonos/internal/kafkasim"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// wmState tracks watermark generation of one source subtask.
type wmState struct {
	MaxTs  int64
	Count  int64
	LastWm int64
}

func init() { statestore.Register(wmState{}) }

// KafkaSource reads the partitions of a simulated Kafka topic assigned to
// this subtask (partition % parallelism == subtask). Offsets live in
// operator state, so both checkpoint restore and causally guided replay
// re-read the identical record sequence. Watermarks are emitted every
// WatermarkEvery records as maxEventTime - Lateness — a deterministic
// function of the consumed records.
type KafkaSource struct {
	SourceName string
	Topic      *kafkasim.Topic
	// KeyOf extracts the partition key of a record's value; nil keeps
	// the log record's key.
	KeyOf func(v any) uint64
	// WatermarkEvery is the record period of watermark emission
	// (default 100).
	WatermarkEvery int64
	// Lateness is subtracted from the max event time (default 0).
	Lateness int64
	// BatchMax bounds records returned per Poll (default 64).
	BatchMax int
}

// Name implements Source.
func (s *KafkaSource) Name() string { return s.SourceName }

// Open implements Source.
func (s *KafkaSource) Open(Context) error { return nil }

// Close implements Source.
func (s *KafkaSource) Close(Context) error { return nil }

// partitions returns the partition indices this subtask owns.
func (s *KafkaSource) partitions(ctx Context) []int {
	var out []int
	n := ctx.NumSubtasks()
	for i := range s.Topic.Partitions {
		if int32(i%n) == ctx.TaskID().Subtask {
			out = append(out, i)
		}
	}
	return out
}

// Poll implements Source. The merge across the subtask's partitions is a
// strict round-robin driven only by the offsets in state — NOT by data
// availability — so the emitted sequence is a pure function of operator
// state and replays identically after recovery (the Source determinism
// contract). A partition that has no data yet stalls the round-robin
// until data arrives or the partition closes; closed-and-drained
// partitions are skipped.
func (s *KafkaSource) Poll(ctx Context) ([]types.Element, bool, error) {
	offsets := ctx.NamedState("offsets")
	wms := ctx.NamedState("wm")
	batchMax := s.BatchMax
	if batchMax <= 0 {
		batchMax = 64
	}
	wmEvery := s.WatermarkEvery
	if wmEvery <= 0 {
		wmEvery = 100
	}
	parts := s.partitions(ctx)
	if len(parts) == 0 {
		return nil, true, nil
	}
	rrState := ctx.NamedState("rr")
	rr, _ := rrState.Get(0).(int64)

	var batch []types.Element
	for len(batch) < batchMax {
		// Find the next round-robin partition that is not drained.
		advanced := false
		for skip := 0; skip < len(parts); skip++ {
			p := parts[int(rr)%len(parts)]
			part := s.Topic.Partitions[p]
			off, _ := offsets.Get(uint64(p)).(int64)
			rec, ok := part.Get(off)
			if !ok {
				if part.Closed() && off >= part.Len() {
					// Permanently drained: rotate past it.
					rr++
					continue
				}
				// Data not yet available: the deterministic order must
				// wait for this partition. Return what we have.
				rrState.Put(0, rr)
				return batch, false, nil
			}
			offsets.Put(uint64(p), off+1)
			rr++
			advanced = true
			key := rec.Key
			if s.KeyOf != nil {
				key = s.KeyOf(rec.Value)
			}
			batch = append(batch, types.Record(key, rec.Ts, rec.Value))

			w, _ := wms.Get(0).(wmState)
			if rec.Ts > w.MaxTs {
				w.MaxTs = rec.Ts
			}
			w.Count++
			if w.Count%wmEvery == 0 {
				wm := w.MaxTs - s.Lateness
				if wm > w.LastWm {
					w.LastWm = wm
					batch = append(batch, types.Watermark(wm))
				}
			}
			wms.Put(0, w)
			break
		}
		if !advanced {
			// Every partition is closed and drained.
			rrState.Put(0, rr)
			return batch, true, nil
		}
	}
	rrState.Put(0, rr)
	return batch, false, nil
}

// KafkaSink writes records to a simulated sink topic, numbering them with
// a per-subtask sequence held in state so the topic can deduplicate
// replayed output (idempotent sink, §5.5).
//
// With ExactlyOnceOutput set, it additionally piggybacks the task's
// causal-log delta on every record (§5.5): the topic stores the
// determinants and returns them during the sink task's recovery, so even
// a *sink* — which has no downstream tasks to replicate to — recovers
// causally guided, and its output is exactly-once without a transactional
// two-phase commit.
type KafkaSink struct {
	Base
	Topic *kafkasim.SinkTopic
	// EmitOf optionally extracts the original ingestion wall-clock time
	// from the value for end-to-end latency; nil uses the event time.
	EmitOf func(v any) int64
	// ExactlyOnceOutput enables the §5.5 determinant piggybacking.
	ExactlyOnceOutput bool
}

// NewKafkaSink builds the sink operator.
func NewKafkaSink(name string, topic *kafkasim.SinkTopic) *KafkaSink {
	return &KafkaSink{Base: Base{name}, Topic: topic}
}

// ProcessRecord implements Operator.
func (s *KafkaSink) ProcessRecord(ctx Context, _ int, e types.Element) error {
	st := ctx.State()
	seq, _ := st.Get(0).(uint64)
	seq++
	st.Put(0, seq)
	emit := e.Timestamp
	if s.EmitOf != nil {
		emit = s.EmitOf(e.Value)
	}
	rec := kafkasim.SinkRecord{
		Key:      e.Key,
		EventTs:  e.Timestamp,
		EmitMs:   emit,
		Value:    e.Value,
		Producer: ctx.TaskID().String(),
		Seq:      seq,
		Epoch:    ctx.Epoch(),
	}
	if s.ExactlyOnceOutput {
		rec.Delta = ctx.CausalDelta()
	}
	s.Topic.Append(rec)
	return nil
}

// RecoverDeterminants implements ExternalRecoverable.
func (s *KafkaSink) RecoverDeterminants(producer string) [][]byte {
	if !s.ExactlyOnceOutput {
		return nil
	}
	chunks := s.Topic.DeltasFor(producer)
	out := make([][]byte, 0, len(chunks))
	for _, c := range chunks {
		out = append(out, c.Delta)
	}
	return out
}

// OnCheckpointComplete implements CheckpointAware: determinants of
// completed epochs are truncated at the output system (§5.5).
func (s *KafkaSink) OnCheckpointComplete(cp uint64) {
	if s.ExactlyOnceOutput {
		s.Topic.TruncateDeltas(cp)
	}
}
