package operator

import (
	"clonos/internal/types"
)

// MapFunc transforms one record value; keep=false drops the record.
type MapFunc func(ctx Context, e types.Element) (out any, keep bool, err error)

// Map applies f to every record, preserving key and timestamp.
func Map(name string, f MapFunc) Operator {
	return &mapOp{Base{name}, f}
}

type mapOp struct {
	Base
	f MapFunc
}

func (m *mapOp) ProcessRecord(ctx Context, _ int, e types.Element) error {
	out, keep, err := m.f(ctx, e)
	if err != nil {
		return err
	}
	if keep {
		ctx.Emit(e.Key, e.Timestamp, out)
	}
	return nil
}

// Filter keeps records matching pred.
func Filter(name string, pred func(ctx Context, e types.Element) (bool, error)) Operator {
	return Map(name, func(ctx Context, e types.Element) (any, bool, error) {
		ok, err := pred(ctx, e)
		return e.Value, ok, err
	})
}

// FlatMapFunc emits zero or more values for one record via emit.
type FlatMapFunc func(ctx Context, e types.Element, emit func(key uint64, ts int64, v any)) error

// FlatMap applies f to every record.
func FlatMap(name string, f FlatMapFunc) Operator {
	return &flatMapOp{Base{name}, f}
}

type flatMapOp struct {
	Base
	f FlatMapFunc
}

func (m *flatMapOp) ProcessRecord(ctx Context, _ int, e types.Element) error {
	return m.f(ctx, e, ctx.Emit)
}

// ReduceFunc folds a record into the running accumulator for its key.
type ReduceFunc func(ctx Context, acc any, e types.Element) (any, error)

// KeyedReduce maintains one accumulator per key and emits the updated
// accumulator after every record (a rolling reduce).
func KeyedReduce(name string, f ReduceFunc) Operator {
	return &reduceOp{Base{name}, f}
}

type reduceOp struct {
	Base
	f ReduceFunc
}

func (r *reduceOp) ProcessRecord(ctx Context, _ int, e types.Element) error {
	st := ctx.State()
	acc, err := r.f(ctx, st.Get(e.Key), e)
	if err != nil {
		return err
	}
	st.Put(e.Key, acc)
	ctx.Emit(e.Key, e.Timestamp, acc)
	return nil
}

// Process wraps a full Operator implementation from callbacks, for logic
// that needs timers or multiple inputs without defining a new type.
type Process struct {
	Base
	OnOpen    func(ctx Context) error
	OnRecord  func(ctx Context, port int, e types.Element) error
	OnWM      func(ctx Context, wm int64) error
	OnProc    func(ctx Context, key uint64, when int64) error
	OnEvent   func(ctx Context, key uint64, when int64) error
	OnClosing func(ctx Context) error
}

// NewProcess builds a Process operator with the given name.
func NewProcess(name string, onRecord func(ctx Context, port int, e types.Element) error) *Process {
	return &Process{Base: Base{name}, OnRecord: onRecord}
}

// Open implements Operator.
func (p *Process) Open(ctx Context) error {
	if p.OnOpen != nil {
		return p.OnOpen(ctx)
	}
	return nil
}

// ProcessRecord implements Operator.
func (p *Process) ProcessRecord(ctx Context, port int, e types.Element) error {
	if p.OnRecord != nil {
		return p.OnRecord(ctx, port, e)
	}
	return nil
}

// OnWatermark implements Operator.
func (p *Process) OnWatermark(ctx Context, wm int64) error {
	if p.OnWM != nil {
		return p.OnWM(ctx, wm)
	}
	return nil
}

// OnProcTimer implements Operator.
func (p *Process) OnProcTimer(ctx Context, key uint64, when int64) error {
	if p.OnProc != nil {
		return p.OnProc(ctx, key, when)
	}
	return nil
}

// OnEventTimer implements Operator.
func (p *Process) OnEventTimer(ctx Context, key uint64, when int64) error {
	if p.OnEvent != nil {
		return p.OnEvent(ctx, key, when)
	}
	return nil
}

// Close implements Operator.
func (p *Process) Close(ctx Context) error {
	if p.OnClosing != nil {
		return p.OnClosing(ctx)
	}
	return nil
}
