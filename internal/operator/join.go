package operator

import (
	"clonos/internal/statestore"
	"clonos/internal/types"
)

func init() {
	statestore.Register(map[int64]*joinAcc{})
	statestore.Register(&joinAcc{})
}

// HashJoin is a full-history two-input equi-join on the record key
// (Nexmark Q3's incremental join): each side is retained in keyed state
// forever, and every arrival emits the combinations with the opposite
// side seen so far.
func HashJoin(name string, combine func(left, right any) any) Operator {
	return &hashJoinOp{Base: Base{name}, combine: combine}
}

type hashJoinOp struct {
	Base
	combine func(left, right any) any
}

func (j *hashJoinOp) ProcessRecord(ctx Context, port int, e types.Element) error {
	mine := ctx.NamedState("left")
	other := ctx.NamedState("right")
	if port == 1 {
		mine, other = other, mine
	}
	mine.AppendList(e.Key, e.Value)
	for _, v := range other.List(e.Key) {
		l, r := e.Value, v
		if port == 1 {
			l, r = v, e.Value
		}
		ctx.Emit(e.Key, e.Timestamp, j.combine(l, r))
	}
	return nil
}

// joinAcc buffers both sides of one key's window.
type joinAcc struct {
	Left  []any
	Right []any
}

// WindowJoin joins the two inputs per key within tumbling event-time
// windows (Nexmark Q8): matches are emitted when the window fires.
func WindowJoin(name string, size int64, combine func(left, right any) any) Operator {
	return &windowJoinOp{Base: Base{name}, size: size, combine: combine}
}

type windowJoinOp struct {
	Base
	size    int64
	combine func(left, right any) any
}

func (j *windowJoinOp) ProcessRecord(ctx Context, port int, e types.Element) error {
	start := floorTo(e.Timestamp, j.size)
	st := ctx.State()
	wins, _ := st.Get(e.Key).(map[int64]*joinAcc)
	if wins == nil {
		wins = make(map[int64]*joinAcc)
	}
	acc, ok := wins[start]
	if !ok {
		acc = &joinAcc{}
		wins[start] = acc
		ctx.RegisterEventTimer(e.Key, start+j.size-1)
	}
	if port == 0 {
		acc.Left = append(acc.Left, e.Value)
	} else {
		acc.Right = append(acc.Right, e.Value)
	}
	st.Put(e.Key, wins)
	return nil
}

func (j *windowJoinOp) OnEventTimer(ctx Context, key uint64, when int64) error {
	start := when + 1 - j.size
	st := ctx.State()
	wins, _ := st.Get(key).(map[int64]*joinAcc)
	acc, ok := wins[start]
	if !ok {
		return nil
	}
	delete(wins, start)
	if len(wins) == 0 {
		st.Delete(key)
	} else {
		st.Put(key, wins)
	}
	for _, l := range acc.Left {
		for _, r := range acc.Right {
			ctx.Emit(key, when, j.combine(l, r))
		}
	}
	return nil
}
