package kafkasim

import (
	"testing"
	"time"
)

func TestPartitionAppendGet(t *testing.T) {
	p := NewPartition()
	if _, ok := p.Get(0); ok {
		t.Fatal("empty partition returned a record")
	}
	p.Append(Record{Key: 1, Ts: 10, Value: "a"})
	p.Append(Record{Key: 2, Ts: 20, Value: "b"})
	r, ok := p.Get(1)
	if !ok || r.Value != "b" {
		t.Fatalf("get(1) = %v,%v", r, ok)
	}
	if _, ok := p.Get(2); ok {
		t.Fatal("past-end offset returned a record")
	}
	if _, ok := p.Get(-1); ok {
		t.Fatal("negative offset returned a record")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPartitionReplayable(t *testing.T) {
	// The core property lineage replay relies on: any retained offset
	// returns the identical record on every read.
	p := NewPartition()
	for i := 0; i < 100; i++ {
		p.Append(Record{Key: uint64(i), Ts: int64(i), Value: int64(i)})
	}
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < 100; i++ {
			r, ok := p.Get(i)
			if !ok || r.Value.(int64) != i {
				t.Fatalf("pass %d offset %d: %v,%v", pass, i, r, ok)
			}
		}
	}
}

func TestTopicRouting(t *testing.T) {
	top := NewTopic("t", 3)
	for i := uint64(0); i < 9; i++ {
		top.Append(Record{Key: i})
	}
	for pi, p := range top.Partitions {
		if p.Len() != 3 {
			t.Fatalf("partition %d has %d records", pi, p.Len())
		}
		for off := int64(0); off < p.Len(); off++ {
			r, _ := p.Get(off)
			if int(r.Key%3) != pi {
				t.Fatalf("record key %d in partition %d", r.Key, pi)
			}
		}
	}
	if top.TotalLen() != 9 {
		t.Fatalf("total = %d", top.TotalLen())
	}
}

func TestTopicClose(t *testing.T) {
	top := NewTopic("t", 2)
	top.Close()
	for _, p := range top.Partitions {
		if !p.Closed() {
			t.Fatal("partition not closed")
		}
	}
}

func TestSinkTopicDedup(t *testing.T) {
	s := NewSinkTopic(true)
	s.Append(SinkRecord{Producer: "a", Seq: 1, Value: 1})
	s.Append(SinkRecord{Producer: "a", Seq: 2, Value: 2})
	s.Append(SinkRecord{Producer: "a", Seq: 2, Value: 2}) // duplicate
	s.Append(SinkRecord{Producer: "a", Seq: 1, Value: 1}) // replayed older
	s.Append(SinkRecord{Producer: "b", Seq: 1, Value: 3}) // other producer
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if s.Duplicates() != 2 {
		t.Fatalf("dups = %d, want 2", s.Duplicates())
	}
}

func TestSinkTopicNoDedup(t *testing.T) {
	s := NewSinkTopic(false)
	s.Append(SinkRecord{Producer: "a", Seq: 1})
	s.Append(SinkRecord{Producer: "a", Seq: 1})
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2 (dedup off)", s.Len())
	}
}

func TestSinkTopicSince(t *testing.T) {
	s := NewSinkTopic(false)
	for i := uint64(0); i < 5; i++ {
		s.Append(SinkRecord{Key: i})
	}
	tail := s.Since(3)
	if len(tail) != 2 || tail[0].Key != 3 {
		t.Fatalf("since(3) = %v", tail)
	}
	if s.Since(99) != nil {
		t.Fatal("since past end returned records")
	}
	if got := len(s.All()); got != 5 {
		t.Fatalf("all = %d", got)
	}
}

func TestSinkStampsArrival(t *testing.T) {
	s := NewSinkTopic(false)
	before := time.Now().UnixMilli()
	s.Append(SinkRecord{Key: 1})
	after := time.Now().UnixMilli()
	r := s.All()[0]
	if r.ArrivalMs < before || r.ArrivalMs > after {
		t.Fatalf("arrival %d outside [%d,%d]", r.ArrivalMs, before, after)
	}
}

func TestGeneratorProducesAllRecords(t *testing.T) {
	top := NewTopic("t", 2)
	g := NewGenerator(top, 0, func(i int64) (Record, bool) {
		return Record{Key: uint64(i), Value: i}, i < 500
	})
	g.Start()
	select {
	case <-g.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("generator produced %d records", top.TotalLen())
	}
	g.Stop()
	if got := top.TotalLen(); got != 500 {
		t.Fatalf("generator produced %d records, want 500", got)
	}
	for _, p := range top.Partitions {
		if !p.Closed() {
			t.Fatal("generator did not close topic at end of input")
		}
	}
}

func TestGeneratorRatePacing(t *testing.T) {
	top := NewTopic("t", 1)
	g := NewGenerator(top, 1000, func(i int64) (Record, bool) {
		return Record{Key: uint64(i)}, true
	})
	start := time.Now()
	g.Start()
	time.Sleep(300 * time.Millisecond)
	g.Stop()
	elapsed := time.Since(start).Seconds()
	n := float64(top.TotalLen())
	// Within a generous factor of the target rate (batching granularity).
	if n < 100 || n > elapsed*1000*2+128 {
		t.Fatalf("produced %v records in %.2fs at rate 1000", n, elapsed)
	}
}

func TestGeneratorStopIdempotent(t *testing.T) {
	g := NewGenerator(NewTopic("t", 1), 0, func(i int64) (Record, bool) { return Record{}, false })
	g.Start()
	g.Stop()
	g.Stop()
}

func TestSinkTopicDeltaStore(t *testing.T) {
	s := NewSinkTopic(true)
	s.Append(SinkRecord{Producer: "a", Seq: 1, Epoch: 1, Delta: []byte("d1")})
	s.Append(SinkRecord{Producer: "a", Seq: 2, Epoch: 2, Delta: []byte("d2")})
	s.Append(SinkRecord{Producer: "b", Seq: 1, Epoch: 1, Delta: []byte("d3")})
	s.Append(SinkRecord{Producer: "a", Seq: 3, Epoch: 2}) // no delta
	if s.StoredDeltaCount() != 3 {
		t.Fatalf("stored = %d", s.StoredDeltaCount())
	}
	chunks := s.DeltasFor("a")
	if len(chunks) != 2 || string(chunks[0].Delta) != "d1" || chunks[1].Epoch != 2 {
		t.Fatalf("chunks = %+v", chunks)
	}
	// Records returned to consumers never carry deltas.
	for _, r := range s.All() {
		if r.Delta != nil {
			t.Fatal("delta leaked into consumer records")
		}
	}
	// A deduplicated record's delta is still stored.
	s.Append(SinkRecord{Producer: "a", Seq: 2, Epoch: 2, Delta: []byte("d2-replay")})
	if s.Len() != 4 {
		t.Fatalf("dedup failed: len=%d", s.Len())
	}
	if len(s.DeltasFor("a")) != 3 {
		t.Fatal("replayed record's delta not stored")
	}
	s.TruncateDeltas(1)
	for _, c := range s.DeltasFor("a") {
		if c.Epoch <= 1 {
			t.Fatalf("epoch %d chunk survived truncation", c.Epoch)
		}
	}
	if len(s.DeltasFor("b")) != 0 {
		t.Fatal("producer b chunk survived truncation")
	}
}
