// Package kafkasim simulates the partitioned, offset-addressable,
// replayable log cluster the paper uses as data source and sink (Kafka).
// Source partitions are replayable from any retained offset, which is
// what lets lineage-based replay terminate at the sources; the sink topic
// timestamps arrivals and deduplicates by producer sequence, providing
// the idempotent sink of §5.5 and the measurement point for throughput
// and latency.
package kafkasim

import (
	"fmt"
	"sync"
	"time"
)

// Record is one log entry of a source partition.
type Record struct {
	Key   uint64
	Ts    int64 // event time, Unix ms
	Value any
}

// Partition is one FIFO, offset-addressable log.
//
//clonos:external simulated broker log, durable outside the recovery domain; tasks re-read it by offset instead of snapshotting it
type Partition struct {
	mu      sync.Mutex
	cond    *sync.Cond
	records []Record
	closed  bool
}

// NewPartition creates an empty partition.
func NewPartition() *Partition {
	p := &Partition{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Append adds a record.
func (p *Partition) Append(r Record) {
	p.mu.Lock()
	p.records = append(p.records, r)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Get returns the record at offset, or false if not yet produced.
func (p *Partition) Get(offset int64) (Record, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < 0 || offset >= int64(len(p.records)) {
		return Record{}, false
	}
	return p.records[offset], true
}

// Len reports the high-water offset.
func (p *Partition) Len() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(len(p.records))
}

// Close marks the partition finished; blocked waits return.
func (p *Partition) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Closed reports whether no more records will be appended.
func (p *Partition) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Topic is a set of partitions.
type Topic struct {
	Name       string
	Partitions []*Partition
}

// NewTopic creates a topic with n partitions.
func NewTopic(name string, n int) *Topic {
	t := &Topic{Name: name}
	for i := 0; i < n; i++ {
		t.Partitions = append(t.Partitions, NewPartition())
	}
	return t
}

// Append routes a record to partition key % n.
func (t *Topic) Append(r Record) {
	t.Partitions[int(r.Key%uint64(len(t.Partitions)))].Append(r)
}

// Close closes all partitions.
func (t *Topic) Close() {
	for _, p := range t.Partitions {
		p.Close()
	}
}

// TotalLen sums the partition high-water offsets.
func (t *Topic) TotalLen() int64 {
	var n int64
	for _, p := range t.Partitions {
		n += p.Len()
	}
	return n
}

// SinkRecord is one record delivered to a sink topic.
type SinkRecord struct {
	Key uint64
	// EventTs is the record's event time; ArrivalMs the wall-clock
	// arrival at the sink, so latency = ArrivalMs - EmitMs.
	EventTs   int64
	ArrivalMs int64
	// EmitMs is the wall-clock time the record entered the system at
	// the source; end-to-end latency is measured against it.
	EmitMs int64
	Value  any
	// Producer and Seq identify the sink subtask and its per-task
	// output sequence number, the idempotence key.
	Producer string
	Seq      uint64
	// Epoch is the producer's checkpoint epoch, used to truncate
	// stored determinants after checkpoints (§5.5).
	Epoch uint64
	// Delta carries the producer's piggybacked causal-log delta when
	// exactly-once output is enabled (§5.5); the topic stores it and
	// returns it to a recovering producer.
	Delta []byte
}

// DeltaChunk is one stored determinant delta of a producer.
type DeltaChunk struct {
	Seq   uint64
	Epoch uint64
	Delta []byte
}

// SinkTopic is the measured output: it deduplicates by (producer, seq),
// making the sink idempotent — valid here because Clonos' causally guided
// replay regenerates byte-identical output, unlike plain re-execution of
// nondeterministic operators (§5.5).
//
//clonos:external simulated downstream sink, durable outside the recovery domain; producer-sequence dedup (not snapshots) keeps it consistent across recovery
type SinkTopic struct {
	mu      sync.Mutex
	records []SinkRecord
	lastSeq map[string]uint64
	deltas  map[string][]DeltaChunk
	dups    uint64
	dedup   bool
}

// NewSinkTopic creates a sink. dedup enables idempotent (exactly-once)
// appends; disable it to observe at-least-once duplicates.
func NewSinkTopic(dedup bool) *SinkTopic {
	return &SinkTopic{
		lastSeq: make(map[string]uint64),
		deltas:  make(map[string][]DeltaChunk),
		dedup:   dedup,
	}
}

// Append delivers one record, stamping its arrival time. Duplicate
// (producer, seq) pairs are dropped when deduplication is on. A record
// carrying a determinant delta (§5.5 exactly-once output) has the delta
// stored for later retrieval by a recovering producer.
func (s *SinkTopic) Append(r SinkRecord) {
	r.ArrivalMs = time.Now().UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Store piggybacked determinants even for records the idempotence
	// check will drop: a recovering producer resends deduplicated
	// records whose deltas may carry determinants not yet stored (the
	// replica merge is idempotent by absolute log index).
	if len(r.Delta) > 0 && r.Producer != "" {
		s.deltas[r.Producer] = append(s.deltas[r.Producer], DeltaChunk{Seq: r.Seq, Epoch: r.Epoch, Delta: r.Delta})
		r.Delta = nil // records returned to consumers carry no delta
	}
	if s.dedup && r.Producer != "" {
		if last, ok := s.lastSeq[r.Producer]; ok && r.Seq <= last {
			s.dups++
			return
		}
		s.lastSeq[r.Producer] = r.Seq
	}
	s.records = append(s.records, r)
}

// DeltasFor returns the stored determinant chunks of a producer, in
// append order — the §5.5 recovery retrieval.
func (s *SinkTopic) DeltasFor(producer string) []DeltaChunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DeltaChunk(nil), s.deltas[producer]...)
}

// TruncateDeltas drops stored determinant chunks of epochs <= upTo for
// every producer (the checkpoint completed; they are no longer needed).
func (s *SinkTopic) TruncateDeltas(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, chunks := range s.deltas {
		kept := chunks[:0]
		for _, c := range chunks {
			if c.Epoch > upTo {
				kept = append(kept, c)
			}
		}
		s.deltas[p] = append([]DeltaChunk(nil), kept...)
	}
}

// StoredDeltaCount reports the total retained determinant chunks.
func (s *SinkTopic) StoredDeltaCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, chunks := range s.deltas {
		n += len(chunks)
	}
	return n
}

// Len reports delivered (post-dedup) record count.
func (s *SinkTopic) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Duplicates reports how many duplicate records were suppressed.
func (s *SinkTopic) Duplicates() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Since returns records with index >= from (a cheap poll cursor).
func (s *SinkTopic) Since(from int) []SinkRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || from >= len(s.records) {
		return nil
	}
	out := make([]SinkRecord, len(s.records)-from)
	copy(out, s.records[from:])
	return out
}

// All returns a copy of every delivered record.
func (s *SinkTopic) All() []SinkRecord { return s.Since(0) }

// Generator feeds a topic at a target rate from a deterministic record
// source, simulating the benchmark driver that loads Kafka.
type Generator struct {
	topic *Topic
	rate  int // records/second; <= 0 means as fast as possible
	next  func(i int64) (Record, bool)

	stop     chan struct{}
	finished chan struct{}
	done     sync.WaitGroup
}

// NewGenerator builds a generator producing next(i) for i = 0,1,2,...
// until next reports false, paced at rate records/second.
func NewGenerator(topic *Topic, rate int, next func(i int64) (Record, bool)) *Generator {
	return &Generator{
		topic:    topic,
		rate:     rate,
		next:     next,
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
}

// Done is closed when the producer goroutine exits — either the record
// source was exhausted (and the topic closed) or Stop was called. It
// lets callers wait for end-of-input without polling the topic.
func (g *Generator) Done() <-chan struct{} { return g.finished }

// Start launches the producer goroutine.
func (g *Generator) Start() {
	g.done.Add(1)
	go g.run()
}

// Stop halts production and waits for the producer to exit.
func (g *Generator) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.done.Wait()
}

func (g *Generator) run() {
	defer g.done.Done()
	defer close(g.finished)
	const batch = 64
	var i int64
	start := time.Now()
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		for b := 0; b < batch; b++ {
			r, ok := g.next(i)
			if !ok {
				g.topic.Close()
				return
			}
			g.topic.Append(r)
			i++
		}
		if g.rate > 0 {
			// Pace: sleep until the produced count matches the rate.
			ahead := time.Duration(i)*time.Second/time.Duration(g.rate) - time.Since(start)
			if ahead > time.Millisecond {
				select {
				case <-g.stop:
					return
				case <-time.After(ahead):
				}
			}
		}
	}
}

// String describes a partition assignment, used in logs.
func AssignmentString(topic string, part int) string {
	return fmt.Sprintf("%s[%d]", topic, part)
}
