package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckCleanWhenNoLeaks(t *testing.T) {
	if leaked := Check(time.Second); len(leaked) != 0 {
		t.Fatalf("clean process reported leaks:\n%v", leaked)
	}
}

func TestCheckFindsLeakedGoroutine(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }() // deliberately outlives the Check below
	leaked := Check(50 * time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestCheckFindsLeakedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report missing the leaked goroutine:\n%v", leaked)
	}
}

func TestCheckWaitsForWinddown(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	// The goroutine exits within the wait budget: no leak.
	if leaked := Check(2 * time.Second); len(leaked) != 0 {
		t.Fatalf("winding-down goroutine reported as leak:\n%v", leaked)
	}
	<-done
}
