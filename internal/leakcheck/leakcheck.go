// Package leakcheck is a self-contained goroutine-leak gate for test
// mains (the role x/goleak plays elsewhere; the repo has no external
// dependencies). A package opts in with
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// and after its tests pass, any goroutine still running that is not on
// the known-benign list fails the package. Tasks, flushers, spillers,
// heartbeaters, and timer threads all own goroutines; a test that exits
// without stopping them hides a shutdown bug that production teardown
// (or the next recovery) would hit.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxWait bounds how long Check waits for goroutines to wind down.
// Stop/shutdown paths are asynchronous (WaitGroups, close-notify
// channels), so a just-finished test legitimately has goroutines mid-
// exit; the backoff separates those from true leaks.
const maxWait = 5 * time.Second

// VerifyTestMain runs the package's tests and then fails the package if
// goroutines leaked. Use from TestMain; it does not return.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(maxWait); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d leaked goroutine(s) after tests passed:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports the stacks of leaked goroutines, retrying with backoff
// until the set is empty or the wait budget is spent. An empty slice
// means no leaks.
func Check(wait time.Duration) []string {
	deadline := time.Now().Add(wait)
	backoff := time.Millisecond
	for {
		leaked := snapshot()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// snapshot captures all goroutine stacks and filters the benign ones.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// benign reports whether a goroutine stack belongs to the test harness
// or the runtime rather than code under test. runtime.Stack already
// omits system goroutines (GC workers etc.), so this list is short.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.Main(",         // the test binary's main goroutine
		"testing.(*M).Run",      // ditto, via TestMain
		"testing.tRunner",       // a parallel subtest still unwinding
		"testing.runTests",      // ditto
		"leakcheck.snapshot",    // this very goroutine
		"runtime.Stack",         // ditto (inlined)
		"os/signal.signal_recv", // signal watcher, started lazily
		"os/signal.loop",        // ditto
		"runtime/trace.Start",   // -trace support goroutine
		"runtime.ReadTrace",     // ditto
		"testing.(*T).Parallel", // parked parallel test
		"runtime.ensureSigM",    // signal mask goroutine
		"created by runtime.gc", // paranoia: never reported in practice
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
