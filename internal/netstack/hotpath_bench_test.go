package netstack_test

// Micro-benchmarks and allocation budgets for the zero-copy hot path:
// the full encode → dispatch → transmit → deserialize → decode loop (see
// internal/hotbench). The budget tests are the regression fence for the
// perf PR that introduced refcounted buffer aliasing: they fail when
// hot-path allocations creep back in or when payload bytes start being
// copied again.

import (
	"testing"

	"clonos/internal/codec"
	"clonos/internal/hotbench"
	"clonos/internal/types"
)

func scenarioByName(t testing.TB, name string) hotbench.Scenario {
	for _, sc := range hotbench.Scenarios() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("unknown hotbench scenario %q", name)
	return hotbench.Scenario{}
}

func BenchmarkHotPathRoundTrip(b *testing.B) {
	for _, sc := range hotbench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			hotbench.Bench(b, sc)
		})
	}
}

// runLoop writes n elements through a warmed loop and flushes.
func runLoop(t testing.TB, loop *hotbench.Loop, n int, elem func(i int) types.Element) {
	for i := 0; i < n; i++ {
		if err := loop.Write(elem(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := loop.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocBudget enforces per-element allocation ceilings over
// the full loop. The budgets are deliberately loose versions of the
// measured steady state (≈1.5 allocs/elem for int64, dominated by the
// decoded value's interface boxing and queue-growth amortization) — far
// below the pre-zero-copy pipeline, which cloned every payload at
// dispatch, copied it again into the deserializer, and built a fresh
// encoder per value. A failure here means a structural regression, not
// noise.
func TestHotPathAllocBudget(t *testing.T) {
	cases := []struct {
		name   string
		sc     hotbench.Scenario
		budget float64 // max allocs per element
	}{
		// int64: decode boxes the value (1 alloc); everything else must
		// amortize to ~zero.
		{"int64", scenarioByName(t, "int64"), 2.0},
		// 512-byte records: decode copies the payload out of the retained
		// buffer (BytesCodec contract) + boxes it. No other per-element
		// cost is acceptable.
		{"bytes512-aligned", scenarioByName(t, "bytes512-aligned"), 2.5},
	}
	const elems = 2000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loop := hotbench.NewLoop(tc.sc.BufSize, tc.sc.PoolBufs, tc.sc.Codec)
			runLoop(t, loop, elems, tc.sc.Element) // warm pools and queues
			perRun := testing.AllocsPerRun(5, func() {
				runLoop(t, loop, elems, tc.sc.Element)
			})
			perElem := perRun / elems
			t.Logf("%s: %.3f allocs/elem (budget %.1f)", tc.name, perElem, tc.budget)
			if perElem > tc.budget {
				t.Errorf("%s: %.3f allocs/elem exceeds budget %.1f — the zero-copy hot path regressed",
					tc.name, perElem, tc.budget)
			}
		})
	}
}

// TestHotPathZeroCopy proves the two full-payload copies of the old
// pipeline (clone-at-dispatch, copy-at-Feed) are gone: with elements
// sized to tile buffers exactly, not a single payload byte may pass
// through sender scratch or receiver reassembly.
func TestHotPathZeroCopy(t *testing.T) {
	sc := scenarioByName(t, "bytes512-aligned")
	loop := hotbench.NewLoop(sc.BufSize, sc.PoolBufs, sc.Codec)
	runLoop(t, loop, 4096, sc.Element)
	if err := loop.Verify(); err != nil {
		t.Fatal(err)
	}
	st := loop.Stats()
	if st.WireBytes == 0 {
		t.Fatal("no bytes crossed the loop")
	}
	if st.ScratchBytes != 0 {
		t.Errorf("sender copied %d of %d bytes through encode scratch; want 0 (direct-encode fast path broken)",
			st.ScratchBytes, st.WireBytes)
	}
	if st.CopiedBytes != 0 {
		t.Errorf("receiver copied %d of %d bytes reassembling elements; want 0 (cursor deserializer broken)",
			st.CopiedBytes, st.WireBytes)
	}
}

// TestHotPathStraddleBounded checks the general case: with elements that
// do NOT tile buffers, only boundary-straddling elements may be copied —
// a small bounded fraction of the stream, not the whole payload as the
// old pipeline copied (twice).
func TestHotPathStraddleBounded(t *testing.T) {
	sc := scenarioByName(t, "int64")
	loop := hotbench.NewLoop(sc.BufSize, sc.PoolBufs, sc.Codec)
	runLoop(t, loop, 200_000, sc.Element)
	if err := loop.Verify(); err != nil {
		t.Fatal(err)
	}
	st := loop.Stats()
	// One straddling element per 32 KiB buffer of ~11-byte elements:
	// well under 1% of the stream may be copied on either side.
	for name, copied := range map[string]uint64{"scratch": st.ScratchBytes, "reassembly": st.CopiedBytes} {
		if frac := float64(copied) / float64(st.WireBytes); frac > 0.01 {
			t.Errorf("%s copied %.2f%% of %d wire bytes; want < 1%% (only boundary straddles may copy)",
				name, 100*frac, st.WireBytes)
		}
	}
}

// TestTypedStructAllocBudget fences the typed codec tier on the struct
// edge: NEXMark bid events through the auto codec must stay within a few
// allocations per element (decode rebuilds the Bid and boxes the Event;
// encode must be zero-alloc), versus the gob fallback's ~335.
func TestTypedStructAllocBudget(t *testing.T) {
	sc := scenarioByName(t, "typed-struct")
	const elems = 2000
	loop := hotbench.NewLoop(sc.BufSize, sc.PoolBufs, sc.Codec)
	runLoop(t, loop, elems, sc.Element) // warm pools and queues
	perRun := testing.AllocsPerRun(5, func() {
		runLoop(t, loop, elems, sc.Element)
	})
	perElem := perRun / elems
	t.Logf("typed-struct: %.3f allocs/elem (budget 4.0)", perElem)
	if perElem > 4.0 {
		t.Errorf("typed-struct: %.3f allocs/elem exceeds budget 4.0 — the reflection-free struct path regressed",
			perElem)
	}
}

// TestTypedStructSpeedup pins the tentpole claim of the typed codec
// tier: the same struct elements through the registered codec must beat
// the gob fallback by at least 20x end to end. Measured ~185x at
// introduction; a fall below 20x means the typed path silently fell back
// to reflection (or gob got 10x faster, which would be its own news).
func TestTypedStructSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	typed := testing.Benchmark(func(b *testing.B) {
		hotbench.Bench(b, scenarioByName(t, "typed-struct"))
	})
	gob := testing.Benchmark(func(b *testing.B) {
		hotbench.Bench(b, scenarioByName(t, "struct-gob"))
	})
	ratio := float64(gob.NsPerOp()) / float64(typed.NsPerOp())
	t.Logf("typed-struct %d ns/elem, struct-gob %d ns/elem: %.1fx", typed.NsPerOp(), gob.NsPerOp(), ratio)
	if ratio < 20 {
		t.Errorf("typed codec speedup %.1fx below the 20x floor (typed %d ns, gob %d ns)",
			ratio, typed.NsPerOp(), gob.NsPerOp())
	}
}

// TestGobEncodeAllocBudget bounds the pooled gob encode scratch: the
// sync.Pool'd sink must hold EncodeAppend to the encoder's own cost
// (fresh encoder + reflection), with no bytes.Buffer double-buffering.
func TestGobEncodeAllocBudget(t *testing.T) {
	c := codec.GobCodec{}
	dst := make([]byte, 0, 4096)
	// Warm the sink pool and gob's type registry.
	if _, err := c.EncodeAppend(dst, int64(1)); err != nil {
		t.Fatal(err)
	}
	per := testing.AllocsPerRun(100, func() {
		if _, err := c.EncodeAppend(dst, int64(42)); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("gob EncodeAppend: %.1f allocs/op", per)
	// The fresh encoder itself (required: each value's stream must be
	// self-describing, the decode side uses a fresh decoder per value)
	// costs ~17 allocations. The budget fences out the double-buffering
	// the pooled sink removed — a bytes.Buffer grown in stages plus the
	// copy-out append.
	if per > 20 {
		t.Errorf("gob EncodeAppend: %.1f allocs/op exceeds budget 20 — pooled encode scratch regressed", per)
	}
}
