package netstack

import (
	"errors"
	"testing"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/codec"
	"clonos/internal/types"
)

func ch(edge, from, to int32) types.ChannelID {
	return types.ChannelID{Edge: types.EdgeID(edge), From: from, To: to}
}

func msg(id types.ChannelID, seq uint64, data ...byte) *Message {
	return &Message{Channel: id, Seq: seq, Data: data}
}

func TestEndpointFIFO(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 4, nil, true)
	for i := uint64(1); i <= 3; i++ {
		if err := ep.Push(msg(ep.ID(), i, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(1); i <= 3; i++ {
		m := ep.Pop()
		if m == nil || m.Data[0] != i {
			t.Fatalf("pop %d: got %v", i, m)
		}
	}
	if ep.Pop() != nil {
		t.Fatal("pop on empty endpoint returned message")
	}
}

func TestEndpointRejectsOutOfSequence(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 4, nil, true)
	if err := ep.Push(msg(ep.ID(), 5)); err != nil {
		t.Fatal(err)
	}
	if err := ep.Push(msg(ep.ID(), 7)); err == nil {
		t.Fatal("gap in seq accepted")
	}
	if err := ep.Push(msg(ep.ID(), 5)); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := ep.Push(msg(ep.ID(), 6)); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointAnchorsOnFirstSeq(t *testing.T) {
	// A fresh standby endpoint accepts replay starting mid-stream.
	ep := NewEndpoint(ch(1, 0, 0), 4, nil, true)
	if err := ep.Push(msg(ep.ID(), 100)); err != nil {
		t.Fatal(err)
	}
	if got := ep.LastPushed(); got != 100 {
		t.Fatalf("LastPushed = %d, want 100", got)
	}
}

func TestEndpointBackpressure(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 1, nil, true)
	if err := ep.Push(msg(ep.ID(), 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ep.Push(msg(ep.ID(), 2)) }()
	select {
	case <-done:
		t.Fatal("push on full endpoint did not block")
	case <-time.After(20 * time.Millisecond):
	}
	ep.Pop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("push never unblocked")
	}
}

func TestEndpointBreakUnblocksSender(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 1, nil, true)
	_ = ep.Push(msg(ep.ID(), 1))
	done := make(chan error, 1)
	go func() { done <- ep.Push(msg(ep.ID(), 2)) }()
	time.Sleep(10 * time.Millisecond)
	ep.Break()
	select {
	case err := <-done:
		if !errors.Is(err, ErrChannelBroken) {
			t.Fatalf("err = %v, want ErrChannelBroken", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Break did not unblock sender")
	}
	if ep.Len() != 0 {
		t.Fatal("Break did not drop queue")
	}
}

func TestEndpointRebindFencesPredecessor(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 4, nil, true)
	old := func(seq uint64) *Message { return &Message{Channel: ep.ID(), Seq: seq, Gen: 1} }
	new_ := func(seq uint64) *Message { return &Message{Channel: ep.ID(), Seq: seq, Gen: 2} }
	// Unbound endpoint accepts any generation (normal operation).
	for i := uint64(1); i <= 3; i++ {
		if err := ep.Push(old(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lp := ep.Rebind(2); lp != 3 {
		t.Fatalf("Rebind returned %d, want 3", lp)
	}
	// The predecessor's lingering send is rejected after the rebind...
	if err := ep.Push(old(4)); !errors.Is(err, ErrChannelBroken) {
		t.Fatalf("stale-generation push: err = %v, want ErrChannelBroken", err)
	}
	// ...while the replacement continues the FIFO stream.
	if err := ep.Push(new_(4)); err != nil {
		t.Fatal(err)
	}
	if lp := ep.LastPushed(); lp != 4 {
		t.Fatalf("LastPushed = %d, want 4", lp)
	}
}

func TestEndpointRebindEjectsBlockedSender(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 1, nil, true)
	if err := ep.Push(&Message{Channel: ep.ID(), Seq: 1, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	// The predecessor's last send parks on the credit limit (the receiver
	// is busy) and stays there across the crash and recovery.
	done := make(chan error, 1)
	go func() { done <- ep.Push(&Message{Channel: ep.ID(), Seq: 2, Gen: 1}) }()
	select {
	case <-done:
		t.Fatal("push on full endpoint did not block")
	case <-time.After(20 * time.Millisecond):
	}
	ep.Rebind(2)
	select {
	case err := <-done:
		if !errors.Is(err, ErrChannelBroken) {
			t.Fatalf("err = %v, want ErrChannelBroken", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Rebind did not eject the parked stale sender")
	}
	// The fenced send must not have become visible.
	if lp := ep.LastPushed(); lp != 1 {
		t.Fatalf("LastPushed = %d, want 1", lp)
	}
}

func TestNetworkAttachSendDetach(t *testing.T) {
	n := NewNetwork()
	id := ch(2, 1, 3)
	if err := n.Send(msg(id, 1)); !errors.Is(err, ErrChannelBroken) {
		t.Fatalf("send to unknown channel: %v", err)
	}
	ep := NewEndpoint(id, 4, nil, true)
	n.Attach(ep)
	if err := n.Send(msg(id, 1)); err != nil {
		t.Fatal(err)
	}
	if n.Endpoint(id) != ep {
		t.Fatal("lookup returned wrong endpoint")
	}
	n.Detach(id)
	if n.Endpoint(id) != nil {
		t.Fatal("detach left endpoint registered")
	}
	if err := ep.Push(msg(id, 2)); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("push on closed endpoint: %v", err)
	}
}

func TestNetworkReplaceEndpoint(t *testing.T) {
	n := NewNetwork()
	id := ch(1, 0, 0)
	old := NewEndpoint(id, 4, nil, true)
	n.Attach(old)
	_ = n.Send(msg(id, 1))
	old.Break()
	// Standby attaches a fresh endpoint; replay starts at seq 1 again.
	fresh := NewEndpoint(id, 4, nil, true)
	n.Attach(fresh)
	if err := n.Send(msg(id, 1)); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 1 {
		t.Fatal("fresh endpoint did not receive")
	}
}

func TestGateNextRoundRobin(t *testing.T) {
	n := NewNetwork()
	ids := []types.ChannelID{ch(1, 0, 0), ch(1, 1, 0)}
	g := NewGate(n, ids, 4, true)
	abort := make(chan struct{})
	if err := n.Send(msg(ids[0], 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(msg(ids[1], 1, 20)); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		idx, m, err := g.Next(abort)
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			t.Fatal("nil message")
		}
		seen[idx] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("round robin did not serve both channels: %v", seen)
	}
}

func TestGateBlockedChannelNotServed(t *testing.T) {
	n := NewNetwork()
	ids := []types.ChannelID{ch(1, 0, 0), ch(1, 1, 0)}
	g := NewGate(n, ids, 4, true)
	abort := make(chan struct{})
	_ = n.Send(msg(ids[0], 1, 10))
	_ = n.Send(msg(ids[1], 1, 20))
	g.Block(0)
	idx, m, err := g.Next(abort)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || m.Data[0] != 20 {
		t.Fatalf("served blocked channel: idx=%d", idx)
	}
	g.Unblock(0)
	idx, _, err = g.Next(abort)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("unblocked channel not served: idx=%d", idx)
	}
}

func TestGateNextAbort(t *testing.T) {
	n := NewNetwork()
	g := NewGate(n, []types.ChannelID{ch(1, 0, 0)}, 4, true)
	abort := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Next(abort)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(abort)
	select {
	case err := <-done:
		if !errors.Is(err, ErrGateClosed) {
			t.Fatalf("err = %v, want ErrGateClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("abort did not unblock Next")
	}
}

func TestGateNextFrom(t *testing.T) {
	n := NewNetwork()
	ids := []types.ChannelID{ch(1, 0, 0), ch(1, 1, 0)}
	g := NewGate(n, ids, 4, true)
	abort := make(chan struct{})
	_ = n.Send(msg(ids[1], 1, 42))
	// Data arrives on channel 0 later; NextFrom(1) must still serve 1.
	m, err := g.NextFrom(1, abort)
	if err != nil || m.Data[0] != 42 {
		t.Fatalf("NextFrom: m=%v err=%v", m, err)
	}
	done := make(chan *Message, 1)
	go func() {
		m, _ := g.NextFrom(0, abort)
		done <- m
	}()
	time.Sleep(10 * time.Millisecond)
	_ = n.Send(msg(ids[0], 1, 7))
	select {
	case m := <-done:
		if m.Data[0] != 7 {
			t.Fatalf("NextFrom(0) got %v", m.Data)
		}
	case <-time.After(time.Second):
		t.Fatal("NextFrom never returned")
	}
}

func collectElements(t *testing.T, d *Deserializer, data []byte) []types.Element {
	t.Helper()
	d.Feed(data)
	var out []types.Element
	for {
		e, ok, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestWriterAndDeserializerRoundTrip(t *testing.T) {
	pool := buffer.NewPool(4, 32)
	var dispatched [][]byte
	w := NewChannelWriter(pool, codec.Int64Codec{}, func(b *buffer.Buffer) error {
		dispatched = append(dispatched, append([]byte(nil), b.Data...))
		pool.Put(b)
		return nil
	})
	const n = 20
	for i := int64(0); i < n; i++ {
		if err := w.WriteElement(types.Record(uint64(i), i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(dispatched) < 2 {
		t.Fatalf("expected spanning across >= 2 buffers, got %d", len(dispatched))
	}
	d := NewDeserializer(codec.Int64Codec{})
	var got []types.Element
	for _, b := range dispatched {
		got = append(got, collectElements(t, d, b)...)
	}
	if len(got) != n {
		t.Fatalf("decoded %d elements, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Value.(int64) != int64(i) {
			t.Fatalf("element %d = %v", i, e.Value)
		}
	}
	if d.Pending() != 0 {
		t.Fatalf("deserializer has %d leftover bytes", d.Pending())
	}
}

func TestWriterRecoveryCutsReproduceBuffers(t *testing.T) {
	// First run: record the nondeterministic cut sizes.
	pool := buffer.NewPool(8, 64)
	var sizes []int
	var original [][]byte
	w := NewChannelWriter(pool, codec.Int64Codec{}, func(b *buffer.Buffer) error {
		sizes = append(sizes, b.Len())
		data := make([]byte, b.Len())
		copy(data, b.Data)
		original = append(original, data)
		pool.Put(b)
		return nil
	})
	for i := int64(0); i < 10; i++ {
		if err := w.WriteElement(types.Record(uint64(i), i, i)); err != nil {
			t.Fatal(err)
		}
		if i == 3 { // a timing-dependent early flush
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Recovery run: replay the same elements with the recorded cuts.
	var replayed [][]byte
	w2 := NewChannelWriter(pool, codec.Int64Codec{}, func(b *buffer.Buffer) error {
		data := make([]byte, b.Len())
		copy(data, b.Data)
		replayed = append(replayed, data)
		pool.Put(b)
		return nil
	})
	for _, s := range sizes {
		w2.PushCut(s)
	}
	if !w2.InRecovery() {
		t.Fatal("writer not in recovery after PushCut")
	}
	for i := int64(0); i < 10; i++ {
		if err := w2.WriteElement(types.Record(uint64(i), i, i)); err != nil {
			t.Fatal(err)
		}
		// Timing flushes during recovery must be ignored.
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.ForceFlush(); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(original) {
		t.Fatalf("replayed %d buffers, want %d", len(replayed), len(original))
	}
	for i := range original {
		if string(replayed[i]) != string(original[i]) {
			t.Fatalf("buffer %d differs after recovery", i)
		}
	}
	if w2.InRecovery() {
		t.Fatal("writer still in recovery after consuming all cuts")
	}
}

func TestWriterClosedPool(t *testing.T) {
	pool := buffer.NewPool(1, 16)
	w := NewChannelWriter(pool, codec.Int64Codec{}, func(b *buffer.Buffer) error { return nil })
	pool.Close()
	if err := w.WriteElement(types.Record(0, 0, int64(1))); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("err = %v, want ErrWriterClosed", err)
	}
}

func TestDeserializerSpanningAcrossFeeds(t *testing.T) {
	enc, err := codec.EncodeElement(nil, types.Record(1, 2, int64(3)), codec.Int64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeserializer(codec.Int64Codec{})
	// Feed one byte at a time; element must only appear at the end.
	for i, b := range enc {
		d.Feed([]byte{b})
		e, ok, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if i < len(enc)-1 && ok {
			t.Fatalf("element completed early at byte %d", i)
		}
		if i == len(enc)-1 {
			if !ok {
				t.Fatal("element not completed at final byte")
			}
			if e.Value.(int64) != 3 {
				t.Fatalf("value = %v", e.Value)
			}
		}
	}
}

func TestDeserializerReset(t *testing.T) {
	d := NewDeserializer(codec.Int64Codec{})
	d.Feed([]byte{0, 0, 0, 9, 1}) // partial element
	if d.Pending() == 0 {
		t.Fatal("no pending bytes")
	}
	d.Reset()
	if d.Pending() != 0 {
		t.Fatal("reset did not clear pending bytes")
	}
}

func TestEndpointUnboundedDuringAlignment(t *testing.T) {
	ep := NewEndpoint(ch(1, 0, 0), 2, nil, true)
	_ = ep.Push(msg(ep.ID(), 1))
	_ = ep.Push(msg(ep.ID(), 2))
	// Queue is at credit; a blocked-for-alignment channel must keep
	// accepting pushes so the producer is not deadlocked against the
	// alignment.
	ep.SetUnbounded(true)
	done := make(chan error, 1)
	go func() { done <- ep.Push(msg(ep.ID(), 3)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("push blocked on an unbounded endpoint")
	}
	if ep.Len() != 3 {
		t.Fatalf("len = %d", ep.Len())
	}
	// Back to bounded: the next push must block until a pop.
	ep.SetUnbounded(false)
	go func() { done <- ep.Push(msg(ep.ID(), 4)) }()
	select {
	case <-done:
		t.Fatal("push did not block after re-bounding")
	case <-time.After(20 * time.Millisecond):
	}
	ep.Pop()
	ep.Pop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("push never unblocked")
	}
}

func TestGateBlockLiftsCredit(t *testing.T) {
	n := NewNetwork()
	ids := []types.ChannelID{ch(1, 0, 0)}
	g := NewGate(n, ids, 1, true)
	_ = n.Send(msg(ids[0], 1))
	g.Block(0)
	// Credit 1 is exhausted, but the blocked channel buffers.
	if err := n.Send(msg(ids[0], 2)); err != nil {
		t.Fatal(err)
	}
	g.Unblock(0)
	abort := make(chan struct{})
	idx, m, err := g.Next(abort)
	if err != nil || idx != 0 || m.Seq != 1 {
		t.Fatalf("next: idx=%d m=%v err=%v", idx, m, err)
	}
}
