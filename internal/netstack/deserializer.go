package netstack

import (
	"encoding/binary"
	"sync"

	"clonos/internal/codec"
	"clonos/internal/types"
)

// Deserializer reassembles the length-prefixed element stream of one input
// channel as a cursor over a queue of retained message payloads: Push
// keeps the message (no copy), Next decodes elements in place from the
// queued bytes, and each message is released once fully consumed. Only an
// element that genuinely straddles a message boundary pays a reassembly
// copy into a reused scratch buffer.
//
// Because elements may span network buffers, partial bytes persist between
// messages — the per-channel deserializer state §6.2 calls out as a
// reconfiguration hazard. Reset clears that state (releasing the retained
// messages) when a channel is rebuilt; Close does the same permanently
// when the owning task dies, so a crashed receiver cannot strand the
// sender's buffer references.
//
// The mutex exists for Reset/Close racing the consuming main thread at
// crash time; in steady state all calls come from one goroutine and the
// lock is uncontended.
type Deserializer struct {
	codec codec.Codec

	mu      sync.Mutex
	msgs    []*Message
	head    int // index of the current message in msgs
	off     int // consumed bytes of msgs[head].Data
	pending int // total unconsumed bytes across the queue
	scratch []byte
	copied  uint64 // bytes copied reassembling straddling elements
	closed  bool
}

// NewDeserializer builds a deserializer decoding payloads with c.
func NewDeserializer(c codec.Codec) *Deserializer {
	return &Deserializer{codec: c}
}

// Push appends a received message's payload without copying. The
// deserializer takes ownership and releases the message once its bytes
// are consumed (or on Reset/Close). Pushing into a closed deserializer
// releases the message immediately.
//
//clonos:owns-transfer
func (d *Deserializer) Push(m *Message) {
	d.mu.Lock()
	if d.closed || len(m.Data) == 0 {
		d.mu.Unlock()
		m.Release()
		return
	}
	d.msgs = append(d.msgs, m)
	d.pending += len(m.Data)
	d.mu.Unlock()
}

// Feed appends a copy of a raw payload (convenience for callers without a
// pooled message, e.g. tests).
func (d *Deserializer) Feed(p []byte) {
	m := NewMessage()
	m.Data = append(m.Data, p...)
	d.Push(m)
}

// Next decodes the next complete element. ok is false when more bytes are
// needed.
func (d *Deserializer) Next() (e types.Element, ok bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.pending < 4 {
		return types.Element{}, false, nil
	}
	head := d.msgs[d.head].Data[d.off:]
	var n int
	if len(head) >= 4 {
		n = int(binary.BigEndian.Uint32(head))
	} else {
		var hdr [4]byte
		d.peekLocked(hdr[:])
		n = int(binary.BigEndian.Uint32(hdr[:]))
	}
	if d.pending-4 < n {
		return types.Element{}, false, nil
	}
	var body []byte
	if len(head) >= 4+n {
		// Fast path: the element is contiguous in the current message —
		// decode straight from the retained payload, zero copies.
		body = head[4 : 4+n]
	} else {
		// The element straddles message boundaries: reassemble it into
		// the reused scratch buffer (the only copy on the receive path).
		need := 4 + n
		if cap(d.scratch) < need {
			d.scratch = make([]byte, need)
		}
		d.scratch = d.scratch[:need]
		d.peekLocked(d.scratch)
		d.copied += uint64(need)
		body = d.scratch[4:]
	}
	e, err = codec.DecodeElement(body, d.codec)
	if err != nil {
		return types.Element{}, false, err
	}
	// Consume only after decoding: advancing may release the message,
	// letting the sender recycle (and rewrite) the aliased buffer.
	d.advanceLocked(4 + n)
	return e, true, nil
}

// peekLocked copies the next len(dst) queued bytes into dst without
// consuming them. The caller guarantees d.pending >= len(dst).
func (d *Deserializer) peekLocked(dst []byte) {
	i, off := d.head, d.off
	for len(dst) > 0 {
		src := d.msgs[i].Data[off:]
		n := copy(dst, src)
		dst = dst[n:]
		i++
		off = 0
	}
}

// advanceLocked consumes k queued bytes, releasing messages as they drain.
func (d *Deserializer) advanceLocked(k int) {
	d.pending -= k
	for k > 0 {
		m := d.msgs[d.head]
		avail := len(m.Data) - d.off
		if k < avail {
			d.off += k
			return
		}
		k -= avail
		d.off = 0
		d.msgs[d.head] = nil
		d.head++
		m.Release()
	}
	if d.head == len(d.msgs) {
		d.msgs = d.msgs[:0]
		d.head = 0
	}
}

// PendingTail returns a copy of the buffered-but-undecoded bytes (the
// partial element straddling the last consumed message boundary, if any)
// without consuming them. An unaligned checkpoint logs this prefix so the
// restored task can Feed it back before replaying the logged in-flight
// messages — the first replayed element may complete an element whose head
// was already received when the snapshot was taken.
func (d *Deserializer) PendingTail() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending == 0 {
		return nil
	}
	out := make([]byte, d.pending)
	d.peekLocked(out)
	return out
}

// Pending reports the buffered byte count awaiting completion.
func (d *Deserializer) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pending
}

// CopiedBytes reports the bytes copied reassembling elements that
// straddled message boundaries — the residual copy cost of the otherwise
// zero-copy receive path.
func (d *Deserializer) CopiedBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.copied
}

// Reset discards partial state, releasing every retained message; used
// when a channel is rebuilt during recovery and the byte stream restarts
// at a buffer boundary.
func (d *Deserializer) Reset() {
	d.mu.Lock()
	d.resetLocked()
	d.mu.Unlock()
}

func (d *Deserializer) resetLocked() {
	for i := d.head; i < len(d.msgs); i++ {
		d.msgs[i].Release()
		d.msgs[i] = nil
	}
	d.msgs = d.msgs[:0]
	d.head = 0
	d.off = 0
	d.pending = 0
}

// Close releases all retained messages and rejects further pushes. The
// owning task calls it on crash/shutdown so sender-side buffers recycle
// even when the receiver dies mid-stream.
func (d *Deserializer) Close() {
	d.mu.Lock()
	d.resetLocked()
	d.closed = true
	d.mu.Unlock()
}
