package netstack

import (
	"encoding/binary"

	"clonos/internal/codec"
	"clonos/internal/types"
)

// Deserializer reassembles the length-prefixed element stream of one input
// channel. Because elements may span network buffers, it keeps partial
// bytes between Feed calls — the per-channel deserializer state §6.2 calls
// out as a reconfiguration hazard. Reset clears that state when a channel
// is rebuilt.
type Deserializer struct {
	codec codec.Codec
	buf   []byte
}

// NewDeserializer builds a deserializer decoding payloads with c.
func NewDeserializer(c codec.Codec) *Deserializer {
	return &Deserializer{codec: c}
}

// Feed appends the payload of a received buffer.
func (d *Deserializer) Feed(p []byte) {
	d.buf = append(d.buf, p...)
}

// Next decodes the next complete element. ok is false when more bytes are
// needed.
func (d *Deserializer) Next() (e types.Element, ok bool, err error) {
	if len(d.buf) < 4 {
		return types.Element{}, false, nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	if uint32(len(d.buf)-4) < n {
		return types.Element{}, false, nil
	}
	body := d.buf[4 : 4+n]
	e, err = codec.DecodeElement(body, d.codec)
	if err != nil {
		return types.Element{}, false, err
	}
	// Shift consumed bytes; keep the tail for the next element.
	d.buf = append(d.buf[:0], d.buf[4+n:]...)
	return e, true, nil
}

// Pending reports the buffered byte count awaiting completion.
func (d *Deserializer) Pending() int { return len(d.buf) }

// Reset discards partial state; used when a channel is rebuilt during
// recovery and the byte stream restarts at a buffer boundary.
func (d *Deserializer) Reset() { d.buf = d.buf[:0] }
