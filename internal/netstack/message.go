// Package netstack implements the simulated network layer: FIFO
// per-partition channels between tasks, receiver endpoints with bounded
// queues (backpressure), input gates with checkpoint-barrier alignment,
// per-channel serializers that span records across fixed-size network
// buffers, and dynamic channel reconfiguration used during recovery.
package netstack

import (
	"errors"
	"sync"

	"clonos/internal/buffer"
	"clonos/internal/types"
)

// Message is the unit transferred over a channel. On the zero-copy
// dispatch path Data aliases the sender's network buffer (retained via
// Bind); the sender's in-flight log and the wire share one backing
// array, and the receiver drops the reference with Release once the
// payload is fully consumed. Replayed messages carry their own copy.
//
// Messages are pooled: obtain with NewMessage, hand back with Release.
// Ownership transfers on successful Push into an endpoint; on any push
// error the sender still owns (and must Release) the message.
type Message struct {
	Channel types.ChannelID
	// Seq is the per-channel sequence number, consecutive from 1.
	Seq uint64
	// Epoch is the checkpoint epoch the buffer belongs to.
	Epoch types.EpochID
	// Data is the serialized element stream.
	Data []byte
	// Delta is the piggybacked causal-log delta (may be nil).
	Delta []byte
	// Replayed marks messages resent from an in-flight log during
	// recovery. Metrics use it; the protocol itself does not.
	Replayed bool
	// StreamReset marks the first message of a divergent sender
	// incarnation (at-least-once / at-most-once recovery): the receiver
	// must discard partial deserializer state from the predecessor's
	// byte stream, which the new stream does not continue.
	StreamReset bool
	// Gen identifies the sender incarnation (connection generation).
	// After an endpoint is Rebound to a recovering sender's generation,
	// messages stamped with any other generation are rejected — in
	// particular a crashed predecessor's lingering send, which may have
	// been blocked on credit across the whole recovery protocol. Zero
	// means unstamped (accepted unless the endpoint is bound).
	Gen uint64

	// buf, when non-nil, is the retained network buffer whose backing
	// array Data aliases; Release drops that reference.
	buf *buffer.Buffer
}

var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed message from the pool.
func NewMessage() *Message { return msgPool.Get().(*Message) }

// Bind aliases b's bytes as the message payload and retains b until
// Release. The caller must hold a reference to b while calling.
func (m *Message) Bind(b *buffer.Buffer) {
	b.Retain()
	m.buf = b
	m.Data = b.Data
}

// Unalias detaches the payload from the sender's network buffer: the
// bytes move into a private copy and the buffer reference is dropped, so
// the sender can recycle (and rewrite) the buffer while the message is
// parked. Endpoints use it on alignment-blocked channels, where the
// consumer deliberately stops draining — a parked alias would pin the
// sender's pool and deadlock the checkpoint (see Gate.Block).
func (m *Message) Unalias() {
	if m.buf == nil {
		return
	}
	m.Data = append([]byte(nil), m.Data...)
	m.buf.Release()
	m.buf = nil
}

// Release drops the payload-buffer reference (if any) and returns the
// message to the pool. The message must not be used afterwards. Safe on
// nil and on messages built as plain literals.
func (m *Message) Release() {
	if m == nil {
		return
	}
	if m.buf != nil {
		m.buf.Release()
	}
	*m = Message{}
	msgPool.Put(m)
}

// ErrChannelBroken is returned when sending on a channel whose receiver has
// failed (the simulated TCP connection is down).
var ErrChannelBroken = errors.New("netstack: channel broken")

// ErrChannelClosed is returned when the endpoint was shut down permanently.
var ErrChannelClosed = errors.New("netstack: channel closed")
