// Package netstack implements the simulated network layer: FIFO
// per-partition channels between tasks, receiver endpoints with bounded
// queues (backpressure), input gates with checkpoint-barrier alignment,
// per-channel serializers that span records across fixed-size network
// buffers, and dynamic channel reconfiguration used during recovery.
package netstack

import (
	"errors"

	"clonos/internal/types"
)

// Message is the unit transferred over a channel: an immutable copy of a
// dispatched network buffer. The sender retains the original buffer in its
// in-flight log; the receiver owns the copy.
type Message struct {
	Channel types.ChannelID
	// Seq is the per-channel sequence number, consecutive from 1.
	Seq uint64
	// Epoch is the checkpoint epoch the buffer belongs to.
	Epoch types.EpochID
	// Data is the serialized element stream.
	Data []byte
	// Delta is the piggybacked causal-log delta (may be nil).
	Delta []byte
	// Replayed marks messages resent from an in-flight log during
	// recovery. Metrics use it; the protocol itself does not.
	Replayed bool
	// StreamReset marks the first message of a divergent sender
	// incarnation (at-least-once / at-most-once recovery): the receiver
	// must discard partial deserializer state from the predecessor's
	// byte stream, which the new stream does not continue.
	StreamReset bool
	// Gen identifies the sender incarnation (connection generation).
	// After an endpoint is Rebound to a recovering sender's generation,
	// messages stamped with any other generation are rejected — in
	// particular a crashed predecessor's lingering send, which may have
	// been blocked on credit across the whole recovery protocol. Zero
	// means unstamped (accepted unless the endpoint is bound).
	Gen uint64
}

// ErrChannelBroken is returned when sending on a channel whose receiver has
// failed (the simulated TCP connection is down).
var ErrChannelBroken = errors.New("netstack: channel broken")

// ErrChannelClosed is returned when the endpoint was shut down permanently.
var ErrChannelClosed = errors.New("netstack: channel closed")
