package netstack

import (
	"fmt"
	"sync"
	"time"

	"clonos/internal/obs"
	"clonos/internal/types"
)

// EndpointMetrics instruments an endpoint's receive path. All fields are
// optional (nil-safe): Accepted counts messages accepted into the queue,
// Blocked counts Push calls that stalled on the credit limit, BlockedNs
// accumulates the stalled nanoseconds, and Stall observes each stall's
// duration (the credit-wait distribution, not just its sum). One
// instance is shared by every endpoint of a gate, so the counters
// aggregate per task.
type EndpointMetrics struct {
	Accepted  *obs.Counter
	Blocked   *obs.Counter
	BlockedNs *obs.Counter
	Stall     *obs.Histogram
}

// Endpoint is the receiver side of one FIFO channel. Senders block in Push
// when the bounded queue is full (backpressure); the owning input gate pops
// messages.
//
// An endpoint survives a sender failure: the queue keeps whatever the dead
// sender already delivered, and LastPushed lets a recovering sender learn
// how far this receiver got, enabling sender-side deduplication. When the
// receiver itself fails, the endpoint is Broken (unblocking senders) and a
// fresh endpoint replaces it in the Network once the standby attaches.
type Endpoint struct {
	id     types.ChannelID
	credit int

	mu       sync.Mutex
	sendCond *sync.Cond
	queue    []*Message
	// preload holds in-flight messages restored from an unaligned
	// checkpoint's logged-buffer section. They are served before the live
	// queue, never count against credit, and survive AcceptFrom's queue
	// drop (the replay request re-anchors LIVE traffic at the first
	// post-checkpoint seq; the preloaded prefix sits logically before it).
	preload []*Message
	// lastPushed is the seq of the newest message accepted into the
	// queue; the successor is the only seq Push will accept next.
	lastPushed uint64
	anchored   bool // false until the first message arrives
	// accepting gates Push: a recovering task's fresh endpoints reject
	// senders until the replay request opens them (AcceptFrom), so a
	// stale direct send cannot anchor the connection at the wrong seq.
	accepting bool
	// expectFirst, when non-zero, is the only seq accepted as the first
	// message after AcceptFrom.
	expectFirst uint64
	// gen, when non-zero, binds the endpoint to one sender incarnation:
	// only messages stamped with this generation are accepted. Rebind
	// sets it when a recovering sender takes over the channel, fencing
	// off the crashed predecessor's lingering sends.
	gen uint64
	// unbounded lifts the credit limit while the channel is blocked for
	// barrier alignment: the consumer is deliberately not draining it,
	// and capping the queue would deadlock the producer against the
	// alignment (the data is buffered instead, as Flink does).
	unbounded bool
	broken    bool
	closed    bool

	// notify is signalled (non-blocking) whenever the queue goes
	// non-empty. It is shared with the owning gate.
	notify chan<- struct{}
	// metrics, when set, counts accepted messages and credit-limit
	// stalls.
	metrics *EndpointMetrics
	// onAccept hooks are invoked in order for every accepted message
	// before Push returns. The task routes these to its causal-log
	// manager (piggybacked determinant deltas are logged as soon as the
	// buffer is received — the paper's causal log manager sits at the
	// network layer, so a recovering upstream's extraction covers every
	// buffer the receiver holds, not only those already processed) and
	// to the audit plane's channel-stream auditor.
	onAccept []func(*Message)
}

// NewEndpoint creates an endpoint with the given queue capacity in buffers.
// notify, if non-nil, is signalled on every push; it is typically the
// owning gate's shared wake-up channel. accepting=false creates the
// endpoint closed to senders until AcceptFrom opens it.
func NewEndpoint(id types.ChannelID, credit int, notify chan<- struct{}, accepting bool) *Endpoint {
	ep := &Endpoint{id: id, credit: credit, notify: notify, accepting: accepting}
	ep.sendCond = sync.NewCond(&ep.mu)
	return ep
}

// AcceptFrom opens the endpoint to senders. firstSeq, when non-zero, is
// the only seq accepted as the first message (the replayed epoch's first
// buffer); zero anchors on whatever arrives first.
func (ep *Endpoint) AcceptFrom(firstSeq uint64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.accepting = true
	ep.anchored = false
	ep.expectFirst = firstSeq
	ep.dropQueueLocked()
	ep.sendCond.Broadcast()
}

// dropQueueLocked discards queued messages, releasing their payload
// references so the senders' buffers recycle.
func (ep *Endpoint) dropQueueLocked() {
	for _, m := range ep.queue {
		m.Release()
	}
	ep.queue = nil
}

// ID returns the channel this endpoint terminates.
func (ep *Endpoint) ID() types.ChannelID { return ep.id }

// Push delivers a message, blocking while the queue is full. It enforces
// FIFO sequencing: after the first accepted message, each seq must be the
// successor of the previous. Out-of-sequence delivery indicates a protocol
// bug and returns an error.
//
// Ownership: on a nil return the endpoint owns m (and its payload
// reference); on error the sender keeps ownership and must release it.
//
//clonos:owns-transfer on-success
func (ep *Endpoint) Push(m *Message) error {
	ep.mu.Lock()
	if len(ep.queue) >= ep.credit && !ep.unbounded && !ep.broken && !ep.closed {
		mx := ep.metrics
		if mx != nil {
			mx.Blocked.Inc()
		}
		start := time.Now()
		for len(ep.queue) >= ep.credit && !ep.unbounded && !ep.broken && !ep.closed &&
			(ep.gen == 0 || m.Gen == ep.gen) {
			ep.sendCond.Wait()
		}
		if mx != nil {
			mx.BlockedNs.AddDuration(time.Since(start))
			mx.Stall.ObserveSince(start)
		}
	}
	if ep.closed {
		ep.mu.Unlock()
		return ErrChannelClosed
	}
	if ep.broken || !ep.accepting {
		ep.mu.Unlock()
		return ErrChannelBroken
	}
	if ep.gen != 0 && m.Gen != ep.gen {
		// A fenced-off predecessor incarnation; reject as transient (the
		// sender is dead, its channel just flips to pending and stops).
		ep.mu.Unlock()
		return ErrChannelBroken
	}
	if !ep.anchored && ep.expectFirst != 0 && m.Seq != ep.expectFirst {
		// A stale sender raced the replay request; reject as transient.
		ep.mu.Unlock()
		return ErrChannelBroken
	}
	if ep.anchored && m.Seq != ep.lastPushed+1 {
		ep.mu.Unlock()
		return fmt.Errorf("netstack: %v out-of-sequence push: got seq %d, want %d", ep.id, m.Seq, ep.lastPushed+1)
	}
	onAccept := ep.onAccept
	ep.mu.Unlock()
	// Run the hooks BEFORE the message (and its seq) becomes visible:
	// recovery reads LastPushed for sender-side dedup, and every
	// deduplicated buffer's determinants (and audit stream records) must
	// already cover it. Pushes on one channel are serial (the sender's
	// writer lock / replay handoff), so the unlocked window is safe.
	for _, h := range onAccept {
		h(m)
	}
	ep.mu.Lock()
	if ep.closed || ep.broken {
		err := ErrChannelClosed
		if ep.broken {
			err = ErrChannelBroken
		}
		ep.mu.Unlock()
		return err
	}
	if ep.gen != 0 && m.Gen != ep.gen {
		// Rebind fenced this sender off while the hook ran: the message
		// must not become visible, or the rebinding recovery would count
		// a seq whose bytes the replacement cannot reproduce.
		ep.mu.Unlock()
		return ErrChannelBroken
	}
	ep.anchored = true
	ep.lastPushed = m.Seq
	if ep.unbounded {
		// The consumer is deliberately not draining this queue (barrier
		// alignment): detach the payload from the sender's buffer so the
		// parked message cannot pin the sender's pool — that pool running
		// dry would stall the sender's main thread and deadlock the very
		// alignment this queue is buffering for.
		m.Unalias()
	}
	ep.queue = append(ep.queue, m)
	if ep.metrics != nil {
		ep.metrics.Accepted.Inc()
	}
	notify := ep.notify
	ep.mu.Unlock()
	if notify != nil {
		select {
		case notify <- struct{}{}:
		default:
		}
	}
	return nil
}

// Instrument attaches receive-path metrics (may be nil to detach).
func (ep *Endpoint) Instrument(m *EndpointMetrics) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.metrics = m
}

// SetOnAccept installs f as the only accepted-message hook, replacing
// any previously installed hooks (see the field doc).
func (ep *Endpoint) SetOnAccept(f func(*Message)) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.onAccept = []func(*Message){f}
}

// AddOnAccept appends an accepted-message hook; hooks run in install
// order. Install-time only (before traffic flows on the endpoint).
func (ep *Endpoint) AddOnAccept(f func(*Message)) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.onAccept = append(ep.onAccept, f)
}

// Preload queues restored in-flight messages ahead of all live traffic.
// The messages bypass the accept path entirely: no FIFO/seq admission, no
// onAccept hooks (their determinant deltas and audit stream records were
// already covered when the checkpoint logged them), no credit accounting.
func (ep *Endpoint) Preload(msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	ep.mu.Lock()
	ep.preload = append(ep.preload, msgs...)
	notify := ep.notify
	ep.mu.Unlock()
	if notify != nil {
		select {
		case notify <- struct{}{}:
		default:
		}
	}
}

// Pop removes and returns the oldest queued message, or nil if empty.
// Preloaded messages drain before live traffic.
func (ep *Endpoint) Pop() *Message {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.preload) > 0 {
		m := ep.preload[0]
		ep.preload = ep.preload[1:]
		return m
	}
	if len(ep.queue) == 0 {
		return nil
	}
	m := ep.queue[0]
	ep.queue = ep.queue[1:]
	ep.sendCond.Signal()
	return m
}

// Len reports the queued message count, including preloaded messages.
func (ep *Endpoint) Len() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue) + len(ep.preload)
}

// LastPushed reports the seq of the newest message accepted into the queue
// (consumed or still queued). A recovering upstream must resume replay at
// LastPushed+1 so queued-but-unprocessed data is not duplicated.
func (ep *Endpoint) LastPushed() uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.lastPushed
}

// Rebind atomically binds the endpoint to a new sender generation and
// returns the last accepted seq. From this point on only messages stamped
// with gen are accepted; anything else — notably a crashed predecessor's
// in-flight send, which may have been parked on the credit limit across
// the entire recovery protocol — is rejected with ErrChannelBroken. The
// recovery protocol must rebind BEFORE sampling the sender-side dedup
// floor and extracting determinants: the returned seq is then guaranteed
// to count only messages whose piggybacked determinants the receiver has
// ingested, keeping the replacement's re-executed byte stream identical
// to the delivered prefix.
func (ep *Endpoint) Rebind(gen uint64) uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.gen = gen
	ep.sendCond.Broadcast()
	return ep.lastPushed
}

// SetUnbounded toggles alignment buffering: while true, Push never blocks
// on the credit limit and parked messages are detached from their
// senders' buffers (see the Unalias note in Push) — including anything
// already queued when the block engages.
func (ep *Endpoint) SetUnbounded(v bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.unbounded = v
	if v {
		for _, m := range ep.queue {
			m.Unalias()
		}
		ep.sendCond.Broadcast()
	}
}

// Break severs the connection after a receiver failure: queued messages
// are dropped with the dead receiver and blocked senders fail with
// ErrChannelBroken.
func (ep *Endpoint) Break() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.broken = true
	ep.dropQueueLocked()
	ep.dropPreloadLocked()
	ep.sendCond.Broadcast()
}

// Broken reports whether Break has been called.
func (ep *Endpoint) Broken() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.broken
}

// Close shuts the endpoint down permanently.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	ep.dropQueueLocked()
	ep.dropPreloadLocked()
	ep.sendCond.Broadcast()
}

// dropPreloadLocked discards preloaded messages (dead receiver).
func (ep *Endpoint) dropPreloadLocked() {
	for _, m := range ep.preload {
		m.Release()
	}
	ep.preload = nil
}
