package netstack

import (
	"testing"

	"clonos/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: gates and endpoints
// park senders on credit waits, so a leak means a Break/Close path left
// a sender or receiver blocked forever.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
