package netstack

import (
	"errors"
	"sync/atomic"

	"clonos/internal/types"
)

// ErrGateClosed is returned by gate reads once the task is shutting down.
var ErrGateClosed = errors.New("netstack: gate closed")

// Gate is a task's input side: one endpoint per input channel plus a shared
// wake-up channel. The task's main thread pulls whole buffers from the gate
// one at a time; which channel is served next is nondeterministic and is
// what the ORDER determinant captures.
//
// The gate also supports blocking individual channels, which checkpoint
// barrier alignment uses: data behind an already-received barrier stays
// queued until the barriers of all channels have arrived.
type Gate struct {
	notify chan struct{}
	eps    []*Endpoint
	// blocked flags are written by the main thread only but read by
	// off-thread metrics collectors (BlockedChannels), hence atomic.
	blocked []atomic.Bool
	// rr is the round-robin cursor that makes channel selection depend
	// on arrival timing — honest nondeterminism, captured by ORDER.
	rr int
}

// NewGate builds a gate with one endpoint per channel ID (gate index =
// slice index), registers the endpoints with the network, and returns it.
// accepting=false creates every endpoint closed to senders until the
// recovery protocol opens it with AcceptFrom.
func NewGate(net *Network, ids []types.ChannelID, credit int, accepting bool) *Gate {
	g := &Gate{notify: make(chan struct{}, 1)}
	g.eps = make([]*Endpoint, 0, len(ids))
	g.blocked = make([]atomic.Bool, len(ids))
	for _, id := range ids {
		ep := NewEndpoint(id, credit, g.notify, accepting)
		net.Attach(ep)
		g.eps = append(g.eps, ep)
	}
	return g
}

// NumChannels reports the number of input channels.
func (g *Gate) NumChannels() int { return len(g.eps) }

// Endpoint returns the endpoint at the given gate index.
func (g *Gate) Endpoint(idx int) *Endpoint { return g.eps[idx] }

// Block marks a channel as blocked for barrier alignment. While blocked,
// the endpoint buffers pushes without a credit limit — the producer must
// not stall against the alignment, or backpressure cycles deadlock the
// checkpoint (the Flink alignment-buffer behaviour).
func (g *Gate) Block(idx int) {
	g.blocked[idx].Store(true)
	g.eps[idx].SetUnbounded(true)
}

// Unblock releases a channel blocked for alignment. It re-signals the
// wake-up channel since blocked data may now be servable.
func (g *Gate) Unblock(idx int) {
	g.blocked[idx].Store(false)
	g.eps[idx].SetUnbounded(false)
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// UnblockAll releases every channel.
func (g *Gate) UnblockAll() {
	for i := range g.blocked {
		g.blocked[i].Store(false)
		g.eps[i].SetUnbounded(false)
	}
	select {
	case g.notify <- struct{}{}:
	default:
	}
}

// Next returns the next buffer from any unblocked, non-empty channel along
// with its gate index, blocking until data arrives or abort is closed.
// Selection is round-robin over ready channels, so the outcome depends on
// arrival timing: the caller must log an ORDER determinant with the
// returned index.
func (g *Gate) Next(abort <-chan struct{}) (int, *Message, error) {
	for {
		n := len(g.eps)
		for off := 1; off <= n; off++ {
			idx := (g.rr + off) % n
			if g.blocked[idx].Load() {
				continue
			}
			if m := g.eps[idx].Pop(); m != nil {
				g.rr = idx
				return idx, m, nil
			}
		}
		select {
		case <-g.notify:
		case <-abort:
			return 0, nil, ErrGateClosed
		}
	}
}

// TryNext is Next without blocking; ok is false when no unblocked channel
// has data.
func (g *Gate) TryNext() (int, *Message, bool) {
	n := len(g.eps)
	for off := 1; off <= n; off++ {
		idx := (g.rr + off) % n
		if g.blocked[idx].Load() {
			continue
		}
		if m := g.eps[idx].Pop(); m != nil {
			g.rr = idx
			return idx, m, true
		}
	}
	return 0, nil, false
}

// Ready exposes the wake-up channel: it receives whenever data arrives or
// a channel is unblocked. Consume it then re-poll with TryNext.
func (g *Gate) Ready() <-chan struct{} { return g.notify }

// NextFrom returns the next buffer from the specific channel, blocking
// until one arrives or abort is closed. Recovery replay uses it to consume
// buffers in the order dictated by the ORDER determinant log.
func (g *Gate) NextFrom(idx int, abort <-chan struct{}) (*Message, error) {
	for {
		if m := g.eps[idx].Pop(); m != nil {
			return m, nil
		}
		select {
		case <-g.notify:
		case <-abort:
			return nil, ErrGateClosed
		}
	}
}

// QueuedBuffers reports the total number of buffers queued across all
// endpoints (blocked or not) — the task's input backlog. Safe to call
// from a metrics collector concurrent with the consuming task.
func (g *Gate) QueuedBuffers() int {
	n := 0
	for _, ep := range g.eps {
		n += ep.Len()
	}
	return n
}

// BlockedChannels reports how many input channels are currently blocked
// for barrier alignment. Safe to call from a metrics collector
// concurrent with the consuming task.
func (g *Gate) BlockedChannels() int {
	n := 0
	for i := range g.blocked {
		if g.blocked[i].Load() {
			n++
		}
	}
	return n
}

// Instrument attaches one shared metrics instance to every endpoint.
func (g *Gate) Instrument(m *EndpointMetrics) {
	for _, ep := range g.eps {
		ep.Instrument(m)
	}
}

// HasData reports whether any unblocked channel has queued data.
func (g *Gate) HasData() bool {
	for i, ep := range g.eps {
		if !g.blocked[i].Load() && ep.Len() > 0 {
			return true
		}
	}
	return false
}

// Close closes all endpoints.
func (g *Gate) Close() {
	for _, ep := range g.eps {
		ep.Close()
	}
}
