package netstack

import (
	"sync"

	"clonos/internal/types"
)

// Network is the registry of live receiver endpoints, keyed by channel.
// Senders look the endpoint up on every buffer dispatch, so replacing an
// endpoint (dynamic reconfiguration, §6.2) takes effect on the sender's
// next dispatch without any sender-side coordination.
type Network struct {
	mu  sync.RWMutex
	eps map[types.ChannelID]*Endpoint
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{eps: make(map[types.ChannelID]*Endpoint)}
}

// Attach installs ep as the live endpoint for its channel, replacing any
// previous endpoint (which the caller should have Broken already).
func (n *Network) Attach(ep *Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.eps[ep.ID()] = ep
}

// Endpoint returns the live endpoint for a channel, or nil.
func (n *Network) Endpoint(id types.ChannelID) *Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.eps[id]
}

// Send pushes a message to the live endpoint of its channel. Sending on an
// unknown channel reports ErrChannelBroken (the receiver is gone). As with
// Endpoint.Push, the receiver owns m only when Send returns nil.
//
//clonos:owns-transfer on-success
func (n *Network) Send(m *Message) error {
	ep := n.Endpoint(m.Channel)
	if ep == nil {
		return ErrChannelBroken
	}
	return ep.Push(m)
}

// Break severs the endpoint of the given channel if present.
func (n *Network) Break(id types.ChannelID) {
	if ep := n.Endpoint(id); ep != nil {
		ep.Break()
	}
}

// Detach removes and closes the endpoint of the given channel.
func (n *Network) Detach(id types.ChannelID) {
	n.mu.Lock()
	ep := n.eps[id]
	delete(n.eps, id)
	n.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}
