package netstack

import (
	"errors"
	"sync"

	"clonos/internal/buffer"
	"clonos/internal/codec"
	"clonos/internal/types"
)

// ErrWriterClosed is returned when writing after the writer's pool closed
// (the task is crashing or shutting down).
var ErrWriterClosed = errors.New("netstack: writer closed")

// ChannelWriter serializes elements into fixed-size network buffers for one
// output channel, splitting element bytes across buffer boundaries when
// needed, and hands each filled buffer to the dispatch callback.
//
// Buffer cuts are nondeterministic in normal operation (a buffer may be cut
// early by the output flusher, depending on timing) and are therefore
// recorded as BUFFERSIZE determinants by the dispatch layer. During
// causally guided recovery, the writer is fed the recorded cut sizes via
// PushCut and reproduces byte-identical buffers.
type ChannelWriter struct {
	mu       sync.Mutex
	pool     *buffer.Pool
	cur      *buffer.Buffer
	scratch  []byte
	codec    codec.Codec
	dispatch func(*buffer.Buffer) error

	// cuts holds recovery-mode target buffer sizes, FIFO.
	cuts []int
	// scratchBytes counts bytes that took the copying fallback path
	// (element straddled a buffer boundary or recovery cuts were
	// pending) — the residual copy cost of the direct-encode fast path.
	scratchBytes uint64
}

// NewChannelWriter builds a writer drawing buffers from pool and invoking
// dispatch (with the writer's lock held) for every completed buffer. The
// dispatch callback takes ownership of the buffer.
func NewChannelWriter(pool *buffer.Pool, c codec.Codec, dispatch func(*buffer.Buffer) error) *ChannelWriter {
	return &ChannelWriter{pool: pool, codec: c, dispatch: dispatch}
}

// PushCut appends a recovery-mode cut size; while cuts are pending the
// writer dispatches exactly when the current buffer reaches the next
// recorded size instead of when it is full.
func (w *ChannelWriter) PushCut(size int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cuts = append(w.cuts, size)
}

// InRecovery reports whether recorded cuts are still pending.
func (w *ChannelWriter) InRecovery() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.cuts) > 0
}

// WriteElement serializes e into the current buffer, dispatching buffers
// as they fill (or as they reach the recorded cut size during recovery).
//
// Fast path: with no recovery cuts pending, the element is encoded
// directly into the current buffer's remaining room — no scratch encode,
// no copy. When the element does not fit (or cuts are pending), it is
// encoded once and chunked across buffers exactly as before, so the byte
// stream and cut positions are identical either way.
func (w *ChannelWriter) WriteElement(e types.Element) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.cuts) == 0 {
		if w.cur == nil {
			if w.cur = w.pool.Get(); w.cur == nil {
				return ErrWriterClosed
			}
		}
		base := w.cur.Data
		ext, err := codec.EncodeElement(base, e, w.codec)
		if err != nil {
			return err
		}
		if len(ext) <= cap(base) {
			// The encoder appended monotonically and the final length
			// fits, so it never reallocated: the bytes landed in the
			// buffer's own backing array.
			w.cur.Data = ext
			if w.cur.Remaining() == 0 {
				return w.dispatchLocked()
			}
			return nil
		}
		// The element overflowed: the encoder grew into a fresh array and
		// the buffer itself is untouched. Chunk the encoded bytes across
		// buffers (the first chunk fills the current buffer's room).
		data := ext[len(base):]
		w.scratchBytes += uint64(len(data))
		return w.writeChunkedLocked(data)
	}
	var err error
	w.scratch, err = codec.EncodeElement(w.scratch[:0], e, w.codec)
	if err != nil {
		return err
	}
	w.scratchBytes += uint64(len(w.scratch))
	return w.writeChunkedLocked(w.scratch)
}

// writeChunkedLocked copies encoded element bytes into buffers, splitting
// across boundaries and honouring pending recovery cuts.
func (w *ChannelWriter) writeChunkedLocked(data []byte) error {
	for len(data) > 0 {
		if w.cur == nil {
			if w.cur = w.pool.Get(); w.cur == nil {
				return ErrWriterClosed
			}
		}
		limit := w.cur.Remaining()
		if len(w.cuts) > 0 {
			if room := w.cuts[0] - w.cur.Len(); room < limit {
				limit = room
			}
		}
		n := len(data)
		if n > limit {
			n = limit
		}
		w.cur.Data = append(w.cur.Data, data[:n]...)
		data = data[n:]
		if w.atCut() {
			if err := w.dispatchLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScratchBytes reports the cumulative bytes that took the copying
// fallback (straddling elements and recovery-guided writes).
func (w *ChannelWriter) ScratchBytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.scratchBytes
}

// atCut reports whether the current buffer must be dispatched now: it is
// full, or it has reached the next recorded recovery cut.
func (w *ChannelWriter) atCut() bool {
	if w.cur == nil {
		return false
	}
	if len(w.cuts) > 0 {
		return w.cur.Len() >= w.cuts[0]
	}
	return w.cur.Remaining() == 0
}

// Flush dispatches the current buffer if it holds any bytes. The output
// flusher thread calls this on its timer; the task calls it on barriers
// and shutdown.
func (w *ChannelWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil || w.cur.Len() == 0 {
		return nil
	}
	// In recovery, timing-based flushes are suppressed: cuts alone
	// decide dispatch so replayed buffers are byte-identical.
	if len(w.cuts) > 0 && w.cur.Len() < w.cuts[0] {
		return nil
	}
	return w.dispatchLocked()
}

// ForceFlush dispatches the current buffer even during recovery. The task
// uses it when the determinant log is exhausted and live mode resumes.
func (w *ChannelWriter) ForceFlush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil || w.cur.Len() == 0 {
		return nil
	}
	return w.dispatchLocked()
}

func (w *ChannelWriter) dispatchLocked() error {
	b := w.cur
	w.cur = nil
	if len(w.cuts) > 0 {
		w.cuts = w.cuts[1:]
	}
	return w.dispatch(b)
}

// PendingBytes reports the bytes currently buffered but not dispatched.
func (w *ChannelWriter) PendingBytes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil {
		return 0
	}
	return w.cur.Len()
}
