// Package a holds bufown golden cases: functions prefixed bad* carry
// diagnostics, ok* functions must stay silent.
package a

import (
	"errors"

	"clonos/internal/buffer"
	"clonos/internal/netstack"
)

var errOops = errors.New("oops")
var stash *buffer.Buffer

// --- positive cases -------------------------------------------------------

func badLeakOnError(p *buffer.Pool, fail bool) error {
	b := p.Get() // want `buffer armed here is not released on a path to return \(line \d+\)`
	if fail {
		return errOops
	}
	b.Release()
	return nil
}

func badDoubleRelease(p *buffer.Pool) {
	b := p.Take()
	b.Release()
	b.Release() // want `double release of buffer b \(already released at line \d+\)`
}

func badUseAfterRelease(p *buffer.Pool) int {
	b := p.Get()
	if b == nil {
		return 0
	}
	b.Release()
	return len(b.Data) // want `use of buffer b after release \(released at line \d+\)`
}

func badDiscard(p *buffer.Pool) {
	p.Get() // want `owned buffer returned here is discarded \(never released\)`
}

func badLoopLeak(p *buffer.Pool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get() // want `buffer armed here is not released by the end of the loop iteration`
		if b == nil {
			continue
		}
		b.Seq = uint64(i)
	}
}

func badOverwrite(p *buffer.Pool) {
	b := p.Get() // want `buffer armed here is overwritten while still owned \(line \d+\)`
	b = p.Get()
	b.Release()
}

func badMessageLeak(stop bool) {
	m := netstack.NewMessage() // want `message armed here is not released on a path to return \(line \d+\)`
	if stop {
		return
	}
	m.Release()
}

// badOnSuccessBody violates the on-success contract: the nil-error path
// must consume m, only error paths may leave it to the caller.
//
//clonos:owns-transfer on-success
func badOnSuccessBody(m *netstack.Message, closed bool) error { // want `message armed here is not released on a path to return \(line \d+\)`
	if closed {
		return errOops
	}
	return nil
}

func badUseAfterPut(p *buffer.Pool) int {
	b := p.Take()
	p.Put(b)
	return len(b.Data) // want `use of buffer b after release \(released at line \d+\)`
}

// --- negative cases -------------------------------------------------------

func okPoolReturn(p *buffer.Pool) {
	b := p.Take()
	b.Seq = 3
	p.Donate(b)
}

func okNilRefined(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	b.Seq = 1
	b.Release()
}

// sink takes ownership unconditionally.
//
//clonos:owns-transfer
func sink(b *buffer.Buffer) {
	b.Seq = 2
	b.Release()
}

func okHandoff(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	sink(b)
}

func okRetainBalance(p *buffer.Pool) {
	b := p.Take()
	b.Retain()
	b.Release()
	b.Release()
}

func okDeferRelease(p *buffer.Pool) int {
	b := p.Take()
	defer b.Release()
	return len(b.Data)
}

func okBindNeutral(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	m := netstack.NewMessage()
	m.Bind(b)
	b.Release()
	m.Release()
}

func okCrossPackageOnSuccess(closed bool) error {
	m := netstack.NewMessage()
	if err := netstack.Send(m, closed); err != nil {
		m.Release()
		return err
	}
	return nil
}

func okSuppressed(p *buffer.Pool) {
	b := p.Get() //clonos:allow bufown — stashed for a later phase
	stash = stashAlias(b)
}

func stashAlias(b *buffer.Buffer) *buffer.Buffer { return b }
