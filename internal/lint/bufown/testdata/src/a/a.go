// Package a holds bufown golden cases: functions prefixed bad* carry
// diagnostics, ok* functions must stay silent.
package a

import (
	"errors"

	"clonos/internal/buffer"
	"clonos/internal/netstack"
)

var errOops = errors.New("oops")
var stash *buffer.Buffer

// --- positive cases -------------------------------------------------------

func badLeakOnError(p *buffer.Pool, fail bool) error {
	b := p.Get() // want `buffer armed here is not released on a path to return \(line \d+\)`
	if fail {
		return errOops
	}
	b.Release()
	return nil
}

func badDoubleRelease(p *buffer.Pool) {
	b := p.Take()
	b.Release()
	b.Release() // want `double release of buffer b \(already released at line \d+\)`
}

func badUseAfterRelease(p *buffer.Pool) int {
	b := p.Get()
	if b == nil {
		return 0
	}
	b.Release()
	return len(b.Data) // want `use of buffer b after release \(released at line \d+\)`
}

func badDiscard(p *buffer.Pool) {
	p.Get() // want `owned buffer returned here is discarded \(never released\)`
}

func badLoopLeak(p *buffer.Pool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get() // want `buffer armed here is not released by the end of the loop iteration`
		if b == nil {
			continue
		}
		b.Seq = uint64(i)
	}
}

func badOverwrite(p *buffer.Pool) {
	b := p.Get() // want `buffer armed here is overwritten while still owned \(line \d+\)`
	b = p.Get()
	b.Release()
}

func badMessageLeak(stop bool) {
	m := netstack.NewMessage() // want `message armed here is not released on a path to return \(line \d+\)`
	if stop {
		return
	}
	m.Release()
}

// badOnSuccessBody violates the on-success contract: the nil-error path
// must consume m, only error paths may leave it to the caller.
//
//clonos:owns-transfer on-success
func badOnSuccessBody(m *netstack.Message, closed bool) error { // want `message armed here is not released on a path to return \(line \d+\)`
	if closed {
		return errOops
	}
	return nil
}

func badUseAfterPut(p *buffer.Pool) int {
	b := p.Take()
	p.Put(b)
	return len(b.Data) // want `use of buffer b after release \(released at line \d+\)`
}

// --- negative cases -------------------------------------------------------

func okPoolReturn(p *buffer.Pool) {
	b := p.Take()
	b.Seq = 3
	p.Donate(b)
}

func okNilRefined(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	b.Seq = 1
	b.Release()
}

// sink takes ownership unconditionally.
//
//clonos:owns-transfer
func sink(b *buffer.Buffer) {
	b.Seq = 2
	b.Release()
}

func okHandoff(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	sink(b)
}

func okRetainBalance(p *buffer.Pool) {
	b := p.Take()
	b.Retain()
	b.Release()
	b.Release()
}

func okDeferRelease(p *buffer.Pool) int {
	b := p.Take()
	defer b.Release()
	return len(b.Data)
}

func okBindNeutral(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	m := netstack.NewMessage()
	m.Bind(b)
	b.Release()
	m.Release()
}

func okCrossPackageOnSuccess(closed bool) error {
	m := netstack.NewMessage()
	if err := netstack.Send(m, closed); err != nil {
		m.Release()
		return err
	}
	return nil
}

func okSuppressed(p *buffer.Pool, fail bool) error {
	b := p.Get() //clonos:allow bufown — teardown path audited by hand
	if fail {
		return errOops
	}
	b.Release()
	return nil
}

// --- inferred ownership (v2, no annotations below this line) --------------

// closeBuf releases on every path: callers transfer ownership here.
func closeBuf(b *buffer.Buffer) {
	b.Seq = 9
	b.Release()
}

func okInferredHandoff(p *buffer.Pool) {
	b := p.Get()
	if b == nil {
		return
	}
	closeBuf(b)
}

func badInferredDoubleRelease(p *buffer.Pool) {
	b := p.Take()
	closeBuf(b)
	b.Release() // want `double release of buffer b \(already released at line \d+\)`
}

// badSpillPath is the cross-function leak shape: released on one path,
// forgotten on the other.
func badSpillPath(b *buffer.Buffer, flush bool) { // want `buffer parameter b is released on some paths but still owned at end of function \(line \d+\)`
	if flush {
		b.Release()
		return
	}
	b.Seq = 4
}

// sendOrFail consumes m only when it returns nil: inferred on-success.
func sendOrFail(m *netstack.Message, closed bool) error {
	if closed {
		return errOops
	}
	m.Release()
	return nil
}

func okInferredOnSuccess(closed bool) error {
	m := netstack.NewMessage()
	if err := sendOrFail(m, closed); err != nil {
		m.Release()
		return err
	}
	return nil
}

// getReady returns a freshly armed buffer (or nil): inferred arming call.
func getReady(p *buffer.Pool) *buffer.Buffer {
	b := p.Get()
	if b == nil {
		return nil
	}
	b.Seq = 1
	return b
}

func badWrappedLeak(p *buffer.Pool, fail bool) error {
	b := getReady(p) // want `buffer armed here is not released on a path to return \(line \d+\)`
	if fail {
		return errOops
	}
	if b != nil {
		b.Release()
	}
	return nil
}

func badWrappedDiscard(p *buffer.Pool) {
	getReady(p) // want `owned buffer returned here is discarded \(never released\)`
}

func okWrappedRelease(p *buffer.Pool) {
	b := getReady(p)
	if b == nil {
		return
	}
	b.Release()
}

// stashAlias returns its argument: inferred escape, tracking stops at
// the call site and the stored alias is the stash's responsibility.
func stashAlias(b *buffer.Buffer) *buffer.Buffer { return b }

func okEscapeInferred(p *buffer.Pool) {
	b := p.Get()
	stash = stashAlias(b)
}

// badHelperDouble shows the in-body checks stay live for unannotated
// parameters even though leak classification belongs to inference.
func badHelperDouble(b *buffer.Buffer) {
	b.Release()
	b.Release() // want `double release of buffer b \(already released at line \d+\)`
}

// checksum only reads b, through a loop: inferred borrow, so the caller
// still owns the buffer and a missing release is still reported.
func checksum(b *buffer.Buffer) int {
	n := 0
	for _, x := range b.Data {
		n += int(x)
	}
	return n
}

func badBorrowedThenLeaked(p *buffer.Pool, fail bool) error {
	b := p.Take() // want `buffer armed here is not released on a path to return \(line \d+\)`
	_ = checksum(b)
	if fail {
		return errOops
	}
	b.Release()
	return nil
}
