// Stub of clonos/internal/netstack for bufown fixtures.
package netstack

import (
	"errors"

	"clonos/internal/buffer"
)

type Message struct {
	Data []byte
	buf  *buffer.Buffer
}

func NewMessage() *Message { return new(Message) }

func (m *Message) Release()              {}
func (m *Message) Bind(b *buffer.Buffer) { m.buf = b }
func (m *Message) Unalias()              {}

var sent []*Message
var errClosed = errors.New("closed")

// Send takes ownership of m when it returns nil.
//
//clonos:owns-transfer on-success
func Send(m *Message, closed bool) error {
	if closed {
		return errClosed
	}
	sent = append(sent, m)
	return nil
}
