// Stub of clonos/internal/buffer for bufown fixtures: same import path
// and ownership-relevant API surface, no behavior.
package buffer

type Buffer struct {
	Data []byte
	Seq  uint64
}

func (b *Buffer) Retain()           {}
func (b *Buffer) Release()          {}
func (b *Buffer) ReleaseTo(p *Pool) {}
func (b *Buffer) DonateTo(p *Pool)  {}
func (b *Buffer) Refs() int         { return 0 }

type Pool struct{}

func (p *Pool) Get() *Buffer     { return new(Buffer) }
func (p *Pool) TryGet() *Buffer  { return new(Buffer) }
func (p *Pool) Take() *Buffer    { return new(Buffer) }
func (p *Pool) TryTake() *Buffer { return new(Buffer) }
func (p *Pool) Put(b *Buffer)    {}
func (p *Pool) Donate(b *Buffer) {}
