package bufown_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "a")
}
