// Package bufown implements the refcounted-buffer ownership analyzer.
//
// Every *buffer.Buffer handed out by a pool (Get/Take/TryGet/TryTake) and
// every *netstack.Message from NewMessage carries exactly one reference
// owned by the receiving code. That reference must reach exactly one
// consuming call — Release, ReleaseTo, DonateTo — on every control-flow
// path, or be handed to another owner. The analyzer tracks those values
// intraprocedurally and reports:
//
//   - leaks: an owned value that reaches a function exit (or the end of a
//     loop iteration that armed it) without being consumed or handed off;
//   - double releases: a second consuming call on an already-released
//     value (the runtime panics only once the count goes negative, which
//     a concurrent holder can mask);
//   - use after release: any use of a value after its owning reference
//     was dropped.
//
// Ownership handoffs across function boundaries are declared with the
// `//clonos:owns-transfer` annotation on the callee's doc comment:
//
//	//clonos:owns-transfer            — the call always takes ownership of
//	                                    its Buffer/Message pointer
//	                                    parameters; the body must consume
//	                                    them on every path.
//	//clonos:owns-transfer on-success — ownership transfers only when the
//	                                    call returns a nil error (the
//	                                    Endpoint.Push contract); the body
//	                                    must consume them on every
//	                                    non-error path, and callers keep
//	                                    responsibility on the error path.
//
// An annotated function with a single Buffer/Message result is treated as
// an arming call at its call sites (it returns an owned reference).
//
// Unannotated functions get an inferred ownership summary: the analyzer
// runs a silent pass over every declaration, classifies each tracked
// parameter from what the body does with it on every exit path
// (consumed everywhere → the call transfers ownership; consumed on
// non-error paths only → on-success transfer; stored, captured or
// returned → escape, tracking stops; merely read → borrow, the caller
// still owns it), and records whether a single tracked result is always
// a freshly armed value (the call arms at its call sites). Summaries are
// exported as analysis facts, so helper handoffs resolve across package
// boundaries without per-call annotations. A parameter that the body
// releases on some paths but leaves owned at another non-error exit is
// itself reported: that split contract is exactly how cross-function
// leaks hide.
//
// Anything the analyzer cannot follow — storing into a field, slice or
// map, capturing in a closure, returning, passing to an annotated callee
// — ends tracking for that value ("escape"): the analysis is deliberately
// lenient so that every report is actionable. A report that is a true
// false positive can be suppressed with `//clonos:allow bufown` on the
// flagged line, but prefer restructuring or annotating the handoff.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"clonos/internal/lint/analysis"
)

// Analyzer is the bufown analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc: "track ownership of refcounted buffer.Buffer / netstack.Message values: " +
		"every armed reference must be consumed exactly once on every path",
	Run: run,
}

const (
	bufferPath  = "clonos/internal/buffer"
	netstkPath  = "clonos/internal/netstack"
	ownsMarker  = "clonos:owns-transfer"
	onSuccessMk = "clonos:owns-transfer on-success"
)

var armFuncs = map[string]bool{
	"(*" + bufferPath + ".Pool).Get":     true,
	"(*" + bufferPath + ".Pool).TryGet":  true,
	"(*" + bufferPath + ".Pool).Take":    true,
	"(*" + bufferPath + ".Pool).TryTake": true,
	netstkPath + ".NewMessage":           true,
}

var consumeFuncs = map[string]bool{
	"(*" + bufferPath + ".Buffer).Release":   true,
	"(*" + bufferPath + ".Buffer).ReleaseTo": true,
	"(*" + bufferPath + ".Buffer).DonateTo":  true,
	"(*" + netstkPath + ".Message).Release":  true,
}

const retainFunc = "(*" + bufferPath + ".Buffer).Retain"

// argConsumeFuncs consume their Buffer argument: the pool takes the
// caller's reference (dropping it to the GC if the pool is closed).
var argConsumeFuncs = map[string]bool{
	"(*" + bufferPath + ".Pool).Put":    true,
	"(*" + bufferPath + ".Pool).Donate": true,
}

// paramMode is the inferred ownership contract of one tracked parameter.
type paramMode uint8

const (
	// modeBorrow: the body only reads the value; the caller keeps
	// ownership and must still release it.
	modeBorrow paramMode = iota
	// modeConsume: the body consumes the value on every path; the call
	// transfers ownership (and a later release by the caller is a
	// double release).
	modeConsume
	// modeConsumeOnSuccess: consumed on every non-error path, left to
	// the caller on error paths (the Endpoint.Push shape).
	modeConsumeOnSuccess
	// modeEscape: the body stores, captures or returns the value;
	// ownership is no longer tractable, tracking stops at the call.
	modeEscape
)

// ownFact is the exported ownership summary of one function declaration:
// either declared by a //clonos:owns-transfer annotation, or inferred
// from the body.
type ownFact struct {
	ownsParams bool // annotated: tracked pointer params transfer in
	onSuccess  bool // ...only when the call returns a nil error
	ownsResult bool // single tracked result transfers out (arming call)
	inferred   bool // summary was inferred, not annotated
	// params holds the inferred per-parameter modes, indexed by the
	// signature parameter position; nil for annotated declarations.
	params []paramMode
}

// paramMode resolves the mode of argument i at a call site. Variadic
// tails and anything out of range fall back to borrow (the historical
// default for unknown callees).
func (f ownFact) paramMode(sig *types.Signature, i int) paramMode {
	if f.params == nil || sig == nil || i >= len(f.params) {
		return modeBorrow
	}
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		return modeBorrow
	}
	return f.params[i]
}

// trackedKind names the tracked type of a value, or "" if untracked.
func trackedKind(t types.Type) string {
	p, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	switch {
	case n.Obj().Pkg().Path() == bufferPath && n.Obj().Name() == "Buffer":
		return "buffer"
	case n.Obj().Pkg().Path() == netstkPath && n.Obj().Name() == "Message":
		return "message"
	}
	return ""
}

func run(pass *analysis.Pass) (any, error) {
	// Phase 1: export annotation facts for this package's declarations so
	// call sites (here and in later passes) resolve handoffs.
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.CommentHas(fd.Doc, ownsMarker) {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fact := ownFact{ownsParams: true, onSuccess: analysis.CommentHas(fd.Doc, onSuccessMk)}
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() == 1 && trackedKind(sig.Results().At(0).Type()) != "" {
				fact.ownsResult = true
			}
			pass.Facts[obj] = fact
		}
	}

	// Phase 2: infer ownership summaries for every unannotated
	// declaration, so call sites in this package and in importing
	// packages (facts flow dependency-first) resolve helper handoffs
	// without per-call annotations. Inference itself reports split
	// contracts: a parameter consumed on one path but left owned at
	// another non-error exit.
	inf := &inferrer{pass: pass, decls: map[types.Object]*ast.FuncDecl{}, inProgress: map[types.Object]bool{}}
	var order []types.Object
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				inf.decls[obj] = fd
				order = append(order, obj)
			}
		}
	}
	for _, obj := range order {
		inf.fact(obj)
	}

	// Phase 3: analyze every non-test function body. Annotated
	// parameters are seeded with the declared contract; unannotated
	// tracked parameters are seeded leak-exempt, which keeps the
	// double-release and use-after-release checks live inside helpers
	// without second-guessing the inferred exit classification.
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &funcAnalysis{pass: pass, reported: map[token.Pos]bool{}}
			var seed []seedParam
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				fact, _ := pass.Facts[obj].(ownFact)
				if sig, ok := obj.Type().(*types.Signature); ok {
					a.returnsError = sigReturnsError(sig)
				}
				leakExempt := true
				if fact.ownsParams {
					a.onSuccess = fact.onSuccess
					leakExempt = false
				}
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						po := pass.TypesInfo.Defs[name]
						if po != nil && trackedKind(po.Type()) != "" {
							seed = append(seed, seedParam{obj: po, pos: name.Pos(), leakExempt: leakExempt})
						}
					}
				}
			}
			a.analyze(fd.Body, seed)
		}
	}
	return nil, nil
}

func sigReturnsError(sig *types.Signature) bool {
	n := sig.Results().Len()
	if n == 0 {
		return false
	}
	last := sig.Results().At(n - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

type seedParam struct {
	obj        types.Object
	pos        token.Pos
	leakExempt bool
}

// varState is the abstract ownership state of one tracked variable.
type varState struct {
	kind       string // "buffer" or "message"
	count      int    // owned references
	released   bool
	releasedAt token.Pos
	armPos     token.Pos
	param      bool // seeded from a function parameter
	// leakExempt parameters (unannotated declarations) are tracked for
	// double-release and use-after-release only; whether they must be
	// consumed is the inference phase's judgement, not checkExit's.
	leakExempt bool
}

// state maps tracked objects to their ownership state; nil means the
// current path is dead (after return/panic/break).
type state map[types.Object]*varState

func (s state) clone() state {
	if s == nil {
		return nil
	}
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// merge joins two branch states. Tracked variables whose ownership
// differs between branches (or that exist on one side only) stop being
// tracked: leaks inside a branch are caught at that branch's own exits,
// and poisoning the join avoids false positives afterwards.
func merge(a, b state) state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(state, len(a))
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		if va.count == vb.count && va.released == vb.released {
			c := *va
			out[k] = &c
		}
		// differing ownership: drop (poison) the variable
	}
	return out
}

type loopFrame struct {
	// armedBefore snapshots which objects were tracked at loop entry, so
	// exits inside the body can leak-check only what the body armed.
	armedBefore map[types.Object]bool
	breakStates []state
	isLoop      bool // false for switch/select frames (break only)
}

type funcAnalysis struct {
	pass         *analysis.Pass
	onSuccess    bool
	returnsError bool
	reported     map[token.Pos]bool // leak dedupe by arm position
	frames       []*loopFrame
	bailed       bool
	// silent suppresses all reports (set during inference runs).
	silent bool
	// factOf, when non-nil, resolves callee facts on demand (used during
	// inference so same-package callees declared later still resolve).
	factOf func(types.Object) ownFact
	// rec collects exit snapshots and return classifications during an
	// inference run; nil during the checking phase and in closures.
	rec   *inferRec
	seeds []seedParam
}

// fact resolves the ownership summary of a callee.
func (a *funcAnalysis) fact(obj types.Object) ownFact {
	if a.factOf != nil {
		return a.factOf(obj)
	}
	f, _ := a.pass.Facts[obj].(ownFact)
	return f
}

func (a *funcAnalysis) analyze(body *ast.BlockStmt, seed []seedParam) {
	// goto makes the structural walk unsound; bail out quietly.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.BranchStmt); ok {
			if n.(*ast.BranchStmt).Tok == token.GOTO {
				a.bailed = true
			}
		}
		return true
	})
	if a.bailed {
		return
	}
	a.seeds = seed
	st := state{}
	for _, sp := range seed {
		st[sp.obj] = &varState{kind: trackedKind(sp.obj.Type()), count: 1, armPos: sp.pos, param: true, leakExempt: sp.leakExempt}
	}
	out := a.block(body, st)
	a.checkExit(out, body.End(), "end of function", false)
}

func (a *funcAnalysis) report(pos token.Pos, format string, args ...any) {
	if a.silent || a.pass.Allowed(pos) {
		return
	}
	a.pass.Reportf(pos, format, args...)
}

// checkExit reports owned values that reach an exit. errorExit marks a
// `return <non-nil error>` path, on which on-success parameters remain
// the caller's responsibility.
func (a *funcAnalysis) checkExit(st state, pos token.Pos, what string, errorExit bool) {
	if st == nil {
		return
	}
	if a.rec != nil {
		a.rec.snapshotExit(a.seeds, st, pos, what, errorExit)
	}
	for _, v := range st {
		if v.count <= 0 || v.released || v.leakExempt {
			continue
		}
		if v.param && a.onSuccess && errorExit {
			continue
		}
		if a.reported[v.armPos] {
			continue
		}
		a.reported[v.armPos] = true
		line := a.pass.Fset.Position(pos).Line
		a.report(v.armPos, "%s armed here is not released on a path to %s (line %d)", v.kind, what, line)
	}
}

func (a *funcAnalysis) block(b *ast.BlockStmt, st state) state {
	for _, s := range b.List {
		st = a.stmt(s, st)
	}
	return st
}

func (a *funcAnalysis) stmt(s ast.Stmt, st state) state {
	if st == nil {
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.block(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						}
						st = a.assignOne(name, rhs, st)
					}
				}
			}
		}
		return st
	case *ast.AssignStmt:
		return a.assign(s, st)
	case *ast.ExprStmt:
		return a.exprStmt(s.X, st)
	case *ast.IncDecStmt:
		a.useExpr(s.X, st)
		return st
	case *ast.SendStmt:
		a.useExpr(s.Chan, st)
		a.escapeIdent(s.Value, st)
		a.useExpr(s.Value, st)
		return st
	case *ast.DeferStmt:
		return a.deferOrGo(s.Call, st)
	case *ast.GoStmt:
		return a.deferOrGo(s.Call, st)
	case *ast.ReturnStmt:
		if a.rec != nil {
			a.rec.recordReturn(a, s, st)
		}
		for _, r := range s.Results {
			a.escapeIdent(r, st)
			st = a.evalExpr(r, st)
		}
		a.checkExit(st, s.Pos(), "return", a.isErrorReturn(s))
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			st = a.stmt(s.Init, st)
		}
		st = a.evalExpr(s.Cond, st)
		thenSt, elseSt := a.refine(s.Cond, st)
		outThen := a.stmt(s.Body, thenSt)
		outElse := elseSt
		if s.Else != nil {
			outElse = a.stmt(s.Else, elseSt)
		}
		return merge(outThen, outElse)
	case *ast.ForStmt:
		if s.Init != nil {
			st = a.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = a.evalExpr(s.Cond, st)
		}
		return a.loop(st, func(st state) state {
			out := a.block(s.Body, st)
			if s.Post != nil && out != nil {
				out = a.stmt(s.Post, out)
			}
			return out
		}, s.Cond == nil)
	case *ast.RangeStmt:
		st = a.evalExpr(s.X, st)
		return a.loop(st, func(st state) state {
			return a.block(s.Body, st)
		}, false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = a.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = a.evalExpr(s.Tag, st)
		}
		return a.caseBranches(s.Body, st, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = a.stmt(s.Init, st)
		}
		return a.caseBranches(s.Body, st, hasDefault(s.Body))
	case *ast.SelectStmt:
		return a.caseBranches(s.Body, st, true)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if fr := a.innermostBreakable(); fr != nil {
				fr.breakStates = append(fr.breakStates, st)
			}
			return nil
		case token.CONTINUE:
			if fr := a.innermostLoop(); fr != nil {
				a.checkIterationLeaks(st, fr, s.Pos())
			}
			return nil
		}
		return st
	default:
		return st
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// caseBranches analyzes switch/select bodies: every clause branches from
// the entry state; exhaustive bodies (with a default) merge only clause
// exits, others also merge the fall-past state.
func (a *funcAnalysis) caseBranches(body *ast.BlockStmt, st state, exhaustive bool) state {
	fr := &loopFrame{isLoop: false}
	a.frames = append(a.frames, fr)
	var out state
	if !exhaustive {
		out = st.clone()
	}
	for _, c := range body.List {
		branch := st.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				branch = a.evalExpr(e, branch)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				branch = a.stmt(c.Comm, branch)
			}
			stmts = c.Body
		}
		for _, s := range stmts {
			branch = a.stmt(s, branch)
		}
		out = merge(out, branch)
	}
	a.frames = a.frames[:len(a.frames)-1]
	for _, bs := range fr.breakStates {
		out = merge(out, bs)
	}
	return out
}

// loop analyzes a loop body once. Values owned at loop entry keep their
// state through the analysis; afterwards, any entry value whose ownership
// the body disturbed (released, re-armed, escaped) is poisoned at the
// loop exit, because the iteration count is unknown. Undisturbed values
// stay tracked, so a helper that merely loops over b.Data does not hide
// a later leak of b. Values armed inside the body are leak-checked at
// every iteration end. infinite marks `for {}` loops, whose only normal
// exits are breaks.
func (a *funcAnalysis) loop(st state, body func(state) state, infinite bool) state {
	if st == nil {
		return nil
	}
	entry := st.clone()
	fr := &loopFrame{isLoop: true, armedBefore: map[types.Object]bool{}}
	for obj := range entry {
		fr.armedBefore[obj] = true
	}
	a.frames = append(a.frames, fr)
	out := body(entry.clone())
	a.frames = a.frames[:len(a.frames)-1]
	if out != nil {
		a.checkIterationLeaks(out, fr, token.NoPos)
	}
	disturbed := map[types.Object]bool{}
	mark := func(iter state) {
		if iter == nil {
			return
		}
		for obj, ve := range entry {
			vi, ok := iter[obj]
			if !ok || vi.count != ve.count || vi.released != ve.released {
				disturbed[obj] = true
			}
		}
	}
	mark(out)
	var exit state
	if !infinite {
		exit = entry.clone()
	}
	for _, bs := range fr.breakStates {
		// body-armed vars still owned at a break leak with the iteration
		mark(bs)
		a.checkIterationLeaks(bs, fr, token.NoPos)
		exit = merge(exit, pruneBodyVars(bs, fr))
	}
	if infinite && exit == nil && len(fr.breakStates) == 0 {
		return nil // for{} with no break: unreachable after
	}
	if exit == nil {
		exit = entry.clone()
	}
	for obj := range disturbed {
		if v, ok := exit[obj]; ok {
			v.count = 0
			v.released = false
		}
	}
	return exit
}

func pruneBodyVars(st state, fr *loopFrame) state {
	if st == nil {
		return nil
	}
	out := state{}
	for obj, v := range st {
		if fr.armedBefore[obj] {
			c := *v
			out[obj] = &c
		}
	}
	return out
}

func (a *funcAnalysis) checkIterationLeaks(st state, fr *loopFrame, pos token.Pos) {
	if st == nil {
		return
	}
	for obj, v := range st {
		if fr.armedBefore[obj] || v.count <= 0 || v.released || a.reported[v.armPos] {
			continue
		}
		a.reported[v.armPos] = true
		a.report(v.armPos, "%s armed here is not released by the end of the loop iteration", v.kind)
	}
	_ = pos
}

func (a *funcAnalysis) innermostBreakable() *loopFrame {
	if len(a.frames) == 0 {
		return nil
	}
	return a.frames[len(a.frames)-1]
}

func (a *funcAnalysis) innermostLoop() *loopFrame {
	for i := len(a.frames) - 1; i >= 0; i-- {
		if a.frames[i].isLoop {
			return a.frames[i]
		}
	}
	return nil
}

// isErrorReturn reports whether a return statement exits on the error
// path: the function's last result is an error and the returned value is
// not the nil literal. Bare returns are treated as error exits
// (lenient).
func (a *funcAnalysis) isErrorReturn(s *ast.ReturnStmt) bool {
	if !a.returnsError {
		return false
	}
	if len(s.Results) == 0 {
		return true
	}
	last := s.Results[len(s.Results)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

// refine narrows branch states on `x == nil` / `x != nil` conditions so
// the nil branch stops tracking x (pools return nil when closed).
func (a *funcAnalysis) refine(cond ast.Expr, st state) (thenSt, elseSt state) {
	thenSt, elseSt = st.clone(), st.clone()
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var id *ast.Ident
	if x, okx := be.X.(*ast.Ident); okx && isNil(be.Y) {
		id = x
	} else if y, oky := be.Y.(*ast.Ident); oky && isNil(be.X) {
		id = y
	}
	if id == nil {
		return
	}
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	nilSide := thenSt
	if be.Op == token.NEQ {
		nilSide = elseSt
	} else if be.Op != token.EQL {
		return
	}
	delete(nilSide, obj)
	return
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// assign handles assignment statements.
func (a *funcAnalysis) assign(s *ast.AssignStmt, st state) state {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		return a.assignOne(s.Lhs[0], s.Rhs[0], st)
	}
	// Tuple assignment: evaluate RHS (uses/escapes), untrack LHS idents.
	for _, r := range s.Rhs {
		a.escapeIdent(r, st)
		st = a.evalExpr(r, st)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				delete(st, obj)
			}
		} else {
			a.useExpr(l, st)
		}
	}
	return st
}

func (a *funcAnalysis) assignOne(lhs, rhs ast.Expr, st state) state {
	if rhs == nil {
		return st
	}
	armed, kind := a.armedCall(rhs, st)
	if armed {
		st = a.evalCallArgs(rhs.(*ast.CallExpr), st)
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			obj := a.objOf(id)
			if obj != nil {
				if old, ok := st[obj]; ok && old.count > 0 && !old.released && !old.leakExempt && !a.reported[old.armPos] {
					a.reported[old.armPos] = true
					a.report(old.armPos, "%s armed here is overwritten while still owned (line %d)",
						old.kind, a.pass.Fset.Position(rhs.Pos()).Line)
				}
				st[obj] = &varState{kind: kind, count: 1, armPos: rhs.Pos()}
				return st
			}
		}
		// armed value stored somewhere we do not track: treat as escaped
		a.useExpr(lhs, st)
		return st
	}
	// RHS is not arming: aliasing a tracked ident (x = y) or storing it
	// into a structure both end tracking.
	a.escapeIdent(rhs, st)
	st = a.evalExpr(rhs, st)
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := a.objOf(id); obj != nil {
			if old, ok := st[obj]; ok && old.count > 0 && !old.released && !old.leakExempt && !a.reported[old.armPos] {
				a.reported[old.armPos] = true
				a.report(old.armPos, "%s armed here is overwritten while still owned (line %d)",
					old.kind, a.pass.Fset.Position(rhs.Pos()).Line)
			}
			delete(st, obj)
		}
	} else {
		a.useExpr(lhs, st)
	}
	return st
}

// objOf resolves an identifier to its object (definition or use).
func (a *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if o := a.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return a.pass.TypesInfo.Uses[id]
}

// armedCall reports whether e is a call returning a freshly owned value.
func (a *funcAnalysis) armedCall(e ast.Expr, st state) (bool, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, ""
	}
	fn := a.callee(call)
	if fn == nil {
		return false, ""
	}
	full := fn.FullName()
	if armFuncs[full] {
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 1 {
			return true, trackedKind(sig.Results().At(0).Type())
		}
		return false, ""
	}
	if fact := a.fact(types.Object(fn)); fact.ownsResult {
		sig := fn.Type().(*types.Signature)
		return true, trackedKind(sig.Results().At(0).Type())
	}
	return false, ""
}

func (a *funcAnalysis) callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := a.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// exprStmt handles a statement-level expression: a discarded arming call
// leaks immediately; otherwise evaluate for uses and ownership effects.
func (a *funcAnalysis) exprStmt(e ast.Expr, st state) state {
	if armed, kind := a.armedCall(e, st); armed {
		call := ast.Unparen(e).(*ast.CallExpr)
		st = a.evalCallArgs(call, st)
		a.report(e.Pos(), "owned %s returned here is discarded (never released)", kind)
		return st
	}
	return a.evalExpr(e, st)
}

// deferOrGo handles deferred and spawned calls: a deferred consume of a
// tracked value settles its ownership at exit (escape); anything else the
// closure or call touches escapes.
func (a *funcAnalysis) deferOrGo(call *ast.CallExpr, st state) state {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				if v, ok := st[obj]; ok {
					if fn := a.callee(call); fn != nil && consumeFuncs[fn.FullName()] {
						a.useCheck(id, v)
						delete(st, obj) // consumed at exit
						for _, arg := range call.Args {
							st = a.evalExpr(arg, st)
						}
						return st
					}
				}
			}
		}
	}
	// Conservative: every tracked value mentioned escapes.
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
	return st
}

// evalExpr walks an expression, checking uses and applying ownership
// effects of calls; returns the updated state.
func (a *funcAnalysis) evalExpr(e ast.Expr, st state) state {
	if e == nil || st == nil {
		return st
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		return a.evalCall(e, st)
	case *ast.ParenExpr:
		return a.evalExpr(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			a.escapeIdent(e.X, st)
		}
		return a.evalExpr(e.X, st)
	case *ast.BinaryExpr:
		st = a.evalExpr(e.X, st)
		return a.evalExpr(e.Y, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			a.escapeIdent(el, st)
			st = a.evalExpr(el, st)
		}
		return st
	case *ast.FuncLit:
		// Captured tracked values escape; the literal's own body is
		// analyzed independently.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
					delete(st, obj)
				}
			}
			return true
		})
		sub := &funcAnalysis{pass: a.pass, reported: map[token.Pos]bool{}, silent: a.silent, factOf: a.factOf}
		sub.analyze(e.Body, nil)
		return st
	case *ast.Ident:
		a.useExpr(e, st)
		return st
	case *ast.SelectorExpr:
		a.useExpr(e.X, st)
		return st
	case *ast.IndexExpr:
		st = a.evalExpr(e.X, st)
		return a.evalExpr(e.Index, st)
	case *ast.SliceExpr:
		st = a.evalExpr(e.X, st)
		st = a.evalExpr(e.Low, st)
		st = a.evalExpr(e.High, st)
		return a.evalExpr(e.Max, st)
	case *ast.StarExpr:
		return a.evalExpr(e.X, st)
	case *ast.TypeAssertExpr:
		return a.evalExpr(e.X, st)
	default:
		return st
	}
}

// evalCall applies a call's ownership semantics: consume/retain methods
// on tracked receivers, escapes into annotated callees, plain uses
// otherwise.
func (a *funcAnalysis) evalCall(call *ast.CallExpr, st state) state {
	// Builtins: append stores its arguments (escape); the rest are uses.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := a.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			for _, arg := range call.Args {
				if b.Name() == "append" {
					a.useExpr(arg, st)
					a.escapeIdent(arg, st)
				} else {
					st = a.evalExpr(arg, st)
				}
			}
			return st
		}
	}
	fn := a.callee(call)
	// Method call on a tracked receiver ident.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn != nil {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				if v, ok := st[obj]; ok {
					full := fn.FullName()
					switch {
					case consumeFuncs[full]:
						a.consume(id, v, call)
						return a.evalCallArgs(call, st)
					case full == retainFunc:
						a.useCheck(id, v)
						v.count++
						return a.evalCallArgs(call, st)
					default:
						a.useCheck(id, v)
					}
				}
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		st = a.evalExpr(sel.X, st)
	}
	// Arguments: pool hand-ins consume, annotated callees take ownership,
	// and inferred summaries decide the rest (consume, conditional
	// transfer, escape, or plain borrow).
	var fact ownFact
	var sig *types.Signature
	consumeArgs := false
	if fn != nil {
		fact = a.fact(types.Object(fn))
		consumeArgs = argConsumeFuncs[fn.FullName()]
		sig, _ = fn.Type().(*types.Signature)
	}
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil {
				if v, tracked := st[obj]; tracked {
					switch {
					case consumeArgs && trackedKind(obj.Type()) != "":
						a.consume(id, v, call)
					case fact.ownsParams && trackedKind(obj.Type()) != "":
						a.useCheck(id, v)
						delete(st, obj) // ownership transferred (or conditionally; stop tracking)
					default:
						switch fact.paramMode(sig, i) {
						case modeConsume:
							a.consume(id, v, call)
						case modeConsumeOnSuccess, modeEscape:
							a.useCheck(id, v)
							delete(st, obj)
						default:
							a.useCheck(id, v)
						}
					}
					continue
				}
			}
		}
		st = a.evalExpr(arg, st)
	}
	return st
}

func (a *funcAnalysis) evalCallArgs(call *ast.CallExpr, st state) state {
	for _, arg := range call.Args {
		st = a.evalExpr(arg, st)
	}
	return st
}

func (a *funcAnalysis) consume(id *ast.Ident, v *varState, call *ast.CallExpr) {
	if v.released {
		relLine := a.pass.Fset.Position(v.releasedAt).Line
		a.report(call.Pos(), "double release of %s %s (already released at line %d)", v.kind, id.Name, relLine)
		return
	}
	v.count--
	if v.count <= 0 {
		v.released = true
		v.releasedAt = call.Pos()
	}
}

// useCheck flags any use of a released value.
func (a *funcAnalysis) useCheck(id *ast.Ident, v *varState) {
	if v.released {
		relLine := a.pass.Fset.Position(v.releasedAt).Line
		a.report(id.Pos(), "use of %s %s after release (released at line %d)", v.kind, id.Name, relLine)
		// throttle the cascade: report each released value once per path
		v.released = false
		v.count = 0
	}
}

// useExpr checks an expression that merely mentions tracked values.
func (a *funcAnalysis) useExpr(e ast.Expr, st state) {
	if st == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			if v, tracked := st[obj]; tracked {
				a.useCheck(id, v)
			}
		}
		return true
	})
}

// escapeIdent ends tracking for a directly mentioned tracked ident (it is
// being stored, sent, returned or aliased).
func (a *funcAnalysis) escapeIdent(e ast.Expr, st state) {
	if st == nil {
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := a.objOf(id); obj != nil {
			delete(st, obj)
		}
	}
}

// --- ownership inference ---------------------------------------------------

// paramStatus is the state of one seeded parameter at one function exit.
type paramStatus uint8

const (
	psUnknown  paramStatus = iota // poisoned: balance indeterminate
	psOwned                       // still holds the caller's reference
	psConsumed                    // released on this path
	psEscaped                     // stored/captured/returned: untracked
)

// exitSnap records the parameter states at one reachable function exit.
type exitSnap struct {
	errorExit bool
	pos       token.Pos
	what      string
	status    map[types.Object]paramStatus
}

// inferRec collects the observations of one silent inference run.
type inferRec struct {
	wantResult bool // the signature has a single tracked result
	exits      []exitSnap
	retOwned   int // returns of a freshly owned value
	retOther   int // returns of anything else (param, alias, unknown)
}

func (r *inferRec) snapshotExit(seeds []seedParam, st state, pos token.Pos, what string, errorExit bool) {
	snap := exitSnap{errorExit: errorExit, pos: pos, what: what, status: map[types.Object]paramStatus{}}
	for _, sp := range seeds {
		v, ok := st[sp.obj]
		switch {
		case !ok:
			snap.status[sp.obj] = psEscaped
		case v.released:
			snap.status[sp.obj] = psConsumed
		case v.count > 0:
			snap.status[sp.obj] = psOwned
		default:
			snap.status[sp.obj] = psUnknown
		}
	}
	r.exits = append(r.exits, snap)
}

// recordReturn classifies the returned value for ownsResult inference.
// Only single-expression returns of the tracked result type can arm the
// call site; nil returns are neutral.
func (r *inferRec) recordReturn(a *funcAnalysis, s *ast.ReturnStmt, st state) {
	if !r.wantResult {
		return
	}
	if len(s.Results) != 1 {
		r.retOther++ // bare return with a named result: not inferable
		return
	}
	e := ast.Unparen(s.Results[0])
	if isNil(e) {
		return
	}
	if armed, _ := a.armedCall(e, st); armed {
		r.retOwned++
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := a.objOf(id); obj != nil {
			if v, ok := st[obj]; ok && !v.param && v.count > 0 && !v.released {
				r.retOwned++
				return
			}
		}
	}
	r.retOther++
}

// inferrer computes ownership summaries for unannotated declarations on
// demand, memoizing them as facts. Recursion collapses to the zero fact
// (borrow semantics), which is the historical call-site default.
type inferrer struct {
	pass       *analysis.Pass
	decls      map[types.Object]*ast.FuncDecl
	inProgress map[types.Object]bool
}

func (inf *inferrer) fact(obj types.Object) ownFact {
	if f, ok := inf.pass.Facts[obj].(ownFact); ok {
		return f
	}
	fd := inf.decls[obj]
	if fd == nil || fd.Body == nil || inf.inProgress[obj] {
		return ownFact{}
	}
	inf.inProgress[obj] = true
	f := inf.infer(obj, fd)
	delete(inf.inProgress, obj)
	inf.pass.Facts[obj] = f
	return f
}

func (inf *inferrer) infer(obj types.Object, fd *ast.FuncDecl) ownFact {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return ownFact{}
	}
	var seeds []seedParam
	idx := map[types.Object]int{}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if po := inf.pass.TypesInfo.Defs[name]; po != nil && trackedKind(po.Type()) != "" {
				seeds = append(seeds, seedParam{obj: po, pos: name.Pos()})
				idx[po] = i
			}
			i++
		}
	}
	wantResult := sig.Results().Len() == 1 && trackedKind(sig.Results().At(0).Type()) != ""
	if len(seeds) == 0 && !wantResult {
		return ownFact{}
	}
	rec := &inferRec{wantResult: wantResult}
	a := &funcAnalysis{
		pass:         inf.pass,
		silent:       true,
		rec:          rec,
		returnsError: sigReturnsError(sig),
		reported:     map[token.Pos]bool{},
		factOf:       inf.fact,
	}
	a.analyze(fd.Body, seeds)
	if a.bailed {
		return ownFact{inferred: true} // goto: nothing inferable
	}
	fact := ownFact{inferred: true}
	if len(seeds) > 0 {
		fact.params = make([]paramMode, sig.Params().Len())
		for _, sp := range seeds {
			mode, leak := classifyParam(rec, sp.obj)
			fact.params[idx[sp.obj]] = mode
			if leak != nil && !inf.pass.Allowed(sp.pos) {
				inf.pass.Reportf(sp.pos,
					"%s parameter %s is released on some paths but still owned at %s (line %d); "+
						"release it on every path or declare the contract with //clonos:owns-transfer",
					trackedKind(sp.obj.Type()), sp.obj.Name(), leak.what,
					inf.pass.Fset.Position(leak.pos).Line)
			}
		}
	}
	if wantResult && rec.retOwned > 0 && rec.retOther == 0 {
		fact.ownsResult = true
	}
	return fact
}

// classifyParam folds the exit snapshots of one parameter into a call
// contract. A parameter consumed on one non-error path but left owned at
// another non-error exit is the cross-function leak shape; the offending
// exit is returned so the inferrer can report it.
func classifyParam(rec *inferRec, obj types.Object) (paramMode, *exitSnap) {
	if len(rec.exits) == 0 {
		return modeEscape, nil // no reachable exit (for{} without break)
	}
	var consumedNonError, consumedError, fuzzy int
	var ownedNonError *exitSnap
	ownedError := false
	for i := range rec.exits {
		ex := &rec.exits[i]
		switch ex.status[obj] {
		case psConsumed:
			if ex.errorExit {
				consumedError++
			} else {
				consumedNonError++
			}
		case psOwned:
			if ex.errorExit {
				ownedError = true
			} else if ownedNonError == nil {
				ownedNonError = ex
			}
		default:
			fuzzy++
		}
	}
	if consumedNonError == 0 && consumedError == 0 {
		if fuzzy > 0 {
			return modeEscape, nil
		}
		return modeBorrow, nil // owned at every exit: read-only
	}
	if fuzzy > 0 {
		return modeEscape, nil
	}
	if consumedNonError > 0 {
		if ownedNonError != nil {
			return modeConsume, ownedNonError // split contract: report
		}
		if ownedError {
			return modeConsumeOnSuccess, nil
		}
		return modeConsume, nil
	}
	// Consumed only on error exits (drop-on-failure): the caller keeps
	// ownership on success but not on error — inexpressible, stop
	// tracking at call sites.
	return modeEscape, nil
}
