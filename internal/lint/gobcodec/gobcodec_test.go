package gobcodec_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/gobcodec"
)

func TestGobCodec(t *testing.T) {
	analysistest.Run(t, "testdata", gobcodec.Analyzer, "g", "clonos/internal/codec")
}
