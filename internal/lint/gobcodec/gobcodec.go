// Package gobcodec keeps the reflective gob codec from leaking back onto
// hot paths. The typed codec tier made nil-codec edges auto-select
// hand-written encoders (~20x+ cheaper than gob on struct payloads), so
// the only legitimate ways to reach gob are the registry's own fallback
// and the sanctioned codec.GobFallback() accessor (benchmark baselines,
// legacy decode paths). A bare codec.GobCodec{} literal anywhere else is
// almost always an accident that silently reintroduces the reflection
// tax — on an edge it also defeats the registered typed codecs entirely.
//
// The analyzer flags codec.GobCodec composite literals and new(GobCodec)
// in non-test files outside clonos/internal/codec. Suppress a reviewed
// exception with `//clonos:allow gobcodec` on the flagged line.
package gobcodec

import (
	"go/ast"
	"go/types"

	"clonos/internal/lint/analysis"
)

// Analyzer is the gobcodec analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "gobcodec",
	Doc: "no bare codec.GobCodec{} construction outside internal/codec " +
		"(use registered typed codecs, the nil-codec auto tier, or codec.GobFallback())",
	Run: run,
}

// codecPkg is the package allowed to construct its own fallback.
const codecPkg = "clonos/internal/codec"

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == codecPkg {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			// Tests may construct the fallback directly (differential
			// fixtures, budget baselines).
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			pos := n.Pos()
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isGobCodecType(pass, n.Type) {
					return true
				}
			case *ast.CallExpr:
				fn, ok := n.Fun.(*ast.Ident)
				if !ok || fn.Name != "new" || len(n.Args) != 1 || !isGobCodecType(pass, n.Args[0]) {
					return true
				}
			default:
				return true
			}
			if pass.Allowed(pos) {
				return true
			}
			pass.Reportf(pos,
				"bare codec.GobCodec construction reintroduces the reflection tax: register a typed codec, leave the edge codec nil (auto tier), or use codec.GobFallback()")
			return true
		})
	}
	return nil, nil
}

// isGobCodecType reports whether the expression names the
// internal/codec GobCodec type.
func isGobCodecType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "GobCodec" && obj.Pkg() != nil && obj.Pkg().Path() == codecPkg
}
