// Stub of internal/codec for gobcodec fixtures, under its real import
// path so the analyzer's type matching works.
package codec

// Codec is the payload codec interface.
type Codec interface {
	EncodeAppend(dst []byte, v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// GobCodec is the reflective fallback codec.
type GobCodec struct{}

// EncodeAppend implements Codec.
func (GobCodec) EncodeAppend(dst []byte, v any) ([]byte, error) { return dst, nil }

// Decode implements Codec.
func (GobCodec) Decode(b []byte) (any, error) { return nil, nil }

// GobFallback returns the sanctioned fallback instance; constructing one
// inside the declaring package is allowed.
func GobFallback() Codec { return GobCodec{} }
