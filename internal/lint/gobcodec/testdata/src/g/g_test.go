package g

import "clonos/internal/codec"

// Test files may construct the fallback directly (differential and
// budget baselines) — never flagged.
func testBaseline() codec.Codec { return codec.GobCodec{} }
