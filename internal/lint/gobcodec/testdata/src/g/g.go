// Package g exercises the gobcodec analyzer outside internal/codec.
package g

import "clonos/internal/codec"

// BadEdge hardwires the reflective codec on an edge.
func BadEdge() codec.Codec {
	return codec.GobCodec{} // want `bare codec\.GobCodec construction reintroduces the reflection tax`
}

// BadPointer takes the address of a fresh literal.
func BadPointer() codec.Codec {
	return &codec.GobCodec{} // want `bare codec\.GobCodec construction reintroduces the reflection tax`
}

// BadNew allocates one with new.
func BadNew() codec.Codec {
	return new(codec.GobCodec) // want `bare codec\.GobCodec construction reintroduces the reflection tax`
}

// OkFallback goes through the sanctioned accessor.
func OkFallback() codec.Codec { return codec.GobFallback() }

// OkNil leaves codec selection to the auto tier.
func OkNil() codec.Codec { return nil }

// OkAllowed is a reviewed exception.
func OkAllowed() codec.Codec {
	return codec.GobCodec{} //clonos:allow gobcodec — legacy decode baseline
}

// BadVar hardwires the fallback at package scope.
var BadVar codec.Codec = codec.GobCodec{} // want `bare codec\.GobCodec construction reintroduces the reflection tax`

// BadElement hides the literal inside a composite element.
func BadElement() []codec.Codec {
	return []codec.Codec{codec.GobCodec{}} // want `bare codec\.GobCodec construction reintroduces the reflection tax`
}

// BadField hides it in a struct field.
type edge struct{ c codec.Codec }

func BadField() edge {
	return edge{c: codec.GobCodec{}} // want `bare codec\.GobCodec construction reintroduces the reflection tax`
}
