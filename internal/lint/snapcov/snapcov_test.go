package snapcov_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/snapcov"
)

func TestSnapcov(t *testing.T) {
	analysistest.Run(t, "testdata", snapcov.Analyzer,
		"a", "pr1", "pr9", "clonos/internal/operator", "clonos/internal/kafkasim")
}
