// Package snapcov verifies snapshot completeness: every mutable piece of
// task/operator/source state must round-trip through the checkpoint, or be
// explicitly declared safe to lose. The two costliest recovery bugs in
// this repo's history — the watermark-merge state missing from
// TaskSnapshot (PR 1) and the mid-batch SourceBacklog loss (PR 9) — were
// both a mutable main-thread field the snapshot/restore pair forgot; this
// analyzer turns that bug shape into a compile-time error.
//
// Coverage is declared with a small annotation vocabulary:
//
//   - `//clonos:state snapshot=<method> restore=<method>` on a struct
//     declares its persistence pair. Every checked field must be
//     referenced in the snapshot method (transitively through
//     same-package helpers) and written in the restore method.
//   - `//clonos:ephemeral <reason>` on a field exempts it: the state is
//     re-derived after restore (replay cursors, alignment scratch). The
//     reason is mandatory.
//   - `//clonos:external <reason>` on a struct exempts it wholesale: the
//     state is durable outside the recovery domain (the simulated Kafka
//     cluster). The reason is mandatory.
//   - a `codec.RegisterType(T{}, tCodec{})` call declares that T's fields
//     are persisted by tCodec; every field of T must be referenced in
//     tCodec.EncodeAppend and in tCodec.Decode.
//
// Checked fields are seeded two ways: every `//clonos:mainthread` field
// anywhere in the module (the task-goroutine state that snapshots must
// capture), and — in the state-bearing engine packages internal/operator,
// internal/services, and internal/kafkasim — every field a method of the
// struct mutates.
package snapcov

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clonos/internal/lint/analysis"
)

// Analyzer is the snapcov analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "snapcov",
	Doc: "every mutable task/operator state field round-trips through its " +
		"snapshot/restore pair or codec, or is declared //clonos:ephemeral <reason>",
	Run: run,
}

const (
	markerState      = "clonos:state"
	markerEphemeral  = "clonos:ephemeral"
	markerExternal   = "clonos:external"
	markerMainthread = "clonos:mainthread"
)

// seedPkgs are the engine packages whose method-mutated struct fields are
// checked even without //clonos:mainthread markers: operator accumulators,
// the causal-services registry, and the simulated Kafka cluster.
var seedPkgs = map[string]bool{
	"clonos/internal/operator": true,
	"clonos/internal/services": true,
	"clonos/internal/kafkasim": true,
}

// registerTypeFunc is the codec-registry entry point whose call sites
// declare a (state type, codec) persistence pair.
const registerTypeFunc = "clonos/internal/codec.RegisterType"

type fieldInfo struct {
	name       *ast.Ident
	obj        types.Object
	mainthread bool
	ephemeral  bool
	ephReason  string
}

type stateAnn struct {
	snapshot, restore string
	bad               string // non-empty: parse error description
}

type structInfo struct {
	ts        *ast.TypeSpec
	obj       types.Object // the type name object
	fields    []*fieldInfo
	state     *stateAnn
	external  bool
	extReason string
	mutated   map[types.Object]bool // fields assigned through a receiver
}

func run(pass *analysis.Pass) (any, error) {
	seed := seedPkgs[pass.Pkg.Path()]

	structs := map[types.Object]*structInfo{} // type name object -> info
	var order []*structInfo
	funcIndex := map[types.Object]*ast.FuncDecl{}
	methods := map[types.Object]map[string]*ast.FuncDecl{} // type -> name -> decl

	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					si := collectStruct(pass, d, ts, st)
					structs[si.obj] = si
					order = append(order, si)
				}
			case *ast.FuncDecl:
				if obj := pass.TypesInfo.Defs[d.Name]; obj != nil {
					funcIndex[obj] = d
				}
				if tn := receiverTypeName(pass, d); tn != nil {
					m := methods[tn]
					if m == nil {
						m = map[string]*ast.FuncDecl{}
						methods[tn] = m
					}
					m[d.Name.Name] = d
				}
			}
		}
	}

	collectMutations(pass, structs)
	regs := collectRegistrations(pass, structs, methods)

	// Annotation hygiene: mandatory reasons and well-formed grammar.
	for _, si := range order {
		name := si.ts.Name.Name
		if si.external && si.extReason == "" {
			reportf(pass, si.ts.Name.Pos(),
				"//clonos:external on %s needs a reason: why is this state durable outside the recovery domain?", name)
		}
		if si.state != nil && si.state.bad != "" {
			reportf(pass, si.ts.Name.Pos(),
				"malformed //clonos:state annotation on %s: %s (grammar: //clonos:state snapshot=<method> restore=<method>)",
				name, si.state.bad)
		}
		for _, fi := range si.fields {
			if fi.ephemeral && fi.ephReason == "" {
				reportf(pass, fi.name.Pos(),
					"//clonos:ephemeral on %s.%s needs a reason: why is this state safe to lose across recovery?", name, fi.name.Name)
			}
		}
	}

	// Codec-registered state types: every field must round-trip.
	codecCovered := map[types.Object]bool{}
	for _, r := range regs {
		si := structs[r.stateType]
		if si == nil {
			continue
		}
		codecCovered[r.stateType] = true
		enc := collectUses(pass, funcIndex, r.encode)
		dec := collectUses(pass, funcIndex, r.decode)
		for _, fi := range si.fields {
			if fi.ephemeral {
				continue
			}
			if !enc.uses[fi.obj] {
				reportf(pass, fi.name.Pos(),
					"field %s of codec-registered state type %s is not encoded by %s.EncodeAppend; every state field must round-trip through the codec or be //clonos:ephemeral <reason>",
					fi.name.Name, si.ts.Name.Name, r.codecName)
			}
			if !dec.uses[fi.obj] {
				reportf(pass, fi.name.Pos(),
					"field %s of codec-registered state type %s is not rebuilt by %s.Decode; every state field must round-trip through the codec or be //clonos:ephemeral <reason>",
					fi.name.Name, si.ts.Name.Name, r.codecName)
			}
		}
	}

	// Snapshot/restore pairs and uncovered mutable state.
	for _, si := range order {
		name := si.ts.Name.Name
		if si.state != nil && si.state.bad == "" {
			snapFD := methods[si.obj][si.state.snapshot]
			restFD := methods[si.obj][si.state.restore]
			if snapFD == nil {
				reportf(pass, si.ts.Name.Pos(),
					"snapshot method %s named by //clonos:state on %s not found in this package", si.state.snapshot, name)
			}
			if restFD == nil {
				reportf(pass, si.ts.Name.Pos(),
					"restore method %s named by //clonos:state on %s not found in this package", si.state.restore, name)
			}
			if snapFD == nil || restFD == nil {
				continue
			}
			snap := collectUses(pass, funcIndex, snapFD)
			rest := collectUses(pass, funcIndex, restFD)
			for _, fi := range si.fields {
				if fi.ephemeral || !(fi.mainthread || (seed && si.mutated[fi.obj])) {
					continue
				}
				if !snap.uses[fi.obj] {
					reportf(pass, fi.name.Pos(),
						"state field %s is not captured by snapshot method %s; persist it in the snapshot or annotate //clonos:ephemeral <reason>",
						fi.name.Name, si.state.snapshot)
				}
				if !rest.writes[fi.obj] {
					reportf(pass, fi.name.Pos(),
						"state field %s is not restored by restore method %s; read it back from the snapshot or annotate //clonos:ephemeral <reason>",
						fi.name.Name, si.state.restore)
				}
			}
			continue
		}
		if si.external || codecCovered[si.obj] {
			continue
		}
		for _, fi := range si.fields {
			if fi.ephemeral || !(fi.mainthread || (seed && si.mutated[fi.obj])) {
				continue
			}
			reportf(pass, fi.name.Pos(),
				"mutable state field %s.%s has no snapshot coverage: declare //clonos:state snapshot=<m> restore=<m>, register a codec for %s, annotate the field //clonos:ephemeral <reason>, or mark the struct //clonos:external <reason>",
				name, fi.name.Name, name)
		}
	}
	return nil, nil
}

func reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if pass.Allowed(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// collectStruct gathers a struct declaration's fields and annotations.
// Single-spec GenDecls attach the doc comment to the GenDecl, so both
// comment homes are consulted.
func collectStruct(pass *analysis.Pass, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) *structInfo {
	si := &structInfo{ts: ts, obj: pass.TypesInfo.Defs[ts.Name], mutated: map[types.Object]bool{}}
	doc := ts.Doc
	if doc == nil {
		doc = gd.Doc
	}
	if args, ok := annotation(markerState, doc); ok {
		si.state = parseState(args)
	}
	if reason, ok := annotation(markerExternal, doc); ok {
		si.external, si.extReason = true, reason
	}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			fi := &fieldInfo{name: name, obj: pass.TypesInfo.Defs[name]}
			_, fi.mainthread = annotation(markerMainthread, field.Doc, field.Comment)
			if reason, ok := annotation(markerEphemeral, field.Doc, field.Comment); ok {
				fi.ephemeral, fi.ephReason = true, reason
			}
			si.fields = append(si.fields, fi)
		}
	}
	return si
}

// annotation scans the comment groups for `//clonos:<marker>` and returns
// the rest of that comment line (the annotation's arguments), trimmed.
func annotation(marker string, groups ...*ast.CommentGroup) (string, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			i := strings.Index(c.Text, marker)
			if i < 0 {
				continue
			}
			rest := c.Text[i+len(marker):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // longer marker, e.g. clonos:statestore
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func parseState(args string) *stateAnn {
	a := &stateAnn{}
	for _, tok := range strings.Fields(args) {
		switch {
		case tok == "mainthread":
			// documentation token: the pair runs on the task goroutine
		case strings.HasPrefix(tok, "snapshot="):
			a.snapshot = strings.TrimPrefix(tok, "snapshot=")
		case strings.HasPrefix(tok, "restore="):
			a.restore = strings.TrimPrefix(tok, "restore=")
		default:
			a.bad = "unknown token " + tok
			return a
		}
	}
	if a.snapshot == "" || a.restore == "" {
		a.bad = "both snapshot= and restore= are required"
	}
	return a
}

// receiverTypeName resolves a method's receiver base type name object.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// collectMutations records, per struct, the fields assigned through a
// method receiver (including index writes and ++/--): the mutable state
// the seed-package rule requires coverage for.
func collectMutations(pass *analysis.Pass, structs map[types.Object]*structInfo) {
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			si := structs[receiverTypeName(pass, fd)]
			if si == nil {
				continue
			}
			recv := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			mark := func(e ast.Expr) {
				if obj := recvField(pass, e, recv); obj != nil {
					si.mutated[obj] = true
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(n.X)
				}
				return true
			})
		}
	}
}

// recvField returns the receiver field an lvalue expression writes
// through: the selector whose base resolves to the receiver variable.
func recvField(pass *analysis.Pass, expr ast.Expr, recv types.Object) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				return pass.TypesInfo.Uses[e.Sel]
			}
			expr = e.X
		default:
			return nil
		}
	}
}

type registration struct {
	stateType types.Object // named struct type being persisted
	codecName string
	encode    *ast.FuncDecl
	decode    *ast.FuncDecl
}

// collectRegistrations finds codec.RegisterType(T{}, tCodec{}) calls and
// resolves both sides to declarations in this package.
func collectRegistrations(pass *analysis.Pass, structs map[types.Object]*structInfo,
	methods map[types.Object]map[string]*ast.FuncDecl) []registration {
	var regs []registration
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.FullName() != registerTypeFunc {
				return true
			}
			stateObj := namedStructObj(pass.TypesInfo.Types[call.Args[0]].Type)
			codecObj := namedStructObj(pass.TypesInfo.Types[call.Args[1]].Type)
			if stateObj == nil || codecObj == nil || structs[stateObj] == nil {
				return true
			}
			m := methods[codecObj]
			if m == nil || m["EncodeAppend"] == nil || m["Decode"] == nil {
				return true // codec declared elsewhere: out of scope
			}
			regs = append(regs, registration{
				stateType: stateObj,
				codecName: codecObj.Name(),
				encode:    m["EncodeAppend"],
				decode:    m["Decode"],
			})
			return true
		})
	}
	return regs
}

// namedStructObj unwraps pointers, slices, arrays, and map values down to
// a named struct's type name object (nil when the base is not one).
func namedStructObj(t types.Type) types.Object {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u.Obj()
			}
			return nil
		default:
			return nil
		}
	}
}

// useSet is the field usage of a function closure: uses holds every field
// object referenced (selectors and composite-literal keys both resolve
// through types.Info.Uses); writes holds fields that are an assignment
// target, ++/-- operand, or &-taken (decode-into-pointer idiom).
type useSet struct {
	uses   map[types.Object]bool
	writes map[types.Object]bool
}

// collectUses walks the root functions and, transitively, every
// same-package function they mention, gathering field uses and writes.
func collectUses(pass *analysis.Pass, funcIndex map[types.Object]*ast.FuncDecl, roots ...*ast.FuncDecl) *useSet {
	us := &useSet{uses: map[types.Object]bool{}, writes: map[types.Object]bool{}}
	visited := map[*ast.FuncDecl]bool{}
	var walk func(fd *ast.FuncDecl)
	markWrite := func(e ast.Expr) {
		if obj := writtenField(pass, e); obj != nil {
			us.writes[obj] = true
		}
	}
	walk = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					us.uses[obj] = true
				}
				if fn, ok := obj.(*types.Func); ok {
					walk(funcIndex[fn])
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markWrite(n.X)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		walk(r)
	}
	return us
}

// writtenField resolves an lvalue to the field it stores into, peeling
// index/star/slice wrappers: t.chanWms[i] = x writes chanWms.
func writtenField(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
