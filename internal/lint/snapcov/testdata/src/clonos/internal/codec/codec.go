// Package codec stubs the real registry under its import path so the
// snapcov fixtures can declare (state type, codec) persistence pairs.
package codec

// Codec is the persistence contract state types register against.
type Codec interface {
	EncodeAppend(dst []byte, v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// RegisterType mimics clonos/internal/codec.RegisterType.
func RegisterType(v any, c Codec) {}
