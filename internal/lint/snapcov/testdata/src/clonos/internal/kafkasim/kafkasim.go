// Package kafkasim is a seed-package fixture for the //clonos:external
// hygiene rule: the exemption must say why the state is durable.
package kafkasim

//clonos:external
type sink struct { // want `//clonos:external on sink needs a reason`
	n int64
}

func (s *sink) add() { s.n++ }

//clonos:external deduplicating sink topic; the measured output survives the job
type okSink struct {
	n int64
}

func (s *okSink) add() { s.n++ }
