// Package operator is a seed-package fixture: method-mutated fields are
// checked even without //clonos:mainthread, and codec.RegisterType calls
// declare field-by-field persistence pairs.
package operator

import "clonos/internal/codec"

func init() {
	codec.RegisterType(goodAcc{}, goodAccCodec{})
	codec.RegisterType(&badAcc{}, badAccCodec{})
	codec.RegisterType([]span{}, spanCodec{})
}

// goodAcc is fully covered by its codec.
type goodAcc struct {
	Sum float64
	N   int64
}

type goodAccCodec struct{}

func (goodAccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a := v.(goodAcc)
	_ = a.Sum
	_ = a.N
	return dst, nil
}

func (goodAccCodec) Decode(b []byte) (any, error) {
	var a goodAcc
	a.Sum = 1
	a.N = 2
	return a, nil
}

// badAcc's codec forgets Count on encode and Best on decode.
type badAcc struct {
	Best  any   // want `field Best of codec-registered state type badAcc is not rebuilt by badAccCodec.Decode`
	Count int64 // want `field Count of codec-registered state type badAcc is not encoded by badAccCodec.EncodeAppend`
}

type badAccCodec struct{}

func (badAccCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	a := v.(*badAcc)
	_ = a.Best
	return dst, nil
}

func (badAccCodec) Decode(b []byte) (any, error) {
	return &badAcc{Count: 3}, nil
}

// span round-trips through a helper on encode and a keyed composite
// literal on decode — both count as coverage.
type span struct {
	Start int64
	End   int64
}

type spanCodec struct{}

func (spanCodec) EncodeAppend(dst []byte, v any) ([]byte, error) {
	return encodeSpans(dst, v.([]span))
}

func encodeSpans(dst []byte, ss []span) ([]byte, error) {
	for _, s := range ss {
		_ = s.Start
		_ = s.End
	}
	return dst, nil
}

func (spanCodec) Decode(b []byte) (any, error) {
	return []span{{Start: 1, End: 2}}, nil
}

// tracker mutates receiver state but declares no coverage at all.
type tracker struct {
	seen map[uint64]bool // want `mutable state field tracker.seen has no snapshot coverage`
	name string          // set only at construction: not flagged
}

func newTracker(name string) *tracker {
	return &tracker{seen: map[uint64]bool{}, name: name}
}

func (t *tracker) observe(k uint64) { t.seen[k] = true }

// cache is method-mutated but declared ephemeral field-by-field.
type cache struct {
	//clonos:ephemeral rebuilt lazily from the first post-restore read
	val int64
	//clonos:ephemeral validity latch for val, reset with it
	ok bool
}

func (c *cache) set(v int64) { c.val, c.ok = v, true }

// broker is durable outside the recovery domain.
//
//clonos:external simulated Kafka broker; replayable from any offset
type broker struct {
	records []int64
	closed  bool
}

func (b *broker) append(v int64) { b.records = append(b.records, v) }
func (b *broker) close()         { b.closed = true }
