// Package pr9 pins the PR 9 bug shape: a source task's partially-consumed
// input batch (pendingBatch, persisted as SourceBacklog) was not written
// into the snapshot, so a failure between batch fetch and batch drain
// silently lost the unconsumed records on failover.
package pr9

type rec struct {
	Key uint64
	Ts  int64
}

type snapshot struct {
	Offset uint64
	// SourceBacklog omitted: mid-batch records vanish on recovery.
}

//clonos:state mainthread snapshot=buildSnapshot restore=restore
type source struct {
	//clonos:ephemeral re-derived from the replayed main log after restore
	offset       uint64 //clonos:mainthread
	pendingBatch []rec  //clonos:mainthread // want `state field pendingBatch is not captured by snapshot method buildSnapshot` `state field pendingBatch is not restored by restore method restore`
}

//clonos:mainthread
func (s *source) buildSnapshot() *snapshot {
	return &snapshot{Offset: s.offset}
}

//clonos:mainthread
func (s *source) restore(sn *snapshot) {
	s.offset = sn.Offset
}
