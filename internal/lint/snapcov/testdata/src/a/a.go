// Package a exercises the //clonos:state snapshot/restore pair rules in a
// non-seed package: only //clonos:mainthread fields are checked.
package a

type snap struct {
	Wms     []int64
	Seq     uint64
	Backlog []int64
}

// okTask persists every confined field (chanWms through a helper).
//
//clonos:state mainthread snapshot=build restore=restore
type okTask struct {
	curWm   int64   //clonos:mainthread
	chanWms []int64 //clonos:mainthread
	//clonos:ephemeral recomputed from the replayed main log
	offset  uint64 //clonos:mainthread
	mailbox chan int // unconfined infrastructure: not checked
}

//clonos:mainthread
func (t *okTask) build() *snap {
	s := &snap{Seq: uint64(t.curWm)}
	t.fillWms(s)
	return s
}

//clonos:mainthread
func (t *okTask) fillWms(s *snap) {
	s.Wms = append([]int64(nil), t.chanWms...)
}

//clonos:mainthread
func (t *okTask) restore(s *snap) {
	t.curWm = int64(s.Seq)
	for i := range s.Wms {
		t.chanWms[i] = s.Wms[i]
	}
	t.offset = 0
}

// dropTask's pair forgets chanWms on both sides.
//
//clonos:state snapshot=build restore=restore
type dropTask struct {
	curWm   int64   //clonos:mainthread
	chanWms []int64 //clonos:mainthread // want `chanWms is not captured by snapshot method build` `chanWms is not restored by restore method restore`
}

func (t *dropTask) build() *snap       { return &snap{Seq: uint64(t.curWm)} }
func (t *dropTask) restore(s *snap)    { t.curWm = int64(s.Seq) }
func (t *dropTask) advance(wm int64)   { t.curWm = wm }

// readOnlyRestore reads the field in restore but never writes it back.
//
//clonos:state snapshot=build restore=restore
type readOnlyRestore struct {
	curWm int64 //clonos:mainthread // want `curWm is not restored by restore method restore`
}

func (t *readOnlyRestore) build() *snap { return &snap{Seq: uint64(t.curWm)} }
func (t *readOnlyRestore) restore(s *snap) {
	if t.curWm != 0 { // a read is not a restore
		return
	}
}

// missingMethods names a pair that does not exist.
//
//clonos:state snapshot=encode restore=decode
type missingMethods struct { // want `snapshot method encode named by //clonos:state on missingMethods not found` `restore method decode named by //clonos:state on missingMethods not found`
	curWm int64 //clonos:mainthread
}

// halfGrammar omits restore=.
//
//clonos:state snapshot=build
type halfGrammar struct { // want `malformed //clonos:state annotation on halfGrammar: both snapshot= and restore= are required`
	curWm int64 //clonos:mainthread // want `mutable state field halfGrammar.curWm has no snapshot coverage`
}

func (t *halfGrammar) build() *snap { return &snap{Seq: uint64(t.curWm)} }

// bareReason has an //clonos:ephemeral with no justification.
//
//clonos:state snapshot=build restore=restore
type bareReason struct {
	//clonos:ephemeral
	scratch int // want `//clonos:ephemeral on bareReason.scratch needs a reason`
	curWm   int64 //clonos:mainthread
}

func (t *bareReason) build() *snap    { return &snap{Seq: uint64(t.curWm)} }
func (t *bareReason) restore(s *snap) { t.curWm = int64(s.Seq) }

// undeclared carries confined state but no coverage declaration at all.
type undeclared struct {
	curWm int64 //clonos:mainthread // want `mutable state field undeclared.curWm has no snapshot coverage`
}
