// Package pr1 pins the PR 1 bug shape: the per-channel watermark merge
// state (ChanWms) was dropped from the task snapshot, so a recovered task
// re-merged stale watermarks and diverged from the original byte stream.
// Deleting the field from the encode path must be a vet error.
package pr1

type taskSnapshot struct {
	CurWm int64
	// ChanWms is the field PR 1 had to add back; this snapshot omits it.
}

//clonos:state mainthread snapshot=buildSnapshot restore=restore
type task struct {
	curWm   int64   //clonos:mainthread
	chanWms []int64 //clonos:mainthread // want `state field chanWms is not captured by snapshot method buildSnapshot` `state field chanWms is not restored by restore method restore`
}

//clonos:mainthread
func (t *task) buildSnapshot() *taskSnapshot {
	return &taskSnapshot{CurWm: t.curWm}
}

//clonos:mainthread
func (t *task) restore(s *taskSnapshot) {
	t.curWm = s.CurWm
	// chanWms is neither captured nor written back: exactly the PR 1 hole.
}
