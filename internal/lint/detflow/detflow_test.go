package detflow_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", detflow.Analyzer,
		"clonos/internal/causal", "clonos/internal/job",
		"clonos/internal/checkpoint", "clonos/internal/operator")
}
