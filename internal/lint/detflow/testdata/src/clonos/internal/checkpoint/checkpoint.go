// Package checkpoint is a taint-tier fixture with only legal uses: the
// coordinator's wall-clock interval timing never reaches an encoder.
package checkpoint

import "time"

type coordinator struct {
	lastProgress time.Time
	interval     time.Duration
	epoch        uint64
}

// okControlPlane reads the clock to pace checkpoint triggering — a
// control-plane decision, not replayed state.
func (c *coordinator) okControlPlane() bool {
	now := time.Now()
	due := now.Sub(c.lastProgress) > c.interval
	if due {
		c.lastProgress = now
		c.epoch++
	}
	return due
}
