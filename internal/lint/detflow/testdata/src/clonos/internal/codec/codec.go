// Stub of the codec package: any call into it is a replay-sensitive sink
// for the detflow taint tier.
package codec

// EncodeAppend mimics the real encode entry point.
func EncodeAppend(dst []byte, v any) ([]byte, error) { return dst, nil }
