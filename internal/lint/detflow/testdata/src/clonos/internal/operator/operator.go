// Package operator carries the hand-written state codecs, so it gets the
// map-iteration-order rule: persisted bytes must not depend on Go's
// randomized map walk.
package operator

import "clonos/internal/codec"

// badMapCodec encodes entries in map order.
func badMapCodec(dst []byte, m map[int64]int64) []byte {
	for k, v := range m { // want `map iteration order reaches EncodeAppend`
		dst, _ = codec.EncodeAppend(dst, k)
		dst, _ = codec.EncodeAppend(dst, v)
	}
	return dst
}

// okSortedCodec is the sanctioned sorted-keys idiom.
func okSortedCodec(dst []byte, m map[int64]int64) []byte {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInt64s(keys)
	for _, k := range keys {
		dst, _ = codec.EncodeAppend(dst, k)
		dst, _ = codec.EncodeAppend(dst, m[k])
	}
	return dst
}

func sortInt64s(k []int64) {}
