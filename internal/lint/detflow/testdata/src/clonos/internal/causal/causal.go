// Stub of the deterministic causal package for detflow fixtures: the
// strict tier bans direct wall-clock and randomness outright, and the
// Append* functions double as the sanctioned determinant sinks the job
// fixture logs through.
package causal

import (
	"math/rand"
	"time"
)

type Determinant struct {
	Seq   uint64
	Stamp int64
}

// AppendTimestamp logs a TS determinant (sanctioned wrapper).
func AppendTimestamp(ms int64) {}

// AppendRNG logs an RNG seed determinant (sanctioned wrapper).
func AppendRNG(seed int64) {}

func badStamp(d *Determinant) {
	d.Stamp = time.Now().UnixNano() // want `time\.Now in deterministic protocol package clonos/internal/causal`
}

func badJitter() time.Duration {
	return time.Duration(rand.Int63n(1000)) // want `rand\.Int63n in deterministic protocol package clonos/internal/causal`
}

func badAge(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since in deterministic protocol package clonos/internal/causal`
}

// okDuration only names time types/constants, never reads the clock.
func okDuration() time.Duration { return 5 * time.Millisecond }

// okSeeded takes its stamp from the caller (the services layer).
func okSeeded(d *Determinant, stamp int64) { d.Stamp = stamp }

func okAllowed() int64 {
	return time.Now().UnixNano() //clonos:allow detflow — diagnostic log only
}
