// Package job exercises the detflow taint tier and the order rules: the
// clock is legal for control-plane timing, but its value must be logged
// as a determinant before reaching replayed state or encoded bytes.
package job

import (
	"math/rand"
	"time"

	"clonos/internal/causal"
	"clonos/internal/codec"
)

type task struct {
	curWm int64 //clonos:mainthread
	//clonos:ephemeral alignment stopwatch, control-plane only
	alignStart time.Time //clonos:mainthread
	buf        []byte
	mailbox    chan int
	control    chan int
	abort      chan struct{}
}

// badEncode stamps wall-clock time straight into the encode path.
func (t *task) badEncode() error {
	ms := time.Now().UnixMilli()
	var err error
	t.buf, err = codec.EncodeAppend(t.buf, ms) // want `flows into the codec encode path`
	return err
}

// badDerived: taint survives arithmetic and conversions.
func (t *task) badDerived() error {
	seed := rand.Int63()
	bucket := int64(seed % 16)
	var err error
	t.buf, err = codec.EncodeAppend(t.buf, bucket+1) // want `flows into the codec encode path`
	return err
}

// okLogged logs the stamp as a determinant first: replay sees the same
// value, so the downstream encode is deterministic.
func (t *task) okLogged() error {
	ms := time.Now().UnixMilli()
	causal.AppendTimestamp(ms)
	var err error
	t.buf, err = codec.EncodeAppend(t.buf, ms)
	return err
}

// badState stores a wall-clock read in replayed main-thread state.
func (t *task) badState() {
	t.curWm = time.Now().UnixMilli() // want `stored in main-thread state field curWm`
}

// okEphemeral: the alignment stopwatch is declared ephemeral scratch.
func (t *task) okEphemeral() {
	t.alignStart = time.Now()
}

// okControl: clock reads that never reach a sink are control-plane.
func (t *task) okControl(budget time.Duration) bool {
	return time.Since(t.alignStart) > budget
}

// badRangeEncode feeds map iteration order into the encoder.
func (t *task) badRangeEncode(m map[uint64]int64) {
	for _, v := range m { // want `map iteration order reaches EncodeAppend`
		t.buf, _ = codec.EncodeAppend(t.buf, v)
	}
}

// okSortedRange collects keys first; the collection loop has no encoder.
func (t *task) okSortedRange(m map[uint64]int64) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		t.buf, _ = codec.EncodeAppend(t.buf, m[k])
	}
}

func sortKeys(k []uint64) {}

// badSelect binds data from two channels on a replay path.
//
//clonos:mainthread
func (t *task) badSelect() int {
	select { // want `select binds values from 2 channels in a replay path`
	case v := <-t.mailbox:
		return v
	case v := <-t.control:
		return v
	}
}

// okSingleBound: one bound data channel plus a control signal.
//
//clonos:mainthread
func (t *task) okSingleBound() int {
	select {
	case v := <-t.mailbox:
		return v
	case <-t.abort:
		return -1
	}
}

// okDeclared documents why the arrival order is harmless on replay.
//
//clonos:mainthread
func (t *task) okDeclared() int {
	//clonos:det-source both channels carry the same replicated feed, merged idempotently
	select {
	case v := <-t.mailbox:
		return v
	case v := <-t.control:
		return v
	}
}

// badBareDeclared has the annotation but no justification.
//
//clonos:mainthread
func (t *task) badBareDeclared() int {
	//clonos:det-source
	select { // want `//clonos:det-source needs a reason`
	case v := <-t.mailbox:
		return v
	case v := <-t.control:
		return v
	}
}

// okUnannotated functions are not replay paths; the select rule only
// applies to annotated main-thread functions.
func (t *task) okUnannotated() int {
	select {
	case v := <-t.mailbox:
		return v
	case v := <-t.control:
		return v
	}
}
