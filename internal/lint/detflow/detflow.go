// Package detflow guards the determinism contract of causally guided
// recovery: replayed execution must reproduce the original byte stream,
// so nondeterminism may only enter through the services layer, where it
// is logged as a determinant. Three rules, two tiers:
//
//  1. Strict tier (causal, inflight, codec, statestore, types): any
//     direct time.Now/time.Since or math/rand use is an error. These
//     packages sit below the determinant log, so there is no sanctioned
//     way for them to observe nondeterminism. (This subsumes the
//     determinism half the nosleepwait analyzer used to carry.)
//
//  2. Taint tier (job, checkpoint): wall-clock and randomness are legal
//     for control-plane timing (alignment budgets, coordinator
//     intervals), but a tainted value must not reach a replay-sensitive
//     sink — the codec encode path, the state store, a fingerprint hash,
//     encoding/binary, or a non-ephemeral //clonos:mainthread state
//     field. Passing the value to internal/causal or internal/services
//     first (Append* determinant logging) sanitizes it: the replay will
//     see the same bytes.
//
//  3. Order rules (both tiers plus operator): ranging over a map whose
//     body feeds an encoder/hasher/determinant is flagged — iteration
//     order would leak into persisted bytes; collect and sort keys
//     first. And a //clonos:mainthread function (a replay/serve path)
//     may not select over multiple value-binding channel receives:
//     arrival order is nondeterministic and unlogged. Declare a
//     deliberate exception with `//clonos:det-source <reason>` on the
//     select.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clonos/internal/lint/analysis"
)

// Analyzer is the detflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "nondeterminism (wall clock, math/rand, map order, multi-channel " +
		"selects) must not reach replayed state or encoded bytes except through " +
		"internal/services determinants",
	Run: run,
}

// strictPkgs sit below the determinant log: no direct nondeterminism at all.
var strictPkgs = map[string]bool{
	"clonos/internal/causal":     true,
	"clonos/internal/inflight":   true,
	"clonos/internal/codec":      true,
	"clonos/internal/statestore": true,
	"clonos/internal/types":      true,
}

// taintPkgs may read the clock for control-plane decisions but must not
// let the value flow into replay-sensitive sinks.
var taintPkgs = map[string]bool{
	"clonos/internal/job":        true,
	"clonos/internal/checkpoint": true,
}

// rangePkgs additionally get the map-iteration-order rule; operator hosts
// the hand-written state codecs whose byte output must be key-sorted.
var extraRangePkgs = map[string]bool{
	"clonos/internal/operator": true,
}

const (
	markerMainthread = "clonos:mainthread"
	markerEphemeral  = "clonos:ephemeral"
	markerDetSource  = "clonos:det-source"
)

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	strict, taint := strictPkgs[path], taintPkgs[path]
	if !strict && !taint && !extraRangePkgs[path] {
		return nil, nil
	}
	c := &checker{pass: pass, mainFields: map[types.Object]bool{}, ephFields: map[types.Object]bool{}}
	c.collectFieldMarkers()
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		if strict {
			c.checkStrict(f)
		}
		c.checkRanges(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if taint {
				c.checkTaint(fd)
			}
			if analysis.CommentHas(fd.Doc, markerMainthread) {
				c.checkSelects(f, fd)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass       *analysis.Pass
	mainFields map[types.Object]bool
	ephFields  map[types.Object]bool
}

// collectFieldMarkers records this package's //clonos:mainthread and
// //clonos:ephemeral struct fields: a tainted store into a main-thread,
// non-ephemeral field is a sink (that state is replayed), while ephemeral
// fields are control-plane scratch and exempt.
func (c *checker) collectFieldMarkers() {
	for _, f := range c.pass.Files {
		if c.pass.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				main := analysis.CommentHas(field.Doc, markerMainthread) || analysis.CommentHas(field.Comment, markerMainthread)
				eph := analysis.CommentHas(field.Doc, markerEphemeral) || analysis.CommentHas(field.Comment, markerEphemeral)
				for _, name := range field.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if main {
						c.mainFields[obj] = true
					}
					if eph {
						c.ephFields[obj] = true
					}
				}
			}
			return true
		})
	}
}

// checkStrict bans direct wall-clock and randomness below the
// determinant log.
func (c *checker) checkStrict(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		var what string
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" || obj.Name() == "Since" {
				what = "time." + obj.Name()
			}
		case "math/rand", "math/rand/v2":
			what = "rand." + obj.Name()
		}
		if what == "" || c.pass.Allowed(id.Pos()) {
			return true
		}
		c.pass.Reportf(id.Pos(),
			"%s in deterministic protocol package %s: nondeterminism must flow through internal/services determinants",
			what, c.pass.Pkg.Path())
		return true
	})
}

// checkRanges flags map iteration whose body feeds an order-sensitive
// sink: the persisted byte order would depend on Go's randomized map
// walk. Key-collection loops (append into a slice, sort, iterate) pass.
func (c *checker) checkRanges(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := c.pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		var sink *ast.CallExpr
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			if sink != nil {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if ok && c.isOrderSensitive(call) {
				sink = call
			}
			return true
		})
		if sink == nil || c.pass.Allowed(rs.Pos()) {
			return true
		}
		c.pass.Reportf(rs.Pos(),
			"map iteration order reaches %s: encoded bytes would differ run to run; collect and sort the keys first",
			calleeName(c.pass, sink))
		return true
	})
}

// isOrderSensitive reports whether a call persists bytes whose order the
// caller controls: codec encoders, binary appends, hashes, determinant
// appends, or any local Encode* helper.
func (c *checker) isOrderSensitive(call *ast.CallExpr) bool {
	fn := callee(c.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "clonos/internal/codec":
		return true
	case pkg == "encoding/binary" && (strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Put")):
		return true
	case strings.HasPrefix(pkg, "hash") || strings.HasPrefix(pkg, "crypto"):
		return true
	case pkg == "clonos/internal/causal" && strings.HasPrefix(name, "Append"):
		return true
	case strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "encode"):
		return true
	}
	return false
}

// checkSelects enforces single-bound-receive selects on replay paths.
func (c *checker) checkSelects(f *ast.File, fd *ast.FuncDecl) {
	// det-source declarations are standalone comments ("//clonos:det-source
	// <reason>"), matched by prefix so prose mentions don't count.
	declared := map[int]string{} // line of the comment -> reason ("" = missing)
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			if strings.HasPrefix(cm.Text, "//"+markerDetSource) {
				declared[c.pass.Fset.Position(cm.Pos()).Line] = strings.TrimSpace(cm.Text[2+len(markerDetSource):])
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures run off-thread; mainthread does not propagate
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		bound := 0
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if u, ok := as.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					bound++
				}
			}
		}
		if bound < 2 {
			return true
		}
		line := c.pass.Fset.Position(sel.Pos()).Line
		for _, l := range []int{line, line - 1} {
			if reason, ok := declared[l]; ok {
				if reason == "" {
					c.pass.Reportf(sel.Pos(), "//clonos:det-source needs a reason: why is the arrival order harmless on replay?")
				}
				return true
			}
		}
		if c.pass.Allowed(sel.Pos()) {
			return true
		}
		c.pass.Reportf(sel.Pos(),
			"select binds values from %d channels in a replay path (//clonos:mainthread): arrival order is nondeterministic and unlogged; funnel through one mailbox or annotate //clonos:det-source <reason>",
			bound)
		return true
	})
}

// --- taint tier ---

type taintWalker struct {
	c       *checker
	tainted map[types.Object]bool
}

// checkTaint runs the function-local taint pass: wall-clock/rand values
// propagate through assignments and expressions; determinant logging
// (internal/causal, internal/services) sanitizes; codec/statestore/hash/
// binary calls and main-thread state stores are sinks.
func (c *checker) checkTaint(fd *ast.FuncDecl) {
	tw := &taintWalker{c: c, tainted: map[types.Object]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			tw.assign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if len(n.Values) == len(n.Names) {
					tw.setIdent(name, tw.taintOf(n.Values[i]))
				} else if len(n.Values) == 1 {
					tw.setIdent(name, tw.taintOf(n.Values[0]))
				}
			}
		case *ast.CallExpr:
			tw.checkCall(n)
		}
		return true
	})
}

func (tw *taintWalker) assign(as *ast.AssignStmt) {
	oneToMany := len(as.Rhs) == 1 && len(as.Lhs) > 1
	for i, lhs := range as.Lhs {
		var t bool
		if oneToMany {
			t = tw.taintOf(as.Rhs[0])
		} else if i < len(as.Rhs) {
			t = tw.taintOf(as.Rhs[i])
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			t = t || tw.taintOf(lhs) // op-assign keeps existing taint
		}
		tw.setTarget(lhs, t)
	}
}

func (tw *taintWalker) setTarget(lhs ast.Expr, t bool) {
	if id, ok := lhs.(*ast.Ident); ok {
		tw.setIdent(id, t)
		return
	}
	if !t {
		return
	}
	if obj := writtenField(tw.c.pass, lhs); obj != nil &&
		tw.c.mainFields[obj] && !tw.c.ephFields[obj] && !tw.c.pass.Allowed(lhs.Pos()) {
		tw.c.pass.Reportf(lhs.Pos(),
			"wall-clock/random-derived value stored in main-thread state field %s: replay would diverge; log it as a determinant through internal/services, or declare the field //clonos:ephemeral",
			obj.Name())
	}
}

func (tw *taintWalker) setIdent(id *ast.Ident, t bool) {
	obj := tw.c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = tw.c.pass.TypesInfo.Uses[id]
	}
	if obj == nil || id.Name == "_" {
		return
	}
	if t {
		tw.tainted[obj] = true
	} else {
		delete(tw.tainted, obj)
	}
}

func (tw *taintWalker) checkCall(call *ast.CallExpr) {
	fn := callee(tw.c.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg == "clonos/internal/causal" || pkg == "clonos/internal/services" {
		// Determinant logging: the replayed run sees the same value.
		for _, a := range call.Args {
			ast.Inspect(a, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := tw.c.pass.TypesInfo.Uses[id]; obj != nil {
						delete(tw.tainted, obj)
					}
				}
				return true
			})
		}
		return
	}
	sink := sinkDescription(pkg, fn.Name())
	if sink == "" {
		return
	}
	for _, a := range call.Args {
		if tw.taintOf(a) && !tw.c.pass.Allowed(a.Pos()) {
			tw.c.pass.Reportf(a.Pos(),
				"wall-clock/random-derived value flows into %s: replayed bytes would diverge; log it as a determinant through internal/services first",
				sink)
		}
	}
}

func sinkDescription(pkg, name string) string {
	switch {
	case pkg == "clonos/internal/codec":
		return "the codec encode path"
	case pkg == "clonos/internal/statestore":
		return "the state store"
	case pkg == "encoding/binary" && (strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Put")):
		return "the binary encode path"
	case strings.HasPrefix(pkg, "hash") || strings.HasPrefix(pkg, "crypto"):
		return "a fingerprint hash"
	}
	return ""
}

func (tw *taintWalker) taintOf(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := tw.c.pass.TypesInfo.Uses[e]
		return obj != nil && tw.tainted[obj]
	case *ast.ParenExpr:
		return tw.taintOf(e.X)
	case *ast.StarExpr:
		return tw.taintOf(e.X)
	case *ast.UnaryExpr:
		return tw.taintOf(e.X)
	case *ast.BinaryExpr:
		return tw.taintOf(e.X) || tw.taintOf(e.Y)
	case *ast.SelectorExpr:
		return tw.taintOf(e.X)
	case *ast.IndexExpr:
		return tw.taintOf(e.X) || tw.taintOf(e.Index)
	case *ast.SliceExpr:
		return tw.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return tw.taintOf(e.X)
	case *ast.KeyValueExpr:
		return tw.taintOf(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if tw.taintOf(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		fn := callee(tw.c.pass, e)
		if fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					return true
				}
			case "math/rand", "math/rand/v2":
				return true
			case "clonos/internal/causal", "clonos/internal/services":
				return false // determinant-logged results are deterministic on replay
			}
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && tw.taintOf(sel.X) {
			return true // e.g. time.Now().UnixMilli()
		}
		for _, a := range e.Args {
			if tw.taintOf(a) {
				return true
			}
		}
		return false
	}
	return false
}

// callee resolves a call's target function (nil for conversions,
// builtins, and dynamic calls through variables).
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := callee(pass, call); fn != nil {
		return fn.Name()
	}
	return "an encoder"
}

// writtenField resolves an lvalue to the struct field it stores into.
func writtenField(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
