// Package analysistest runs an internal/lint analyzer over small fixture
// packages and compares its diagnostics against `// want "regex"` comments
// in the fixture sources — the same golden-file convention as
// golang.org/x/tools/go/analysis/analysistest, re-implemented on the
// standard library so it works without a module proxy.
//
// Fixtures live under <analyzer>/testdata/src/<import/path>/*.go. Import
// paths resolve inside testdata/src first (so fixtures can stub
// clonos/internal/buffer et al. under their real import paths, which the
// analyzers match on); anything else falls back to compiling the standard
// library from source. Files named *_test.go are marked as test files for
// the pass but are typechecked together with the package.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"clonos/internal/lint/analysis"
)

// Run analyzes the fixture packages at the given import paths (their
// testdata-local dependencies are analyzed first, so annotation facts
// flow) and reports any mismatch against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := &fixtureLoader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*fixturePkg{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var order []*fixturePkg
	seen := map[string]bool{}
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		p, err := l.load(path)
		if err != nil {
			return err
		}
		for _, dep := range p.deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		order = append(order, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			t.Fatal(err)
		}
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	facts := map[types.Object]any{}
	var passes []*analysis.Pass
	for _, p := range order {
		pass := analysis.NewPass(a, l.fset, p.files, p.types, p.info, p.testFiles, facts,
			func(d analysis.Diagnostic) {
				pos := l.fset.Position(d.Pos)
				k := key{pos.Filename, pos.Line}
				got[k] = append(got[k], d.Message)
			})
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: Run(%s): %v", a.Name, p.path, err)
		}
		pass.Result = res
		passes = append(passes, pass)
	}
	if a.Finish != nil {
		if err := a.Finish(passes); err != nil {
			t.Fatalf("%s: Finish: %v", a.Name, err)
		}
	}

	// Collect want expectations from every analyzed file.
	want := map[key][]*regexp.Regexp{}
	for _, p := range order {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := l.fset.Position(c.Pos())
					for _, re := range parseWant(t, pos, c.Text) {
						k := key{pos.Filename, pos.Line}
						want[k] = append(want[k], re)
					}
				}
			}
		}
	}

	var keys []key
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		msgs, res := got[k], want[k]
		for len(msgs) > 0 || len(res) > 0 {
			switch {
			case len(res) == 0:
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msgs[0])
				msgs = msgs[1:]
			case len(msgs) == 0:
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, res[0])
				res = res[1:]
			default:
				if !res[0].MatchString(msgs[0]) {
					t.Errorf("%s:%d: diagnostic %q does not match want %q", k.file, k.line, msgs[0], res[0])
				}
				msgs, res = msgs[1:], res[1:]
			}
		}
	}
}

var wantRE = regexp.MustCompile("want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var strRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWant(t *testing.T, pos token.Position, comment string) []*regexp.Regexp {
	m := wantRE.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []*regexp.Regexp
	for _, q := range strRE.FindAllString(m[1], -1) {
		s, err := unquote(q)
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, q, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
		}
		out = append(out, re)
	}
	return out
}

func unquote(q string) (string, error) {
	if q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	var b strings.Builder
	inner := q[1 : len(q)-1]
	for i := 0; i < len(inner); i++ {
		if inner[i] == '\\' && i+1 < len(inner) {
			i++
		}
		b.WriteByte(inner[i])
	}
	return b.String(), nil
}

type fixturePkg struct {
	path      string
	files     []*ast.File
	testFiles map[*ast.File]bool
	types     *types.Package
	info      *types.Info
	deps      []string
}

type fixtureLoader struct {
	src   string
	fset  *token.FileSet
	pkgs  map[string]*fixturePkg
	std   types.Importer
	stack []string
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("analysistest: fixture import cycle at %q", path)
		}
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: fixture package %q: %w", path, err)
	}
	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFiles[f] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: fixture package %q has no Go files", path)
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fixtureImporter{l}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typecheck %q: %w", path, err)
	}
	p := &fixturePkg{path: path, files: files, testFiles: testFiles, types: tpkg, info: info}
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, _ := unquote(imp.Path.Value)
			if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(ip))); err == nil {
				p.deps = append(p.deps, ip)
			}
		}
	}
	l.pkgs[path] = p
	return p, nil
}

type fixtureImporter struct{ l *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(fi.l.src, filepath.FromSlash(path))); err == nil {
		p, err := fi.l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return fi.l.std.Import(path)
}
