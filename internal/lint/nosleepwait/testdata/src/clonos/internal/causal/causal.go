// Stub of the deterministic causal package for nosleepwait fixtures.
package causal

import (
	"math/rand"
	"time"
)

type Determinant struct {
	Seq   uint64
	Stamp int64
}

func badStamp(d *Determinant) {
	d.Stamp = time.Now().UnixNano() // want `time\.Now in deterministic protocol package clonos/internal/causal`
}

func badJitter() time.Duration {
	return time.Duration(rand.Int63n(1000)) // want `rand\.Int63n in deterministic protocol package clonos/internal/causal`
}

func badAge(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since in deterministic protocol package clonos/internal/causal`
}

// okDuration only names time types/constants, never reads the clock.
func okDuration() time.Duration { return 5 * time.Millisecond }

// okSeeded takes its stamp from the caller (the services layer).
func okSeeded(d *Determinant, stamp int64) { d.Stamp = stamp }

func okAllowed() int64 {
	return time.Now().UnixNano() //clonos:allow nosleepwait — diagnostic log only
}
