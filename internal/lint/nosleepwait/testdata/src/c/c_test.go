package c

import (
	"time"
)

var events chan struct{}

func pollUntilReady() {
	for !ready {
		time.Sleep(10 * time.Millisecond) // want `time\.Sleep poll loop in test`
	}
}

func pollWithBreak() {
	for {
		if ready {
			break
		}
		time.Sleep(time.Millisecond) // want `time\.Sleep poll loop in test`
	}
}

func pollCountdown() bool {
	for i := 0; i < 100; i++ {
		if ready {
			return true
		}
		time.Sleep(5 * time.Millisecond) // want `time\.Sleep poll loop in test`
	}
	return false
}

// okOneShot lets a background goroutine get scheduled once; not a poll.
func okOneShot() {
	time.Sleep(50 * time.Millisecond)
	<-events
}

// okWorkLoop sleeps to pace real per-iteration work; body is too big to
// be a pure poll.
func okWorkLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
		total *= 2
		recordTick(total)
		notifyTick(total)
		time.Sleep(time.Millisecond)
	}
	return total
}

// okSuppressed documents a deliberate scheduling-jitter probe.
func okSuppressed() {
	for !ready {
		time.Sleep(time.Millisecond) //clonos:allow nosleepwait — jitter probe
	}
}

func recordTick(int) {}
func notifyTick(int) {}

// --- timer-channel polls ---------------------------------------------------

func pollAfter() {
	for !ready {
		<-time.After(10 * time.Millisecond) // want `time\.After poll loop in test`
	}
}

func pollTickRange() {
	for range time.Tick(time.Millisecond) { // want `time\.Tick poll loop in test`
		if ready {
			return
		}
	}
}

func pollSelectAfter() bool {
	for i := 0; i < 50; i++ {
		select {
		case <-time.After(time.Millisecond): // want `time\.After poll loop in test`
			if ready {
				return true
			}
		}
	}
	return false
}

// okTimeout waits on a real event channel; the timeout arm is the
// sanctioned guard against a hung test, not a poll.
func okTimeout() bool {
	for i := 0; i < 3; i++ {
		select {
		case <-events:
			return true
		case <-time.After(time.Second):
		}
	}
	return false
}

// --- busy selects ----------------------------------------------------------

func spinUntilReady() {
	for !ready {
		select {
		case <-events:
		default: // want `select with empty default in a test loop busy-spins`
		}
	}
}

// okDrain is the nonblocking drain idiom: the default does real work
// (it exits the loop), so the select cannot spin.
func okDrain() int {
	n := 0
	for {
		select {
		case <-events:
			n++
		default:
			return n
		}
	}
}

// okOneShotPeek: an empty default outside any loop is a single
// nonblocking peek, not a spin.
func okOneShotPeek() {
	select {
	case <-events:
	default:
	}
}

func okSuppressedSpin() {
	for !ready {
		select {
		case <-events:
		default: //clonos:allow nosleepwait — scheduler-pressure probe
		}
	}
}
