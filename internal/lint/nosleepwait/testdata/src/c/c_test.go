package c

import (
	"time"
)

var events chan struct{}

func pollUntilReady() {
	for !ready {
		time.Sleep(10 * time.Millisecond) // want `time\.Sleep poll loop in test`
	}
}

func pollWithBreak() {
	for {
		if ready {
			break
		}
		time.Sleep(time.Millisecond) // want `time\.Sleep poll loop in test`
	}
}

func pollCountdown() bool {
	for i := 0; i < 100; i++ {
		if ready {
			return true
		}
		time.Sleep(5 * time.Millisecond) // want `time\.Sleep poll loop in test`
	}
	return false
}

// okOneShot lets a background goroutine get scheduled once; not a poll.
func okOneShot() {
	time.Sleep(50 * time.Millisecond)
	<-events
}

// okWorkLoop sleeps to pace real per-iteration work; body is too big to
// be a pure poll.
func okWorkLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
		total *= 2
		recordTick(total)
		notifyTick(total)
		time.Sleep(time.Millisecond)
	}
	return total
}

// okSuppressed documents a deliberate scheduling-jitter probe.
func okSuppressed() {
	for !ready {
		time.Sleep(time.Millisecond) //clonos:allow nosleepwait — jitter probe
	}
}

func recordTick(int) {}
func notifyTick(int) {}
