// Package c is a non-protocol package: wall-clock use here is fine.
package c

import "time"

var ready bool

// StartedAt is outside the protocol set, so time.Now is allowed.
func StartedAt() time.Time { return time.Now() }
