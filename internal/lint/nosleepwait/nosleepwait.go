// Package nosleepwait enforces the test-side timing discipline: tests
// must not busy-wait. PR 4 added event-driven waits (WaitForCheckpoint,
// WaitForEvent, tracer subscriptions) precisely so tests observe protocol
// progress instead of guessing at it; a poll loop is both slow and flaky
// under -race scheduling. The analyzer flags, in _test.go files:
//
//   - time.Sleep poll loops: small for-loops whose body does nothing but
//     sleep and re-check a condition. A plain one-shot sleep (e.g.
//     letting a background goroutine start) is not flagged — only the
//     loop shape.
//   - time.After / time.Tick poll loops: the same shape with the sleep
//     spelled as a timer-channel receive, including `for range
//     time.Tick(d)` and selects whose every arm is a timer receive. A
//     select that also waits on a real event channel is event-driven and
//     is not flagged (a timeout arm is legitimate).
//   - busy selects: a select with an empty `default:` inside a loop,
//     which spins the scheduler instead of blocking.
//
// The determinism rules for protocol packages (no bare wall-clock or
// math/rand on the replayed path) live in the detflow analyzer.
//
// Suppress a deliberate exception with `//clonos:allow nosleepwait` on
// the flagged line.
package nosleepwait

import (
	"go/ast"
	"go/token"
	"go/types"

	"clonos/internal/lint/analysis"
)

// Analyzer is the nosleepwait analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nosleepwait",
	Doc: "no poll loops in tests: time.Sleep / time.After / time.Tick busy-waits " +
		"and empty-default selects must become event-driven waits",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			checkPollLoops(pass, f)
		}
	}
	return nil, nil
}

const pollHint = "wait on an event instead (WaitForCheckpoint, WaitForEvent, or a channel)"

// checkPollLoops flags busy-waits in one test file.
func checkPollLoops(pass *analysis.Pass, f *ast.File) {
	reported := map[token.Pos]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			checkPollFor(pass, n)
			checkBusySelects(pass, n.Body, reported)
		case *ast.RangeStmt:
			if call, what := timerCall(pass, n.X); call != nil {
				if !pass.Allowed(call.Pos()) {
					pass.Reportf(call.Pos(), "%s poll loop in test: %s", what, pollHint)
				}
			}
			checkBusySelects(pass, n.Body, reported)
		}
		return true
	})
}

// checkPollFor flags a for statement whose body does nothing but wait on
// the clock and re-check a condition (every statement is a sleep, a
// timer receive, a timer-only select, or an if; the loop exits via its
// condition or a break/return inside a branch). A loop that does real
// work between waits — a paced producer, a rate limiter — is not a poll.
func checkPollFor(pass *analysis.Pass, loop *ast.ForStmt) {
	type wait struct {
		call *ast.CallExpr
		what string
	}
	var waits []wait
	hasExit := loop.Cond != nil
	scanExits := func(s ast.Stmt) {
		ast.Inspect(s, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.BranchStmt, *ast.ReturnStmt:
				hasExit = true
			}
			return true
		})
	}
	for _, s := range loop.Body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isCallTo(pass, call, "time", "Sleep") {
				waits = append(waits, wait{call, "time.Sleep"})
				continue
			}
			if call, what := timerRecv(pass, s.X); call != nil {
				waits = append(waits, wait{call, what})
				continue
			}
			return // non-wait work: not a poll loop
		case *ast.IfStmt:
			scanExits(s)
		case *ast.SelectStmt:
			calls, ok := timerOnlySelect(pass, s)
			if !ok {
				return // waits on a real channel: event-driven
			}
			for _, c := range calls {
				waits = append(waits, wait{c.call, c.what})
			}
			scanExits(s)
		default:
			return // assignments, nested loops, etc.: not a pure poll
		}
	}
	if len(waits) == 0 || !hasExit {
		return
	}
	for _, w := range waits {
		if pass.Allowed(w.call.Pos()) {
			continue
		}
		pass.Reportf(w.call.Pos(), "%s poll loop in test: %s", w.what, pollHint)
	}
}

// checkBusySelects flags selects with an empty default clause inside a
// loop body: with no channel ready the select returns immediately and
// the enclosing loop spins.
func checkBusySelects(pass *analysis.Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm != nil || len(cc.Body) > 0 {
				continue
			}
			key := cc.Pos()
			if reported[key] || pass.Allowed(cc.Pos()) {
				continue
			}
			reported[key] = true
			pass.Reportf(cc.Pos(),
				"select with empty default in a test loop busy-spins: %s", pollHint)
		}
		return true
	})
}

type timerWait struct {
	call *ast.CallExpr
	what string
}

// timerOnlySelect reports whether every arm of the select is a receive
// from time.After / time.Tick (ok=true, with the timer calls). A default
// clause or a real channel arm makes the select event-driven or
// nonblocking, which is not the poll shape handled here.
func timerOnlySelect(pass *analysis.Pass, sel *ast.SelectStmt) ([]timerWait, bool) {
	var calls []timerWait
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return nil, false // default clause: checkBusySelects territory
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		call, what := timerRecv(pass, recv)
		if call == nil {
			return nil, false
		}
		calls = append(calls, timerWait{call, what})
	}
	return calls, len(calls) > 0
}

// timerRecv matches `<-time.After(...)` / `<-time.Tick(...)`.
func timerRecv(pass *analysis.Pass, e ast.Expr) (*ast.CallExpr, string) {
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil, ""
	}
	return timerCall(pass, ue.X)
}

// timerCall matches a call to time.After or time.Tick.
func timerCall(pass *analysis.Pass, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	for _, name := range [...]string{"After", "Tick"} {
		if isCallTo(pass, call, "time", name) {
			return call, "time." + name
		}
	}
	return nil, ""
}

func isCallTo(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}
