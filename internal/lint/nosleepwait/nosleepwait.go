// Package nosleepwait enforces two timing disciplines:
//
//  1. Tests must not poll with time.Sleep. PR 4 added event-driven waits
//     (WaitForCheckpoint, WaitForEvent, tracer subscriptions) precisely so
//     tests observe protocol progress instead of guessing at it; a
//     sleep-poll loop is both slow and flaky under -race scheduling. The
//     analyzer flags time.Sleep calls inside "poll loops" in _test.go
//     files: small for-loops whose body does nothing but sleep and
//     re-check a condition. A plain one-shot sleep (e.g. letting a
//     background goroutine start) is not flagged — only the loop shape.
//
//  2. Protocol packages must be deterministic. The causal-recovery
//     guarantee rests on replayed execution reproducing the original
//     byte-for-byte, so the packages on that path (causal, inflight,
//     codec, statestore, types) may not read wall-clock time or
//     process-local randomness directly; nondeterminism must enter
//     through the services layer, where it is logged as a determinant.
//     The analyzer bans time.Now / time.Since and any math/rand use in
//     those packages' non-test files.
//
// Suppress a deliberate exception with `//clonos:allow nosleepwait` on
// the flagged line.
package nosleepwait

import (
	"go/ast"
	"go/types"

	"clonos/internal/lint/analysis"
)

// Analyzer is the nosleepwait analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nosleepwait",
	Doc: "no time.Sleep poll loops in tests (use event-driven waits); no " +
		"bare wall-clock or math/rand in deterministic protocol packages",
	Run: run,
}

// protocolPkgs lists the packages on the replayed execution path, which
// must stay free of direct nondeterminism. internal/services is the
// sanctioned entry point for time and randomness; internal/checkpoint's
// coordinator interval timing and internal/timers are wall-clock by
// design (they feed determinants, not replayed state).
var protocolPkgs = map[string]bool{
	"clonos/internal/causal":     true,
	"clonos/internal/inflight":   true,
	"clonos/internal/codec":      true,
	"clonos/internal/statestore": true,
	"clonos/internal/types":      true,
}

func run(pass *analysis.Pass) (any, error) {
	protocol := protocolPkgs[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			checkPollLoops(pass, f)
			continue
		}
		if protocol {
			checkDeterminism(pass, f)
		}
	}
	return nil, nil
}

// checkPollLoops flags time.Sleep calls that form a busy-wait: a for
// statement whose body does nothing but sleep and re-check a condition
// (every statement is either the sleep or an if; the loop exits via its
// condition or a break/return inside an if). A loop that does real work
// between sleeps — a paced producer, a rate limiter — is not a poll.
func checkPollLoops(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		var sleeps []*ast.CallExpr
		hasExit := loop.Cond != nil
		for _, s := range loop.Body.List {
			switch s := s.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !isCallTo(pass, call, "time", "Sleep") {
					return true // non-sleep work: not a poll loop
				}
				sleeps = append(sleeps, call)
			case *ast.IfStmt:
				ast.Inspect(s, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.BranchStmt, *ast.ReturnStmt:
						hasExit = true
					}
					return true
				})
			default:
				return true // assignments, selects, etc.: not a pure poll
			}
		}
		if len(sleeps) == 0 || !hasExit {
			return true
		}
		for _, call := range sleeps {
			if pass.Allowed(call.Pos()) {
				continue
			}
			pass.Reportf(call.Pos(),
				"time.Sleep poll loop in test: wait on an event instead (WaitForCheckpoint, WaitForEvent, or a channel)")
		}
		return true
	})
}

// checkDeterminism bans direct wall-clock and randomness in protocol
// package non-test files.
func checkDeterminism(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		var what string
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" || obj.Name() == "Since" {
				what = "time." + obj.Name()
			}
		case "math/rand", "math/rand/v2":
			what = "rand." + obj.Name()
		}
		if what == "" || pass.Allowed(id.Pos()) {
			return true
		}
		pass.Reportf(id.Pos(),
			"%s in deterministic protocol package %s: nondeterminism must flow through internal/services determinants",
			what, pass.Pkg.Path())
		return true
	})
}

func isCallTo(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}
