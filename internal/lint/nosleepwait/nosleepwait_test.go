package nosleepwait_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/nosleepwait"
)

func TestNoSleepWait(t *testing.T) {
	analysistest.Run(t, "testdata", nosleepwait.Analyzer, "c")
}
