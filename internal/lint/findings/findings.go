// Package findings defines the machine-readable output of
// `clonos-vet -json`: a stable, tool-friendly projection of the
// analyzers' diagnostics that CI can upload as an artifact and scripts
// can consume without parsing the human-readable lines.
//
// The output is a single JSON array (never null — an empty run encodes
// as `[]`), one object per diagnostic, with exactly these fields:
//
//	{
//	  "file":     string,  // path as reported by the loader (repo-relative for ./... runs)
//	  "line":     int,     // 1-based line number
//	  "col":      int,     // 1-based byte column, as in go vet output
//	  "analyzer": string,  // analyzer name, e.g. "bufown", "snapcov"
//	  "message":  string   // the human-readable diagnostic text
//	}
//
// The array is sorted by (file, line, col, analyzer) so diffs between
// runs are meaningful. Adding a field is a compatible change; renaming
// or removing one is not — the schema test pins the current shape.
package findings

import (
	"encoding/json"
	"io"
	"sort"
)

// Finding is one diagnostic in the clonos-vet -json output.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Sort orders findings by (file, line, col, analyzer) in place.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Encode writes the findings as the documented JSON array. A nil or
// empty slice encodes as `[]`, never null.
func Encode(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
