package findings_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"clonos/internal/lint/findings"
)

// TestSchema validates the encoded output against the documented schema:
// a JSON array of objects with exactly the five documented fields, with
// the documented types.
func TestSchema(t *testing.T) {
	in := []findings.Finding{
		{File: "internal/job/task.go", Line: 42, Col: 7, Analyzer: "snapcov", Message: "state field x is not captured"},
		{File: "cmd/clonos-vet/main.go", Line: 3, Col: 1, Analyzer: "bufown", Message: "leak"},
	}
	findings.Sort(in)
	var buf bytes.Buffer
	if err := findings.Encode(&buf, in); err != nil {
		t.Fatalf("Encode: %v", err)
	}

	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not a JSON array of objects: %v\n%s", err, buf.String())
	}
	if len(raw) != len(in) {
		t.Fatalf("got %d findings, want %d", len(raw), len(in))
	}
	wantKeys := map[string]string{
		"file":     "string",
		"line":     "number",
		"col":      "number",
		"analyzer": "string",
		"message":  "string",
	}
	for i, obj := range raw {
		if len(obj) != len(wantKeys) {
			t.Errorf("finding %d has %d fields, want exactly %d: %v", i, len(obj), len(wantKeys), obj)
		}
		for key, kind := range wantKeys {
			v, ok := obj[key]
			if !ok {
				t.Errorf("finding %d is missing field %q", i, key)
				continue
			}
			switch kind {
			case "string":
				if _, ok := v.(string); !ok {
					t.Errorf("finding %d field %q: got %T, want string", i, key, v)
				}
			case "number":
				f, ok := v.(float64)
				if !ok {
					t.Errorf("finding %d field %q: got %T, want number", i, key, v)
				} else if f != float64(int(f)) || f < 1 {
					t.Errorf("finding %d field %q: got %v, want a 1-based integer", i, key, f)
				}
			}
		}
	}

	// Sorted by (file, line, col, analyzer).
	if raw[0]["file"].(string) != "cmd/clonos-vet/main.go" {
		t.Errorf("findings are not sorted by file: first is %q", raw[0]["file"])
	}

	// Round-trip back into the typed form.
	var back []findings.Finding
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != len(in) || back[0] != in[0] || back[1] != in[1] {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, in)
	}
}

// TestEmptyEncodesAsArray pins the no-findings shape: `[]`, not null.
func TestEmptyEncodesAsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := findings.Encode(&buf, nil); err != nil {
		t.Fatalf("Encode(nil): %v", err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Errorf("Encode(nil) = %q, want []", got)
	}
}
