// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, sized for this repository's
// custom vetters. The container images this repo builds in carry only the
// Go toolchain — no module proxy — so the real x/tools framework cannot be
// vendored; this package mirrors its Analyzer/Pass/Diagnostic shape closely
// enough that the analyzers in internal/lint could be ported to the real
// multichecker by swapping one import.
//
// Differences from x/tools kept deliberately small:
//
//   - Passes run in dependency order over source-typechecked packages (see
//     internal/lint/load), so module-local types.Object identities are
//     shared across passes. Analyzers exchange interprocedural facts
//     through Pass.Facts, a single map shared by all passes of one
//     analyzer run, instead of x/tools' gob-encoded fact streams.
//   - Analyzers needing a whole-program view (e.g. "this constant is
//     referenced exactly once across the repo") implement Finish, called
//     once after every package's Run completed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags
	// (lower-case, no spaces).
	Name string
	// Doc is the one-paragraph description shown by clonos-vet -help.
	Doc string
	// Run checks a single package and reports diagnostics via pass.Report.
	// The returned value is stored on pass.Result for Finish.
	Run func(pass *Pass) (any, error)
	// Finish, if non-nil, runs after every package's Run completed, for
	// whole-program invariants. Diagnostics are reported through the
	// individual passes (whose Report hooks are still live).
	Finish func(passes []*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one package's typed syntax through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed files, including in-package
	// _test.go files when the loader was asked for them.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TestFiles marks which of Files came from _test.go sources (most
	// analyzers skip or specialize on them).
	TestFiles map[*ast.File]bool
	// Facts is shared across every pass of one analyzer run, keyed by
	// module-local types.Object (identity holds because all module
	// packages are typechecked in one universe). Analyzers use it to
	// export declaration annotations to downstream packages.
	Facts map[types.Object]any
	// Result is the value returned by Run, for Finish.
	Result any

	report func(Diagnostic)
}

// NewPass assembles a pass; report receives each diagnostic as it is
// emitted. Used by the drivers (clonos-vet and analysistest).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, testFiles map[*ast.File]bool, facts map[types.Object]any,
	report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		TestFiles: testFiles, Facts: facts, report: report,
	}
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer
	if p.report != nil {
		p.report(d)
	}
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos lies in a _test.go file of this pass.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FileFor returns the pass file containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// LineComments returns, for the file containing pos, a map from line
// number to the concatenated comment text on that line (both leading and
// trailing comments). Analyzers use it for line-scoped annotations such
// as //clonos:allow.
func (p *Pass) LineComments(f *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := p.Fset.Position(c.Pos()).Line
			out[line] += c.Text
		}
	}
	return out
}

// Allowed reports whether the diagnostic position carries a line-scoped
// suppression comment: `//clonos:allow <analyzer>` on the same line or
// the line above. The DESIGN.md "Static invariants" section documents
// when suppression is acceptable; prefer fixing the code.
func (p *Pass) Allowed(pos token.Pos) bool {
	f := p.FileFor(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	marker := "clonos:allow " + p.Analyzer.Name
	lc := p.LineComments(f)
	return strings.Contains(lc[line], marker) || strings.Contains(lc[line-1], marker)
}

// CommentHas reports whether any comment in the group contains the given
// marker (e.g. "clonos:mainthread"). Nil-safe.
func CommentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// Inspect walks every file of the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
