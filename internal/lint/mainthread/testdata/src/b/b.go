// Package b holds mainthread golden cases.
package b

import "sync/atomic"

type task struct {
	// epoch is the task's current checkpoint epoch.
	epoch uint64 //clonos:mainthread
	// offset is the replay cursor.
	//clonos:mainthread
	offset int64
	// epochShadow is the off-thread view of epoch.
	epochShadow atomic.Uint64
	name        string
}

// run is the task main loop.
//
//clonos:mainthread
func (t *task) run() {
	t.epoch++ // ok: annotated function
	t.offset = 7
	t.epochShadow.Store(t.epoch)
}

// watchdog runs on its own goroutine.
func (t *task) watchdog() uint64 {
	return t.epoch // want `field epoch is main-thread state, but watchdog is not //clonos:mainthread`
}

func (t *task) observe() int64 {
	t.name = "x" // ok: unannotated field
	return t.offset // want `field offset is main-thread state, but observe is not //clonos:mainthread`
}

// spawn is on the main thread, but its closure runs elsewhere — closures
// never inherit the annotation.
//
//clonos:mainthread
func (t *task) spawn(done chan struct{}) {
	go func() {
		_ = t.epoch // want `field epoch is main-thread state, but spawn \(closure\) is not //clonos:mainthread`
		close(done)
	}()
}

// shadowReader stays off-thread but uses the shadow: fine.
func (t *task) shadowReader() uint64 {
	return t.epochShadow.Load()
}

// snapshotDump is a deliberate, reviewed exception.
func (t *task) snapshotDump() uint64 {
	return t.epoch //clonos:allow mainthread — called only with the task parked
}
