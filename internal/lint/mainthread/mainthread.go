// Package mainthread enforces the task-goroutine confinement discipline
// from PR 2: struct fields annotated `//clonos:mainthread` hold state that
// only the task's own goroutine may touch; every other goroutine (the
// stall watchdog, metrics scrapers, recovery coordinators) must read
// through the atomic shadows published for that purpose.
//
// The annotation grammar is explicit on both sides:
//
//   - a field is confined by putting `//clonos:mainthread` in its doc or
//     line comment inside the struct declaration;
//   - a function is declared to run on the task main thread (or strictly
//     before the task starts, which is equivalently single-threaded) by
//     putting `//clonos:mainthread` in its doc comment.
//
// Annotated fields may only be accessed inside annotated functions.
// There is no propagation: a helper called from an annotated function
// must itself be annotated, and a closure NEVER inherits its enclosing
// function's annotation — closures are how state escapes to other
// goroutines (go statements, timers, callbacks), so each access inside
// one is flagged unless the literal's statement is suppressed with
// `//clonos:allow mainthread`.
package mainthread

import (
	"go/ast"
	"go/types"

	"clonos/internal/lint/analysis"
)

// Analyzer is the mainthread analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mainthread",
	Doc: "fields annotated //clonos:mainthread may only be accessed from " +
		"//clonos:mainthread functions; other goroutines use atomic shadows",
	Run: run,
}

const marker = "clonos:mainthread"

// fieldFact marks an annotated struct field.
type fieldFact struct{}

func run(pass *analysis.Pass) (any, error) {
	// Phase 1: collect annotated fields (doc comment or trailing line
	// comment on the field) into the shared fact map.
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !analysis.CommentHas(field.Doc, marker) && !analysis.CommentHas(field.Comment, marker) {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							pass.Facts[obj] = fieldFact{}
						}
					}
				}
			}
		}
	}

	// Phase 2: check every access against the accessing context.
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			onMain := analysis.CommentHas(fd.Doc, marker)
			checkBody(pass, fd.Body, onMain, fd.Name.Name)
		}
	}
	return nil, nil
}

// checkBody flags annotated-field accesses when the context is not the
// main thread. Function literals are always re-entered as off-thread
// contexts: the annotation names a function declaration, not the
// goroutine its closures end up on.
func checkBody(pass *analysis.Pass, body ast.Node, onMain bool, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body, false, where+" (closure)")
			return false
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj == nil {
				return true
			}
			if _, ok := pass.Facts[types.Object(obj)].(fieldFact); !ok {
				return true
			}
			if onMain || pass.Allowed(n.Sel.Pos()) {
				return true
			}
			pass.Reportf(n.Sel.Pos(),
				"field %s is main-thread state, but %s is not //clonos:mainthread; read it through its atomic shadow",
				n.Sel.Name, where)
		}
		return true
	})
}
