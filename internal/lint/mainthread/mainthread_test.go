package mainthread_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/mainthread"
)

func TestMainthread(t *testing.T) {
	analysistest.Run(t, "testdata", mainthread.Analyzer, "b")
}
