package crashpoint_test

import (
	"testing"

	"clonos/internal/lint/analysistest"
	"clonos/internal/lint/crashpoint"
)

func TestCrashpoint(t *testing.T) {
	analysistest.Run(t, "testdata", crashpoint.Analyzer, "d")
}
