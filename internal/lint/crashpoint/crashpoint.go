// Package crashpoint keeps the fault-injection surface honest. The
// deterministic chaos machinery in internal/faultinject only proves what
// it can reach: a Point constant that no production code path passes to
// crashPoint() silently drops out of every sweep, a point instrumented in
// two places makes #occurrence schedules ambiguous, and a recovery point
// whose paired obs tracer mark drifts breaks the dashboards that line up
// chaos runs with traces. None of these are compile errors, so this
// analyzer enforces them:
//
//  1. every faultinject.Point* constant is referenced from non-test code
//     outside the faultinject package exactly once — the one protocol
//     location the point names;
//  2. every Point* constant appears in the faultinject `points` registry,
//     so sweeps enumerate it;
//  3. every entry of faultinject.MirroredMarks pairs a point with the obs
//     span mark emitted at the same protocol step: the mark string must
//     equal the point name's last "/"-segment or the whole name with "/"
//     replaced by "-", and must actually be emitted by a `.Mark("…")`
//     call in non-test code.
//
// Enforcement is whole-program (the analyzer's Finish hook) and only
// engages when the faultinject package itself is among the analyzed
// packages, so partial runs stay quiet.
package crashpoint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clonos/internal/lint/analysis"
)

// Analyzer is the crashpoint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "crashpoint",
	Doc: "every faultinject.Point is registered, referenced exactly once " +
		"from non-test code, and consistent with its mirrored obs mark",
	Run:    run,
	Finish: finish,
}

const faultinjectPath = "clonos/internal/faultinject"

type pointDecl struct {
	name  string // constant identifier, e.g. PointTaskLoop
	value string // point string, e.g. "task/loop"
	pos   token.Pos
}

type markPair struct {
	mark string
	pos  token.Pos
}

type result struct {
	pass *analysis.Pass
	// refs: uses of faultinject Point* constants in this package's
	// non-test files (empty for the faultinject package itself).
	refs map[types.Object][]token.Pos
	// marks: string literals passed to .Mark(...) calls in non-test code.
	marks map[string][]token.Pos
	// Set only for the faultinject package:
	decls      map[types.Object]pointDecl
	registered map[types.Object]bool
	mirrored   map[types.Object]markPair
}

func run(pass *analysis.Pass) (any, error) {
	res := &result{
		pass:  pass,
		refs:  map[types.Object][]token.Pos{},
		marks: map[string][]token.Pos{},
	}
	isFI := pass.Pkg.Path() == faultinjectPath
	if isFI {
		res.decls = map[types.Object]pointDecl{}
		res.registered = map[types.Object]bool{}
		res.mirrored = map[types.Object]markPair{}
		collectFaultinject(pass, res)
	}
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if isFI {
					return true
				}
				obj := pass.TypesInfo.Uses[n]
				if isPointConst(obj) {
					res.refs[obj] = append(res.refs[obj], n.Pos())
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Mark" || len(n.Args) < 1 {
					return true
				}
				if lit, ok := n.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := litString(lit); err == nil {
						res.marks[s] = append(res.marks[s], lit.Pos())
					}
				}
			}
			return true
		})
	}
	return res, nil
}

func isPointConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == faultinjectPath &&
		strings.HasPrefix(c.Name(), "Point") && c.Name() != "PointInfo" &&
		!strings.HasPrefix(c.Name(), "PointKind")
}

func litString(lit *ast.BasicLit) (string, error) {
	v := lit.Value
	if len(v) < 2 {
		return "", fmt.Errorf("bad string literal")
	}
	if v[0] == '`' {
		return v[1 : len(v)-1], nil
	}
	var b strings.Builder
	inner := v[1 : len(v)-1]
	for i := 0; i < len(inner); i++ {
		if inner[i] == '\\' && i+1 < len(inner) {
			i++
		}
		b.WriteByte(inner[i])
	}
	return b.String(), nil
}

// collectFaultinject gathers the point declarations, the `points`
// registry membership, and the MirroredMarks pairs from the faultinject
// package's non-test files.
func collectFaultinject(pass *analysis.Pass, res *result) {
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if gd.Tok == token.CONST {
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil || !isPointConst(obj) {
							continue
						}
						c := obj.(*types.Const)
						res.decls[obj] = pointDecl{
							name:  c.Name(),
							value: strings.Trim(c.Val().ExactString(), `"`),
							pos:   name.Pos(),
						}
					}
					continue
				}
				// var declarations: points registry and MirroredMarks
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					switch name.Name {
					case "points":
						for _, elt := range cl.Elts {
							row, ok := elt.(*ast.CompositeLit)
							if !ok || len(row.Elts) == 0 {
								continue
							}
							if id, ok := row.Elts[0].(*ast.Ident); ok {
								if obj := pass.TypesInfo.Uses[id]; obj != nil {
									res.registered[obj] = true
								}
							}
						}
					case "MirroredMarks":
						for _, elt := range cl.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							id, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							obj := pass.TypesInfo.Uses[id]
							lit, okLit := kv.Value.(*ast.BasicLit)
							if obj == nil || !okLit || lit.Kind != token.STRING {
								continue
							}
							if s, err := litString(lit); err == nil {
								res.mirrored[obj] = markPair{mark: s, pos: kv.Pos()}
							}
						}
					}
				}
			}
		}
	}
}

func finish(passes []*analysis.Pass) error {
	var fi *result
	var results []*result
	for _, p := range passes {
		r, ok := p.Result.(*result)
		if !ok {
			continue
		}
		results = append(results, r)
		if r.decls != nil {
			fi = r
		}
	}
	if fi == nil {
		return nil // faultinject not among the analyzed packages
	}
	report := func(r *result, pos token.Pos, format string, args ...any) {
		if !r.pass.Allowed(pos) {
			r.pass.Reportf(pos, format, args...)
		}
	}

	// Aggregate references and marks across the whole program.
	type ref struct {
		r   *result
		pos token.Pos
	}
	refs := map[types.Object][]ref{}
	marks := map[string]bool{}
	for _, r := range results {
		for obj, poss := range r.refs {
			for _, pos := range poss {
				refs[obj] = append(refs[obj], ref{r, pos})
			}
		}
		for s := range r.marks {
			marks[s] = true
		}
	}

	for obj, d := range fi.decls {
		if !fi.registered[obj] {
			report(fi, d.pos, "crash point %s (%q) is missing from the points registry", d.name, d.value)
		}
		rs := refs[obj]
		switch {
		case len(rs) == 0:
			report(fi, d.pos, "crash point %s (%q) is never exercised by non-test code", d.name, d.value)
		case len(rs) > 1:
			first := fi.pass.Fset.Position(rs[0].pos)
			for _, extra := range rs[1:] {
				report(extra.r, extra.pos,
					"crash point %s is referenced more than once (first at %s); each point names exactly one protocol location",
					d.name, first)
			}
		}
	}

	for obj, mp := range fi.mirrored {
		d, ok := fi.decls[obj]
		if !ok {
			continue
		}
		suffix := d.value
		if i := strings.LastIndexByte(d.value, '/'); i >= 0 {
			suffix = d.value[i+1:]
		}
		dashed := strings.ReplaceAll(d.value, "/", "-")
		if mp.mark != suffix && mp.mark != dashed {
			report(fi, mp.pos,
				"mirrored mark %q does not match crash point %s (%q): want %q or %q",
				mp.mark, d.name, d.value, suffix, dashed)
			continue
		}
		if !marks[mp.mark] {
			report(fi, mp.pos,
				"mirrored mark %q for crash point %s is never emitted via .Mark(...) in non-test code",
				mp.mark, d.name)
		}
	}
	return nil
}
