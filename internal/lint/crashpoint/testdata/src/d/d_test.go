package d

import "clonos/internal/faultinject"

// Test-file references never count toward the exactly-once rule.
func sweepAll() []string {
	return []string{faultinject.PointGood, faultinject.PointDouble, faultinject.PointNever}
}
