package d

import "clonos/internal/faultinject"

// Test-file references never count toward the exactly-once rule.
func sweepAll() []string {
	return []string{faultinject.PointGood, faultinject.PointDouble, faultinject.PointNever}
}

// Test-file Mark calls never satisfy a MirroredMarks pairing: PointLoud
// stays flagged even though this emits its mark.
func emitLoudInTest() {
	var sp span
	sp.Mark("replay-loud")
}
