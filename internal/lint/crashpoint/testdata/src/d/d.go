// Package d exercises the crashpoint fixture's points.
package d

import "clonos/internal/faultinject"

type span struct{}

func (span) Mark(string) {}

var hits []string

func crashPoint(p string) { hits = append(hits, p) }

func step() {
	crashPoint(faultinject.PointGood)
	crashPoint(faultinject.PointRogue)
	crashPoint(faultinject.PointLoud)
	var sp span
	sp.Mark("good")
}

func seam() {
	crashPoint(faultinject.PointSeam)
	var sp span
	sp.Mark("replay-seam")
}

func align() {
	crashPoint(faultinject.PointDouble)
}

func alignAgain() {
	crashPoint(faultinject.PointDouble) // want `crash point PointDouble is referenced more than once`
}
