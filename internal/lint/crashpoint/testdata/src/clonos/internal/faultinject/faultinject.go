// Stub of clonos/internal/faultinject for crashpoint fixtures.
package faultinject

const (
	PointGood   = "task/good"
	PointDouble = "align/double"
	PointNever  = "task/never"    // want `crash point PointNever \("task/never"\) is never exercised by non-test code`
	PointRogue  = "task/rogue"    // want `crash point PointRogue \("task/rogue"\) is missing from the points registry`
	PointLoud   = "replay/loud"
	PointSeam   = "replay/seam"
)

type PointInfo struct {
	Name string
	Kind int
}

var points = []PointInfo{
	{PointGood, 0},
	{PointDouble, 0},
	{PointNever, 0},
	{PointLoud, 0},
	{PointSeam, 0},
}

// MirroredMarks pairs crash points with the obs tracer mark emitted at
// the same protocol step.
var MirroredMarks = map[string]string{
	PointGood:   "good",
	PointDouble: "mismatch", // want `mirrored mark "mismatch" does not match crash point PointDouble \("align/double"\): want "double" or "align-double"`
	PointLoud:   "replay-loud", // want `mirrored mark "replay-loud" for crash point PointLoud is never emitted via \.Mark`
	PointSeam:   "replay-seam", // dashed whole-name form, emitted in d: ok
}
