// Package load typechecks this module's packages for the internal/lint
// analyzers without golang.org/x/tools: package discovery shells out to
// `go list`, module-local packages are typechecked from source into one
// shared universe (so types.Object identities hold across packages —
// required for annotation facts to flow from a declaring package to its
// callers), and out-of-module imports (the standard library) are resolved
// from the build cache's compiler export data, which `go list -export`
// materializes.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	TestFiles  map[*ast.File]bool
	Types      *types.Package
	Info       *types.Info
	// XTest marks an external test package (package foo_test).
	XTest bool
}

type listEntry struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	ForTest      string
	Standard     bool
	Incomplete   bool
	DepsErrors   []*struct{ Err string }
	Error        *struct{ Err string }
	TestImports  []string
	XTestImports []string
}

// Config controls loading.
type Config struct {
	// Dir is the directory go list runs in (the module root or below).
	Dir string
	// Tests includes in-package _test.go files in each package and loads
	// external test packages as separate entries.
	Tests bool
}

// Load typechecks the packages matching patterns (plus, transparently,
// every module-local dependency, so cross-package object identity holds)
// and returns the matched packages in dependency order.
func Load(cfg Config, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		entries: map[string]*listEntry{},
		pkgs:    map[string]*Package{},
	}
	if err := l.prepare(patterns); err != nil {
		return nil, nil, err
	}
	var out []*Package
	for _, path := range l.targets {
		p, err := l.check(path, nil)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, p)
		if cfg.Tests {
			if xt, err := l.checkXTest(path); err != nil {
				return nil, nil, err
			} else if xt != nil {
				out = append(out, xt)
			}
		}
	}
	return l.fset, out, nil
}

type loader struct {
	cfg     Config
	fset    *token.FileSet
	exports map[string]string     // import path -> export data file
	entries map[string]*listEntry // module-local packages
	targets []string              // matched patterns, list order (≈ topo)
	pkgs    map[string]*Package   // memoized module-local typechecks
	stack   []string              // cycle detection
	imp     types.Importer        // export-data importer for non-module paths
}

func (l *loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	return out, nil
}

func decodeList(data []byte) ([]*listEntry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, &e)
	}
	return out, nil
}

// prepare runs go list twice: once with -deps -test -export to collect
// compiler export data for everything reachable (building as needed), and
// once plain over the patterns to learn the target packages' file lists.
func (l *loader) prepare(patterns []string) error {
	fields := "-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Export,ForTest,Standard,TestImports,XTestImports"
	depArgs := append([]string{"list", "-e", "-deps", "-export", fields}, patterns...)
	if l.cfg.Tests {
		depArgs = append([]string{"list", "-e", "-deps", "-test", "-export", fields}, patterns...)
	}
	depOut, err := l.goList(depArgs...)
	if err != nil {
		return err
	}
	deps, err := decodeList(depOut)
	if err != nil {
		return err
	}
	for _, e := range deps {
		if strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		path := e.ImportPath
		// Test-variant entries ("p [q.test]") share ForTest; strip to the
		// plain path and let the first (plain) entry win.
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i]
		}
		if e.Export != "" {
			if _, ok := l.exports[path]; !ok {
				l.exports[path] = e.Export
			}
		}
	}
	// Enumerate all module-local packages so module-internal imports of
	// the targets also typecheck from source into the shared universe.
	allOut, err := l.goList("list", fields, "./...")
	if err != nil {
		return err
	}
	all, err := decodeList(allOut)
	if err != nil {
		return err
	}
	for _, e := range all {
		l.entries[e.ImportPath] = e
	}
	tgtOut, err := l.goList(append([]string{"list", fields}, patterns...)...)
	if err != nil {
		return err
	}
	tgts, err := decodeList(tgtOut)
	if err != nil {
		return err
	}
	for _, e := range tgts {
		if _, ok := l.entries[e.ImportPath]; !ok {
			l.entries[e.ImportPath] = e
		}
		l.targets = append(l.targets, e.ImportPath)
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
	return nil
}

func (l *loader) parse(dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// check typechecks a module-local package (memoized). In-package test
// files are included when cfg.Tests is set: the augmented package is the
// canonical one, which is safe as long as test imports stay acyclic.
func (l *loader) check(path string, from []string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("load: import cycle through test files: %s -> %s",
				strings.Join(l.stack, " -> "), path)
		}
	}
	e, ok := l.entries[path]
	if !ok {
		return nil, fmt.Errorf("load: %q is not a module-local package", path)
	}
	names := append([]string(nil), e.GoFiles...)
	testNames := map[string]bool{}
	if l.cfg.Tests {
		for _, n := range e.TestGoFiles {
			names = append(names, n)
			testNames[n] = true
		}
	}
	files, err := l.parse(e.Dir, names)
	if err != nil {
		return nil, err
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()
	info := newInfo()
	conf := types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		return l.importPath(ip)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	p := &Package{ImportPath: path, Dir: e.Dir, Files: files, Types: tpkg, Info: info,
		TestFiles: map[*ast.File]bool{}}
	for _, f := range files {
		name := filepath.Base(l.fset.Position(f.FileStart).Filename)
		if testNames[name] {
			p.TestFiles[f] = true
		}
	}
	l.pkgs[path] = p
	return p, nil
}

// checkXTest typechecks a package's external test package (package
// foo_test), or returns nil when it has none.
func (l *loader) checkXTest(path string) (*Package, error) {
	e := l.entries[path]
	if e == nil || len(e.XTestGoFiles) == 0 {
		return nil, nil
	}
	files, err := l.parse(e.Dir, e.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		return l.importPath(ip)
	})}
	tpkg, err := conf.Check(path+"_test", l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s_test: %w", path, err)
	}
	p := &Package{ImportPath: path + "_test", Dir: e.Dir, Files: files, Types: tpkg,
		Info: info, XTest: true, TestFiles: map[*ast.File]bool{}}
	for _, f := range files {
		p.TestFiles[f] = true
	}
	return p, nil
}

func (l *loader) importPath(path string) (*types.Package, error) {
	if _, ok := l.entries[path]; ok {
		p, err := l.check(path, nil)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.imp.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
