package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"clonos/internal/metrics"
)

// WriteMatrixReport writes a matrix sweep as a standalone BenchReport —
// the format of the committed BENCH_recovery_matrix.json baseline.
func WriteMatrixReport(path string, report *MatrixReport, options map[string]any) error {
	br := NewBenchReport()
	for k, v := range options {
		br.Options[k] = v
	}
	br.Add("matrix", report)
	return br.WriteFile(path)
}

// LoadMatrixReport reads a matrix report back out of a BenchReport file
// (either a standalone matrix file or a full -bench-json result that
// includes the matrix experiment).
func LoadMatrixReport(path string) (*MatrixReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wrapper struct {
		Experiments map[string]json.RawMessage `json:"experiments"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	raw, ok := wrapper.Experiments["matrix"]
	if !ok {
		return nil, fmt.Errorf("%s: no \"matrix\" experiment in report", path)
	}
	var report MatrixReport
	if err := json.Unmarshal(raw, &report); err != nil {
		return nil, fmt.Errorf("%s: matrix payload: %w", path, err)
	}
	// Reports older than schema 3 predate the checkpoint-mode axis; every
	// such cell ran barrier-aligned, so normalize the coordinate rather
	// than forcing every consumer to special-case the empty mode.
	for i := range report.Cells {
		if report.Cells[i].Mode == "" {
			report.Cells[i].Mode = "aligned"
		}
	}
	if len(report.Modes) == 0 {
		report.Modes = []string{"aligned"}
	}
	return &report, nil
}

// ValidateMatrixReport checks the schema-level invariants CI relies on:
// a known schema version, at least minCells cells, each with its grid
// coordinates and latency percentiles populated, a recovery time
// whenever the cell settled, and — from schema 2, where every cell runs
// audit-armed — zero audit violations. Legacy reports (no schema field)
// are accepted without the audit check.
func ValidateMatrixReport(r *MatrixReport, minCells int) error {
	if r == nil {
		return fmt.Errorf("matrix report is empty")
	}
	if r.Schema > MatrixSchemaVersion {
		return fmt.Errorf("matrix report schema %d is newer than this build understands (%d)", r.Schema, MatrixSchemaVersion)
	}
	if len(r.Cells) < minCells {
		return fmt.Errorf("matrix report has %d cells, want >= %d", len(r.Cells), minCells)
	}
	seen := map[string]bool{}
	for i, c := range r.Cells {
		at := fmt.Sprintf("cell %d (load=%.2f state=%d failure=%q mode=%q)", i, c.Load, c.StateBytesPerKey, c.Failure, c.Mode)
		if c.Load <= 0 || c.StateBytesPerKey <= 0 || c.Failure == "" {
			return fmt.Errorf("%s: missing grid coordinates", at)
		}
		if r.Schema >= 3 && c.Mode != "aligned" && c.Mode != "unaligned" {
			return fmt.Errorf("%s: unknown checkpoint mode", at)
		}
		key := matrixCellKey(c)
		if seen[key] {
			return fmt.Errorf("%s: duplicate grid coordinates", at)
		}
		seen[key] = true
		if c.LatencyP50Ms < 0 || c.LatencyP99Ms < c.LatencyP50Ms {
			return fmt.Errorf("%s: inconsistent latency percentiles p50=%dms p99=%dms", at, c.LatencyP50Ms, c.LatencyP99Ms)
		}
		if c.RecoveryOK && c.RecoveryMs <= 0 {
			return fmt.Errorf("%s: settled cell with non-positive recovery time", at)
		}
		if c.SinkRecords <= 0 {
			return fmt.Errorf("%s: no sink output", at)
		}
		if r.Schema >= 2 && c.AuditViolations > 0 {
			return fmt.Errorf("%s: audit plane detected %d violation(s)", at, c.AuditViolations)
		}
	}
	return nil
}

func matrixCellKey(c MatrixCell) string {
	mode := c.Mode
	if mode == "" {
		mode = "aligned"
	}
	return fmt.Sprintf("%.4f/%d/%s/%s", c.Load, c.StateBytesPerKey, c.Failure, mode)
}

// CompareMatrixBaseline flags recovery regressions of cur against base.
// Per-cell recovery times on single-process runners are bimodal — the
// §7.4 settle point is either detection-bound (sub-second) or thrown
// seconds late by one tail outlier — so per-cell ratio gates flap. The
// gate therefore checks three robust signals over the grid cells present
// in both runs:
//
//  1. settled->unsettled flips: cells settled in the baseline must stay
//     settled, with up to maxUnsettled tolerated (noisy-runner
//     allowance); beyond it every flip is reported. This is the primary
//     wedge/slowdown signal — a settled recovery is bounded by the run
//     duration, so a genuinely slower recovery shows up as cells no
//     longer settling, not as large settled values.
//  2. the MEDIAN recovery time across cells settled in both runs must
//     not exceed maxRegress times the baseline median plus a 1 s
//     absolute slack — one noisy cell cannot move the median, a
//     systemic slowdown moves every cell and does.
//  3. the median detection time likewise — detection is heartbeat-bound
//     and low-variance, so a detector regression is a clean signal.
//
// The returned strings describe each regression; empty means the gate
// passes. Cells only present on one side are ignored — the grids may
// legitimately differ (smoke vs full).
func CompareMatrixBaseline(base, cur *MatrixReport, maxRegress float64, maxUnsettled int) []string {
	const slackMs = 1000.0
	baseByKey := map[string]MatrixCell{}
	for _, c := range base.Cells {
		baseByKey[matrixCellKey(c)] = c
	}
	var regressions, flips []string
	var baseRec, curRec, baseDet, curDet []float64
	for _, c := range cur.Cells {
		b, ok := baseByKey[matrixCellKey(c)]
		if !ok {
			continue
		}
		if b.DetectionMs > 0 && c.DetectionMs > 0 {
			baseDet = append(baseDet, b.DetectionMs)
			curDet = append(curDet, c.DetectionMs)
		}
		if !b.RecoveryOK {
			continue
		}
		if !c.RecoveryOK {
			flips = append(flips, fmt.Sprintf("load=%.2f state=%dB failure=%s mode=%s: recovery never settled (baseline %.0fms)",
				c.Load, c.StateBytesPerKey, c.Failure, c.Mode, b.RecoveryMs))
			continue
		}
		baseRec = append(baseRec, b.RecoveryMs)
		curRec = append(curRec, c.RecoveryMs)
	}
	if len(flips) > maxUnsettled {
		regressions = append(regressions, flips...)
	}
	medianPast := func(what string, base, cur []float64) {
		if len(cur) == 0 {
			return
		}
		bm, cm := metrics.PercentileF(base, 0.5), metrics.PercentileF(cur, 0.5)
		if cm > bm*maxRegress+slackMs {
			regressions = append(regressions, fmt.Sprintf(
				"median %s %.0fms over %d common cells exceeds %.1fx baseline median %.0fms (+%.0fms slack)",
				what, cm, len(cur), maxRegress, bm, slackMs))
		}
	}
	medianPast("recovery", baseRec, curRec)
	medianPast("detection", baseDet, curDet)
	return regressions
}
