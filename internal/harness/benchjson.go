package harness

import (
	"encoding/json"
	"os"
	"sort"
	"time"

	"clonos/internal/obs"
)

// BenchReport is the machine-readable counterpart of the tables the
// experiments print: clonos-bench -bench-json writes one of these so
// regression scripts can diff runs without scraping ASCII output.
type BenchReport struct {
	GeneratedAt string         `json:"generated_at"`
	Options     map[string]any `json:"options,omitempty"`
	Experiments map[string]any `json:"experiments"`
}

// NewBenchReport returns an empty report stamped with the current time.
func NewBenchReport() *BenchReport {
	return &BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Options:     map[string]any{},
		Experiments: map[string]any{},
	}
}

// Add stores one experiment's result payload under its name. Nil payloads
// are skipped so callers can pass results through unconditionally.
func (r *BenchReport) Add(name string, payload any) {
	if r == nil || payload == nil {
		return
	}
	r.Experiments[name] = payload
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fig6Summary is the JSON shape of one (experiment, system) failure run:
// the median recovery scalars plus percentiles over all repeats.
type Fig6Summary struct {
	Experiment string `json:"experiment"`
	System     string `json:"system"`
	// Median-run scalars (the same numbers the printed table shows).
	DetectionMs  float64 `json:"detection_ms"`
	ActivationMs float64 `json:"activation_ms"`
	RecoveryMs   float64 `json:"recovery_ms"`
	RecoveryOK   bool    `json:"recovery_ok"`
	// Percentiles across every repeat's settled recovery time.
	RecoveryP50Ms float64 `json:"recovery_p50_ms"`
	RecoveryP90Ms float64 `json:"recovery_p90_ms"`
	RecoveryMaxMs float64 `json:"recovery_max_ms"`
	Repeats       int     `json:"repeats"`
	// Steady-state behaviour of the median run.
	ThroughputGapMs  float64 `json:"throughput_gap_ms"`
	SteadyThroughput float64 `json:"steady_throughput_per_s"`
	SinkRecords      int     `json:"sink_records"`
	LatencyP50Ms     int64   `json:"latency_p50_ms"`
	LatencyP99Ms     int64   `json:"latency_p99_ms"`
	GlobalRestart    bool    `json:"global_restart"`
	// PhasesMs breaks the median run's recovery span into protocol
	// phases (standby-promotion, determinant replay, catch-up, ...).
	PhasesMs map[string]float64 `json:"phases_ms,omitempty"`
	// Recoveries carries the raw per-repeat samples behind the
	// percentiles.
	Recoveries []RecoverySample `json:"recoveries,omitempty"`
}

// Fig6Summaries converts failure-run results to their JSON shape.
func Fig6Summaries(results []Fig6Result) []Fig6Summary {
	out := make([]Fig6Summary, 0, len(results))
	for _, r := range results {
		s := Fig6Summary{
			Experiment:       r.Experiment,
			System:           r.System,
			DetectionMs:      float64(r.Summary.Detection.Milliseconds()),
			ActivationMs:     float64(r.Summary.Activation.Milliseconds()),
			RecoveryMs:       float64(r.Summary.Recovery.Milliseconds()),
			RecoveryOK:       r.Summary.RecoveryOK,
			Repeats:          len(r.Recoveries),
			ThroughputGapMs:  float64(r.Summary.ThroughputGap.Milliseconds()),
			SteadyThroughput: SteadyThroughput(r.Run.Samples, 0.2),
			SinkRecords:      r.Run.SinkCount,
			GlobalRestart:    r.Summary.Restarted,
			Recoveries:       r.Recoveries,
		}
		s.LatencyP50Ms, s.LatencyP99Ms = LatencyPercentiles(r.Run.Latency)
		s.RecoveryP50Ms, s.RecoveryP90Ms, s.RecoveryMaxMs = recoveryPercentiles(r.Recoveries)
		if len(r.Summary.Phases) > 0 {
			s.PhasesMs = phasesMs(r.Summary.Phases)
		}
		out = append(out, s)
	}
	return out
}

// recoveryPercentiles summarizes the settled recovery times across
// repeats; unsettled runs (OK == false) are excluded.
func recoveryPercentiles(samples []RecoverySample) (p50, p90, max float64) {
	var ok []float64
	for _, s := range samples {
		if s.OK {
			ok = append(ok, s.RecoveryMs)
		}
	}
	if len(ok) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(ok)
	at := func(q float64) float64 {
		idx := int(q * float64(len(ok)-1))
		return ok[idx]
	}
	return at(0.5), at(0.9), ok[len(ok)-1]
}

func phasesMs(phases []obs.Phase) map[string]float64 {
	out := make(map[string]float64, len(phases))
	for _, p := range phases {
		out[p.Name] += float64(p.Dur.Milliseconds())
	}
	return out
}
