package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/inflight"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/synthetic"
)

// MemOptions scales the §7.5 memory/spill study.
type MemOptions struct {
	Rate     int
	Duration time.Duration
	// PoolSizes are the in-flight log pool sizes (in buffers) to sweep;
	// the paper swept megabytes of in-flight log space per task.
	PoolSizes []int
	Synthetic synthetic.Config
	// CheckpointInterval stresses log growth between truncations.
	CheckpointInterval time.Duration
}

// DefaultMemOptions returns laptop-scale settings.
func DefaultMemOptions() MemOptions {
	syn := synthetic.DefaultConfig()
	syn.Depth = 2
	return MemOptions{
		Rate:               8000,
		Duration:           5 * time.Second,
		PoolSizes:          []int{64, 256, 512, 1024},
		Synthetic:          syn,
		CheckpointInterval: time.Second,
	}
}

// MemRow is one (policy, pool size) measurement.
type MemRow struct {
	Policy     inflight.Policy
	PoolBufs   int
	Throughput float64
	P99Latency int64
}

// MemStudy reproduces §7.5: throughput under the four in-flight log spill
// policies across log pool sizes. The paper's findings to compare shapes
// against: spill-buffer is conservative on memory but slow and erratic;
// in-memory and spill-epoch block when the pool is small relative to the
// checkpoint interval; spill-threshold is the well-rounded choice, with
// deteriorating performance below ~50 MB and diminishing returns above
// ~80 MB (scaled here to buffer counts).
func MemStudy(w io.Writer, opt MemOptions) ([]MemRow, error) {
	policies := []inflight.Policy{
		inflight.PolicyInMemory,
		inflight.PolicySpillEpoch,
		inflight.PolicySpillBuffer,
		inflight.PolicySpillThreshold,
	}
	var rows []MemRow
	for _, pol := range policies {
		for _, size := range opt.PoolSizes {
			cfg := job.DefaultConfig()
			cfg.Mode = job.ModeClonos
			cfg.DSD = 1
			cfg.Standby = false
			cfg.CheckpointInterval = opt.CheckpointInterval
			cfg.LogPoolBuffers = size
			cfg.InFlight = inflight.Config{Policy: pol, Threshold: 0.25}
			syn := opt.Synthetic
			res, err := Run(RunSpec{
				Name:      fmt.Sprintf("mem-%s-%d", pol, size),
				Cfg:       cfg,
				SinkDedup: true,
				NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
				Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
					return synthetic.Build(topic, sink, syn), nil
				},
				StartDriver: func(topic *kafkasim.Topic) func() {
					d := synthetic.Drive(topic, syn, opt.Rate, 0)
					d.Start()
					return d.Stop
				},
				Duration: opt.Duration,
			})
			if err != nil {
				return rows, err
			}
			_, p99 := LatencyPercentiles(res.Latency)
			row := MemRow{Policy: pol, PoolBufs: size, Throughput: SteadyThroughput(res.Samples, 0.3), P99Latency: p99}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "mem %-16s pool=%4d bufs  tput=%9.0f/s  p99=%5dms\n", pol, size, row.Throughput, row.P99Latency)
			}
		}
	}
	if w != nil {
		PrintMem(w, rows)
	}
	return rows, nil
}

// PrintMem renders the §7.5 table.
func PrintMem(w io.Writer, rows []MemRow) {
	fmt.Fprintln(w, "\n§7.5 — in-flight log spill policies vs log pool size")
	var tbl [][]string
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Policy.String(),
			fmt.Sprintf("%d", r.PoolBufs),
			fmt.Sprintf("%.0f/s", r.Throughput),
			fmt.Sprintf("%d ms", r.P99Latency),
		})
	}
	table(w, []string{"policy", "pool (buffers)", "throughput", "p99 latency"}, tbl)
}
