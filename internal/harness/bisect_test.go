package harness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"clonos/internal/inflight"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/nexmark"
	"clonos/internal/services"
)

// TestBisectFig5Inversion is a diagnostic, not a regression test: it
// isolates which engine feature is responsible for the Clonos-faster-
// than-baseline inversion Figure 5 shows on single-core hosts. Run it
// explicitly with CLONOS_BISECT=1; it takes ~2 minutes.
func TestBisectFig5Inversion(t *testing.T) {
	if os.Getenv("CLONOS_BISECT") == "" {
		t.Skip("diagnostic sweep; set CLONOS_BISECT=1 to run")
	}
	const query = "Q4"
	const parallelism = 2
	const rate = 150000
	const duration = 5 * time.Second

	configs := []struct {
		label string
		cfg   func() job.Config
	}{
		{"global", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeGlobal
			c.Standby = false
			return c
		}},
		{"clonos-dsd1", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.DSD = 1
			return c
		}},
		{"clonos-dsd1-nostandby", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.DSD = 1
			c.Standby = false
			return c
		}},
		{"clonos-atmostonce", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.Guarantee = job.AtMostOnce
			c.Standby = false
			return c
		}},
		{"clonos-noncausal", func() job.Config {
			// In-flight logging without determinants (at-least-once):
			// isolates the §6.1 buffer exchange from causal logging.
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.Guarantee = job.AtLeastOnce
			c.Standby = false
			return c
		}},
	}

	const repeats = 3
	samples := make(map[string][]float64)
	for rep := 0; rep < repeats; rep++ {
		for _, conf := range configs {
			cfg := conf.cfg()
			cfg.World = services.NewExternalWorld()
			cfg.InFlight = inflight.Config{Policy: inflight.PolicySpillThreshold, Threshold: 0.25}
			res, err := Run(RunSpec{
				Name:      "bisect/" + conf.label,
				Cfg:       cfg,
				SinkDedup: true,
				NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("nexmark", parallelism*2) },
				Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
					return nexmark.Build(query, topic, sink, nexmark.DefaultQueryConfig(parallelism))
				},
				StartDriver: func(topic *kafkasim.Topic) func() {
					d := nexmark.NewDriver(topic, nexmark.DefaultGeneratorConfig(42), rate, 0)
					d.Start()
					return d.Stop
				},
				Duration: duration,
			})
			if err != nil {
				t.Fatalf("%s: %v", conf.label, err)
			}
			samples[conf.label] = append(samples[conf.label], SteadyThroughput(res.Samples, 0.3))
		}
	}
	base := metricsMedian(samples["global"])
	for _, conf := range configs {
		med := metricsMedian(samples[conf.label])
		rel := 0.0
		if base > 0 {
			rel = med / base
		}
		fmt.Printf("bisect %-22s %9.0f/s  (%.2f vs global)\n", conf.label, med, rel)
	}
}
