package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/synthetic"
)

// DSDOptions scales the determinant-sharing-depth ablation (§5.4's
// "trade-off determinant sharing depth for performance").
type DSDOptions struct {
	Rate     int
	Duration time.Duration
	// Depths to sweep; 0 means the full graph depth.
	Depths    []int
	Synthetic synthetic.Config
	Repeats   int
}

// DefaultDSDOptions returns laptop-scale settings; the rate should
// saturate the pipeline so throughput reflects the sharing overhead.
func DefaultDSDOptions() DSDOptions {
	syn := synthetic.DefaultConfig()
	syn.Depth = 4
	return DSDOptions{Rate: 150000, Duration: 4 * time.Second, Depths: []int{1, 2, 3, 0}, Synthetic: syn, Repeats: 5}
}

// DSDRow is one sharing depth's measurement.
type DSDRow struct {
	DSD        int // 0 = full
	Throughput float64
	P99Latency int64
}

// DSDSweep measures saturated throughput across determinant sharing
// depths on a deep synthetic pipeline: deeper sharing replicates more
// determinant bytes per buffer (the paper saw up to 26% at full depth on
// D=6 queries versus 15-16% at DSD=1-2).
func DSDSweep(w io.Writer, opt DSDOptions) ([]DSDRow, error) {
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	// Interleave repeats across depths (1, 2, 3, full, 1, 2, ...) so
	// cold-start and machine drift affect every depth equally.
	tputs := make(map[int][]float64)
	p99s := make(map[int]int64)
	for rep := 0; rep < repeats; rep++ {
		for _, dsd := range opt.Depths {
			cfg := job.DefaultConfig()
			cfg.Mode = job.ModeClonos
			cfg.DSD = dsd
			cfg.Standby = false
			syn := opt.Synthetic
			res, err := Run(RunSpec{
				Name:      fmt.Sprintf("dsd-%d", dsd),
				Cfg:       cfg,
				SinkDedup: true,
				NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
				Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
					return synthetic.Build(topic, sink, syn), nil
				},
				StartDriver: func(topic *kafkasim.Topic) func() {
					d := synthetic.Drive(topic, syn, opt.Rate, 0)
					d.Start()
					return d.Stop
				},
				Duration: opt.Duration,
			})
			if err != nil {
				return nil, err
			}
			tputs[dsd] = append(tputs[dsd], SteadyThroughput(res.Samples, 0.3))
			_, p99s[dsd] = LatencyPercentiles(res.Latency)
		}
	}
	var rows []DSDRow
	for _, dsd := range opt.Depths {
		row := DSDRow{DSD: dsd, Throughput: metricsMedian(tputs[dsd]), P99Latency: p99s[dsd]}
		rows = append(rows, row)
		if w != nil {
			name := fmt.Sprint(row.DSD)
			if row.DSD == 0 {
				name = "full"
			}
			fmt.Fprintf(w, "dsd=%-5s tput=%9.0f/s p99=%5dms\n", name, row.Throughput, row.P99Latency)
		}
	}
	if w != nil {
		fmt.Fprintln(w, "\n§5.4 — determinant sharing depth vs saturated throughput")
		var tbl [][]string
		base := 0.0
		for _, r := range rows {
			if r.DSD == 1 {
				base = r.Throughput
			}
		}
		for _, r := range rows {
			name := fmt.Sprint(r.DSD)
			if r.DSD == 0 {
				name = "full"
			}
			rel := "-"
			if base > 0 {
				rel = fmt.Sprintf("%.2f", r.Throughput/base)
			}
			tbl = append(tbl, []string{name, fmt.Sprintf("%.0f/s", r.Throughput), rel, fmt.Sprintf("%d ms", r.P99Latency)})
		}
		table(w, []string{"DSD", "throughput", "vs DSD=1", "p99 latency"}, tbl)
	}
	return rows, nil
}
