package harness

import (
	"fmt"
	"io"
)

// Table1 reproduces the paper's Table 1: the assumptions related systems
// make, contrasted with what this engine demonstrates. The demonstration
// column points at the test/experiment in this repository that exercises
// the property Clonos does NOT assume away.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — assumptions of related work")
	table(w, []string{"system", "assumptions"}, [][]string{
		{"Millwheel [2]", "Scalable, transactional backend (Spanner)"},
		{"Streamscope [34]", "Deterministic computations and input"},
		{"Timestream [37]", "Deterministic computations and input"},
		{"SEEP & SDG [23], Rhino [18]", "Deterministic computations, monotonically increasing logical clock, records ordered by time"},
		{"Clonos (this reproduction)", "Reliable FIFO channels + coordinated checkpoints only (§2.3)"},
	})
	fmt.Fprintln(w, `
What this reproduction demonstrates against each assumption:
  - nondeterministic computations (external calls, RNG, wall-clock):
      TestNondeterministicOperatorExactlyOnce (internal/job)
  - processing-time windows (no deterministic input order):
      TestProcessingTimeWindowSurvivesFailure, NEXMark Q12
  - no logical-clock / time-ordering requirement (out-of-order events,
      watermarks): NEXMark event-time queries Q4-Q8, Q11
  - no transactional backend: checkpoints + volatile in-flight and causal
      logs only (internal/checkpoint, internal/inflight, internal/causal)`)
}
