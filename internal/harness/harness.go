// Package harness drives the paper's experiments (§7): it builds jobs,
// loads them through the simulated Kafka cluster, injects failures,
// samples throughput and latency the way the paper does, and prints the
// rows/series behind every table and figure — Figure 5 (overhead under
// normal operation), Figures 6a–6h (single, multiple, and concurrent
// failures), Table 1 (assumptions of related work), the §7.5 memory/spill
// study, and the §5.4 guarantee-level ablation.
package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/metrics"
	"clonos/internal/obs"
	"clonos/internal/types"
)

// FailurePlan schedules one injected task failure.
type FailurePlan struct {
	After time.Duration
	Task  types.TaskID
}

// RunSpec describes one measured job execution.
type RunSpec struct {
	Name string
	Cfg  job.Config
	// Build constructs the graph over the given topic and sink.
	Build func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error)
	// NewTopic creates the input topic (partition count is workload
	// specific).
	NewTopic func() *kafkasim.Topic
	// StartDriver begins feeding the topic; the returned func stops it.
	StartDriver func(topic *kafkasim.Topic) func()
	// Duration is the measured wall-clock run length.
	Duration time.Duration
	// Failures to inject, timed from run start.
	Failures []FailurePlan
	// SinkDedup disables the idempotent sink when false.
	SinkDedup bool
}

// RunResult carries everything measured during a run.
type RunResult struct {
	Name       string
	Start      time.Time
	Samples    []metrics.ThroughputSample
	Latency    []metrics.LatencyPoint
	Events     []job.Event
	SinkCount  int
	Duplicates uint64
	Errors     []error
	// FailTimes are the wall-clock instants of injected failures.
	FailTimes []time.Time
	// Spans are the runtime's ended tracer spans (recovery protocol
	// phases, global restarts).
	Spans []obs.SpanRecord
	// Obs is the run's metrics registry, kept alive for exposition.
	Obs *obs.Registry
}

// currentObs points at the registry of the run in progress, so a metrics
// endpoint started by the bench binary always serves the live run.
var currentObs atomic.Pointer[obs.Registry]

// CurrentRegistry returns the registry of the run currently executing
// (or the most recent one); nil before the first run.
func CurrentRegistry() *obs.Registry { return currentObs.Load() }

// currentTracer points at the tracer of the run in progress, backing the
// live /debug/trace endpoints across harness runs.
var currentTracer atomic.Pointer[obs.Tracer]

// CurrentTracer returns the tracer of the run currently executing (or
// the most recent one); nil before the first run.
func CurrentTracer() *obs.Tracer { return currentTracer.Load() }

// recorder, when set, flight-records every subsequent harness run.
var recorder atomic.Pointer[obs.Recorder]

// SetRecorder attaches a flight recorder to all subsequent Run calls
// (nil detaches). Each run's tracer streams its spans and events into
// the recorder; the caller owns the recorder's lifecycle (Close).
func SetRecorder(rec *obs.Recorder) { recorder.Store(rec) }

// Run executes one measured job.
func Run(spec RunSpec) (RunResult, error) {
	topic := spec.NewTopic()
	sink := kafkasim.NewSinkTopic(spec.SinkDedup)
	g, err := spec.Build(topic, sink)
	if err != nil {
		return RunResult{}, err
	}
	if spec.Cfg.Obs == nil {
		spec.Cfg.Obs = obs.NewRegistry()
	}
	if spec.Cfg.TraceSink == nil {
		if rec := recorder.Load(); rec != nil {
			spec.Cfg.TraceSink = rec
		}
	}
	currentObs.Store(spec.Cfg.Obs)
	rt, err := job.NewRuntime(g, spec.Cfg)
	if err != nil {
		return RunResult{}, err
	}
	currentTracer.Store(rt.Tracer())
	if err := rt.Start(); err != nil {
		return RunResult{}, err
	}
	defer rt.Stop()

	stopDriver := spec.StartDriver(topic)
	defer stopDriver()

	sampler := metrics.NewSampler(sink, 0)
	sampler.Start()
	defer sampler.Stop()

	res := RunResult{Name: spec.Name, Start: time.Now()}
	deadline := time.After(spec.Duration)
	pending := append([]FailurePlan(nil), spec.Failures...)
	for {
		var next <-chan time.Time
		if len(pending) > 0 {
			wait := time.Until(res.Start.Add(pending[0].After))
			if wait < 0 {
				wait = 0
			}
			next = time.After(wait)
		}
		select {
		case <-deadline:
			sampler.Stop()
			res.Samples = sampler.Samples()
			res.Latency = metrics.LatencySeries(sink.All())
			res.Events = rt.Events()
			res.SinkCount = sink.Len()
			res.Duplicates = sink.Duplicates()
			res.Errors = rt.Errors()
			res.Spans = rt.Tracer().Spans()
			res.Obs = rt.Obs()
			return res, nil
		case <-next:
			if err := rt.InjectFailure(pending[0].Task); err != nil {
				res.Errors = append(res.Errors, err)
			}
			res.FailTimes = append(res.FailTimes, time.Now())
			pending = pending[1:]
		}
	}
}

// SteadyThroughput is the mean sample rate after discarding the warm-up
// fraction of the run.
func SteadyThroughput(samples []metrics.ThroughputSample, warmupFrac float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	skip := int(float64(len(samples)) * warmupFrac)
	var rates []float64
	for _, s := range samples[skip:] {
		rates = append(rates, s.PerSec)
	}
	return metrics.MeanF(rates)
}

// LatencyPercentiles summarizes a run's end-to-end latency.
func LatencyPercentiles(points []metrics.LatencyPoint) (p50, p99 int64) {
	vals := metrics.Latencies(points)
	return metrics.Percentile(vals, 0.5), metrics.Percentile(vals, 0.99)
}

// table prints an aligned ASCII table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	printRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	printRow(sep)
	for _, r := range rows {
		printRow(r)
	}
}

// recoverySummary extracts the recovery metrics of a failure run.
type recoverySummary struct {
	// Detection is failure→detected; Activation failure→standby-live;
	// Recovery is the paper's latency-based metric.
	Detection  time.Duration
	Activation time.Duration
	Recovery   time.Duration
	RecoveryOK bool
	// ThroughputGap is the span of near-zero sink throughput.
	ThroughputGap time.Duration
	Restarted     bool
	// Phases is the recovery span's per-phase breakdown (empty when no
	// completed recovery span matched the failure).
	Phases []obs.Phase
}

func summarizeRecovery(res RunResult, failIdx int) recoverySummary {
	if failIdx >= len(res.FailTimes) {
		return recoverySummary{}
	}
	return summarizeRecoveryAt(res, res.FailTimes[failIdx])
}

// summarizeRecoveryAt summarizes recovery relative to an explicit failure
// instant — used when the failure was not harness-injected (crash-point
// kills record EventFaultInjected instead of populating FailTimes).
func summarizeRecoveryAt(res RunResult, failAt time.Time) recoverySummary {
	var out recoverySummary
	for _, ev := range res.Events {
		if ev.Time.Before(failAt) {
			continue
		}
		switch ev.Kind {
		case job.EventFailureDetected:
			if out.Detection == 0 {
				out.Detection = ev.Time.Sub(failAt)
			}
		case job.EventStandbyActivated, job.EventTaskLive:
			if out.Activation == 0 {
				out.Activation = ev.Time.Sub(failAt)
			}
		case job.EventGlobalRestart:
			out.Restarted = true
		}
	}
	out.Recovery, out.RecoveryOK = metrics.RecoveryTime(res.Latency, failAt.UnixMilli(), 0.10, 500)
	out.ThroughputGap = metrics.ThroughputGap(res.Samples, failAt, 0.1)
	for _, sp := range res.Spans {
		if sp.Name == job.RecoverySpanName && sp.Attr("aborted") == "" && !sp.Start.Before(failAt) {
			out.Phases = sp.Phases()
			break
		}
	}
	return out
}

// fmtPhases renders a phase breakdown ("standby-activated=1ms ...").
func fmtPhases(phases []obs.Phase) string {
	if len(phases) == 0 {
		return "n/a"
	}
	parts := make([]string, 0, len(phases))
	for _, p := range phases {
		parts = append(parts, fmt.Sprintf("%s=%s", p.Name, p.Dur.Round(100*time.Microsecond)))
	}
	return strings.Join(parts, " ")
}

// medianSummary aggregates repeated failure runs: median of each scalar
// metric, majority vote on the global-restart flag, and "never settled"
// only when at least half the repeats never settled (an unsettled run
// counts as +inf in the recovery median). It also returns the index of
// the representative run — the one whose recovery is closest to the
// median — whose time series is worth printing.
func medianSummary(sums []recoverySummary) (recoverySummary, int) {
	if len(sums) == 0 {
		return recoverySummary{}, 0
	}
	if len(sums) == 1 {
		return sums[0], 0
	}
	medDur := func(get func(recoverySummary) time.Duration) time.Duration {
		vals := make([]int64, len(sums))
		for i, s := range sums {
			vals[i] = int64(get(s))
		}
		return time.Duration(metrics.Percentile(vals, 0.5))
	}
	var out recoverySummary
	out.Detection = medDur(func(s recoverySummary) time.Duration { return s.Detection })
	out.Activation = medDur(func(s recoverySummary) time.Duration { return s.Activation })
	out.ThroughputGap = medDur(func(s recoverySummary) time.Duration { return s.ThroughputGap })
	restarts := 0
	for _, s := range sums {
		if s.Restarted {
			restarts++
		}
	}
	out.Restarted = restarts*2 > len(sums)
	recs := make([]int64, len(sums))
	for i, s := range sums {
		if s.RecoveryOK {
			recs[i] = int64(s.Recovery)
		} else {
			recs[i] = math.MaxInt64
		}
	}
	med := metrics.Percentile(recs, 0.5)
	out.RecoveryOK = med != math.MaxInt64
	if out.RecoveryOK {
		out.Recovery = time.Duration(med)
	}
	best := 0
	bestDist := int64(math.MaxInt64)
	for i := range sums {
		d := recs[i] - med
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	out.Phases = sums[best].Phases
	return out, best
}

func fmtDur(d time.Duration, ok bool) string {
	if !ok {
		return "n/a"
	}
	return d.Round(10 * time.Millisecond).String()
}
