package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/metrics"
	"clonos/internal/nexmark"
	"clonos/internal/services"
	"clonos/internal/synthetic"
	"clonos/internal/types"
)

// Fig6Options scales the failure experiments.
type Fig6Options struct {
	// Parallelism for the NEXMark runs.
	Parallelism int
	// Rate in events/second.
	Rate int
	// Duration per run; the failure is injected at 40% of it.
	Duration time.Duration
	// Synthetic shapes the multiple/concurrent-failure workload
	// (Figures 6c/6d/6g/6h).
	Synthetic synthetic.Config
	// MultiRate is the generator rate for the multi-failure runs; three
	// back-to-back recoveries leave a backlog that must drain on the same
	// core that serves live traffic, so it needs more headroom than the
	// single-failure rate. 0 means Rate.
	MultiRate int
	// StaggerGap separates the staggered failures (the paper used 5 s).
	StaggerGap time.Duration
	// Repeats takes the median of the recovery metrics over this many
	// runs per system (default 1): a single run's scalar rides on the
	// noise of its own pre-failure latency envelope.
	Repeats int
}

// DefaultFig6Options returns laptop-scale settings. The rate must stay
// below the host's capacity (these experiments measure recovery, not
// saturation); the defaults suit a single-core CI box.
func DefaultFig6Options() Fig6Options {
	syn := synthetic.DefaultConfig()
	syn.Parallelism = 2
	syn.Depth = 3
	return Fig6Options{
		Parallelism: 2,
		Rate:        6000,
		Duration:    12 * time.Second,
		Synthetic:   syn,
		MultiRate:   4500,
		StaggerGap:  1500 * time.Millisecond,
		Repeats:     3,
	}
}

// Fig6Result is one (experiment, system) failure run.
type Fig6Result struct {
	Experiment string
	System     string
	Run        RunResult
	Summary    recoverySummary
	// Recoveries holds every repeat's recovery time (not just the
	// median), so percentiles survive into the machine-readable report.
	Recoveries []RecoverySample
}

// RecoverySample is one repeat's recovery measurement.
type RecoverySample struct {
	RecoveryMs float64 `json:"recovery_ms"`
	OK         bool    `json:"ok"`
}

func recoverySamples(sums []recoverySummary) []RecoverySample {
	out := make([]RecoverySample, 0, len(sums))
	for _, s := range sums {
		out = append(out, RecoverySample{RecoveryMs: float64(s.Recovery.Milliseconds()), OK: s.RecoveryOK})
	}
	return out
}

// fig6Systems fixes the comparison (and print) order.
var fig6Systems = []string{"clonos", "flink"}

// fig6Configs returns the Clonos and Flink configurations compared in
// every Figure 6 plot.
func fig6Configs() map[string]job.Config {
	clonos := job.DefaultConfig()
	clonos.Mode = job.ModeClonos
	clonos.DSD = 0 // full, as in the multi-failure experiments
	flink := job.DefaultConfig()
	flink.Mode = job.ModeGlobal
	flink.Standby = false
	return map[string]job.Config{"clonos": clonos, "flink": flink}
}

// Fig6Single reproduces Figures 6a/6e (query Q3) and 6b/6f (query Q8):
// latency and throughput time series around a single operator failure,
// for Clonos and the global-rollback baseline.
func Fig6Single(w io.Writer, query string, failVertex int32, opt Fig6Options) ([]Fig6Result, error) {
	configs := fig6Configs()
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	runs := make(map[string][]RunResult)
	sums := make(map[string][]recoverySummary)
	// Interleave repeats across systems so drift affects both equally.
	for rep := 0; rep < repeats; rep++ {
		for _, system := range fig6Systems {
			cfg := configs[system]
			cfg.World = services.NewExternalWorld()
			failAt := time.Duration(float64(opt.Duration) * 0.4)
			res, err := Run(RunSpec{
				Name:      fmt.Sprintf("fig6-%s-%s", query, system),
				Cfg:       cfg,
				SinkDedup: true,
				NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("nexmark", opt.Parallelism*2) },
				Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
					return nexmark.Build(query, topic, sink, nexmark.DefaultQueryConfig(opt.Parallelism))
				},
				StartDriver: func(topic *kafkasim.Topic) func() {
					d := nexmark.NewDriver(topic, nexmark.DefaultGeneratorConfig(7), opt.Rate, 0)
					d.Start()
					return d.Stop
				},
				Duration: opt.Duration,
				Failures: []FailurePlan{{After: failAt, Task: types.TaskID{Vertex: types.VertexID(failVertex), Subtask: 0}}},
			})
			if err != nil {
				return nil, err
			}
			runs[system] = append(runs[system], res)
			sums[system] = append(sums[system], summarizeRecovery(res, 0))
		}
	}
	var out []Fig6Result
	for _, system := range fig6Systems {
		med, idx := medianSummary(sums[system])
		out = append(out, Fig6Result{Experiment: query, System: system, Run: runs[system][idx], Summary: med,
			Recoveries: recoverySamples(sums[system])})
	}
	if w != nil {
		PrintFig6(w, fmt.Sprintf("single failure, NEXMark %s (Figures 6a/6e style, median of %d)", query, repeats), out)
	}
	return out, nil
}

// Fig6Multi reproduces Figures 6c/6g (three staggered failures) and
// 6d/6h (three concurrent failures) on the synthetic pipeline with
// connected dataflows.
func Fig6Multi(w io.Writer, concurrent bool, opt Fig6Options) ([]Fig6Result, error) {
	syn := opt.Synthetic
	// Three failures leave a much larger backlog than one: extend the run
	// past opt.Duration so the catch-up can finish and the §7.4 recovery
	// metric (which requires latency to settle for the rest of the run)
	// has something to observe. Failures stay anchored to opt.Duration.
	dur := opt.Duration + 2*opt.StaggerGap + 5*time.Second
	rate := opt.MultiRate
	if rate <= 0 {
		rate = opt.Rate
	}
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	configs := fig6Configs()
	runs := make(map[string][]RunResult)
	sums := make(map[string][]recoverySummary)
	failAt := time.Duration(float64(opt.Duration) * 0.35)
	// Three failures on connected dataflow stages (hash shuffles):
	// stage0[0] -> stage1[0] -> stage2[0].
	var failures []FailurePlan
	for i := 0; i < 3 && i < syn.Depth; i++ {
		after := failAt
		if !concurrent {
			after += time.Duration(i) * opt.StaggerGap
		}
		failures = append(failures, FailurePlan{
			After: after,
			Task:  types.TaskID{Vertex: types.VertexID(i + 1), Subtask: 0},
		})
	}
	for rep := 0; rep < repeats; rep++ {
		for _, system := range fig6Systems {
			res, err := Run(RunSpec{
				Name:      fmt.Sprintf("fig6-multi-%v-%s", concurrent, system),
				Cfg:       configs[system],
				SinkDedup: true,
				NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
				Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
					return synthetic.Build(topic, sink, syn), nil
				},
				StartDriver: func(topic *kafkasim.Topic) func() {
					d := synthetic.Drive(topic, syn, rate, 0)
					d.Start()
					return d.Stop
				},
				Duration: dur,
				Failures: failures,
			})
			if err != nil {
				return nil, err
			}
			runs[system] = append(runs[system], res)
			sums[system] = append(sums[system], summarizeRecovery(res, len(failures)-1))
		}
	}
	label := "staggered"
	if concurrent {
		label = "concurrent"
	}
	var out []Fig6Result
	for _, system := range fig6Systems {
		med, idx := medianSummary(sums[system])
		out = append(out, Fig6Result{Experiment: label, System: system, Run: runs[system][idx], Summary: med,
			Recoveries: recoverySamples(sums[system])})
	}
	if w != nil {
		name := fmt.Sprintf("three staggered failures (Figures 6c/6g style, median of %d)", repeats)
		if concurrent {
			name = fmt.Sprintf("three concurrent failures (Figures 6d/6h style, median of %d)", repeats)
		}
		PrintFig6(w, name, out)
	}
	return out, nil
}

// PrintFig6 renders the summary table plus the latency/throughput time
// series of each system (the data behind the paper's scatter plots).
func PrintFig6(w io.Writer, title string, results []Fig6Result) {
	fmt.Fprintf(w, "\n%s\n", title)
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.System,
			fmtDur(r.Summary.Detection, r.Summary.Detection > 0),
			fmtDur(r.Summary.Activation, r.Summary.Activation > 0),
			fmtDur(r.Summary.Recovery, r.Summary.RecoveryOK),
			r.Summary.ThroughputGap.Round(10 * time.Millisecond).String(),
			fmt.Sprintf("%d", r.Run.SinkCount),
			fmt.Sprintf("%v", r.Summary.Restarted),
		})
	}
	table(w, []string{"system", "detect", "activate", "recovery(10% lat)", "tput gap", "records", "global restart"}, rows)

	for _, r := range results {
		if len(r.Summary.Phases) > 0 {
			fmt.Fprintf(w, "%s recovery phases: %s\n", r.System, fmtPhases(r.Summary.Phases))
		}
	}

	for _, r := range results {
		fmt.Fprintf(w, "\n%s time series (t since start; latency p50/p99 per bucket; records/s):\n", r.System)
		printSeries(w, r.Run)
	}
}

// printSeries buckets the run into ~500 ms rows matching the figures'
// x-axis: experiment time vs latency and throughput.
func printSeries(w io.Writer, res RunResult) {
	const bucket = 500 * time.Millisecond
	startMs := res.Start.UnixMilli()
	// Latency buckets.
	type agg struct{ vals []int64 }
	buckets := map[int64]*agg{}
	var maxB int64
	for _, p := range res.Latency {
		b := (p.ArrivalMs - startMs) / bucket.Milliseconds()
		if b < 0 {
			continue
		}
		a := buckets[b]
		if a == nil {
			a = &agg{}
			buckets[b] = a
		}
		a.vals = append(a.vals, p.LatencyMs)
		if b > maxB {
			maxB = b
		}
	}
	// Throughput per bucket from samples.
	tput := map[int64][]float64{}
	for _, s := range res.Samples {
		b := (s.At.UnixMilli() - startMs) / bucket.Milliseconds()
		tput[b] = append(tput[b], s.PerSec)
	}
	failMarks := map[int64]bool{}
	for _, ft := range res.FailTimes {
		failMarks[(ft.UnixMilli()-startMs)/bucket.Milliseconds()] = true
	}
	for b := int64(0); b <= maxB; b++ {
		mark := " "
		if failMarks[b] {
			mark = "X"
		}
		var p50, p99 int64
		if a := buckets[b]; a != nil {
			p50 = metrics.Percentile(a.vals, 0.5)
			p99 = metrics.Percentile(a.vals, 0.99)
		}
		fmt.Fprintf(w, "  %s t=%5.1fs  lat p50=%6dms p99=%6dms  tput=%9.0f/s\n",
			mark, float64(b)*bucket.Seconds(), p50, p99, metrics.MeanF(tput[b]))
	}
}
