package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/inflight"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/metrics"
	"clonos/internal/nexmark"
	"clonos/internal/services"
)

// Fig5Options scales the overhead experiment.
type Fig5Options struct {
	// Queries to run; nil means all of Figure 5's.
	Queries []string
	// Parallelism per operator (the paper used 25; scaled down).
	Parallelism int
	// Rate is the generator rate in events/second; it should exceed the
	// engine's capacity so the sink rate measures processing overhead
	// (the paper measures at saturation).
	Rate int
	// Duration per configuration run.
	Duration time.Duration
	// Repeats takes the median over this many runs per configuration to
	// damp scheduler noise (default 1).
	Repeats int
}

// DefaultFig5Options returns laptop-scale settings.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{Parallelism: 2, Rate: 150000, Duration: 5 * time.Second, Repeats: 3}
}

// Fig5Row is one query's relative-throughput measurements.
type Fig5Row struct {
	Query                      string
	Flink, DSD1, DSDFull       float64 // absolute records/s at the sink
	RelDSD1, RelDSDFull        float64 // relative to Flink
	LatP50Flink, LatP50DSD1    int64
	LatP99Flink, LatP99DSDFull int64
}

// Fig5 reproduces Figure 5: the relative throughput of Clonos (DSD=1 and
// DSD=Full) against the global-rollback baseline under normal operation,
// across the NEXMark queries, plus the §7.3 latency-overhead numbers.
func Fig5(w io.Writer, opt Fig5Options) ([]Fig5Row, error) {
	queries := opt.Queries
	if len(queries) == 0 {
		queries = nexmark.QueryNames
	}
	configs := []struct {
		label string
		cfg   func() job.Config
	}{
		{"flink", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeGlobal
			c.Standby = false
			return c
		}},
		{"dsd1", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.DSD = 1
			return c
		}},
		{"dsdfull", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.DSD = 0 // full graph depth
			return c
		}},
	}

	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var rows []Fig5Row
	for _, q := range queries {
		row := Fig5Row{Query: q}
		// Interleave repeats across configurations (flink, dsd1, dsdfull,
		// flink, ...) so cold-start and drift affect all three equally.
		samples := make(map[string][]float64)
		p50s := make(map[string]int64)
		p99s := make(map[string]int64)
		for rep := 0; rep < repeats; rep++ {
			for _, conf := range configs {
				cfg := conf.cfg()
				cfg.World = services.NewExternalWorld()
				cfg.InFlight = inflight.Config{Policy: inflight.PolicySpillThreshold, Threshold: 0.25}
				res, err := Run(RunSpec{
					Name:      q + "/" + conf.label,
					Cfg:       cfg,
					SinkDedup: true,
					NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("nexmark", opt.Parallelism*2) },
					Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
						return nexmark.Build(q, topic, sink, nexmark.DefaultQueryConfig(opt.Parallelism))
					},
					StartDriver: func(topic *kafkasim.Topic) func() {
						d := nexmark.NewDriver(topic, nexmark.DefaultGeneratorConfig(42), opt.Rate, 0)
						d.Start()
						return d.Stop
					},
					Duration: opt.Duration,
				})
				if err != nil {
					return rows, fmt.Errorf("fig5 %s/%s: %w", q, conf.label, err)
				}
				samples[conf.label] = append(samples[conf.label], SteadyThroughput(res.Samples, 0.3))
				p50s[conf.label], p99s[conf.label] = LatencyPercentiles(res.Latency)
			}
		}
		row.Flink = metricsMedian(samples["flink"])
		row.LatP50Flink, row.LatP99Flink = p50s["flink"], p99s["flink"]
		row.DSD1 = metricsMedian(samples["dsd1"])
		row.LatP50DSD1 = p50s["dsd1"]
		row.DSDFull = metricsMedian(samples["dsdfull"])
		row.LatP99DSDFull = p99s["dsdfull"]
		if row.Flink > 0 {
			row.RelDSD1 = row.DSD1 / row.Flink
			row.RelDSDFull = row.DSDFull / row.Flink
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "fig5 %-4s flink=%8.0f/s  dsd1=%8.0f/s (%.2f)  dsdfull=%8.0f/s (%.2f)\n",
				row.Query, row.Flink, row.DSD1, row.RelDSD1, row.DSDFull, row.RelDSDFull)
		}
	}

	if w != nil {
		PrintFig5(w, rows)
	}
	return rows, nil
}

// metricsMedian returns the median of values.
func metricsMedian(values []float64) float64 {
	return metrics.PercentileF(values, 0.5)
}

// PrintFig5 renders the Figure 5 table and the §7.3 summary line.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "\nFigure 5 — relative throughput under normal operation (Flink = 1.00)")
	var tbl [][]string
	var sum1, sumF float64
	n := 0
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Query,
			fmt.Sprintf("%.2f", 1.0),
			fmt.Sprintf("%.2f", r.RelDSD1),
			fmt.Sprintf("%.2f", r.RelDSDFull),
			fmt.Sprintf("%d ms", r.LatP50Flink),
			fmt.Sprintf("%d ms", r.LatP50DSD1),
		})
		if r.RelDSD1 > 0 {
			sum1 += r.RelDSD1
			sumF += r.RelDSDFull
			n++
		}
	}
	table(w, []string{"query", "flink", "clonos DSD=1", "clonos DSD=full", "p50 lat flink", "p50 lat DSD=1"}, tbl)
	if n > 0 {
		fmt.Fprintf(w, "\n§7.3: average throughput penalty: DSD=1 %.0f%%, DSD=full %.0f%% (paper: 6%% and 7%%)\n",
			(1-sum1/float64(n))*100, (1-sumF/float64(n))*100)
	}
}
