package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clonos/internal/inflight"
	"clonos/internal/metrics"
	"clonos/internal/synthetic"
)

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Millwheel", "Streamscope", "Timestream", "Rhino", "Clonos"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFig5SingleQuerySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opt := DefaultFig5Options()
	opt.Queries = []string{"Q1"}
	opt.Repeats = 1
	opt.Duration = 2 * time.Second
	var buf bytes.Buffer
	rows, err := Fig5(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Query != "Q1" {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Flink <= 0 || r.DSD1 <= 0 || r.DSDFull <= 0 {
		t.Fatalf("zero throughput: %+v", r)
	}
	// Shape check: Clonos overhead exists but is bounded (the paper saw
	// 0-26%; allow slack for a noisy CI box).
	if r.RelDSD1 < 0.5 || r.RelDSD1 > 1.5 {
		t.Errorf("rel DSD=1 = %.2f, out of plausible range", r.RelDSD1)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("figure table not printed")
	}
}

func TestFig6SingleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opt := DefaultFig6Options()
	opt.Duration = 5 * time.Second
	var buf bytes.Buffer
	results, err := Fig6Single(&buf, "Q3", 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	byName := map[string]Fig6Result{}
	for _, r := range results {
		byName[r.System] = r
		for _, e := range r.Run.Errors {
			t.Errorf("%s error: %v", r.System, e)
		}
	}
	// Shape: the baseline performs a global restart, Clonos does not.
	if byName["flink"].Summary.Restarted != true {
		t.Error("flink run did not globally restart")
	}
	if byName["clonos"].Summary.Restarted {
		t.Error("clonos run globally restarted")
	}
	if !strings.Contains(buf.String(), "time series") {
		t.Error("series not printed")
	}
}

func TestMemStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	opt := DefaultMemOptions()
	opt.Duration = 1500 * time.Millisecond
	opt.PoolSizes = []int{64}
	syn := synthetic.DefaultConfig()
	syn.Depth = 1
	opt.Synthetic = syn
	var buf bytes.Buffer
	rows, err := MemStudy(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want one per policy", len(rows))
	}
	byPolicy := map[inflight.Policy]MemRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	if len(byPolicy) != 4 {
		t.Fatalf("policies covered: %v", byPolicy)
	}
	// §7.5 shape: the spilling policies keep the pipeline moving even
	// with a small pool; in-memory (and spill-epoch, which retains the
	// whole current epoch) may stall — that is the paper's finding, not
	// a failure.
	if byPolicy[inflight.PolicySpillThreshold].Throughput <= 0 {
		t.Error("spill-threshold stalled")
	}
	if byPolicy[inflight.PolicySpillBuffer].Throughput <= 0 {
		t.Error("spill-buffer stalled")
	}
	if byPolicy[inflight.PolicySpillThreshold].Throughput < byPolicy[inflight.PolicyInMemory].Throughput {
		t.Error("spill-threshold slower than in-memory at a small pool")
	}
}

func TestSteadyThroughput(t *testing.T) {
	samples := []metrics.ThroughputSample{
		{PerSec: 0}, {PerSec: 0}, // warmup
		{PerSec: 100}, {PerSec: 110}, {PerSec: 90},
	}
	got := SteadyThroughput(samples, 0.4)
	if got != 100 {
		t.Fatalf("steady = %v, want 100", got)
	}
	if SteadyThroughput(nil, 0.5) != 0 {
		t.Fatal("empty samples nonzero")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	table(&buf, []string{"a", "bbbb"}, [][]string{{"xxx", "y"}})
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "xxx") || !strings.Contains(out, "----") {
		t.Fatalf("table output:\n%s", out)
	}
}
