package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleMatrixReport() *MatrixReport {
	return &MatrixReport{
		Loads:      []float64{0.5, 1.0},
		StateSizes: []int{1024},
		Failures:   []string{"single", "alignment"},
		Modes:      []string{"aligned"},
		Cells: []MatrixCell{
			{Load: 0.5, Rate: 2250, StateBytesPerKey: 1024, Failure: "single", Mode: "aligned",
				RecoveryMs: 800, RecoveryOK: true, DetectionMs: 650, LatencyP50Ms: 10, LatencyP99Ms: 40, SinkRecords: 1000, Repeats: 1},
			{Load: 1.0, Rate: 4500, StateBytesPerKey: 1024, Failure: "alignment", Mode: "aligned",
				RecoveryMs: 1200, RecoveryOK: true, DetectionMs: 700, LatencyP50Ms: 12, LatencyP99Ms: 55, SinkRecords: 2000, Repeats: 1},
			{Load: 1.0, Rate: 4500, StateBytesPerKey: 1024, Failure: "single", Mode: "aligned",
				RecoveryMs: 1000, RecoveryOK: true, DetectionMs: 680, LatencyP50Ms: 11, LatencyP99Ms: 48, SinkRecords: 2000, Repeats: 1},
		},
	}
}

// TestMatrixReportRoundTrip writes a matrix baseline and reads it back
// through the same path CI's schema validation uses.
func TestMatrixReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	want := sampleMatrixReport()
	if err := WriteMatrixReport(path, want, map[string]any{"grid": "test"}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrixReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMatrixReport(got, len(want.Cells)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(got.Cells) != len(want.Cells) || got.Cells[1].Failure != "alignment" || got.Cells[1].RecoveryMs != 1200 {
		t.Fatalf("round-trip mismatch: %+v", got.Cells)
	}
}

// TestValidateMatrixReport exercises the schema invariants CI depends on.
func TestValidateMatrixReport(t *testing.T) {
	r := sampleMatrixReport()
	if err := ValidateMatrixReport(r, 4); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("too-few-cells: err = %v, want cell-count error", err)
	}
	dup := sampleMatrixReport()
	dup.Cells = append(dup.Cells, dup.Cells[0])
	if err := ValidateMatrixReport(dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate coordinates: err = %v, want duplicate error", err)
	}
	bad := sampleMatrixReport()
	bad.Cells[0].LatencyP99Ms = bad.Cells[0].LatencyP50Ms - 1
	if err := ValidateMatrixReport(bad, 1); err == nil || !strings.Contains(err.Error(), "latency") {
		t.Errorf("inverted percentiles: err = %v, want latency error", err)
	}
	unsettled := sampleMatrixReport()
	unsettled.Cells[0].RecoveryOK = true
	unsettled.Cells[0].RecoveryMs = 0
	if err := ValidateMatrixReport(unsettled, 1); err == nil {
		t.Error("settled cell with zero recovery passed validation")
	}
	future := sampleMatrixReport()
	future.Schema = MatrixSchemaVersion + 1
	if err := ValidateMatrixReport(future, 1); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future schema: err = %v, want schema error", err)
	}
	violated := sampleMatrixReport()
	violated.Schema = MatrixSchemaVersion
	violated.Cells[1].AuditViolations = 3
	if err := ValidateMatrixReport(violated, 1); err == nil || !strings.Contains(err.Error(), "audit") {
		t.Errorf("schema-2 report with violations: err = %v, want audit error", err)
	}
	// A legacy report (no schema field) never ran audit-armed; violation
	// counts are absent and must not be enforced.
	legacy := sampleMatrixReport()
	legacy.Cells[1].AuditViolations = 3
	if err := ValidateMatrixReport(legacy, 1); err != nil {
		t.Errorf("legacy report rejected: %v", err)
	}
	// From schema 3 the checkpoint mode is a grid coordinate: unknown
	// values are rejected, and cells differing only by mode coexist.
	badMode := sampleMatrixReport()
	badMode.Schema = MatrixSchemaVersion
	badMode.Cells[0].Mode = "sideways"
	if err := ValidateMatrixReport(badMode, 1); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Errorf("unknown mode: err = %v, want mode error", err)
	}
	modal := sampleMatrixReport()
	modal.Schema = MatrixSchemaVersion
	cell := modal.Cells[0]
	cell.Mode = "unaligned"
	modal.Cells = append(modal.Cells, cell)
	if err := ValidateMatrixReport(modal, 1); err != nil {
		t.Errorf("mode-distinct cells rejected as duplicates: %v", err)
	}
}

// TestMatrixLegacyModeNormalized proves pre-mode-axis reports load with
// every cell on the aligned coordinate, so baseline comparison keys line
// up with the cells' actual configuration.
func TestMatrixLegacyModeNormalized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := sampleMatrixReport()
	legacy.Modes = nil
	for i := range legacy.Cells {
		legacy.Cells[i].Mode = ""
	}
	if err := WriteMatrixReport(path, legacy, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrixReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Modes) != 1 || got.Modes[0] != "aligned" {
		t.Errorf("legacy modes axis = %v, want [aligned]", got.Modes)
	}
	for i, c := range got.Cells {
		if c.Mode != "aligned" {
			t.Errorf("legacy cell %d mode = %q, want aligned", i, c.Mode)
		}
	}
	if key := matrixCellKey(MatrixCell{Load: 1, StateBytesPerKey: 1024, Failure: "single"}); key != matrixCellKey(got.Cells[2]) {
		t.Errorf("legacy cell key %q does not match empty-mode key %q", matrixCellKey(got.Cells[2]), key)
	}
}

// TestCompareMatrixBaseline checks the regression gate: one noisy cell
// cannot move the median past the factor+slack limit, a grid-wide
// slowdown does, settled->unsettled flips are tolerated up to the
// allowance and reported past it, a detector regression fails on its
// own, and cells absent from the baseline are ignored.
func TestCompareMatrixBaseline(t *testing.T) {
	base := sampleMatrixReport()
	cur := sampleMatrixReport()
	cur.Cells[0].RecoveryMs = base.Cells[0].RecoveryMs * 20 // one noisy cell; median holds
	if regs := CompareMatrixBaseline(base, cur, 3, 0); len(regs) != 0 {
		t.Errorf("single noisy cell flagged: %v", regs)
	}
	for i := range cur.Cells { // grid-wide slowdown moves the median
		cur.Cells[i].RecoveryMs = base.Cells[i].RecoveryMs*3 + 1500
	}
	if regs := CompareMatrixBaseline(base, cur, 3, 0); len(regs) != 1 || !strings.Contains(regs[0], "median recovery") {
		t.Errorf("regressions = %v, want the median-recovery regression", regs)
	}
	cur = sampleMatrixReport()
	cur.Cells[1].RecoveryOK = false
	if regs := CompareMatrixBaseline(base, cur, 3, 0); len(regs) != 1 || !strings.Contains(regs[0], "never settled") {
		t.Errorf("unsettled cell, no allowance: regressions = %v, want never-settled", regs)
	}
	if regs := CompareMatrixBaseline(base, cur, 3, 1); len(regs) != 0 {
		t.Errorf("one flip within allowance flagged: %v", regs)
	}
	cur.Cells[0].RecoveryOK = false // second flip exceeds the allowance of 1
	if regs := CompareMatrixBaseline(base, cur, 3, 1); len(regs) != 2 {
		t.Errorf("two flips past allowance: regressions = %v, want both reported", regs)
	}
	det := sampleMatrixReport()
	for i := range det.Cells {
		det.Cells[i].DetectionMs = base.Cells[i].DetectionMs*3 + 1500
	}
	if regs := CompareMatrixBaseline(base, det, 3, 0); len(regs) != 1 || !strings.Contains(regs[0], "median detection") {
		t.Errorf("detector regression: regressions = %v, want the median-detection regression", regs)
	}
	extra := sampleMatrixReport()
	extra.Cells[0].StateBytesPerKey = 8192 // not in the baseline grid
	extra.Cells[1].Failure = "concurrent"
	if regs := CompareMatrixBaseline(base, extra, 3, 0); len(regs) != 0 {
		t.Errorf("off-grid cells must be ignored, got %v", regs)
	}
}

// TestMatrixFailurePlan pins the failure-type axis semantics: which
// tasks fail, when, and how much extra drain time each shape needs.
func TestMatrixFailurePlan(t *testing.T) {
	opt := DefaultMatrixOptions()
	single, extra, err := matrixFailurePlan("single", opt)
	if err != nil || len(single) != 1 || extra != 0 {
		t.Fatalf("single: plans=%v extra=%v err=%v", single, extra, err)
	}
	if single[0].Task.Vertex != 2 {
		t.Errorf("single failure hits vertex %d, want 2 (stage1)", single[0].Task.Vertex)
	}
	stag, _, err := matrixFailurePlan("staggered", opt)
	if err != nil || len(stag) != 3 {
		t.Fatalf("staggered: plans=%v err=%v", stag, err)
	}
	if stag[2].After-stag[0].After != 2*opt.StaggerGap {
		t.Errorf("staggered spread = %v, want %v", stag[2].After-stag[0].After, 2*opt.StaggerGap)
	}
	conc, _, err := matrixFailurePlan("concurrent", opt)
	if err != nil || len(conc) != 3 || conc[0].After != conc[2].After {
		t.Fatalf("concurrent: plans=%v err=%v", conc, err)
	}
	align, extra, err := matrixFailurePlan("alignment", opt)
	if err != nil || len(align) != 0 || extra == 0 {
		t.Fatalf("alignment: plans=%v extra=%v err=%v (crash-point cells have no harness plan)", align, extra, err)
	}
	if _, _, err := matrixFailurePlan("nope", opt); err == nil {
		t.Error("unknown failure type accepted")
	}
}
