package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/synthetic"
	"clonos/internal/types"
)

// GuaranteeOptions scales the §5.4 ablation.
type GuaranteeOptions struct {
	Rate      int
	Records   int64
	Synthetic synthetic.Config
}

// DefaultGuaranteeOptions returns laptop-scale settings.
func DefaultGuaranteeOptions() GuaranteeOptions {
	syn := synthetic.DefaultConfig()
	syn.Depth = 2
	syn.Keys = 16
	return GuaranteeOptions{Rate: 5000, Records: 20000, Synthetic: syn}
}

// GuaranteeRow is one guarantee level's outcome under a mid-run failure.
type GuaranteeRow struct {
	Label      string
	Expected   int64
	Delivered  int64
	Duplicates uint64
	Lost       int64
	// Recovery is failure→replacement-live (detection + activation); the
	// §7.4 latency metric is undefined for a bounded drain-to-EOS run.
	Recovery   time.Duration
	RecoveryOK bool
}

// Guarantees reproduces the §5.4 trade-off: the same bounded workload with
// a mid-run failure under exactly-once, at-least-once (DSD=0), and
// at-most-once Clonos configurations plus the global-rollback baseline,
// counting delivered, duplicated, and lost records at the sink.
func Guarantees(w io.Writer, opt GuaranteeOptions) ([]GuaranteeRow, error) {
	configs := []struct {
		label     string
		cfg       func() job.Config
		sinkDedup bool
	}{
		{"clonos exactly-once", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.Guarantee = job.ExactlyOnce
			c.DSD = 0
			return c
		}, true},
		{"clonos at-least-once (DSD=0)", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.Guarantee = job.AtLeastOnce
			return c
		}, false},
		{"clonos at-most-once (gap)", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeClonos
			c.Guarantee = job.AtMostOnce
			return c
		}, false},
		{"flink global rollback", func() job.Config {
			c := job.DefaultConfig()
			c.Mode = job.ModeGlobal
			c.Standby = false
			return c
		}, true},
	}

	var rows []GuaranteeRow
	for _, conf := range configs {
		syn := opt.Synthetic
		res, err := Run(RunSpec{
			Name:      "guarantee-" + conf.label,
			Cfg:       conf.cfg(),
			SinkDedup: conf.sinkDedup,
			NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
			Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
				return synthetic.Build(topic, sink, syn), nil
			},
			StartDriver: func(topic *kafkasim.Topic) func() {
				d := synthetic.Drive(topic, syn, opt.Rate, opt.Records)
				d.Start()
				return d.Stop
			},
			Duration: time.Duration(opt.Records/int64(opt.Rate))*time.Second + 6*time.Second,
			Failures: []FailurePlan{{
				After: time.Duration(float64(opt.Records) / float64(opt.Rate) * 0.4 * float64(time.Second)),
				Task:  types.TaskID{Vertex: 1, Subtask: 0},
			}},
		})
		if err != nil {
			return rows, err
		}
		row := GuaranteeRow{
			Label:      conf.label,
			Expected:   opt.Records,
			Delivered:  int64(res.SinkCount),
			Duplicates: res.Duplicates,
		}
		if row.Delivered < row.Expected {
			row.Lost = row.Expected - row.Delivered
		}
		// Detection→replacement-live is the meaningful time metric for a
		// bounded run (the §7.4 latency-settling metric is undefined once
		// the input drains to EOS).
		sum := summarizeRecovery(res, 0)
		row.Recovery, row.RecoveryOK = sum.Activation, sum.Activation > 0
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "guarantee %-30s delivered=%6d/%d dup=%4d lost=%5d\n",
				conf.label, row.Delivered, row.Expected, row.Duplicates, row.Lost)
		}
	}
	if w != nil {
		PrintGuarantees(w, rows)
	}
	return rows, nil
}

// PrintGuarantees renders the §5.4 table.
func PrintGuarantees(w io.Writer, rows []GuaranteeRow) {
	fmt.Fprintln(w, "\n§5.4 — processing guarantees under a mid-run failure")
	var tbl [][]string
	for _, r := range rows {
		over := int64(0)
		if r.Delivered > r.Expected {
			over = r.Delivered - r.Expected
		}
		tbl = append(tbl, []string{
			r.Label,
			fmt.Sprintf("%d", r.Expected),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", over+int64(r.Duplicates)),
			fmt.Sprintf("%d", r.Lost),
			fmtDur(r.Recovery, r.RecoveryOK),
		})
	}
	table(w, []string{"configuration", "input", "delivered", "duplicates", "lost", "replacement live"}, tbl)
}
