package harness

import (
	"fmt"
	"io"
	"time"

	"clonos/internal/audit"
	"clonos/internal/faultinject"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/synthetic"
	"clonos/internal/types"
)

// MatrixOptions shapes the recovery-under-load benchmark matrix: a sweep
// over load fraction x keyed-state size x failure type on the synthetic
// pipeline, measuring recovery time and output latency per cell.
type MatrixOptions struct {
	// Synthetic is the pipeline template; Keys/CPUWorkIters come from it,
	// StateBytesPerKey is overridden per cell.
	Synthetic synthetic.Config
	// BaseRate is the generator rate at load fraction 1.0 (events/s).
	BaseRate int
	// Duration per cell run; failures anchor to fractions of it.
	Duration time.Duration
	// StaggerGap separates the staggered failures.
	StaggerGap time.Duration
	// Repeats takes the median recovery over this many runs per cell.
	Repeats int
	// Loads are the swept load fractions of BaseRate (e.g. 0.5, 1.0).
	Loads []float64
	// StateSizes are the swept per-key state sizes in bytes.
	StateSizes []int
	// Failures are the swept failure types; see MatrixFailureTypes.
	Failures []string
	// Modes are the swept checkpoint modes; see MatrixCheckpointModes.
	// Empty means aligned-only (the pre-mode-axis grid).
	Modes []string
}

// MatrixCheckpointModes lists the checkpoint-mode axis values:
//
//	aligned    barrier alignment gates already-barriered channels until
//	           the last barrier arrives (the default task configuration)
//	unaligned  always-on unaligned checkpointing: the task snapshots on
//	           the first barrier and logs in-flight input instead of
//	           gating channels
//
// The mode decides which crash point the "alignment" failure cell arms:
// align/blocked never fires in unaligned mode (no channel is ever
// gated), so the unaligned cell kills inside the capture window at
// unaligned/snapshot instead — without the explicit selection the kill
// would silently never land and the cell would measure a failure-free
// run.
var MatrixCheckpointModes = []string{"aligned", "unaligned"}

// MatrixFailureTypes lists the supported failure-type axis values:
//
//	single      one operator failure (stage1, i.e. v2[0]) at 40% of the run
//	staggered   three failures on stages 0..2, StaggerGap apart
//	concurrent  three simultaneous failures on stages 0..2
//	alignment   a crash-point kill the instant v2[0] blocks a channel for
//	            barrier alignment (kill=align/blocked@v2[0]#skip, the skip
//	            delaying the kill to ~40% of the run) — the failure lands
//	            mid-checkpoint, the worst case for rollback cost
var MatrixFailureTypes = []string{"single", "staggered", "concurrent", "alignment"}

// DefaultMatrixOptions returns the committed-baseline grid: 2 loads x
// 2 state sizes x 4 failure types x 2 checkpoint modes = 32 cells.
func DefaultMatrixOptions() MatrixOptions {
	syn := synthetic.DefaultConfig()
	syn.Parallelism = 2
	syn.Depth = 3
	return MatrixOptions{
		Synthetic:  syn,
		BaseRate:   4500,
		Duration:   12 * time.Second,
		StaggerGap: 1500 * time.Millisecond,
		Repeats:    1,
		Loads:      []float64{0.5, 1.0},
		StateSizes: []int{1024, 8192},
		Failures:   MatrixFailureTypes,
		Modes:      MatrixCheckpointModes,
	}
}

// SmokeMatrixOptions returns the small 2x2x2x2 grid CI runs: both loads,
// both state sizes, both checkpoint modes, but only the two cheap
// single-run failure types.
func SmokeMatrixOptions() MatrixOptions {
	opt := DefaultMatrixOptions()
	opt.Duration = 10 * time.Second
	opt.Failures = []string{"single", "alignment"}
	return opt
}

// MatrixCell is one populated cell of the recovery matrix: the swept
// coordinates plus the median recovery and latency measurements.
type MatrixCell struct {
	Load             float64 `json:"load"`
	Rate             int     `json:"rate_per_s"`
	StateBytesPerKey int     `json:"state_bytes_per_key"`
	Failure          string  `json:"failure"`
	// Mode is the checkpoint mode the cell ran (schema >= 3); legacy
	// reports default to "aligned" on load.
	Mode string `json:"mode,omitempty"`

	DetectionMs     float64 `json:"detection_ms"`
	RecoveryMs      float64 `json:"recovery_ms"`
	RecoveryOK      bool    `json:"recovery_ok"`
	ThroughputGapMs float64 `json:"throughput_gap_ms"`
	LatencyP50Ms    int64   `json:"latency_p50_ms"`
	LatencyP99Ms    int64   `json:"latency_p99_ms"`

	SteadyThroughput float64 `json:"steady_throughput_per_s"`
	SinkRecords      int     `json:"sink_records"`
	GlobalRestart    bool    `json:"global_restart"`
	Repeats          int     `json:"repeats"`
	// AuditViolations totals the audit-plane violations across every
	// repeat of the cell (schema >= 2; every cell runs audit-armed and a
	// healthy run reports zero).
	AuditViolations uint64 `json:"audit_violations"`
	// Recoveries carries every repeat's raw sample behind the median.
	Recoveries []RecoverySample `json:"recoveries,omitempty"`
}

// MatrixSchemaVersion is the report schema RunMatrix emits. Version 2
// added per-cell audit_violations (cells run with the audit plane
// armed). Version 3 added the checkpoint-mode axis; older cells load
// with mode "aligned", which is what they ran. Version 0/1 reports —
// the committed legacy baseline — carry no schema field and are
// accepted without audit checks.
const MatrixSchemaVersion = 3

// MatrixReport is the JSON payload of one matrix sweep (the committed
// BENCH_recovery_matrix.json wraps this in a BenchReport).
type MatrixReport struct {
	Schema     int          `json:"schema,omitempty"`
	Loads      []float64    `json:"loads"`
	StateSizes []int        `json:"state_sizes"`
	Failures   []string     `json:"failures"`
	Modes      []string     `json:"modes,omitempty"`
	Cells      []MatrixCell `json:"cells"`
}

// matrixFailurePlan returns the harness-injected failures and the extra
// run time a cell's failure type needs (multi-failure backlogs must drain
// before the §7.4 settle metric can observe recovery).
func matrixFailurePlan(failure string, opt MatrixOptions) (plans []FailurePlan, extra time.Duration, err error) {
	switch failure {
	case "single":
		plans = []FailurePlan{{
			After: time.Duration(float64(opt.Duration) * 0.4),
			Task:  types.TaskID{Vertex: 2, Subtask: 0},
		}}
	case "staggered", "concurrent":
		failAt := time.Duration(float64(opt.Duration) * 0.35)
		for i := 0; i < 3 && i < opt.Synthetic.Depth; i++ {
			after := failAt
			if failure == "staggered" {
				after += time.Duration(i) * opt.StaggerGap
			}
			plans = append(plans, FailurePlan{
				After: after,
				Task:  types.TaskID{Vertex: types.VertexID(i + 1), Subtask: 0},
			})
		}
		extra = 2*opt.StaggerGap + 5*time.Second
	case "alignment":
		// No harness plan: the crash-point injector kills v2[0] from
		// inside the alignment path (armed per run in RunMatrix).
		extra = 2 * time.Second
	default:
		err = fmt.Errorf("matrix: unknown failure type %q (want one of %v)", failure, MatrixFailureTypes)
	}
	return plans, extra, err
}

// alignmentFailAt extracts the failure instant of a crash-point cell: the
// first fault-injected event, falling back to the first detection.
func alignmentFailAt(res RunResult) (time.Time, bool) {
	for _, ev := range res.Events {
		if ev.Kind == job.EventFaultInjected {
			return ev.Time, true
		}
	}
	for _, ev := range res.Events {
		if ev.Kind == job.EventFailureDetected {
			return ev.Time, true
		}
	}
	return time.Time{}, false
}

// RunMatrix sweeps the full grid and returns the populated report. Every
// cell runs the Clonos configuration (full DSD, standbys) — the matrix
// measures how Clonos recovery scales with load, state, and failure
// shape, not a cross-system comparison.
func RunMatrix(w io.Writer, opt MatrixOptions) (*MatrixReport, error) {
	repeats := opt.Repeats
	if repeats < 1 {
		repeats = 1
	}
	modes := opt.Modes
	if len(modes) == 0 {
		modes = []string{"aligned"}
	}
	report := &MatrixReport{Schema: MatrixSchemaVersion, Loads: opt.Loads, StateSizes: opt.StateSizes, Failures: opt.Failures, Modes: modes}
	total := len(opt.Loads) * len(opt.StateSizes) * len(opt.Failures) * len(modes)
	n := 0
	for _, load := range opt.Loads {
		for _, stateBytes := range opt.StateSizes {
			for _, failure := range opt.Failures {
				for _, mode := range modes {
					n++
					if w != nil {
						fmt.Fprintf(w, "matrix cell %d/%d: load=%.2f state=%dB failure=%s mode=%s\n", n, total, load, stateBytes, failure, mode)
					}
					cell, err := runMatrixCell(load, stateBytes, failure, mode, opt, repeats)
					if err != nil {
						return nil, fmt.Errorf("matrix cell load=%.2f state=%d failure=%s mode=%s: %w", load, stateBytes, failure, mode, err)
					}
					report.Cells = append(report.Cells, cell)
				}
			}
		}
	}
	if w != nil {
		PrintMatrix(w, report)
	}
	return report, nil
}

func runMatrixCell(load float64, stateBytes int, failure, mode string, opt MatrixOptions, repeats int) (MatrixCell, error) {
	if mode != "aligned" && mode != "unaligned" {
		return MatrixCell{}, fmt.Errorf("matrix: unknown checkpoint mode %q (want one of %v)", mode, MatrixCheckpointModes)
	}
	syn := opt.Synthetic
	syn.StateBytesPerKey = stateBytes
	rate := int(float64(opt.BaseRate) * load)
	plans, extra, err := matrixFailurePlan(failure, opt)
	if err != nil {
		return MatrixCell{}, err
	}
	dur := opt.Duration + extra

	var runs []RunResult
	var sums []recoverySummary
	var auditTotal uint64
	for rep := 0; rep < repeats; rep++ {
		cfg := job.DefaultConfig()
		cfg.Mode = job.ModeClonos
		cfg.DSD = 0 // full sharing depth, as in the multi-failure experiments
		// Every cell runs audit-armed (schema 2): the matrix doubles as a
		// continuous false-positive check, and a real divergence under
		// load surfaces as a non-zero audit_violations count the
		// validator rejects.
		aud := audit.New()
		cfg.Audit = aud
		cfg.UnalignedCheckpoints = mode == "unaligned"
		if failure == "alignment" {
			// The crash-point analyzer reserves Point constants for their
			// single production call site; schedules are built from the
			// replayable artifact format instead. The kill point must match
			// the checkpoint mode: align/blocked fires once per alignment at
			// a 2-input task, but never in unaligned mode (no channel is
			// gated), where the equivalent mid-checkpoint instant is the
			// unaligned/snapshot capture switch. Either point fires once per
			// checkpoint, so skipping occurrences delays the kill to ~40% of
			// the run — an early kill leaves too small a pre-failure window
			// for the §7.4 settle baseline.
			point := "align/blocked"
			if mode == "unaligned" {
				point = "unaligned/snapshot"
			}
			skip := int(float64(opt.Duration)*0.4/float64(cfg.CheckpointInterval)) - 1
			if skip < 0 {
				skip = 0
			}
			sched, perr := faultinject.Parse(fmt.Sprintf("kill=%s@v2[0]#%d", point, skip))
			if perr != nil {
				return MatrixCell{}, perr
			}
			cfg.Faults = faultinject.New(sched)
		}
		res, err := Run(RunSpec{
			Name:      fmt.Sprintf("matrix-%s-%s-l%.2f-s%d", failure, mode, load, stateBytes),
			Cfg:       cfg,
			SinkDedup: true,
			NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
			Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
				return synthetic.Build(topic, sink, syn), nil
			},
			StartDriver: func(topic *kafkasim.Topic) func() {
				d := synthetic.Drive(topic, syn, rate, 0)
				d.Start()
				return d.Stop
			},
			Duration: dur,
			Failures: plans,
		})
		if err != nil {
			return MatrixCell{}, err
		}
		auditTotal += aud.Total()
		runs = append(runs, res)
		if failure == "alignment" {
			if failAt, ok := alignmentFailAt(res); ok {
				sums = append(sums, summarizeRecoveryAt(res, failAt))
			} else {
				// The alignment point never fired (e.g. the run ended
				// before the first checkpoint): record an unsettled cell
				// rather than inventing a failure instant.
				sums = append(sums, recoverySummary{})
			}
		} else {
			sums = append(sums, summarizeRecovery(res, len(plans)-1))
		}
	}

	med, idx := medianSummary(sums)
	rep := runs[idx]
	cell := MatrixCell{
		Load:             load,
		Rate:             rate,
		StateBytesPerKey: stateBytes,
		Failure:          failure,
		Mode:             mode,
		DetectionMs:      float64(med.Detection.Milliseconds()),
		RecoveryMs:       float64(med.Recovery.Milliseconds()),
		RecoveryOK:       med.RecoveryOK,
		ThroughputGapMs:  float64(med.ThroughputGap.Milliseconds()),
		SteadyThroughput: SteadyThroughput(rep.Samples, 0.2),
		SinkRecords:      rep.SinkCount,
		GlobalRestart:    med.Restarted,
		Repeats:          repeats,
		AuditViolations:  auditTotal,
		Recoveries:       recoverySamples(sums),
	}
	cell.LatencyP50Ms, cell.LatencyP99Ms = LatencyPercentiles(rep.Latency)
	return cell, nil
}

// PrintMatrix renders the populated grid as an aligned table.
func PrintMatrix(w io.Writer, report *MatrixReport) {
	fmt.Fprintf(w, "\nrecovery-under-load matrix (%d cells, clonos full-DSD)\n", len(report.Cells))
	var rows [][]string
	for _, c := range report.Cells {
		mode := c.Mode
		if mode == "" {
			mode = "aligned"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c.Load),
			fmt.Sprintf("%d", c.StateBytesPerKey),
			c.Failure,
			mode,
			fmtDur(time.Duration(c.DetectionMs)*time.Millisecond, c.DetectionMs > 0),
			fmtDur(time.Duration(c.RecoveryMs)*time.Millisecond, c.RecoveryOK),
			fmt.Sprintf("%dms", c.LatencyP50Ms),
			fmt.Sprintf("%dms", c.LatencyP99Ms),
			fmt.Sprintf("%.0f/s", c.SteadyThroughput),
			fmt.Sprintf("%v", c.GlobalRestart),
			fmt.Sprintf("%d", c.AuditViolations),
		})
	}
	table(w, []string{"load", "state(B)", "failure", "mode", "detect", "recovery(10% lat)", "lat p50", "lat p99", "tput", "global restart", "audit"}, rows)
}
