package job

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/operator"
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// enriched is the output of the nondeterministic enrichment operator.
type enriched struct {
	In      int64
	Version uint64 // external-world version observed for this record
	Stamp   int64  // wall-clock read through the Timestamp service
	Rand    int64  // value from the RNG service
}

func init() { statestore.Register(enriched{}) }

// nondetPipeline builds source -> enrich (HTTP + timestamp + RNG) -> sink.
// The enrichment is genuinely nondeterministic: plain re-execution would
// observe different external versions, timestamps, and random numbers.
func nondetPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, world *services.ExternalWorld) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", 1, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 50})
	enrich := g.AddVertex("enrich", 1, nil, operator.Map("enrich", func(ctx operator.Context, e types.Element) (any, bool, error) {
		resp, err := ctx.Services().HTTPGet("svc/price")
		if err != nil {
			return nil, false, err
		}
		version := binary.BigEndian.Uint64(resp[len(resp)-8:])
		ts, err := ctx.Services().CurrentTimeMillis()
		if err != nil {
			return nil, false, err
		}
		rnd, err := ctx.Services().RandomInt63()
		if err != nil {
			return nil, false, err
		}
		return enriched{In: e.Value.(int64), Version: version, Stamp: ts, Rand: rnd}, true, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, enrich, PartitionHash, nil, nil)
	g.Connect(enrich, sinkV, PartitionHash, nil, nil)
	return g
}

// TestNondeterministicOperatorExactlyOnce is the paper's headline claim:
// a failed nondeterministic operator recovers locally with exactly-once
// semantics — external calls are not re-issued, and the regenerated
// output is identical to what the predecessor produced.
func TestNondeterministicOperatorExactlyOnce(t *testing.T) {
	const n = 3000
	world := services.NewExternalWorld()
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := nondetPipeline(topic, sink, world)
	cfg := quickConfig(ModeClonos)
	cfg.World = world
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 3000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 4), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}

	recs := sink.All()
	if len(recs) != n {
		t.Fatalf("sink has %d records, want %d", len(recs), n)
	}
	// Exactly-once external interaction: one call per record, except the
	// bounded tail the failed task processed after its last dispatch —
	// those determinants died unshared (no process depends on them,
	// §5.3), so recovery legitimately re-executes the calls.
	if world.Calls() < n {
		t.Fatalf("external world served %d calls, want >= %d", world.Calls(), n)
	}
	if extra := world.Calls() - n; extra > 500 {
		t.Fatalf("recovery re-issued %d calls; logged responses not replayed", extra)
	}
	// No observed result may be consumed twice.
	seen := make(map[uint64]bool, n)
	for _, rec := range recs {
		v := rec.Value.(enriched).Version
		if v == 0 || v > world.Calls() || seen[v] {
			t.Fatalf("version %d duplicated or out of range", v)
		}
		seen[v] = true
	}
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart: %+v", ev)
		}
	}
}

// procWindowPipeline: source -> processing-time window count -> sink.
// Processing-time windows are nondeterministic (they depend on the local
// clock); Clonos must still deliver every record's effect exactly once.
func procWindowPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", 1, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 50})
	win := g.AddVertex("win", 1, nil, operator.Window("pcount",
		operator.WindowSpec{Kind: operator.TumblingProcessingTime, Size: 50}, operator.Count(), false))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, win, PartitionHash, nil, nil)
	g.Connect(win, sinkV, PartitionHash, nil, nil)
	return g
}

func TestProcessingTimeWindowSurvivesFailure(t *testing.T) {
	const n = 3000
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := procWindowPipeline(topic, sink)
	cfg := quickConfig(ModeClonos)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 3), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	var total int64
	for _, rec := range sink.All() {
		total += rec.Value.(int64)
	}
	if total != n {
		t.Fatalf("window counts sum to %d, want %d (exactly-once violated)", total, n)
	}
}

// deepPipeline: src(p) -> s1(p) -> s2(p) -> sink(1), keyed sums at both
// middle stages so state correctness is observable end to end.
func deepPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 25})
	s1 := g.AddVertex("s1", p, nil, operator.Map("add1", func(ctx operator.Context, e types.Element) (any, bool, error) {
		return e.Value.(int64) + 1, true, nil
	}))
	s2 := g.AddVertex("s2", p, nil, operator.KeyedReduce("sum", func(ctx operator.Context, acc any, e types.Element) (any, error) {
		s, _ := acc.(statefulValue)
		s.Total += e.Value.(int64)
		return s, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, s1, PartitionHash, nil, nil)
	g.Connect(s1, s2, PartitionHash, nil, nil)
	g.Connect(s2, sinkV, PartitionHash, nil, nil)
	return g
}

// slowDeepPipeline is deepPipeline with a per-record processing delay in
// the keyed stage. With the generator outrunning s2's service rate the
// input channels carry a standing backlog, so unaligned capture windows
// opened by the fault sweep log real in-flight buffers instead of
// draining an empty queue. Same oracle as deepPipeline.
func slowDeepPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int, delay time.Duration) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 25})
	s1 := g.AddVertex("s1", p, nil, operator.Map("add1", func(ctx operator.Context, e types.Element) (any, bool, error) {
		return e.Value.(int64) + 1, true, nil
	}))
	s2 := g.AddVertex("s2", p, nil, operator.KeyedReduce("sum", func(ctx operator.Context, acc any, e types.Element) (any, error) {
		time.Sleep(delay)
		s, _ := acc.(statefulValue)
		s.Total += e.Value.(int64)
		return s, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, s1, PartitionHash, nil, nil)
	g.Connect(s1, s2, PartitionHash, nil, nil)
	g.Connect(s2, sinkV, PartitionHash, nil, nil)
	return g
}

func expectedDeepSums(n int, keys uint64) map[uint64]int64 {
	out := make(map[uint64]int64)
	for i := 0; i < n; i++ {
		out[uint64(i)%keys] += int64(i) + 1
	}
	return out
}

// runDeepFailure runs the deep pipeline, waits for a checkpoint, applies
// the failure plan, and returns final sums.
func runDeepFailure(t *testing.T, cfg Config, n int, keys uint64, plan func(r *Runtime)) (map[uint64]int64, *Runtime) {
	t.Helper()
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(cfg.Guarantee == ExactlyOnce || cfg.Mode == ModeGlobal)
	g := deepPipeline(topic, sink, 2)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)

	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < int64(n)
	})
	gen.Start()
	t.Cleanup(gen.Stop)

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	plan(r)
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("job did not finish; errors: %v events: %v", r.Errors(), r.Events())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	return finalSums(sink), r
}

func TestSourceFailureRecovery(t *testing.T) {
	const n = 4000
	sums, r := runDeepFailure(t, quickConfig(ModeClonos), n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 0, Subtask: 1}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "source failure")
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart: %+v", ev)
		}
	}
}

func TestSinkFailureRecovery(t *testing.T) {
	const n = 4000
	sums, _ := runDeepFailure(t, quickConfig(ModeClonos), n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 3, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "sink failure")
}

func TestStaggeredFailures(t *testing.T) {
	const n = 6000
	cfg := quickConfig(ModeClonos)
	sums, r := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(600 * time.Millisecond)
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 1}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "staggered failures")
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart: %+v", ev)
		}
	}
}

func TestConcurrentConnectedFailuresFullDSD(t *testing.T) {
	const n = 6000
	cfg := quickConfig(ModeClonos)
	cfg.DSD = 0 // full: determinants survive consecutive failures
	sums, r := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		// Connected dataflow: s1[0] feeds s2[0] (hash shuffle).
		if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "concurrent failures")
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart with full DSD: %+v", ev)
		}
	}
}

func TestConcurrentConnectedFailuresShallowDSDFallsBack(t *testing.T) {
	const n = 6000
	cfg := quickConfig(ModeClonos)
	cfg.DSD = 1 // too shallow for two consecutive failures
	sums, r := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	// Consistency is preserved by falling back to a global rollback.
	checkSums(t, sums, expectedDeepSums(n, 5), "shallow DSD fallback")
	sawFallback := false
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart || ev.Kind == EventOrphanFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Log("note: failures resolved without fallback (downstream had not consumed the epoch)")
	}
}

func TestGlobalModeFailureRecovery(t *testing.T) {
	const n = 4000
	sums, r := runDeepFailure(t, quickConfig(ModeGlobal), n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "global rollback")
	sawRestart := false
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			sawRestart = true
		}
	}
	if !sawRestart {
		t.Fatal("global mode recovered without a global restart")
	}
}

func TestAtLeastOnceAllowsDuplicatesButNoLoss(t *testing.T) {
	const n = 4000
	cfg := quickConfig(ModeClonos)
	cfg.Guarantee = AtLeastOnce
	sums, _ := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	want := expectedDeepSums(n, 5)
	for k, w := range want {
		if sums[k] < w {
			t.Errorf("at-least-once lost data: key %d sum %d < %d", k, sums[k], w)
		}
	}
}

func TestAtMostOnceAllowsLossButNoDuplicates(t *testing.T) {
	const n = 4000
	cfg := quickConfig(ModeClonos)
	cfg.Guarantee = AtMostOnce
	sums, _ := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	want := expectedDeepSums(n, 5)
	for k, w := range want {
		if sums[k] > w {
			t.Errorf("at-most-once duplicated data: key %d sum %d > %d", k, sums[k], w)
		}
	}
}

func TestFailureBeforeFirstCheckpoint(t *testing.T) {
	const n = 3000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	cfg.CheckpointInterval = 10 * time.Second // effectively never during the run
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 5, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	time.Sleep(200 * time.Millisecond)
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 1}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	checkSums(t, finalSums(sink), expectedSums(n, 5), "failure before first checkpoint")
}

func TestRepeatedFailuresSameTask(t *testing.T) {
	const n = 8000
	cfg := quickConfig(ModeClonos)
	sums, _ := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		for round := 0; round < 3; round++ {
			next := r.LatestCompletedCheckpoint() + 1
			if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
				t.Fatal(err)
			}
			// A checkpoint completing after the injection proves the job
			// recovered and made progress; only then inject the next one.
			if !r.WaitForCheckpoint(next, 15*time.Second) {
				t.Fatalf("no checkpoint after failure round %d: %v", round, r.Errors())
			}
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "repeated failures")
}

func TestEventsRecorded(t *testing.T) {
	const n = 2000
	_, r := runDeepFailure(t, quickConfig(ModeClonos), n, 3, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	var kinds []EventKind
	for _, ev := range r.Events() {
		kinds = append(kinds, ev.Kind)
	}
	for _, want := range []EventKind{EventFailureInjected, EventFailureDetected, EventStandbyActivated, EventCheckpointDone} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("event %s missing from %v", want, kinds)
		}
	}
}

func TestTaskRecordCounts(t *testing.T) {
	const n = 500
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	fillTopic(topic, n, 3)
	g := buildLinear(topic, sink, 1)
	r := runToCompletion(t, g, quickConfig(ModeClonos), 30*time.Second)
	in, _ := r.TaskRecordCounts(types.VertexID(1))
	if in != n {
		t.Fatalf("map stage consumed %d records, want %d", in, n)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits

// TestFailureDuringRecovery kills a task, then kills its just-activated
// standby while the standby is still in causally guided replay: the
// detector must notice the second crash (a recovering task is not exempt
// from detection) and recover again, preserving exactly-once.
func TestFailureDuringRecovery(t *testing.T) {
	const n = 6000
	cfg := quickConfig(ModeClonos)
	sums, _ := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		victim := types.TaskID{Vertex: 2, Subtask: 0}
		if err := r.InjectFailure(victim); err != nil {
			t.Fatal(err)
		}
		// Wait for the standby to activate, then kill it immediately —
		// with high probability mid-replay.
		if !r.WaitForEvent(15*time.Second, func(ev Event) bool {
			return ev.Kind == EventStandbyActivated && ev.Task == victim
		}) {
			t.Fatal("standby never activated")
		}
		if err := r.InjectFailure(victim); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "failure during recovery")
}
