package job

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"clonos/internal/audit"
	"clonos/internal/buffer"
	"clonos/internal/causal"
	"clonos/internal/checkpoint"
	"clonos/internal/faultinject"
	"clonos/internal/inflight"
	"clonos/internal/netstack"
	"clonos/internal/obs"
	"clonos/internal/operator"
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/timers"
	"clonos/internal/types"
)

// taskState tracks a task's lifecycle.
type taskState int32

const (
	stateCreated taskState = iota
	stateRunning
	stateRecovering
	stateFinished
	stateCrashed
)

type mailKind int

const (
	mailTimer mailKind = iota
	mailRPC
)

// mailEvent is one asynchronous event delivered to the task's main loop:
// a processing-time timer firing or a checkpoint-trigger RPC. Routing
// through the mailbox serializes these with record processing so they can
// be causally logged with an exact input offset.
type mailEvent struct {
	kind  mailKind
	timer timers.Timer
	cp    types.CheckpointID
}

// Task is one parallel instance of a vertex: the main-thread loop, its
// timer and flusher threads, input gate, output channels, state, and the
// causal subsystem.
//
// The snapcov analyzer verifies that every checked state field below
// round-trips through the pair named here (or is explicitly declared
// scratch with a reason).
//
//clonos:state mainthread snapshot=buildSnapshot restore=restore
type Task struct {
	id     types.TaskID
	vertex *Vertex
	env    *Runtime

	inIDs   []types.ChannelID
	inPorts []int
	gate    *netstack.Gate
	desers  []*netstack.Deserializer

	outEdges []*taskOutEdge
	allOut   []*outChannel
	logPool  *buffer.Pool

	store    *statestore.Store
	timerSvc *timers.Service
	causal   *causal.Manager // nil unless Clonos exactly-once
	// audit is the job's armed auditor, nil unless Config.Audit is set
	// AND the guarantee is exactly-once (the stream invariants are only
	// sound when replay is byte-deterministic). Hook sites nil-check this
	// handle so the disarmed hot path costs one predictable branch.
	audit *audit.Auditor
	// markerFromSource flags input channels fed directly by a source
	// vertex, the only channels whose latency-marker stamps are monotone
	// (fan-in merges legitimately interleave stamps). Set only when audit
	// is armed.
	markerFromSource []bool
	svcs             *services.Services
	chn              *chain
	srcCtx           *opContext

	mailbox chan mailEvent
	abort   chan struct{}
	crashed atomic.Bool
	state   atomic.Int32
	done    chan struct{}

	// Main-thread execution state (no locking: main loop only). The
	// line-annotated fields publish atomic shadows below for off-thread
	// readers; the mainthread analyzer enforces the split.
	epoch types.EpochID
	// offset restarts at 0 on restore: the durable source position lives
	// in the keyed state store and guided replay re-polls from the epoch
	// boundary, so the live counter is never persisted in the snapshot.
	//clonos:ephemeral restore resets to 0; durable source position lives in the keyed state store
	offset  uint64  //clonos:mainthread
	curWm   int64   //clonos:mainthread
	chanWms []int64 //clonos:mainthread
	// wmMin is the running minimum over chanWms, maintained incrementally
	// so each watermark element costs O(1) instead of a full channel scan
	// (rescans happen only when the minimum channel itself advances).
	wmMin    int64
	aligning bool
	//clonos:ephemeral alignment scratch; no alignment is in progress across a snapshot/restore boundary
	alignCp types.CheckpointID //clonos:mainthread
	barriersSeen []bool
	barriersLeft int
	eosSeen      []bool
	eosLeft      int
	rebalanceCtr *statestore.KeyedState
	replay       *replayCursor
	// pendingBatch holds source elements polled but not yet emitted; a
	// mid-batch snapshot persists them as SourceBacklog so restore
	// re-emits them instead of skipping to the post-batch offsets.
	pendingBatch []types.Element //clonos:mainthread
	sourceDone   bool
	// sinceMarker counts source records since the last latency marker.
	// Reset to 0 at every epoch roll so the count-based marker cadence is
	// deterministic per epoch and guided replay re-emits markers at the
	// identical stream positions.
	//clonos:ephemeral reset to 0 at every epoch roll; marker cadence restarts at the restored epoch boundary
	sinceMarker int //clonos:mainthread
	recordsIn   atomic.Uint64
	recordsOut  atomic.Uint64
	// alignStart is when the pending alignment's first barrier arrived.
	// Wall-clock is safe here: the stopwatch only feeds stall detection
	// and metrics, never replayed state or encoded bytes.
	//clonos:ephemeral alignment stopwatch for stall detection and metrics; never snapshotted or replayed
	alignStart time.Time //clonos:mainthread
	// blockStart records when each input channel was blocked for the
	// pending alignment (zero = not blocked). Main thread only.
	blockStart []time.Time

	// Unaligned-checkpoint capture state (main thread only). While
	// capturing, pendingSnap holds the already-built snapshot of
	// checkpoint captureCp, and capChans logs every pre-barrier message
	// still consumed on channels whose barrier has not arrived; when the
	// last pending channel's barrier (or EOS) is decoded, sealCapture
	// encodes the log into the snapshot and only then acks — so a
	// completed checkpoint always covers its logged in-flight input.
	capturing   bool
	captureCp   types.CheckpointID
	capChans    []capChannel
	capLeft     int
	pendingSnap *checkpoint.TaskSnapshot
	// restoredInFlight is the decoded in-flight section of a restored
	// unaligned snapshot; preloadInFlight injects it into the input path
	// at the top of run(), before any live or replayed input is consumed.
	restoredInFlight []statestore.InFlightChannel

	// Shadows of main-thread progress state, stored atomically so the
	// stall watchdog and callback gauges can read them off-thread.
	wmShadow      atomic.Int64
	chanWmShadow  []atomic.Int64
	offsetShadow  atomic.Uint64
	alignStartNs  atomic.Int64 // 0 = no alignment pending
	alignCpShadow atomic.Int64
	// replayPosShadow/replayTotalShadow publish guided-replay progress
	// (determinants consumed vs. recovered) for the progress gauges.
	replayPosShadow   atomic.Int64
	replayTotalShadow atomic.Int64

	heartbeatAt atomic.Int64
	lastErr     atomic.Value
	flushStop   chan struct{}
	// fullSnapshotNext forces the next snapshot to be full (first one of
	// an incarnation); later ones may be incremental (§6.4).
	fullSnapshotNext bool

	// metrics are the task's registry handles, shared across incarnations
	// of the same logical task (get-or-create by vertex/subtask labels).
	metrics *taskMetrics
	// recSpan is the recovery span this incarnation must finish (nil for
	// fresh tasks); the main thread marks replay-done/caught-up on it.
	recSpan atomic.Pointer[obs.Span]
}

// capChannel is the per-input capture state of one unaligned checkpoint:
// done flips when the channel's barrier arrives (nothing further belongs
// to the checkpoint), prefix is the deserializer's undecoded tail at
// snapshot time, and msgs are the pre-barrier messages consumed between
// the snapshot and the barrier.
type capChannel struct {
	done   bool
	prefix []byte
	msgs   []statestore.InFlightMessage
}

// taskOutEdge groups an edge's channels for partitioning.
type taskOutEdge struct {
	edge  *Edge
	chans []*outChannel
}

// replayCursor walks the recovered main-thread determinant log.
type replayCursor struct {
	dets []causal.Determinant
	pos  int
}

func (rc *replayCursor) hasNext() bool { return rc != nil && rc.pos < len(rc.dets) }
func (rc *replayCursor) peek() causal.Determinant {
	return rc.dets[rc.pos]
}

// window returns the determinants within n positions of the cursor, for
// diagnostics.
func (rc *replayCursor) window(n int) []causal.Determinant {
	lo := rc.pos - n
	if lo < 0 {
		lo = 0
	}
	hi := rc.pos + n
	if hi > len(rc.dets) {
		hi = len(rc.dets)
	}
	return rc.dets[lo:hi]
}

// newTask builds a task instance (running or standby) without touching
// the network; attachNetwork and start complete activation. Runs before
// the main thread exists, so it is single-threaded by construction.
//
//clonos:mainthread
func newTask(env *Runtime, vertex *Vertex, subtask int32) *Task {
	cfg := env.cfg
	t := &Task{
		id:               types.TaskID{Vertex: vertex.ID, Subtask: subtask},
		vertex:           vertex,
		env:              env,
		mailbox:          make(chan mailEvent, cfg.MailboxSize),
		abort:            make(chan struct{}),
		done:             make(chan struct{}),
		flushStop:        make(chan struct{}),
		store:            statestore.NewStore(),
		epoch:            1,
		curWm:            math.MinInt64,
		fullSnapshotNext: true,
	}
	t.rebalanceCtr = t.store.Keyed("__rebalance")
	t.timerSvc = timers.NewService(nil, t.onTimerFired)

	logging := cfg.Mode == ModeClonos && cfg.Guarantee != AtMostOnce
	if logging {
		t.logPool = buffer.NewPool(cfg.LogPoolBuffers, cfg.BufferSize)
	}
	if cfg.Mode == ModeClonos && cfg.Guarantee == ExactlyOnce {
		t.causal = causal.NewManager(t.id, cfg.effectiveDSD(env.graph))
	}

	t.metrics = newTaskMetrics(env.obs, vertex.Name, subtask)
	if t.logPool != nil {
		t.logPool.Instrument(poolWaitCounters(env.obs, vertex.Name, subtask, "inflight-log"))
		t.logPool.InstrumentStall(poolStallHistogram(env.obs, vertex.Name, subtask, "inflight-log"))
	}
	if t.causal != nil {
		t.causal.Instrument(causalMetrics(env.obs, vertex.Name, subtask))
	}
	if len(vertex.OutEdges) == 0 {
		t.metrics.latency = latencyHistogram(env.obs, vertex.Name, subtask)
	}

	var logger services.Logger
	if t.causal != nil {
		logger = t.causal
	} else {
		logger = noopLogger{}
	}
	svcCfg := services.Config{
		TimestampGranularityMs: cfg.TimestampGranularityMs,
		World:                  cfg.World,
	}
	if cfg.ServiceSeed != 0 {
		// Derive a per-task deterministic seed stream: mixing the vertex
		// and subtask into the job seed gives every task (and each of its
		// incarnations) the same distinct stream on every run.
		svcCfg.SeedSource = services.SeededSource(cfg.ServiceSeed ^
			(int64(vertex.ID)<<32 | int64(subtask) + 1))
	}
	t.svcs = services.New(svcCfg, logger, t, func(when int64) {
		t.timerSvc.RegisterProc(timers.Timer{HandlerID: tsRefreshHandler, When: when})
	})

	outWaits, outWaitNs := poolWaitCounters(env.obs, vertex.Name, subtask, "output")
	outStall := poolStallHistogram(env.obs, vertex.Name, subtask, "output")
	for _, e := range vertex.OutEdges {
		oe := &taskOutEdge{edge: e}
		for to := int32(0); to < int32(e.To.Parallelism); to++ {
			chID := channelID(e, subtask, to)
			outPool := buffer.NewPool(cfg.ChannelBuffers, cfg.BufferSize)
			outPool.Instrument(outWaits, outWaitNs)
			outPool.InstrumentStall(outStall)
			var log *inflight.Log
			if logging {
				l, err := inflight.NewLog(chID, t.logPool, cfg.InFlight)
				if err == nil {
					log = l
					log.Instrument(t.metrics.iflight)
					log.StartEpoch(1)
				}
			}
			oc := newOutChannel(t, chID, outPool, log)
			if t.causal != nil {
				t.causal.StartEpochChannel(chID, 1)
			}
			oe.chans = append(oe.chans, oc)
			t.allOut = append(t.allOut, oc)
		}
		t.outEdges = append(t.outEdges, oe)
	}

	t.inIDs, t.inPorts = inChannels(vertex, subtask)
	if cfg.Audit != nil && cfg.Guarantee == ExactlyOnce {
		t.audit = cfg.Audit
		t.markerFromSource = make([]bool, len(t.inIDs))
		for i, id := range t.inIDs {
			t.markerFromSource[i] = env.graph.Edges[id.Edge].From.Source != nil
		}
	}
	t.chanWms = make([]int64, len(t.inIDs))
	for i := range t.chanWms {
		t.chanWms[i] = math.MinInt64
	}
	t.recomputeWmMin()
	t.eosSeen = make([]bool, len(t.inIDs))
	t.eosLeft = len(t.inIDs)
	t.barriersSeen = make([]bool, len(t.inIDs))
	t.blockStart = make([]time.Time, len(t.inIDs))
	t.wmShadow.Store(math.MinInt64)
	t.chanWmShadow = make([]atomic.Int64, len(t.inIDs))
	for i := range t.chanWmShadow {
		t.chanWmShadow[i].Store(math.MinInt64)
	}

	t.chn = newChain(t)
	t.srcCtx = t.chn.sourceContext()
	if t.causal != nil {
		t.causal.StartEpochMain(1)
	}
	return t
}

// graph returns the job graph.
func (t *Task) graph() *Graph { return t.env.graph }

// attachNetwork creates the input gate, replacing any previous (broken)
// endpoints — the network-reconfiguration step of recovery (§6.2).
// accepting=false creates the endpoints closed until the recovery
// protocol's replay requests open them.
func (t *Task) attachNetwork(accepting bool) {
	if len(t.inIDs) > 0 {
		t.gate = netstack.NewGate(t.env.net, t.inIDs, t.env.cfg.EndpointCredit, accepting)
		t.gate.Instrument(t.metrics.ep)
		t.desers = nil
		for i, id := range t.inIDs {
			e := t.env.graph.Edges[id.Edge]
			t.desers = append(t.desers, netstack.NewDeserializer(e.CodecOrDefault()))
			if t.causal != nil {
				// Ingest piggybacked determinant deltas on arrival (the
				// causal log manager sits at the network layer, Fig. 3):
				// a recovering upstream's determinant request then covers
				// every buffer this task has received, including those
				// still queued ahead of the main thread.
				t.gate.Endpoint(i).AddOnAccept(func(m *netstack.Message) {
					if err := t.causal.Ingest(m.Delta); err != nil {
						t.fail(err)
					}
				})
			}
			if t.audit != nil {
				// Channel-stream auditor tap: record/verify every accepted
				// buffer's seq, epoch, and payload hash at the same point
				// recovery's LastPushed dedup contract is defined.
				chID := id
				t.gate.Endpoint(i).AddOnAccept(func(m *netstack.Message) {
					t.audit.OnDeliver(t.id, chID, m.Seq, m.Epoch, m.Data)
				})
			}
		}
		if t.crashed.Load() {
			// The task died before (or while) reconfiguring. A dead task
			// must never leave open endpoints behind: crash() already broke
			// the previous gate, so break this one too, or surviving
			// upstreams would park replayed sends on queues nobody drains —
			// and stay parked even after the next recovery replaces the
			// endpoints again.
			for i := 0; i < t.gate.NumChannels(); i++ {
				t.gate.Endpoint(i).Break()
			}
		}
	}
}

// restore loads a checkpoint into the task (standby activation or global
// rollback restart). Runs before the incarnation's main thread starts.
//
//clonos:mainthread
func (t *Task) restore(snap *checkpoint.TaskSnapshot) error {
	if err := t.store.Restore(snap.State); err != nil {
		return err
	}
	if err := t.timerSvc.Restore(snap.Timers); err != nil {
		return err
	}
	t.rebalanceCtr = t.store.Keyed("__rebalance")
	t.epoch = snap.Checkpoint + 1
	t.offset = 0
	t.fullSnapshotNext = true
	// Seed watermark merging exactly as the predecessor left it at the
	// epoch boundary — see the TaskSnapshot field docs for why guided
	// re-execution diverges without this.
	t.curWm = snap.CurWm
	t.wmShadow.Store(snap.CurWm)
	t.offsetShadow.Store(0)
	for i, id := range t.inIDs {
		if wm, ok := snap.ChanWms[id]; ok {
			t.chanWms[i] = wm
			t.chanWmShadow[i].Store(wm)
		}
	}
	t.recomputeWmMin()
	if t.causal != nil {
		t.causal.SeedForRecovery(snap.MainLogBase, snap.ChannelLogBase)
		t.causal.StartEpochMain(t.epoch)
	}
	for _, oc := range t.allOut {
		next := snap.NextSeq[oc.id]
		if next == 0 {
			next = 1
		}
		oc.restore(next, t.epoch)
		if t.causal != nil {
			t.causal.StartEpochChannel(oc.id, t.epoch)
		}
	}
	if len(snap.InFlight) > 0 {
		chans, err := statestore.DecodeInFlight(snap.InFlight)
		if err != nil {
			return err
		}
		t.restoredInFlight = chans
	}
	if len(snap.SourceBacklog) > 0 {
		// The predecessor snapshotted mid-batch: its source offsets
		// already cover these elements, so re-emit them before polling
		// again (see TaskSnapshot.SourceBacklog).
		t.pendingBatch = append([]types.Element(nil), snap.SourceBacklog...)
	}
	if a := t.audit; a != nil && snap.Fingerprint != 0 {
		// State attestation: the restored state must reproduce the digest
		// recorded over the predecessor's live state at snapshot time. The
		// timer bytes are re-encoded from the restored service (the set is
		// sorted, so the encoding round-trips deterministically).
		tb, err := t.timerSvc.Snapshot()
		if err != nil {
			return err
		}
		fp, err := audit.Fingerprint(t.store, tb, t.chanWms, t.curWm)
		if err != nil {
			return err
		}
		if !a.CheckFingerprint(t.id, snap.Checkpoint, snap.Fingerprint, fp) {
			return fmt.Errorf("job: %v: restored state fingerprint %016x does not match checkpoint %d's recorded %016x",
				t.id, fp, snap.Checkpoint, snap.Fingerprint)
		}
		t.env.recordEvent(EventAuditFingerprint, t.id, fmt.Sprintf("cp=%d fp=%016x verified", snap.Checkpoint, fp))
	}
	return nil
}

// setRecovery installs the recovered determinants for causally guided
// replay: the main-thread cursor and each output channel's buffer cuts.
func (t *Task) setRecovery(ex causal.Extracted) {
	if len(ex.Main) > 0 {
		t.replay = &replayCursor{dets: ex.Main}
	}
	t.replayTotalShadow.Store(int64(len(ex.Main)))
	t.replayPosShadow.Store(0)
	for _, oc := range t.allOut {
		for _, d := range ex.Channels[oc.id] {
			if d.Kind == causal.KindBufferSize {
				oc.writer.PushCut(int(d.Value))
			}
		}
	}
}

// start launches the task's threads.
func (t *Task) start() {
	if t.crashed.Load() {
		// The task died before launch (a fault injected mid-recovery):
		// nothing may run, but done must still close so shutdown does
		// not hang waiting for a main thread that never existed.
		close(t.done)
		return
	}
	t.registerGauges()
	t.state.Store(int32(stateRunning))
	t.heartbeatNow()
	t.timerSvc.Start()
	go t.heartbeater()
	go t.flusher()
	go t.run()
}

// heartbeater refreshes the heartbeat while the task process is alive —
// including while the main thread is legitimately blocked on
// backpressure. A crash stops it, which is what the detector sees.
func (t *Task) heartbeater() {
	period := t.env.cfg.HeartbeatTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-t.abort:
			return
		case <-tick.C:
			t.heartbeatNow()
		}
	}
}

// Replaying implements services.Replayer.
func (t *Task) Replaying() bool { return t.replay.hasNext() }

// Next implements services.Replayer: services consume TS/RNG/SERVICE
// determinants inline during guided replay (on the main thread).
//
//clonos:mainthread
func (t *Task) Next(kind causal.Kind) (causal.Determinant, error) {
	if !t.replay.hasNext() {
		return causal.Determinant{}, fmt.Errorf("task %v: determinant log exhausted", t.id)
	}
	d := t.replay.peek()
	if d.Kind != kind {
		return causal.Determinant{}, fmt.Errorf("task %v: replay wants %v, log has %v (pos %d/%d, offset %d, context %v)",
			t.id, kind, d.Kind, t.replay.pos, len(t.replay.dets), t.offset, t.replay.window(3))
	}
	t.replay.pos++
	return d, nil
}

// onTimerFired runs on the timer thread: enqueue into the mailbox.
func (t *Task) onTimerFired(tm timers.Timer) {
	select {
	case t.mailbox <- mailEvent{kind: mailTimer, timer: tm}:
	case <-t.abort:
	}
}

// TriggerCheckpoint delivers the coordinator's RPC (sources only).
func (t *Task) TriggerCheckpoint(cp types.CheckpointID) {
	select {
	case t.mailbox <- mailEvent{kind: mailRPC, cp: cp}:
	case <-t.abort:
	}
}

// NotifyCheckpointComplete truncates logs covered by a completed
// checkpoint (§4.3); safe off the main thread.
func (t *Task) NotifyCheckpointComplete(cp types.CheckpointID) {
	if t.causal != nil {
		t.causal.Truncate(cp)
	}
	for _, oc := range t.allOut {
		if oc.iflog != nil {
			oc.iflog.Truncate(cp)
		}
	}
	for _, op := range t.vertex.Operators {
		if aware, ok := op.(operator.CheckpointAware); ok {
			aware.OnCheckpointComplete(uint64(cp))
		}
	}
}

// crash simulates a task failure: the main loop aborts without flushing,
// pools close to unblock stuck threads, input endpoints break so senders
// observe a dead connection. All volatile state is lost with the object.
func (t *Task) crash() {
	if !t.crashed.CompareAndSwap(false, true) {
		return
	}
	if sp := t.recSpan.Swap(nil); sp != nil {
		sp.SetAttr("aborted", "crashed")
		sp.End()
	}
	t.state.Store(int32(stateCrashed))
	close(t.abort)
	if t.logPool != nil {
		t.logPool.Close()
	}
	for _, oc := range t.allOut {
		oc.outPool.Close()
	}
	if t.gate != nil {
		for i := 0; i < t.gate.NumChannels(); i++ {
			t.gate.Endpoint(i).Break()
		}
	}
	// Release deserializer-held payload references: a crashed receiver
	// must not strand surviving senders' buffers (their log pools would
	// otherwise starve waiting for recycles that never come).
	for _, d := range t.desers {
		d.Close()
	}
	t.timerSvc.Stop()
	close(t.flushStop)
}

// shutdown stops a task cleanly (job teardown), reusing the crash path.
func (t *Task) shutdown() {
	t.crash()
	<-t.done
	for _, oc := range t.allOut {
		oc.close()
	}
}

// fail reports an internal error and crashes the task; the failure
// detector then drives recovery exactly as for an injected failure.
func (t *Task) fail(err error) {
	t.lastErr.Store(err)
	t.env.reportTaskError(t.id, err)
	t.crash()
}

// crashPoint fires a named fault-injection crash point: a no-op unless an
// injector is armed and one of its kills matches (point, task). On a
// match the task crashes right here and the caller must unwind without
// executing the step the point guards.
func (t *Task) crashPoint(point string) bool {
	fi := t.env.cfg.Faults
	if fi == nil || !fi.Hit(point, t.id.String()) {
		return false
	}
	t.env.recordEvent(EventFaultInjected, t.id, point)
	t.crash()
	return true
}

func (t *Task) heartbeatNow() {
	t.heartbeatAt.Store(time.Now().UnixNano())
}

// flusher periodically flushes partial output buffers — the
// nondeterministic buffer cuts captured by BUFFERSIZE determinants.
func (t *Task) flusher() {
	tick := time.NewTicker(t.env.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.flushStop:
			return
		case <-tick.C:
			for _, oc := range t.allOut {
				if err := oc.writer.Flush(); err != nil {
					return
				}
			}
		}
	}
}

// run is the main thread.
func (t *Task) run() {
	defer close(t.done)
	if err := t.chn.open(); err != nil {
		t.fail(err)
		return
	}
	if t.vertex.Source != nil {
		if err := t.vertex.Source.Open(t.srcCtx); err != nil {
			t.fail(err)
			return
		}
	}
	t.preloadInFlight()
	if t.crashed.Load() {
		return
	}
	if t.replay.hasNext() {
		t.state.Store(int32(stateRecovering))
		if t.crashPoint(faultinject.PointReplayStart) {
			return
		}
		t.runReplay()
		if t.crashed.Load() {
			return
		}
		t.replayPosShadow.Store(int64(t.replay.pos))
		t.replay = nil
		if t.crashPoint(faultinject.PointReplayDone) {
			return
		}
		t.recSpan.Load().Mark("replay-done")
		t.state.Store(int32(stateRunning))
		t.env.onTaskLive(t.id)
	} else if t.env.cfg.Mode == ModeClonos {
		t.env.onTaskLive(t.id)
	}
	if t.vertex.Source != nil {
		// A recovered source has no input backlog: replay done means
		// caught up.
		t.finishRecoverySpan()
	}
	t.timerSvc.SetLive(true)
	if t.vertex.Source != nil {
		t.runSourceLive()
	} else {
		t.runLive()
	}
}

// finishRecoverySpan ends this incarnation's recovery span, if any: the
// task has processed its input backlog (or reached end-of-stream) and is
// fully caught up. Cheap when no recovery is pending (one atomic load).
func (t *Task) finishRecoverySpan() {
	if t.recSpan.Load() == nil {
		return
	}
	sp := t.recSpan.Swap(nil)
	if sp == nil {
		return
	}
	sp.Mark("caught-up")
	rec := sp.End()
	t.env.recordEvent(EventCaughtUp, t.id, "")
	t.env.observeRecovery(rec)
}

// loopTick is the shared top-of-iteration step of both task loops: it
// refreshes the watchdog heartbeat and arms the task/loop crash point.
// Keeping it factored gives PointTaskLoop a single non-test reference
// (the crashpoint analyzer enforces exactly one), so #occurrence
// schedules count iterations uniformly across live and source loops.
// Reports true when the injector consumed the point by crashing the task.
//
//clonos:mainthread
func (t *Task) loopTick() bool {
	t.heartbeatNow()
	return t.crashPoint(faultinject.PointTaskLoop)
}

// completeAlignment runs once the final barrier of an alignment is in
// (or EOS stood in for it): observe the alignment latency, notify the
// runtime, arm the align/complete crash point, then snapshot and reopen
// the gate. Shared by handleBarrier and eosCompletesAlignment so
// PointAlignComplete names exactly one protocol location.
//
//clonos:mainthread
func (t *Task) completeAlignment(cp types.CheckpointID) {
	t.metrics.align.ObserveSince(t.alignStart)
	t.env.onAlignmentComplete(cp, t.id)
	if t.crashPoint(faultinject.PointAlignComplete) {
		return
	}
	t.snapshot(cp)
	t.releaseAlignment()
}

// runLive is the normal-operation loop of a non-source task.
func (t *Task) runLive() {
	budget := t.env.cfg.AlignmentBudget
	for !t.crashed.Load() {
		if t.loopTick() {
			return
		}
		if startNs := t.alignStartNs.Load(); budget > 0 && startNs != 0 &&
			time.Since(time.Unix(0, startNs)) > budget {
			// The aligned checkpoint is stuck behind a slow barrier
			// (backpressure on a not-yet-barriered channel): convert it to
			// an unaligned one rather than keep the barriered channels
			// gated. Their parked post-barrier input belongs to epoch
			// cp+1 and flows again once releaseAlignment reopens the gate.
			t.beginUnalignedCapture(types.CheckpointID(t.alignCpShadow.Load()))
			if t.crashed.Load() {
				return
			}
		}
		select {
		case ev := <-t.mailbox:
			t.handleMail(ev)
			continue
		default:
		}
		if idx, m, ok := t.gate.TryNext(); ok {
			t.handleBuffer(idx, m)
			if t.eosLeft == 0 {
				t.finishTask()
				return
			}
			continue
		}
		// Input queues drained: a recovering task is now caught up.
		t.finishRecoverySpan()
		select {
		case ev := <-t.mailbox:
			t.handleMail(ev)
		case <-t.gate.Ready():
		case <-t.abort:
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// runReplay re-executes the recovered epoch guided by the determinant log
// (§5.2): ORDER determinants drive buffer consumption, TIMER/RPC
// determinants re-fire asynchronous events at identical offsets, and
// services replay TS/RNG/SERVICE results inline.
//
//clonos:mainthread
func (t *Task) runReplay() {
	for t.replay.hasNext() && !t.crashed.Load() {
		t.heartbeatNow()
		t.replayPosShadow.Store(int64(t.replay.pos))
		if t.crashPoint(faultinject.PointReplayStep) {
			return
		}
		d := t.replay.peek()
		switch d.Kind {
		case causal.KindEpoch:
			// Structural marker: re-appended by restore/snapshot, not
			// by the cursor.
			t.replay.pos++
		case causal.KindOrder:
			t.replay.pos++
			m, err := t.gate.NextFrom(int(d.Channel), t.abort)
			if err != nil {
				return
			}
			t.handleBuffer(int(d.Channel), m)
			if t.eosLeft == 0 {
				t.finishTask()
				return
			}
		case causal.KindTimer:
			if t.vertex.Source != nil && t.offset < d.Offset {
				// The timer fired after more source elements: emit them
				// first so the firing lands at the identical offset.
				if !t.emitNextSourceElement(true) {
					return
				}
				continue
			}
			t.replay.pos++
			if d.Offset != t.offset {
				t.fail(fmt.Errorf("task %v: timer determinant at offset %d replayed at %d", t.id, d.Offset, t.offset))
				return
			}
			tm := timers.Timer{HandlerID: d.Handler, Key: d.Key, When: d.When}
			t.timerSvc.TakeProc(tm)
			t.fireTimer(tm)
		case causal.KindRPC:
			if t.vertex.Source == nil {
				t.fail(fmt.Errorf("task %v: RPC determinant on non-source", t.id))
				return
			}
			if t.offset < d.Offset {
				if !t.emitNextSourceElement(true) {
					return
				}
				continue
			}
			t.replay.pos++
			if t.causal != nil {
				t.causal.AppendRPC(d.Epoch, d.Offset)
			}
			t.snapshot(d.Epoch)
		case causal.KindTimestamp:
			if t.vertex.Source == nil {
				t.fail(fmt.Errorf("task %v: bare timestamp determinant on non-source at replay head", t.id))
				return
			}
			// A latency-marker stamp: re-emitting source elements reaches
			// the count-based marker cadence, which consumes this
			// determinant inline via Next(KindTimestamp).
			if !t.emitNextSourceElement(true) {
				return
			}
		default:
			t.fail(fmt.Errorf("task %v: unexpected determinant %v at replay head", t.id, d))
			return
		}
	}
}

// handleBuffer processes one whole input buffer (the ORDER unit).
//
//clonos:mainthread
func (t *Task) handleBuffer(idx int, m *netstack.Message) {
	t.metrics.buffersIn.Inc()
	defer t.metrics.process.ObserveSince(time.Now())
	if t.causal != nil {
		if err := t.causal.Ingest(m.Delta); err != nil {
			m.Release()
			t.fail(err)
			return
		}
		t.causal.AppendOrder(int32(idx))
	}
	t.offset++
	t.offsetShadow.Store(t.offset)
	if t.capturing && t.captureMessage(idx, m) {
		m.Release()
		return
	}
	d := t.desers[idx]
	if m.StreamReset {
		// A divergent sender incarnation: its byte stream does not
		// continue the predecessor's, so drop any partial record.
		d.Reset()
	}
	// The deserializer takes ownership of m (and the payload-buffer
	// reference it carries) — no copy; the message is released once its
	// bytes are fully consumed.
	d.Push(m)
	for !t.crashed.Load() {
		e, ok, err := d.Next()
		if err != nil {
			t.fail(err)
			return
		}
		if !ok {
			return
		}
		t.handleElement(idx, e)
	}
}

//clonos:mainthread
func (t *Task) handleElement(idx int, e types.Element) {
	switch e.Kind {
	case types.KindRecord:
		t.recordsIn.Add(1)
		t.metrics.recordsIn.Inc()
		t.chn.processInput(t.inPorts[idx], e)
	case types.KindWatermark:
		if e.Timestamp > t.chanWms[idx] {
			t.raiseChanWm(idx, e.Timestamp)
			t.maybeAdvanceWatermark()
		} else if t.audit != nil && e.Timestamp < t.chanWms[idx] {
			// The silent-ignore above is correct for equal re-announcements;
			// a strictly lower watermark means the channel's event-time
			// regressed — under exactly-once replay that never happens.
			t.audit.OnWatermark(t.id, t.inIDs[idx], t.chanWms[idx], e.Timestamp)
		}
	case types.KindBarrier:
		t.handleBarrier(idx, e.Checkpoint)
	case types.KindLatencyMarker:
		if t.audit != nil && t.markerFromSource[idx] {
			t.audit.OnMarker(t.id, t.inIDs[idx], e.Timestamp)
		}
		t.handleLatencyMarker(e)
	case types.KindEndOfStream:
		if !t.eosSeen[idx] {
			t.eosSeen[idx] = true
			t.eosLeft--
			t.eosCompletesAlignment(idx)
			if t.crashed.Load() {
				return
			}
			t.raiseChanWm(idx, math.MaxInt64)
			if t.eosLeft > 0 {
				t.maybeAdvanceWatermark()
			} else {
				t.advanceWatermark(math.MaxInt64)
			}
		}
	}
}

// eosCompletesAlignment treats end-of-stream as a channel's final
// barrier. Alignment start copies eosSeen into barriersSeen for channels
// that already finished, but an EOS can also land MID-alignment: the
// upstream drained its input and exited between the coordinator's
// trigger and the barrier reaching this channel, so the barrier the
// alignment is waiting for will never come. Without this the task waits
// forever with its aligned channels gated — a wedge the fault sweep hits
// when a crash schedule delays a checkpoint into the end of a bounded
// input (pinned in TestCrashScheduleRegressions).
//
//clonos:mainthread
func (t *Task) eosCompletesAlignment(idx int) {
	if t.capturing {
		// End-of-stream also stands in for a pending capture channel's
		// barrier: the finished upstream will never send one, and the EOS
		// message itself was captured, so a restored task re-finishes the
		// channel identically.
		t.completeCaptureChannel(idx)
		return
	}
	if !t.aligning || t.barriersSeen[idx] {
		return
	}
	t.barriersSeen[idx] = true
	t.barriersLeft--
	if t.barriersLeft > 0 {
		return
	}
	t.completeAlignment(t.alignCp)
}

// handleLatencyMarker forwards a source-stamped latency probe downstream
// like a watermark; at sinks (no output channels) it observes arrival
// minus stamp as the live end-to-end latency. Markers are not records:
// they bypass the chain and the record counters.
//
//clonos:mainthread
func (t *Task) handleLatencyMarker(e types.Element) {
	if len(t.allOut) == 0 {
		lat := float64(time.Now().UnixMilli()-e.Timestamp) / 1e3
		if lat < 0 {
			lat = 0
		}
		t.metrics.latency.Observe(lat)
		return
	}
	t.broadcastElement(e)
}

// maybeEmitLatencyMarker emits a latency probe every LatencyMarkerEvery
// source records. The cadence is count-based — deterministic under guided
// replay — and the wall-clock stamp is logged as a TIMESTAMP determinant,
// so a recovered incarnation re-emits byte-identical markers and the
// output byte stream (with its BUFFERSIZE determinants) stays aligned.
//
//clonos:mainthread
func (t *Task) maybeEmitLatencyMarker() {
	every := t.env.cfg.LatencyMarkerEvery
	if every <= 0 || t.crashed.Load() {
		return
	}
	t.sinceMarker++
	if t.sinceMarker < every {
		return
	}
	t.sinceMarker = 0
	var ms int64
	if t.causal != nil && t.Replaying() {
		d, err := t.Next(causal.KindTimestamp)
		if err != nil {
			t.fail(err)
			return
		}
		ms = d.Value
	} else {
		ms = time.Now().UnixMilli()
		if t.causal != nil {
			t.causal.AppendTimestamp(ms)
		}
	}
	t.broadcastElement(types.LatencyMarker(ms))
}

// raiseChanWm records a channel watermark advance, keeping the running
// minimum current. Only when the raised channel sat at the minimum can
// the minimum itself change, so the full rescan is amortized away.
//
//clonos:mainthread
func (t *Task) raiseChanWm(idx int, wm int64) {
	old := t.chanWms[idx]
	t.chanWms[idx] = wm
	t.chanWmShadow[idx].Store(wm)
	if old <= t.wmMin {
		t.recomputeWmMin()
	}
}

// recomputeWmMin rescans chanWms; MaxInt64 when the task has no inputs.
//
//clonos:mainthread
func (t *Task) recomputeWmMin() {
	min := int64(math.MaxInt64)
	for _, wm := range t.chanWms {
		if wm < min {
			min = wm
		}
	}
	t.wmMin = min
}

//clonos:mainthread
func (t *Task) maybeAdvanceWatermark() {
	if t.wmMin > t.curWm && t.wmMin != math.MaxInt64 {
		t.advanceWatermark(t.wmMin)
	}
}

// advanceWatermark fires due event timers deterministically, notifies the
// chain, and forwards the watermark downstream.
//
//clonos:mainthread
func (t *Task) advanceWatermark(wm int64) {
	t.curWm = wm
	t.wmShadow.Store(wm)
	for {
		due := t.timerSvc.AdvanceWatermark(wm)
		if len(due) == 0 {
			break
		}
		for _, tm := range due {
			t.chn.onEventTimer(tm)
			if t.crashed.Load() {
				return
			}
		}
	}
	t.chn.onWatermark(wm)
	t.broadcastElement(types.Watermark(wm))
}

// handleBarrier performs checkpoint alignment. Aligned mode: the first
// barrier of a checkpoint blocks its channel; when barriers arrived on
// all channels the task snapshots and unblocks. Unaligned mode (see
// beginUnalignedCapture): the first barrier snapshots immediately and the
// remaining channels keep flowing, their pre-barrier input logged into
// the snapshot until their barriers catch up.
//
//clonos:mainthread
func (t *Task) handleBarrier(idx int, cp types.CheckpointID) {
	// Capture bookkeeping must run BEFORE the stale-barrier guard: an
	// unaligned snapshot already rolled the epoch to captureCp+1, so the
	// pending channels' barriers for captureCp arrive "stale" by design —
	// they are exactly the capture-completion signal.
	if t.capturing {
		switch {
		case cp == t.captureCp:
			t.completeCaptureChannel(idx)
			return
		case cp > t.captureCp:
			// A newer checkpoint's barrier outran a pending channel's
			// barrier for the captured one: the coordinator aborted the
			// captured checkpoint, so drop the half-built capture and
			// align on the newer barrier below.
			t.abandonCapture(cp)
		default:
			return // stale barrier from a replayed stream, already covered
		}
	}
	if cp < t.epoch {
		return // stale barrier from a replayed stream, already covered
	}
	t.env.onBarrier(cp, t.id)
	if t.crashPoint(faultinject.PointAlignStart) {
		return
	}
	if len(t.inIDs) == 1 {
		t.snapshot(cp)
		return
	}
	// A barrier of a newer checkpoint supersedes a pending alignment:
	// the older checkpoint was aborted (its barriers may be lost with a
	// failed task), so release the blocked channels and align on the
	// newer one. The abandoned alignment must NOT feed the align
	// histogram — it never completed — but the blocked-channel time was
	// genuine backpressure and is recorded by releaseAlignment.
	if t.aligning && cp > t.alignCp {
		t.env.recordEvent(EventAlignSuperseded, t.id,
			fmt.Sprintf("cp %d superseded by cp %d", t.alignCp, cp))
		t.releaseAlignment()
	}
	if !t.aligning {
		t.aligning = true
		t.alignCp = cp
		t.alignStart = time.Now()
		t.alignStartNs.Store(t.alignStart.UnixNano())
		t.alignCpShadow.Store(int64(cp))
		for i := range t.barriersSeen {
			t.barriersSeen[i] = t.eosSeen[i] // finished channels need no barrier
		}
		t.barriersLeft = 0
		for _, seen := range t.barriersSeen {
			if !seen {
				t.barriersLeft++
			}
		}
	}
	if cp != t.alignCp || t.barriersSeen[idx] {
		return
	}
	t.barriersSeen[idx] = true
	t.barriersLeft--
	if t.barriersLeft > 0 {
		if t.env.cfg.UnalignedCheckpoints {
			t.beginUnalignedCapture(cp)
			return
		}
		t.gate.Block(idx)
		t.blockStart[idx] = time.Now()
		t.crashPoint(faultinject.PointAlignBlocked)
		return
	}
	t.completeAlignment(cp)
}

// releaseAlignment ends a pending alignment (completed or superseded):
// it folds each channel's genuine blocked time into the blocked-channel
// histogram, clears the watchdog shadows, and reopens the gate.
func (t *Task) releaseAlignment() {
	for i := range t.blockStart {
		if !t.blockStart[i].IsZero() {
			t.metrics.alignBlocked.ObserveSince(t.blockStart[i])
			t.blockStart[i] = time.Time{}
		}
	}
	t.aligning = false
	t.alignStartNs.Store(0)
	t.alignCpShadow.Store(0)
	t.gate.UnblockAll()
}

// beginUnalignedCapture switches the pending alignment of checkpoint cp
// into unaligned capture: snapshot NOW, then log — instead of gate — the
// pre-barrier input still in flight on the not-yet-barriered channels.
// Entered from handleBarrier (Config.UnalignedCheckpoints, at the first
// barrier) or from runLive's budget check (a pending alignment exceeded
// Config.AlignmentBudget). The snapshot broadcasts the barrier and rolls
// the epoch exactly as an aligned one does, and each channel's capture
// ends precisely when that sender's own barrier is decoded — so the
// captured log ends at the sender's epoch boundary and recovery's replay
// protocol (resume at the first seq of epoch cp+1) needs no changes.
//
//clonos:mainthread
func (t *Task) beginUnalignedCapture(cp types.CheckpointID) {
	// The alignment ends here, not at barrier-complete: observe its
	// (near-zero, or budget-long on conversion) duration before capture.
	t.metrics.align.ObserveSince(t.alignStart)
	t.env.onUnalignedSnapshot(cp, t.id)
	if t.crashPoint(faultinject.PointUnalignedSnapshot) {
		return
	}
	t.capChans = make([]capChannel, len(t.inIDs))
	t.capLeft = 0
	for i := range t.capChans {
		if t.barriersSeen[i] {
			// Barriered (or finished) channels have nothing in flight for
			// cp; anything queued behind their barrier is epoch cp+1.
			t.capChans[i].done = true
			continue
		}
		t.capLeft++
		t.capChans[i].prefix = t.desers[i].PendingTail()
	}
	snap := t.buildSnapshot(cp)
	if snap == nil {
		t.capChans = nil
		return
	}
	t.capturing = true
	t.captureCp = cp
	t.pendingSnap = snap
	t.releaseAlignment()
	if t.capLeft == 0 {
		t.sealCapture()
	}
}

// captureMessage logs one consumed message into the pending unaligned
// capture. It copies the payload and determinant delta (the originals are
// released once the deserializer drains them) and reports whether a crash
// point consumed the task.
//
//clonos:mainthread
func (t *Task) captureMessage(idx int, m *netstack.Message) bool {
	c := &t.capChans[idx]
	if c.done || m.Epoch > t.captureCp {
		return false
	}
	if t.crashPoint(faultinject.PointUnalignedCapture) {
		return true
	}
	c.msgs = append(c.msgs, statestore.InFlightMessage{
		Seq:   m.Seq,
		Epoch: m.Epoch,
		Data:  append([]byte(nil), m.Data...),
		Delta: append([]byte(nil), m.Delta...),
	})
	return false
}

// completeCaptureChannel ends one channel's capture: its barrier (or EOS)
// for the captured checkpoint was decoded, so everything the checkpoint
// covers on this channel is now logged. Seals once no channel is pending.
//
//clonos:mainthread
func (t *Task) completeCaptureChannel(idx int) {
	c := &t.capChans[idx]
	if c.done {
		return
	}
	c.done = true
	t.capLeft--
	if t.capLeft == 0 {
		t.sealCapture()
	}
}

// sealCapture finishes an unaligned checkpoint: encode the captured
// in-flight log into the held snapshot and only then hand it to the
// runtime. The deferred ack is the correctness hinge — checkpoint
// completion (which truncates in-flight and causal logs up to cp)
// implies every pre-barrier message was consumed AND captured, so
// nothing the truncation drops is lost. A crash before sealing simply
// restores from the previous checkpoint, whose logs are still intact.
//
//clonos:mainthread
func (t *Task) sealCapture() {
	if t.crashPoint(faultinject.PointUnalignedSeal) {
		return
	}
	snap := t.pendingSnap
	t.capturing = false
	t.pendingSnap = nil
	chans := make([]statestore.InFlightChannel, 0, len(t.capChans))
	for i := range t.capChans {
		c := &t.capChans[i]
		if len(c.msgs) == 0 && len(c.prefix) == 0 {
			continue
		}
		chans = append(chans, statestore.InFlightChannel{
			Channel: t.inIDs[i],
			Prefix:  c.prefix,
			Msgs:    c.msgs,
		})
	}
	t.capChans = nil
	if len(chans) > 0 {
		snap.InFlight = statestore.EncodeInFlight(chans)
		t.metrics.inflightLogged.Add(uint64(len(snap.InFlight)))
	}
	t.env.onSnapshot(snap)
}

// abandonCapture drops an unaligned capture whose checkpoint was
// superseded by a newer barrier: the coordinator aborted it, and a
// half-captured snapshot must never be acked (restoring it would lose
// the uncaptured remainder of the logged channels). The snapshot side
// effects (epoch roll, barrier broadcast) already happened and stand, as
// with any aligned snapshot whose checkpoint later aborts.
//
//clonos:mainthread
func (t *Task) abandonCapture(newCp types.CheckpointID) {
	t.env.recordEvent(EventAlignSuperseded, t.id,
		fmt.Sprintf("unaligned capture of cp %d superseded by cp %d", t.captureCp, newCp))
	t.capturing = false
	t.pendingSnap = nil
	t.capChans = nil
	t.capLeft = 0
}

// preloadInFlight injects a restored unaligned snapshot's logged input
// ahead of live traffic: each captured channel's deserializer is seeded
// with the partial-element prefix and its endpoint is preloaded with the
// captured messages. Preloaded messages bypass the accept path (their
// determinant deltas are re-ingested by handleBuffer, but the audit
// plane's delivery records for them were truncated with the checkpoint,
// so re-running OnDeliver would raise false seq-continuity violations).
// Runs at the top of run(), where endpoints and deserializers exist in
// both recovery orders (standby activation and global restart) and
// before any determinant-guided or live consumption.
//
//clonos:mainthread
func (t *Task) preloadInFlight() {
	if len(t.restoredInFlight) == 0 {
		return
	}
	chans := t.restoredInFlight
	t.restoredInFlight = nil
	for _, ch := range chans {
		idx := -1
		for i, id := range t.inIDs {
			if id == ch.Channel {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.fail(fmt.Errorf("task %v: restored in-flight log names unknown channel %v", t.id, ch.Channel))
			return
		}
		if t.audit != nil {
			// The preload rewinds this channel to the epoch boundary
			// without passing the endpoint accept path; tell the auditor
			// so its marker floor re-seeds (see Auditor.OnPreload).
			t.audit.OnPreload(t.id, ch.Channel)
		}
		if len(ch.Prefix) > 0 {
			t.desers[idx].Feed(ch.Prefix)
		}
		if len(ch.Msgs) == 0 {
			continue
		}
		msgs := make([]*netstack.Message, 0, len(ch.Msgs))
		for _, im := range ch.Msgs {
			m := netstack.NewMessage()
			m.Channel = ch.Channel
			m.Seq = im.Seq
			m.Epoch = im.Epoch
			m.Data = im.Data
			m.Delta = im.Delta
			m.Replayed = true
			msgs = append(msgs, m)
		}
		t.gate.Endpoint(idx).Preload(msgs)
	}
}

// snapshot takes the task's checkpoint: forward the barrier, roll epochs
// on every log, persist state, and ack the coordinator.
//
//clonos:mainthread
func (t *Task) snapshot(cp types.CheckpointID) {
	if snap := t.buildSnapshot(cp); snap != nil {
		t.env.onSnapshot(snap)
	}
}

// buildSnapshot performs the synchronous part of a checkpoint — forward
// the barrier, roll epochs on every log, serialize state — and returns
// the snapshot WITHOUT handing it to the runtime (nil when a crash point
// fired or serialization failed). Aligned checkpoints ack immediately
// via snapshot; unaligned ones hold the snapshot open while the
// in-flight capture completes (see beginUnalignedCapture).
//
//clonos:mainthread
func (t *Task) buildSnapshot(cp types.CheckpointID) *checkpoint.TaskSnapshot {
	if t.crashPoint(faultinject.PointSnapshotPreBarrier) {
		return nil
	}
	syncStart := time.Now()
	// Forward the barrier as the last element of epoch cp on every
	// output channel, then roll the channel epochs.
	t.broadcastElement(types.Barrier(cp))
	for _, oc := range t.allOut {
		if err := oc.writer.Flush(); err != nil {
			t.fail(err)
			return nil
		}
		oc.startEpoch(cp + 1)
	}
	var mainBase uint64
	if t.causal != nil {
		mainBase = t.causal.StartEpochMainAt(cp + 1)
	}
	if t.crashPoint(faultinject.PointSnapshotPreState) {
		return nil
	}
	var stateBytes []byte
	var err error
	stateIsDelta := false
	if t.env.cfg.IncrementalCheckpoints && !t.fullSnapshotNext {
		stateBytes, err = t.store.DeltaSnapshot()
		stateIsDelta = true
	} else {
		stateBytes, err = t.store.Snapshot()
		t.store.ResetDirty()
		t.fullSnapshotNext = false
	}
	if err != nil {
		t.fail(err)
		return nil
	}
	timerBytes, err := t.timerSvc.Snapshot()
	if err != nil {
		t.fail(err)
		return nil
	}
	var fp uint64
	if t.audit != nil {
		// The fingerprint walks the LIVE store, not stateBytes: delta
		// snapshots carry only dirty entries, and the snapshot store
		// mutates State on Put while rebuilding the full image.
		fp, err = audit.Fingerprint(t.store, timerBytes, t.chanWms, t.curWm)
		if err != nil {
			t.fail(err)
			return nil
		}
	}
	snap := &checkpoint.TaskSnapshot{
		Checkpoint:     cp,
		Task:           t.id,
		State:          stateBytes,
		StateIsDelta:   stateIsDelta,
		Timers:         timerBytes,
		NextSeq:        make(map[types.ChannelID]uint64, len(t.allOut)),
		MainLogBase:    mainBase,
		ChannelLogBase: make(map[types.ChannelID]uint64, len(t.allOut)),
		ChanWms:        make(map[types.ChannelID]int64, len(t.inIDs)),
		CurWm:          t.curWm,
		Fingerprint:    fp,
	}
	if len(t.pendingBatch) > 0 {
		// A source snapshotting mid-batch: Poll already advanced the
		// offsets over these elements but they have not entered the
		// stream yet — they belong to epoch cp+1 while the offsets place
		// them in epoch cp. Persist them so restore re-emits them
		// instead of skipping straight to the post-batch offsets.
		snap.SourceBacklog = append([]types.Element(nil), t.pendingBatch...)
	}
	for i, id := range t.inIDs {
		snap.ChanWms[id] = t.chanWms[i]
	}
	for _, oc := range t.allOut {
		oc.mu.Lock()
		snap.NextSeq[oc.id] = oc.nextSeq
		oc.mu.Unlock()
		if t.causal != nil {
			if idx, ok := t.causal.Channel(oc.id).EpochStart(cp + 1); ok {
				snap.ChannelLogBase[oc.id] = idx
			}
		}
	}
	t.epoch = cp + 1
	t.offset = 0
	t.offsetShadow.Store(0)
	t.sinceMarker = 0
	t.svcs.StartEpoch()
	t.metrics.sync.ObserveSince(syncStart)
	t.metrics.snapshots.Inc()
	t.metrics.snapshotBytes.Add(uint64(len(stateBytes) + len(timerBytes)))
	if t.crashPoint(faultinject.PointSnapshotPrePersist) {
		return nil
	}
	return snap
}

// handleMail processes one asynchronous event on the main thread.
//
//clonos:mainthread
func (t *Task) handleMail(ev mailEvent) {
	switch ev.kind {
	case mailTimer:
		if t.crashPoint(faultinject.PointTimerFiring) {
			return
		}
		if t.causal != nil {
			t.causal.AppendTimer(ev.timer.HandlerID, ev.timer.Key, ev.timer.When, t.offset)
		}
		t.fireTimer(ev.timer)
	case mailRPC:
		if t.crashPoint(faultinject.PointCheckpointRPC) {
			return
		}
		if t.causal != nil {
			t.causal.AppendRPC(ev.cp, t.offset)
		}
		t.snapshot(ev.cp)
	}
}

func (t *Task) fireTimer(tm timers.Timer) {
	if tm.HandlerID == tsRefreshHandler {
		if err := t.svcs.OnRefreshTimer(); err != nil {
			t.fail(err)
		}
		return
	}
	t.chn.onProcTimer(tm)
}

// runSourceLive drives a source vertex: poll the source, emit elements
// one at a time (so RPC/TIMER offsets are exact), and serve the mailbox
// between elements.
//
//clonos:mainthread
func (t *Task) runSourceLive() {
	for !t.crashed.Load() {
		if t.loopTick() {
			return
		}
		select {
		case ev := <-t.mailbox:
			t.handleMail(ev)
			continue
		default:
		}
		if t.emitNextSourceElement(false) {
			continue
		}
		if t.crashed.Load() {
			return
		}
		if t.sourceDone && len(t.pendingBatch) == 0 {
			t.finishTask()
			return
		}
		select {
		case ev := <-t.mailbox:
			t.handleMail(ev)
		case <-t.abort:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// emitNextSourceElement emits one element from the source, polling a new
// batch when needed. It reports false when no element is available right
// now. During replay (wait=true) it spins briefly for data that must
// already exist in the replayable source.
//
//clonos:mainthread
func (t *Task) emitNextSourceElement(wait bool) bool {
	for len(t.pendingBatch) == 0 {
		if t.sourceDone {
			return false
		}
		batch, done, err := t.vertex.Source.Poll(t.srcCtx)
		if err != nil {
			t.fail(err)
			return false
		}
		t.pendingBatch = batch
		t.sourceDone = done
		if len(batch) == 0 {
			if !wait {
				return false
			}
			select {
			case <-t.abort:
				return false
			case <-time.After(time.Millisecond):
			}
		}
	}
	if t.crashPoint(faultinject.PointSourceEmit) {
		return false
	}
	e := t.pendingBatch[0]
	t.pendingBatch = t.pendingBatch[1:]
	t.offset++
	t.offsetShadow.Store(t.offset)
	switch e.Kind {
	case types.KindRecord:
		t.recordsIn.Add(1)
		t.metrics.recordsIn.Inc()
		t.chn.processInput(0, e)
		t.maybeEmitLatencyMarker()
	case types.KindWatermark:
		if e.Timestamp > t.curWm {
			t.advanceWatermark(e.Timestamp)
		}
	}
	return true
}

// finishTask completes a finite job: flush windows, close the chain, and
// propagate end-of-stream.
//
//clonos:mainthread
func (t *Task) finishTask() {
	// Fire pending operator processing-time timers so bounded inputs
	// flush their last processing-time windows. The pending set and the
	// drain order are deterministic at this point, so a recovered task
	// reaching EOS drains identically. Service-internal timers
	// (timestamp refresh) are left alone.
	for round := 0; round < 64; round++ {
		due := t.timerSvc.DrainProc(func(tm timers.Timer) bool { return tm.HandlerID >= 0 })
		if len(due) == 0 {
			break
		}
		for _, tm := range due {
			if t.causal != nil {
				t.causal.AppendTimer(tm.HandlerID, tm.Key, tm.When, t.offset)
			}
			t.chn.onProcTimer(tm)
			if t.crashed.Load() {
				return
			}
		}
	}
	if err := t.chn.close(); err != nil {
		t.env.reportTaskError(t.id, err)
	}
	if t.vertex.Source != nil {
		_ = t.vertex.Source.Close(t.srcCtx)
	}
	t.broadcastElement(types.EndOfStream())
	for _, oc := range t.allOut {
		if err := oc.writer.ForceFlush(); err != nil {
			break
		}
	}
	t.finishRecoverySpan()
	t.state.Store(int32(stateFinished))
	t.env.onTaskFinished(t.id)
}

// broadcastElement writes an element to every output channel.
func (t *Task) broadcastElement(e types.Element) {
	for _, oc := range t.allOut {
		if err := oc.writer.WriteElement(e); err != nil {
			if !t.crashed.Load() {
				t.fail(err)
			}
			return
		}
	}
}

// emitOutput routes one record across every output edge.
func (t *Task) emitOutput(key uint64, ts int64, v any) {
	t.recordsOut.Add(1)
	t.metrics.recordsOut.Inc()
	for _, oe := range t.outEdges {
		var targets []*outChannel
		outKey := key
		switch oe.edge.Partitioner {
		case PartitionForward:
			targets = oe.chans[t.id.Subtask : t.id.Subtask+1]
		case PartitionHash:
			if oe.edge.KeyOf != nil {
				outKey = oe.edge.KeyOf(v)
			}
			targets = oe.chans[outKey%uint64(len(oe.chans)) : outKey%uint64(len(oe.chans))+1]
		case PartitionRebalance:
			ctr, _ := t.rebalanceCtr.Get(uint64(oe.edge.ID)).(uint64)
			t.rebalanceCtr.Put(uint64(oe.edge.ID), ctr+1)
			targets = oe.chans[ctr%uint64(len(oe.chans)) : ctr%uint64(len(oe.chans))+1]
		case PartitionBroadcast:
			targets = oe.chans
		}
		for _, oc := range targets {
			if err := oc.writer.WriteElement(types.Record(outKey, ts, v)); err != nil {
				if !t.crashed.Load() {
					t.fail(err)
				}
				return
			}
		}
	}
}

// noopLogger satisfies services.Logger when causal logging is disabled.
type noopLogger struct{}

func (noopLogger) AppendTimestamp(int64)        {}
func (noopLogger) AppendRNG(int64)              {}
func (noopLogger) AppendService(uint16, []byte) {}
