package job

import (
	"strconv"

	"clonos/internal/inflight"
	"clonos/internal/netstack"
	"clonos/internal/obs"
)

// taskMetrics bundles the per-task handles into the runtime's registry.
// Handles are get-or-create by (vertex, subtask), so a recovered
// incarnation continues its predecessor's counters — the totals describe
// the logical task, not one OS-level incarnation.
type taskMetrics struct {
	recordsIn  *obs.Counter
	recordsOut *obs.Counter
	buffersIn  *obs.Counter
	bytesOut   *obs.Counter
	process    *obs.Histogram
	align      *obs.Histogram
	sync       *obs.Histogram

	ep      *netstack.EndpointMetrics
	iflight *inflight.Metrics
}

// procBuckets span 1µs..~0.26s: buffer handling is far below the
// recovery-scale default buckets.
var procBuckets = obs.ExpBuckets(1e-6, 2, 18)

func newTaskMetrics(reg *obs.Registry, vertexName string, subtask int32) *taskMetrics {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask))}
	return &taskMetrics{
		recordsIn:  reg.Counter("clonos_task_records_in_total", "Records consumed by the task.", lbl),
		recordsOut: reg.Counter("clonos_task_records_out_total", "Records emitted by the task.", lbl),
		buffersIn:  reg.Counter("clonos_task_buffers_in_total", "Network buffers processed by the main thread.", lbl),
		bytesOut:   reg.Counter("clonos_task_bytes_out_total", "Payload bytes dispatched on output channels.", lbl),
		process:    reg.Histogram("clonos_task_process_seconds", "Main-thread time handling one input buffer.", procBuckets, lbl),
		align:      reg.Histogram("clonos_checkpoint_align_seconds", "Barrier alignment time (first barrier to snapshot).", obs.DefDurationBuckets, lbl),
		sync:       reg.Histogram("clonos_checkpoint_sync_seconds", "Synchronous snapshot time on the main thread.", obs.DefDurationBuckets, lbl),
		ep: &netstack.EndpointMetrics{
			Accepted:  reg.Counter("clonos_netstack_accepted_total", "Messages accepted into the task's input queues.", lbl),
			Blocked:   reg.Counter("clonos_netstack_send_blocked_total", "Sender pushes that stalled on the credit limit.", lbl),
			BlockedNs: reg.Counter("clonos_netstack_send_blocked_ns_total", "Nanoseconds senders spent stalled on the credit limit.", lbl),
		},
		iflight: &inflight.Metrics{
			Appended:     reg.Counter("clonos_inflight_appended_total", "Buffers retained in the in-flight log.", lbl),
			Spilled:      reg.Counter("clonos_inflight_spilled_total", "In-flight log buffers spilled to disk.", lbl),
			SpilledBytes: reg.Counter("clonos_inflight_spilled_bytes_total", "Payload bytes spilled to disk.", lbl),
			Truncated:    reg.Counter("clonos_inflight_truncated_total", "In-flight log entries dropped by checkpoint truncation.", lbl),
		},
	}
}

// poolWaitCounters returns the backpressure counters for one of the
// task's buffer pools (pool = "output" or "inflight-log").
func poolWaitCounters(reg *obs.Registry, vertexName string, subtask int32, pool string) (waits, waitNs *obs.Counter) {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask)), "pool": pool}
	return reg.Counter("clonos_buffer_wait_total", "Buffer acquisitions that blocked on an exhausted pool.", lbl),
		reg.Counter("clonos_buffer_wait_ns_total", "Nanoseconds blocked waiting for a free buffer.", lbl)
}

// causalMetrics returns the determinant counters for one task.
func causalMetrics(reg *obs.Registry, vertexName string, subtask int32) (appended, extractions *obs.Counter) {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask))}
	return reg.Counter("clonos_causal_determinants_total", "Determinants appended to the task's own causal logs.", lbl),
		reg.Counter("clonos_causal_extractions_total", "Replica extractions served to recovering upstream peers.", lbl)
}

// registerGauges installs the task's callback gauges. Called from
// start() — never for idle standbys — so the live incarnation's closures
// replace the dead predecessor's.
func (t *Task) registerGauges() {
	reg := t.env.obs
	lbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask))}
	mailbox := t.mailbox
	reg.GaugeFunc("clonos_task_mailbox_depth", "Queued asynchronous events (timers, RPCs).", lbl,
		func() float64 { return float64(len(mailbox)) })
	if gate := t.gate; gate != nil {
		reg.GaugeFunc("clonos_netstack_queue_depth", "Buffers queued across the task's input channels.", lbl,
			func() float64 { return float64(gate.QueuedBuffers()) })
	}
	if pool := t.logPool; pool != nil {
		plbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask)), "pool": "inflight-log"}
		reg.GaugeFunc("clonos_buffer_pool_free_buffers", "Free buffers in the pool.", plbl,
			func() float64 { return float64(pool.Available()) })
		reg.GaugeFunc("clonos_buffer_pool_total_buffers", "Total buffers owned by the pool.", plbl,
			func() float64 { return float64(pool.Total()) })
	}
	if len(t.allOut) > 0 {
		outs := t.allOut
		plbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask)), "pool": "output"}
		reg.GaugeFunc("clonos_buffer_pool_free_buffers", "Free buffers in the pool.", plbl, func() float64 {
			n := 0
			for _, oc := range outs {
				n += oc.outPool.Available()
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_buffer_pool_total_buffers", "Total buffers owned by the pool.", plbl, func() float64 {
			n := 0
			for _, oc := range outs {
				n += oc.outPool.Total()
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_inflight_entries", "Buffers retained across the task's in-flight logs.", lbl, func() float64 {
			n := 0
			for _, oc := range outs {
				if oc.iflog != nil {
					n += oc.iflog.Count()
				}
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_inflight_mem_bytes", "Unspilled payload bytes across the task's in-flight logs.", lbl, func() float64 {
			n := 0
			for _, oc := range outs {
				if oc.iflog != nil {
					n += oc.iflog.MemBytes()
				}
			}
			return float64(n)
		})
	}
	if cm := t.causal; cm != nil {
		reg.GaugeFunc("clonos_causal_log_entries", "Determinants retained across own logs and the replica store.", lbl,
			func() float64 { return float64(cm.SizeEntries()) })
	}
}

// runtimeMetrics are the job-level (not per-task) handles.
type runtimeMetrics struct {
	reg             *obs.Registry
	recoveries      *obs.Counter
	recoverySeconds *obs.Histogram
}

func newRuntimeMetrics(reg *obs.Registry) runtimeMetrics {
	return runtimeMetrics{
		reg:             reg,
		recoveries:      reg.Counter("clonos_recovery_completed_total", "Local recoveries that reached caught-up.", nil),
		recoverySeconds: reg.Histogram("clonos_recovery_seconds", "Failure-detection to caught-up wall time.", obs.DefDurationBuckets, nil),
	}
}

// observeRecovery folds a completed recovery span into the registry:
// total duration plus one observation per protocol phase.
func (r *Runtime) observeRecovery(rec obs.SpanRecord) {
	r.metrics.recoveries.Inc()
	r.metrics.recoverySeconds.Observe(rec.Duration().Seconds())
	for _, p := range rec.Phases() {
		r.metrics.reg.Histogram("clonos_recovery_phase_seconds", "Per-phase recovery protocol time.",
			obs.DefDurationBuckets, obs.Labels{"phase": p.Name}).Observe(p.Dur.Seconds())
	}
}
