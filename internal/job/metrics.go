package job

import (
	"math"
	"strconv"

	"clonos/internal/causal"
	"clonos/internal/inflight"
	"clonos/internal/netstack"
	"clonos/internal/obs"
)

// taskMetrics bundles the per-task handles into the runtime's registry.
// Handles are get-or-create by (vertex, subtask), so a recovered
// incarnation continues its predecessor's counters — the totals describe
// the logical task, not one OS-level incarnation.
type taskMetrics struct {
	recordsIn  *obs.Counter
	recordsOut *obs.Counter
	buffersIn  *obs.Counter
	bytesOut   *obs.Counter
	process    *obs.Histogram
	align      *obs.Histogram
	sync       *obs.Histogram
	// alignBlocked observes how long each input channel stayed blocked
	// for one barrier alignment (completed or superseded).
	alignBlocked *obs.Histogram
	// sendStall observes the wall time of each outbound push, including
	// credit-limit stalls inside the receiving endpoint.
	sendStall *obs.Histogram
	// snapshots / snapshotBytes count completed task snapshots and their
	// serialized size (state + timers).
	snapshots     *obs.Counter
	snapshotBytes *obs.Counter
	// inflightLogged counts encoded in-flight-section bytes sealed into
	// unaligned checkpoints (zero while checkpoints stay aligned).
	inflightLogged *obs.Counter
	// dedupDiscarded counts dispatched buffers suppressed by sender-side
	// deduplication after this task's own recovery (§5.2).
	dedupDiscarded *obs.Counter
	// replayServed / replayRetries count in-flight log entries the replay
	// service retransmitted to recovering downstream peers, and pushes it
	// had to retry because the receiver was not accepting yet.
	replayServed  *obs.Counter
	replayRetries *obs.Counter
	// latency is the end-to-end latency histogram fed by arriving latency
	// markers; registered for sink tasks only (nil elsewhere).
	latency *obs.Histogram

	ep      *netstack.EndpointMetrics
	iflight *inflight.Metrics
}

// procBuckets span 1µs..~0.26s: buffer handling is far below the
// recovery-scale default buckets.
var procBuckets = obs.ExpBuckets(1e-6, 2, 18)

func newTaskMetrics(reg *obs.Registry, vertexName string, subtask int32) *taskMetrics {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask))}
	return &taskMetrics{
		recordsIn:  reg.Counter("clonos_task_records_in_total", "Records consumed by the task.", lbl),
		recordsOut: reg.Counter("clonos_task_records_out_total", "Records emitted by the task.", lbl),
		buffersIn:  reg.Counter("clonos_task_buffers_in_total", "Network buffers processed by the main thread.", lbl),
		bytesOut:   reg.Counter("clonos_task_bytes_out_total", "Payload bytes dispatched on output channels.", lbl),
		process:    reg.Histogram("clonos_task_process_seconds", "Main-thread time handling one input buffer.", procBuckets, lbl),
		align:      reg.Histogram("clonos_checkpoint_align_seconds", "Barrier alignment time (first barrier to snapshot).", obs.DefDurationBuckets, lbl),
		sync:       reg.Histogram("clonos_checkpoint_sync_seconds", "Synchronous snapshot time on the main thread.", obs.DefDurationBuckets, lbl),
		alignBlocked: reg.Histogram("clonos_checkpoint_blocked_channel_seconds",
			"Per-channel blocked time during barrier alignment.", obs.DefDurationBuckets, lbl),
		sendStall: reg.Histogram("clonos_outchannel_send_seconds",
			"Wall time per outbound push, including receiver credit stalls.", procBuckets, lbl),
		snapshots: reg.Counter("clonos_checkpoint_snapshots_total", "Task snapshots completed.", lbl),
		snapshotBytes: reg.Counter("clonos_checkpoint_snapshot_bytes_total",
			"Serialized snapshot bytes (state + timers) produced by the task.", lbl),
		inflightLogged: reg.Counter("clonos_checkpoint_inflight_logged_bytes_total",
			"In-flight input bytes logged into unaligned checkpoints.", lbl),
		dedupDiscarded: reg.Counter("clonos_dedup_discarded_total",
			"Dispatched buffers suppressed by sender-side deduplication after recovery.", lbl),
		replayServed: reg.Counter("clonos_replay_served_total",
			"In-flight log entries retransmitted to recovering downstream peers.", lbl),
		replayRetries: reg.Counter("clonos_replay_retries_total",
			"Replay-service pushes retried because the receiver was not accepting.", lbl),
		ep: &netstack.EndpointMetrics{
			Accepted:  reg.Counter("clonos_netstack_accepted_total", "Messages accepted into the task's input queues.", lbl),
			Blocked:   reg.Counter("clonos_netstack_send_blocked_total", "Sender pushes that stalled on the credit limit.", lbl),
			BlockedNs: reg.Counter("clonos_netstack_send_blocked_ns_total", "Nanoseconds senders spent stalled on the credit limit.", lbl),
			Stall: reg.Histogram("clonos_netstack_send_stall_seconds",
				"Duration of each credit-limit stall on the task's input endpoints.", obs.DefDurationBuckets, lbl),
		},
		iflight: &inflight.Metrics{
			Appended:     reg.Counter("clonos_inflight_appended_total", "Buffers retained in the in-flight log.", lbl),
			Spilled:      reg.Counter("clonos_inflight_spilled_total", "In-flight log buffers spilled to disk.", lbl),
			SpilledBytes: reg.Counter("clonos_inflight_spilled_bytes_total", "Payload bytes spilled to disk.", lbl),
			Truncated:    reg.Counter("clonos_inflight_truncated_total", "In-flight log entries dropped by checkpoint truncation.", lbl),
		},
	}
}

// poolWaitCounters returns the backpressure counters for one of the
// task's buffer pools (pool = "output" or "inflight-log").
func poolWaitCounters(reg *obs.Registry, vertexName string, subtask int32, pool string) (waits, waitNs *obs.Counter) {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask)), "pool": pool}
	return reg.Counter("clonos_buffer_wait_total", "Buffer acquisitions that blocked on an exhausted pool.", lbl),
		reg.Counter("clonos_buffer_wait_ns_total", "Nanoseconds blocked waiting for a free buffer.", lbl)
}

// poolStallHistogram returns the starvation-duration histogram for one
// of the task's buffer pools.
func poolStallHistogram(reg *obs.Registry, vertexName string, subtask int32, pool string) *obs.Histogram {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask)), "pool": pool}
	return reg.Histogram("clonos_buffer_wait_seconds", "Duration of each blocked wait for a free buffer.", obs.DefDurationBuckets, lbl)
}

// causalMetrics returns the determinant counters for one task.
func causalMetrics(reg *obs.Registry, vertexName string, subtask int32) causal.ManagerMetrics {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask))}
	return causal.ManagerMetrics{
		Appended:    reg.Counter("clonos_causal_determinants_total", "Determinants appended to the task's own causal logs.", lbl),
		Extractions: reg.Counter("clonos_causal_extractions_total", "Replica extractions served to recovering upstream peers.", lbl),
		DeltaEntries: reg.Counter("clonos_causal_delta_entries_total",
			"Determinants shared in piggybacked deltas (own and forwarded).", lbl),
		DeltaBytes: reg.Counter("clonos_causal_delta_bytes_total",
			"Encoded bytes of piggybacked determinant deltas.", lbl),
	}
}

// latencyHistogram returns the sink-side end-to-end latency histogram fed
// by arriving latency markers. Log-spaced buckets keep recovery-scale
// latencies (minutes) out of the overflow bucket.
func latencyHistogram(reg *obs.Registry, vertexName string, subtask int32) *obs.Histogram {
	lbl := obs.Labels{"vertex": vertexName, "subtask": strconv.Itoa(int(subtask))}
	return reg.Histogram("clonos_latency_e2e_seconds",
		"Source-to-sink end-to-end latency of latency markers.", obs.LatencyBuckets, lbl)
}

// registerGauges installs the task's callback gauges. Called from
// start() — never for idle standbys — so the live incarnation's closures
// replace the dead predecessor's.
func (t *Task) registerGauges() {
	reg := t.env.obs
	lbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask))}
	mailbox := t.mailbox
	reg.GaugeFunc("clonos_task_mailbox_depth", "Queued asynchronous events (timers, RPCs).", lbl,
		func() float64 { return float64(len(mailbox)) })
	if gate := t.gate; gate != nil {
		reg.GaugeFunc("clonos_netstack_queue_depth", "Buffers queued across the task's input channels.", lbl,
			func() float64 { return float64(gate.QueuedBuffers()) })
		reg.GaugeFunc("clonos_task_blocked_channels", "Input channels currently blocked for barrier alignment.", lbl,
			func() float64 { return float64(gate.BlockedChannels()) })
	}
	// Watermark progress gauges read the atomic shadows, so they are safe
	// concurrent with the main thread. Values are raw stream timestamps in
	// ms; unseeded channels surface as a huge negative number (MinInt64).
	reg.GaugeFunc("clonos_task_watermark_ms", "Combined (min) watermark the task has emitted.", lbl,
		func() float64 { return float64(t.wmShadow.Load()) })
	for i := range t.chanWmShadow {
		clbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask)), "channel": strconv.Itoa(i)}
		wm := &t.chanWmShadow[i]
		reg.GaugeFunc("clonos_task_channel_watermark_ms", "Highest watermark received on one input channel.", clbl,
			func() float64 { return float64(wm.Load()) })
	}
	if len(t.chanWmShadow) > 1 {
		shadows := t.chanWmShadow
		reg.GaugeFunc("clonos_task_watermark_skew_ms", "Spread (max-min) across seeded input-channel watermarks; the per-channel watermark lag.", lbl,
			func() float64 {
				lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
				seeded := 0
				for i := range shadows {
					v := shadows[i].Load()
					if v == math.MinInt64 || v == math.MaxInt64 {
						continue // unseeded or finished channels carry no lag signal
					}
					seeded++
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				if seeded < 2 {
					return 0
				}
				return float64(hi - lo)
			})
	}
	if len(t.allOut) > 0 {
		outs := t.allOut
		reg.GaugeFunc("clonos_outchannel_pending", "Output channels with direct sends suppressed (receiver down or replay in progress).", lbl,
			func() float64 {
				n := 0
				for _, oc := range outs {
					if oc.isPending() {
						n++
					}
				}
				return float64(n)
			})
	}
	if pool := t.logPool; pool != nil {
		plbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask)), "pool": "inflight-log"}
		reg.GaugeFunc("clonos_buffer_pool_free_buffers", "Free buffers in the pool.", plbl,
			func() float64 { return float64(pool.Available()) })
		reg.GaugeFunc("clonos_buffer_pool_total_buffers", "Total buffers owned by the pool.", plbl,
			func() float64 { return float64(pool.Total()) })
	}
	if len(t.allOut) > 0 {
		outs := t.allOut
		plbl := obs.Labels{"vertex": t.vertex.Name, "subtask": strconv.Itoa(int(t.id.Subtask)), "pool": "output"}
		reg.GaugeFunc("clonos_buffer_pool_free_buffers", "Free buffers in the pool.", plbl, func() float64 {
			n := 0
			for _, oc := range outs {
				n += oc.outPool.Available()
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_buffer_pool_total_buffers", "Total buffers owned by the pool.", plbl, func() float64 {
			n := 0
			for _, oc := range outs {
				n += oc.outPool.Total()
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_inflight_entries", "Buffers retained across the task's in-flight logs.", lbl, func() float64 {
			n := 0
			for _, oc := range outs {
				if oc.iflog != nil {
					n += oc.iflog.Count()
				}
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_inflight_mem_bytes", "Unspilled payload bytes across the task's in-flight logs.", lbl, func() float64 {
			n := 0
			for _, oc := range outs {
				if oc.iflog != nil {
					n += oc.iflog.MemBytes()
				}
			}
			return float64(n)
		})
		reg.GaugeFunc("clonos_inflight_truncation_floor", "Entries dropped by checkpoint truncation across the task's in-flight logs (lifetime floor).", lbl, func() float64 {
			n := 0
			for _, oc := range outs {
				if oc.iflog != nil {
					n += oc.iflog.Base()
				}
			}
			return float64(n)
		})
	}
	if cm := t.causal; cm != nil {
		reg.GaugeFunc("clonos_causal_log_entries", "Determinants retained across own logs and the replica store.", lbl,
			func() float64 { return float64(cm.SizeEntries()) })
		reg.GaugeFunc("clonos_causal_main_log_floor", "Absolute index of the oldest retained main-log determinant (checkpoint truncation floor).", lbl,
			func() float64 { return float64(cm.Main().Base()) })
	}
	// Guided-replay progress: determinants consumed vs. recovered for the
	// current incarnation. position == total once replay finished.
	reg.GaugeFunc("clonos_replay_position", "Determinants consumed by causally guided replay (current incarnation).", lbl,
		func() float64 { return float64(t.replayPosShadow.Load()) })
	reg.GaugeFunc("clonos_replay_total", "Determinants recovered for causally guided replay (current incarnation).", lbl,
		func() float64 { return float64(t.replayTotalShadow.Load()) })
	if h := t.metrics.latency; h != nil {
		reg.GaugeFunc("clonos_latency_p99_seconds", "Live p99 of marker end-to-end latency (bucket upper bound; see Histogram.Quantile).", lbl,
			func() float64 { return h.Quantile(0.99) })
	}
}

// runtimeMetrics are the job-level (not per-task) handles.
type runtimeMetrics struct {
	reg             *obs.Registry
	recoveries      *obs.Counter
	recoverySeconds *obs.Histogram
	stalledTasks    *obs.Gauge
}

func newRuntimeMetrics(reg *obs.Registry) runtimeMetrics {
	return runtimeMetrics{
		reg:             reg,
		recoveries:      reg.Counter("clonos_recovery_completed_total", "Local recoveries that reached caught-up.", nil),
		recoverySeconds: reg.Histogram("clonos_recovery_seconds", "Failure-detection to caught-up wall time.", obs.DefDurationBuckets, nil),
		stalledTasks:    reg.Gauge("clonos_stalled_tasks", "Tasks the stall watchdog currently considers stuck.", nil),
	}
}

// observeRecovery folds a completed recovery span into the registry:
// total duration plus one observation per protocol phase.
func (r *Runtime) observeRecovery(rec obs.SpanRecord) {
	r.metrics.recoveries.Inc()
	r.metrics.recoverySeconds.Observe(rec.Duration().Seconds())
	for _, p := range rec.Phases() {
		r.metrics.reg.Histogram("clonos_recovery_phase_seconds", "Per-phase recovery protocol time.",
			obs.DefDurationBuckets, obs.Labels{"phase": p.Name}).Observe(p.Dur.Seconds())
	}
}
