package job

import (
	"strings"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/obs"
	"clonos/internal/types"
)

// TestRecoverySpanAndMetrics injects one failure into a linear pipeline
// and asserts the observability layer saw the whole protocol: a recovery
// span with the named phase marks, the caught-up event, and the engine's
// metric families populated in the registry.
func TestRecoverySpanAndMetrics(t *testing.T) {
	const n = 4000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := buildLinear(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs() != reg {
		t.Fatal("runtime did not adopt the provided registry")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 8), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	failed := types.TaskID{Vertex: 1, Subtask: 0}
	if err := r.InjectFailure(failed); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v\n%s", r.Errors(), r.DebugString())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}

	// The recovery span must have completed with the protocol's phases in
	// order (replay-done only when the recovery was causally guided).
	var rec *obs.SpanRecord
	for _, sp := range r.Tracer().Spans() {
		if sp.Name == RecoverySpanName && sp.Attr("aborted") == "" {
			cp := sp
			rec = &cp
			break
		}
	}
	if rec == nil {
		t.Fatalf("no completed recovery span; spans: %+v", r.Tracer().Spans())
	}
	if got := rec.Attr("task"); got != failed.String() {
		t.Errorf("recovery span task = %q, want %q", got, failed.String())
	}
	var order []string
	for _, p := range rec.Phases() {
		order = append(order, p.Name)
	}
	want := []string{"standby-activated", "determinants-retrieved", "network-reconfigured"}
	if len(order) < len(want) {
		t.Fatalf("recovery phases = %v, want at least %v", order, want)
	}
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("phase[%d] = %q, want %q (all: %v)", i, order[i], name, order)
		}
	}
	if order[len(order)-1] != "caught-up" {
		t.Errorf("last phase = %q, want caught-up (all: %v)", order[len(order)-1], order)
	}

	// At least one checkpoint epoch span must have completed with the
	// lifecycle marks: trigger (span start), first-barrier, per-task
	// alignment completions, snapshot persistence, acks, complete.
	var epoch *obs.SpanRecord
	for _, sp := range r.Tracer().Spans() {
		if sp.Name == "checkpoint" && sp.Attr("aborted") == "" {
			cp := sp
			epoch = &cp
			break
		}
	}
	if epoch == nil {
		t.Fatalf("no completed checkpoint span; spans: %+v", r.Tracer().Spans())
	}
	markPrefixes := map[string]bool{}
	for _, m := range epoch.Marks {
		name := m.Name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		markPrefixes[name] = true
	}
	for _, want := range []string{"first-barrier", "align-complete", "snapshot-persisted", "ack", "complete"} {
		if !markPrefixes[want] {
			t.Errorf("checkpoint span missing %q mark; marks: %+v", want, epoch.Marks)
		}
	}

	caughtUp := false
	for _, ev := range r.Events() {
		if ev.Kind == EventCaughtUp && ev.Task == failed {
			caughtUp = true
		}
	}
	if !caughtUp {
		t.Error("no caught-up event for the recovered task")
	}

	// The registry must expose the engine's families with live values.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, family := range []string{
		"clonos_task_records_in_total",
		"clonos_task_records_out_total",
		"clonos_task_process_seconds_bucket",
		"clonos_netstack_accepted_total",
		"clonos_checkpoint_completed_total",
		"clonos_causal_determinants_total",
		"clonos_inflight_appended_total",
		"clonos_recovery_completed_total",
		"clonos_recovery_phase_seconds_bucket",
		"clonos_recovery_seconds_count",
		"clonos_checkpoint_align_seconds",
		"clonos_checkpoint_blocked_channel_seconds",
		"clonos_checkpoint_snapshots_total",
		"clonos_checkpoint_snapshot_bytes_total",
		"clonos_outchannel_send_seconds",
		"clonos_outchannel_pending",
		"clonos_netstack_send_stall_seconds",
		"clonos_buffer_wait_seconds",
		"clonos_buffer_pool_free_buffers",
		"clonos_task_watermark_ms",
		"clonos_task_channel_watermark_ms",
		"clonos_task_watermark_skew_ms",
		"clonos_task_blocked_channels",
		"clonos_stalled_tasks",
		"clonos_tracer_ring_events",
		"clonos_tracer_dropped_spans",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
	if c := reg.Counter("clonos_recovery_completed_total", "", nil); c.Value() < 1 {
		t.Errorf("clonos_recovery_completed_total = %d, want >= 1", c.Value())
	}
	sum := reg.Counter("clonos_task_records_in_total", "", obs.Labels{"vertex": "double", "subtask": "0"})
	if sum.Value() == 0 {
		t.Error("recovered task's records_in counter is zero; handles not shared across incarnations?")
	}
}
