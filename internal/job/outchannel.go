package job

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/faultinject"
	"clonos/internal/inflight"
	"clonos/internal/netstack"
	"clonos/internal/types"
)

// channelGen hands out process-wide unique connection generations, one
// per outChannel incarnation, used to fence off a crashed predecessor's
// lingering sends (see Endpoint.Rebind).
var channelGen atomic.Uint64

// replayCorruptFn rewrites a replayed payload; see testReplayCorrupt.
type replayCorruptFn func(ch types.ChannelID, seq uint64, data []byte) []byte

// testReplayCorrupt, when set, rewrites replayed payloads before they
// are audited and re-sent — the divergence-injection hook the audit
// tests use to prove the replay-hash invariant fires. Never set outside
// tests (the crash-point injector owns production fault injection).
var testReplayCorrupt atomic.Pointer[replayCorruptFn]

// outChannel is the sender side of one physical channel: serializer,
// output buffer pool, in-flight log, sequence numbering, and the replay /
// deduplication machinery used during recovery.
type outChannel struct {
	id   types.ChannelID
	task *Task
	// gen is this incarnation's connection generation, stamped on every
	// outgoing message.
	gen uint64

	writer  *netstack.ChannelWriter
	outPool *buffer.Pool
	iflog   *inflight.Log

	mu      sync.Mutex
	nextSeq uint64
	epoch   types.EpochID
	// epochStartSeq is nextSeq at the current epoch's start, the floor
	// for replay when the in-flight log has no entries yet.
	epochStartSeq uint64
	// pending suppresses direct sends: the receiver is down or a replay
	// to it is in progress; dispatched buffers go to the log only
	// (§6.1: processing never stops while downstream recovers).
	pending bool
	// sentUpTo is the highest seq already transmitted on the current
	// connection; the direct path skips anything at or below it so the
	// replay→direct handoff neither duplicates nor drops a buffer.
	sentUpTo uint64
	// dedupUpTo makes dispatch skip transmitting seqs <= it: sender-side
	// deduplication after this task's own recovery (§5.2), covering
	// output its predecessor already delivered.
	dedupUpTo uint64
	// replaySeq is the next seq the replay goroutine will transmit; a
	// new replay request resets it, and the running loop picks the
	// reset up (restartable replay for repeated downstream failures).
	replaySeq uint64
	// resetPending marks that the next transmitted message starts a
	// fresh byte stream (divergent recovery): the receiver must drop
	// partial deserializer state from the predecessor.
	resetPending bool
	// replayActive guards against concurrent replay goroutines.
	replayActive bool

	// retryWake is signalled (capacity 1, never blocking) whenever the
	// receiving side may have become able to accept a previously rejected
	// replay push: a new replay request redirected the loop, the
	// receiver's endpoint was opened, the channel resumed direct sending,
	// or it closed. The replay loop parks here instead of busy-waiting.
	retryWake chan struct{}
}

func newOutChannel(t *Task, id types.ChannelID, outPool *buffer.Pool, iflog *inflight.Log) *outChannel {
	// epoch starts at 1 to match the task's initial epoch: buffers
	// dispatched before the first barrier belong to epoch 1, and a replay
	// request for epoch 1 (a failure before the first completed
	// checkpoint) must find them — FirstSeqOfEpoch scans by entry epoch,
	// so epoch-0 labels would silently drop the whole pre-barrier prefix.
	oc := &outChannel{id: id, task: t, gen: channelGen.Add(1), outPool: outPool, iflog: iflog, nextSeq: 1, epochStartSeq: 1,
		epoch: 1, retryWake: make(chan struct{}, 1)}
	edge := t.graph().Edges[id.Edge]
	oc.writer = netstack.NewChannelWriter(outPool, edge.CodecOrDefault(), oc.dispatch)
	return oc
}

// wakeReplay nudges a replay loop parked on a rejected push (non-blocking;
// a single buffered token coalesces bursts).
func (oc *outChannel) wakeReplay() {
	select {
	case oc.retryWake <- struct{}{}:
	default:
	}
}

// dispatch receives a filled buffer from the writer (writer lock held):
// stamp seq/epoch, log the BUFFERSIZE determinant, attach the causal
// delta, append to the in-flight log (with the §6.1 buffer-pool
// exchange), and transmit unless pending or deduplicated. dispatch owns
// b's structural reference and must settle it on every path.
//
//clonos:owns-transfer
func (oc *outChannel) dispatch(b *buffer.Buffer) error {
	oc.mu.Lock()
	seq := oc.nextSeq
	oc.nextSeq++
	b.Seq = seq
	b.Epoch = oc.epoch
	oc.mu.Unlock()

	t := oc.task
	t.metrics.bytesOut.Add(uint64(b.Len()))
	if t.causal != nil {
		t.causal.AppendBufferSize(oc.id, b.Len())
		b.Delta = t.causal.DeltaFor(oc.id)
	}

	// Alias the payload into a pooled message: the wire retains the
	// buffer (Bind), so the in-flight log's spiller can drop its own
	// reference concurrently without the bytes going away — no copy.
	// The delta is aliased too; deltas are freshly allocated per buffer
	// and never mutated.
	msg := netstack.NewMessage()
	msg.Channel = oc.id
	msg.Seq = seq
	msg.Epoch = b.Epoch
	msg.Gen = oc.gen
	msg.Delta = b.Delta
	msg.Bind(b)

	if oc.iflog == nil {
		// No in-flight logging (at-most-once / baseline): transmit, then
		// drop the structural reference with the channel pool as the
		// recycle destination (deferred until the receiver releases).
		err := oc.maybeTransmit(msg)
		b.ReleaseTo(oc.outPool)
		return err
	}

	// The log takes the sent buffer and donates one of its own to the
	// channel pool. Take blocks when the log pool is exhausted — the
	// backpressure behaviour §7.5 measures.
	replacement := t.logPool.Take()
	if replacement == nil {
		// Log pool closed (shutdown): the message drops its payload
		// reference, and the structural reference — which would have gone
		// to the in-flight log — returns to the channel pool instead of
		// leaking the pool slot.
		msg.Release()
		b.ReleaseTo(oc.outPool)
		return netstack.ErrWriterClosed
	}
	oc.outPool.Forfeit()
	oc.outPool.Donate(replacement)
	if err := oc.iflog.Append(b); err != nil {
		// Closed log kept the caller's reference: settle it here, same as
		// above — without this the buffer (and its pool slot) leaks on
		// every dispatch raced by shutdown.
		msg.Release()
		b.ReleaseTo(oc.outPool)
		return err
	}
	// The send decision comes *after* the log append so the replay
	// goroutine's caught-up check (log tail under oc.mu) and this check
	// serialize correctly — exactly one of them transmits each seq.
	return oc.maybeTransmit(msg)
}

// maybeTransmit sends a message on the direct path unless the channel is
// pending, the seq was already covered by a replay, or it is
// deduplicated after recovery. A broken receiver flips the channel to
// pending: the task keeps producing into the in-flight log while
// downstream is dead (or loses the data, at-most-once). maybeTransmit
// always takes ownership of m: it releases it, or hands it to the
// receiving endpoint.
//
//clonos:owns-transfer
func (oc *outChannel) maybeTransmit(m *netstack.Message) error {
	oc.mu.Lock()
	send := !oc.pending && m.Seq > oc.sentUpTo && m.Seq > oc.dedupUpTo
	dedup := !oc.pending && m.Seq > oc.sentUpTo && m.Seq <= oc.dedupUpTo
	if send {
		oc.sentUpTo = m.Seq
		if oc.resetPending {
			m.StreamReset = true
			oc.resetPending = false
		}
	}
	oc.mu.Unlock()
	if dedup {
		oc.task.metrics.dedupDiscarded.Inc()
		if a := oc.task.audit; a != nil {
			// A dedup-suppressed buffer is this incarnation's re-production
			// of output its predecessor already delivered: guided replay
			// promises byte identity, so the payload must hash-match what
			// the receiver recorded for this seq (before Release below).
			a.OnResend(oc.task.id, oc.id, m.Seq, m.Epoch, m.Data, "dedup")
		}
	}
	if !send {
		m.Release()
		return nil
	}
	err := oc.send(m)
	if err == nil {
		// Ownership of m (and its payload reference) transferred to the
		// receiving endpoint.
		return nil
	}
	m.Release()
	if errors.Is(err, netstack.ErrChannelBroken) {
		oc.mu.Lock()
		oc.pending = true
		oc.mu.Unlock()
		return nil
	}
	return err
}

// send pushes a message to the live endpoint, returning the raw error.
// The wall time of each push — including any credit-limit stall inside
// the receiving endpoint — feeds the send-stall histogram, making
// backpressure on this channel visible per sending task.
//
//clonos:owns-transfer on-success
func (oc *outChannel) send(m *netstack.Message) error {
	start := time.Now()
	err := oc.task.env.net.Send(m)
	oc.task.metrics.sendStall.ObserveSince(start)
	return err
}

// isPending reports whether direct sends are suppressed (receiver down
// or replay in progress). Safe off-thread; backs the pending gauge.
func (oc *outChannel) isPending() bool {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.pending
}

// startEpoch advances the channel's epoch after its barrier was flushed.
func (oc *outChannel) startEpoch(e types.EpochID) {
	oc.mu.Lock()
	oc.epoch = e
	oc.epochStartSeq = oc.nextSeq
	oc.mu.Unlock()
	if oc.iflog != nil {
		oc.iflog.StartEpoch(e)
	}
	if oc.task.causal != nil {
		oc.task.causal.StartEpochChannel(oc.id, e)
	}
}

// restore resets sequencing after a checkpoint restore.
func (oc *outChannel) restore(nextSeq uint64, epoch types.EpochID) {
	oc.mu.Lock()
	oc.nextSeq = nextSeq
	oc.epochStartSeq = nextSeq
	oc.sentUpTo = 0
	oc.epoch = epoch
	oc.mu.Unlock()
	if oc.iflog != nil {
		oc.iflog.StartEpoch(epoch)
	}
}

// PrepareReplay arms a downstream in-flight replay request (§2.2 step 5):
// it computes the first seq to retransmit (the requested epoch's first
// logged buffer, past afterSeq), flips the channel to pending, and starts
// (or redirects) the replay goroutine. It returns the start seq so the
// requester can open its endpoint with AcceptFrom(start) — only then will
// the replayed pushes be accepted, which serializes correctly against any
// stale direct sends.
func (oc *outChannel) PrepareReplay(fromEpoch types.EpochID, afterSeq uint64) (uint64, error) {
	if oc.iflog == nil {
		return 0, fmt.Errorf("job: channel %v has no in-flight log", oc.id)
	}
	oc.mu.Lock()
	start, ok := oc.iflog.FirstSeqOfEpoch(fromEpoch)
	if !ok {
		// The requested epoch must not have been truncated away — that
		// would mean the requester restored a checkpoint older than the
		// latest completed one (a protocol violation; recovery always
		// restores the newest completed checkpoint).
		if first, has := oc.iflog.FirstEpoch(); has && first > fromEpoch {
			oc.mu.Unlock()
			return 0, fmt.Errorf("job: channel %v: replay request for epoch %d but oldest retained epoch is %d (stale restore point)",
				oc.id, fromEpoch, first)
		}
		// Nothing retained for that epoch yet (e.g. this task is itself
		// mid-recovery and the log is being rebuilt): start at the
		// epoch's first seq.
		start = oc.epochStartSeq
	}
	if afterSeq+1 > start {
		start = afterSeq + 1
	}
	oc.pending = true
	oc.replaySeq = start
	oc.sentUpTo = start - 1
	spawn := !oc.replayActive
	oc.replayActive = true
	oc.mu.Unlock()
	if spawn {
		go oc.replayLoop()
	} else {
		// Redirect a running loop that may be parked on a rejected push.
		oc.wakeReplay()
	}
	return start, nil
}

// replayLoop retransmits logged buffers from replaySeq onward, retrying
// transient rejections (the receiver's endpoint opens only once its
// replay request is processed) and following replaySeq resets from newer
// requests. Once it catches up with the log tail it atomically hands the
// channel back to direct sending.
func (oc *outChannel) replayLoop() {
	for {
		if oc.task.crashed.Load() {
			oc.mu.Lock()
			oc.replayActive = false
			oc.mu.Unlock()
			return
		}
		oc.mu.Lock()
		seq := oc.replaySeq
		oc.mu.Unlock()
		entry, data, ok, err := oc.iflog.ReadEntry(seq)
		if err != nil {
			oc.task.env.reportTaskError(oc.task.id, fmt.Errorf("replay %v: %w", oc.id, err))
			oc.mu.Lock()
			oc.replayActive = false
			oc.mu.Unlock()
			return
		}
		if !ok {
			// Possibly caught up with the log tail. Decide atomically
			// against dispatch: with oc.mu held, any entry appended
			// before this check is visible in the log tail.
			oc.mu.Lock()
			if oc.replaySeq != seq {
				oc.mu.Unlock() // redirected by a newer request
				continue
			}
			last, has := oc.iflog.LastSeq()
			if !has || seq > last {
				oc.pending = false
				oc.replayActive = false
				oc.mu.Unlock()
				return
			}
			oc.mu.Unlock()
			continue
		}
		if oc.task.crashPoint(faultinject.PointServeReplayEntry) {
			// This task died mid-retransmission; the loop head performs
			// the crashed-task cleanup and exit.
			continue
		}
		if pf := testReplayCorrupt.Load(); pf != nil {
			data = (*pf)(oc.id, entry.Seq, data)
		}
		if a := oc.task.audit; a != nil {
			// Replayed bytes must match what the (possibly dead) receiver
			// incarnation recorded at original delivery — the sender-side
			// half of the replay-hash check; the receiving endpoint's
			// OnDeliver re-checks on acceptance.
			a.OnResend(oc.task.id, oc.id, entry.Seq, entry.Epoch, data, "replay")
		}
		m := netstack.NewMessage()
		m.Channel = oc.id
		m.Seq = entry.Seq
		m.Epoch = entry.Epoch
		m.Gen = oc.gen
		m.Data = data // ReadEntry returns a private copy
		m.Delta = entry.Delta
		m.Replayed = true
		sendErr := oc.send(m)
		if sendErr != nil {
			m.Release() // rejected pushes leave ownership with the sender
		}
		oc.mu.Lock()
		if oc.replaySeq != seq {
			oc.mu.Unlock()
			continue // redirected mid-send; the push was rejected or superseded
		}
		if sendErr != nil {
			oc.mu.Unlock()
			oc.task.metrics.replayRetries.Inc()
			// Receiver not (yet, or no longer) accepting. Park until the
			// receiving side changes — a replay redirect, its endpoint
			// opening, or this task aborting — rather than spinning: if
			// the receiver never comes back, a sleep-retry loop would spin
			// forever. The timer is a lost-wake-up safety net across
			// endpoint replacement, not a polling interval.
			select {
			case <-oc.retryWake:
			case <-oc.task.abort:
			case <-time.After(250 * time.Millisecond):
			}
			continue
		}
		oc.replaySeq = seq + 1
		if entry.Seq > oc.sentUpTo {
			oc.sentUpTo = entry.Seq
		}
		oc.mu.Unlock()
		oc.task.metrics.replayServed.Inc()
	}
}

// resumeDirect flips the channel to direct sending without any replay
// (at-most-once gap recovery), renumbering past the receiver's view.
func (oc *outChannel) resumeDirect(afterSeq uint64) {
	oc.mu.Lock()
	if afterSeq+1 > oc.nextSeq {
		oc.nextSeq = afterSeq + 1
	}
	oc.sentUpTo = oc.nextSeq - 1
	oc.pending = false
	oc.resetPending = true
	oc.mu.Unlock()
	oc.wakeReplay()
}

// setDedup configures sender-side deduplication after this task's own
// recovery: buffers with seq <= upTo rebuild the in-flight log but are
// not retransmitted (§2.2 step 6).
func (oc *outChannel) setDedup(upTo uint64) {
	oc.mu.Lock()
	prev := oc.dedupUpTo
	oc.dedupUpTo = upTo
	oc.mu.Unlock()
	if a := oc.task.audit; a != nil {
		a.OnDedupFloor(oc.task.id, oc.id, prev, upTo)
	}
}

// forceNextSeq aligns sequencing with the receiver for at-least-once
// recovery, where divergent replay produces fresh (possibly duplicate)
// records rather than byte-identical buffers.
func (oc *outChannel) forceNextSeq(seq uint64) {
	oc.mu.Lock()
	oc.nextSeq = seq
	oc.epochStartSeq = seq
	oc.sentUpTo = seq - 1
	oc.resetPending = true
	oc.mu.Unlock()
}

func (oc *outChannel) close() {
	if oc.iflog != nil {
		oc.iflog.Close()
	}
	oc.outPool.Close()
	oc.wakeReplay()
}
