package job

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/operator"
	"clonos/internal/services"
	"clonos/internal/types"
)

// nondetSink is a sink whose output depends on nondeterminism: it stamps
// every record with an external-service version and a wall-clock read.
// Without §5.5 determinant piggybacking, a failed sink's divergent
// re-execution would publish different stamps for the same records.
func nondetSinkGraph(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, eoo bool) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", 1, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 50})
	stamp := operator.NewProcess("stamp", func(ctx operator.Context, _ int, e types.Element) error {
		resp, err := ctx.Services().HTTPGet("audit/log")
		if err != nil {
			return err
		}
		version := binary.BigEndian.Uint64(resp[len(resp)-8:])
		ctx.Emit(e.Key, e.Timestamp, fmt.Sprintf("%d@%d", e.Value.(int64), version))
		return nil
	})
	ks := operator.NewKafkaSink("sink", sink)
	ks.ExactlyOnceOutput = eoo
	sinkV := g.AddVertex("sink", 1, nil, stamp, ks)
	g.Connect(src, sinkV, PartitionHash, nil, nil)
	return g
}

// TestExactlyOnceOutputSinkRecovery exercises the §5.5 extension: the
// SINK task (which has no downstream tasks to replicate determinants to)
// piggybacks its determinants onto the output topic; when it fails, the
// topic returns them and the sink recovers causally guided — external
// calls already observed in published records are not re-issued and the
// republished records are identical.
func TestExactlyOnceOutputSinkRecovery(t *testing.T) {
	const n = 4000
	world := services.NewExternalWorld()
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := nondetSinkGraph(topic, sink, true)
	cfg := quickConfig(ModeClonos)
	cfg.World = world
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 4), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}

	recs := sink.All()
	if len(recs) != n {
		t.Fatalf("published %d records, want %d", len(recs), n)
	}
	// Each logical record published exactly once, and every observed
	// version stamp used at most once (causally guided sink replay —
	// not fresh re-execution).
	seenVal := map[int64]bool{}
	seenVer := map[string]bool{}
	for _, rec := range recs {
		var v int64
		var ver uint64
		if _, err := fmt.Sscanf(rec.Value.(string), "%d@%d", &v, &ver); err != nil {
			t.Fatalf("bad record %q", rec.Value)
		}
		if seenVal[v] {
			t.Fatalf("record %d published twice", v)
		}
		seenVal[v] = true
		key := fmt.Sprint(ver)
		if seenVer[key] {
			t.Fatalf("external version %d used twice", ver)
		}
		seenVer[key] = true
	}
	if world.Calls() < n || world.Calls() > n+500 {
		t.Fatalf("external calls = %d for %d records", world.Calls(), n)
	}
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart: %+v", ev)
		}
	}
	// The topic actually served the recovery: determinants were stored.
	if sink.StoredDeltaCount() == 0 {
		t.Fatal("no determinants stored at the output system")
	}
}

// TestExactlyOnceOutputTruncation verifies §5.5's "determinants of a
// previous epoch can be truncated after each checkpoint".
func TestExactlyOnceOutputTruncation(t *testing.T) {
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := nondetSinkGraph(topic, sink, true)
	cfg := quickConfig(ModeClonos)
	cfg.World = services.NewExternalWorld()
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 2000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 4), Ts: i, Value: i}, true
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(4, 10*time.Second) {
		t.Fatalf("checkpoints stalled: %v", r.Errors())
	}
	// Retained chunks must only cover epochs after the last completed
	// checkpoint (plus the in-flight one).
	cp := uint64(r.LatestCompletedCheckpoint())
	for _, chunk := range sink.DeltasFor("v1[0]") {
		if chunk.Epoch <= cp-1 {
			t.Fatalf("chunk of epoch %d retained after checkpoint %d completed", chunk.Epoch, cp)
		}
	}
}
