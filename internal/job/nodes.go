package job

import (
	"fmt"

	"clonos/internal/types"
)

// AllocationStrategy places standby tasks on simulated cluster nodes
// (§6.3): the choice trades resource utilization and performance against
// failure safety — a standby co-located with its running task dies with
// the node.
type AllocationStrategy int

const (
	// AllocSameAsRunning spreads standbys with the same round-robin
	// strategy as the running tasks (the paper's default); collisions
	// with the mirrored task are possible.
	AllocSameAsRunning AllocationStrategy = iota
	// AllocAntiAffinity guarantees a standby lands on a different node
	// than the task it mirrors (maximum failure safety).
	AllocAntiAffinity
	// AllocCoLocated places each standby on its running task's node
	// (locality/performance over safety).
	AllocCoLocated
)

func (a AllocationStrategy) String() string {
	switch a {
	case AllocAntiAffinity:
		return "anti-affinity"
	case AllocCoLocated:
		return "co-located"
	default:
		return "same-as-running"
	}
}

// assignNodes places running tasks and standbys on the configured number
// of simulated nodes. Call with r.mu held, after tasks/standbys exist.
func (r *Runtime) assignNodes() {
	n := r.cfg.Nodes
	if n <= 0 {
		return // node simulation disabled
	}
	ids := r.graph.AllTaskIDs()
	for i, id := range ids {
		r.nodeOf[id] = i % n
	}
	for i, id := range ids {
		if _, ok := r.standbys[id]; !ok {
			continue
		}
		running := r.nodeOf[id]
		switch r.cfg.StandbyAllocation {
		case AllocAntiAffinity:
			if n > 1 {
				r.standbyNodeOf[id] = (running + 1) % n
			} else {
				r.standbyNodeOf[id] = running
			}
		case AllocCoLocated:
			r.standbyNodeOf[id] = running
		default:
			// Continue the running tasks' round-robin.
			r.standbyNodeOf[id] = (len(ids) + i) % n
		}
	}
}

// NodeOf reports the simulated node hosting a running task (-1 when node
// simulation is disabled).
func (r *Runtime) NodeOf(id types.TaskID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if node, ok := r.nodeOf[id]; ok {
		return node
	}
	return -1
}

// StandbyNodeOf reports the node hosting a task's standby (-1 if none).
func (r *Runtime) StandbyNodeOf(id types.TaskID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if node, ok := r.standbyNodeOf[id]; ok {
		return node
	}
	return -1
}

// InjectNodeFailure crashes every running task on a simulated node and
// destroys any standby task hosted there (§6.3: co-located standbys die
// with the node; their tasks recover from a fresh replacement loaded off
// the snapshot store instead).
func (r *Runtime) InjectNodeFailure(node int) error {
	if r.cfg.Nodes <= 0 {
		return fmt.Errorf("job: node simulation disabled (Config.Nodes == 0)")
	}
	r.mu.Lock()
	var victims []*Task
	for id, t := range r.tasks {
		if r.nodeOf[id] == node && !r.finished[id] {
			victims = append(victims, t)
		}
	}
	var lostStandbys []types.TaskID
	for id, standbyNode := range r.standbyNodeOf {
		if standbyNode != node {
			continue
		}
		if standby, ok := r.standbys[id]; ok {
			delete(r.standbys, id)
			lostStandbys = append(lostStandbys, id)
			for _, oc := range standby.allOut {
				oc.close()
			}
		}
	}
	r.mu.Unlock()
	r.recordEvent(EventNodeFailure, types.TaskID{}, fmt.Sprintf("node=%d tasks=%d standbys-lost=%d", node, len(victims), len(lostStandbys)))
	for _, t := range victims {
		r.recordEvent(EventFailureInjected, t.id, fmt.Sprintf("node=%d", node))
		t.crash()
	}
	return nil
}
