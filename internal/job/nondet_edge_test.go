package job

import (
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/services"
	"clonos/internal/types"
)

func TestNondetFailureBeforeFirstCheckpoint(t *testing.T) {
	const n = 3000
	world := services.NewExternalWorld()
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := nondetPipeline(topic, sink, world)
	cfg := quickConfig(ModeClonos)
	cfg.CheckpointInterval = 10 * time.Second
	cfg.World = world
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 4), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	time.Sleep(250 * time.Millisecond)
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	if sink.Len() != n || world.Calls() < n || world.Calls() > n+500 {
		t.Fatalf("records=%d calls=%d want %d (+ bounded unobserved tail)", sink.Len(), world.Calls(), n)
	}
}

// TestNondetFailureAcrossEpochBoundary recreates the fraud-example
// scenario that exposed a service-state determinism bug: with a longer
// checkpoint interval and a failure shortly after the first checkpoint,
// the timestamp cache's validity must not leak across epoch boundaries
// (the standby starts the epoch cold; so must the original).
func TestNondetFailureAcrossEpochBoundary(t *testing.T) {
	const n = 5000
	world := services.NewExternalWorld()
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := nondetPipeline(topic, sink, world)
	cfg := DefaultConfig() // paper-scaled intervals: cp 500ms, hb 600ms
	cfg.World = world
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 4), Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	time.Sleep(400 * time.Millisecond)
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	if sink.Len() != n || world.Calls() < n || world.Calls() > n+500 {
		t.Fatalf("records=%d calls=%d want %d (+ bounded unobserved tail)", sink.Len(), world.Calls(), n)
	}
}
