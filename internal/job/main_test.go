package job

import (
	"testing"

	"clonos/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: every runtime a test
// starts owns task main threads, heartbeaters, flushers, timer threads,
// and spillers — a leak here means Shutdown (or recovery teardown) left
// one behind.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
