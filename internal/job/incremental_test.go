package job

import (
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

// TestIncrementalCheckpointsRecovery runs the keyed-sum pipeline with
// incremental checkpoints and a mid-run failure: recovery restores the
// reconstructed full image and exactly-once semantics hold, while the
// snapshot traffic shows deltas doing most of the shipping (§6.4).
func TestIncrementalCheckpointsRecovery(t *testing.T) {
	const n = 4000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	cfg.IncrementalCheckpoints = true
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 5, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(2, 30*time.Second) {
		t.Fatalf("no checkpoints: %v", r.Errors())
	}
	if err := r.InjectFailure(types.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	checkSums(t, finalSums(sink), expectedSums(n, 5), "incremental checkpoints")

	full, delta := r.snaps.SnapshotTraffic()
	if delta == 0 {
		t.Fatal("no incremental snapshots were taken")
	}
	if full == 0 {
		t.Fatal("no full baseline snapshot was taken")
	}
	t.Logf("snapshot traffic: full=%dB delta=%dB", full, delta)
}

// TestIncrementalCheckpointsDeltaSmaller verifies the point of §6.4: with
// a large, mostly-cold state, total snapshot traffic with incremental
// checkpoints is far below full-snapshot mode for the same workload.
func TestIncrementalCheckpointsDeltaSmaller(t *testing.T) {
	runTraffic := func(incremental bool) uint64 {
		topic := kafkasim.NewTopic("in", 1)
		sink := kafkasim.NewSinkTopic(true)
		g := keySumPipeline(topic, sink, 1)
		cfg := quickConfig(ModeClonos)
		cfg.IncrementalCheckpoints = incremental
		cfg.Standby = false
		r, err := NewRuntime(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()

		// Phase 1: populate many keys (cold state). Phase 2: touch few.
		gen := kafkasim.NewGenerator(topic, 10000, func(i int64) (kafkasim.Record, bool) {
			key := uint64(i) % 2000 // wide key space first
			if i >= 4000 {
				key = uint64(i) % 3 // then a narrow hot set
			}
			return kafkasim.Record{Key: key, Ts: i, Value: i}, i < 20000
		})
		gen.Start()
		defer gen.Stop()

		if !r.WaitForCheckpoint(8, 20*time.Second) {
			t.Fatalf("checkpoints stalled: %v", r.Errors())
		}
		full, delta := r.snaps.SnapshotTraffic()
		if incremental && delta == 0 {
			t.Fatal("no incremental snapshots were taken")
		}
		return full + delta
	}
	fullMode := runTraffic(false)
	incMode := runTraffic(true)
	t.Logf("snapshot traffic: full-mode=%dB incremental=%dB", fullMode, incMode)
	if incMode >= fullMode {
		t.Fatalf("incremental traffic (%dB) not below full-snapshot traffic (%dB)", incMode, fullMode)
	}
}
