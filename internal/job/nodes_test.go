package job

import (
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

// runNodeFailure runs the keyed-sum pipeline on a simulated cluster,
// kills one node mid-run, and returns the runtime and sink for checks.
func runNodeFailure(t *testing.T, alloc AllocationStrategy, nodes int) (*Runtime, *kafkasim.SinkTopic, int) {
	t.Helper()
	const n = 4000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	cfg.Nodes = nodes
	cfg.StandbyAllocation = alloc
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)

	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 5, Ts: i, Value: i}, i < n
	})
	gen.Start()
	t.Cleanup(gen.Stop)

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	// Kill the node hosting the first sum subtask.
	victim := r.NodeOf(types.TaskID{Vertex: 1, Subtask: 0})
	if victim < 0 {
		t.Fatal("node simulation inactive")
	}
	if err := r.InjectNodeFailure(victim); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	checkSums(t, finalSums(sink), expectedSums(n, 5), "node failure")
	return r, sink, n
}

func TestNodeFailureAntiAffinity(t *testing.T) {
	// Anti-affinity guarantees the standby of each task on the failed
	// node survives it (standbys of *other* tasks may still be lost);
	// this is verified by placement before the failure (see
	// TestNodePlacementStrategies) and by the exactly-once outcome in
	// runNodeFailure after the node dies.
	r, _, _ := runNodeFailure(t, AllocAntiAffinity, 4)
	for _, id := range r.Graph().AllTaskIDs() {
		if run, sb := r.NodeOf(id), r.StandbyNodeOf(id); sb >= 0 && run == sb {
			t.Fatalf("anti-affinity placed %v's standby on its own node %d", id, run)
		}
	}
}

func TestNodeFailureCoLocatedStandbyLost(t *testing.T) {
	r, _, _ := runNodeFailure(t, AllocCoLocated, 4)
	// Co-location: the standby dies with the node; recovery still
	// succeeds (fresh replacement from the snapshot store) but the §6.3
	// safety trade-off is visible.
	lostSeen := false
	for _, ev := range r.Events() {
		if ev.Kind == EventNodeFailure && !containsStr(ev.Info, "standbys-lost=0") {
			lostSeen = true
		}
	}
	if !lostSeen {
		t.Fatal("co-located standby survived its node's failure")
	}
}

func TestNodePlacementStrategies(t *testing.T) {
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	for _, tc := range []struct {
		alloc AllocationStrategy
		check func(running, standby int) bool
		name  string
	}{
		{AllocAntiAffinity, func(run, sb int) bool { return run != sb }, "anti-affinity"},
		{AllocCoLocated, func(run, sb int) bool { return run == sb }, "co-located"},
	} {
		cfg := quickConfig(ModeClonos)
		cfg.Nodes = 3
		cfg.StandbyAllocation = tc.alloc
		r, err := NewRuntime(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		for _, id := range r.Graph().AllTaskIDs() {
			run, sb := r.NodeOf(id), r.StandbyNodeOf(id)
			if sb < 0 {
				t.Fatalf("%s: no standby node for %v", tc.name, id)
			}
			if !tc.check(run, sb) {
				t.Errorf("%s: task %v on node %d, standby on %d", tc.name, id, run, sb)
			}
		}
		r.Stop()
	}
	topic.Close()
}

func TestInjectNodeFailureDisabled(t *testing.T) {
	topic := kafkasim.NewTopic("in", 1)
	topic.Close()
	g := buildLinear(topic, kafkasim.NewSinkTopic(true), 1)
	r, err := NewRuntime(g, quickConfig(ModeClonos))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.InjectNodeFailure(0); err == nil {
		t.Fatal("node failure accepted with simulation disabled")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
