// Package job implements the execution layer: the dataflow graph, the
// task runtime (mailbox main loop, barrier alignment, causally logged
// execution, output dispatch with in-flight logging), the job manager with
// heartbeat failure detection, standby tasks, and both recovery protocols
// — global rollback (the Flink baseline) and Clonos local recovery.
package job

import (
	"fmt"

	"clonos/internal/codec"
	"clonos/internal/operator"
	"clonos/internal/types"
)

// Partitioner selects how records are routed across an edge.
type Partitioner int

const (
	// PartitionForward connects subtask i to subtask i (equal parallelism).
	PartitionForward Partitioner = iota
	// PartitionHash routes by key modulo downstream parallelism,
	// re-keying with the edge's KeyOf when set.
	PartitionHash
	// PartitionRebalance round-robins records (counter kept in state so
	// replay reproduces routing).
	PartitionRebalance
	// PartitionBroadcast sends every record to all downstream subtasks.
	PartitionBroadcast
)

func (p Partitioner) String() string {
	switch p {
	case PartitionForward:
		return "forward"
	case PartitionHash:
		return "hash"
	case PartitionRebalance:
		return "rebalance"
	case PartitionBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("partitioner(%d)", int(p))
	}
}

// Vertex is one logical operator chain of the dataflow graph.
type Vertex struct {
	ID          types.VertexID
	Name        string
	Parallelism int
	// Source drives input vertices; nil otherwise.
	Source operator.Source
	// Operators is the fused chain executed per record.
	Operators []operator.Operator

	InEdges  []*Edge
	OutEdges []*Edge
}

// Edge is a logical connection between two vertices.
type Edge struct {
	ID          types.EdgeID
	From, To    *Vertex
	Partitioner Partitioner
	// KeyOf re-keys records for hash partitioning; nil keeps the
	// producing record's key.
	KeyOf func(v any) uint64
	// Codec serializes record values on this edge; nil auto-selects the
	// registered typed codec per value (codec.Auto), with gob as the
	// fallback for unregistered types.
	Codec codec.Codec
}

// CodecOrDefault returns the edge codec. The default is the registry
// dispatcher: values of registered concrete types take the hand-written
// reflection-free encoding, everything else the tagged gob fallback.
func (e *Edge) CodecOrDefault() codec.Codec {
	if e.Codec != nil {
		return e.Codec
	}
	return codec.Auto{}
}

// Graph is a logical dataflow DAG.
type Graph struct {
	Vertices []*Vertex
	Edges    []*Edge
}

// NewGraph creates an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddVertex appends a vertex, assigning its ID.
func (g *Graph) AddVertex(name string, parallelism int, src operator.Source, ops ...operator.Operator) *Vertex {
	v := &Vertex{
		ID:          types.VertexID(len(g.Vertices)),
		Name:        name,
		Parallelism: parallelism,
		Source:      src,
		Operators:   ops,
	}
	g.Vertices = append(g.Vertices, v)
	return v
}

// Connect adds an edge from one vertex to another.
func (g *Graph) Connect(from, to *Vertex, p Partitioner, keyOf func(v any) uint64, c codec.Codec) *Edge {
	e := &Edge{
		ID:          types.EdgeID(len(g.Edges)),
		From:        from,
		To:          to,
		Partitioner: p,
		KeyOf:       keyOf,
		Codec:       c,
	}
	g.Edges = append(g.Edges, e)
	from.OutEdges = append(from.OutEdges, e)
	to.InEdges = append(to.InEdges, e)
	return e
}

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	for _, v := range g.Vertices {
		if v.Parallelism <= 0 {
			return fmt.Errorf("job: vertex %q has parallelism %d", v.Name, v.Parallelism)
		}
		if v.Source == nil && len(v.InEdges) == 0 {
			return fmt.Errorf("job: non-source vertex %q has no inputs", v.Name)
		}
		if v.Source != nil && len(v.InEdges) > 0 {
			return fmt.Errorf("job: source vertex %q has inputs", v.Name)
		}
	}
	for _, e := range g.Edges {
		if e.Partitioner == PartitionForward && e.From.Parallelism != e.To.Parallelism {
			return fmt.Errorf("job: forward edge %d between different parallelisms", e.ID)
		}
	}
	if g.hasCycle() {
		return fmt.Errorf("job: graph has a cycle")
	}
	return nil
}

func (g *Graph) hasCycle() bool {
	state := make(map[types.VertexID]int) // 0 unseen, 1 visiting, 2 done
	var visit func(v *Vertex) bool
	visit = func(v *Vertex) bool {
		switch state[v.ID] {
		case 1:
			return true
		case 2:
			return false
		}
		state[v.ID] = 1
		for _, e := range v.OutEdges {
			if visit(e.To) {
				return true
			}
		}
		state[v.ID] = 2
		return false
	}
	for _, v := range g.Vertices {
		if visit(v) {
			return true
		}
	}
	return false
}

// Depth returns the graph depth D: the longest source-to-vertex path
// length, with sources at depth zero (§5.3).
func (g *Graph) Depth() int {
	memo := make(map[types.VertexID]int)
	var depth func(v *Vertex) int
	depth = func(v *Vertex) int {
		if d, ok := memo[v.ID]; ok {
			return d
		}
		d := 0
		for _, e := range v.InEdges {
			if up := depth(e.From) + 1; up > d {
				d = up
			}
		}
		memo[v.ID] = d
		return d
	}
	max := 0
	for _, v := range g.Vertices {
		if d := depth(v); d > max {
			max = d
		}
	}
	return max
}

// AllTaskIDs enumerates every task of the graph.
func (g *Graph) AllTaskIDs() []types.TaskID {
	var out []types.TaskID
	for _, v := range g.Vertices {
		for s := 0; s < v.Parallelism; s++ {
			out = append(out, types.TaskID{Vertex: v.ID, Subtask: int32(s)})
		}
	}
	return out
}

// Downstream returns the tasks within the given hop distance downstream of
// a task, breadth-first (used for determinant retrieval across DSD hops).
func (g *Graph) Downstream(id types.TaskID, hops int) []types.TaskID {
	v := g.Vertices[id.Vertex]
	seen := map[types.TaskID]bool{id: true}
	frontier := []*Vertex{v}
	var out []types.TaskID
	for h := 0; h < hops; h++ {
		var next []*Vertex
		for _, fv := range frontier {
			for _, e := range fv.OutEdges {
				next = append(next, e.To)
				for s := 0; s < e.To.Parallelism; s++ {
					t := types.TaskID{Vertex: e.To.ID, Subtask: int32(s)}
					if !seen[t] {
						seen[t] = true
						out = append(out, t)
					}
				}
			}
		}
		frontier = next
	}
	return out
}

// channelID builds the physical channel ID for an edge between subtasks.
func channelID(e *Edge, from, to int32) types.ChannelID {
	return types.ChannelID{Edge: e.ID, From: from, To: to}
}

// inChannels enumerates the input channels of one task in gate order,
// with the port (input-edge index) of each.
func inChannels(v *Vertex, subtask int32) (ids []types.ChannelID, ports []int) {
	for port, e := range v.InEdges {
		for from := int32(0); from < int32(e.From.Parallelism); from++ {
			ids = append(ids, channelID(e, from, subtask))
			ports = append(ports, port)
		}
	}
	return ids, ports
}
