package job

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clonos/internal/audit"
	"clonos/internal/checkpoint"
	"clonos/internal/faultinject"
	"clonos/internal/netstack"
	"clonos/internal/obs"
	"clonos/internal/types"
)

// EventKind labels runtime events recorded for the experiment harness.
type EventKind string

// Runtime event kinds.
const (
	EventFailureInjected  EventKind = "failure-injected"
	EventFailureDetected  EventKind = "failure-detected"
	EventStandbyActivated EventKind = "standby-activated"
	EventTaskLive         EventKind = "task-live"
	EventCaughtUp         EventKind = "caught-up"
	EventGlobalRestart    EventKind = "global-restart"
	EventCheckpointDone   EventKind = "checkpoint-complete"
	EventOrphanFallback   EventKind = "orphan-global-fallback"
	EventNodeFailure      EventKind = "node-failure"
	// EventAlignSuperseded records a newer barrier cancelling a pending
	// alignment (the older checkpoint was aborted mid-flight).
	EventAlignSuperseded EventKind = "alignment-superseded"
	// Watchdog events (see Config.StallDeadline): progress stopped on a
	// task's input stream, a pending barrier alignment, or checkpoint
	// completion respectively.
	EventTaskStall      EventKind = "task-stall"
	EventAlignmentStall EventKind = "alignment-stall"
	EventEpochStall     EventKind = "epoch-stall"
	// EventFaultInjected records an armed crash point firing (see
	// Config.Faults); Info carries the crash-point name.
	EventFaultInjected EventKind = "fault-injected"
	// EventAuditViolation records the audit plane detecting a causal-
	// consistency invariant breach (see Config.Audit); Info carries the
	// invariant name and detail, and the event attributes carry the
	// invariant and channel for clonos-trace -audit.
	EventAuditViolation EventKind = "audit-violation"
	// EventAuditFingerprint records a successful state-attestation check
	// at restore (Info: "cp=N fp=... verified"), giving clonos-trace
	// -audit a per-recovery fingerprint-comparison record.
	EventAuditFingerprint EventKind = "audit-fingerprint"
	// EventUnalignedSnapshot records a task snapshotting unaligned — at
	// its first barrier (Config.UnalignedCheckpoints) or after a pending
	// alignment exceeded Config.AlignmentBudget. Info carries the
	// checkpoint; the in-flight capture of the not-yet-barriered channels
	// begins here.
	EventUnalignedSnapshot EventKind = "unaligned-snapshot"
)

// RecoverySpanName is the tracer span covering one local recovery, from
// failure detection to the recovered task catching up. Its marks (in
// protocol order) name the recovery phases: standby-activated,
// determinants-retrieved, network-reconfigured, replay-done, caught-up.
const RecoverySpanName = "recovery"

// Event is one timestamped runtime event.
type Event struct {
	Time time.Time
	Kind EventKind
	Task types.TaskID
	Info string
}

// Runtime is the job manager: it owns the execution graph's tasks, the
// network, the checkpoint coordinator, the snapshot store, heartbeat
// failure detection, standby tasks, and recovery.
type Runtime struct {
	cfg   Config
	graph *Graph
	net   *netstack.Network
	snaps *checkpoint.Store
	coord *checkpoint.Coordinator

	mu          sync.Mutex
	tasks       map[types.TaskID]*Task
	standbys    map[types.TaskID]*Task
	standbySnap map[types.TaskID]*checkpoint.TaskSnapshot
	// standbyLag holds per-standby sync-lag values (checkpoints behind
	// the latest completed one), updated under mu but stored atomically so
	// the standby-lag gauges never take mu from inside the registry lock.
	standbyLag map[types.TaskID]*atomic.Int64
	finished   map[types.TaskID]bool
	failedSet  map[types.TaskID]bool
	recovering map[types.TaskID]bool
	// pendingReplay holds replay requests addressed to tasks that are
	// themselves awaiting recovery (consecutive failures).
	pendingReplay map[types.TaskID][]replayRequest
	// nodeOf / standbyNodeOf simulate cluster placement (§6.3).
	nodeOf        map[types.TaskID]int
	standbyNodeOf map[types.TaskID]int
	// recSpans holds the recovery span of each detected-but-not-yet-
	// activated failure; localRecover claims the span and hands it to the
	// replacement task, which ends it at caught-up.
	recSpans   map[types.TaskID]*obs.Span
	errs       []error
	restarting bool
	stopped    bool

	// restartGate serializes global restarts against local recoveries:
	// localRecover runs under the read side, globalRestart under the
	// write side, so a restart triggered asynchronously (e.g. by an
	// unserviceable replay) can never tear the topology down while a
	// local recovery is installing and starting a replacement task.
	restartGate sync.RWMutex

	recoverCh chan types.TaskID
	allDone   chan struct{}
	doneOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	// progress is a broadcast channel for event-driven waiting: every
	// recorded runtime event closes and replaces it, waking WaitForEvent /
	// WaitForCheckpoint without polling.
	progressMu sync.Mutex
	progress   chan struct{}

	obs     *obs.Registry
	tracer  *obs.Tracer
	metrics runtimeMetrics
}

type replayRequest struct {
	channel   types.ChannelID
	fromEpoch types.EpochID
	afterSeq  uint64
}

// NewRuntime builds a runtime for the graph.
func NewRuntime(g *Graph, cfg Config) (*Runtime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.MailboxSize <= 0 {
		cfg.MailboxSize = 1024
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	r := &Runtime{
		cfg:           cfg,
		graph:         g,
		net:           netstack.NewNetwork(),
		snaps:         checkpoint.NewStore(cfg.SnapshotDir),
		tasks:         make(map[types.TaskID]*Task),
		standbys:      make(map[types.TaskID]*Task),
		standbySnap:   make(map[types.TaskID]*checkpoint.TaskSnapshot),
		standbyLag:    make(map[types.TaskID]*atomic.Int64),
		finished:      make(map[types.TaskID]bool),
		failedSet:     make(map[types.TaskID]bool),
		recovering:    make(map[types.TaskID]bool),
		pendingReplay: make(map[types.TaskID][]replayRequest),
		nodeOf:        make(map[types.TaskID]int),
		standbyNodeOf: make(map[types.TaskID]int),
		recSpans:      make(map[types.TaskID]*obs.Span),
		recoverCh:     make(chan types.TaskID, 256),
		allDone:       make(chan struct{}),
		stop:          make(chan struct{}),
		obs:           cfg.Obs,
		tracer:        obs.NewTracer(),
		progress:      make(chan struct{}),
	}
	if cfg.Faults != nil {
		// Kills redirected at a different task than the one hitting the
		// crash point route through here (overlapping-failure schedules).
		cfg.Faults.OnKill(func(task string) {
			for _, id := range g.AllTaskIDs() {
				if id.String() == task {
					r.mu.Lock()
					t := r.tasks[id]
					r.mu.Unlock()
					if t != nil {
						r.recordEvent(EventFaultInjected, id, "target-kill")
						t.crash()
					}
					return
				}
			}
		})
	}
	if cfg.Audit != nil {
		// Audit reporting: every violation becomes a labelled counter
		// increment plus a structured tracer event (and through the trace
		// sink, a flight-recorder record). /healthz aggregates the counter
		// family into the job health verdict.
		cfg.Audit.SetReporter(func(v audit.Violation) {
			vertexName := fmt.Sprintf("v%d", v.Task.Vertex)
			if int(v.Task.Vertex) < len(g.Vertices) {
				vertexName = g.Vertices[v.Task.Vertex].Name
			}
			r.obs.Counter("clonos_audit_violations_total",
				"Causal-consistency audit violations detected by the audit plane.",
				obs.Labels{"invariant": v.Invariant, "vertex": vertexName, "subtask": strconv.Itoa(int(v.Task.Subtask))}).Inc()
			attrs := map[string]string{
				"task":      v.Task.String(),
				"invariant": v.Invariant,
				"info":      v.Detail,
			}
			if v.Channel != "" {
				attrs["channel"] = v.Channel
			}
			r.tracer.Emit(string(EventAuditViolation),
				Event{Time: time.Now(), Kind: EventAuditViolation, Task: v.Task, Info: v.Invariant + ": " + v.Detail}, attrs)
			r.notifyProgress()
		})
	}
	r.tracer.SetLimits(cfg.TraceMaxEvents, cfg.TraceMaxSpans)
	if cfg.TraceSink != nil {
		r.tracer.SetSink(cfg.TraceSink)
	}
	r.registerTracerHealth()
	r.metrics = newRuntimeMetrics(r.obs)
	r.snaps.Instrument(
		r.obs.Counter("clonos_checkpoint_state_bytes_total", "State bytes received by the snapshot store.", obs.Labels{"kind": "full"}),
		r.obs.Counter("clonos_checkpoint_state_bytes_total", "State bytes received by the snapshot store.", obs.Labels{"kind": "delta"}),
	)
	r.coord = checkpoint.NewCoordinator(
		cfg.CheckpointInterval,
		cfg.CheckpointTimeout,
		r.expectedAcks,
		r.triggerCheckpoint,
		r.onCheckpointComplete,
	)
	r.coord.Instrument(checkpoint.CoordinatorMetrics{
		Triggered: r.obs.Counter("clonos_checkpoint_triggered_total", "Checkpoints triggered by the coordinator.", nil),
		Completed: r.obs.Counter("clonos_checkpoint_completed_total", "Checkpoints fully acknowledged.", nil),
		Aborted:   r.obs.Counter("clonos_checkpoint_aborted_total", "Checkpoints abandoned (timeout or recovery pause).", nil),
		Duration:  r.obs.Histogram("clonos_checkpoint_duration_seconds", "Trigger-to-completion checkpoint time.", obs.DefDurationBuckets, nil),
	})
	r.coord.Trace(r.tracer)
	return r, nil
}

// registerTracerHealth exposes the tracer's own health: records that
// fell out of the bounded rings and current ring occupancy.
func (r *Runtime) registerTracerHealth() {
	tr := r.tracer
	r.obs.GaugeFunc("clonos_tracer_dropped_events", "Tracer events evicted from the bounded ring.", nil, func() float64 {
		ev, _ := tr.Dropped()
		return float64(ev)
	})
	r.obs.GaugeFunc("clonos_tracer_dropped_spans", "Tracer spans evicted from the bounded ring.", nil, func() float64 {
		_, sp := tr.Dropped()
		return float64(sp)
	})
	r.obs.GaugeFunc("clonos_tracer_ring_events", "Tracer events currently retained.", nil, func() float64 {
		ev, _ := tr.Len()
		return float64(ev)
	})
	r.obs.GaugeFunc("clonos_tracer_ring_spans", "Tracer spans currently retained.", nil, func() float64 {
		_, sp := tr.Len()
		return float64(sp)
	})
}

// Obs returns the runtime's metrics registry.
func (r *Runtime) Obs() *obs.Registry { return r.obs }

// Tracer returns the runtime's event/span tracer.
func (r *Runtime) Tracer() *obs.Tracer { return r.tracer }

// Graph returns the job's dataflow graph.
func (r *Runtime) Graph() *Graph { return r.graph }

// Config returns the runtime configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Start deploys and launches every task (plus standbys in HA mode), the
// checkpoint coordinator, the failure detector, and the recovery worker.
func (r *Runtime) Start() error {
	r.mu.Lock()
	for _, v := range r.graph.Vertices {
		for s := int32(0); s < int32(v.Parallelism); s++ {
			t := newTask(r, v, s)
			r.tasks[t.id] = t
		}
	}
	for _, t := range r.tasks {
		t.attachNetwork(true)
	}
	if r.cfg.Mode == ModeClonos && r.cfg.Standby {
		for id := range r.tasks {
			r.standbys[id] = newTask(r, r.graph.Vertices[id.Vertex], id.Subtask)
			r.standbyLag[id] = &atomic.Int64{}
		}
	}
	r.assignNodes()
	tasks := make([]*Task, 0, len(r.tasks))
	for _, t := range r.tasks {
		tasks = append(tasks, t)
	}
	r.mu.Unlock()
	// Register outside r.mu: the callbacks read atomics only, and the
	// registry lock must never nest inside the runtime lock.
	for id, lag := range r.standbyLag {
		lbl := obs.Labels{"vertex": r.graph.Vertices[id.Vertex].Name, "subtask": strconv.Itoa(int(id.Subtask))}
		v := lag
		r.obs.GaugeFunc("clonos_standby_sync_lag", "Checkpoints the standby's preloaded snapshot trails the latest completed checkpoint.", lbl,
			func() float64 { return float64(v.Load()) })
	}
	for _, t := range tasks {
		t.start()
	}
	r.coord.Start()
	r.wg.Add(2)
	go r.detector()
	go r.recoveryWorker()
	if r.cfg.StallDeadline > 0 {
		r.wg.Add(1)
		go r.watchdog()
	}
	return nil
}

// Stop tears the job down.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	tasks := make([]*Task, 0, len(r.tasks))
	for _, t := range r.tasks {
		tasks = append(tasks, t)
	}
	standbys := make([]*Task, 0, len(r.standbys))
	for _, t := range r.standbys {
		standbys = append(standbys, t)
	}
	r.mu.Unlock()
	close(r.stop)
	r.coord.Stop()
	for _, t := range tasks {
		t.shutdown()
	}
	for _, t := range standbys {
		for _, oc := range t.allOut {
			oc.close()
		}
	}
	r.wg.Wait()
}

// WaitFinished blocks until every task reached end-of-stream or the
// timeout elapsed; it reports whether the job finished.
func (r *Runtime) WaitFinished(timeout time.Duration) bool {
	select {
	case <-r.allDone:
		return true
	case <-time.After(timeout):
		return false
	}
}

// InjectFailure crashes a running task abruptly; the heartbeat detector
// notices after the configured timeout and drives recovery.
func (r *Runtime) InjectFailure(id types.TaskID) error {
	r.mu.Lock()
	t, ok := r.tasks[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("job: unknown task %v", id)
	}
	r.recordEvent(EventFailureInjected, id, "")
	t.crash()
	return nil
}

// LatestCompletedCheckpoint returns the newest completed checkpoint ID.
func (r *Runtime) LatestCompletedCheckpoint() types.CheckpointID {
	return r.snaps.LatestCompleted()
}

// Events returns a copy of the recorded runtime events, rebuilt from the
// tracer's event stream (recordEvent stores the Event as the payload).
func (r *Runtime) Events() []Event {
	traced := r.tracer.Events()
	out := make([]Event, 0, len(traced))
	for _, te := range traced {
		if ev, ok := te.Payload.(Event); ok {
			out = append(out, ev)
		}
	}
	return out
}

// Errors returns task errors reported so far.
func (r *Runtime) Errors() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// TaskRecordCounts sums records in/out across live tasks of a vertex.
func (r *Runtime) TaskRecordCounts(v types.VertexID) (in, out uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, t := range r.tasks {
		if id.Vertex == v {
			in += t.recordsIn.Load()
			out += t.recordsOut.Load()
		}
	}
	return in, out
}

func (r *Runtime) recordEvent(kind EventKind, id types.TaskID, info string) {
	// Attrs duplicate the payload's portable fields: the payload is not
	// serialized into flight recordings, attributes are.
	attrs := map[string]string{"task": id.String()}
	if info != "" {
		attrs["info"] = info
	}
	r.tracer.Emit(string(kind), Event{Time: time.Now(), Kind: kind, Task: id, Info: info}, attrs)
	r.notifyProgress()
}

// notifyProgress wakes everything blocked in WaitForEvent/WaitForCheckpoint.
func (r *Runtime) notifyProgress() {
	r.progressMu.Lock()
	close(r.progress)
	r.progress = make(chan struct{})
	r.progressMu.Unlock()
}

// progressCh returns the current broadcast channel; it is closed on the
// next recorded event. Take the channel BEFORE checking a condition and
// a wake-up can never be lost between check and wait.
func (r *Runtime) progressCh() <-chan struct{} {
	r.progressMu.Lock()
	ch := r.progress
	r.progressMu.Unlock()
	return ch
}

// WaitForCheckpoint blocks until checkpoint cp has completed (event-
// driven, no polling) and reports whether it did before the timeout.
func (r *Runtime) WaitForCheckpoint(cp types.CheckpointID, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := r.progressCh()
		if r.snaps.LatestCompleted() >= cp {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return r.snaps.LatestCompleted() >= cp
		case <-r.stop:
			return false
		}
	}
}

// WaitForEvent blocks until a recorded runtime event satisfies pred
// (evaluated over the full retained event history, so an event recorded
// before the call also matches) and reports whether one did before the
// timeout.
func (r *Runtime) WaitForEvent(timeout time.Duration, pred func(Event) bool) bool {
	check := func() bool {
		for _, ev := range r.Events() {
			if pred(ev) {
				return true
			}
		}
		return false
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := r.progressCh()
		if check() {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return check()
		case <-r.stop:
			return false
		}
	}
}

// expectedAcks lists unfinished tasks (the coordinator's ack set).
func (r *Runtime) expectedAcks() []types.TaskID {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []types.TaskID
	for _, id := range r.graph.AllTaskIDs() {
		if !r.finished[id] {
			out = append(out, id)
		}
	}
	return out
}

// triggerCheckpoint sends the checkpoint RPC to every source task.
func (r *Runtime) triggerCheckpoint(cp types.CheckpointID) {
	r.mu.Lock()
	var sources []*Task
	for id, t := range r.tasks {
		if r.graph.Vertices[id.Vertex].Source != nil && !r.finished[id] {
			sources = append(sources, t)
		}
	}
	r.mu.Unlock()
	for _, t := range sources {
		t.TriggerCheckpoint(cp)
	}
}

// onCheckpointComplete truncates logs everywhere and dispatches fresh
// state snapshots to standby tasks (§6.4).
func (r *Runtime) onCheckpointComplete(cp types.CheckpointID) {
	r.snaps.MarkCompleted(cp)
	r.recordEvent(EventCheckpointDone, types.TaskID{}, fmt.Sprintf("cp=%d", cp))
	r.mu.Lock()
	tasks := make([]*Task, 0, len(r.tasks))
	for _, t := range r.tasks {
		tasks = append(tasks, t)
	}
	for id := range r.standbys {
		if snap, ok := r.snaps.Get(cp, id); ok {
			r.standbySnap[id] = snap
		}
		if lag := r.standbyLag[id]; lag != nil {
			var have types.CheckpointID
			if snap := r.standbySnap[id]; snap != nil {
				have = snap.Checkpoint
			}
			lag.Store(int64(cp) - int64(have))
		}
	}
	r.mu.Unlock()
	for _, t := range tasks {
		t.NotifyCheckpointComplete(cp)
	}
	// Recorded stream hashes for epochs at or below cp can never be
	// replayed against again (replay starts past the latest completed
	// checkpoint), so the auditor drops them alongside in-flight logs.
	r.cfg.Audit.Truncate(cp)
}

// onSnapshot stores a task snapshot and acks the coordinator.
func (r *Runtime) onSnapshot(snap *checkpoint.TaskSnapshot) {
	if err := r.snaps.Put(snap); err != nil {
		r.reportTaskError(snap.Task, err)
		return
	}
	r.coord.MarkCheckpoint(snap.Checkpoint, "snapshot-persisted:"+snap.Task.String())
	if r.faultHit(faultinject.PointPersistAckWindow, snap.Task) {
		// The task died with its snapshot durable but unacknowledged:
		// the checkpoint must abort (coordinator pause on detection) and
		// the persisted-but-uncommitted snapshot must never be restored.
		return
	}
	r.coord.Ack(snap.Checkpoint, snap.Task)
}

// faultHit fires a crash point on behalf of a task from runtime code (the
// persist→ack window runs on the task's main thread but is owned by the
// job manager); true means the task was crashed and the step guarded by
// the point must not execute.
func (r *Runtime) faultHit(point string, id types.TaskID) bool {
	fi := r.cfg.Faults
	if fi == nil || !fi.Hit(point, id.String()) {
		return false
	}
	r.mu.Lock()
	t := r.tasks[id]
	r.mu.Unlock()
	if t == nil {
		return false
	}
	r.recordEvent(EventFaultInjected, id, point)
	t.crash()
	return true
}

// onBarrier marks the epoch span when a task sees the checkpoint's
// barrier; the coordinator dedupes so only the first arrival lands.
func (r *Runtime) onBarrier(cp types.CheckpointID, id types.TaskID) {
	_ = id
	r.coord.MarkCheckpoint(cp, "first-barrier")
}

// onUnalignedSnapshot records a task switching checkpoint cp into
// unaligned capture and tags the checkpoint's span, so traces show which
// completed checkpoints logged in-flight input (and on which tasks).
func (r *Runtime) onUnalignedSnapshot(cp types.CheckpointID, id types.TaskID) {
	r.recordEvent(EventUnalignedSnapshot, id, fmt.Sprintf("cp=%d", cp))
	r.coord.MarkCheckpoint(cp, "unaligned:"+id.String())
	r.coord.AnnotateCheckpoint(cp, "alignment", "unaligned")
}

// onAlignmentComplete marks the epoch span when one task finished
// barrier alignment.
func (r *Runtime) onAlignmentComplete(cp types.CheckpointID, id types.TaskID) {
	r.coord.MarkCheckpoint(cp, "align-complete:"+id.String())
}

// onTaskLive is called when a task finishes causally guided replay (or
// starts fresh); once no recovery remains, checkpointing resumes.
func (r *Runtime) onTaskLive(id types.TaskID) {
	r.mu.Lock()
	delete(r.recovering, id)
	empty := len(r.recovering) == 0 && len(r.failedSet) == 0
	r.mu.Unlock()
	r.recordEvent(EventTaskLive, id, "")
	if empty {
		r.coord.Resume()
	}
}

// onTaskFinished marks end-of-stream completion.
func (r *Runtime) onTaskFinished(id types.TaskID) {
	r.mu.Lock()
	r.finished[id] = true
	all := true
	for _, tid := range r.graph.AllTaskIDs() {
		if !r.finished[tid] {
			all = false
			break
		}
	}
	r.mu.Unlock()
	if all {
		r.doneOnce.Do(func() { close(r.allDone) })
	}
}

// reportTaskError records an internal task error.
func (r *Runtime) reportTaskError(id types.TaskID, err error) {
	r.mu.Lock()
	r.errs = append(r.errs, fmt.Errorf("%v: %w", id, err))
	r.mu.Unlock()
}

// detector watches heartbeats and enqueues failed tasks for recovery.
func (r *Runtime) detector() {
	defer r.wg.Done()
	period := r.cfg.HeartbeatTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		select {
		case <-r.allDone:
			// Every task reached end-of-stream: the job's output is
			// complete, so late process deaths during wind-down need no
			// recovery (and must not race teardown with one).
			return
		default:
		}
		now := time.Now().UnixNano()
		r.mu.Lock()
		if r.restarting {
			r.mu.Unlock()
			continue
		}
		var newlyFailed []types.TaskID
		for id, t := range r.tasks {
			// Tasks already declared failed (recovery queued) are
			// skipped; tasks in guided replay are NOT — a standby that
			// crashes mid-recovery must be detected and replaced too.
			// Finished tasks are NOT exempt either: they keep
			// heartbeating after end-of-stream, so a stale heartbeat
			// there is a real post-finish crash. The dead process's
			// in-flight log may be mid-replay to a recovering peer, so
			// it is recovered like any running task — the replacement
			// re-executes to end-of-stream and re-serves its log, and
			// receivers dedup the re-sent suffix.
			if r.failedSet[id] {
				continue
			}
			age := time.Duration(now - t.heartbeatAt.Load())
			if age > r.cfg.HeartbeatTimeout {
				r.failedSet[id] = true
				delete(r.recovering, id)
				delete(r.finished, id)
				newlyFailed = append(newlyFailed, id)
			}
		}
		r.mu.Unlock()
		for _, id := range newlyFailed {
			r.recordEvent(EventFailureDetected, id, "")
			r.startRecoverySpan(id)
			r.coord.Pause()
			select {
			case r.recoverCh <- id:
			case <-r.stop:
				return
			}
		}
	}
}

// startRecoverySpan opens the tracer span for one detected failure. A
// leftover span for the same task (its replacement failed before being
// activated) is superseded.
func (r *Runtime) startRecoverySpan(id types.TaskID) {
	sp := r.tracer.StartSpan(RecoverySpanName, map[string]string{
		"task": id.String(),
		"mode": r.cfg.Mode.String(),
	})
	r.mu.Lock()
	old := r.recSpans[id]
	r.recSpans[id] = sp
	r.mu.Unlock()
	if old != nil {
		old.SetAttr("aborted", "superseded")
		old.End()
	}
}

// takeRecoverySpan claims the span for a failure being recovered.
func (r *Runtime) takeRecoverySpan(id types.TaskID) *obs.Span {
	r.mu.Lock()
	sp := r.recSpans[id]
	delete(r.recSpans, id)
	r.mu.Unlock()
	return sp
}

// abortRecoverySpans ends every unclaimed recovery span (global restart
// supersedes the local protocol).
func (r *Runtime) abortRecoverySpans(reason string) {
	r.mu.Lock()
	spans := make([]*obs.Span, 0, len(r.recSpans))
	for _, sp := range r.recSpans {
		spans = append(spans, sp)
	}
	r.recSpans = make(map[types.TaskID]*obs.Span)
	r.mu.Unlock()
	for _, sp := range spans {
		sp.SetAttr("aborted", reason)
		sp.End()
	}
}

// recoveryWorker serializes recovery handling.
func (r *Runtime) recoveryWorker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case id := <-r.recoverCh:
			if r.cfg.Mode == ModeGlobal {
				// Drain concurrently detected failures: one restart
				// covers them all.
				drained := true
				for drained {
					select {
					case <-r.recoverCh:
					default:
						drained = false
					}
				}
				r.globalRestart("failure")
			} else {
				r.restartGate.RLock()
				reason := r.localRecover(id)
				r.restartGate.RUnlock()
				if reason != "" {
					// Escalations release the gate first: globalRestart
					// takes its write side.
					r.globalRestart(reason)
				}
			}
		}
	}
}

// DebugString summarizes runtime state for diagnostics: per-task
// lifecycle, pending recoveries, and checkpoint progress.
func (r *Runtime) DebugString() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "latest completed checkpoint: %d\n", r.snaps.LatestCompleted())
	for _, id := range r.graph.AllTaskIDs() {
		t := r.tasks[id]
		state := "missing"
		if t != nil {
			switch taskState(t.state.Load()) {
			case stateCreated:
				state = "created"
			case stateRunning:
				state = "running"
			case stateRecovering:
				state = "recovering"
			case stateFinished:
				state = "finished"
			case stateCrashed:
				state = "crashed"
			}
		}
		flags := ""
		if r.failedSet[id] {
			flags += " failed"
		}
		if r.recovering[id] {
			flags += " guided-replay"
		}
		if r.finished[id] {
			flags += " eos"
		}
		fmt.Fprintf(&b, "  %v: %s%s\n", id, state, flags)
	}
	for up, reqs := range r.pendingReplay {
		fmt.Fprintf(&b, "  pending replay requests for %v: %d\n", up, len(reqs))
	}
	return b.String()
}
