package job

// Tests for unaligned (overload-tolerant) checkpointing: capture under
// sustained backpressure, recovery from a snapshot carrying an in-flight
// section (audit-armed, so any seq/epoch/hash divergence the logged-buffer
// replay introduced would surface), budget-triggered conversion of a stuck
// aligned checkpoint, and the alignment-stall budget the bench-smoke CI
// leg pins.

import (
	"strconv"
	"testing"
	"time"

	"clonos/internal/audit"
	"clonos/internal/kafkasim"
	"clonos/internal/obs"
	"clonos/internal/operator"
	"clonos/internal/types"
)

// slowKeySumPipeline is keySumPipeline with a per-record processing delay
// in the reduce stage, so a fast generator keeps its input queues loaded —
// the sustained-backpressure regime where barrier alignment stalls and
// unaligned capture has genuine in-flight data to log.
func slowKeySumPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int, delay time.Duration) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 25})
	sum := g.AddVertex("sum", p, nil, operator.KeyedReduce("sum", func(ctx operator.Context, acc any, e types.Element) (any, error) {
		time.Sleep(delay)
		s, _ := acc.(statefulValue)
		s.Total += e.Value.(int64)
		return s, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, sum, PartitionHash, nil, nil)
	g.Connect(sum, sinkV, PartitionHash, nil, nil)
	return g
}

// sumCounter folds a per-subtask counter family over a vertex.
func sumCounter(reg *obs.Registry, name, vertex string, p int) uint64 {
	var total uint64
	for s := 0; s < p; s++ {
		total += reg.Counter(name, "", obs.Labels{"vertex": vertex, "subtask": strconv.Itoa(s)}).Value()
	}
	return total
}

// TestUnalignedBackpressureRecovery drives the overloaded pipeline in
// always-on unaligned mode, waits for checkpoints whose snapshots carry
// logged in-flight input, then kills a reduce task so recovery restores
// one — the preloaded buffers replay into the deserializer before live
// input resumes. The armed audit plane turns any divergence the logged
// replay could introduce (lost/duplicated buffers, reordered seqs, state
// drift) into a failure, and the final sums pin exactly-once end to end.
func TestUnalignedBackpressureRecovery(t *testing.T) {
	// Sized so the overloaded reduce stage stays busy for seconds: a
	// too-short run finishes before checkpoint 2 and the reduce tasks drop
	// out of the ack set with no snapshot to inspect.
	const (
		n    = 20000
		keys = 7
	)
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := slowKeySumPipeline(topic, sink, 2, 150*time.Microsecond)
	cfg := quickConfig(ModeClonos)
	cfg.UnalignedCheckpoints = true
	cfg.ServiceSeed = 7
	aud := audit.New()
	cfg.Audit = aud
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 20000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(2, 30*time.Second) {
		t.Fatalf("no unaligned checkpoint completed: %v", r.Errors())
	}
	// The completed checkpoint's reduce-task snapshots must exist; under
	// this load at least one carries a logged in-flight section.
	cp := r.LatestCompletedCheckpoint()
	inflight := 0
	for s := int32(0); s < 2; s++ {
		snap, ok := r.snaps.Get(cp, types.TaskID{Vertex: 1, Subtask: s})
		if !ok {
			t.Fatalf("no snapshot for sum[%d] at completed cp %d", s, cp)
		}
		inflight += len(snap.InFlight)
	}
	if inflight == 0 {
		t.Errorf("cp %d: no reduce-task snapshot carries an in-flight section under backpressure", cp)
	}

	victim := types.TaskID{Vertex: 1, Subtask: 0}
	if err := r.InjectFailure(victim); err != nil {
		t.Fatal(err)
	}
	if !r.WaitFinished(90 * time.Second) {
		t.Fatalf("job did not finish after recovery; errors: %v\n%s", r.Errors(), r.DebugString())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	checkSums(t, finalSums(sink), expectedSums(n, keys), "after unaligned recovery")
	if v := aud.Total(); v != 0 {
		t.Errorf("audit plane detected %d violation(s) after logged-buffer replay: %v", v, aud.ByInvariant())
	}
	sawUnaligned := false
	for _, ev := range r.Events() {
		if ev.Kind == EventUnalignedSnapshot {
			sawUnaligned = true
			break
		}
	}
	if !sawUnaligned {
		t.Error("no unaligned-snapshot event recorded in always-on unaligned mode")
	}
	if b := sumCounter(r.Obs(), "clonos_checkpoint_inflight_logged_bytes_total", "sum", 2); b == 0 {
		t.Error("no in-flight bytes logged by the reduce tasks under backpressure")
	}
}

// TestAlignmentBudgetConversion runs DEFAULT (aligned) checkpointing with
// a tight AlignmentBudget under the same overload: pending alignments must
// convert to unaligned capture instead of gating channels for the whole
// backlog, and the converted checkpoints must stay exactly-once under the
// armed audit plane.
func TestAlignmentBudgetConversion(t *testing.T) {
	const (
		n    = 5000
		keys = 5
	)
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := slowKeySumPipeline(topic, sink, 2, 150*time.Microsecond)
	cfg := quickConfig(ModeClonos)
	cfg.AlignmentBudget = 2 * time.Millisecond
	cfg.ServiceSeed = 11
	aud := audit.New()
	cfg.Audit = aud
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 20000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v\n%s", r.Errors(), r.DebugString())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	checkSums(t, finalSums(sink), expectedSums(n, keys), "after budget conversion")
	if v := aud.Total(); v != 0 {
		t.Errorf("audit plane detected %d violation(s): %v", v, aud.ByInvariant())
	}
	converted := false
	for _, ev := range r.Events() {
		if ev.Kind == EventUnalignedSnapshot {
			converted = true
			break
		}
	}
	if !converted {
		t.Error("no alignment converted to unaligned capture despite the 2ms budget under overload")
	}
}

// TestUnalignedStallBudget is the bench-smoke pin for the overloaded
// scenario: with unaligned checkpointing armed, checkpoints must complete
// WITHOUT ever gating an input channel, and the alignment time collapses
// to the first-barrier handling cost. Aligned mode under this load blocks
// channels for the whole barrier skew; the pinned budget here is the
// improvement unaligned mode exists to buy.
func TestUnalignedStallBudget(t *testing.T) {
	const (
		n    = 4000
		keys = 5
	)
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := slowKeySumPipeline(topic, sink, 2, 150*time.Microsecond)
	cfg := quickConfig(ModeClonos)
	cfg.UnalignedCheckpoints = true
	cfg.ServiceSeed = 13
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 20000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint completed under overload: %v", r.Errors())
	}
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	checkSums(t, finalSums(sink), expectedSums(n, keys), "overloaded unaligned run")

	reg := r.Obs()
	for s := 0; s < 2; s++ {
		lbl := obs.Labels{"vertex": "sum", "subtask": strconv.Itoa(s)}
		if c := reg.Histogram("clonos_checkpoint_blocked_channel_seconds", "", obs.DefDurationBuckets, lbl).Count(); c != 0 {
			t.Errorf("sum[%d]: %d channel-blocked observations; unaligned mode must never gate a channel", s, c)
		}
		h := reg.Histogram("clonos_checkpoint_align_seconds", "", obs.DefDurationBuckets, lbl)
		if cnt := h.Count(); cnt > 0 {
			// Alignment-stall budget: mean first-barrier-to-snapshot time
			// must stay far below the multi-hundred-ms barrier skew the
			// overloaded aligned baseline pays.
			if mean := h.Sum() / float64(cnt); mean > 0.05 {
				t.Errorf("sum[%d]: mean alignment stall %.3fs exceeds the 50ms unaligned budget", s, mean)
			}
		}
	}
}
