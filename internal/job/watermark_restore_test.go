package job

import (
	"math"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

// TestSnapshotCarriesWatermarkState guards the watermark-merge fields of
// TaskSnapshot. The combined watermark a task emits is a min() over
// per-channel watermarks that carry across epoch boundaries; if a
// replacement restores without them it emits (or suppresses) different
// Watermark elements during causally guided re-execution, its output byte
// stream diverges from the crashed predecessor's, and sender-side
// deduplication hands the downstream deserializer a stream that no longer
// splits at element boundaries — the sink then stalls forever on a bogus
// length prefix. The failure is timing-dependent (the predecessor must die
// with a mid-buffer cut outstanding), so this test pins the snapshot wiring
// deterministically instead: every checkpoint of a multi-input task must
// record each channel's watermark and the emitted combined watermark.
func TestSnapshotCarriesWatermarkState(t *testing.T) {
	const n = 4000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	r, err := NewRuntime(g, quickConfig(ModeClonos))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 5, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()
	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish; errors: %v", r.Errors())
	}
	cp := r.snaps.LatestCompleted()
	if cp < 1 {
		t.Fatalf("no completed checkpoint")
	}
	snap, ok := r.snaps.Get(cp, types.TaskID{Vertex: 1, Subtask: 0})
	if !ok {
		t.Fatalf("no snapshot for v1[0] at cp %d", cp)
	}
	if len(snap.ChanWms) != 2 {
		t.Fatalf("snapshot records %d channel watermarks, want 2 (%v)", len(snap.ChanWms), snap.ChanWms)
	}
	for id, wm := range snap.ChanWms {
		if wm == math.MinInt64 {
			t.Errorf("channel %v watermark never recorded", id)
		}
	}
	if snap.CurWm == math.MinInt64 {
		t.Errorf("combined watermark never recorded")
	}
}
