package job

import (
	"fmt"
	"math"
	"time"

	"clonos/internal/types"
)

// The stall watchdog turns "the job went quiet" — the failure class
// behind both byte-stream divergences root-caused in PR 1 — into an
// explicit signal. It periodically compares every running task's
// watermark/offset shadows and any pending barrier alignment against a
// deadline (Config.StallDeadline), and watches checkpoint completion
// globally. Each stall fires one tracer event when first detected
// (re-armed by progress) and is counted in the clonos_stalled_tasks
// gauge while it persists. The watchdog only observes and reports; the
// heartbeat detector remains the sole authority that declares failures.

// stallState is the watchdog's last observation of one task.
type stallState struct {
	wm       int64
	offset   uint64
	since    time.Time
	reported bool
	// alignCp is the newest checkpoint whose stuck alignment was already
	// reported for this task (one event per stuck epoch).
	alignCp int64
}

// watchdogState carries watchdog memory across scans.
type watchdogState struct {
	tasks    map[types.TaskID]*stallState
	lastCp   types.CheckpointID
	lastCpAt time.Time
	cpDone   bool
}

func newWatchdogState(now time.Time) *watchdogState {
	return &watchdogState{tasks: make(map[types.TaskID]*stallState), lastCpAt: now}
}

// watchdog runs the periodic scan until shutdown.
func (r *Runtime) watchdog() {
	defer r.wg.Done()
	period := r.cfg.StallDeadline / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	ws := newWatchdogState(time.Now())
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			r.metrics.stalledTasks.Set(int64(r.scanStalls(ws, now)))
		}
	}
}

// scanStalls performs one watchdog pass at time now and returns how many
// tasks are currently stalled (stuck input progress or stuck alignment).
// Split out from the goroutine loop so tests can drive it directly.
func (r *Runtime) scanStalls(ws *watchdogState, now time.Time) int {
	deadline := r.cfg.StallDeadline
	r.mu.Lock()
	type watched struct {
		id   types.TaskID
		task *Task
	}
	live := make([]watched, 0, len(r.tasks))
	activeTasks := 0
	quiesced := r.restarting
	for id, t := range r.tasks {
		if !r.finished[id] {
			activeTasks++
		}
		if r.finished[id] || r.failedSet[id] {
			continue
		}
		switch taskState(t.state.Load()) {
		case stateRunning, stateRecovering:
			live = append(live, watched{id, t})
		}
	}
	if len(r.failedSet) > 0 || len(r.recovering) > 0 {
		// Recovery in flight: checkpointing is legitimately paused.
		quiesced = true
	}
	r.mu.Unlock()

	stalled := 0
	seen := make(map[types.TaskID]bool, len(live))
	for _, w := range live {
		seen[w.id] = true
		wm := w.task.wmShadow.Load()
		off := w.task.offsetShadow.Load()
		st := ws.tasks[w.id]
		if st == nil || st.wm != wm || st.offset != off {
			alignCp := int64(0)
			if st != nil {
				alignCp = st.alignCp
			}
			ws.tasks[w.id] = &stallState{wm: wm, offset: off, since: now, alignCp: alignCp}
			st = ws.tasks[w.id]
		}
		taskStuck := wm != math.MaxInt64 && now.Sub(st.since) > deadline
		if taskStuck {
			stalled++
			if !st.reported {
				st.reported = true
				r.recordEvent(EventTaskStall, w.id,
					fmt.Sprintf("no progress for %s (wm=%d offset=%d)", now.Sub(st.since).Round(time.Millisecond), wm, off))
			}
		}
		if ns := w.task.alignStartNs.Load(); ns != 0 {
			age := now.Sub(time.Unix(0, ns))
			cp := w.task.alignCpShadow.Load()
			if age > deadline {
				if !taskStuck {
					stalled++
				}
				if st.alignCp < cp {
					st.alignCp = cp
					r.recordEvent(EventAlignmentStall, w.id,
						fmt.Sprintf("alignment for cp %d pending for %s", cp, age.Round(time.Millisecond)))
				}
			}
		}
	}
	for id := range ws.tasks {
		if !seen[id] {
			delete(ws.tasks, id)
		}
	}

	// Epoch progress: checkpoint completion must keep advancing while the
	// job is active and no recovery explains the pause. The deadline adds
	// two checkpoint intervals so a freshly started or just-resumed job
	// has time to produce its next epoch.
	cp := r.snaps.LatestCompleted()
	if cp != ws.lastCp {
		ws.lastCp = cp
		ws.lastCpAt = now
		ws.cpDone = false
	}
	cpDeadline := deadline + 2*r.cfg.CheckpointInterval
	if !quiesced && activeTasks > 0 && !ws.cpDone && now.Sub(ws.lastCpAt) > cpDeadline {
		ws.cpDone = true
		r.recordEvent(EventEpochStall, types.TaskID{},
			fmt.Sprintf("no checkpoint completed since cp %d (%s)", cp, now.Sub(ws.lastCpAt).Round(time.Millisecond)))
	}
	return stalled
}
