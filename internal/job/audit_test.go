package job

import (
	"strings"
	"testing"
	"time"

	"clonos/internal/audit"
	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

// TestAuditCleanRecoveryNoViolations pins the auditor's false-positive
// rate on the bread-and-butter path: a mid-pipeline failure with standby
// activation, guided replay, and sender-side dedup must produce zero
// violations, correct exactly-once sums, and a recorded state-attestation
// verification at restore.
func TestAuditCleanRecoveryNoViolations(t *testing.T) {
	const n = 4000
	cfg := quickConfig(ModeClonos)
	cfg.ServiceSeed = 7
	aud := audit.New()
	cfg.Audit = aud
	sums, r := runDeepFailure(t, cfg, n, 5, func(r *Runtime) {
		if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
			t.Fatal(err)
		}
	})
	checkSums(t, sums, expectedDeepSums(n, 5), "audited recovery")
	if total := aud.Total(); total != 0 {
		t.Fatalf("clean recovery produced %d audit violations: %v", total, aud.ByInvariant())
	}
	verified := false
	for _, ev := range r.Events() {
		switch ev.Kind {
		case EventAuditFingerprint:
			verified = true
		case EventAuditViolation:
			t.Fatalf("unexpected violation event: %+v", ev)
		}
	}
	if !verified {
		t.Fatal("recovery restored a snapshot but recorded no fingerprint verification")
	}
}

// startAuditedDeepRun boots the deep pipeline with an armed auditor and
// an effectively unbounded generator (the divergence tests stop the run
// once the violation fires, not at end-of-stream).
func startAuditedDeepRun(t *testing.T) (*Runtime, *audit.Auditor) {
	t.Helper()
	cfg := quickConfig(ModeClonos)
	cfg.ServiceSeed = 7
	aud := audit.New()
	cfg.Audit = aud
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := deepPipeline(topic, sink, 2)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 7, Ts: i, Value: i}, i < 500000
	})
	gen.Start()
	t.Cleanup(gen.Stop)
	return r, aud
}

// TestAuditDetectsReplayCorruption seeds a divergence: every payload a
// recovering channel replays from its in-flight log is flipped by one
// byte. The predecessor receiver recorded the original hashes, so the
// audit plane must name the corruption as a replay-hash-mismatch — the
// PR 1 "silently desyncing the element stream" bug class, detected
// online instead of by the sink oracle.
func TestAuditDetectsReplayCorruption(t *testing.T) {
	corrupt := replayCorruptFn(func(ch types.ChannelID, seq uint64, data []byte) []byte {
		if len(data) > 0 {
			data[len(data)/2] ^= 0x5a
		}
		return data
	})
	testReplayCorrupt.Store(&corrupt)
	t.Cleanup(func() { testReplayCorrupt.Store(nil) })

	r, aud := startAuditedDeepRun(t)
	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	// Freeze checkpointing and let epoch-2 traffic flow: checkpoint
	// completion truncates the auditor's records (mirroring in-flight log
	// truncation), so an injection racing the epoch boundary could find
	// every replayed seq uncheckable. With the coordinator paused, the
	// receiver's records are guaranteed to cover the replayed range.
	r.coord.Pause()
	time.Sleep(500 * time.Millisecond)
	if err := r.InjectFailure(types.TaskID{Vertex: 2, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	ok := r.WaitForEvent(30*time.Second, func(ev Event) bool {
		return ev.Kind == EventAuditViolation && strings.HasPrefix(ev.Info, audit.InvReplayHashMismatch)
	})
	if !ok {
		t.Fatalf("replay corruption went undetected; violations: %v", aud.ByInvariant())
	}
	if aud.ByInvariant()[audit.InvReplayHashMismatch] == 0 {
		t.Fatalf("violation event recorded but counter empty: %v", aud.ByInvariant())
	}
}

// TestAuditDetectsFingerprintTamper seeds the state-attestation
// divergence: the persisted snapshot's fingerprint is tampered with, so
// the replacement's restore-time recomputation cannot match and must
// fire fingerprint-mismatch (a restore that diverges from what was
// persisted, caught at recovery rather than at the sink).
func TestAuditDetectsFingerprintTamper(t *testing.T) {
	r, aud := startAuditedDeepRun(t)
	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint: %v", r.Errors())
	}
	victim := types.TaskID{Vertex: 2, Subtask: 0}
	// Freeze checkpointing so recovery restores exactly the tampered
	// snapshot (a fresh checkpoint completing mid-test would supersede it).
	r.coord.Pause()
	cp := r.snaps.LatestCompleted()
	snap, ok := r.snaps.Get(cp, victim)
	if !ok {
		t.Fatalf("no snapshot for %v at cp %d", victim, cp)
	}
	snap.Fingerprint ^= 0xdeadbeef
	if snap.Fingerprint == 0 {
		snap.Fingerprint = 1
	}
	if err := r.InjectFailure(victim); err != nil {
		t.Fatal(err)
	}
	ok = r.WaitForEvent(30*time.Second, func(ev Event) bool {
		return ev.Kind == EventAuditViolation && strings.HasPrefix(ev.Info, audit.InvFingerprintMismatch)
	})
	if !ok {
		t.Fatalf("fingerprint tamper went undetected; violations: %v", aud.ByInvariant())
	}
	if aud.ByInvariant()[audit.InvFingerprintMismatch] == 0 {
		t.Fatalf("violation event recorded but counter empty: %v", aud.ByInvariant())
	}
}
