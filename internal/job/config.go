package job

import (
	"time"

	"clonos/internal/audit"
	"clonos/internal/faultinject"
	"clonos/internal/inflight"
	"clonos/internal/obs"
	"clonos/internal/services"
)

// Mode selects the fault-tolerance mechanism.
type Mode int

const (
	// ModeGlobal is the baseline: coordinated checkpoints with global
	// rollback recovery — every task restarts from the last completed
	// checkpoint ("vanilla Flink").
	ModeGlobal Mode = iota
	// ModeClonos enables in-flight record logs, causal logging, and
	// local recovery with optional standby tasks.
	ModeClonos
)

func (m Mode) String() string {
	if m == ModeClonos {
		return "clonos"
	}
	return "global"
}

// Guarantee is the processing guarantee Clonos mode is configured for
// (§5.4). ModeGlobal always behaves as exactly-once w.r.t. state.
type Guarantee int

const (
	// ExactlyOnce enables in-flight logging and causal logging (DSD>=1).
	ExactlyOnce Guarantee = iota
	// AtLeastOnce keeps in-flight logging but disables determinants
	// (DSD=0): divergent rollback recovery, duplicates possible.
	AtLeastOnce
	// AtMostOnce disables both: gap recovery, in-flight records lost.
	AtMostOnce
)

func (g Guarantee) String() string {
	switch g {
	case AtLeastOnce:
		return "at-least-once"
	case AtMostOnce:
		return "at-most-once"
	default:
		return "exactly-once"
	}
}

// Config is the runtime configuration of one job.
type Config struct {
	Mode      Mode
	Guarantee Guarantee
	// DSD is the determinant sharing depth; 0 picks the graph depth
	// ("full"). Ignored unless Mode is ModeClonos with ExactlyOnce.
	DSD int
	// Standby deploys one idle standby task per running task with
	// state preloaded after every checkpoint (high-availability mode).
	Standby bool
	// Nodes simulates a cluster with that many nodes for placement and
	// node-failure experiments (§6.3); 0 disables node simulation.
	Nodes int
	// StandbyAllocation places standby tasks relative to the tasks they
	// mirror (§6.3).
	StandbyAllocation AllocationStrategy

	CheckpointInterval time.Duration
	CheckpointTimeout  time.Duration
	HeartbeatTimeout   time.Duration

	// BufferSize is the network-buffer size in bytes.
	BufferSize int
	// ChannelBuffers is each output channel's pool size (Flink keeps
	// this small so backpressure stays reactive; ~10).
	ChannelBuffers int
	// EndpointCredit is each receiver queue's capacity in buffers.
	EndpointCredit int
	// LogPoolBuffers is the per-task in-flight-log pool size (the
	// paper's 80 MB / 32 KiB ≈ 2560; scaled down here).
	LogPoolBuffers int
	// FlushInterval is the output-flusher period (the source of
	// nondeterministic buffer sizes).
	FlushInterval time.Duration
	// InFlight configures spill behaviour.
	InFlight inflight.Config

	// TimestampGranularityMs configures the Timestamp service cache.
	TimestampGranularityMs int64
	// World is the simulated external world reachable from UDFs.
	World *services.ExternalWorld
	// SnapshotDir persists checkpoints to disk when non-empty.
	SnapshotDir string

	// MailboxSize bounds the async event queue per task.
	MailboxSize int
	// LatencyMarkerEvery makes every source emit a latency marker after
	// that many source records (0 disables). Markers flow to the sinks
	// like watermarks and feed the live end-to-end latency histogram.
	// The cadence is count-based and the stamp is causally logged, so
	// guided replay re-emits byte-identical markers.
	LatencyMarkerEvery int
	// Obs is the metrics registry the runtime reports into; nil creates
	// a private one (retrievable via Runtime.Obs).
	Obs *obs.Registry
	// IncrementalCheckpoints ships only the state entries changed since
	// the previous snapshot (§6.4); the snapshot store reconstructs the
	// full image. The first snapshot after start or recovery is full.
	IncrementalCheckpoints bool

	// UnalignedCheckpoints arms overload-tolerant checkpointing as
	// always-on: a multi-input task snapshots immediately on its first
	// barrier and logs the in-flight buffers of not-yet-barriered
	// channels into the snapshot instead of gating them. No channel is
	// ever blocked for alignment; the checkpoint ack is deferred until
	// every pending channel's barrier has drained past the capture.
	UnalignedCheckpoints bool
	// AlignmentBudget converts a stuck aligned checkpoint to the
	// unaligned capture path: when a barrier alignment has been pending
	// longer than this budget, the task snapshots where it stands,
	// unblocks its gated channels, and logs the remaining pre-barrier
	// input into the snapshot. 0 disables the conversion (aligned
	// checkpoints wait indefinitely; UnalignedCheckpoints is unaffected).
	AlignmentBudget time.Duration

	// StallDeadline arms the runtime's stall watchdog: a tracer event
	// fires when a running task's watermark/offset, a pending barrier
	// alignment, or checkpoint completion stops advancing for this long.
	// 0 disables the watchdog.
	StallDeadline time.Duration
	// TraceMaxEvents / TraceMaxSpans bound the tracer's retention rings
	// (0 keeps the obs package defaults: 8192 events, 1024 spans).
	TraceMaxEvents int
	TraceMaxSpans  int
	// TraceSink, when set, additionally receives every tracer event and
	// ended span as it is published — the flight recorder plugs in here.
	TraceSink obs.TracerSink

	// RestartDelay is the settle pause a global restart waits between
	// tearing the old tasks down and deploying the rebuilt topology
	// (draining lingering sends from the torn-down incarnations). 0
	// keeps the historical default of HeartbeatTimeout/2; a negative
	// value removes the pause entirely.
	RestartDelay time.Duration
	// ServiceSeed, when non-zero, derives a deterministic per-task seed
	// stream for the nondeterministic UDF services (random source):
	// replaying a crash schedule then reproduces the exact nondeterminant
	// stream the determinant log claims to cover. 0 preserves the
	// wall-clock fallback seeding.
	ServiceSeed int64
	// Faults, when set, arms the crash-point injector: the runtime calls
	// it at every named crash point and crashes whatever task the armed
	// schedule dictates. Nil (the default) keeps every crash point a
	// no-op.
	Faults *faultinject.Injector
	// Audit, when set, arms the online causal-consistency audit plane:
	// stream continuity/byte-identity checks at delivery and replay,
	// snapshot fingerprint attestation at restore, and watermark/marker
	// sanity checks, each violation reported through the tracer and the
	// clonos_audit_violations_total counter. Nil (the default) keeps
	// every audit hook a no-op; the stream checks are only sound under
	// ExactlyOnce (divergent at-least-once replay legitimately rewrites
	// streams), so other guarantees disarm the per-task hooks.
	Audit *audit.Auditor
}

// DefaultConfig returns a configuration scaled for in-process experiments
// (~10x faster clocks than the paper's cluster settings).
func DefaultConfig() Config {
	return Config{
		Mode:                   ModeClonos,
		Guarantee:              ExactlyOnce,
		DSD:                    1,
		Standby:                true,
		CheckpointInterval:     500 * time.Millisecond,
		CheckpointTimeout:      30 * time.Second,
		HeartbeatTimeout:       600 * time.Millisecond,
		BufferSize:             8 * 1024,
		ChannelBuffers:         10,
		EndpointCredit:         16,
		LogPoolBuffers:         512,
		FlushInterval:          5 * time.Millisecond,
		InFlight:               inflight.Config{Policy: inflight.PolicySpillThreshold, Threshold: 0.25},
		TimestampGranularityMs: 1,
		MailboxSize:            1024,
		LatencyMarkerEvery:     64,
		StallDeadline:          5 * time.Second,
	}
}

// effectiveRestartDelay resolves the global-restart settle pause.
func (c Config) effectiveRestartDelay() time.Duration {
	switch {
	case c.RestartDelay < 0:
		return 0
	case c.RestartDelay == 0:
		return c.HeartbeatTimeout / 2
	default:
		return c.RestartDelay
	}
}

// effectiveDSD resolves the configured sharing depth against the graph.
func (c Config) effectiveDSD(g *Graph) int {
	if c.Mode != ModeClonos || c.Guarantee != ExactlyOnce {
		return 0
	}
	if c.DSD <= 0 {
		d := g.Depth()
		if d < 1 {
			d = 1
		}
		return d
	}
	return c.DSD
}
