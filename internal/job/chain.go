package job

import (
	"fmt"

	"clonos/internal/operator"
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/timers"
	"clonos/internal/types"
)

// tsRefreshHandler is the reserved timer handler ID of the Timestamp
// service's cache-refresh timer.
const tsRefreshHandler int32 = -1

// chain executes a vertex's fused operators inside one task. Each
// operator gets its own context whose Emit feeds the next operator; the
// last context's Emit feeds the task's output.
type chain struct {
	task *Task
	ops  []operator.Operator
	ctxs []*opContext
}

// opContext implements operator.Context for one chained operator.
type opContext struct {
	task   *Task
	chain  *chain
	index  int
	scope  string
	emitFn func(key uint64, ts int64, v any) // next operator or task output
}

func newChain(t *Task) *chain {
	c := &chain{task: t, ops: t.vertex.Operators}
	for i, op := range c.ops {
		ctx := &opContext{task: t, chain: c, index: i, scope: t.vertex.Name + "." + op.Name()}
		c.ctxs = append(c.ctxs, ctx)
	}
	for i := range c.ctxs {
		i := i
		if i+1 < len(c.ctxs) {
			c.ctxs[i].emitFn = func(key uint64, ts int64, v any) {
				c.deliver(i+1, 0, types.Record(key, ts, v))
			}
		} else {
			c.ctxs[i].emitFn = func(key uint64, ts int64, v any) {
				c.task.emitOutput(key, ts, v)
			}
		}
	}
	return c
}

// sourceContext returns the context handed to a source function: it emits
// into the head of the chain (or straight to output when the chain is
// empty).
func (c *chain) sourceContext() *opContext {
	ctx := &opContext{task: c.task, chain: c, index: -1, scope: c.task.vertex.Name + ".source"}
	if len(c.ops) > 0 {
		ctx.emitFn = func(key uint64, ts int64, v any) {
			c.deliver(0, 0, types.Record(key, ts, v))
		}
	} else {
		ctx.emitFn = func(key uint64, ts int64, v any) {
			c.task.emitOutput(key, ts, v)
		}
	}
	return ctx
}

// open calls Open on every operator in order.
func (c *chain) open() error {
	for i, op := range c.ops {
		if err := op.Open(c.ctxs[i]); err != nil {
			return fmt.Errorf("open %s: %w", op.Name(), err)
		}
	}
	return nil
}

// close calls Close on every operator in order.
func (c *chain) close() error {
	var first error
	for i, op := range c.ops {
		if err := op.Close(c.ctxs[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// deliver feeds a record to operator i.
func (c *chain) deliver(i, port int, e types.Element) {
	if err := c.ops[i].ProcessRecord(c.ctxs[i], port, e); err != nil {
		c.task.fail(fmt.Errorf("%s: %w", c.ops[i].Name(), err))
	}
}

// processInput feeds a record arriving from the task's input edge `port`
// into the head of the chain, or straight to output for a pass-through
// vertex.
func (c *chain) processInput(port int, e types.Element) {
	if len(c.ops) == 0 {
		c.task.emitOutput(e.Key, e.Timestamp, e.Value)
		return
	}
	c.deliver(0, port, e)
}

// onWatermark notifies every operator of a combined-watermark advance.
func (c *chain) onWatermark(wm int64) {
	for i, op := range c.ops {
		if err := op.OnWatermark(c.ctxs[i], wm); err != nil {
			c.task.fail(fmt.Errorf("%s watermark: %w", op.Name(), err))
			return
		}
	}
}

// onEventTimer routes a fired event-time timer to its owning operator.
func (c *chain) onEventTimer(tm timers.Timer) {
	i := int(tm.HandlerID)
	if i < 0 || i >= len(c.ops) {
		c.task.fail(fmt.Errorf("event timer for unknown handler %d", tm.HandlerID))
		return
	}
	if err := c.ops[i].OnEventTimer(c.ctxs[i], tm.Key, tm.When); err != nil {
		c.task.fail(fmt.Errorf("%s event timer: %w", c.ops[i].Name(), err))
	}
}

// onProcTimer routes a fired processing-time timer to its owning operator.
func (c *chain) onProcTimer(tm timers.Timer) {
	i := int(tm.HandlerID)
	if i < 0 || i >= len(c.ops) {
		c.task.fail(fmt.Errorf("proc timer for unknown handler %d", tm.HandlerID))
		return
	}
	if err := c.ops[i].OnProcTimer(c.ctxs[i], tm.Key, tm.When); err != nil {
		c.task.fail(fmt.Errorf("%s proc timer: %w", c.ops[i].Name(), err))
	}
}

// Emit implements operator.Context.
func (ctx *opContext) Emit(key uint64, ts int64, v any) { ctx.emitFn(key, ts, v) }

// State implements operator.Context.
func (ctx *opContext) State() *statestore.KeyedState {
	return ctx.task.store.Keyed(ctx.scope + ".state")
}

// NamedState implements operator.Context.
func (ctx *opContext) NamedState(name string) *statestore.KeyedState {
	return ctx.task.store.Keyed(ctx.scope + "." + name)
}

// Services implements operator.Context.
func (ctx *opContext) Services() *services.Services { return ctx.task.svcs }

// RegisterProcTimer implements operator.Context.
func (ctx *opContext) RegisterProcTimer(key uint64, when int64) {
	ctx.task.timerSvc.RegisterProc(timers.Timer{HandlerID: int32(ctx.index), Key: key, When: when})
}

// RegisterEventTimer implements operator.Context.
func (ctx *opContext) RegisterEventTimer(key uint64, when int64) {
	ctx.task.timerSvc.RegisterEvent(timers.Timer{HandlerID: int32(ctx.index), Key: key, When: when})
}

// Watermark implements operator.Context. Operator callbacks run on the
// task main thread, so the direct curWm read is safe.
//
//clonos:mainthread
func (ctx *opContext) Watermark() int64 { return ctx.task.curWm }

// TaskID implements operator.Context.
func (ctx *opContext) TaskID() types.TaskID { return ctx.task.id }

// NumSubtasks implements operator.Context.
func (ctx *opContext) NumSubtasks() int { return ctx.task.vertex.Parallelism }

// Epoch implements operator.Context.
func (ctx *opContext) Epoch() uint64 { return uint64(ctx.task.epoch) }

// CausalDelta implements operator.Context (§5.5 exactly-once output).
func (ctx *opContext) CausalDelta() []byte {
	if ctx.task.causal == nil {
		return nil
	}
	return ctx.task.causal.DeltaForExternal("external")
}
